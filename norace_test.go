//go:build !race

package repro_test

// raceEnabled gates allocation-count assertions; see race_test.go.
const raceEnabled = false
