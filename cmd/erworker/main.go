// Command erworker is a task-execution worker for the distributed
// runtime: it registers with an ermatch (or any dist.Master) process,
// heartbeats to keep its lease, executes dispatched map/reduce attempts
// of the er pipeline jobs, and serves its map-side ERN1 runs to
// reducers over HTTP range reads. Workers are stateless between jobs —
// killing one mid-task only costs that task's attempt (the master
// reassigns it), and a graceful shutdown (SIGINT/SIGTERM) removes the
// run directory.
//
// Usage:
//
//	erworker -master http://127.0.0.1:7400
//	erworker -master "$(cat master.addr)" -slots 4 -dir /tmp/w1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"

	// Imported for its job builders: the er package registers the
	// "er/bdm" and "er/match" constructors this worker executes.
	_ "repro/internal/er"
)

func main() {
	var (
		master     = flag.String("master", "", "master base URL, e.g. http://127.0.0.1:7400 (required)")
		listen     = flag.String("listen", "127.0.0.1:0", "task/run server listen address (must be reachable by master and workers)")
		dir        = flag.String("dir", "", "run-file directory root (default: system temp dir); removed on graceful shutdown")
		slots      = flag.Int("slots", 1, "concurrent task capacity advertised to the master")
		markReduce = flag.String("mark-reduce", "", "chaos: write this file when the first reduce attempt starts (kill-timing marker for the smoke script)")
		slowReduce = flag.Duration("slow-reduce", 0, "chaos: stall every reduce attempt this long before executing (widens the kill window)")
		obsCLI     obs.CLI
	)
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		usage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	if *master == "" {
		usage(fmt.Errorf("-master is required"))
	}
	if !strings.Contains(*master, "://") {
		*master = "http://" + *master
	}

	// The worker's task mux doubles as its introspection surface when
	// observed (/debug/vars, /status, opt-in pprof); -obs-addr serves
	// the same Observer on a separate listener, and -trace captures the
	// worker-side task/shuffle timeline on graceful shutdown.
	observer, err := obsCLI.Start(nil)
	if err != nil {
		usage(err)
	}
	opts := dist.WorkerOptions{
		MasterURL: *master,
		Addr:      *listen,
		Dir:       *dir,
		Slots:     *slots,
		Obs:       observer,
		PProf:     obsCLI.PProf,
	}
	if *markReduce != "" || *slowReduce > 0 {
		opts.TaskStarted = func(ctx context.Context, phase string, task, attempt int) {
			if phase != "reduce" {
				return
			}
			if *markReduce != "" {
				// Best-effort marker: the smoke script polls for this file
				// to learn a reduce attempt is in flight, then kills us.
				os.WriteFile(*markReduce, []byte(fmt.Sprintf("reduce %d attempt %d\n", task, attempt)), 0o644)
			}
			if *slowReduce > 0 {
				t := time.NewTimer(*slowReduce)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
				}
			}
		}
	}
	w, err := dist.StartWorker(opts)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "erworker: serving at %s (master %s, %d slots)\n", w.URL(), *master, *slots)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	w.Stop()
	if err := obsCLI.Finish(); err != nil {
		fail(fmt.Errorf("write trace: %w", err))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "erworker: %v\n", err)
	os.Exit(1)
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "erworker: %v\n", err)
	fmt.Fprintln(os.Stderr, "run 'erworker -h' for usage")
	os.Exit(2)
}
