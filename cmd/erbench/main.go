// Command erbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	erbench -figure 9            # one figure (8-14)
//	erbench -all                 # everything
//	erbench -figure 13 -scale 1  # full-size DS1 (planner mode keeps it fast)
//	erbench -figure 10 -csv      # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/entity"
	"repro/internal/experiments"
	"repro/internal/mapreduce"
	"repro/internal/report"
	"repro/internal/runio"
)

// reportTable aliases the report type for compact function signatures.
type reportTable = report.Table

func main() {
	var (
		figure      = flag.Int("figure", 0, "figure to reproduce (8-14)")
		all         = flag.Bool("all", false, "reproduce all figures")
		appendix    = flag.Bool("appendix", false, "run the Appendix I two-source experiment")
		ablations   = flag.Bool("ablations", false, "run the design-choice ablations")
		balance     = flag.Bool("balance", false, "report per-strategy reduce-task balance statistics")
		quality     = flag.Bool("quality", false, "sweep the match threshold and report precision/recall")
		snrobust    = flag.Bool("sn", false, "sorted-neighborhood skew-robustness extension table")
		scale       = flag.Float64("scale", 0.05, "dataset scale factor in (0,1]; 1 = paper-sized datasets")
		executed    = flag.Bool("exec", false, "figures 9/10: execute the real MapReduce jobs instead of the analytic planner (identical tables, slower)")
		parallelism = flag.Int("parallelism", 0, "engine worker bound for executed runs (0 = default)")
		spillBudget = flag.String("spill-budget", "0", "per-map-task spill budget in bytes for executed runs (suffixes k/m/g); > 0 runs the out-of-core external dataflow")
		tmpdir      = flag.String("tmpdir", "", "spill directory root for -spill-budget (default: system temp dir)")
		in          = flag.String("in", "", "CSV dataset replacing the generated DS1 stand-in (streamed row by row)")
		csv         = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		maxAttempts = flag.Int("max-attempts", 0, "per-task attempt budget for executed runs (0 = engine default)")
		taskTimeout = flag.Duration("task-timeout", 0, "per-attempt wall-clock timeout for executed runs (0 = none)")
		faults      = flag.String("faults", "", "deterministic fault injection 'rate[:seed]' for executed runs (e.g. 0.2:7)")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.Executed = *executed
	opts.Parallelism = *parallelism
	opts.TmpDir = *tmpdir
	opts.Retry = mapreduce.RetryPolicy{MaxAttempts: *maxAttempts, TaskTimeout: *taskTimeout}
	var err error
	if opts.FaultHook, err = mapreduce.ParseChaos(*faults, *maxAttempts); err != nil {
		fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
		os.Exit(1)
	}
	if opts.SpillBudget, err = runio.ParseByteSize(*spillBudget); err != nil {
		fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
		os.Exit(1)
	}
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		// Stream the dataset one row at a time (entity.ScanCSV): the
		// only full materialization is the entity slice the figures
		// partition, not a second CSV-row copy.
		scanErr := entity.ScanCSV(f, func(e entity.Entity) error {
			opts.Dataset = append(opts.Dataset, e)
			return nil
		})
		f.Close()
		if scanErr != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", scanErr)
			os.Exit(1)
		}
		if len(opts.Dataset) == 0 {
			// A nil Dataset would silently fall back to the generated
			// DS1 stand-in; an empty -in file is a user error.
			fmt.Fprintf(os.Stderr, "erbench: -in %s contains no entities\n", *in)
			os.Exit(1)
		}
	}

	type namedTable func(experiments.Options) (*reportTable, error)
	var runs []namedTable
	if *all {
		for _, f := range []int{8, 9, 10, 11, 12, 13, 14} {
			f := f
			runs = append(runs, func(o experiments.Options) (*reportTable, error) {
				return experiments.ByNumber(f, o)
			})
		}
	} else if *figure != 0 {
		f := *figure
		runs = append(runs, func(o experiments.Options) (*reportTable, error) {
			return experiments.ByNumber(f, o)
		})
	}
	if *appendix || *all {
		runs = append(runs, experiments.AppendixDual)
	}
	if *ablations || *all {
		runs = append(runs, experiments.Ablations)
	}
	if *balance || *all {
		runs = append(runs, experiments.BalanceTable)
	}
	if *quality || *all {
		runs = append(runs, experiments.QualityTable)
	}
	if *snrobust || *all {
		runs = append(runs, experiments.SNRobustness)
	}
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "erbench: specify -figure 8..14, -all, -appendix, -ablations, -balance, or -quality")
		flag.Usage()
		os.Exit(2)
	}

	for i, run := range runs {
		table, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			err = table.WriteCSV(os.Stdout)
		} else {
			err = table.Fprint(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			os.Exit(1)
		}
	}
}
