// Command erbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	erbench -figure 9            # one figure (8-14)
//	erbench -all                 # everything
//	erbench -figure 13 -scale 1  # full-size DS1 (planner mode keeps it fast)
//	erbench -figure 10 -csv      # machine-readable output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/dist"
	"repro/internal/entity"
	"repro/internal/experiments"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runio"
)

// reportTable aliases the report type for compact function signatures.
type reportTable = report.Table

func main() {
	var (
		figure      = flag.Int("figure", 0, "figure to reproduce (8-14)")
		all         = flag.Bool("all", false, "reproduce all figures")
		appendix    = flag.Bool("appendix", false, "run the Appendix I two-source experiment")
		ablations   = flag.Bool("ablations", false, "run the design-choice ablations")
		balance     = flag.Bool("balance", false, "report per-strategy reduce-task balance statistics")
		imbalance   = flag.Bool("imbalance", false, "execute the jobs and report measured per-strategy reduce-task time imbalance (max/mean, from the obs duration histograms)")
		quality     = flag.Bool("quality", false, "sweep the match threshold and report precision/recall")
		snrobust    = flag.Bool("sn", false, "sorted-neighborhood skew-robustness extension table")
		scale       = flag.Float64("scale", 0.05, "dataset scale factor in (0,1]; 1 = paper-sized datasets")
		executed    = flag.Bool("exec", false, "figures 9/10: execute the real MapReduce jobs instead of the analytic planner (identical tables, slower)")
		parallelism = flag.Int("parallelism", 0, "engine worker bound for executed runs (0 = default)")
		spillBudget = flag.String("spill-budget", "0", "per-map-task spill budget in bytes for executed runs (suffixes k/m/g); > 0 runs the out-of-core external dataflow")
		tmpdir      = flag.String("tmpdir", "", "spill directory root for -spill-budget (default: system temp dir)")
		in          = flag.String("in", "", "CSV dataset replacing the generated DS1 stand-in (streamed row by row)")
		csv         = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		maxAttempts = flag.Int("max-attempts", 0, "per-task attempt budget for executed runs (0 = engine default)")
		taskTimeout = flag.Duration("task-timeout", 0, "per-attempt wall-clock timeout for executed runs (0 = none)")
		faults      = flag.String("faults", "", "deterministic fault injection 'rate[:seed]' for executed runs (e.g. 0.2:7)")
		masterAddr  = flag.String("master", "", "run the distributed-vs-local comparison: listen for erworker registrations on this address (e.g. 127.0.0.1:0)")
		workers     = flag.Int("workers", 0, "distributed: wait for this many registered workers before dispatching tasks")
		addrFile    = flag.String("master-addr-file", "", "distributed: write the master's URL to this file once listening (for scripted worker launch)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the selected runs to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file after the selected runs")
		obsCLI      obs.CLI
	)
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		usage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	if (*workers > 0 || *addrFile != "") && *masterAddr == "" {
		usage(fmt.Errorf("-workers/-master-addr-file require -master"))
	}

	observer, err := obsCLI.Start(nil)
	if err != nil {
		usage(err)
	}

	opts := experiments.DefaultOptions()
	opts.Obs = observer
	opts.Scale = *scale
	opts.Executed = *executed
	opts.Parallelism = *parallelism
	opts.TmpDir = *tmpdir
	opts.Retry = mapreduce.RetryPolicy{MaxAttempts: *maxAttempts, TaskTimeout: *taskTimeout}
	if opts.FaultHook, err = mapreduce.ParseChaos(*faults, *maxAttempts); err != nil {
		usage(fmt.Errorf("invalid -faults value: %v (expected rate[:seed], rate in [0,1])", err))
	}
	if opts.SpillBudget, err = runio.ParseByteSize(*spillBudget); err != nil {
		usage(fmt.Errorf("invalid -spill-budget value: %v", err))
	}
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		// Stream the dataset one row at a time (entity.ScanCSV): the
		// only full materialization is the entity slice the figures
		// partition, not a second CSV-row copy.
		scanErr := entity.ScanCSV(f, func(e entity.Entity) error {
			opts.Dataset = append(opts.Dataset, e)
			return nil
		})
		f.Close()
		if scanErr != nil {
			fail(scanErr)
		}
		if len(opts.Dataset) == 0 {
			// A nil Dataset would silently fall back to the generated
			// DS1 stand-in; an empty -in file is a user error.
			fail(fmt.Errorf("-in %s contains no entities", *in))
		}
	}
	if *masterAddr != "" {
		// The master starts before the table runs so its URL can be
		// published for scripted worker launch; the Distributed table
		// dispatches both jobs' tasks through it per strategy.
		master := dist.NewMaster(dist.MasterOptions{Addr: *masterAddr, Obs: observer, PProf: obsCLI.PProf})
		if err := master.Start(); err != nil {
			fail(err)
		}
		defer master.Close()
		if *addrFile != "" {
			if err := os.WriteFile(*addrFile, []byte(master.URL()+"\n"), 0o644); err != nil {
				fail(err)
			}
		}
		fmt.Fprintf(os.Stderr, "erbench: master listening at %s (waiting for %d workers)\n", master.URL(), *workers)
		opts.Master = master
		opts.Workers = *workers
	}

	// The run context: Ctrl-C / SIGTERM cancels every engine and dist
	// task attempt below (the experiments API threads it throughout).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	type namedTable func(context.Context, experiments.Options) (*reportTable, error)
	var runs []namedTable
	if *all {
		for _, f := range []int{8, 9, 10, 11, 12, 13, 14} {
			f := f
			runs = append(runs, func(ctx context.Context, o experiments.Options) (*reportTable, error) {
				return experiments.ByNumber(ctx, f, o)
			})
		}
	} else if *figure != 0 {
		f := *figure
		runs = append(runs, func(ctx context.Context, o experiments.Options) (*reportTable, error) {
			return experiments.ByNumber(ctx, f, o)
		})
	}
	if *appendix || *all {
		runs = append(runs, experiments.AppendixDual)
	}
	if *ablations || *all {
		runs = append(runs, experiments.Ablations)
	}
	if *balance || *all {
		runs = append(runs, experiments.BalanceTable)
	}
	if *quality || *all {
		runs = append(runs, experiments.QualityTable)
	}
	if *imbalance || *all {
		runs = append(runs, experiments.Imbalance)
	}
	if *snrobust || *all {
		runs = append(runs, experiments.SNRobustness)
	}
	if *masterAddr != "" {
		// -all deliberately excludes this table: it needs live workers.
		runs = append(runs, experiments.Distributed)
	}
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "erbench: specify -figure 8..14, -all, -appendix, -ablations, -balance, -imbalance, -quality, or -master")
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		// fail() exits through os.Exit, so flush via the shared hook
		// rather than a defer.
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfiles()
	}
	if *memProfile != "" {
		path := *memProfile
		writeHeap = func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "erbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "erbench: -memprofile: %v\n", err)
			}
		}
		defer stopProfiles()
	}

	for i, run := range runs {
		table, err := run(ctx, opts)
		if err != nil {
			fail(err)
		}
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			err = table.WriteCSV(os.Stdout)
		} else {
			err = table.Fprint(os.Stdout)
		}
		if err != nil {
			fail(err)
		}
	}
	if err := obsCLI.Finish(); err != nil {
		fail(fmt.Errorf("write trace: %w", err))
	}
}

// stopCPU / writeHeap flush any active -cpuprofile / -memprofile
// output. They are invoked both on the normal exit path (deferred) and
// from fail(), which bypasses defers via os.Exit; stopProfiles makes
// either order idempotent.
var (
	stopCPU   func()
	writeHeap func()
)

func stopProfiles() {
	if stopCPU != nil {
		stopCPU()
		stopCPU = nil
	}
	if writeHeap != nil {
		writeHeap()
		writeHeap = nil
	}
}

// fail reports a runtime error (exit 1); usage reports a bad
// invocation with exit 2, matching the other er commands.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
	stopProfiles()
	os.Exit(1)
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
	fmt.Fprintln(os.Stderr, "run 'erbench -h' for usage")
	os.Exit(2)
}
