// Command ermatch runs blocking-based entity resolution over a CSV
// dataset with a selectable load-balancing strategy, executing the full
// two-job MapReduce workflow on the in-process engine.
//
// Usage:
//
//	ermatch -in ds1.csv -strategy pairrange -m 8 -r 32 -threshold 0.8
//	ergen -dataset ds1 -scale 0.02 | ermatch -strategy blocksplit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/runio"
	"repro/internal/sn"
)

func main() {
	var (
		in           = flag.String("in", "", "input CSV (default stdin)")
		attr         = flag.String("attr", datagen.AttrTitle, "attribute carrying the match-relevant text")
		strategy     = flag.String("strategy", "blocksplit", "basic, blocksplit, pairrange, or sn (sorted neighborhood)")
		m            = flag.Int("m", runtime.NumCPU(), "number of map tasks (input partitions)")
		r            = flag.Int("r", 4*runtime.NumCPU(), "number of reduce tasks")
		prefix       = flag.Int("prefix", 3, "blocking key length (title prefix)")
		threshold    = flag.Float64("threshold", 0.8, "minimum normalized edit-distance similarity")
		window       = flag.Int("window", 10, "sorted-neighborhood window size (strategy sn)")
		parallelism  = flag.Int("parallelism", runtime.NumCPU(), "engine worker bound: concurrently executing tasks per phase (0 = one goroutine per task)")
		spillBudget  = flag.String("spill-budget", "0", "per-map-task spill budget in bytes (suffixes k/m/g); > 0 runs the out-of-core external dataflow")
		tmpdir       = flag.String("tmpdir", "", "spill directory root for -spill-budget (default: system temp dir)")
		showPairs    = flag.Bool("pairs", false, "print every match pair")
		showClusters = flag.Bool("clusters", false, "print duplicate clusters (transitive closure)")
		simulate     = flag.Bool("simulate", false, "also report simulated cluster time (10 nodes)")
	)
	flag.Parse()

	budget, err := runio.ParseByteSize(*spillBudget)
	if err != nil {
		fail(err)
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	// Stream rows straight into the m input partitions: no intermediate
	// full entity slice, so the pre-map memory high-water mark is the
	// partitioned input itself.
	parts, err := entity.ReadPartitionsCSV(src, *m)
	if err != nil {
		fail(err)
	}
	nEntities := parts.Total()

	matchAttr := *attr
	// The prepared matcher caches each entity's comparison form once per
	// reduce group; every strategy — including sorted neighborhood's
	// window reducer — now runs the prepare-once kernel.
	prepared := match.EditDistance(matchAttr, *threshold)
	engine := &mapreduce.Engine{Parallelism: *parallelism}
	if budget > 0 {
		engine.Dataflow = mapreduce.DataflowExternal
		engine.SpillBudget = budget
		engine.TmpDir = *tmpdir
	}

	var (
		matches     []core.MatchPair
		comparisons int64
	)
	start := time.Now()
	if *strategy == "sn" {
		res, err := sn.Run(parts, sn.Config{
			Attr:            matchAttr,
			Key:             func(v string) string { return v },
			Window:          *window,
			R:               *r,
			PreparedMatcher: prepared,
			Engine:          engine,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("strategy=SortedNeighborhood entities=%d m=%d r=%d window=%d\n",
			nEntities, *m, *r, *window)
		matches, comparisons = res.Matches, res.Comparisons
	} else {
		var strat core.Strategy
		switch *strategy {
		case "basic":
			strat = core.Basic{}
		case "blocksplit":
			strat = core.BlockSplit{}
		case "pairrange":
			strat = core.PairRange{}
		default:
			fail(fmt.Errorf("unknown strategy %q", *strategy))
		}
		res, err := er.Run(parts, er.Config{
			Strategy:        strat,
			Attr:            matchAttr,
			BlockKey:        blocking.NormalizedPrefix(*prefix),
			PreparedMatcher: prepared,
			R:               *r,
			Engine:          engine,
			UseCombiner:     true,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("strategy=%s entities=%d m=%d r=%d\n", strat.Name(), nEntities, *m, *r)
		if res.BDM != nil {
			_, largest := res.BDM.LargestBlock()
			fmt.Printf("blocks=%d pairs=%d largest-block=%d\n", res.BDM.NumBlocks(), res.BDM.Pairs(), largest)
		}
		if *simulate {
			t, err := res.SimulatedTime(cluster.DefaultSlots(10), cluster.DefaultCostModel())
			if err != nil {
				fail(err)
			}
			defer fmt.Printf("simulated-cluster-time=%.0f units (10 nodes)\n", t)
		}
		matches, comparisons = res.Matches, res.Comparisons
	}
	elapsed := time.Since(start)

	fmt.Printf("comparisons=%d matches=%d wall=%s\n", comparisons, len(matches), elapsed)
	if *showPairs {
		for _, p := range matches {
			fmt.Printf("%s\t%s\n", p.A, p.B)
		}
	}
	if *showClusters {
		for _, c := range er.Clusters(matches) {
			fmt.Println(strings.Join(c, " "))
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ermatch: %v\n", err)
	os.Exit(1)
}
