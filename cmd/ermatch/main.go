// Command ermatch runs blocking-based entity resolution over a CSV
// dataset with a selectable load-balancing strategy, executing the full
// two-job MapReduce workflow on the in-process engine. Matches can be
// streamed to a file (-out) through the pipeline's writer sinks instead
// of being buffered — written atomically: the stream lands in a temp
// file renamed over -out only on success, so a failed or interrupted
// run never leaves a partial file. Ctrl-C cancels the run between
// engine tasks, and -max-attempts/-task-timeout/-faults expose the
// engine's retry policy and deterministic fault injection. With
// -master the process becomes the master of a distributed run: it
// listens for erworker registrations and dispatches both jobs' tasks
// to them, producing output byte-identical to the local run.
//
// Usage:
//
//	ermatch -in ds1.csv -strategy pairrange -m 8 -r 32 -threshold 0.8
//	ermatch -in ds1.csv -out matches.csv -format csv
//	ergen -dataset ds1 -scale 0.02 | ermatch -strategy blocksplit
//	ermatch -in ds1.csv -master 127.0.0.1:0 -master-addr-file master.addr -workers 3
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/runio"
	"repro/internal/sn"
)

func main() {
	var (
		in           = flag.String("in", "", "input CSV (default stdin)")
		attr         = flag.String("attr", datagen.AttrTitle, "attribute carrying the match-relevant text")
		strategy     = flag.String("strategy", "blocksplit", "basic, blocksplit, pairrange, or sn (sorted neighborhood)")
		m            = flag.Int("m", runtime.NumCPU(), "number of map tasks (input partitions)")
		r            = flag.Int("r", 4*runtime.NumCPU(), "number of reduce tasks")
		prefix       = flag.Int("prefix", 3, "blocking key length (title prefix)")
		threshold    = flag.Float64("threshold", 0.8, "minimum normalized edit-distance similarity")
		window       = flag.Int("window", 10, "sorted-neighborhood window size (strategy sn)")
		parallelism  = flag.Int("parallelism", runtime.NumCPU(), "engine worker bound: concurrently executing tasks per phase (0 = one goroutine per task)")
		spillBudget  = flag.String("spill-budget", "0", "per-map-task spill budget in bytes (suffixes k/m/g); > 0 runs the out-of-core external dataflow")
		tmpdir       = flag.String("tmpdir", "", "spill directory root for -spill-budget (default: system temp dir)")
		out          = flag.String("out", "", "stream matches to this file instead of buffering them ('-' = stdout)")
		format       = flag.String("format", "csv", "match output format for -out: csv or ndjson")
		showPairs    = flag.Bool("pairs", false, "print every match pair")
		showClusters = flag.Bool("clusters", false, "print duplicate clusters (transitive closure)")
		simulate     = flag.Bool("simulate", false, "also report simulated cluster time (10 nodes)")
		maxAttempts  = flag.Int("max-attempts", 0, "per-task attempt budget before the run fails (0 = engine default)")
		taskTimeout  = flag.Duration("task-timeout", 0, "per-attempt wall-clock timeout; a timed-out attempt is retried (0 = none)")
		faults       = flag.String("faults", "", "deterministic fault injection 'rate[:seed]' for chaos testing (e.g. 0.2:7)")
		masterAddr   = flag.String("master", "", "run distributed: listen for erworker registrations on this address (e.g. 127.0.0.1:0 or :7400)")
		workers      = flag.Int("workers", 0, "distributed: wait for this many registered workers before dispatching tasks")
		addrFile     = flag.String("master-addr-file", "", "distributed: write the master's URL to this file once listening (for scripted worker launch)")
		obsCLI       obs.CLI
	)
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		usage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}

	budget, err := runio.ParseByteSize(*spillBudget)
	if err != nil {
		usage(fmt.Errorf("invalid -spill-budget value: %v", err))
	}
	if *out != "" && (*showPairs || *showClusters) {
		usage(fmt.Errorf("-out streams matches without buffering them; it cannot be combined with -pairs or -clusters"))
	}
	if *out != "" && *format != "csv" && *format != "ndjson" {
		// Validated before the output file is touched, so a typo'd
		// -format never truncates an existing file.
		usage(fmt.Errorf("unknown -format %q (want csv or ndjson)", *format))
	}
	distributed := *masterAddr != "" || *workers > 0 || *addrFile != ""
	if distributed && *masterAddr == "" {
		usage(fmt.Errorf("-workers/-master-addr-file require -master"))
	}
	if distributed && *strategy == "sn" {
		usage(fmt.Errorf("strategy sn does not support distributed execution (use basic, blocksplit, or pairrange)"))
	}
	// When the match stream goes to stdout (-out -), the human-readable
	// report moves to stderr so the streamed CSV/NDJSON stays parseable.
	report := io.Writer(os.Stdout)
	if *out == "-" {
		report = os.Stderr
	}

	// Ctrl-C cancels the run between engine tasks; the external
	// dataflow's spill directory is removed on the way out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Stream rows straight into the m input partitions: no intermediate
	// full entity slice, so the pre-map memory high-water mark is the
	// partitioned input itself.
	var src er.Source
	if *in != "" {
		src = er.FromCSVFile(*in, *m)
	} else {
		src = er.FromCSV(os.Stdin, *m)
	}
	parts, err := src.Partitions()
	if err != nil {
		fail(err)
	}
	nEntities := parts.Total()

	// -out installs a streaming writer sink: matches flow from the
	// reduce tasks to the file as they are found and are never
	// accumulated in memory.
	faultHook, err := mapreduce.ParseChaos(*faults, *maxAttempts)
	if err != nil {
		usage(fmt.Errorf("invalid -faults value: %v (expected rate[:seed], rate in [0,1])", err))
	}
	observer, err := obsCLI.Start(nil)
	if err != nil {
		usage(err)
	}
	opts := er.RunOptions{
		Parallelism: *parallelism,
		SpillBudget: budget,
		TmpDir:      *tmpdir,
		Retry:       mapreduce.RetryPolicy{MaxAttempts: *maxAttempts, TaskTimeout: *taskTimeout},
		FaultHook:   faultHook,
		Obs:         observer,
	}
	if distributed {
		// The master is started here (not inside the pipeline) so its
		// URL can be published to -master-addr-file before any worker
		// needs it; the pipeline then dispatches through it. It shares
		// the run's Observer: dispatch spans and dist.master.* metrics
		// land in the same trace and /debug/vars as the engine's.
		master := dist.NewMaster(dist.MasterOptions{Addr: *masterAddr, Obs: observer, PProf: obsCLI.PProf})
		if err := master.Start(); err != nil {
			fail(err)
		}
		defer master.Close()
		if *addrFile != "" {
			if err := os.WriteFile(*addrFile, []byte(master.URL()+"\n"), 0o644); err != nil {
				fail(err)
			}
		}
		fmt.Fprintf(os.Stderr, "ermatch: master listening at %s (waiting for %d workers)\n", master.URL(), *workers)
		opts.Master = master
		opts.Workers = *workers
	}
	var count func() int64
	var outFile *os.File
	var outTmp string
	if *out != "" {
		var w io.Writer = os.Stdout
		if *out != "-" {
			// Matches stream into a temp file beside the target; it is
			// renamed over -out only after the run and Close succeed, so a
			// failed or interrupted run never leaves a partial output file
			// (and never clobbers a previous good one).
			f, err := os.CreateTemp(filepath.Dir(*out), "."+filepath.Base(*out)+".tmp-*")
			if err != nil {
				fail(err)
			}
			outFile, outTmp = f, f.Name()
			cleanupOnFail = func() {
				f.Close()
				os.Remove(outTmp)
			}
			w = f
		}
		if *format == "csv" {
			s := er.NewCSVSink(w)
			opts.Sink, count = s, s.Count
		} else {
			s := er.NewNDJSONSink(w)
			opts.Sink, count = s, s.Count
		}
	}

	matchAttr := *attr
	// The prepared matcher caches each entity's comparison form once per
	// reduce group; every strategy — including sorted neighborhood's
	// window reducer — runs the prepare-once kernel.
	prepared := match.EditDistance(matchAttr, *threshold)

	var (
		matches     []core.MatchPair
		comparisons int64
	)
	start := time.Now()
	if *strategy == "sn" {
		res, err := sn.RunPipeline(ctx, er.FromPartitions(parts), sn.Config{
			RunOptions:      opts,
			Attr:            matchAttr,
			Key:             func(v string) string { return v },
			Window:          *window,
			R:               *r,
			PreparedMatcher: prepared,
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(report, "strategy=SortedNeighborhood entities=%d m=%d r=%d window=%d\n",
			nEntities, *m, *r, *window)
		matches, comparisons = res.Matches, res.Comparisons
	} else {
		var strat core.Strategy
		switch *strategy {
		case "basic":
			strat = core.Basic{}
		case "blocksplit":
			strat = core.BlockSplit{}
		case "pairrange":
			strat = core.PairRange{}
		default:
			usage(fmt.Errorf("unknown strategy %q (want basic, blocksplit, pairrange, or sn)", *strategy))
		}
		var res *er.Result
		if distributed {
			// Distributed runs take the declarative job description (the
			// same parameters, minus the function values a Config carries)
			// so workers can rebuild the identical jobs from the spec.
			res, err = er.RunDistributedPipeline(ctx, er.FromPartitions(parts), er.DistParams{
				Strategy:    *strategy,
				Attr:        matchAttr,
				KeyPrefix:   *prefix,
				Threshold:   *threshold,
				R:           *r,
				UseCombiner: true,
			}, opts)
		} else {
			res, err = er.RunPipeline(ctx, er.FromPartitions(parts), er.Config{
				RunOptions:      opts,
				Strategy:        strat,
				Attr:            matchAttr,
				BlockKey:        blocking.NormalizedPrefix(*prefix),
				PreparedMatcher: prepared,
				R:               *r,
				UseCombiner:     true,
			})
		}
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(report, "strategy=%s entities=%d m=%d r=%d\n", strat.Name(), nEntities, *m, *r)
		if res.BDM != nil {
			_, largest := res.BDM.LargestBlock()
			fmt.Fprintf(report, "blocks=%d pairs=%d largest-block=%d\n", res.BDM.NumBlocks(), res.BDM.Pairs(), largest)
		}
		if *simulate {
			t, err := res.SimulatedTime(cluster.DefaultSlots(10), cluster.DefaultCostModel())
			if err != nil {
				fail(err)
			}
			defer fmt.Fprintf(report, "simulated-cluster-time=%.0f units (10 nodes)\n", t)
		}
		matches, comparisons = res.Matches, res.Comparisons
	}
	elapsed := time.Since(start)

	if err := obsCLI.Finish(); err != nil {
		fail(fmt.Errorf("write trace: %w", err))
	}

	nMatches := int64(len(matches))
	if count != nil {
		nMatches = count()
	}
	fmt.Fprintf(report, "comparisons=%d matches=%d wall=%s\n", comparisons, nMatches, elapsed)
	if outFile != nil {
		// A failed close can mean lost buffered writes (quota, NFS);
		// surface it instead of reporting a complete file.
		if err := outFile.Close(); err != nil {
			fail(err)
		}
		if err := os.Rename(outTmp, *out); err != nil {
			fail(err)
		}
		cleanupOnFail = nil
		fmt.Printf("matches streamed to %s (%s)\n", *out, *format)
	}
	if *showPairs {
		for _, p := range matches {
			fmt.Printf("%s\t%s\n", p.A, p.B)
		}
	}
	if *showClusters {
		for _, c := range er.Clusters(matches) {
			fmt.Println(strings.Join(c, " "))
		}
	}
}

// cleanupOnFail removes the in-flight temp output file; fail runs it
// because os.Exit skips deferred calls.
var cleanupOnFail func()

// fail reports a runtime error (exit 1); usage reports a bad
// invocation — unknown enum value, malformed flag, conflicting flags —
// with exit 2, matching the other er commands.
func fail(err error) {
	if cleanupOnFail != nil {
		cleanupOnFail()
	}
	fmt.Fprintf(os.Stderr, "ermatch: %v\n", err)
	os.Exit(1)
}

func usage(err error) {
	if cleanupOnFail != nil {
		cleanupOnFail()
	}
	fmt.Fprintf(os.Stderr, "ermatch: %v\n", err)
	fmt.Fprintln(os.Stderr, "run 'ermatch -h' for usage")
	os.Exit(2)
}
