// Command erlint runs the repo's invariant analyzers (see
// internal/analysis and DESIGN.md "Static analysis"). It speaks the
// `go vet -vettool` protocol, so the normal entry point is
//
//	go build -o bin/erlint ./cmd/erlint
//	go vet -vettool=bin/erlint ./...
//
// which is what `make vet` does. Standalone,
//
//	erlint -list
//
// loads the whole module from source and prints each analyzer's
// invariant with its current finding and suppression counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/analysis/arenaretain"
	"repro/internal/analysis/codecreg"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/obsnilsafe"
	"repro/internal/analysis/poolbox"
)

var analyzers = []*analysis.Analyzer{
	arenaretain.Analyzer,
	codecreg.Analyzer,
	ctxflow.Analyzer,
	metricname.Analyzer,
	obsnilsafe.Analyzer,
	poolbox.Analyzer,
}

func main() { os.Exit(run()) }

func run() int {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit JSON output")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility; unused)")
	vFlag := fs.String("V", "", "print version and exit (-V=full)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON")
	listFlag := fs.Bool("list", false, "list analyzers with current module finding counts")
	fs.Parse(os.Args[1:])

	switch {
	case *vFlag != "":
		if err := analysis.PrintVersion(os.Stdout, progname); err != nil {
			return fail(err)
		}
		return 0
	case *flagsFlag:
		if err := analysis.PrintFlags(os.Stdout, analysis.VetToolFlags()); err != nil {
			return fail(err)
		}
		return 0
	case *listFlag:
		return list()
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0], *jsonFlag)
	}
	fmt.Fprintf(os.Stderr, "usage: %s [-list] | [-json] unit.cfg (via go vet -vettool)\n", progname)
	return 2
}

// vetUnit handles one go vet compilation unit.
func vetUnit(cfg string, asJSON bool) int {
	res, unit, err := analysis.RunUnit(cfg, analyzers)
	if err != nil {
		return fail(err)
	}
	if res == nil {
		return 0 // VetxOnly, or a typecheck failure the compiler will report
	}
	if asJSON {
		if err := analysis.PrintJSON(os.Stdout, unit.Fset, unit.ID, res.Diagnostics); err != nil {
			return fail(err)
		}
		return 0
	}
	if len(res.Diagnostics) > 0 {
		analysis.PrintPlain(os.Stderr, unit.Fset, res.Diagnostics)
		return 2
	}
	return 0
}

// list loads the module from source and prints per-analyzer counts.
func list() int {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		return fail(err)
	}
	units, err := analysis.LoadModule(root)
	if err != nil {
		return fail(err)
	}
	findings := make(map[string]int)
	suppressed := make(map[string]int)
	for _, u := range units {
		res, err := analysis.RunAnalyzers(u, analyzers)
		if err != nil {
			return fail(err)
		}
		for _, d := range res.Diagnostics {
			findings[d.Analyzer]++
		}
		for name, n := range res.Suppressed {
			suppressed[name] += n
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "ANALYZER\tFINDINGS\tSUPPRESSED\tINVARIANT\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", a.Name, findings[a.Name], suppressed[a.Name], a.DocSummary())
	}
	if n := findings["erlint"]; n > 0 {
		fmt.Fprintf(w, "erlint\t%d\t-\tmalformed or stale //erlint:ignore directives\n", n)
	}
	w.Flush()
	fmt.Printf("%d packages analyzed\n", len(units))
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "erlint: %v\n", err)
	return 1
}
