// Command bdmtool computes and prints the Block Distribution Matrix of a
// CSV dataset, plus summary statistics: what the first MR job of the
// paper's workflow would produce.
//
// Usage:
//
//	bdmtool -in ds1.csv -m 8
//	bdmtool -in ds1.csv -m 8 -top 20     # 20 largest blocks only
package main

import (
	"cmp"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV (default stdin)")
		attr   = flag.String("attr", datagen.AttrTitle, "blocking attribute")
		m      = flag.Int("m", 4, "number of input partitions (map tasks)")
		r      = flag.Int("r", 4, "number of reduce tasks for the BDM job")
		prefix = flag.Int("prefix", 3, "blocking key length")
		top    = flag.Int("top", 10, "print only the N largest blocks (0 = all)")
		plan   = flag.String("plan", "", "also show a strategy's reduce-task plan and timeline: basic, blocksplit, or pairrange")
		nodes  = flag.Int("nodes", 4, "simulated cluster size for the -plan timeline")
		obsCLI obs.CLI
	)
	obsCLI.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		usage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	// A bad -plan name is a usage error; validate it before any work so
	// a typo fails fast with exit 2 instead of after the BDM run.
	if *plan != "" {
		if _, err := planStrategy(*plan); err != nil {
			usage(err)
		}
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	// Stream rows straight into the m input partitions (no intermediate
	// full entity slice).
	parts, err := entity.ReadPartitionsCSV(src, *m)
	if err != nil {
		fail(err)
	}
	observer, err := obsCLI.Start(nil)
	if err != nil {
		usage(err)
	}
	matrix, _, _, err := bdm.Compute(&mapreduce.Engine{Obs: observer}, parts, bdm.JobOptions{
		Attr:           *attr,
		KeyFunc:        blocking.NormalizedPrefix(*prefix),
		NumReduceTasks: *r,
		UseCombiner:    true,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("entities=%d partitions=%d blocks=%d pairs=%d\n",
		parts.Total(), matrix.NumPartitions(), matrix.NumBlocks(), matrix.Pairs())

	type row struct {
		k     int
		size  int
		pairs int64
	}
	rows := make([]row, matrix.NumBlocks())
	for k := range rows {
		rows[k] = row{k: k, size: matrix.Size(k), pairs: matrix.BlockPairs(k)}
	}
	slices.SortFunc(rows, func(a, b row) int { return cmp.Compare(b.pairs, a.pairs) })
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}

	t := &report.Table{Headers: []string{"block", "key", "entities", "pairs", "%pairs"}}
	for _, rw := range rows {
		pct := 0.0
		if matrix.Pairs() > 0 {
			pct = 100 * float64(rw.pairs) / float64(matrix.Pairs())
		}
		t.AddRow(rw.k, matrix.BlockKey(rw.k), rw.size, rw.pairs, fmt.Sprintf("%.1f%%", pct))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fail(err)
	}

	if *plan != "" {
		if err := showPlan(matrix, *plan, *m, *r, *nodes); err != nil {
			fail(err)
		}
	}
	if err := obsCLI.Finish(); err != nil {
		fail(fmt.Errorf("write trace: %w", err))
	}
}

// showPlan prints a strategy's per-reduce-task workload statistics and
// the simulated reduce-phase timeline on a small cluster.
func showPlan(matrix *bdm.Matrix, name string, m, r, nodes int) error {
	strat, err := planStrategy(name)
	if err != nil {
		return err
	}
	plan, err := strat.Plan(matrix, m, r)
	if err != nil {
		return err
	}
	st := plan.ComparisonStats()
	fmt.Printf("\n%s plan: r=%d max=%d mean=%.1f max/mean=%.2f CV=%.3f Gini=%.3f\n",
		strat.Name(), r, st.Max, st.Mean, st.MaxOverMean, st.CV, st.Gini)

	cfg := cluster.DefaultSlots(nodes)
	cm := cluster.DefaultCostModel()
	jr, err := cluster.SimulateJob(cfg, cm, plan.Workload(strat.Name()))
	if err != nil {
		return err
	}
	fmt.Printf("simulated reduce phase on %d nodes (makespan %.0f units, utilization %.1f%%):\n",
		nodes, jr.ReducePhase.Makespan, 100*jr.ReducePhase.Utilization())
	fmt.Print(jr.ReducePhase.Gantt(60))
	return nil
}

func planStrategy(name string) (core.Strategy, error) {
	switch name {
	case "basic":
		return core.Basic{}, nil
	case "blocksplit":
		return core.BlockSplit{}, nil
	case "pairrange":
		return core.PairRange{}, nil
	default:
		return nil, fmt.Errorf("unknown -plan strategy %q (want basic, blocksplit, or pairrange)", name)
	}
}

// fail reports a runtime error (exit 1); usage reports a bad
// invocation with exit 2, matching the other er commands.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "bdmtool: %v\n", err)
	os.Exit(1)
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "bdmtool: %v\n", err)
	fmt.Fprintln(os.Stderr, "run 'bdmtool -h' for usage")
	os.Exit(2)
}
