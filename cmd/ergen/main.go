// Command ergen generates the synthetic evaluation datasets as CSV.
//
// Usage:
//
//	ergen -dataset ds1 -scale 0.1 -out ds1.csv
//	ergen -dataset exp -n 10000 -blocks 100 -skew 0.8 -out skewed.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/entity"
)

func main() {
	var (
		dataset = flag.String("dataset", "ds1", "ds1, ds2, or exp (exponential skew)")
		scale   = flag.Float64("scale", 0.05, "scale factor for ds1/ds2")
		n       = flag.Int("n", 10000, "entity count for -dataset exp")
		blocks  = flag.Int("blocks", 100, "block count for -dataset exp")
		skew    = flag.Float64("skew", 0.5, "skew factor s for -dataset exp")
		seed    = flag.Int64("seed", 42, "random seed for -dataset exp")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print Figure 8-style dataset statistics to stderr")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		usage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}

	var (
		entities []entity.Entity
		attrs    []string
	)
	switch *dataset {
	case "ds1":
		entities, _ = datagen.Generate(datagen.DS1Spec(*scale))
		attrs = []string{datagen.AttrTitle}
	case "ds2":
		entities, _ = datagen.Generate(datagen.DS2Spec(*scale))
		attrs = []string{datagen.AttrTitle}
	case "exp":
		entities = datagen.Exponential(*n, *blocks, *skew, *seed)
		attrs = []string{datagen.AttrBlock, datagen.AttrTitle}
	default:
		usage(fmt.Errorf("unknown dataset %q (want ds1, ds2, or exp)", *dataset))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := entity.WriteCSV(w, entities, attrs); err != nil {
		fail(err)
	}
	if *stats {
		st := datagen.ComputeStats(entities, datagen.AttrTitle, datagen.BlockKey())
		if *dataset == "exp" {
			st = datagen.ComputeStats(entities, datagen.AttrBlock, func(v string) string { return v })
		}
		fmt.Fprintf(os.Stderr, "entities=%d blocks=%d largest=%d (%.1f%% of entities) pairs=%d (%.1f%% in largest)\n",
			st.Entities, st.Blocks, st.LargestBlock, 100*st.LargestBlockFrac, st.Pairs, 100*st.LargestPairsFrac)
	}
}

// fail reports a runtime error (exit 1); usage reports a bad
// invocation with exit 2, matching the other er commands.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
	os.Exit(1)
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
	fmt.Fprintln(os.Stderr, "run 'ergen -h' for usage")
	os.Exit(2)
}
