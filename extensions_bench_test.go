package repro_test

import (
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/multipass"
	"repro/internal/sn"
)

// BenchmarkExtensionSortedNeighborhood contrasts the related-work
// Sorted Neighborhood approach ([11] in the paper) with BlockSplit on a
// heavily skewed dataset. SN's window bounds every entity's comparisons,
// so its total work stays linear where block-based matching is
// quadratic — at the price of a different (window-limited) candidate
// set. Metric: SN comparisons as a fraction of the blocked pair count.
func BenchmarkExtensionSortedNeighborhood(b *testing.B) {
	es := datagen.Exponential(4000, 20, 0.8, 3)
	parts := entity.SplitRoundRobin(es, 4)
	blockedPairs := func() int64 {
		_, comps := er.SerialMatch(es, datagen.AttrBlock, blocking.Identity(), nil)
		return comps
	}()
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sn.Run(parts, sn.Config{
			Attr:       datagen.AttrBlock,
			Key:        func(v string) string { return v },
			Window:     10,
			R:          8,
			RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
		})
		if err != nil {
			b.Fatal(err)
		}
		frac = float64(res.Comparisons) / float64(blockedPairs)
	}
	b.ReportMetric(frac, "sn/blocked-comparisons")
}

// BenchmarkExtensionRankedSN contrasts naive key-range-partitioned SN
// with the rank-partitioned variant on a skewed dataset. Metric: the
// keyed variant's straggler factor divided by the ranked variant's
// (≫1 means rank partitioning pays off).
func BenchmarkExtensionRankedSN(b *testing.B) {
	es := datagen.Exponential(4000, 20, 1.0, 5)
	parts := entity.SplitRoundRobin(es, 4)
	cfg := sn.Config{
		Attr:       datagen.AttrBlock,
		Key:        func(v string) string { return v },
		Window:     10,
		R:          8,
		RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
	}
	straggler := func(res *sn.Result) float64 {
		var mx, total int64
		for _, rm := range res.MatchResult.ReduceMetrics {
			c := rm.Counter(core.ComparisonsCounter)
			total += c
			if c > mx {
				mx = c
			}
		}
		if total == 0 {
			return 1
		}
		return float64(mx) * float64(len(res.MatchResult.ReduceMetrics)) / float64(total)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keyed, err := sn.Run(parts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ranked, err := sn.RunRanked(parts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = straggler(keyed) / straggler(ranked)
	}
	b.ReportMetric(ratio, "keyed/ranked-straggler")
}

// BenchmarkExtensionMultiPass measures the two-pass (prefix + suffix)
// blocking pipeline end to end with PairRange, reporting the candidate
// redundancy the least-common-key rule absorbs.
func BenchmarkExtensionMultiPass(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.01))
	parts := entity.SplitRoundRobin(es, 4)
	passes := []multipass.Pass{
		{Name: "prefix", Attr: datagen.AttrTitle, Key: blocking.NormalizedPrefix(3)},
		{Name: "suffix", Attr: datagen.AttrTitle, Key: blocking.Suffix(4)},
	}
	overhead := multipass.Overhead(es, passes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multipass.Run(parts, multipass.Config{
			Passes:   passes,
			Strategy: core.PairRange{},
			R:        16,
			ErConfig: er.Config{RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}}, UseCombiner: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(overhead, "candidate-redundancy")
}

// BenchmarkExtensionMissingKeys runs the Section III decomposition
// (blocked + Cartesian parts) end to end.
func BenchmarkExtensionMissingKeys(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.005))
	// Knock the blocking key out of 5% of the entities.
	key := func(v string) string {
		if len(v) > 0 && v[0] == 'q' { // ~1/26 of prefixes
			return ""
		}
		return blocking.Prefix(3)(v)
	}
	parts := entity.SplitRoundRobin(es, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := er.RunWithMissingKeys(parts, er.Config{
			Strategy:   core.BlockSplit{},
			Attr:       datagen.AttrTitle,
			BlockKey:   key,
			R:          8,
			RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Comparisons), "comparisons")
		}
	}
}

// BenchmarkExtensionMemoryCap quantifies the balance cost of bounding
// reduce-side buffers (BlockSplit.MaxEntitiesPerTask).
func BenchmarkExtensionMemoryCap(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.05))
	x, err := bdmOf(es, 20)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		def, err := core.BlockSplit{}.Plan(x, 20, 100)
		if err != nil {
			b.Fatal(err)
		}
		capped, err := core.BlockSplit{MaxEntitiesPerTask: 32}.Plan(x, 20, 100)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(capped.MaxReduceComparisons()) / float64(def.MaxReduceComparisons())
	}
	b.ReportMetric(ratio, "capped/uncapped-maxload")
}

func bdmOf(es []entity.Entity, m int) (*bdm.Matrix, error) {
	return bdm.FromPartitions(entity.SplitRoundRobin(es, m), datagen.AttrTitle, datagen.BlockKey())
}
