// Allocation pin for the typed engine's fault-free path: the
// benchmarks in bench_test.go make allocs/op visible, but only fail a
// human reading the numbers. This test fails the build when the typed
// hot paths (bucketing, spill sort, merge, group streaming, pooled
// scratch) regress past an explicit ceiling.
package repro_test

import (
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// typedAllocCeiling is deliberately above the measured steady state
// (~63 allocs per run of the fixed job below) to absorb sync.Pool
// evictions when a GC lands mid-measurement, while still catching the
// failure modes that matter: per-record boxing (the boxed engine costs
// ~6400 on the same job), per-put pool box allocation, and
// append-doubling in the task loops — each of which shows up as
// hundreds of allocs, not tens.
const typedAllocCeiling = 150

// obsAllocCeiling bounds the same job with an Observer attached. The
// tracer records into preallocated slots and every counter is a plain
// atomic, so the enabled path's only extra steady-state allocations
// are the handful of timer/closure values the span helpers capture —
// single digits, absorbed by the shared headroom. The pin documents
// that enabling observability must not change the allocation class of
// the hot path (per-record or per-task costs would add hundreds).
const obsAllocCeiling = typedAllocCeiling + 10

// The pin runs at Parallelism 1 and 4: raising parallelism must not
// raise the allocation count (workers share the pooled scratch; the
// parallel sort's helper goroutines are the only per-worker cost).
// Each point runs twice — observability disabled (Obs nil, the default)
// and enabled — so a regression in either path fails the build.
func TestTypedEngineAllocsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin is a perf gate, skipped in -short")
	}
	if raceEnabled {
		t.Skip("race mode drops sync.Pool items at will; the pin would flake")
	}
	input := shuffleBenchInput(4, 500)
	for _, parallelism := range []int{1, 4} {
		for _, observed := range []bool{false, true} {
			job := shuffleBenchJob(4, true)
			eng := mapreduce.Engine{Parallelism: parallelism}
			ceiling, mode := typedAllocCeiling, "obs disabled"
			if observed {
				// Quiet keeps slog out of the measurement: the pin is
				// about the tracing/metrics hot path, not log rendering.
				eng.Obs = obs.New(obs.Options{Log: obs.Quiet()})
				ceiling, mode = obsAllocCeiling, "obs enabled"
			}
			run := func() {
				if _, err := job.Run(&eng, input); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the typed scratch pools (and intern the job name)
			if allocs := testing.AllocsPerRun(10, run); allocs > float64(ceiling) {
				t.Errorf("typed fault-free run (parallelism %d, %s): %.0f allocs, ceiling %d",
					parallelism, mode, allocs, ceiling)
			}
		}
	}
}
