package repro_test

// Benchmarks of the out-of-core dataflow: the spill/merge overhead
// versus the in-memory typed engine at several budgets, and an
// end-to-end run on a datagen dataset ≥10× the spill budget reporting
// peak heap (runtime.ReadMemStats sampling). Regression-tracked in
// BENCH_<date>.json via scripts/bench.sh.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/runio"
)

// BenchmarkExternalShuffle compares the typed in-memory engine against
// the external dataflow at several spill budgets on the full two-job
// BlockSplit workflow (the honest price of going out-of-core: codec
// encode/decode plus run-file I/O on every spilled record).
func BenchmarkExternalShuffle(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.05))
	parts := entity.SplitRoundRobin(es, 4)
	run := func(b *testing.B, eng *mapreduce.Engine) {
		var spilled int64
		for i := 0; i < b.N; i++ {
			res, err := er.Run(parts, er.Config{
				Strategy:    core.BlockSplit{},
				Attr:        datagen.AttrTitle,
				BlockKey:    datagen.BlockKey(),
				R:           16,
				RunOptions:  er.RunOptions{Engine: eng},
				UseCombiner: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			spilled = 0
			for j := range res.MatchResult.MapMetrics {
				spilled += res.MatchResult.MapMetrics[j].SpillBytesWritten
			}
		}
		b.ReportMetric(float64(spilled)/1024, "spilled-KB/op")
	}
	b.Run("typed", func(b *testing.B) {
		run(b, &mapreduce.Engine{Parallelism: 4})
	})
	for _, budget := range []int64{16 << 10, 64 << 10, 256 << 10} {
		name := "external/budget=" + byteSizeName(budget)
		b.Run(name, func(b *testing.B) {
			run(b, &mapreduce.Engine{
				Parallelism: 4,
				Dataflow:    mapreduce.DataflowExternal,
				SpillBudget: budget,
				TmpDir:      b.TempDir(),
			})
		})
	}
}

func byteSizeName(n int64) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "m"
	case n >= 1<<10:
		return itoa(n>>10) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkExternalEndToEnd runs the full BlockSplit workflow on a
// datagen dataset whose spilled shuffle volume is ≥10× the budget,
// reporting wall time and sampled peak heap for the in-memory and
// out-of-core engines side by side.
func BenchmarkExternalEndToEnd(b *testing.B) {
	const budget = 16 << 10
	es, _ := datagen.Generate(datagen.DS1Spec(0.1))
	parts := entity.SplitRoundRobin(es, 4)
	run := func(b *testing.B, eng *mapreduce.Engine, wantSpill bool) {
		var peakMB float64
		var spilled int64
		for i := 0; i < b.N; i++ {
			runtime.GC()
			var res *er.Result
			var err error
			peak := samplePeakHeap(func() {
				res, err = er.Run(parts, er.Config{
					Strategy:    core.BlockSplit{},
					Attr:        datagen.AttrTitle,
					BlockKey:    datagen.BlockKey(),
					R:           16,
					RunOptions:  er.RunOptions{Engine: eng},
					UseCombiner: true,
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			peakMB = float64(peak) / (1 << 20)
			spilled = 0
			for j := range res.MatchResult.MapMetrics {
				spilled += res.MatchResult.MapMetrics[j].SpillBytesWritten
			}
		}
		if wantSpill && spilled < 10*budget {
			b.Fatalf("spilled %d bytes, want >= 10x the %d budget", spilled, budget)
		}
		b.ReportMetric(peakMB, "peak-heap-MB")
	}
	b.Run("typed", func(b *testing.B) {
		run(b, &mapreduce.Engine{Parallelism: 4}, false)
	})
	b.Run("external", func(b *testing.B) {
		run(b, &mapreduce.Engine{
			Parallelism: 4,
			Dataflow:    mapreduce.DataflowExternal,
			SpillBudget: budget,
			TmpDir:      b.TempDir(),
		}, true)
	})
}

// samplePeakHeap runs fn while sampling HeapAlloc, returning the peak.
func samplePeakHeap(fn func()) uint64 {
	var peak atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	fn()
	close(stop)
	wg.Wait()
	return peak.Load()
}

// BenchmarkRunioCodecs measures the per-record disk codec hot path:
// encode + decode of a typical annotated entity record.
func BenchmarkRunioCodecs(b *testing.B) {
	e := entity.New("prod-0001234", datagen.AttrTitle, "canon powershot sx130is 12.1 mp digital camera")
	c, ok := runio.Lookup[entity.Entity]()
	if !ok {
		b.Fatal("entity codec not registered")
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], e)
		if _, _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
