GO ?= go

.PHONY: check vet build test test-race test-cancel-race bench-smoke bench bench-all smoke-lowmem smoke-chaos smoke-dist smoke-obs clean

# check is the CI gate: static analysis, build, tests, benchmark smoke.
check: vet build test bench-smoke

# vet gates on three layers: stock go vet, erlint (the repo's
# invariant analyzers — internal/analysis, DESIGN.md "Static
# analysis"), and gofmt-clean sources (fixtures under testdata
# included). erlint is built once and driven through go vet's
# -vettool protocol, so per-package results are cached by the go
# build cache like any other vet check; -list prints each analyzer's
# invariant with live finding/suppression counts.
vet:
	$(GO) vet ./...
	@mkdir -p bin
	$(GO) build -o bin/erlint ./cmd/erlint
	$(GO) vet -vettool=bin/erlint ./...
	bin/erlint -list
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race runs the full suite under the race detector — the CI job
# that guards the typed engine's worker-goroutine and pooled-scratch
# concurrency.
test-race:
	$(GO) test -race ./...

# test-cancel-race runs the cancellation tests under the race detector
# as a fast, named gate: the cancel fires from inside concurrently
# executing tasks, exactly where a racy context check would show up.
test-cancel-race:
	$(GO) test -race -run Cancel ./internal/mapreduce ./internal/er ./internal/sn

# bench-smoke builds and runs every benchmark in the repo exactly once,
# so bench files cannot silently rot, without paying for a full
# measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./...

# bench runs the regression benchmarks with -benchmem and writes a
# BENCH_<date>.json snapshot (the perf trajectory).
bench:
	scripts/bench.sh

# bench-all runs the full figure + micro benchmark suite (slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .

clean:
	$(GO) clean ./...

# smoke-lowmem executes the Figure 9 jobs out-of-core with GOMEMLIMIT
# far below the shuffle volume, asserting success and spill cleanup.
smoke-lowmem:
	scripts/lowmem_smoke.sh

# smoke-chaos runs the fault-injection differential suites and the
# mid-phase cancellation tests under -race with a randomized chaos
# seed (echoed for reproduction; pin with CHAOS_SEED=N).
smoke-chaos:
	scripts/chaos_smoke.sh

# smoke-dist runs the match pipeline across real worker processes
# (master + 3 erworkers over HTTP), SIGKILLs one worker mid-reduce,
# and asserts the output is byte-identical to a local run and that
# gracefully stopped workers leave empty run directories.
smoke-dist:
	scripts/dist_smoke.sh

# smoke-obs runs the distributed comparison with tracing and the
# introspection server on, polls /status and /debug/vars live, and
# validates the exported traces (chrome trace_event with per-worker
# swimlanes; worker-side ndjson) via scripts/tracecheck.
smoke-obs:
	scripts/obs_smoke.sh
