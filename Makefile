GO ?= go

.PHONY: check vet build test bench-smoke bench clean

# check is the CI gate: static analysis, build, tests, benchmark smoke.
check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-smoke runs the shuffle-merge regression benchmark once to catch
# benchmark-harness breakage without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkShuffleMerge|BenchmarkEngineAllocs' -benchtime=1x -benchmem .

# bench runs the full figure + micro benchmark suite (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

clean:
	$(GO) clean ./...
