// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation section (run with
// `go test -bench=. -benchmem`), ablation benchmarks for the engine and
// strategy design choices documented in DESIGN.md, and micro-benchmarks
// for the hot paths of the library.
//
// The Figure* benchmarks execute the same experiment harness as
// cmd/erbench; each iteration regenerates the complete figure. Reported
// custom metrics summarize the figure's headline numbers so that
// `-bench` output alone documents the reproduction. DESIGN.md describes
// the shuffle/merge model the BenchmarkShuffleMerge and
// BenchmarkEngineAllocs regression benchmarks guard.
package repro_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/experiments"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/report"
	"repro/internal/similarity"
)

func benchOptions() experiments.Options {
	return experiments.DefaultOptions() // 5% scale, calibrated cost model
}

func cell(b *testing.B, t *report.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(t.Rows[row][col], "%"), 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric", row, col, t.Rows[row][col])
	}
	return v
}

// BenchmarkFigure8DatasetStats regenerates the dataset table (entities,
// blocks, largest-block share).
func BenchmarkFigure8DatasetStats(b *testing.B) {
	var largestPairShare float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure8(b.Context(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		largestPairShare = cell(b, t, 0, 6)
	}
	b.ReportMetric(largestPairShare, "DS1-largest-%pairs")
}

// BenchmarkFigure9Skew regenerates the robustness experiment (execution
// time per 10^4 pairs vs. data skew). Metric: how many times slower
// Basic is than BlockSplit at s=1 (paper: >12×).
func BenchmarkFigure9Skew(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure9(b.Context(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		ratio = cell(b, t, last, 2) / cell(b, t, last, 3)
	}
	b.ReportMetric(ratio, "basic/blocksplit@s=1")
}

// BenchmarkFigure10ReduceTasks regenerates the reduce-task sweep.
// Metric: Basic vs BlockSplit at r=160 (paper: factor 6).
func BenchmarkFigure10ReduceTasks(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure10(b.Context(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		ratio = cell(b, t, last, 1) / cell(b, t, last, 2)
	}
	b.ReportMetric(ratio, "basic/blocksplit@r=160")
}

// BenchmarkFigure11Sorted regenerates the sorted-input experiment.
// Metric: BlockSplit's slowdown on sorted input (paper: 1.8×).
func BenchmarkFigure11Sorted(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure11(b.Context(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		slowdown = cell(b, t, last, 2) / cell(b, t, last, 1)
	}
	b.ReportMetric(slowdown, "blocksplit-sorted-slowdown")
}

// BenchmarkFigure12MapOutput regenerates the map-output experiment.
// Metric: PairRange's map output relative to BlockSplit's at r=160
// (paper: PairRange largest for large r).
func BenchmarkFigure12MapOutput(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure12(b.Context(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		ratio = cell(b, t, last, 3) / cell(b, t, last, 2)
	}
	b.ReportMetric(ratio, "pairrange/blocksplit-emits@r=160")
}

// BenchmarkFigure13ScalabilityDS1 regenerates the DS1 scalability sweep.
// Metrics: speedup of BlockSplit and Basic at 100 nodes.
func BenchmarkFigure13ScalabilityDS1(b *testing.B) {
	var bsSpeedup, basicSpeedup float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure13(b.Context(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		basicSpeedup = cell(b, t, last, 4)
		bsSpeedup = cell(b, t, last, 6)
	}
	b.ReportMetric(basicSpeedup, "basic-speedup@100")
	b.ReportMetric(bsSpeedup, "blocksplit-speedup@100")
}

// BenchmarkFigure14ScalabilityDS2 regenerates the DS2 scalability sweep.
// Metric: PairRange speedup at 100 nodes (paper: DS2 scales much
// further than DS1).
func BenchmarkFigure14ScalabilityDS2(b *testing.B) {
	var prSpeedup float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure14(b.Context(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		prSpeedup = cell(b, t, last, 6)
	}
	b.ReportMetric(prSpeedup, "pairrange-speedup@100")
}

// ---- Ablation benchmarks (design choices from DESIGN.md) ----

// benchBDM builds the default ablation input: the DS1 stand-in at bench
// scale, partitioned round-robin over 20 map tasks.
func benchBDM(b *testing.B) *bdm.Matrix {
	b.Helper()
	es, _ := datagen.Generate(datagen.DS1Spec(0.05))
	x, err := bdm.FromPartitions(entity.SplitRoundRobin(es, 20), datagen.AttrTitle, datagen.BlockKey())
	if err != nil {
		b.Fatal(err)
	}
	return x
}

// BenchmarkAblationBlockSplitAssignment compares the paper's greedy
// descending-size match-task assignment against naive round-robin.
// Metric: round-robin's max reduce load relative to greedy's (>1 means
// the greedy heuristic earns its keep).
func BenchmarkAblationBlockSplitAssignment(b *testing.B) {
	x := benchBDM(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy, err := core.BlockSplit{}.PlanWithAssign(x, 20, 100, core.GreedyAssign)
		if err != nil {
			b.Fatal(err)
		}
		rr, err := core.BlockSplit{}.PlanWithAssign(x, 20, 100, core.RoundRobinAssign)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rr.MaxReduceComparisons()) / float64(greedy.MaxReduceComparisons())
	}
	b.ReportMetric(ratio, "roundrobin/greedy-maxload")
}

// BenchmarkAblationBDMCombiner measures the BDM job with and without
// the frequency-aggregating combiner (the paper's footnote-2
// optimization). Metric: map-output reduction factor.
func BenchmarkAblationBDMCombiner(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.05))
	parts := entity.SplitRoundRobin(es, 20)
	eng := &mapreduce.Engine{Parallelism: 4}
	var reduction float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, plain, err := bdm.Compute(eng, parts, bdm.JobOptions{
			Attr: datagen.AttrTitle, KeyFunc: datagen.BlockKey(), NumReduceTasks: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, _, combined, err := bdm.Compute(eng, parts, bdm.JobOptions{
			Attr: datagen.AttrTitle, KeyFunc: datagen.BlockKey(), NumReduceTasks: 20, UseCombiner: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		reduction = float64(plain.MapOutputRecords) / float64(combined.MapOutputRecords)
	}
	b.ReportMetric(reduction, "map-output-reduction")
}

// BenchmarkAblationPairRangeRanges sweeps the number of ranges r and
// reports the replication overhead (map emits per input entity) at the
// largest r — the cost PairRange pays for its perfect balance.
func BenchmarkAblationPairRangeRanges(b *testing.B) {
	x := benchBDM(b)
	var emitsPerEntity float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range []int{10, 100, 1000} {
			plan, err := core.PairRange{}.Plan(x, 20, r)
			if err != nil {
				b.Fatal(err)
			}
			emitsPerEntity = float64(plan.TotalMapEmits()) / float64(x.TotalEntities())
		}
	}
	b.ReportMetric(emitsPerEntity, "emits-per-entity@r=1000")
}

// BenchmarkAblationSlotHeterogeneity quantifies how much of the
// benefit-from-more-reduce-tasks effect (Figure 10) stems from slot
// speed heterogeneity: makespan ratio r=20 vs r=160 on heterogeneous
// slots for a perfectly balanced workload.
func BenchmarkAblationSlotHeterogeneity(b *testing.B) {
	cfg := cluster.DefaultSlots(10)
	speeds := cfg.SlotSpeeds(cfg.ReduceSlots())
	coarse := make([]float64, 20) // one 1000-unit task per slot
	for j := range coarse {
		coarse[j] = 1000
	}
	fine := make([]float64, 160) // eight 125-unit tasks per slot
	for j := range fine {
		fine[j] = 125
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcoarse := cluster.ScheduleWithSpeeds(coarse, speeds)
		mfine := cluster.ScheduleWithSpeeds(fine, speeds)
		ratio = mcoarse.Makespan / mfine.Makespan
	}
	b.ReportMetric(ratio, "coarse/fine-makespan")
}

// ---- Micro-benchmarks for the library's hot paths ----

func BenchmarkLevenshteinTitles(b *testing.B) {
	a := "canon eos 5d mark iii digital slr camera body"
	c := "canon eos 5d mark iv digital slr camera body only"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		similarity.Levenshtein(a, c)
	}
}

func BenchmarkLevenshteinBounded(b *testing.B) {
	a := "canon eos 5d mark iii digital slr camera body"
	c := "nikon d850 45mp full frame dslr with battery grip"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		similarity.LevenshteinBounded(a, c, 9) // 0.8 threshold band
	}
}

func BenchmarkPairEnumeration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for p := int64(0); p < 1000; p++ {
			core.CellOf(p, 1<<20)
		}
	}
}

func BenchmarkBDMFromPartitions(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.05))
	parts := entity.SplitRoundRobin(es, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bdm.FromPartitions(parts, datagen.AttrTitle, datagen.BlockKey()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBDMJobExecution(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.05))
	parts := entity.SplitRoundRobin(es, 20)
	eng := &mapreduce.Engine{Parallelism: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := bdm.Compute(eng, parts, bdm.JobOptions{
			Attr: datagen.AttrTitle, KeyFunc: datagen.BlockKey(), NumReduceTasks: 20, UseCombiner: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanBlockSplit(b *testing.B) {
	x := benchBDM(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.BlockSplit{}).Plan(x, 20, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanPairRange(b *testing.B) {
	x := benchBDM(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.PairRange{}).Plan(x, 20, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndStrategies executes the full two-job pipeline
// (counting matcher) on a 1% DS1 sample for each strategy — the
// library's end-to-end throughput.
func BenchmarkEndToEndStrategies(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.01))
	parts := entity.SplitRoundRobin(es, 4)
	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := er.Run(parts, er.Config{
					Strategy:    strat,
					Attr:        datagen.AttrTitle,
					BlockKey:    datagen.BlockKey(),
					R:           16,
					RunOptions:  er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
					UseCombiner: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// shuffleKey is the composite integer key of the shuffle benchmarks.
type shuffleKey struct{ block, sub int }

func compareShuffleKeys(a, b shuffleKey) int {
	if c := mapreduce.CompareInts(a.block, b.block); c != 0 {
		return c
	}
	return mapreduce.CompareInts(a.sub, b.sub)
}

func shuffleBlockOf(v int) shuffleKey {
	block := v % 37
	if v%5 == 0 {
		block = v % 3 // skew: 20% of records in 3 blocks
	}
	return shuffleKey{block: block, sub: v % 11}
}

// shuffleBenchJob builds a shuffle-heavy identity job on the typed
// engine: composite integer keys with a skewed distribution (a few
// giant groups plus a long tail), the shape the paper's reduce phase
// sees. The mapper re-emits its input; the reducer folds each group to
// one record, so the benchmark time is dominated by spill sort +
// reduce-side merge. coded toggles the binary key code fast path.
func shuffleBenchJob(r int, coded bool) *mapreduce.Job[int, shuffleKey, int, int] {
	job := &mapreduce.Job[int, shuffleKey, int, int]{
		Name:           "shuffle-bench",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[int, shuffleKey, int] {
			return &mapreduce.MapperFunc[int, shuffleKey, int]{
				OnMap: func(ctx *mapreduce.MapContext[int, shuffleKey, int], v int) {
					ctx.Emit(shuffleBlockOf(v), v)
				},
			}
		},
		NewReducer: func() mapreduce.Reducer[shuffleKey, int, int] {
			return &mapreduce.ReducerFunc[shuffleKey, int, int]{
				OnReduce: func(ctx *mapreduce.ReduceContext[int], _ shuffleKey, values []mapreduce.Rec[shuffleKey, int]) {
					sum := 0
					for _, v := range values {
						sum += v.Value
					}
					ctx.Emit(sum)
				},
			}
		},
		Partition: func(key shuffleKey, r int) int { return key.block % r },
		Compare:   compareShuffleKeys,
	}
	if coded {
		job.Coding = mapreduce.KeyCoding[shuffleKey]{
			Encode: func(k shuffleKey) mapreduce.Code {
				return mapreduce.Code{Hi: uint64(k.block), Lo: uint64(k.sub)}
			},
			Exact:     true,
			GroupBits: 128,
		}
	}
	return job
}

func shuffleBenchInput(m, perTask int) [][]int {
	input := make([][]int, m)
	for i := range input {
		input[i] = make([]int, perTask)
		for j := range input[i] {
			input[i][j] = i*perTask + j*7
		}
	}
	return input
}

// BenchmarkShuffleMerge pits the engine variants against each other on
// a shuffle-dominated job (16 map tasks × 4000 records, 8 reduce
// tasks): the typed engine with and without binary key codes, and the
// boxed oracle's k-way merge and concat+stable-sort paths. The group
// makes regressions of any path visible directly in -bench output.
func BenchmarkShuffleMerge(b *testing.B) {
	input := shuffleBenchInput(16, 4000)
	for _, mode := range []struct {
		name  string
		coded bool
		eng   mapreduce.Engine
	}{
		{name: "typed-coded", coded: true, eng: mapreduce.Engine{Parallelism: 4}},
		{name: "typed", eng: mapreduce.Engine{Parallelism: 4}},
		{name: "kway", eng: mapreduce.Engine{Parallelism: 4, Dataflow: mapreduce.DataflowBoxed}},
		{name: "concat-sort", eng: mapreduce.Engine{Parallelism: 4, Dataflow: mapreduce.DataflowBoxed, Shuffle: mapreduce.ShuffleConcatSort}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			job := shuffleBenchJob(8, mode.coded)
			eng := mode.eng
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := job.Run(&eng, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineAllocs tracks the engines' per-job allocation
// footprint on a small fixed job so that allocs/op regressions in the
// task hot paths (bucketing, spill sort, group streaming) are caught.
// The typed/boxed pair documents the per-record boxing cost the typed
// dataflow removes.
func BenchmarkEngineAllocs(b *testing.B) {
	input := shuffleBenchInput(4, 500)
	for _, mode := range []struct {
		name string
		eng  mapreduce.Engine
	}{
		{name: "typed", eng: mapreduce.Engine{}},
		{name: "boxed", eng: mapreduce.Engine{Dataflow: mapreduce.DataflowBoxed}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			job := shuffleBenchJob(4, true)
			eng := mode.eng
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := job.Run(&eng, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedule measures the cluster simulator's list scheduler.
func BenchmarkSchedule(b *testing.B) {
	costs := make([]float64, 1000)
	for i := range costs {
		costs[i] = float64(i%97 + 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster.Schedule(costs, 200)
	}
}

// BenchmarkMatcherEndToEnd runs a real edit-distance matching pass over
// a small catalog through the PairRange pipeline (the workload of the
// cmd/ermatch tool), using the prepared comparison kernel the tool now
// uses. BenchmarkMatcherEndToEndPlain keeps the pre-kernel per-pair
// path alive so the win stays visible in one -bench run.
func BenchmarkMatcherEndToEnd(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.005))
	parts := entity.SplitRoundRobin(es, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := er.Run(parts, er.Config{
			Strategy:        core.PairRange{},
			Attr:            datagen.AttrTitle,
			BlockKey:        blocking.NormalizedPrefix(3),
			PreparedMatcher: match.EditDistance(datagen.AttrTitle, 0.8),
			R:               16,
			RunOptions:      er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatcherEndToEndPlain is the same pipeline with the plain
// per-pair matcher (re-deriving runes and DP state on every
// comparison) — the baseline the prepared kernel is measured against.
func BenchmarkMatcherEndToEndPlain(b *testing.B) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.005))
	parts := entity.SplitRoundRobin(es, 4)
	matcher := func(x, y entity.Entity) (float64, bool) {
		tx, ty := x.Attr(datagen.AttrTitle), y.Attr(datagen.AttrTitle)
		if !similarity.LevenshteinAtLeast(tx, ty, 0.8) {
			return 0, false
		}
		return similarity.LevenshteinSimilarity(tx, ty), true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := er.Run(parts, er.Config{
			Strategy:   core.PairRange{},
			Attr:       datagen.AttrTitle,
			BlockKey:   blocking.NormalizedPrefix(3),
			Matcher:    matcher,
			R:          16,
			RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityKernels pits every prepared comparison kernel
// against its plain-string counterpart on title-shaped inputs. The
// prepared sub-benchmarks measure the steady-state per-pair cost
// (preparation done once outside the loop, as in the reducers) and must
// report 0 allocs/op — TestPreparedKernelAllocs asserts the same
// contract.
func BenchmarkSimilarityKernels(b *testing.B) {
	near1 := "canon eos 5d mark iii digital slr camera body"
	near2 := "canon eos 5d mark iv digital slr camera body only"
	far := "nikon d850 45mp full frame dslr with battery grip"
	p1, p2, pf := similarity.Prepare(near1), similarity.Prepare(near2), similarity.Prepare(far)
	for _, p := range []*similarity.Prepared{p1, p2, pf} {
		p.NGramProfile(3)
	}
	b.Run("LevenshteinAtLeast/plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.LevenshteinAtLeast(near1, near2, 0.8)
			similarity.LevenshteinAtLeast(near1, far, 0.8)
		}
	})
	b.Run("LevenshteinAtLeast/prepared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.LevenshteinMatchPrepared(p1, p2, 0.8)
			similarity.LevenshteinMatchPrepared(p1, pf, 0.8)
		}
	})
	b.Run("TokenJaccard/plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.TokenJaccard(near1, near2)
		}
	})
	b.Run("TokenJaccard/prepared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.TokenJaccardPrepared(p1, p2)
		}
	})
	b.Run("NGramJaccard/plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.JaccardNGram(near1, near2, 3)
		}
	})
	b.Run("NGramJaccard/prepared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.JaccardNGramPrepared(p1, p2, 3)
		}
	})
	b.Run("Prepare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.Prepare(near1)
		}
	})
}
