// Multipass demonstrates the paper's future-work extension: multi-pass
// blocking assigns each entity one block per pass (here: title prefix
// AND title suffix), which recovers duplicates whose typo falls inside
// the prefix — single-pass prefix blocking misses those entirely. The
// least-common-block-key rule keeps each candidate pair evaluated
// exactly once despite the replication.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/multipass"
	"repro/internal/similarity"
)

func main() {
	entities := catalog()

	matcher := func(a, b entity.Entity) (float64, bool) {
		sim := similarity.LevenshteinSimilarity(a.Attr("title"), b.Attr("title"))
		return sim, sim >= 0.8
	}

	ctx := context.Background()
	src := er.FromEntities(entities, 2)

	// Single-pass baseline: title-prefix blocking only.
	single, err := er.RunPipeline(ctx, src, er.Config{
		Strategy: core.PairRange{},
		Attr:     "title",
		BlockKey: blocking.NormalizedPrefix(3),
		Matcher:  matcher,
		R:        4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Multi-pass: prefix plus suffix.
	passes := []multipass.Pass{
		{Name: "prefix", Attr: "title", Key: blocking.NormalizedPrefix(3)},
		{Name: "suffix", Attr: "title", Key: blocking.Suffix(4)},
	}
	multi, err := multipass.RunPipeline(ctx, src, multipass.Config{
		Passes:   passes,
		Strategy: core.PairRange{},
		Matcher:  matcher,
		R:        4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("single-pass (prefix):      %d comparisons, %d matches\n",
		single.Comparisons, len(single.Matches))
	fmt.Printf("multi-pass (prefix+suffix): %d candidates shuffled, %d matches\n",
		multi.Comparisons, len(multi.Matches))
	fmt.Printf("redundancy overhead of the blocking: %.2fx\n",
		multipass.Overhead(entities, passes))

	fmt.Println("\nduplicates only multi-pass finds (typo in the prefix):")
	seen := make(map[core.MatchPair]bool)
	for _, p := range single.Matches {
		seen[p] = true
	}
	byID := make(map[string]string)
	for _, e := range entities {
		byID[e.ID] = e.Attr("title")
	}
	for _, p := range multi.Matches {
		if !seen[p] {
			fmt.Printf("  %s (%q) == %s (%q)\n", p.A, byID[p.A], p.B, byID[p.B])
		}
	}
}

func catalog() []entity.Entity {
	titles := map[string]string{
		"p1": "thinkpad x1 carbon gen 9",
		"p2": "thinkpad x1 carbon gen 9 ", // trailing space: same prefix & suffix
		"p3": "thinkpad x1 yoga gen 6",
		"p4": "macbook pro 14 inch m1",
		"p5": "nacbook pro 14 inch m1", // typo in prefix: only the suffix pass blocks it with p4
		"p6": "dell xps 13 plus",
		"p7": "bell xps 13 plus", // prefix typo again
		"p8": "asus zenbook 14 oled",
	}
	var es []entity.Entity
	for id, title := range titles {
		es = append(es, entity.New(id, "title", title))
	}
	entity.SortByAttr(es, "title") // deterministic iteration
	return entity.SortByAttr(es, "title")
}
