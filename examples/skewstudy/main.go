// Skewstudy demonstrates the paper's central claim on live executions:
// under skewed block distributions, the Basic strategy concentrates
// nearly all comparisons on a few reduce tasks while BlockSplit and
// PairRange keep every reduce task busy. It executes the real MapReduce
// jobs (not the analytic planner) on an exponentially skewed dataset and
// prints per-reduce-task comparison counts plus the simulated cluster
// time — a miniature of Figure 9.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
)

func main() {
	const (
		n      = 3000
		blocks = 20
		skew   = 0.6 // |Φk| ∝ e^(−0.6·k): block 0 holds ~45% of entities
		m      = 4
		r      = 8
	)
	// A SourceFunc feeds the pipeline straight from the generator.
	src := er.SourceFunc(func() (entity.Partitions, error) {
		return entity.SplitRoundRobin(datagen.Exponential(n, blocks, skew, 7), m), nil
	})

	cfg := cluster.DefaultSlots(4)
	cm := cluster.DefaultCostModel()

	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		res, err := er.RunPipeline(context.Background(), src, er.Config{
			RunOptions: er.RunOptions{Parallelism: 4},
			Strategy:   strat,
			Attr:       datagen.AttrBlock,
			BlockKey:   blocking.Identity(),
			Matcher:    nil, // count comparisons only
			R:          r,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s comparisons per reduce task: ", strat.Name())
		var mx int64
		for _, rm := range res.MatchResult.ReduceMetrics {
			c := rm.Counter(core.ComparisonsCounter)
			fmt.Printf("%8d", c)
			if c > mx {
				mx = c
			}
		}
		t, err := res.SimulatedTime(cfg, cm)
		if err != nil {
			log.Fatal(err)
		}
		imbalance := float64(mx) * float64(r) / float64(res.Comparisons)
		fmt.Printf("   max/avg=%.2f simulated=%8.0f\n", imbalance, t)

		// Reduce-phase timeline: the straggler slot of Basic versus the
		// solid bars of the balanced strategies.
		jr, err := cluster.SimulateJob(cfg, cm, cluster.WorkloadFromResult(&res.MatchResult.Metrics))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(jr.ReducePhase.Gantt(52))
		fmt.Println()
	}
	fmt.Println("Basic's heaviest task carries the whole largest block; the")
	fmt.Println("balanced strategies stay within a few percent of the average.")
}
