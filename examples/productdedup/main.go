// Productdedup is the paper's motivating workload at library scale:
// deduplicate a skewed product catalog (the DS1 stand-in) with all three
// strategies, measure match quality against the generator's injected
// duplicates, and compare real wall-clock behaviour of the executing
// engine.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/er"
	"repro/internal/match"
)

func main() {
	spec := datagen.DS1Spec(0.02) // ~2,400 products
	entities, truthPairs := datagen.Generate(spec)
	st := datagen.ComputeStats(entities, datagen.AttrTitle, datagen.BlockKey())
	fmt.Printf("catalog: %d products, %d blocks, largest block %.1f%% of entities / %.1f%% of pairs\n",
		st.Entities, st.Blocks, 100*st.LargestBlockFrac, 100*st.LargestPairsFrac)

	truth := make([]core.MatchPair, len(truthPairs))
	for i, tp := range truthPairs {
		truth[i] = core.NewMatchPair(tp[0], tp[1])
	}

	matcher := match.EditDistance(datagen.AttrTitle, 0.8)

	src := er.FromEntities(entities, runtime.NumCPU())
	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		start := time.Now()
		res, err := er.RunPipeline(context.Background(), src, er.Config{
			RunOptions:      er.RunOptions{Parallelism: runtime.NumCPU()},
			Strategy:        strat,
			Attr:            datagen.AttrTitle,
			BlockKey:        datagen.BlockKey(),
			PreparedMatcher: matcher,
			R:               4 * runtime.NumCPU(),
			UseCombiner:     true,
		})
		if err != nil {
			log.Fatal(err)
		}
		q := er.Evaluate(res.Matches, truth)
		fmt.Printf("%-10s comparisons=%9d matches=%4d precision=%.3f recall=%.3f f1=%.3f wall=%v\n",
			strat.Name(), res.Comparisons, len(res.Matches),
			q.Precision(), q.Recall(), q.F1(), time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nAll strategies evaluate exactly the same candidate pairs, so")
	fmt.Println("match quality is identical; only the work distribution differs.")
}
