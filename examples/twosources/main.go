// Twosources links two product catalogs R and S (Appendix I of the
// paper): only cross-source pairs sharing a blocking key are compared.
// It runs both two-source strategies and verifies they find the same
// links.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/er"
	"repro/internal/match"
)

func main() {
	// Generate one catalog and split it into two overlapping sources:
	// the injected near-duplicates guarantee cross-source matches.
	spec := datagen.DS1Spec(0.005)
	entities, _ := datagen.Generate(spec)
	r, s := datagen.TwoSources(entities, 0.5, 99)
	fmt.Printf("source R: %d entities, source S: %d entities\n", len(r), len(s))

	matcher := match.EditDistance(datagen.AttrTitle, 0.85)

	var results []*er.DualResult
	for _, strat := range []core.DualStrategy{core.BlockSplitDual{}, core.PairRangeDual{}} {
		res, err := er.RunDualPipeline(context.Background(),
			er.FromEntities(r, 2),
			er.FromEntities(s, 3),
			er.DualConfig{
				Strategy:        strat,
				Attr:            datagen.AttrTitle,
				BlockKey:        blocking.NormalizedPrefix(3),
				PreparedMatcher: matcher,
				R:               6,
			})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("%-10s cross-source pairs=%d comparisons=%d links=%d\n",
			strat.Name(), res.BDM.Pairs(), res.Comparisons, len(res.Matches))
	}

	if len(results[0].Matches) != len(results[1].Matches) {
		log.Fatalf("strategies disagree: %d vs %d links", len(results[0].Matches), len(results[1].Matches))
	}
	for i := range results[0].Matches {
		if results[0].Matches[i] != results[1].Matches[i] {
			log.Fatalf("strategies disagree at link %d", i)
		}
	}
	fmt.Println("both strategies produced identical link sets ✓")
	show := results[0].Matches
	if len(show) > 5 {
		show = show[:5]
	}
	for _, p := range show {
		fmt.Printf("  %s <-> %s\n", p.A, p.B)
	}
}
