// Quickstart: deduplicate a small product catalog with the PairRange
// load-balancing strategy, end to end through the two-job MapReduce
// workflow (BDM computation + load-balanced matching).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/match"
)

func main() {
	// A tiny product catalog with a few near-duplicate titles. The
	// blocking key (first three letters of the title) puts candidate
	// duplicates into the same block.
	titles := []string{
		"canon eos 5d mark iii",
		"canon eos 5d mk iii",
		"canon eos 5d mark iv",
		"nikon d850 body",
		"nikon d850 body only",
		"sony alpha a7 iii",
		"sony alpha a7iii",
		"panasonic lumix gh5",
		"olympus om-d e-m1",
		"fuji x-t4 mirrorless",
	}
	entities := make([]entity.Entity, len(titles))
	for i, t := range titles {
		entities[i] = entity.New(fmt.Sprintf("p%02d", i), "title", t)
	}

	// Two entities match when their titles' normalized edit-distance
	// similarity reaches 0.8 — the paper's match rule. The prepared
	// matcher caches each title's comparison form once per reduce group
	// instead of re-deriving it on every pair. The Source abstraction
	// feeds the pipeline (FromEntities splits round-robin into 2 map
	// partitions); with no Sink configured, matches are collected into
	// res.Matches, canonically sorted.
	cfg := er.Config{
		Strategy:        core.PairRange{},
		Attr:            "title",
		BlockKey:        blocking.NormalizedPrefix(3),
		PreparedMatcher: match.EditDistance("title", 0.8),
		R:               3,
	}
	res, err := er.RunPipeline(context.Background(), er.FromEntities(entities, 2), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("blocks: %d, candidate pairs after blocking: %d (of %d in the Cartesian product)\n",
		res.BDM.NumBlocks(), res.BDM.Pairs(), len(entities)*(len(entities)-1)/2)
	fmt.Printf("comparisons performed: %d\n", res.Comparisons)
	fmt.Println("matches:")
	for _, p := range res.Matches {
		fmt.Printf("  %s == %s\n", p.A, p.B)
	}

	// The same run with a streaming sink: matches flow straight from
	// the reduce tasks to the writer (NDJSON here) and are never
	// accumulated in memory — the output path for larger-than-RAM
	// results.
	fmt.Println("\nstreamed as NDJSON:")
	cfg.Sink = er.NewNDJSONSink(os.Stdout)
	if _, err := er.RunPipeline(context.Background(), er.FromEntities(entities, 2), cfg); err != nil {
		log.Fatal(err)
	}
}
