//go:build race

package repro_test

// raceEnabled gates allocation-count assertions: under the race
// detector sync.Pool deliberately drops items to widen interleavings,
// so steady-state pool hits are not guaranteed and alloc pins would
// flake.
const raceEnabled = true
