// Package cluster simulates the cloud environment of the paper's
// evaluation: n nodes, each running a fixed number of map and reduce
// processes (the paper configures 2+2 per EC2 High-CPU Medium instance).
// Each process executes one task at a time; when a task finishes, the
// next pending task is assigned to the freed process — Hadoop's
// slot-based scheduling, modeled as event-driven list scheduling.
//
// Task costs are derived from mapreduce.TaskMetrics (or from the analytic
// planners in internal/core) via a CostModel whose constants encode the
// paper's observation that the reduce-side pair comparisons dominate
// (>95% of) the runtime.
package cluster

import (
	"container/heap"
	"fmt"

	"repro/internal/mapreduce"
)

// Config describes the simulated cluster.
type Config struct {
	Nodes              int
	MapSlotsPerNode    int
	ReduceSlotsPerNode int

	// SlotSpeedSpread models hardware heterogeneity and computational
	// skew (EC2 virtualization, varying attribute lengths): slot i runs
	// at a deterministic speed in [1−spread/2, 1+spread/2]. Zero means
	// homogeneous slots. The paper observes that this "computational
	// skew diminishes for larger r" — finer tasks let list scheduling
	// route around slow processes, which is why BlockSplit and PairRange
	// benefit from more reduce tasks in Figure 10.
	SlotSpeedSpread float64
	// Seed makes the slot speeds deterministic per cluster.
	Seed int64
}

// DefaultSlots mirrors the paper's node configuration: at most two map
// and two reduce tasks in parallel per node, with mild (±15%) slot speed
// heterogeneity as measured on EC2-style virtualized hardware.
func DefaultSlots(nodes int) Config {
	return Config{
		Nodes:              nodes,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		SlotSpeedSpread:    0.3,
		Seed:               1,
	}
}

// SlotSpeeds derives the deterministic per-slot speed factors.
func (c Config) SlotSpeeds(slots int) []float64 {
	speeds := make([]float64, slots)
	for i := range speeds {
		u := splitmix(uint64(c.Seed)*0x9e3779b97f4a7c15 + uint64(i+1))
		frac := float64(u>>11) / float64(1<<53) // uniform in [0,1)
		speeds[i] = 1 + c.SlotSpeedSpread*(frac-0.5)
	}
	return speeds
}

// splitmix is the SplitMix64 mixing function: a stateless, deterministic
// pseudo-random permutation used for slot speeds.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: Nodes must be > 0, got %d", c.Nodes)
	}
	if c.MapSlotsPerNode <= 0 || c.ReduceSlotsPerNode <= 0 {
		return fmt.Errorf("cluster: slots per node must be > 0, got map=%d reduce=%d",
			c.MapSlotsPerNode, c.ReduceSlotsPerNode)
	}
	return nil
}

// MapSlots returns the total number of map processes in the cluster.
func (c Config) MapSlots() int { return c.Nodes * c.MapSlotsPerNode }

// ReduceSlots returns the total number of reduce processes.
func (c Config) ReduceSlots() int { return c.Nodes * c.ReduceSlotsPerNode }

// CostModel converts task workloads into simulated time units. The
// absolute unit is arbitrary (think microseconds); only ratios matter for
// the reproduced figures.
type CostModel struct {
	// PairCost is charged per entity-pair comparison in a reduce task.
	PairCost float64
	// ReduceRecordCost is charged per key-value pair a reduce task
	// receives (shuffle, sort, deserialization amortized).
	ReduceRecordCost float64
	// MapRecordCost is charged per input record a map task reads.
	MapRecordCost float64
	// MapEmitCost is charged per key-value pair a map task emits
	// (serialization, spill, transfer amortized).
	MapEmitCost float64
	// TaskOverhead is the fixed cost of launching any task.
	TaskOverhead float64
	// JobOverhead is the fixed cost of starting a job (JVM reuse,
	// scheduling, DFS round trips).
	JobOverhead float64
}

// DefaultCostModel is calibrated so that for the evaluation datasets the
// reduce-phase comparisons account for well over 95% of simulated time,
// matching the paper's measurement, while the BDM job and per-job fixed
// overheads stay visible at low skew (the Basic-wins-at-s=0 effect in
// Figure 9) and amount to a few percent of a typical run — the paper's
// 35s BDM job against matching runs of many minutes.
func DefaultCostModel() CostModel {
	return CostModel{
		// One pair comparison (edit distance on a title) is the unit.
		PairCost: 1.0,
		// Shuffling, sorting, and deserializing a reduce-side record is
		// cheaper than a comparison but not free — this is what makes
		// PairRange's larger map output visible at small per-task
		// workloads (Figure 13, DS1 at n=100).
		ReduceRecordCost: 0.5,
		// Reading and emitting map-side records costs a fraction of a
		// comparison (serialization only).
		MapRecordCost: 0.1,
		MapEmitCost:   0.1,
		TaskOverhead:  20,
		JobOverhead:   2000,
	}
}

// MapTaskCost computes the cost of a map task that reads records and
// emits emitted key-value pairs.
func (cm CostModel) MapTaskCost(records, emitted int64) float64 {
	return cm.TaskOverhead + float64(records)*cm.MapRecordCost + float64(emitted)*cm.MapEmitCost
}

// ReduceTaskCost computes the cost of a reduce task that receives records
// key-value pairs and performs comparisons pair comparisons.
func (cm CostModel) ReduceTaskCost(records, comparisons int64) float64 {
	return cm.TaskOverhead + float64(records)*cm.ReduceRecordCost + float64(comparisons)*cm.PairCost
}

// PhaseResult describes the simulated execution of one phase (all map
// tasks or all reduce tasks of a job).
type PhaseResult struct {
	Makespan float64
	// SlotBusy is the total busy time per slot, for utilization reports.
	SlotBusy []float64
	// Assignment[i] is the slot that executed task i.
	Assignment []int
	// TaskStart[i] / TaskEnd[i] bound task i's simulated execution.
	TaskStart []float64
	TaskEnd   []float64
}

// Utilization returns average slot busy time divided by the makespan,
// in [0,1]. A perfectly balanced phase scores 1.
func (p PhaseResult) Utilization() float64 {
	if p.Makespan == 0 || len(p.SlotBusy) == 0 {
		return 1
	}
	var sum float64
	for _, b := range p.SlotBusy {
		sum += b
	}
	return sum / (float64(len(p.SlotBusy)) * p.Makespan)
}

// Schedule runs event-driven list scheduling over homogeneous slots:
// tasks are assigned in index order, each to the process that frees
// earliest (ties broken by lowest slot index). This reproduces Hadoop's
// behaviour of handing the next pending task to whichever process
// finished first, including the straggler effects the paper's figures
// exhibit.
func Schedule(costs []float64, slots int) PhaseResult {
	if slots <= 0 {
		panic("cluster: Schedule requires slots > 0")
	}
	return ScheduleWithSpeeds(costs, uniformSpeeds(slots))
}

func uniformSpeeds(slots int) []float64 {
	speeds := make([]float64, slots)
	for i := range speeds {
		speeds[i] = 1
	}
	return speeds
}

// ScheduleWithSpeeds is Schedule over heterogeneous slots: task duration
// on slot i is cost/speeds[i]. Slow slots naturally receive fewer tasks
// because they free up later — which is why fine-grained workloads (many
// small reduce tasks) tolerate heterogeneity better than coarse ones.
func ScheduleWithSpeeds(costs []float64, speeds []float64) PhaseResult {
	if len(speeds) == 0 {
		panic("cluster: ScheduleWithSpeeds requires at least one slot")
	}
	for i, s := range speeds {
		if s <= 0 {
			panic(fmt.Sprintf("cluster: slot %d has non-positive speed %g", i, s))
		}
	}
	res := PhaseResult{
		SlotBusy:   make([]float64, len(speeds)),
		Assignment: make([]int, len(costs)),
		TaskStart:  make([]float64, len(costs)),
		TaskEnd:    make([]float64, len(costs)),
	}
	// Min-heap of (freeTime, slotIndex).
	h := make(slotHeap, len(speeds))
	for i := range h {
		h[i] = slotState{free: 0, idx: i}
	}
	heap.Init(&h)
	for i, c := range costs {
		s := heap.Pop(&h).(slotState)
		res.Assignment[i] = s.idx
		d := c / speeds[s.idx]
		res.TaskStart[i] = s.free
		res.SlotBusy[s.idx] += d
		s.free += d
		res.TaskEnd[i] = s.free
		if s.free > res.Makespan {
			res.Makespan = s.free
		}
		heap.Push(&h, s)
	}
	return res
}

type slotState struct {
	free float64
	idx  int
}

type slotHeap []slotState

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].idx < h[j].idx
}
func (h slotHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)   { *h = append(*h, x.(slotState)) }
func (h *slotHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// JobWorkload captures everything the simulator needs about one MR job:
// per-map-task and per-reduce-task workloads.
type JobWorkload struct {
	Name string
	// MapRecords[i] / MapEmits[i] describe map task i.
	MapRecords []int64
	MapEmits   []int64
	// ReduceRecords[j] / ReduceComparisons[j] describe reduce task j.
	ReduceRecords     []int64
	ReduceComparisons []int64
}

// TotalComparisons sums the reduce-side pair comparisons.
func (w JobWorkload) TotalComparisons() int64 {
	var t int64
	for _, c := range w.ReduceComparisons {
		t += c
	}
	return t
}

// TotalMapEmits sums the map-output key-value pairs (Figure 12's metric).
func (w JobWorkload) TotalMapEmits() int64 {
	var t int64
	for _, e := range w.MapEmits {
		t += e
	}
	return t
}

// JobResult is the simulated execution of a single job.
type JobResult struct {
	MapPhase    PhaseResult
	ReducePhase PhaseResult
	Time        float64
}

// SimulateJob computes the simulated wall-clock time of one job on the
// cluster: job overhead + map-phase makespan + reduce-phase makespan.
// (Hadoop overlaps shuffle with the map phase; the paper's workloads are
// reduce-dominated, so the sequential approximation preserves shapes.)
func SimulateJob(cfg Config, cm CostModel, w JobWorkload) (JobResult, error) {
	if err := cfg.validate(); err != nil {
		return JobResult{}, err
	}
	if len(w.MapRecords) != len(w.MapEmits) {
		return JobResult{}, fmt.Errorf("cluster: job %q: MapRecords and MapEmits lengths differ (%d vs %d)",
			w.Name, len(w.MapRecords), len(w.MapEmits))
	}
	if len(w.ReduceRecords) != len(w.ReduceComparisons) {
		return JobResult{}, fmt.Errorf("cluster: job %q: ReduceRecords and ReduceComparisons lengths differ (%d vs %d)",
			w.Name, len(w.ReduceRecords), len(w.ReduceComparisons))
	}
	mapCosts := make([]float64, len(w.MapRecords))
	for i := range mapCosts {
		mapCosts[i] = cm.MapTaskCost(w.MapRecords[i], w.MapEmits[i])
	}
	redCosts := make([]float64, len(w.ReduceRecords))
	for j := range redCosts {
		redCosts[j] = cm.ReduceTaskCost(w.ReduceRecords[j], w.ReduceComparisons[j])
	}
	res := JobResult{
		MapPhase:    ScheduleWithSpeeds(mapCosts, cfg.SlotSpeeds(cfg.MapSlots())),
		ReducePhase: ScheduleWithSpeeds(redCosts, cfg.SlotSpeeds(cfg.ReduceSlots())),
	}
	res.Time = cm.JobOverhead + res.MapPhase.Makespan + res.ReducePhase.Makespan
	return res, nil
}

// WorkloadFromResult extracts a JobWorkload from an executed MR job's
// metrics (the Metrics part shared by typed and boxed results). The
// "comparisons" user counter must have been maintained by the reduce
// function (the strategies in internal/core do).
func WorkloadFromResult(res *mapreduce.Metrics) JobWorkload {
	w := JobWorkload{
		Name:              res.JobName,
		MapRecords:        make([]int64, len(res.MapMetrics)),
		MapEmits:          make([]int64, len(res.MapMetrics)),
		ReduceRecords:     make([]int64, len(res.ReduceMetrics)),
		ReduceComparisons: make([]int64, len(res.ReduceMetrics)),
	}
	for i := range res.MapMetrics {
		w.MapRecords[i] = res.MapMetrics[i].InputRecords
		w.MapEmits[i] = res.MapMetrics[i].OutputRecords
	}
	for j := range res.ReduceMetrics {
		w.ReduceRecords[j] = res.ReduceMetrics[j].InputRecords
		w.ReduceComparisons[j] = res.ReduceMetrics[j].Counter("comparisons")
	}
	return w
}
