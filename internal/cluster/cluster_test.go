package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleSingleSlot(t *testing.T) {
	res := Schedule([]float64{3, 1, 4, 1, 5}, 1)
	if res.Makespan != 14 {
		t.Errorf("makespan = %g, want 14", res.Makespan)
	}
	if res.Utilization() != 1 {
		t.Errorf("utilization = %g, want 1", res.Utilization())
	}
}

func TestScheduleListOrder(t *testing.T) {
	// Two slots, tasks in order 4,3,2,1: slot0←4, slot1←3, slot1 frees
	// at 3 → gets 2 (→5), slot0 frees at 4 → gets 1 (→5). Makespan 5.
	res := Schedule([]float64{4, 3, 2, 1}, 2)
	if res.Makespan != 5 {
		t.Errorf("makespan = %g, want 5", res.Makespan)
	}
	wantAssign := []int{0, 1, 1, 0}
	for i, w := range wantAssign {
		if res.Assignment[i] != w {
			t.Errorf("task %d on slot %d, want %d", i, res.Assignment[i], w)
		}
	}
}

func TestScheduleStragglerDominates(t *testing.T) {
	// One huge task lower-bounds the makespan regardless of slots —
	// the Basic-strategy effect.
	costs := []float64{100, 1, 1, 1, 1, 1, 1, 1}
	res := Schedule(costs, 8)
	if res.Makespan != 100 {
		t.Errorf("makespan = %g, want 100", res.Makespan)
	}
}

func TestScheduleMoreSlotsNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(30) + 1
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = float64(rng.Intn(100) + 1)
		}
		prev := math.Inf(1)
		for slots := 1; slots <= 8; slots *= 2 {
			ms := Schedule(costs, slots).Makespan
			if ms > prev+1e-9 {
				t.Fatalf("trial %d: %d slots slower (%g) than fewer (%g)", trial, slots, ms, prev)
			}
			prev = ms
		}
	}
}

// TestScheduleBounds: list scheduling respects the classic bounds
// max(total/slots, maxTask) <= makespan <= total/slots + maxTask.
func TestScheduleBounds(t *testing.T) {
	f := func(raw []uint16, slotsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		slots := int(slotsRaw)%16 + 1
		costs := make([]float64, len(raw))
		var total, maxTask float64
		for i, r := range raw {
			costs[i] = float64(r%1000) + 1
			total += costs[i]
			if costs[i] > maxTask {
				maxTask = costs[i]
			}
		}
		ms := Schedule(costs, slots).Makespan
		lower := math.Max(total/float64(slots), maxTask)
		upper := total/float64(slots) + maxTask
		return ms >= lower-1e-6 && ms <= upper+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchedulePanicsOnZeroSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(.., 0) did not panic")
		}
	}()
	Schedule([]float64{1}, 0)
}

func TestConfigSlots(t *testing.T) {
	cfg := DefaultSlots(10)
	if cfg.MapSlots() != 20 || cfg.ReduceSlots() != 20 {
		t.Errorf("DefaultSlots(10) = %d map / %d reduce slots, want 20/20", cfg.MapSlots(), cfg.ReduceSlots())
	}
}

func TestCostModelTaskCosts(t *testing.T) {
	cm := CostModel{PairCost: 2, ReduceRecordCost: 3, MapRecordCost: 5, MapEmitCost: 7, TaskOverhead: 11}
	if got := cm.MapTaskCost(2, 3); got != 11+10+21 {
		t.Errorf("MapTaskCost = %g, want 42", got)
	}
	if got := cm.ReduceTaskCost(4, 5); got != 11+12+10 {
		t.Errorf("ReduceTaskCost = %g, want 33", got)
	}
}

func TestSimulateJob(t *testing.T) {
	cfg := Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2}
	cm := CostModel{PairCost: 1, ReduceRecordCost: 0, MapRecordCost: 1, MapEmitCost: 0, TaskOverhead: 0, JobOverhead: 10}
	w := JobWorkload{
		Name:              "t",
		MapRecords:        []int64{4, 4},
		MapEmits:          []int64{0, 0},
		ReduceRecords:     []int64{0, 0},
		ReduceComparisons: []int64{6, 2},
	}
	res, err := SimulateJob(cfg, cm, w)
	if err != nil {
		t.Fatal(err)
	}
	// Map phase: two 4-cost tasks on two slots = 4; reduce: 6 and 2 on
	// two slots = 6; total = 10 + 4 + 6.
	if res.Time != 20 {
		t.Errorf("simulated time = %g, want 20", res.Time)
	}
}

func TestSimulateJobValidation(t *testing.T) {
	cm := DefaultCostModel()
	if _, err := SimulateJob(Config{}, cm, JobWorkload{}); err == nil {
		t.Error("zero config: want error")
	}
	cfg := DefaultSlots(2)
	bad := JobWorkload{MapRecords: []int64{1}, MapEmits: []int64{1, 2}}
	if _, err := SimulateJob(cfg, cm, bad); err == nil {
		t.Error("mismatched map slices: want error")
	}
	bad2 := JobWorkload{ReduceRecords: []int64{1}, ReduceComparisons: nil}
	if _, err := SimulateJob(cfg, cm, bad2); err == nil {
		t.Error("mismatched reduce slices: want error")
	}
}

func TestWorkloadTotals(t *testing.T) {
	w := JobWorkload{
		MapEmits:          []int64{3, 4},
		ReduceComparisons: []int64{5, 6, 7},
	}
	if w.TotalMapEmits() != 7 {
		t.Errorf("TotalMapEmits = %d", w.TotalMapEmits())
	}
	if w.TotalComparisons() != 18 {
		t.Errorf("TotalComparisons = %d", w.TotalComparisons())
	}
}

func TestUtilizationBalanced(t *testing.T) {
	res := Schedule([]float64{5, 5, 5, 5}, 4)
	if u := res.Utilization(); math.Abs(u-1) > 1e-9 {
		t.Errorf("utilization = %g, want 1", u)
	}
	res = Schedule([]float64{10, 1, 1, 1}, 4)
	if u := res.Utilization(); u >= 0.5 {
		t.Errorf("skewed utilization = %g, want < 0.5", u)
	}
}
