package cluster

import (
	"math/rand"
	"testing"
)

func TestSpeculativeNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(40) + 1
		slots := rng.Intn(10) + 2
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = float64(rng.Intn(500) + 1)
		}
		cfg := Config{SlotSpeedSpread: 0.4, Seed: int64(trial)}
		speeds := cfg.SlotSpeeds(slots)
		plain := ScheduleWithSpeeds(costs, speeds).Makespan
		spec := ScheduleSpeculative(costs, speeds).Makespan
		if spec > plain+1e-9 {
			t.Fatalf("trial %d: speculative makespan %g exceeds plain %g", trial, spec, plain)
		}
	}
}

func TestSpeculativeRescuesStraggler(t *testing.T) {
	// Two slots, speeds 1.0 and 0.5; one long task lands on the slow
	// slot and a short task on the fast one. Without backups the long
	// task takes 200 on the slow slot; the fast slot idles at t=10 and
	// reruns it, finishing at 10+100=110.
	speeds := []float64{1.0, 0.5}
	costs := []float64{10, 100} // task 0 → slot 0, task 1 → slot 1
	plain := ScheduleWithSpeeds(costs, speeds)
	if plain.Makespan != 200 {
		t.Fatalf("plain makespan = %g, want 200", plain.Makespan)
	}
	spec := ScheduleSpeculative(costs, speeds)
	if spec.Makespan != 110 {
		t.Fatalf("speculative makespan = %g, want 110", spec.Makespan)
	}
}

func TestSpeculativeBackupLoses(t *testing.T) {
	// The backup starts too late to help: the original still wins.
	speeds := []float64{1.0, 0.9}
	costs := []float64{95, 100}
	spec := ScheduleSpeculative(costs, speeds)
	// Original task 1 on slot 1 ends at 100/0.9 ≈ 111.1; backup on slot
	// 0 starts at 95 and would end at 195.
	if spec.Makespan < 111 || spec.Makespan > 112 {
		t.Fatalf("makespan = %g, want ≈111.1 (original wins)", spec.Makespan)
	}
}

func TestSpeculativeDegenerate(t *testing.T) {
	if ms := ScheduleSpeculative(nil, []float64{1, 1}).Makespan; ms != 0 {
		t.Errorf("empty tasks makespan = %g", ms)
	}
	// Single slot: no idle slot can back anything up.
	res := ScheduleSpeculative([]float64{5, 5}, []float64{1})
	if res.Makespan != 10 {
		t.Errorf("single slot makespan = %g, want 10", res.Makespan)
	}
}
