package cluster

import (
	"cmp"
	"slices"
)

// ScheduleSpeculative models Hadoop's speculative execution on top of
// the list schedule: once every task is assigned and a slot goes idle,
// it launches a backup copy of the still-running task with the latest
// expected finish; the task completes when either copy does. Backups
// matter exactly where the paper's figures show straggler sensitivity —
// coarse workloads (few tasks per slot) on heterogeneous hardware.
//
// The model launches at most one backup per task and assigns idle slots
// in order of when they become free, mirroring the single-backup policy
// of Hadoop's default speculative scheduler.
//
// The execution engine now implements this policy for real — see
// mapreduce.RetryPolicy.SpeculativeSlowdown, which launches a live
// backup attempt for any task running longer than a multiple of the
// phase's median completed-task duration and commits whichever copy
// finishes first. This analytical model remains the tool for studying
// the policy's effect on makespan without running workloads.
func ScheduleSpeculative(costs []float64, speeds []float64) PhaseResult {
	res := ScheduleWithSpeeds(costs, speeds)
	n := len(costs)
	if n == 0 || len(speeds) < 2 {
		return res
	}
	// Slot free times after the primary schedule.
	free := make([]float64, len(speeds))
	for s := range free {
		free[s] = 0
	}
	for i := 0; i < n; i++ {
		if res.TaskEnd[i] > free[res.Assignment[i]] {
			free[res.Assignment[i]] = res.TaskEnd[i]
		}
	}
	// Idle slots in the order they become available.
	type idleSlot struct {
		at   float64
		slot int
	}
	idle := make([]idleSlot, 0, len(speeds))
	for s, f := range free {
		idle = append(idle, idleSlot{at: f, slot: s})
	}
	slices.SortFunc(idle, func(a, b idleSlot) int {
		if c := cmp.Compare(a.at, b.at); c != 0 {
			return c
		}
		return cmp.Compare(a.slot, b.slot)
	})

	end := append([]float64(nil), res.TaskEnd...)
	backed := make([]bool, n)
	for _, is := range idle {
		// Pick the un-backed task with the latest effective end that is
		// still running when this slot idles.
		best := -1
		for i := 0; i < n; i++ {
			if backed[i] || end[i] <= is.at || res.Assignment[i] == is.slot {
				continue
			}
			if best < 0 || end[i] > end[best] {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		backed[best] = true
		backupEnd := is.at + costs[best]/speeds[is.slot]
		if backupEnd < end[best] {
			end[best] = backupEnd
		}
	}
	res.TaskEnd = end
	res.Makespan = 0
	for i := 0; i < n; i++ {
		if end[i] > res.Makespan {
			res.Makespan = end[i]
		}
	}
	return res
}
