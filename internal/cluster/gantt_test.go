package cluster

import (
	"strings"
	"testing"
)

func TestGanttBalanced(t *testing.T) {
	res := Schedule([]float64{10, 10, 10, 10}, 4)
	g := res.Gantt(20)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d rows:\n%s", len(lines), g)
	}
	for _, l := range lines {
		if !strings.Contains(l, "100.0%") {
			t.Errorf("balanced slot not fully busy: %q", l)
		}
		if strings.Contains(l, ".") && strings.Contains(strings.SplitN(l, "|", 3)[1], ".") {
			t.Errorf("balanced slot shows idle time: %q", l)
		}
	}
}

func TestGanttStraggler(t *testing.T) {
	res := Schedule([]float64{100, 1, 1, 1}, 4)
	g := res.Gantt(40)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	full, mostlyIdle := 0, 0
	for _, l := range lines {
		bar := strings.SplitN(l, "|", 3)[1]
		hashes := strings.Count(bar, "#")
		if hashes == len(bar) {
			full++
		}
		if hashes <= len(bar)/10 {
			mostlyIdle++
		}
	}
	if full != 1 || mostlyIdle != 3 {
		t.Errorf("straggler pattern not visible (%d full, %d idle):\n%s", full, mostlyIdle, g)
	}
}

func TestGanttEmpty(t *testing.T) {
	var p PhaseResult
	if g := p.Gantt(10); !strings.Contains(g, "empty") {
		t.Errorf("empty phase gantt = %q", g)
	}
}

func TestTaskSpansConsistent(t *testing.T) {
	costs := []float64{5, 3, 8, 2, 7}
	res := Schedule(costs, 2)
	for i := range costs {
		if res.TaskEnd[i]-res.TaskStart[i] != costs[i] {
			t.Errorf("task %d span %g..%g, want duration %g", i, res.TaskStart[i], res.TaskEnd[i], costs[i])
		}
		if res.TaskEnd[i] > res.Makespan {
			t.Errorf("task %d ends after the makespan", i)
		}
	}
}
