package cluster

import (
	"fmt"
	"strings"
)

// Gantt renders the phase as a per-slot text timeline of the given
// character width — a quick visual of load balance. Each slot gets one
// row; a '#' marks simulated time the slot spent executing tasks, '.'
// marks idle time before the phase's makespan. The straggler pattern of
// a skewed Basic run (one long row, many short ones) is immediately
// visible.
func (p PhaseResult) Gantt(width int) string {
	if width <= 0 {
		width = 60
	}
	if p.Makespan <= 0 || len(p.SlotBusy) == 0 {
		return "(empty phase)\n"
	}
	// Reconstruct per-slot busy intervals from the task spans.
	type span struct{ start, end float64 }
	spans := make([][]span, len(p.SlotBusy))
	for i := range p.Assignment {
		s := p.Assignment[i]
		spans[s] = append(spans[s], span{p.TaskStart[i], p.TaskEnd[i]})
	}
	var b strings.Builder
	scale := float64(width) / p.Makespan
	for s, ss := range spans {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range ss {
			lo := int(sp.start * scale)
			hi := int(sp.end * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "slot %3d |%s| busy %5.1f%%\n", s, row, 100*p.SlotBusy[s]/p.Makespan)
	}
	return b.String()
}
