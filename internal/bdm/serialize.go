package bdm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The paper's Algorithm 3 writes the BDM to the distributed file system
// as triples (blocking key, partition index, count), one per non-zero
// cell, which the second job's map tasks read at initialization time.
// WriteTo/ReadFrom implement that on-disk format: a header line with the
// partition count, then one tab-separated cell per line. Blocking keys
// are quoted so that keys containing tabs or newlines survive the round
// trip.

// WriteTo serializes the matrix in the cell format. It returns the
// number of bytes written.
func (x *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "bdm\t%d\n", x.m)); err != nil {
		return n, fmt.Errorf("bdm: write header: %w", err)
	}
	for _, c := range x.Cells() {
		if err := count(fmt.Fprintf(bw, "%s\t%d\t%d\n", strconv.Quote(c.BlockKey), c.Partition, c.Count)); err != nil {
			return n, fmt.Errorf("bdm: write cell %q: %w", c.BlockKey, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("bdm: flush: %w", err)
	}
	return n, nil
}

// ReadFrom parses a matrix previously written by WriteTo.
func ReadFrom(r io.Reader) (*Matrix, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !br.Scan() {
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("bdm: read header: %w", err)
		}
		return nil, fmt.Errorf("bdm: empty input")
	}
	header := strings.Split(br.Text(), "\t")
	if len(header) != 2 || header[0] != "bdm" {
		return nil, fmt.Errorf("bdm: malformed header %q", br.Text())
	}
	m, err := strconv.Atoi(header[1])
	if err != nil || m <= 0 {
		return nil, fmt.Errorf("bdm: malformed partition count %q", header[1])
	}
	var cells []Cell
	line := 1
	for br.Scan() {
		line++
		fields := strings.Split(br.Text(), "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bdm: line %d: want 3 fields, got %d", line, len(fields))
		}
		key, err := strconv.Unquote(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bdm: line %d: bad key %q: %w", line, fields[0], err)
		}
		part, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bdm: line %d: bad partition %q: %w", line, fields[1], err)
		}
		cnt, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bdm: line %d: bad count %q: %w", line, fields[2], err)
		}
		cells = append(cells, Cell{BlockKey: key, Partition: part, Count: cnt})
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("bdm: read: %w", err)
	}
	return FromCells(cells, m)
}
