package bdm

import (
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/entity"
)

func dualParts() (entity.Partitions, []Source) {
	mk := func(id, key string) entity.Entity { return entity.New(id, "k", key) }
	parts := entity.Partitions{
		{mk("a", "x"), mk("b", "x"), mk("c", "y")}, // R
		{mk("d", "x"), mk("e", "z")},               // S
		{mk("f", "x"), mk("g", "z")},               // S
	}
	return parts, []Source{SourceR, SourceS, SourceS}
}

func TestFromDualPartitions(t *testing.T) {
	parts, sources := dualParts()
	x, err := FromDualPartitions(parts, sources, "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if x.NumBlocks() != 3 || x.NumPartitions() != 3 {
		t.Fatalf("shape %d×%d, want 3×3", x.NumBlocks(), x.NumPartitions())
	}
	xk, ok := x.BlockIndex("x")
	if !ok {
		t.Fatal("block x missing")
	}
	if x.SourceSize(xk, SourceR) != 2 || x.SourceSize(xk, SourceS) != 2 {
		t.Errorf("|x,R|=%d |x,S|=%d, want 2/2", x.SourceSize(xk, SourceR), x.SourceSize(xk, SourceS))
	}
	// Pairs: x: 2·2=4, y: 1·0=0, z: 0·2=0 → P=4.
	if x.Pairs() != 4 {
		t.Errorf("Pairs = %d, want 4", x.Pairs())
	}
	if got := x.BlockPairs(xk); got != 4 {
		t.Errorf("x pairs = %d, want 4", got)
	}
	// Entity offsets within source S: partition 2's x-entity is the
	// second S entity of block x.
	if got := x.EntityOffset(xk, 2); got != 1 {
		t.Errorf("EntityOffset(x, Π2) = %d, want 1", got)
	}
	if got := x.EntityOffset(xk, 1); got != 0 {
		t.Errorf("EntityOffset(x, Π1) = %d, want 0", got)
	}
	if x.PartitionSource(0) != SourceR || x.PartitionSource(2) != SourceS {
		t.Error("PartitionSource wrong")
	}
}

func TestFromDualPartitionsValidation(t *testing.T) {
	parts, sources := dualParts()
	if _, err := FromDualPartitions(nil, nil, "k", blocking.Identity()); err == nil {
		t.Error("empty partitions: want error")
	}
	if _, err := FromDualPartitions(parts, sources[:2], "k", blocking.Identity()); err == nil {
		t.Error("mismatched source tags: want error")
	}
	bad := []Source{SourceR, Source(7), SourceS}
	if _, err := FromDualPartitions(parts, bad, "k", blocking.Identity()); err == nil {
		t.Error("invalid source: want error")
	}
}

func TestDualString(t *testing.T) {
	parts, sources := dualParts()
	x, err := FromDualPartitions(parts, sources, "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if s := x.String(); !strings.Contains(s, "P=4") {
		t.Errorf("String() = %q", s)
	}
	if SourceR.String() != "R" || SourceS.String() != "S" {
		t.Error("Source strings wrong")
	}
}
