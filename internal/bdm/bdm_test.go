package bdm

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

func parts2() entity.Partitions {
	mk := func(id, key string) entity.Entity { return entity.New(id, "k", key) }
	return entity.Partitions{
		{mk("a", "x"), mk("b", "x"), mk("c", "y")},
		{mk("d", "x"), mk("e", "z"), mk("f", "z"), mk("g", "z")},
	}
}

func TestFromPartitions(t *testing.T) {
	x, err := FromPartitions(parts2(), "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if x.NumBlocks() != 3 || x.NumPartitions() != 2 {
		t.Fatalf("shape = %d×%d, want 3×2", x.NumBlocks(), x.NumPartitions())
	}
	// Lexicographic block order: x, y, z.
	if x.BlockKey(0) != "x" || x.BlockKey(2) != "z" {
		t.Errorf("block order = %q..%q", x.BlockKey(0), x.BlockKey(2))
	}
	xk, _ := x.BlockIndex("x")
	if x.SizeIn(xk, 0) != 2 || x.SizeIn(xk, 1) != 1 || x.Size(xk) != 3 {
		t.Errorf("x sizes wrong: %d/%d total %d", x.SizeIn(xk, 0), x.SizeIn(xk, 1), x.Size(xk))
	}
	// Pairs: x: 3, y: 0, z: 3 → 6; offsets 0, 3, 3.
	if x.Pairs() != 6 {
		t.Errorf("Pairs = %d, want 6", x.Pairs())
	}
	if x.PairOffset(1) != 3 || x.PairOffset(2) != 3 {
		t.Errorf("offsets = %d,%d, want 3,3", x.PairOffset(1), x.PairOffset(2))
	}
	if x.TotalEntities() != 7 {
		t.Errorf("TotalEntities = %d, want 7", x.TotalEntities())
	}
	k, size := x.LargestBlock()
	if size != 3 || (x.BlockKey(k) != "x" && x.BlockKey(k) != "z") {
		t.Errorf("LargestBlock = %d (size %d)", k, size)
	}
}

func TestEntityOffset(t *testing.T) {
	x, err := FromPartitions(parts2(), "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	xk, _ := x.BlockIndex("x")
	if got := x.EntityOffset(xk, 0); got != 0 {
		t.Errorf("EntityOffset(x, 0) = %d, want 0", got)
	}
	if got := x.EntityOffset(xk, 1); got != 2 {
		t.Errorf("EntityOffset(x, 1) = %d, want 2", got)
	}
}

func TestFromCellsValidation(t *testing.T) {
	if _, err := FromCells(nil, 0); err == nil {
		t.Error("m=0: want error")
	}
	if _, err := FromCells([]Cell{{BlockKey: "a", Partition: 5, Count: 1}}, 2); err == nil {
		t.Error("partition out of range: want error")
	}
	if _, err := FromCells([]Cell{{BlockKey: "a", Partition: 0, Count: -1}}, 2); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := FromCells([]Cell{
		{BlockKey: "a", Partition: 0, Count: 1},
		{BlockKey: "a", Partition: 0, Count: 2},
	}, 2); err == nil {
		t.Error("duplicate cell: want error")
	}
}

func TestEmptyMatrix(t *testing.T) {
	x, err := FromCells(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.NumBlocks() != 0 || x.Pairs() != 0 || x.TotalEntities() != 0 {
		t.Errorf("empty matrix not empty: %v", x)
	}
	if k, size := x.LargestBlock(); k != -1 || size != 0 {
		t.Errorf("LargestBlock on empty = %d,%d", k, size)
	}
}

func TestCellsRoundTrip(t *testing.T) {
	x, err := FromPartitions(parts2(), "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	y, err := FromCells(x.Cells(), x.NumPartitions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x.Cells(), y.Cells()) {
		t.Error("Cells round trip changed the matrix")
	}
}

// TestMRJobAgreesWithDirectBuilder is the core BDM property: Algorithm 3
// executed on the MR engine produces exactly the direct computation, for
// random inputs, any reduce-task count, with and without the combiner.
func TestMRJobAgreesWithDirectBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := rng.Intn(5) + 1
		parts := make(entity.Partitions, m)
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			p := rng.Intn(m)
			key := fmt.Sprintf("b%02d", rng.Intn(10))
			parts[p] = append(parts[p], entity.New(fmt.Sprintf("e%d", i), "k", key))
		}
		want, err := FromPartitions(parts, "k", blocking.Identity())
		if err != nil {
			t.Fatal(err)
		}
		for _, combiner := range []bool{false, true} {
			r := rng.Intn(7) + 1
			got, side, _, err := Compute(&mapreduce.Engine{}, parts, JobOptions{
				Attr: "k", KeyFunc: blocking.Identity(), NumReduceTasks: r, UseCombiner: combiner,
			})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !reflect.DeepEqual(got.Cells(), want.Cells()) {
				t.Fatalf("trial %d (r=%d combiner=%v): MR cells differ", trial, r, combiner)
			}
			// Side output preserves partitioning and annotates keys.
			for p := range parts {
				if len(side[p]) != len(parts[p]) {
					t.Fatalf("side output partition %d has %d records, want %d", p, len(side[p]), len(parts[p]))
				}
				for j, kv := range side[p] {
					if kv.Key != parts[p][j].Attr("k") {
						t.Fatalf("side output key mismatch at %d/%d", p, j)
					}
				}
			}
		}
	}
}

func TestMatrixString(t *testing.T) {
	x, err := FromPartitions(parts2(), "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	s := x.String()
	if !strings.Contains(s, "3 blocks") || !strings.Contains(s, "P=6") {
		t.Errorf("String() = %q", s)
	}
}

func TestJobPanicsOnBadOptions(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("nil KeyFunc", func() { Job(JobOptions{NumReduceTasks: 1}) })
	assertPanic("r=0", func() { Job(JobOptions{KeyFunc: blocking.Identity()}) })
}
