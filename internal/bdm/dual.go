package bdm

import (
	"fmt"
	"sort"

	"repro/internal/blocking"
	"repro/internal/entity"
)

// Source identifies one of the two input sources in the two-source
// matching extension of Appendix I.
type Source int

// The two sources, named as in the paper.
const (
	SourceR Source = 0
	SourceS Source = 1
)

func (s Source) String() string {
	if s == SourceR {
		return "R"
	}
	return "S"
}

// DualMatrix is the BDM for matching two sources R and S. Each input
// partition holds entities of exactly one source (the paper ensures this
// via Hadoop's MultipleInputs); the matrix distinguishes per block how
// many entities fall in each partition and, aggregated, in each source.
// Only cross-source pairs |Φk,R|·|Φk,S| count as match work.
type DualMatrix struct {
	keys    []string
	index   map[string]int
	sizes   [][]int  // [block][partition]
	srcOf   []Source // partition -> source
	m       int
	totalR  []int
	totalS  []int
	offsets []int64 // o(i) = Σ_{k<i} |Φk,R|·|Φk,S|
	pairs   int64
}

// NumBlocks returns the number of distinct blocking keys in R ∪ S.
func (x *DualMatrix) NumBlocks() int { return len(x.keys) }

// NumPartitions returns the total number of input partitions (both
// sources combined).
func (x *DualMatrix) NumPartitions() int { return x.m }

// PartitionSource returns the source partition p belongs to.
func (x *DualMatrix) PartitionSource(p int) Source { return x.srcOf[p] }

// BlockKey returns the blocking key of block k.
func (x *DualMatrix) BlockKey(k int) string { return x.keys[k] }

// BlockIndex returns the index for the given blocking key.
func (x *DualMatrix) BlockIndex(key string) (int, bool) {
	k, ok := x.index[key]
	return k, ok
}

// SizeIn returns the entity count of block k in partition p.
func (x *DualMatrix) SizeIn(k, p int) int { return x.sizes[k][p] }

// SourceSize returns |Φk,src|.
func (x *DualMatrix) SourceSize(k int, src Source) int {
	if src == SourceR {
		return x.totalR[k]
	}
	return x.totalS[k]
}

// BlockPairs returns |Φk,R| · |Φk,S|, the match work of block k.
func (x *DualMatrix) BlockPairs(k int) int64 {
	return int64(x.totalR[k]) * int64(x.totalS[k])
}

// Pairs returns the total number of cross-source pairs P.
func (x *DualMatrix) Pairs() int64 { return x.pairs }

// PairOffset returns o(k), the number of pairs in preceding blocks.
func (x *DualMatrix) PairOffset(k int) int64 { return x.offsets[k] }

// EntityOffset returns the entity-index base for block k entities of
// partition p: the number of block-k entities in preceding partitions of
// the same source.
func (x *DualMatrix) EntityOffset(k, p int) int {
	src := x.srcOf[p]
	off := 0
	for i := 0; i < p; i++ {
		if x.srcOf[i] == src {
			off += x.sizes[k][i]
		}
	}
	return off
}

// FromDualPartitions builds the two-source BDM directly. sources[p]
// names the source of partition p; len(sources) must equal len(parts).
func FromDualPartitions(parts entity.Partitions, sources []Source, attr string, keyFunc blocking.KeyFunc) (*DualMatrix, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("bdm: FromDualPartitions requires at least one partition")
	}
	if len(sources) != len(parts) {
		return nil, fmt.Errorf("bdm: FromDualPartitions: %d partitions but %d source tags", len(parts), len(sources))
	}
	for p, s := range sources {
		if s != SourceR && s != SourceS {
			return nil, fmt.Errorf("bdm: partition %d has invalid source %d", p, s)
		}
	}
	counts := make(map[Key]int)
	keySet := make(map[string]bool)
	for p, part := range parts {
		for _, e := range part {
			bk := keyFunc(e.Attr(attr))
			counts[Key{BlockKey: bk, Partition: p}]++
			keySet[bk] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	x := &DualMatrix{
		keys:   keys,
		index:  make(map[string]int, len(keys)),
		sizes:  make([][]int, len(keys)),
		srcOf:  append([]Source(nil), sources...),
		m:      len(parts),
		totalR: make([]int, len(keys)),
		totalS: make([]int, len(keys)),
	}
	for i, k := range keys {
		x.index[k] = i
		x.sizes[i] = make([]int, x.m)
	}
	for key, n := range counts {
		k := x.index[key.BlockKey]
		x.sizes[k][key.Partition] = n
		if x.srcOf[key.Partition] == SourceR {
			x.totalR[k] += n
		} else {
			x.totalS[k] += n
		}
	}
	x.offsets = make([]int64, len(keys)+1)
	for k := range keys {
		x.offsets[k+1] = x.offsets[k] + x.BlockPairs(k)
	}
	x.pairs = x.offsets[len(keys)]
	x.offsets = x.offsets[:len(keys)]
	return x, nil
}

// String renders the dual matrix for logs and tests.
func (x *DualMatrix) String() string {
	s := fmt.Sprintf("DualBDM %d blocks × %d partitions, P=%d pairs\n", len(x.keys), x.m, x.pairs)
	for k, key := range x.keys {
		s += fmt.Sprintf("  Φ%-3d %-12q %v R=%d S=%d pairs=%d offset=%d\n",
			k, key, x.sizes[k], x.totalR[k], x.totalS[k], x.BlockPairs(k), x.offsets[k])
	}
	return s
}
