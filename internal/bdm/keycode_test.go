package bdm

import (
	"testing"
)

// FuzzBDMKeyCoding proves the BDM job's 16-byte blocking-key prefix
// code is order-preserving against the full (BlockKey, Partition)
// comparator: unequal prefixes must decide the order, equal comparison
// keys must get equal codes. The coding is deliberately neither Exact
// nor group-deciding (two keys sharing a 16-byte prefix fall back to
// the comparator), which Verify checks by omission.
func FuzzBDMKeyCoding(f *testing.F) {
	f.Add("", 0, "", 1)
	f.Add("can", 0, "can", 0)
	f.Add("canon eos 5d mark iv", 2, "canon eos 5d mark iii", 1)
	f.Add("\x00", 0, "\x00\x00", 0)
	f.Fuzz(func(t *testing.T, keyA string, partA int, keyB string, partB int) {
		a := Key{BlockKey: keyA, Partition: partA}
		b := Key{BlockKey: keyB, Partition: partB}
		if err := keyCoding.Verify(compareKeys, nil, a, b); err != nil {
			t.Fatal(err)
		}
	})
}
