package bdm

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/entity"
)

func TestSerializeRoundTrip(t *testing.T) {
	x, err := FromPartitions(parts2(), "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := x.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d bytes, buffer holds %d", n, buf.Len())
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x.Cells(), back.Cells()) || back.NumPartitions() != x.NumPartitions() {
		t.Error("round trip changed the matrix")
	}
	if back.Pairs() != x.Pairs() {
		t.Errorf("pairs = %d, want %d", back.Pairs(), x.Pairs())
	}
}

func TestSerializeAwkwardKeys(t *testing.T) {
	// Keys with tabs, newlines, unicode, and emptiness must survive.
	parts := entity.Partitions{{
		entity.New("a", "k", "tab\tkey"),
		entity.New("b", "k", "new\nline"),
		entity.New("c", "k", "日本語"),
		entity.New("d", "k", ""),
		entity.New("e", "k", `quoted "key"`),
	}}
	x, err := FromPartitions(parts, "k", blocking.Identity())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x.Cells(), back.Cells()) {
		t.Errorf("awkward keys mangled:\n%v\nvs\n%v", x.Cells(), back.Cells())
	}
}

func TestSerializeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		m := rng.Intn(6) + 1
		parts := make(entity.Partitions, m)
		for i := 0; i < rng.Intn(300); i++ {
			p := rng.Intn(m)
			parts[p] = append(parts[p], entity.New(fmt.Sprintf("e%d", i), "k", fmt.Sprintf("key%02d", rng.Intn(25))))
		}
		x, err := FromPartitions(parts, "k", blocking.Identity())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(x.Cells(), back.Cells()) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "nope\t3\n",
		"bad partitions":  "bdm\tzero\n",
		"zero partitions": "bdm\t0\n",
		"short line":      "bdm\t2\n\"a\"\t1\n",
		"bad key quoting": "bdm\t2\nnoquotes\t0\t1\n",
		"bad count":       "bdm\t2\n\"a\"\t0\tmany\n",
		"bad partition":   "bdm\t2\n\"a\"\tx\t1\n",
		"out of range":    "bdm\t2\n\"a\"\t7\t1\n",
		"duplicate cells": "bdm\t2\n\"a\"\t0\t1\n\"a\"\t0\t2\n",
	}
	for name, input := range cases {
		if _, err := ReadFrom(strings.NewReader(input)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadFromEmptyMatrix(t *testing.T) {
	x, err := ReadFrom(strings.NewReader("bdm\t4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if x.NumBlocks() != 0 || x.NumPartitions() != 4 {
		t.Errorf("empty matrix = %d blocks × %d partitions", x.NumBlocks(), x.NumPartitions())
	}
}
