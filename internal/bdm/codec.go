package bdm

import (
	"fmt"

	"repro/internal/entity"
	"repro/internal/mapreduce"
	"repro/internal/runio"
)

// keyCodec serializes the BDM job's composite key (blockingKey ‖
// partition) for the external dataflow's spill runs. The blocking key
// is an arbitrary user-derived string — length-prefixing keeps tabs,
// newlines, and invalid UTF-8 intact, the same concern the quoted
// on-disk matrix format (serialize.go) handles. The value type of the
// BDM job is a plain int, covered by runio's built-in codec.
type keyCodec struct{}

func (keyCodec) Append(dst []byte, k Key) []byte {
	dst = runio.AppendString(dst, k.BlockKey)
	return runio.AppendVarint(dst, int64(k.Partition))
}

func (keyCodec) Decode(src []byte) (Key, int, error) {
	var k Key
	s, n, err := runio.String(src)
	if err != nil {
		return k, 0, fmt.Errorf("bdm.Key block key: %w", err)
	}
	k.BlockKey = s
	p, pn, err := runio.Varint(src[n:])
	if err != nil {
		return k, 0, fmt.Errorf("bdm.Key partition: %w", err)
	}
	k.Partition = int(p)
	return k, n + pn, nil
}

// NewSharedDecoder implements runio.SharedDecoder: the decoded BlockKey
// aliases src. The BDM reducer emits its key into retained output
// records, so it clones the block key at emit time (see job.go) per the
// copy-what-you-retain contract.
func (keyCodec) NewSharedDecoder() func(string) (Key, int, error) {
	return func(src string) (Key, int, error) {
		var k Key
		s, n, err := runio.SharedString(src)
		if err != nil {
			return k, 0, fmt.Errorf("bdm.Key block key: %w", err)
		}
		k.BlockKey = s
		p, pn, err := runio.VarintString(src[n:])
		if err != nil {
			return k, 0, fmt.Errorf("bdm.Key partition: %w", err)
		}
		k.Partition = int(p)
		return k, n + pn, nil
	}
}

func init() {
	runio.Register[Key](keyCodec{})
	// Distributed execution also moves the BDM job's input and output
	// records across process boundaries: register codecs for both pair
	// shapes (Annotated and CountRecord). The element codecs exist by
	// now — string and int are runio builtins, entity.Entity is
	// registered by the entity package's init, Key just above.
	mapreduce.RegisterPairCodec[string, entity.Entity]()
	mapreduce.RegisterPairCodec[Key, int]()
}
