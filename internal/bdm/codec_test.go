package bdm

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/runio"
)

// FuzzBDMKeyCodec round-trips the BDM job's composite key through the
// external dataflow's disk codec, including blocking keys with tabs,
// newlines, and invalid UTF-8 — byte content a blocking.KeyFunc can
// legitimately produce from dirty attribute values.
func FuzzBDMKeyCodec(f *testing.F) {
	f.Add("canon", 0)
	f.Add("tab\tkey\nnewline", 3)
	f.Add(string([]byte{0xff, 0x00, 0xc0}), -1)
	f.Fuzz(func(t *testing.T, blockKey string, partition int) {
		k := Key{BlockKey: blockKey, Partition: partition}
		c, ok := runio.Lookup[Key]()
		if !ok {
			t.Fatal("bdm.Key codec not registered")
		}
		enc := c.Append(nil, k)
		got, n, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if n != len(enc) || got != k {
			t.Fatalf("round trip: got (%+v, %d), want (%+v, %d)", got, n, k, len(enc))
		}
	})
}

// FuzzMatrixSerialize round-trips a matrix through the quoted-key text
// format of WriteTo/ReadFrom — the same arbitrary-byte-key concern as
// the runio codecs, on the other on-disk artifact of the workflow.
func FuzzMatrixSerialize(f *testing.F) {
	f.Add("canon", "nikon", 2, 1, 3)
	f.Add("tab\tkey", "nl\nkey", 0, 0, 1)
	f.Add(string([]byte{0xff, 0xfe}), string([]byte{0x00}), 1, 2, 9)
	f.Fuzz(func(t *testing.T, key1, key2 string, p1, p2, count int) {
		m := 4
		norm := func(p int) int {
			p %= m
			if p < 0 {
				p += m
			}
			return p
		}
		if count < 0 {
			count = -count
		}
		cells := []Cell{
			{BlockKey: key1, Partition: norm(p1), Count: count%1000 + 1},
		}
		if key2 != key1 {
			cells = append(cells, Cell{BlockKey: key2, Partition: norm(p2), Count: 1})
		}
		x, err := FromCells(cells, m)
		if err != nil {
			t.Fatalf("FromCells: %v", err)
		}
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		back, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadFrom: %v\ninput:\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(x.Cells(), back.Cells()) || back.NumPartitions() != m {
			t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", x.Cells(), back.Cells())
		}
	})
}
