package bdm

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/blocking"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// Key is the composite map-output key of Algorithm 3:
// blockingKey.partitionIndex.
type Key struct {
	BlockKey  string
	Partition int
}

func (k Key) String() string { return fmt.Sprintf("%s.%d", k.BlockKey, k.Partition) }

// compareKeys sorts by blocking key, then partition index.
func compareKeys(a, b Key) int {
	if c := mapreduce.CompareStrings(a.BlockKey, b.BlockKey); c != 0 {
		return c
	}
	return mapreduce.CompareInts(a.Partition, b.Partition)
}

// keyCoding is the BDM key's binary code: a 16-byte prefix of the
// blocking key. Unequal prefixes decide the order; equal prefixes fall
// back to the full (BlockKey, Partition) comparator, so the coding is
// neither exact nor group-deciding.
var keyCoding = mapreduce.KeyCoding[Key]{
	Encode: func(k Key) mapreduce.Code { return mapreduce.StringPrefixCode(k.BlockKey) },
}

// Annotated is a blocking-key-annotated entity: the record format of
// the BDM job's side output ("additionalOutput" of Algorithm 3) and of
// the matching job's input.
type Annotated = mapreduce.Pair[string, entity.Entity]

// CountRecord is one reduce output of the BDM job: a (block, partition)
// key with its entity count — a matrix cell in record form.
type CountRecord = mapreduce.Pair[Key, int]

// JobResult is the result type of an executed BDM job.
type JobResult = mapreduce.Result[Annotated, CountRecord]

// JobOptions configures the BDM computation job.
type JobOptions struct {
	// Attr is the entity attribute the blocking key is derived from.
	Attr string
	// KeyFunc derives the blocking key from the attribute value.
	KeyFunc blocking.KeyFunc
	// NumReduceTasks is r for the BDM job.
	NumReduceTasks int
	// UseCombiner enables the frequency-aggregating combiner the paper
	// suggests as an optimization (footnote 2).
	UseCombiner bool
}

// Job returns the MapReduce job of Algorithm 3. The map function
// computes each entity's blocking key, side-writes the annotated entity
// for Job 2, and emits (blockingKey.partitionIndex, 1). Input records
// are annotated entities whose key is ignored (pass "" when running the
// job standalone). Partitioning is by blocking key only so all cells of
// one block are produced by the same reduce task; sort and group use
// the entire composite key.
func Job(opts JobOptions) *mapreduce.Job[Annotated, Key, int, CountRecord] {
	if opts.KeyFunc == nil {
		panic("bdm: JobOptions.KeyFunc is required")
	}
	if opts.NumReduceTasks <= 0 {
		panic("bdm: JobOptions.NumReduceTasks must be > 0")
	}
	job := &mapreduce.Job[Annotated, Key, int, CountRecord]{
		Name:           "bdm",
		NumReduceTasks: opts.NumReduceTasks,
		NewMapper: func() mapreduce.Mapper[Annotated, Key, int] {
			return &bdmMapper{attr: opts.Attr, keyFunc: opts.KeyFunc}
		},
		NewReducer: func() mapreduce.Reducer[Key, int, CountRecord] {
			return &countReducer{}
		},
		Partition: func(key Key, r int) int {
			return mapreduce.HashPartition(key.BlockKey, r)
		},
		Compare: compareKeys,
		// Group on the entire key: one reduce call per (block, partition).
		Group:  compareKeys,
		Coding: keyCoding,
	}
	if opts.UseCombiner {
		job.NewCombiner = func() mapreduce.Combiner[Annotated, Key, int] { return &countCombiner{} }
	}
	return job
}

type bdmMapper struct {
	attr      string
	keyFunc   blocking.KeyFunc
	partition int
}

func (m *bdmMapper) Configure(_, _, partitionIndex int) { m.partition = partitionIndex }

func (m *bdmMapper) Map(ctx *mapreduce.MapContext[Annotated, Key, int], rec Annotated) {
	e := rec.Value
	blockKey := m.keyFunc(e.Attr(m.attr))
	// additionalOutput: the annotated entity for the second MR job.
	ctx.SideEmit(Annotated{Key: blockKey, Value: e})
	ctx.Emit(Key{BlockKey: blockKey, Partition: m.partition}, 1)
}

// countReducer sums the 1s (or partial sums from a combiner) for one
// (block, partition) group and emits a cell record.
type countReducer struct{}

func (c *countReducer) Configure(_, _, _ int) {}

func (c *countReducer) Reduce(ctx *mapreduce.ReduceContext[CountRecord], key Key, values []mapreduce.Rec[Key, int]) {
	sum := 0
	for _, v := range values {
		sum += v.Value
	}
	// The emitted record outlives the reduce call; clone the block key,
	// which on the external dataflow's arena read path aliases a decode
	// block (copy-what-you-retain). One clone per matrix cell.
	key.BlockKey = strings.Clone(key.BlockKey)
	ctx.Emit(CountRecord{Key: key, Value: sum})
}

// countCombiner is the combiner form of countReducer: it re-emits the
// composite key with the partial count.
type countCombiner struct{}

func (c *countCombiner) Configure(_, _, _ int) {}

func (c *countCombiner) Combine(ctx *mapreduce.MapContext[Annotated, Key, int], key Key, values []mapreduce.Rec[Key, int]) {
	sum := 0
	for _, v := range values {
		sum += v.Value
	}
	ctx.Emit(key, sum)
}

// Compute runs Algorithm 3 over the partitioned input — the pre-context
// adapter over ComputeContext.
func Compute(eng *mapreduce.Engine, parts entity.Partitions, opts JobOptions) (*Matrix, [][]Annotated, *JobResult, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return ComputeContext(context.Background(), eng, parts, opts)
}

// ComputeContext runs Algorithm 3 over the partitioned input and returns
// the assembled Matrix plus the per-partition side output (entities
// annotated with their blocking key) that forms the input of the second
// MR job. Cancellation follows the engine's between-task semantics.
func ComputeContext(ctx context.Context, eng *mapreduce.Engine, parts entity.Partitions, opts JobOptions) (*Matrix, [][]Annotated, *JobResult, error) {
	input := make([][]Annotated, len(parts))
	for i, p := range parts {
		input[i] = make([]Annotated, len(p))
		for j, e := range p {
			input[i][j] = Annotated{Value: e}
		}
	}
	res, err := Job(opts).RunContext(ctx, eng, input)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bdm: compute: %w", err)
	}
	cells := make([]Cell, 0, len(res.Output))
	for _, rec := range res.Output {
		cells = append(cells, Cell{BlockKey: rec.Key.BlockKey, Partition: rec.Key.Partition, Count: rec.Value})
	}
	matrix, err := FromCells(cells, len(parts))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bdm: compute: assemble matrix: %w", err)
	}
	return matrix, res.SideOutput, res, nil
}

// FromPartitions builds the Matrix directly in memory, without running
// the MR job. The analytic planners and the data-generation tooling use
// it; tests assert it agrees exactly with the MR computation.
func FromPartitions(parts entity.Partitions, attr string, keyFunc blocking.KeyFunc) (*Matrix, error) {
	var cells []Cell
	counts := make(map[Key]int)
	for p, part := range parts {
		for _, e := range part {
			counts[Key{BlockKey: keyFunc(e.Attr(attr)), Partition: p}]++
		}
	}
	for k, n := range counts {
		cells = append(cells, Cell{BlockKey: k.BlockKey, Partition: k.Partition, Count: n})
	}
	return FromCells(cells, len(parts))
}
