package bdm

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// Key is the composite map-output key of Algorithm 3:
// blockingKey.partitionIndex.
type Key struct {
	BlockKey  string
	Partition int
}

func (k Key) String() string { return fmt.Sprintf("%s.%d", k.BlockKey, k.Partition) }

// compareKeys sorts by blocking key, then partition index.
func compareKeys(a, b any) int {
	ka, kb := a.(Key), b.(Key)
	if c := mapreduce.CompareStrings(ka.BlockKey, kb.BlockKey); c != 0 {
		return c
	}
	return mapreduce.CompareInts(ka.Partition, kb.Partition)
}

// JobOptions configures the BDM computation job.
type JobOptions struct {
	// Attr is the entity attribute the blocking key is derived from.
	Attr string
	// KeyFunc derives the blocking key from the attribute value.
	KeyFunc blocking.KeyFunc
	// NumReduceTasks is r for the BDM job.
	NumReduceTasks int
	// UseCombiner enables the frequency-aggregating combiner the paper
	// suggests as an optimization (footnote 2).
	UseCombiner bool
}

// Job returns the MapReduce job of Algorithm 3. The map function
// computes each entity's blocking key, side-writes the annotated entity
// (key=blocking key, value=entity) for Job 2, and emits
// (blockingKey.partitionIndex, 1). Partitioning is by blocking key only
// so all cells of one block are produced by the same reduce task; sort
// and group use the entire composite key.
func Job(opts JobOptions) *mapreduce.Job {
	if opts.KeyFunc == nil {
		panic("bdm: JobOptions.KeyFunc is required")
	}
	if opts.NumReduceTasks <= 0 {
		panic("bdm: JobOptions.NumReduceTasks must be > 0")
	}
	job := &mapreduce.Job{
		Name:           "bdm",
		NumReduceTasks: opts.NumReduceTasks,
		NewMapper: func() mapreduce.Mapper {
			return &bdmMapper{attr: opts.Attr, keyFunc: opts.KeyFunc}
		},
		NewReducer: func() mapreduce.Reducer {
			return &countReducer{}
		},
		Partition: func(key any, r int) int {
			return mapreduce.HashPartition(key.(Key).BlockKey, r)
		},
		Compare: compareKeys,
		// Group on the entire key: one reduce call per (block, partition).
		Group: compareKeys,
	}
	if opts.UseCombiner {
		job.NewCombiner = func() mapreduce.Reducer { return &countReducer{} }
	}
	return job
}

type bdmMapper struct {
	attr      string
	keyFunc   blocking.KeyFunc
	partition int
}

func (m *bdmMapper) Configure(_, _, partitionIndex int) { m.partition = partitionIndex }

func (m *bdmMapper) Map(ctx *mapreduce.Context, kv mapreduce.KeyValue) {
	e := kv.Value.(entity.Entity)
	blockKey := m.keyFunc(e.Attr(m.attr))
	// additionalOutput: the annotated entity for the second MR job.
	ctx.SideEmit(blockKey, e)
	ctx.Emit(Key{BlockKey: blockKey, Partition: m.partition}, 1)
}

// countReducer sums the 1s (or partial sums from a combiner) for one
// (block, partition) group and emits a Cell. It serves as both combiner
// and reducer: as a combiner it re-emits the composite key with the
// partial count.
type countReducer struct{}

func (c *countReducer) Configure(_, _, _ int) {}

func (c *countReducer) Reduce(ctx *mapreduce.Context, key any, values []mapreduce.KeyValue) {
	k := key.(Key)
	sum := 0
	for _, v := range values {
		sum += v.Value.(int)
	}
	ctx.Emit(k, sum)
}

// Compute runs Algorithm 3 over the partitioned input and returns the
// assembled Matrix plus the per-partition side output (entities annotated
// with their blocking key) that forms the input of the second MR job.
func Compute(eng *mapreduce.Engine, parts entity.Partitions, opts JobOptions) (*Matrix, [][]mapreduce.KeyValue, *mapreduce.Result, error) {
	input := make([][]mapreduce.KeyValue, len(parts))
	for i, p := range parts {
		input[i] = make([]mapreduce.KeyValue, len(p))
		for j, e := range p {
			input[i][j] = mapreduce.KeyValue{Key: nil, Value: e}
		}
	}
	res, err := eng.Run(Job(opts), input)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bdm: compute: %w", err)
	}
	cells := make([]Cell, 0, len(res.Output))
	for _, kv := range res.Output {
		k := kv.Key.(Key)
		cells = append(cells, Cell{BlockKey: k.BlockKey, Partition: k.Partition, Count: kv.Value.(int)})
	}
	matrix, err := FromCells(cells, len(parts))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bdm: compute: assemble matrix: %w", err)
	}
	return matrix, res.SideOutput, res, nil
}

// FromPartitions builds the Matrix directly in memory, without running
// the MR job. The analytic planners and the data-generation tooling use
// it; tests assert it agrees exactly with the MR computation.
func FromPartitions(parts entity.Partitions, attr string, keyFunc blocking.KeyFunc) (*Matrix, error) {
	var cells []Cell
	counts := make(map[Key]int)
	for p, part := range parts {
		for _, e := range part {
			counts[Key{BlockKey: keyFunc(e.Attr(attr)), Partition: p}]++
		}
	}
	for k, n := range counts {
		cells = append(cells, Cell{BlockKey: k.BlockKey, Partition: k.Partition, Count: n})
	}
	return FromCells(cells, len(parts))
}
