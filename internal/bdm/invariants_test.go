package bdm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blocking"
	"repro/internal/entity"
)

// TestMatrixInvariants is the quick-check for DESIGN.md invariant 5:
// for any random partitioned input, (a) every block's per-partition
// sizes sum to its total, (b) block totals sum to the input size,
// (c) pair offsets are the prefix sums of the per-block pair counts and
// end at P, and (d) entity offsets partition each block contiguously.
func TestMatrixInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint16, mRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 400)
		m := int(mRaw%6) + 1
		blocks := int(bRaw%12) + 1
		parts := make(entity.Partitions, m)
		for i := 0; i < n; i++ {
			p := rng.Intn(m)
			parts[p] = append(parts[p], entity.New(
				fmt.Sprintf("e%d", i), "k", fmt.Sprintf("b%02d", rng.Intn(blocks))))
		}
		x, err := FromPartitions(parts, "k", blocking.Identity())
		if err != nil {
			return false
		}
		totalEntities := 0
		var pairSum int64
		for k := 0; k < x.NumBlocks(); k++ {
			rowSum := 0
			for p := 0; p < m; p++ {
				rowSum += x.SizeIn(k, p)
			}
			if rowSum != x.Size(k) {
				return false
			}
			totalEntities += x.Size(k)
			if x.PairOffset(k) != pairSum {
				return false
			}
			pairSum += x.BlockPairs(k)
			// Entity offsets are cumulative per partition.
			off := 0
			for p := 0; p < m; p++ {
				if x.EntityOffset(k, p) != off {
					return false
				}
				off += x.SizeIn(k, p)
			}
		}
		return totalEntities == n && pairSum == x.Pairs() && x.TotalEntities() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDualMatrixInvariants mirrors the invariants for the two-source
// matrix: per-source totals, cross-pair offsets, per-source entity
// offsets.
func TestDualMatrixInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint16, mrRaw, msRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 300)
		mr := int(mrRaw%4) + 1
		ms := int(msRaw%4) + 1
		blocks := int(bRaw%10) + 1
		parts := make(entity.Partitions, mr+ms)
		sources := make([]Source, mr+ms)
		for i := mr; i < mr+ms; i++ {
			sources[i] = SourceS
		}
		for i := 0; i < n; i++ {
			p := rng.Intn(mr + ms)
			parts[p] = append(parts[p], entity.New(
				fmt.Sprintf("e%d", i), "k", fmt.Sprintf("b%02d", rng.Intn(blocks))))
		}
		x, err := FromDualPartitions(parts, sources, "k", blocking.Identity())
		if err != nil {
			return false
		}
		var pairSum int64
		for k := 0; k < x.NumBlocks(); k++ {
			sumR, sumS := 0, 0
			offR, offS := 0, 0
			for p := 0; p < x.NumPartitions(); p++ {
				if x.PartitionSource(p) == SourceR {
					if x.EntityOffset(k, p) != offR {
						return false
					}
					offR += x.SizeIn(k, p)
					sumR += x.SizeIn(k, p)
				} else {
					if x.EntityOffset(k, p) != offS {
						return false
					}
					offS += x.SizeIn(k, p)
					sumS += x.SizeIn(k, p)
				}
			}
			if sumR != x.SourceSize(k, SourceR) || sumS != x.SourceSize(k, SourceS) {
				return false
			}
			if x.BlockPairs(k) != int64(sumR)*int64(sumS) {
				return false
			}
			if x.PairOffset(k) != pairSum {
				return false
			}
			pairSum += x.BlockPairs(k)
		}
		return pairSum == x.Pairs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
