// Package bdm implements the Block Distribution Matrix (BDM) of
// Section III-B: a b×m matrix giving the number of entities of each of
// the b blocks in each of the m input partitions. Both load-balancing
// strategies read the BDM during map-task initialization of the second
// MR job to compute their routing decisions.
//
// The package provides the matrix type itself, a direct in-memory
// builder, and the MapReduce job of Algorithm 3 that computes the matrix
// and side-writes the blocking-key-annotated entities consumed by Job 2.
package bdm

import (
	"fmt"
	"slices"
)

// Matrix is the block distribution matrix for a single source. Blocks
// are indexed 0..b-1 in lexicographic order of their blocking key (the
// paper permits any fixed order agreed on by all map tasks).
type Matrix struct {
	keys    []string       // block index -> blocking key
	index   map[string]int // blocking key -> block index
	sizes   [][]int        // [block][partition] -> #entities
	m       int            // number of partitions
	total   []int          // [block] -> Σ over partitions
	offsets []int64        // [block] -> Σ pairs of preceding blocks (o(i))
	pairs   int64          // total number of pairs P
}

// NumBlocks returns b, the number of distinct blocks.
func (x *Matrix) NumBlocks() int { return len(x.keys) }

// NumPartitions returns m, the number of input partitions.
func (x *Matrix) NumPartitions() int { return x.m }

// BlockKey returns the blocking key of block k.
func (x *Matrix) BlockKey(k int) string { return x.keys[k] }

// BlockIndex returns the index of the given blocking key.
func (x *Matrix) BlockIndex(key string) (int, bool) {
	k, ok := x.index[key]
	return k, ok
}

// Size returns the total number of entities in block k.
func (x *Matrix) Size(k int) int { return x.total[k] }

// SizeIn returns the number of entities of block k in partition p.
func (x *Matrix) SizeIn(k, p int) int { return x.sizes[k][p] }

// BlockPairs returns the number of entity pairs within block k:
// |Φk|·(|Φk|−1)/2.
func (x *Matrix) BlockPairs(k int) int64 {
	n := int64(x.total[k])
	return n * (n - 1) / 2
}

// Pairs returns P, the total number of pairs over all blocks.
func (x *Matrix) Pairs() int64 { return x.pairs }

// PairOffset returns o(k): the total number of pairs in blocks 0..k-1,
// i.e. the global pair index at which block k's pairs begin.
func (x *Matrix) PairOffset(k int) int64 { return x.offsets[k] }

// TotalEntities returns the number of entities across all blocks.
func (x *Matrix) TotalEntities() int {
	n := 0
	for _, t := range x.total {
		n += t
	}
	return n
}

// EntityOffset returns the number of entities of block k in partitions
// 0..p-1 — the base entity index assigned to block-k entities of
// partition p by the PairRange enumeration (Section V).
func (x *Matrix) EntityOffset(k, p int) int {
	off := 0
	for i := 0; i < p; i++ {
		off += x.sizes[k][i]
	}
	return off
}

// LargestBlock returns the index and size of the largest block; -1 when
// the matrix is empty.
func (x *Matrix) LargestBlock() (k, size int) {
	k = -1
	for i, t := range x.total {
		if t > size {
			k, size = i, t
		}
	}
	return k, size
}

// Cell is one non-zero matrix cell in the reduce output of Algorithm 3:
// (blocking key, partition index, number of entities).
type Cell struct {
	BlockKey  string
	Partition int
	Count     int
}

// FromCells assembles a Matrix from reduce-output cells. m must cover
// every referenced partition index. Duplicate cells for the same
// (block, partition) are rejected.
func FromCells(cells []Cell, m int) (*Matrix, error) {
	if m <= 0 {
		return nil, fmt.Errorf("bdm: FromCells requires m > 0, got %d", m)
	}
	keys := make([]string, 0, len(cells))
	for _, c := range cells {
		if c.Partition < 0 || c.Partition >= m {
			return nil, fmt.Errorf("bdm: cell %q references partition %d outside [0,%d)", c.BlockKey, c.Partition, m)
		}
		if c.Count < 0 {
			return nil, fmt.Errorf("bdm: cell %q partition %d has negative count %d", c.BlockKey, c.Partition, c.Count)
		}
		keys = append(keys, c.BlockKey)
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)

	// All rows are carved out of one flat backing array (one allocation
	// instead of one per block). Cells are initialized to -1 so duplicate
	// detection needs no auxiliary set; absent cells become 0 afterwards.
	backing := make([]int, len(keys)*m)
	for i := range backing {
		backing[i] = -1
	}
	x := &Matrix{
		keys:  keys,
		index: make(map[string]int, len(keys)),
		sizes: make([][]int, len(keys)),
		m:     m,
		total: make([]int, len(keys)),
	}
	for i, k := range keys {
		x.index[k] = i
		x.sizes[i] = backing[i*m : (i+1)*m : (i+1)*m]
	}
	for _, c := range cells {
		k := x.index[c.BlockKey]
		if x.sizes[k][c.Partition] >= 0 {
			return nil, fmt.Errorf("bdm: duplicate cell for block %q partition %d", c.BlockKey, c.Partition)
		}
		x.sizes[k][c.Partition] = c.Count
		x.total[k] += c.Count
	}
	for i := range backing {
		if backing[i] < 0 {
			backing[i] = 0
		}
	}
	x.finalize()
	return x, nil
}

func (x *Matrix) finalize() {
	x.offsets = make([]int64, len(x.keys)+1)
	for k := range x.keys {
		x.offsets[k+1] = x.offsets[k] + x.BlockPairs(k)
	}
	x.pairs = x.offsets[len(x.keys)]
	x.offsets = x.offsets[:len(x.keys)]
	if len(x.offsets) == 0 {
		x.offsets = []int64{}
	}
}

// Cells returns the matrix's non-zero cells in (block, partition) order —
// the row-wise enumeration the paper describes as the reduce output.
func (x *Matrix) Cells() []Cell {
	var cells []Cell
	for k, key := range x.keys {
		for p := 0; p < x.m; p++ {
			if x.sizes[k][p] > 0 {
				cells = append(cells, Cell{BlockKey: key, Partition: p, Count: x.sizes[k][p]})
			}
		}
	}
	return cells
}

// String renders the matrix as a small table for logs and tests.
func (x *Matrix) String() string {
	s := fmt.Sprintf("BDM %d blocks × %d partitions, P=%d pairs\n", len(x.keys), x.m, x.pairs)
	for k, key := range x.keys {
		s += fmt.Sprintf("  Φ%-3d %-12q %v total=%d pairs=%d offset=%d\n",
			k, key, x.sizes[k], x.total[k], x.BlockPairs(k), x.offsets[k])
	}
	return s
}
