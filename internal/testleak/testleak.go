// Package testleak is the shared goroutine-leak assertion of the
// cancellation and fault-tolerance tests: snapshot the goroutine count
// before the code under test, then Check that the count returns to the
// snapshot afterwards, waiting out goroutines that are mid-teardown.
// Supervisor workers, speculative backup attempts, and straggler
// monitors all must drain on every exit path — a stuck goroutine shows
// up as a Check failure with the final count.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Snapshot records the current goroutine count. Take it before starting
// the code under test (and before spawning any test helpers that
// legitimately outlive it).
func Snapshot() int { return runtime.NumGoroutine() }

// Check fails t if the goroutine count has not returned to the before
// snapshot within 5 seconds. Goroutines need a moment to unwind after
// cancellation, hence the retry-wait rather than a single sample.
func Check(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after (waited 5s)", before, n)
}
