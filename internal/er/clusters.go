package er

import (
	"slices"
	"sort"
	"strings"

	"repro/internal/core"
)

// Clusters groups entities into duplicate clusters: the connected
// components of the match-pair graph (i.e., the transitive closure of
// the pairwise match relation). This is the standard ER post-processing
// step that turns pairwise decisions into deduplicated groups. Each
// cluster is sorted by ID; clusters are sorted by their first member;
// only entities appearing in at least one pair are returned (singletons
// carry no information).
func Clusters(pairs []core.MatchPair) [][]string {
	uf := newUnionFind()
	for _, p := range pairs {
		uf.union(p.A, p.B)
	}
	byRoot := make(map[string][]string)
	for id := range uf.parent {
		root := uf.find(id)
		byRoot[root] = append(byRoot[root], id)
	}
	out := make([][]string, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Strings(members)
		out = append(out, members)
	}
	slices.SortFunc(out, func(a, b []string) int { return strings.Compare(a[0], b[0]) })
	return out
}

// unionFind is a path-compressing, rank-balanced disjoint-set forest
// over string IDs.
type unionFind struct {
	parent map[string]string
	rank   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string), rank: make(map[string]int)}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root // path compression
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
