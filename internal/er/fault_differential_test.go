package er_test

// End-to-end fault-schedule differential: the full ER workflow (BDM job
// + match job) under injected faults must produce a Result
// byte-identical to the fault-free run, for every strategy × dataflow ×
// fault kind — proving the engine's commit protocol holds through the
// two-job pipeline, not just a single job. Attempt counters and spill
// counters are zeroed before comparison (execution history, not
// output); everything else — matches, comparisons, BDM, side output,
// every TaskMetrics field — must match exactly.

import (
	"context"
	"flag"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/testleak"
)

var chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the chaos-hook pipeline differential test")

// faultEngine builds one engine per dataflow for the pipeline runs;
// external engines spill aggressively into a per-test temp dir.
func faultEngine(t *testing.T, dataflow mapreduce.DataflowMode) *mapreduce.Engine {
	t.Helper()
	e := &mapreduce.Engine{Parallelism: 4, Dataflow: dataflow}
	if dataflow == mapreduce.DataflowExternal {
		e.SpillBudget = 128
		e.TmpDir = t.TempDir()
	}
	return e
}

// zeroHistory strips the execution-history counters from an er.Result
// in place: the four attempt counters plus the external-only spill
// counters of both jobs.
func zeroHistory(res *er.Result) {
	clear := func(m *mapreduce.Metrics) {
		m.Attempts = 0
		m.Retries = 0
		m.SpeculativeLaunched = 0
		m.SpeculativeWon = 0
		for _, ms := range [][]mapreduce.TaskMetrics{m.MapMetrics, m.ReduceMetrics} {
			for i := range ms {
				ms[i].SpillRuns = 0
				ms[i].SpillBytesWritten = 0
				ms[i].SpillBytesRead = 0
			}
		}
	}
	if res.BDMResult != nil {
		clear(&res.BDMResult.Metrics)
	}
	if res.MatchResult != nil {
		clear(&res.MatchResult.Metrics)
	}
}

// erFault is one fault kind of the differential matrix. install mutates
// the engine (hook and/or retry policy); extOnly restricts disk faults
// to the dataflow that has disk points.
type erFault struct {
	name    string
	extOnly bool
	install func(e *mapreduce.Engine)
}

// failFirstAt fails attempt 1 of every task of the given phase at the
// given point — FaultEmit faults panic through the user map/reduce
// frames (the injected-panic carrier), making "map-panic"/"reduce-panic"
// literal descriptions of the unwinding path.
func failFirstAt(phase mapreduce.TaskKind, point mapreduce.FaultPoint) func(e *mapreduce.Engine) {
	return func(e *mapreduce.Engine) {
		e.Retry.BaseBackoff = 1
		e.FaultHook = func(ctx context.Context, ph mapreduce.TaskKind, task, attempt int, pt mapreduce.FaultPoint) error {
			if ph == phase && pt == point && attempt == 1 {
				return fmt.Errorf("injected %s fault (%s task %d)", pt, ph, task)
			}
			return nil
		}
	}
}

func erFaults() []erFault {
	return []erFault{
		{name: "map-panic", install: failFirstAt(mapreduce.MapTask, mapreduce.FaultEmit)},
		{name: "reduce-panic", install: failFirstAt(mapreduce.ReduceTask, mapreduce.FaultEmit)},
		{name: "spill-transient", extOnly: true, install: failFirstAt(mapreduce.MapTask, mapreduce.FaultSpill)},
		{name: "straggler-speculation", install: func(e *mapreduce.Engine) {
			e.Retry = mapreduce.RetryPolicy{
				SpeculativeSlowdown: 1.5,
				SpeculativeInterval: time.Millisecond,
				SpeculativeMinAge:   5 * time.Millisecond,
			}
			// Attempt 1 of map task 0 straggles until cancelled; the
			// speculative backup is the only way the task finishes.
			e.FaultHook = func(ctx context.Context, ph mapreduce.TaskKind, task, attempt int, pt mapreduce.FaultPoint) error {
				if ph == mapreduce.MapTask && task == 0 && attempt == 1 && pt == mapreduce.FaultTaskStart {
					<-ctx.Done()
					return ctx.Err()
				}
				return nil
			}
		}},
	}
}

// TestERChaosDifferential runs the full two-job pipeline under a
// seeded random fault schedule (every hook point of every attempt may
// fail, final attempts excepted) and requires the byte-identical
// Result. The chaos-smoke CI job randomizes -chaos-seed.
func TestERChaosDifferential(t *testing.T) {
	parts := entity.SplitRoundRobin(testEntities(150, 3), 3)
	dataflows := map[string]mapreduce.DataflowMode{
		"typed":    mapreduce.DataflowTyped,
		"boxed":    mapreduce.DataflowBoxed,
		"external": mapreduce.DataflowExternal,
	}
	for dname, dataflow := range dataflows {
		t.Run(dname, func(t *testing.T) {
			cfg := baseConfig(core.BlockSplit{}, 4)
			cfg.Engine = faultEngine(t, dataflow)
			baseline, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
			if err != nil {
				t.Fatal(err)
			}
			zeroHistory(baseline)

			before := testleak.Snapshot()
			cfg = baseConfig(core.BlockSplit{}, 4)
			eng := faultEngine(t, dataflow)
			eng.Retry.BaseBackoff = 1
			eng.FaultHook = mapreduce.ChaosHook(*chaosSeed, 0.3, 0)
			cfg.Engine = eng
			res, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
			if err != nil {
				t.Fatalf("chaos-seed=%d: %v", *chaosSeed, err)
			}
			testleak.Check(t, before)
			zeroHistory(res)
			if !reflect.DeepEqual(res, baseline) {
				t.Fatalf("chaos-seed=%d: chaotic pipeline diverges from fault-free run", *chaosSeed)
			}
		})
	}
}

func TestERFaultScheduleDifferential(t *testing.T) {
	parts := entity.SplitRoundRobin(testEntities(150, 3), 3)
	dataflows := map[string]mapreduce.DataflowMode{
		"typed":    mapreduce.DataflowTyped,
		"boxed":    mapreduce.DataflowBoxed,
		"external": mapreduce.DataflowExternal,
	}
	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		for dname, dataflow := range dataflows {
			// Fault-free baseline on the same dataflow/engine shape.
			cfg := baseConfig(strat, 4)
			cfg.Engine = faultEngine(t, dataflow)
			baseline, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(baseline.Matches) == 0 {
				t.Fatalf("%s/%s: differential vacuous, no matches", strat.Name(), dname)
			}
			zeroHistory(baseline)
			for _, fault := range erFaults() {
				if fault.extOnly && dataflow != mapreduce.DataflowExternal {
					continue
				}
				t.Run(fmt.Sprintf("%s/%s/%s", strat.Name(), dname, fault.name), func(t *testing.T) {
					before := testleak.Snapshot()
					cfg := baseConfig(strat, 4)
					eng := faultEngine(t, dataflow)
					fault.install(eng)
					cfg.Engine = eng
					res, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
					if err != nil {
						t.Fatal(err)
					}
					testleak.Check(t, before)
					injected := res.MatchResult.Retries + res.MatchResult.SpeculativeLaunched
					if res.BDMResult != nil {
						injected += res.BDMResult.Retries + res.BDMResult.SpeculativeLaunched
					}
					if injected == 0 {
						t.Fatalf("fault %s never fired: no retries or backups recorded", fault.name)
					}
					zeroHistory(res)
					if !reflect.DeepEqual(res, baseline) {
						t.Fatal("faulted pipeline diverges from fault-free run")
					}
				})
			}
		}
	}
}
