package er

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/mapreduce"
	"repro/internal/similarity"
)

func titleMatcher(threshold float64) core.Matcher {
	return func(a, b entity.Entity) (float64, bool) {
		sim := similarity.LevenshteinSimilarity(a.Attr("title"), b.Attr("title"))
		return sim, sim >= threshold
	}
}

func smallDataset() []entity.Entity {
	return []entity.Entity{
		entity.New("a1", "title", "acme rocket skates"),
		entity.New("a2", "title", "acme rocket skates!"),
		entity.New("a3", "title", "acme anvil deluxe"),
		entity.New("b1", "title", "bolt cutter pro"),
		entity.New("b2", "title", "bolt cutter pro max"),
		entity.New("c1", "title", "coyote trap"),
	}
}

func TestRunAllStrategiesAgree(t *testing.T) {
	es := smallDataset()
	want, wantComps := SerialMatch(es, "title", blocking.NormalizedPrefix(3), titleMatcher(0.8))
	if len(want) == 0 {
		t.Fatal("test dataset produced no matches; matcher or data broken")
	}
	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		for _, m := range []int{1, 2, 3} {
			res, err := Run(entity.SplitRoundRobin(es, m), Config{
				Strategy: strat,
				Attr:     "title",
				BlockKey: blocking.NormalizedPrefix(3),
				Matcher:  titleMatcher(0.8),
				R:        4,
			})
			if err != nil {
				t.Fatalf("%s m=%d: %v", strat.Name(), m, err)
			}
			if !reflect.DeepEqual(res.Matches, want) {
				t.Errorf("%s m=%d: matches = %v, want %v", strat.Name(), m, res.Matches, want)
			}
			if res.Comparisons != wantComps {
				t.Errorf("%s m=%d: comparisons = %d, want %d", strat.Name(), m, res.Comparisons, wantComps)
			}
		}
	}
}

func TestRunAgainstSerialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		spec := datagen.Spec{
			N:      rng.Intn(300) + 20,
			Blocks: rng.Intn(30) + 2,
			Alpha:  0.8,
			Seed:   int64(trial),
		}
		es, _ := datagen.Generate(spec)
		want, _ := SerialMatch(es, datagen.AttrTitle, datagen.BlockKey(), titleMatcher(0.85))
		for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
			res, err := Run(entity.SplitRoundRobin(es, rng.Intn(4)+1), Config{
				Strategy:   strat,
				Attr:       datagen.AttrTitle,
				BlockKey:   datagen.BlockKey(),
				Matcher:    titleMatcher(0.85),
				R:          rng.Intn(8) + 1,
				RunOptions: RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
			})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, strat.Name(), err)
			}
			if len(res.Matches) != len(want) || (len(want) > 0 && !reflect.DeepEqual(res.Matches, want)) {
				t.Fatalf("trial %d %s: matches differ from serial reference (%d vs %d)",
					trial, strat.Name(), len(res.Matches), len(want))
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	es := smallDataset()
	parts := entity.SplitRoundRobin(es, 2)
	if _, err := Run(parts, Config{}); err == nil {
		t.Error("empty config: want error")
	}
	if _, err := Run(parts, Config{Strategy: core.Basic{}, BlockKey: blocking.Prefix(1)}); err == nil {
		t.Error("R=0: want error")
	}
	if _, err := Run(parts, Config{Strategy: core.Basic{}, R: 2}); err == nil {
		t.Error("nil BlockKey: want error")
	}
}

func TestBasicSkipsBDMJob(t *testing.T) {
	es := smallDataset()
	res, err := Run(entity.SplitRoundRobin(es, 2), Config{
		Strategy: core.Basic{},
		Attr:     "title",
		BlockKey: blocking.Prefix(3),
		R:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BDM != nil || res.BDMResult != nil {
		t.Error("Basic should not compute a BDM")
	}
	if got := len(res.Workloads()); got != 1 {
		t.Errorf("Basic has %d workloads, want 1 (single job)", got)
	}
	res2, err := Run(entity.SplitRoundRobin(es, 2), Config{
		Strategy: core.BlockSplit{},
		Attr:     "title",
		BlockKey: blocking.Prefix(3),
		R:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BDM == nil || len(res2.Workloads()) != 2 {
		t.Error("BlockSplit should run the BDM job first")
	}
}

func TestSimulatedTime(t *testing.T) {
	es := smallDataset()
	res, err := Run(entity.SplitRoundRobin(es, 2), Config{
		Strategy: core.PairRange{},
		Attr:     "title",
		BlockKey: blocking.Prefix(3),
		R:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := res.SimulatedTime(cluster.DefaultSlots(2), cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Errorf("simulated time = %g", tm)
	}
}

func TestCollectMatchesDeduplicates(t *testing.T) {
	res := &core.MatchJobResult{Output: []core.MatchOutput{
		{Key: core.NewMatchPair("b", "a")},
		{Key: core.NewMatchPair("a", "b")},
		{Key: core.NewMatchPair("c", "d")},
	}}
	got := CollectMatches(res)
	want := []core.MatchPair{{A: "a", B: "b"}, {A: "c", B: "d"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CollectMatches = %v, want %v", got, want)
	}
}

// TestPlanWorkloadsMatchExecutedWorkloads: the analytic path (planner +
// BDM workload model) must agree with the executing engine's measured
// workloads in every component — the bridge that justifies planner-mode
// figures.
func TestPlanWorkloadsMatchExecutedWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 8; trial++ {
		spec := datagen.Spec{N: rng.Intn(200) + 30, Blocks: rng.Intn(20) + 2, Alpha: 0.8, Seed: int64(trial)}
		es, _ := datagen.Generate(spec)
		m := rng.Intn(4) + 1
		r := rng.Intn(6) + 1
		parts := entity.SplitRoundRobin(es, m)
		for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
			res, err := Run(parts, Config{
				Strategy:    strat,
				Attr:        datagen.AttrTitle,
				BlockKey:    datagen.BlockKey(),
				R:           r,
				UseCombiner: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Plans need the BDM; compute it directly for Basic.
			x := res.BDM
			if x == nil {
				var err2 error
				x, err2 = bdm.FromPartitions(parts, datagen.AttrTitle, datagen.BlockKey())
				if err2 != nil {
					t.Fatal(err2)
				}
			}
			planned, _, err := PlanWorkloads(x, strat, m, r, true)
			if err != nil {
				t.Fatal(err)
			}
			executed := res.Workloads()
			if len(planned) != len(executed) {
				t.Fatalf("%s: %d planned workloads vs %d executed", strat.Name(), len(planned), len(executed))
			}
			for i := range planned {
				p, e := planned[i], executed[i]
				if !reflect.DeepEqual(p.MapRecords, e.MapRecords) ||
					!reflect.DeepEqual(p.MapEmits, e.MapEmits) ||
					!reflect.DeepEqual(p.ReduceRecords, e.ReduceRecords) ||
					!reflect.DeepEqual(p.ReduceComparisons, e.ReduceComparisons) {
					t.Fatalf("%s trial %d job %d (%s): planned workload differs from executed\nplanned:  %+v\nexecuted: %+v",
						strat.Name(), trial, i, p.Name, p, e)
				}
			}
		}
	}
}

func TestQualityMetrics(t *testing.T) {
	truth := []core.MatchPair{{A: "a", B: "b"}, {A: "c", B: "d"}, {A: "e", B: "f"}}
	predicted := []core.MatchPair{{A: "b", B: "a"}, {A: "c", B: "d"}, {A: "x", B: "y"}}
	q := Evaluate(predicted, truth)
	if q.TruePositives != 2 || q.FalsePositives != 1 || q.FalseNegatives != 1 {
		t.Fatalf("quality = %+v", q)
	}
	if p := q.Precision(); p != 2.0/3 {
		t.Errorf("precision = %g", p)
	}
	if r := q.Recall(); r != 2.0/3 {
		t.Errorf("recall = %g", r)
	}
	if f := q.F1(); f != 2.0/3 {
		t.Errorf("f1 = %g", f)
	}
	empty := Evaluate(nil, nil)
	if empty.Precision() != 1 || empty.Recall() != 1 || empty.F1() != 1 {
		t.Error("empty evaluation should be perfect")
	}
}

func TestEvaluateDeduplicatesPredictions(t *testing.T) {
	truth := []core.MatchPair{{A: "a", B: "b"}}
	predicted := []core.MatchPair{{A: "a", B: "b"}, {A: "b", B: "a"}}
	q := Evaluate(predicted, truth)
	if q.TruePositives != 1 || q.FalsePositives != 0 {
		t.Errorf("quality = %+v", q)
	}
}

// annotate helper sanity.
func TestAnnotateInput(t *testing.T) {
	parts := entity.SplitRoundRobin(smallDataset(), 2)
	input := AnnotateInput(parts, "title", blocking.Prefix(3))
	if len(input) != 2 {
		t.Fatal("wrong partition count")
	}
	for i, p := range parts {
		for j, e := range p {
			if input[i][j].Key != blocking.Prefix(3)(e.Attr("title")) {
				t.Fatalf("key mismatch at %d/%d", i, j)
			}
		}
	}
}
