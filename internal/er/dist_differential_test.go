package er_test

// The distributed differential: the full two-job pipeline dispatched
// over real HTTP to in-process workers must produce an er.Result
// byte-identical to the local typed run — across strategies, and still
// when a worker is SIGKILL-style killed mid-map or mid-reduce (the
// master reassigns through heartbeat/lease revocation and transport
// errors, and reducers fall back to the master's run replicas for dead
// origins). Execution-history counters are zeroed before comparison,
// exactly as in the fault differential.

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/testleak"
)

func distTestParams(strat core.Strategy) er.DistParams {
	return er.DistParams{
		Strategy:    strat.Name(),
		Attr:        datagen.AttrTitle,
		KeyPrefix:   3,
		Threshold:   0.8,
		R:           5,
		UseCombiner: true,
	}
}

// distLocalConfig is the local-run Config the DistParams expand to on
// the worker side — the baseline must use the same key and matcher
// functions the distributed run rebuilds from the declarative spec.
func distLocalConfig(strat core.Strategy, p er.DistParams) er.Config {
	return er.Config{
		RunOptions:      er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
		Strategy:        strat,
		Attr:            p.Attr,
		BlockKey:        blocking.NormalizedPrefix(p.KeyPrefix),
		PreparedMatcher: match.EditDistance(p.Attr, p.Threshold),
		R:               p.R,
		UseCombiner:     p.UseCombiner,
	}
}

// startDistMaster starts a master with fast failure detection (50ms
// heartbeats, 250ms lease) and quiet logging.
func startDistMaster(t *testing.T) *dist.Master {
	t.Helper()
	m := dist.NewMaster(dist.MasterOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		LeaseTTL:          250 * time.Millisecond,
		Log:               obs.LogfLogger(slog.LevelDebug, t.Logf),
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func startDistWorker(t *testing.T, master *dist.Master, opts dist.WorkerOptions) *dist.Worker {
	t.Helper()
	opts.MasterURL = master.URL()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Log == nil {
		opts.Log = obs.LogfLogger(slog.LevelDebug, t.Logf)
	}
	w, err := dist.StartWorker(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func TestDistributedDifferential(t *testing.T) {
	parts := entity.SplitRoundRobin(testEntities(150, 3), 4)
	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			p := distTestParams(strat)
			baseline, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), distLocalConfig(strat, p))
			if err != nil {
				t.Fatal(err)
			}
			if len(baseline.Matches) == 0 {
				t.Fatal("differential vacuous, no matches")
			}
			zeroHistory(baseline)

			before := testleak.Snapshot()
			master := startDistMaster(t)
			w1 := startDistWorker(t, master, dist.WorkerOptions{Slots: 2})
			w2 := startDistWorker(t, master, dist.WorkerOptions{Slots: 2})
			res, err := er.RunDistributedPipeline(context.Background(), er.FromPartitions(parts), p, er.RunOptions{
				Parallelism: 4,
				Master:      master,
				Workers:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			w1.Stop()
			w2.Stop()
			master.Close()
			testleak.Check(t, before)
			zeroHistory(res)
			if !reflect.DeepEqual(res, baseline) {
				t.Fatal("distributed pipeline diverges from local typed run")
			}
			// Graceful worker shutdown leaves no run files behind.
			for _, w := range []*dist.Worker{w1, w2} {
				if _, err := os.Stat(w.Dir()); !os.IsNotExist(err) {
					t.Fatalf("worker dir %s survived graceful Stop (stat err %v)", w.Dir(), err)
				}
			}
		})
	}
}

// killOnPhase returns worker options whose TaskStarted hook kills the
// worker (via the pointer set after StartWorker) on its first task of
// the given phase, then parks the attempt until the kill cuts its
// connection — the dispatched task can only ever finish elsewhere.
func killOnPhase(phase string, victim *atomic.Pointer[dist.Worker], killed *atomic.Bool) dist.WorkerOptions {
	var once sync.Once
	return dist.WorkerOptions{
		Slots: 1,
		TaskStarted: func(ctx context.Context, ph string, task, attempt int) {
			if ph != phase {
				return
			}
			once.Do(func() {
				killed.Store(true)
				go victim.Load().Kill()
			})
			<-ctx.Done()
		},
	}
}

func TestDistributedWorkerKillDifferential(t *testing.T) {
	parts := entity.SplitRoundRobin(testEntities(150, 3), 4)
	strat := core.BlockSplit{}
	p := distTestParams(strat)
	baseline, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), distLocalConfig(strat, p))
	if err != nil {
		t.Fatal(err)
	}
	zeroHistory(baseline)

	for _, phase := range []string{"map", "reduce"} {
		t.Run("kill-mid-"+phase, func(t *testing.T) {
			before := testleak.Snapshot()
			master := startDistMaster(t)
			survivor := startDistWorker(t, master, dist.WorkerOptions{Slots: 2})
			var victimPtr atomic.Pointer[dist.Worker]
			var killed atomic.Bool
			victimDir := t.TempDir()
			opts := killOnPhase(phase, &victimPtr, &killed)
			opts.Dir = victimDir
			victim := startDistWorker(t, master, opts)
			victimPtr.Store(victim)

			res, err := er.RunDistributedPipeline(context.Background(), er.FromPartitions(parts), p, er.RunOptions{
				Parallelism: 4,
				Master:      master,
				Workers:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !killed.Load() {
				t.Fatalf("victim worker never received a %s task; kill differential vacuous", phase)
			}
			survivor.Stop()
			victim.Stop() // no-op after Kill (idempotent shutdown)
			master.Close()
			testleak.Check(t, before)
			zeroHistory(res)
			if !reflect.DeepEqual(res, baseline) {
				t.Fatalf("pipeline with a worker killed mid-%s diverges from local run", phase)
			}
		})
	}
}

// TestDistributedNoWorkersDegradesLocal: a distributed run whose pool
// is empty (none ever registered) must complete locally with the same
// result, not hang or fail.
func TestDistributedNoWorkersDegradesLocal(t *testing.T) {
	parts := entity.SplitRoundRobin(testEntities(150, 3), 4)
	strat := core.PairRange{}
	p := distTestParams(strat)
	baseline, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), distLocalConfig(strat, p))
	if err != nil {
		t.Fatal(err)
	}
	zeroHistory(baseline)

	before := testleak.Snapshot()
	master := startDistMaster(t)
	res, err := er.RunDistributedPipeline(context.Background(), er.FromPartitions(parts), p, er.RunOptions{
		Parallelism: 4,
		Master:      master,
	})
	if err != nil {
		t.Fatal(err)
	}
	master.Close()
	testleak.Check(t, before)
	zeroHistory(res)
	if !reflect.DeepEqual(res, baseline) {
		t.Fatal("degraded (workerless) distributed run diverges from local run")
	}
}

// TestDistributedUnknownStrategy: the declarative params reject unknown
// strategy names before any master or worker work happens.
func TestDistributedUnknownStrategy(t *testing.T) {
	p := er.DistParams{Strategy: "sorted-neighborhood", Attr: datagen.AttrTitle, KeyPrefix: 3, R: 4}
	_, err := er.RunDistributedPipeline(context.Background(),
		er.FromPartitions(entity.SplitRoundRobin(testEntities(20, 1), 2)), p, er.RunOptions{})
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	want := fmt.Sprintf("unknown distributed strategy %q", p.Strategy)
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("err = %q, want mention of %q", got, want)
	}
}
