package er

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mapreduce"
	"repro/internal/match"
)

// Distributed execution of the two-job workflow. A pipeline Config
// cannot cross a process boundary (it carries function values:
// BlockKey, Matcher), so the distributed entry point takes DistParams —
// a declarative job description both the driver and the worker binary
// expand into the *same* Config — and ships it to workers as the job
// spec, together with the serialized BDM for Job 2. The worker-side
// builders registered here (er/bdm, er/match) are what cmd/erworker
// executes; any process that imports this package can serve er jobs.

// DistParams describes a distributable pipeline run declaratively.
type DistParams struct {
	// Strategy names the redistribution scheme: "basic", "blocksplit",
	// or "pairrange".
	Strategy string `json:"strategy"`
	// Attr is the entity attribute the blocking key is derived from.
	Attr string `json:"attr"`
	// KeyPrefix is the normalized-prefix length of the blocking key
	// (blocking.NormalizedPrefix).
	KeyPrefix int `json:"key_prefix"`
	// Threshold, when > 0, matches with the edit-distance matcher at
	// this similarity threshold; 0 counts comparisons without matching.
	Threshold float64 `json:"threshold"`
	// R is the number of reduce tasks of both jobs.
	R int `json:"r"`
	// UseCombiner enables the BDM job's combiner.
	UseCombiner bool `json:"use_combiner"`
}

// strategy resolves the strategy name.
func (p *DistParams) strategy() (core.Strategy, error) {
	switch strings.ToLower(p.Strategy) {
	case "basic":
		return core.Basic{}, nil
	case "blocksplit":
		return core.BlockSplit{}, nil
	case "pairrange":
		return core.PairRange{}, nil
	default:
		return nil, fmt.Errorf("er: unknown distributed strategy %q (want basic, blocksplit, or pairrange)", p.Strategy)
	}
}

// config expands the declarative parameters into the pipeline Config —
// the single definition both sides of the wire share.
func (p *DistParams) config() (Config, error) {
	strat, err := p.strategy()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Strategy:    strat,
		Attr:        p.Attr,
		BlockKey:    blocking.NormalizedPrefix(p.KeyPrefix),
		R:           p.R,
		UseCombiner: p.UseCombiner,
	}
	if p.Threshold > 0 {
		cfg.PreparedMatcher = match.EditDistance(p.Attr, p.Threshold)
	}
	return cfg, nil
}

// matchSpec is the er/match job spec: the parameters plus the BDM in
// its canonical text serialization ("" for Basic).
type matchSpec struct {
	Params DistParams `json:"params"`
	BDM    string     `json:"bdm,omitempty"`
}

// RunDistributedPipeline executes the workflow of Figure 2 with both
// jobs' tasks dispatched to worker processes: it starts (or borrows)
// a dist master, waits for opts.Workers registrations, and runs the
// BDM and matching jobs with Engine.Remote bound to per-job sessions.
// Results are byte-identical to RunPipeline over the same parameters —
// the distributed differential suite holds this across strategies and
// worker-kill chaos. If every worker dies (or none registers), the
// engine completes the run locally with a logged warning.
func RunDistributedPipeline(ctx context.Context, src Source, p DistParams, opts RunOptions) (*Result, error) {
	cfg, err := p.config()
	if err != nil {
		return nil, err
	}
	cfg.RunOptions = opts
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts, err := src.Partitions()
	if err != nil {
		return nil, err
	}

	master := opts.Master
	if master == nil {
		master = dist.NewMaster(dist.MasterOptions{Addr: opts.MasterAddr, Obs: opts.Obs})
		if err := master.Start(); err != nil {
			return nil, err
		}
		defer master.Close()
	}
	if opts.Workers > 0 {
		wctx, cancel := context.WithTimeout(ctx, time.Minute)
		err := master.AwaitWorkers(wctx, opts.Workers)
		cancel()
		if err != nil {
			return nil, err
		}
	}

	baseEng := cfg.ResolveEngine()
	paramsJSON, err := json.Marshal(&p)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	var job2Input [][]core.AnnotatedEntity
	if cfg.Strategy.NeedsBDM() {
		eng := *baseEng
		session := master.Session("er/bdm", paramsJSON)
		eng.Remote = session
		matrix, side, bdmRes, err := bdm.ComputeContext(ctx, &eng, parts, bdm.JobOptions{
			Attr:           cfg.Attr,
			KeyFunc:        cfg.BlockKey,
			NumReduceTasks: cfg.R,
			UseCombiner:    cfg.UseCombiner,
		})
		session.Close()
		if err != nil {
			return nil, err
		}
		res.BDM = matrix
		res.BDMResult = bdmRes
		job2Input = side
	} else {
		job2Input = AnnotateInput(parts, cfg.Attr, cfg.BlockKey)
	}

	spec := matchSpec{Params: p}
	if res.BDM != nil {
		var buf bytes.Buffer
		if _, err := res.BDM.WriteTo(&buf); err != nil {
			return nil, err
		}
		spec.BDM = buf.String()
	}
	specJSON, err := json.Marshal(&spec)
	if err != nil {
		return nil, err
	}
	job, err := buildMatchJob(cfg, res.BDM)
	if err != nil {
		return nil, err
	}
	eng := *baseEng
	session := master.Session("er/match", specJSON)
	eng.Remote = session
	matchRes, matches, err := runMatchJob(ctx, &eng, job, job2Input, cfg.Sink)
	session.Close()
	if err != nil {
		return nil, err
	}
	res.MatchResult = matchRes
	res.Comparisons = matchRes.Counter(core.ComparisonsCounter)
	res.Matches = matches
	return res, nil
}

func init() {
	dist.RegisterJob("er/bdm", func(spec []byte) (mapreduce.RemoteRunnable, error) {
		var p DistParams
		if err := json.Unmarshal(spec, &p); err != nil {
			return nil, fmt.Errorf("er/bdm spec: %w", err)
		}
		cfg, err := p.config()
		if err != nil {
			return nil, err
		}
		return mapreduce.NewRemoteRunnable(bdm.Job(bdm.JobOptions{
			Attr:           cfg.Attr,
			KeyFunc:        cfg.BlockKey,
			NumReduceTasks: cfg.R,
			UseCombiner:    cfg.UseCombiner,
		}))
	})
	dist.RegisterJob("er/match", func(specJSON []byte) (mapreduce.RemoteRunnable, error) {
		var spec matchSpec
		if err := json.Unmarshal(specJSON, &spec); err != nil {
			return nil, fmt.Errorf("er/match spec: %w", err)
		}
		cfg, err := spec.Params.config()
		if err != nil {
			return nil, err
		}
		var matrix *bdm.Matrix
		if spec.BDM != "" {
			matrix, err = bdm.ReadFrom(strings.NewReader(spec.BDM))
			if err != nil {
				return nil, fmt.Errorf("er/match spec BDM: %w", err)
			}
		}
		job, err := buildMatchJob(cfg, matrix)
		if err != nil {
			return nil, err
		}
		return core.RemoteRunnableFor(job)
	})
}
