package er

import (
	"context"

	"repro/internal/bdm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/entity"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// RunOptions is the execution plumbing shared by every pipeline entry
// point — one-source, two-source, sorted neighborhood, multi-pass, and
// the missing-keys decomposition all embed it, so engine selection,
// out-of-core spilling, and output streaming are configured the same
// way everywhere (previously each workflow re-declared these fields).
type RunOptions struct {
	// Engine executes the jobs; nil builds one from the fields below.
	Engine *mapreduce.Engine
	// Parallelism bounds the number of concurrently executing tasks per
	// phase when Engine is nil (0 = one goroutine per task, the engine
	// default). Ignored when Engine is set — configure the engine
	// directly instead.
	Parallelism int
	// SpillBudget, when > 0, runs the jobs on the out-of-core external
	// dataflow with this per-map-task spill budget in bytes (see
	// mapreduce.Engine.SpillBudget). Ignored when Engine is set.
	SpillBudget int64
	// TmpDir is the spill directory root for SpillBudget > 0 ("" = the
	// system temp dir). Ignored when Engine is set.
	TmpDir string
	// Sink, when non-nil, receives the matching phase's emitted pairs
	// as a stream instead of having them collected into the result
	// (Result.Matches stays nil and MatchResult.Output stays empty), so
	// match-output memory is O(1) in the match count. See MatchSink for
	// the ordering and Flush contract.
	Sink MatchSink
	// Retry configures task attempts, backoff, and speculative
	// re-execution for the pipeline's jobs (the zero value means engine
	// defaults: see mapreduce.RetryPolicy). Ignored when Engine is set —
	// configure the engine directly instead.
	Retry mapreduce.RetryPolicy
	// FaultHook, when non-nil, is the deterministic fault-injection hook
	// threaded to every job (chaos testing; see mapreduce.ChaosHook).
	// Ignored when Engine is set.
	FaultHook mapreduce.FaultHook
	// MasterAddr, when non-empty, makes RunDistributedPipeline start a
	// dist master listening on this address and dispatch the pipeline's
	// tasks to registered workers ("127.0.0.1:0" picks a free port).
	// Only RunDistributedPipeline reads it.
	MasterAddr string
	// Workers is how many registered workers RunDistributedPipeline
	// waits for before starting the first job (0 = start immediately;
	// the engine degrades to local execution when none ever register).
	Workers int
	// Master, when non-nil, is a started dist master to dispatch
	// through instead of starting one from MasterAddr — the seam the
	// in-process differential tests use. The caller owns its lifetime.
	Master *dist.Master
	// Obs, when non-nil, threads tracing and metrics through the
	// pipeline's engine (and, for RunDistributedPipeline, through a
	// master started from MasterAddr). Nil keeps every hot path on the
	// zero-overhead disabled branch. When Engine is set, the engine's
	// own Obs wins if non-nil; otherwise this one is installed on it.
	Obs *obs.Observer
}

// ResolveEngine returns the effective engine: the configured one, or a
// fresh engine built from the option fields (external dataflow when a
// spill budget is set).
func (o *RunOptions) ResolveEngine() *mapreduce.Engine {
	if o.Engine != nil {
		if o.Engine.Obs == nil {
			o.Engine.Obs = o.Obs
		}
		return o.Engine
	}
	e := &mapreduce.Engine{Parallelism: o.Parallelism, Retry: o.Retry, FaultHook: o.FaultHook, Obs: o.Obs}
	if o.SpillBudget > 0 {
		e.Dataflow = mapreduce.DataflowExternal
		e.SpillBudget = o.SpillBudget
		e.TmpDir = o.TmpDir
	}
	return e
}

// runMatchJob executes a matching job against the configured output
// path: collecting (nil sink — output and canonical matches land in the
// result, the legacy behaviour) or streaming (each emission goes to the
// sink, which is flushed after a successful run; the returned matches
// are nil and res.Output stays empty).
func runMatchJob(ctx context.Context, eng *mapreduce.Engine, job core.MatchJob, input [][]core.AnnotatedEntity, sink MatchSink) (*core.MatchJobResult, []core.MatchPair, error) {
	if sink == nil {
		res, err := job.RunContext(ctx, eng, input)
		if err != nil {
			return nil, nil, err
		}
		return res, CollectMatches(res), nil
	}
	res, err := job.RunStream(ctx, eng, input, func(o core.MatchOutput) error {
		return sink.Consume(o.Key, o.Value)
	})
	if err != nil {
		return nil, nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, nil, err
	}
	return res, nil, nil
}

// RunPipeline executes the full workflow of Figure 2 over the source's
// partitions: Job 1 computes the BDM and side-writes
// blocking-key-annotated entities per partition; Job 2 redistributes
// them with the configured strategy and performs the matching. For the
// Basic strategy only a single job runs (it needs no BDM); its input is
// annotated inline to keep the dataflow identical.
//
// This is the primary entry point; Run is the pre-context adapter.
// Cancelling ctx stops the run between engine tasks and returns an
// error wrapping ctx.Err(); a configured Sink streams the matches (see
// RunOptions.Sink).
func RunPipeline(ctx context.Context, src Source, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts, err := src.Partitions()
	if err != nil {
		return nil, err
	}
	eng := cfg.ResolveEngine()
	res := &Result{}

	var job2Input [][]core.AnnotatedEntity
	if cfg.Strategy.NeedsBDM() {
		matrix, side, bdmRes, err := bdm.ComputeContext(ctx, eng, parts, bdm.JobOptions{
			Attr:           cfg.Attr,
			KeyFunc:        cfg.BlockKey,
			NumReduceTasks: cfg.R,
			UseCombiner:    cfg.UseCombiner,
		})
		if err != nil {
			return nil, err
		}
		res.BDM = matrix
		res.BDMResult = bdmRes
		job2Input = side
	} else {
		job2Input = AnnotateInput(parts, cfg.Attr, cfg.BlockKey)
	}

	job, err := buildMatchJob(cfg, res.BDM)
	if err != nil {
		return nil, err
	}
	matchRes, matches, err := runMatchJob(ctx, eng, job, job2Input, cfg.Sink)
	if err != nil {
		return nil, err
	}
	res.MatchResult = matchRes
	res.Comparisons = matchRes.Counter(core.ComparisonsCounter)
	res.Matches = matches
	return res, nil
}

// RunDualPipeline executes the two-source (R×S) workflow of Appendix I
// over the two sources' partitions; see RunPipeline for the execution
// semantics and RunDual for the input layout.
func RunDualPipeline(ctx context.Context, srcR, srcS Source, cfg DualConfig) (*DualResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	partsR, err := srcR.Partitions()
	if err != nil {
		return nil, err
	}
	partsS, err := srcS.Partitions()
	if err != nil {
		return nil, err
	}
	eng := cfg.ResolveEngine()
	parts := append(append(entity.Partitions{}, partsR...), partsS...)
	sources := make([]bdm.Source, len(parts))
	for i := range partsS {
		sources[len(partsR)+i] = bdm.SourceS
	}

	matrix, err := bdm.FromDualPartitions(parts, sources, cfg.Attr, cfg.BlockKey)
	if err != nil {
		return nil, err
	}
	job, err := buildDualMatchJob(cfg, matrix)
	if err != nil {
		return nil, err
	}
	matchRes, matches, err := runMatchJob(ctx, eng, job, AnnotateInput(parts, cfg.Attr, cfg.BlockKey), cfg.Sink)
	if err != nil {
		return nil, err
	}
	return &DualResult{
		Matches:     matches,
		Comparisons: matchRes.Counter(core.ComparisonsCounter),
		BDM:         matrix,
		MatchResult: matchRes,
	}, nil
}
