package er

import (
	"fmt"

	"repro/internal/bdm"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mapreduce"
)

// BDMWorkload computes the analytic workload of the BDM job (Job 1) from
// the matrix it would produce: every map task reads its partition and
// emits one pair per entity (or one partial count per non-empty
// (block, partition) cell when the combiner is enabled); each reduce
// task receives the cells of the blocks hashed to it and performs no
// comparisons.
func BDMWorkload(x *bdm.Matrix, r int, combiner bool) cluster.JobWorkload {
	m := x.NumPartitions()
	w := cluster.JobWorkload{
		Name:              "bdm",
		MapRecords:        make([]int64, m),
		MapEmits:          make([]int64, m),
		ReduceRecords:     make([]int64, r),
		ReduceComparisons: make([]int64, r),
	}
	for k := 0; k < x.NumBlocks(); k++ {
		j := mapreduce.HashPartition(x.BlockKey(k), r)
		for p := 0; p < m; p++ {
			n := int64(x.SizeIn(k, p))
			if n == 0 {
				continue
			}
			w.MapRecords[p] += n
			if combiner {
				w.MapEmits[p]++
				w.ReduceRecords[j]++
			} else {
				w.MapEmits[p] += n
				w.ReduceRecords[j] += n
			}
		}
	}
	return w
}

// PlanWorkloads computes the analytic workloads of the full workflow for
// the given strategy: the BDM job (when the strategy needs it) followed
// by the matching job. It also returns the matching job's plan.
func PlanWorkloads(x *bdm.Matrix, strat core.Strategy, m, r int, combiner bool) ([]cluster.JobWorkload, *core.Plan, error) {
	plan, err := strat.Plan(x, m, r)
	if err != nil {
		return nil, nil, err
	}
	var ws []cluster.JobWorkload
	if strat.NeedsBDM() {
		ws = append(ws, BDMWorkload(x, r, combiner))
	}
	ws = append(ws, plan.Workload(strat.Name()))
	return ws, plan, nil
}

// SimulateWorkloads runs the cluster simulator over the workloads in
// order and returns the total simulated time.
func SimulateWorkloads(cfg cluster.Config, cm cluster.CostModel, ws []cluster.JobWorkload) (float64, error) {
	var total float64
	for _, w := range ws {
		jr, err := cluster.SimulateJob(cfg, cm, w)
		if err != nil {
			return 0, fmt.Errorf("er: simulate job %q: %w", w.Name, err)
		}
		total += jr.Time
	}
	return total, nil
}

// SimulatedStrategyTime is the one-call convenience used by the
// experiment harness: plan the workflow analytically and simulate it.
func SimulatedStrategyTime(x *bdm.Matrix, strat core.Strategy, m, r int, cfg cluster.Config, cm cluster.CostModel) (float64, *core.Plan, error) {
	ws, plan, err := PlanWorkloads(x, strat, m, r, true)
	if err != nil {
		return 0, nil, err
	}
	t, err := SimulateWorkloads(cfg, cm, ws)
	if err != nil {
		return 0, nil, err
	}
	return t, plan, nil
}
