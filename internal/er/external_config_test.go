package er_test

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/similarity"
)

// TestConfigSpillBudgetRunsExternal covers the Engine-nil plumbing: a
// Config/DualConfig with SpillBudget > 0 must run out-of-core (runs
// actually spill), produce the same matches as the in-memory default,
// and leave TmpDir empty.
func TestConfigSpillBudgetRunsExternal(t *testing.T) {
	var es []entity.Entity
	for i := 0; i < 40; i++ {
		es = append(es, entity.New(fmt.Sprintf("e%02d", i), "title", fmt.Sprintf("camera model %d", i%7)))
	}
	parts := entity.SplitRoundRobin(es, 3)
	matcher := func(a, b entity.Entity) (float64, bool) {
		s := similarity.LevenshteinSimilarity(a.Attr("title"), b.Attr("title"))
		return s, s >= 0.85
	}
	base := er.Config{
		Strategy:    core.BlockSplit{},
		Attr:        "title",
		BlockKey:    blocking.NormalizedPrefix(3),
		Matcher:     matcher,
		R:           4,
		UseCombiner: true,
	}
	mem, err := er.Run(parts, base)
	if err != nil {
		t.Fatal(err)
	}

	tmp := t.TempDir()
	ext := base
	ext.SpillBudget = 32
	ext.TmpDir = tmp
	res, err := er.Run(parts, ext)
	if err != nil {
		t.Fatal(err)
	}
	var runs int64
	for i := range res.MatchResult.MapMetrics {
		runs += res.MatchResult.MapMetrics[i].SpillRuns
	}
	if runs == 0 {
		t.Fatal("SpillBudget config did not reach the engine: no runs spilled")
	}
	if !reflect.DeepEqual(mem.Matches, res.Matches) || mem.Comparisons != res.Comparisons {
		t.Fatal("external config run diverges from in-memory run")
	}
	if ents, _ := os.ReadDir(tmp); len(ents) != 0 {
		t.Fatalf("TmpDir not empty after run: %v", ents)
	}

	// Dual plumbing.
	dmem, err := er.RunDual(parts[:2], parts[2:], er.DualConfig{
		Strategy: core.PairRangeDual{},
		Attr:     "title",
		BlockKey: blocking.NormalizedPrefix(3),
		Matcher:  matcher,
		R:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dext, err := er.RunDual(parts[:2], parts[2:], er.DualConfig{
		Strategy:   core.PairRangeDual{},
		Attr:       "title",
		BlockKey:   blocking.NormalizedPrefix(3),
		Matcher:    matcher,
		R:          4,
		RunOptions: er.RunOptions{SpillBudget: 32, TmpDir: tmp},
	})
	if err != nil {
		t.Fatal(err)
	}
	var druns int64
	for i := range dext.MatchResult.MapMetrics {
		druns += dext.MatchResult.MapMetrics[i].SpillRuns
	}
	if druns == 0 {
		t.Fatal("DualConfig SpillBudget did not reach the engine")
	}
	if !reflect.DeepEqual(dmem.Matches, dext.Matches) {
		t.Fatal("dual external config run diverges from in-memory run")
	}
	if ents, _ := os.ReadDir(tmp); len(ents) != 0 {
		t.Fatalf("TmpDir not empty after dual run: %v", ents)
	}
}
