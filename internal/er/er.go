// Package er provides the high-level entity-resolution pipeline: the
// two-job MapReduce workflow of Figure 2 (BDM computation followed by
// the load-balanced matching job), result collection, simulated-time
// accounting, and match-quality metrics.
//
// The pipeline surface is composable: a Source supplies the
// partitioned input (in-memory slices, streaming CSV, generators), a
// MatchSink optionally consumes the match stream without accumulating
// it (constant-memory output), and the RunOptions block embedded by
// every workflow configuration — one-source, two-source, sorted
// neighborhood, multi-pass, missing-keys — carries the shared engine
// plumbing. The context-aware entry points (RunPipeline,
// RunDualPipeline, RunWithMissingKeysPipeline, and the sn/multipass
// analogues) cancel between engine tasks; the legacy signatures (Run,
// RunDual, RunWithMissingKeys) remain as thin adapters for one release.
// See DESIGN.md, "Pipeline API".
package er

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/entity"
)

// Config configures a pipeline run.
type Config struct {
	// RunOptions is the execution plumbing (engine, parallelism,
	// out-of-core spilling, match sink) shared by every workflow.
	RunOptions

	// Strategy selects the redistribution scheme (core.Basic{},
	// core.BlockSplit{}, core.PairRange{}).
	Strategy core.Strategy
	// Attr is the entity attribute the blocking key is derived from.
	Attr string
	// BlockKey derives the blocking key from the attribute value.
	BlockKey blocking.KeyFunc
	// Matcher decides whether two entities match. nil counts
	// comparisons without comparing.
	Matcher core.Matcher
	// PreparedMatcher, when non-nil, takes precedence over Matcher and
	// drives the prepare-once comparison kernel: strategies implementing
	// core.PreparedStrategy (all in-tree ones) prepare each entity once
	// per reduce group; any other strategy falls back transparently to
	// the plain path via core.PlainMatcher. Results are identical either
	// way.
	PreparedMatcher core.PreparedMatcher
	// R is the number of reduce tasks of the matching job (and of the
	// BDM job).
	R int
	// UseCombiner enables the combiner in the BDM job.
	UseCombiner bool
}

func (c *Config) validate() error {
	switch {
	case c.Strategy == nil:
		return fmt.Errorf("er: Config.Strategy is required")
	case c.BlockKey == nil:
		return fmt.Errorf("er: Config.BlockKey is required")
	case c.R <= 0:
		return fmt.Errorf("er: Config.R must be > 0, got %d", c.R)
	}
	return nil
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Matches holds the deduplicated match pairs in canonical order.
	Matches []core.MatchPair
	// Comparisons is the total number of pair comparisons performed by
	// the matching job's reduce phase.
	Comparisons int64
	// BDM is the block distribution matrix (nil for Basic).
	BDM *bdm.Matrix
	// BDMResult / MatchResult expose the raw outputs and per-task
	// metrics of the two jobs (BDMResult is nil for Basic).
	BDMResult   *bdm.JobResult
	MatchResult *core.MatchJobResult
}

// Workloads converts the run's metrics into cluster-simulator workloads,
// in execution order (BDM job first when present).
func (r *Result) Workloads() []cluster.JobWorkload {
	var ws []cluster.JobWorkload
	if r.BDMResult != nil {
		ws = append(ws, cluster.WorkloadFromResult(&r.BDMResult.Metrics))
	}
	ws = append(ws, cluster.WorkloadFromResult(&r.MatchResult.Metrics))
	return ws
}

// SimulatedTime runs the cluster simulator over the run's workloads and
// returns the total simulated execution time.
func (r *Result) SimulatedTime(cfg cluster.Config, cm cluster.CostModel) (float64, error) {
	var total float64
	for _, w := range r.Workloads() {
		jr, err := cluster.SimulateJob(cfg, cm, w)
		if err != nil {
			return 0, err
		}
		total += jr.Time
	}
	return total, nil
}

// Run executes the full workflow of Figure 2 over the partitioned
// input — the pre-context adapter over RunPipeline, kept for one
// release of compatibility.
func Run(parts entity.Partitions, cfg Config) (*Result, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return RunPipeline(context.Background(), FromPartitions(parts), cfg)
}

// buildMatchJob selects the matching job's matcher path: the prepared
// kernel when the config carries a PreparedMatcher and the strategy
// supports it, the plain-Matcher adapter when it does not, and the plain
// path otherwise.
func buildMatchJob(cfg Config, x *bdm.Matrix) (core.MatchJob, error) {
	if cfg.PreparedMatcher != nil {
		if ps, ok := cfg.Strategy.(core.PreparedStrategy); ok {
			return ps.JobPrepared(x, cfg.R, cfg.PreparedMatcher)
		}
		return cfg.Strategy.Job(x, cfg.R, core.PlainMatcher(cfg.PreparedMatcher))
	}
	return cfg.Strategy.Job(x, cfg.R, cfg.Matcher)
}

// AnnotateInput converts raw partitions into the blocking-key-annotated
// records Job 2 consumes, exactly as the BDM job's side output would.
func AnnotateInput(parts entity.Partitions, attr string, key blocking.KeyFunc) [][]core.AnnotatedEntity {
	input := make([][]core.AnnotatedEntity, len(parts))
	for i, p := range parts {
		input[i] = make([]core.AnnotatedEntity, len(p))
		for j, e := range p {
			input[i][j] = core.AnnotatedEntity{Key: key(e.Attr(attr)), Value: e}
		}
	}
	return input
}

// CollectMatches extracts, deduplicates, and sorts the match pairs from
// a matching job's output. (BlockSplit replicates entities of split
// blocks, but every pair is still compared exactly once, so duplicates
// can only arise from user matchers emitting on reflexive inputs;
// deduplication keeps the result canonical regardless.)
func CollectMatches(res *core.MatchJobResult) []core.MatchPair {
	seen := make(map[core.MatchPair]bool, len(res.Output))
	out := make([]core.MatchPair, 0, len(res.Output))
	for _, rec := range res.Output {
		if !seen[rec.Key] {
			seen[rec.Key] = true
			out = append(out, rec.Key)
		}
	}
	SortMatches(out)
	return out
}

// SortMatches orders pairs lexicographically for deterministic output.
func SortMatches(ps []core.MatchPair) {
	slices.SortFunc(ps, core.CompareMatchPairs)
}

// SerialMatch is the reference implementation the property tests compare
// against: group entities by blocking key and compare all pairs within
// each block with a simple nested loop.
func SerialMatch(entities []entity.Entity, attr string, key blocking.KeyFunc, match core.Matcher) ([]core.MatchPair, int64) {
	blocks := make(map[string][]entity.Entity)
	for _, e := range entities {
		k := key(e.Attr(attr))
		blocks[k] = append(blocks[k], e)
	}
	var pairs []core.MatchPair
	var comparisons int64
	for _, block := range blocks {
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				comparisons++
				if match == nil {
					continue
				}
				if _, ok := match(block[i], block[j]); ok {
					pairs = append(pairs, core.NewMatchPair(block[i].ID, block[j].ID))
				}
			}
		}
	}
	SortMatches(pairs)
	return pairs, comparisons
}
