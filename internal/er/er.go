// Package er provides the high-level entity-resolution pipeline: the
// two-job MapReduce workflow of Figure 2 (BDM computation followed by
// the load-balanced matching job), result collection, simulated-time
// accounting, and match-quality metrics.
package er

import (
	"fmt"
	"sort"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// Config configures a pipeline run.
type Config struct {
	// Strategy selects the redistribution scheme (core.Basic{},
	// core.BlockSplit{}, core.PairRange{}).
	Strategy core.Strategy
	// Attr is the entity attribute the blocking key is derived from.
	Attr string
	// BlockKey derives the blocking key from the attribute value.
	BlockKey blocking.KeyFunc
	// Matcher decides whether two entities match. nil counts
	// comparisons without comparing.
	Matcher core.Matcher
	// PreparedMatcher, when non-nil, takes precedence over Matcher and
	// drives the prepare-once comparison kernel: strategies implementing
	// core.PreparedStrategy (all in-tree ones) prepare each entity once
	// per reduce group; any other strategy falls back transparently to
	// the plain path via core.PlainMatcher. Results are identical either
	// way.
	PreparedMatcher core.PreparedMatcher
	// R is the number of reduce tasks of the matching job (and of the
	// BDM job).
	R int
	// Engine executes the jobs; nil means a default engine whose worker
	// bound is Parallelism.
	Engine *mapreduce.Engine
	// Parallelism bounds the number of concurrently executing tasks per
	// phase when Engine is nil (0 = one goroutine per task, the engine
	// default). Ignored when Engine is set — configure the engine
	// directly instead.
	Parallelism int
	// SpillBudget, when > 0, runs both jobs on the out-of-core external
	// dataflow with this per-map-task spill budget in bytes (see
	// mapreduce.Engine.SpillBudget). Ignored when Engine is set.
	SpillBudget int64
	// TmpDir is the spill directory root for SpillBudget > 0 ("" = the
	// system temp dir). Ignored when Engine is set.
	TmpDir string
	// UseCombiner enables the combiner in the BDM job.
	UseCombiner bool
}

func (c *Config) validate() error {
	switch {
	case c.Strategy == nil:
		return fmt.Errorf("er: Config.Strategy is required")
	case c.BlockKey == nil:
		return fmt.Errorf("er: Config.BlockKey is required")
	case c.R <= 0:
		return fmt.Errorf("er: Config.R must be > 0, got %d", c.R)
	}
	return nil
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Matches holds the deduplicated match pairs in canonical order.
	Matches []core.MatchPair
	// Comparisons is the total number of pair comparisons performed by
	// the matching job's reduce phase.
	Comparisons int64
	// BDM is the block distribution matrix (nil for Basic).
	BDM *bdm.Matrix
	// BDMResult / MatchResult expose the raw outputs and per-task
	// metrics of the two jobs (BDMResult is nil for Basic).
	BDMResult   *bdm.JobResult
	MatchResult *core.MatchJobResult
}

// Workloads converts the run's metrics into cluster-simulator workloads,
// in execution order (BDM job first when present).
func (r *Result) Workloads() []cluster.JobWorkload {
	var ws []cluster.JobWorkload
	if r.BDMResult != nil {
		ws = append(ws, cluster.WorkloadFromResult(&r.BDMResult.Metrics))
	}
	ws = append(ws, cluster.WorkloadFromResult(&r.MatchResult.Metrics))
	return ws
}

// SimulatedTime runs the cluster simulator over the run's workloads and
// returns the total simulated execution time.
func (r *Result) SimulatedTime(cfg cluster.Config, cm cluster.CostModel) (float64, error) {
	var total float64
	for _, w := range r.Workloads() {
		jr, err := cluster.SimulateJob(cfg, cm, w)
		if err != nil {
			return 0, err
		}
		total += jr.Time
	}
	return total, nil
}

// Run executes the full workflow of Figure 2 over the partitioned input:
// Job 1 computes the BDM and side-writes blocking-key-annotated entities
// per partition; Job 2 redistributes them with the configured strategy
// and performs the matching. For the Basic strategy only a single job
// runs (it needs no BDM); its input is annotated inline to keep the
// dataflow identical.
func Run(parts entity.Partitions, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := cfg.Engine
	if eng == nil {
		eng = &mapreduce.Engine{Parallelism: cfg.Parallelism}
		if cfg.SpillBudget > 0 {
			eng.Dataflow = mapreduce.DataflowExternal
			eng.SpillBudget = cfg.SpillBudget
			eng.TmpDir = cfg.TmpDir
		}
	}
	res := &Result{}

	var job2Input [][]core.AnnotatedEntity
	if cfg.Strategy.NeedsBDM() {
		matrix, side, bdmRes, err := bdm.Compute(eng, parts, bdm.JobOptions{
			Attr:           cfg.Attr,
			KeyFunc:        cfg.BlockKey,
			NumReduceTasks: cfg.R,
			UseCombiner:    cfg.UseCombiner,
		})
		if err != nil {
			return nil, err
		}
		res.BDM = matrix
		res.BDMResult = bdmRes
		job2Input = side
	} else {
		job2Input = AnnotateInput(parts, cfg.Attr, cfg.BlockKey)
	}

	job, err := buildMatchJob(cfg, res.BDM)
	if err != nil {
		return nil, err
	}
	matchRes, err := job.Run(eng, job2Input)
	if err != nil {
		return nil, err
	}
	res.MatchResult = matchRes
	res.Comparisons = matchRes.Counter(core.ComparisonsCounter)
	res.Matches = CollectMatches(matchRes)
	return res, nil
}

// buildMatchJob selects the matching job's matcher path: the prepared
// kernel when the config carries a PreparedMatcher and the strategy
// supports it, the plain-Matcher adapter when it does not, and the plain
// path otherwise.
func buildMatchJob(cfg Config, x *bdm.Matrix) (core.MatchJob, error) {
	if cfg.PreparedMatcher != nil {
		if ps, ok := cfg.Strategy.(core.PreparedStrategy); ok {
			return ps.JobPrepared(x, cfg.R, cfg.PreparedMatcher)
		}
		return cfg.Strategy.Job(x, cfg.R, core.PlainMatcher(cfg.PreparedMatcher))
	}
	return cfg.Strategy.Job(x, cfg.R, cfg.Matcher)
}

// AnnotateInput converts raw partitions into the blocking-key-annotated
// records Job 2 consumes, exactly as the BDM job's side output would.
func AnnotateInput(parts entity.Partitions, attr string, key blocking.KeyFunc) [][]core.AnnotatedEntity {
	input := make([][]core.AnnotatedEntity, len(parts))
	for i, p := range parts {
		input[i] = make([]core.AnnotatedEntity, len(p))
		for j, e := range p {
			input[i][j] = core.AnnotatedEntity{Key: key(e.Attr(attr)), Value: e}
		}
	}
	return input
}

// CollectMatches extracts, deduplicates, and sorts the match pairs from
// a matching job's output. (BlockSplit replicates entities of split
// blocks, but every pair is still compared exactly once, so duplicates
// can only arise from user matchers emitting on reflexive inputs;
// deduplication keeps the result canonical regardless.)
func CollectMatches(res *core.MatchJobResult) []core.MatchPair {
	seen := make(map[core.MatchPair]bool, len(res.Output))
	out := make([]core.MatchPair, 0, len(res.Output))
	for _, rec := range res.Output {
		if !seen[rec.Key] {
			seen[rec.Key] = true
			out = append(out, rec.Key)
		}
	}
	SortMatches(out)
	return out
}

// SortMatches orders pairs lexicographically for deterministic output.
func SortMatches(ps []core.MatchPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// SerialMatch is the reference implementation the property tests compare
// against: group entities by blocking key and compare all pairs within
// each block with a simple nested loop.
func SerialMatch(entities []entity.Entity, attr string, key blocking.KeyFunc, match core.Matcher) ([]core.MatchPair, int64) {
	blocks := make(map[string][]entity.Entity)
	for _, e := range entities {
		k := key(e.Attr(attr))
		blocks[k] = append(blocks[k], e)
	}
	var pairs []core.MatchPair
	var comparisons int64
	for _, block := range blocks {
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				comparisons++
				if match == nil {
					continue
				}
				if _, ok := match(block[i], block[j]); ok {
					pairs = append(pairs, core.NewMatchPair(block[i].ID, block[j].ID))
				}
			}
		}
	}
	SortMatches(pairs)
	return pairs, comparisons
}
