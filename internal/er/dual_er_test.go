package er

import (
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
)

func TestRunDualAgainstSerial(t *testing.T) {
	es, _ := datagen.Generate(datagen.DS1Spec(0.003))
	r, s := datagen.TwoSources(es, 0.5, 5)
	want, wantComps := SerialMatchDual(r, s, datagen.AttrTitle, datagen.BlockKey(), titleMatcher(0.85))
	for _, strat := range []core.DualStrategy{core.BlockSplitDual{}, core.PairRangeDual{}} {
		res, err := RunDual(
			entity.SplitRoundRobin(r, 2),
			entity.SplitRoundRobin(s, 2),
			DualConfig{
				Strategy: strat,
				Attr:     datagen.AttrTitle,
				BlockKey: datagen.BlockKey(),
				Matcher:  titleMatcher(0.85),
				R:        5,
			})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if len(res.Matches) != len(want) || (len(want) > 0 && !reflect.DeepEqual(res.Matches, want)) {
			t.Errorf("%s: %d links, serial reference has %d", strat.Name(), len(res.Matches), len(want))
		}
		if res.Comparisons != wantComps {
			t.Errorf("%s: %d comparisons, want %d", strat.Name(), res.Comparisons, wantComps)
		}
		if res.BDM == nil {
			t.Errorf("%s: missing dual BDM", strat.Name())
		}
	}
}

func TestRunDualValidation(t *testing.T) {
	parts := entity.SplitRoundRobin(smallDataset(), 1)
	if _, err := RunDual(parts, parts, DualConfig{}); err == nil {
		t.Error("empty config: want error")
	}
	if _, err := RunDual(parts, parts, DualConfig{Strategy: core.BlockSplitDual{}, BlockKey: blocking.Prefix(3)}); err == nil {
		t.Error("R=0: want error")
	}
	if _, err := RunDual(parts, parts, DualConfig{Strategy: core.BlockSplitDual{}, R: 2}); err == nil {
		t.Error("nil BlockKey: want error")
	}
}

func TestSerialMatchDualCountsOnly(t *testing.T) {
	r := []entity.Entity{entity.New("r1", "title", "abc x"), entity.New("r2", "title", "xyz")}
	s := []entity.Entity{entity.New("s1", "title", "abc y"), entity.New("s2", "title", "abq")}
	// Blocks by 3-prefix: "abc": r1 × s1; others singleton per source.
	pairs, comps := SerialMatchDual(r, s, "title", blocking.Prefix(3), nil)
	if comps != 1 {
		t.Errorf("comparisons = %d, want 1", comps)
	}
	if len(pairs) != 0 {
		t.Errorf("nil matcher produced pairs: %v", pairs)
	}
}
