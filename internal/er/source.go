package er

import (
	"fmt"
	"io"
	"os"

	"repro/internal/entity"
)

// Source supplies a pipeline's partitioned input. The partition count
// determines m, the number of map tasks, exactly as passing
// entity.Partitions to the legacy entry points did; a Source just
// abstracts where those partitions come from — an in-memory slice, a
// CSV stream, a data generator — so every pipeline (one-source, dual,
// sorted neighborhood, multi-pass, missing-keys) consumes one input
// shape.
//
// Partitions is called once per pipeline run. Sources backed by
// one-shot streams (FromCSV over a network reader, say) are therefore
// single-use; file- and memory-backed sources are reusable.
type Source interface {
	Partitions() (entity.Partitions, error)
}

// SourceFunc adapts a plain function to the Source interface — the hook
// for data generators and any custom ingestion:
//
//	src := er.SourceFunc(func() (entity.Partitions, error) {
//		es, _ := datagen.Generate(datagen.DS1Spec(0.02))
//		return entity.SplitRoundRobin(es, 8), nil
//	})
type SourceFunc func() (entity.Partitions, error)

// Partitions implements Source.
func (f SourceFunc) Partitions() (entity.Partitions, error) { return f() }

// FromPartitions wraps already-partitioned input — the layout the
// legacy entry points accepted. The partitions are used as-is.
func FromPartitions(parts entity.Partitions) Source {
	return SourceFunc(func() (entity.Partitions, error) { return parts, nil })
}

// FromEntities splits a flat entity slice into m round-robin partitions
// (the paper's "arbitrary order" input layout).
func FromEntities(es []entity.Entity, m int) Source {
	return SourceFunc(func() (entity.Partitions, error) {
		if m <= 0 {
			return nil, fmt.Errorf("er: FromEntities requires m > 0, got %d", m)
		}
		return entity.SplitRoundRobin(es, m), nil
	})
}

// FromCSV streams a CSV dataset (entity.WriteCSV format) into m
// round-robin partitions, one row materialized at a time — the
// out-of-core input path. The reader is consumed by the first
// Partitions call, so the source is single-use.
func FromCSV(r io.Reader, m int) Source {
	return SourceFunc(func() (entity.Partitions, error) {
		return entity.ReadPartitionsCSV(r, m)
	})
}

// FromCSVFile is FromCSV over a file path. The file is opened and
// closed per Partitions call, so the source is reusable.
func FromCSVFile(path string, m int) Source {
	return SourceFunc(func() (entity.Partitions, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("er: open csv source: %w", err)
		}
		defer f.Close()
		return entity.ReadPartitionsCSV(f, m)
	})
}
