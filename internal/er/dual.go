package er

import (
	"fmt"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// DualConfig configures a two-source (R×S) pipeline run (Appendix I).
type DualConfig struct {
	Strategy core.DualStrategy
	Attr     string
	BlockKey blocking.KeyFunc
	Matcher  core.Matcher
	// PreparedMatcher, when non-nil, takes precedence over Matcher; see
	// Config.PreparedMatcher.
	PreparedMatcher core.PreparedMatcher
	R               int
	Engine          *mapreduce.Engine
	// Parallelism bounds concurrently executing tasks per phase when
	// Engine is nil; see Config.Parallelism.
	Parallelism int
	// SpillBudget and TmpDir select the out-of-core external dataflow
	// when Engine is nil; see Config.SpillBudget.
	SpillBudget int64
	TmpDir      string
}

func (c *DualConfig) validate() error {
	switch {
	case c.Strategy == nil:
		return fmt.Errorf("er: DualConfig.Strategy is required")
	case c.BlockKey == nil:
		return fmt.Errorf("er: DualConfig.BlockKey is required")
	case c.R <= 0:
		return fmt.Errorf("er: DualConfig.R must be > 0, got %d", c.R)
	}
	return nil
}

// DualResult is the outcome of a two-source run.
type DualResult struct {
	Matches     []core.MatchPair
	Comparisons int64
	BDM         *bdm.DualMatrix
	MatchResult *core.MatchJobResult
}

// RunDual matches two sources. partsR and partsS are each source's input
// partitions; as in the paper, every partition holds entities of exactly
// one source (partition indexes are assigned R-first, then S).
func RunDual(partsR, partsS entity.Partitions, cfg DualConfig) (*DualResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := cfg.Engine
	if eng == nil {
		eng = &mapreduce.Engine{Parallelism: cfg.Parallelism}
		if cfg.SpillBudget > 0 {
			eng.Dataflow = mapreduce.DataflowExternal
			eng.SpillBudget = cfg.SpillBudget
			eng.TmpDir = cfg.TmpDir
		}
	}
	parts := append(append(entity.Partitions{}, partsR...), partsS...)
	sources := make([]bdm.Source, len(parts))
	for i := range partsR {
		sources[i] = bdm.SourceR
	}
	for i := range partsS {
		sources[len(partsR)+i] = bdm.SourceS
	}

	matrix, err := bdm.FromDualPartitions(parts, sources, cfg.Attr, cfg.BlockKey)
	if err != nil {
		return nil, err
	}
	var job core.MatchJob
	switch {
	case cfg.PreparedMatcher != nil:
		if ps, ok := cfg.Strategy.(core.PreparedDualStrategy); ok {
			job, err = ps.JobPrepared(matrix, cfg.R, cfg.PreparedMatcher)
		} else {
			job, err = cfg.Strategy.Job(matrix, cfg.R, core.PlainMatcher(cfg.PreparedMatcher))
		}
	default:
		job, err = cfg.Strategy.Job(matrix, cfg.R, cfg.Matcher)
	}
	if err != nil {
		return nil, err
	}
	matchRes, err := job.Run(eng, AnnotateInput(parts, cfg.Attr, cfg.BlockKey))
	if err != nil {
		return nil, err
	}
	return &DualResult{
		Matches:     CollectMatches(matchRes),
		Comparisons: matchRes.Counter(core.ComparisonsCounter),
		BDM:         matrix,
		MatchResult: matchRes,
	}, nil
}

// SerialMatchDual is the two-source reference: compare every R entity
// with every S entity sharing the same blocking key.
func SerialMatchDual(r, s []entity.Entity, attr string, key blocking.KeyFunc, match core.Matcher) ([]core.MatchPair, int64) {
	blocksR := make(map[string][]entity.Entity)
	for _, e := range r {
		k := key(e.Attr(attr))
		blocksR[k] = append(blocksR[k], e)
	}
	var pairs []core.MatchPair
	var comparisons int64
	for _, es := range s {
		k := key(es.Attr(attr))
		for _, er := range blocksR[k] {
			comparisons++
			if match == nil {
				continue
			}
			if _, ok := match(er, es); ok {
				pairs = append(pairs, core.NewMatchPair(er.ID, es.ID))
			}
		}
	}
	SortMatches(pairs)
	return pairs, comparisons
}
