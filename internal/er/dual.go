package er

import (
	"context"
	"fmt"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
)

// DualConfig configures a two-source (R×S) pipeline run (Appendix I).
type DualConfig struct {
	// RunOptions is the execution plumbing (engine, parallelism,
	// out-of-core spilling, match sink) shared by every workflow.
	RunOptions

	Strategy core.DualStrategy
	Attr     string
	BlockKey blocking.KeyFunc
	Matcher  core.Matcher
	// PreparedMatcher, when non-nil, takes precedence over Matcher; see
	// Config.PreparedMatcher.
	PreparedMatcher core.PreparedMatcher
	R               int
}

func (c *DualConfig) validate() error {
	switch {
	case c.Strategy == nil:
		return fmt.Errorf("er: DualConfig.Strategy is required")
	case c.BlockKey == nil:
		return fmt.Errorf("er: DualConfig.BlockKey is required")
	case c.R <= 0:
		return fmt.Errorf("er: DualConfig.R must be > 0, got %d", c.R)
	}
	return nil
}

// DualResult is the outcome of a two-source run.
type DualResult struct {
	Matches     []core.MatchPair
	Comparisons int64
	BDM         *bdm.DualMatrix
	MatchResult *core.MatchJobResult
}

// RunDual matches two sources. partsR and partsS are each source's input
// partitions; as in the paper, every partition holds entities of exactly
// one source (partition indexes are assigned R-first, then S). It is the
// pre-context adapter over RunDualPipeline, kept for one release of
// compatibility.
func RunDual(partsR, partsS entity.Partitions, cfg DualConfig) (*DualResult, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return RunDualPipeline(context.Background(), FromPartitions(partsR), FromPartitions(partsS), cfg)
}

// buildDualMatchJob selects the dual matching job's matcher path (the
// two-source analogue of buildMatchJob).
func buildDualMatchJob(cfg DualConfig, x *bdm.DualMatrix) (core.MatchJob, error) {
	if cfg.PreparedMatcher != nil {
		if ps, ok := cfg.Strategy.(core.PreparedDualStrategy); ok {
			return ps.JobPrepared(x, cfg.R, cfg.PreparedMatcher)
		}
		return cfg.Strategy.Job(x, cfg.R, core.PlainMatcher(cfg.PreparedMatcher))
	}
	return cfg.Strategy.Job(x, cfg.R, cfg.Matcher)
}

// SerialMatchDual is the two-source reference: compare every R entity
// with every S entity sharing the same blocking key.
func SerialMatchDual(r, s []entity.Entity, attr string, key blocking.KeyFunc, match core.Matcher) ([]core.MatchPair, int64) {
	blocksR := make(map[string][]entity.Entity)
	for _, e := range r {
		k := key(e.Attr(attr))
		blocksR[k] = append(blocksR[k], e)
	}
	var pairs []core.MatchPair
	var comparisons int64
	for _, es := range s {
		k := key(es.Attr(attr))
		for _, er := range blocksR[k] {
			comparisons++
			if match == nil {
				continue
			}
			if _, ok := match(er, es); ok {
				pairs = append(pairs, core.NewMatchPair(er.ID, es.ID))
			}
		}
	}
	SortMatches(pairs)
	return pairs, comparisons
}
