package er_test

// Pipeline-API tests: the legacy adapters (Run/RunDual/
// RunWithMissingKeys) must produce byte-identical Results — TaskMetrics
// included — to the redesigned context-aware pipeline entry points;
// streamed sinks must see exactly the collected match stream without
// accumulating it; Sources must reproduce the legacy input layouts.

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/similarity"
	"repro/internal/testleak"
)

func testMatcher(threshold float64) core.Matcher {
	return func(a, b entity.Entity) (float64, bool) {
		sim := similarity.LevenshteinSimilarity(a.Attr(datagen.AttrTitle), b.Attr(datagen.AttrTitle))
		return sim, sim >= threshold
	}
}

func testEntities(n int, seed int64) []entity.Entity {
	es, _ := datagen.Generate(datagen.Spec{N: n, Blocks: 12, Alpha: 0.8, DupRate: 0.2, Seed: seed})
	return es
}

func baseConfig(strat core.Strategy, par int) er.Config {
	return er.Config{
		RunOptions:  er.RunOptions{Engine: &mapreduce.Engine{Parallelism: par}},
		Strategy:    strat,
		Attr:        datagen.AttrTitle,
		BlockKey:    datagen.BlockKey(),
		Matcher:     testMatcher(0.8),
		R:           5,
		UseCombiner: true,
	}
}

// TestAdapterMatchesPipeline: er.Run ≡ er.RunPipeline on the full
// Result — matches, comparisons, BDM, and every TaskMetrics field of
// both jobs — across all three strategies and parallelism 1 and 4.
func TestAdapterMatchesPipeline(t *testing.T) {
	es := testEntities(150, 3)
	parts := entity.SplitRoundRobin(es, 3)
	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		for _, par := range []int{1, 4} {
			cfg := baseConfig(strat, par)
			legacy, err := er.Run(parts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pipeline, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(legacy, pipeline) {
				t.Fatalf("%s par %d: legacy adapter result differs from pipeline", strat.Name(), par)
			}
			if len(legacy.Matches) == 0 {
				t.Fatalf("%s: differential test vacuous, no matches", strat.Name())
			}
		}
	}
}

// TestDualAdapterMatchesPipeline: er.RunDual ≡ er.RunDualPipeline for
// both dual strategies.
func TestDualAdapterMatchesPipeline(t *testing.T) {
	es := testEntities(160, 5)
	r, s := datagen.TwoSources(es, 0.5, 11)
	partsR := entity.SplitRoundRobin(r, 2)
	partsS := entity.SplitRoundRobin(s, 3)
	for _, strat := range []core.DualStrategy{core.BlockSplitDual{}, core.PairRangeDual{}} {
		cfg := er.DualConfig{
			RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
			Strategy:   strat,
			Attr:       datagen.AttrTitle,
			BlockKey:   datagen.BlockKey(),
			Matcher:    testMatcher(0.8),
			R:          4,
		}
		legacy, err := er.RunDual(partsR, partsS, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pipeline, err := er.RunDualPipeline(context.Background(), er.FromPartitions(partsR), er.FromPartitions(partsS), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, pipeline) {
			t.Fatalf("%s: legacy dual adapter result differs from pipeline", strat.Name())
		}
	}
}

// missingKeyBlocker drops the blocking key for part of the dataset so
// the decomposition exercises all three sub-runs.
func missingKeyBlocker(v string) string {
	if len(v) > 0 && v[0]%4 == 0 {
		return ""
	}
	return blocking.Prefix(3)(v)
}

// TestMissingKeysAdapterMatchesPipeline: er.RunWithMissingKeys ≡
// er.RunWithMissingKeysPipeline on the aggregated result.
func TestMissingKeysAdapterMatchesPipeline(t *testing.T) {
	es := testEntities(120, 7)
	parts := entity.SplitRoundRobin(es, 3)
	cfg := baseConfig(core.BlockSplit{}, 2)
	cfg.BlockKey = missingKeyBlocker
	legacy, err := er.RunWithMissingKeys(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Keyed == nil || legacy.Cross == nil || legacy.NoKey == nil {
		t.Fatal("decomposition did not exercise all three sub-runs")
	}
	pipeline, err := er.RunWithMissingKeysPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, pipeline) {
		t.Fatal("legacy missing-keys adapter result differs from pipeline")
	}
}

// countingSink counts without retaining — the "non-collecting sink" of
// the O(1)-output contract.
type countingSink struct {
	n       int64
	flushes int
}

func (c *countingSink) Consume(core.MatchPair, float64) error { c.n++; return nil }
func (c *countingSink) Flush() error                          { c.flushes++; return nil }

// TestStreamingSinkDoesNotAccumulate is the constant-memory output pin:
// with a non-collecting sink installed, no match is accumulated
// anywhere in the result (Matches nil, MatchResult.Output empty), the
// sink sees exactly the emissions a collecting run accumulates, and all
// metrics stay byte-identical.
func TestStreamingSinkDoesNotAccumulate(t *testing.T) {
	es := testEntities(200, 9)
	parts := entity.SplitRoundRobin(es, 3)
	cfg := baseConfig(core.PairRange{}, 4)
	collected, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	emitted := len(collected.MatchResult.Output)
	if emitted == 0 {
		t.Fatal("test vacuous: no matches emitted")
	}

	sink := &countingSink{}
	cfg.Sink = sink
	streamed, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Matches != nil {
		t.Fatalf("Matches = %d entries, want nil with a sink installed", len(streamed.Matches))
	}
	if n := len(streamed.MatchResult.Output); n != 0 {
		t.Fatalf("MatchResult.Output holds %d records, want 0 (not accumulated)", n)
	}
	if sink.n != int64(emitted) {
		t.Fatalf("sink consumed %d matches, collecting run emitted %d", sink.n, emitted)
	}
	if sink.flushes != 1 {
		t.Fatalf("sink flushed %d times, want 1", sink.flushes)
	}
	if streamed.Comparisons != collected.Comparisons {
		t.Fatalf("comparisons %d != %d", streamed.Comparisons, collected.Comparisons)
	}
	// Full metrics equality: only the output residency may differ.
	a, b := *collected, *streamed
	a.Matches, b.Matches = nil, nil
	ao, bo := *a.MatchResult, *b.MatchResult
	ao.Output, bo.Output = nil, nil
	a.MatchResult, b.MatchResult = &ao, &bo
	if !reflect.DeepEqual(a, b) {
		t.Fatal("streaming run diverges from collecting run beyond output residency")
	}
}

// TestCanonicalSinkMatchesCollect: the deduping Canonical sink must
// reproduce exactly the legacy collected Matches.
func TestCanonicalSinkMatchesCollect(t *testing.T) {
	es := testEntities(150, 13)
	parts := entity.SplitRoundRobin(es, 2)
	cfg := baseConfig(core.BlockSplit{}, 4)
	collected, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	canon := &er.Canonical{}
	cfg.Sink = canon
	if _, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canon.Matches(), collected.Matches) {
		t.Fatalf("Canonical sink = %v, want %v", canon.Matches(), collected.Matches)
	}
}

// TestWriterSinks pins the writer sinks' wire formats and counters
// (unit level), then runs a sequential pipeline into the CSV sink and
// cross-checks the row count against the collecting run.
func TestWriterSinks(t *testing.T) {
	var csvBuf, njBuf bytes.Buffer
	cs := er.NewCSVSink(&csvBuf)
	ns := er.NewNDJSONSink(&njBuf)
	for _, s := range []er.MatchSink{cs, ns} {
		if err := s.Consume(core.MatchPair{A: "a1", B: "b:2"}, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := s.Consume(core.MatchPair{A: `q"uote`, B: "c,comma"}, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	wantCSV := "a,b,similarity\na1,b:2,0.5\n\"q\"\"uote\",\"c,comma\",1\n"
	if got := csvBuf.String(); got != wantCSV {
		t.Errorf("csv sink wrote %q, want %q", got, wantCSV)
	}
	wantNJ := `{"a":"a1","b":"b:2","similarity":0.5}` + "\n" + `{"a":"q\"uote","b":"c,comma","similarity":1}` + "\n"
	if got := njBuf.String(); got != wantNJ {
		t.Errorf("ndjson sink wrote %q, want %q", got, wantNJ)
	}
	if cs.Count() != 2 || ns.Count() != 2 {
		t.Errorf("counts = %d, %d, want 2, 2", cs.Count(), ns.Count())
	}

	// A zero-match run must still leave the header (Flush writes it
	// when no Consume has).
	var empty bytes.Buffer
	es0 := er.NewCSVSink(&empty)
	if err := es0.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := empty.String(); got != "a,b,similarity\n" {
		t.Errorf("empty csv sink wrote %q, want header only", got)
	}

	// Pipeline-level: at Parallelism 1 the stream is deterministic; the
	// CSV must hold exactly one row per collected emission plus header.
	es := testEntities(120, 17)
	parts := entity.SplitRoundRobin(es, 2)
	cfg := baseConfig(core.Basic{}, 1)
	collected, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cfg.Sink = er.NewCSVSink(&out)
	if _, err := er.RunPipeline(context.Background(), er.FromPartitions(parts), cfg); err != nil {
		t.Fatal(err)
	}
	gotRows := strings.Count(out.String(), "\n")
	if want := len(collected.MatchResult.Output) + 1; gotRows != want {
		t.Fatalf("csv rows = %d, want %d", gotRows, want)
	}
}

// TestSources: every Source constructor must reproduce the legacy input
// layout, and source errors must fail the pipeline.
func TestSources(t *testing.T) {
	es := testEntities(50, 19)
	want := entity.SplitRoundRobin(es, 3)

	got, err := er.FromPartitions(want).Partitions()
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("FromPartitions: %v / %v", err, got)
	}
	got, err = er.FromEntities(es, 3).Partitions()
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("FromEntities: %v", err)
	}
	if _, err := er.FromEntities(es, 0).Partitions(); err == nil {
		t.Fatal("FromEntities m=0: want error")
	}

	var buf bytes.Buffer
	if err := entity.WriteCSV(&buf, es, []string{datagen.AttrTitle, datagen.AttrBlock}); err != nil {
		t.Fatal(err)
	}
	csvParts, err := er.FromCSV(bytes.NewReader(buf.Bytes()), 3).Partitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(csvParts) != 3 || csvParts.Total() != len(es) {
		t.Fatalf("FromCSV: %d partitions, %d entities", len(csvParts), csvParts.Total())
	}
	for i, p := range csvParts {
		for j, e := range p {
			if e.ID != want[i][j].ID || e.Attr(datagen.AttrTitle) != want[i][j].Attr(datagen.AttrTitle) {
				t.Fatalf("FromCSV partition %d record %d differs", i, j)
			}
		}
	}

	srcErr := errors.New("generator broke")
	_, err = er.RunPipeline(context.Background(),
		er.SourceFunc(func() (entity.Partitions, error) { return nil, srcErr }),
		baseConfig(core.Basic{}, 1))
	if !errors.Is(err, srcErr) {
		t.Fatalf("source error not propagated: %v", err)
	}
}

// TestPipelineCancelled: a cancelled context aborts the er-level
// pipeline with ctx.Err().
func TestPipelineCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	parts := entity.SplitRoundRobin(testEntities(40, 23), 2)
	before := testleak.Snapshot()
	defer testleak.Check(t, before)
	for name, run := range map[string]func() error{
		"run": func() error {
			_, err := er.RunPipeline(ctx, er.FromPartitions(parts), baseConfig(core.BlockSplit{}, 2))
			return err
		},
		"dual": func() error {
			_, err := er.RunDualPipeline(ctx, er.FromPartitions(parts[:1]), er.FromPartitions(parts[1:]), er.DualConfig{
				Strategy: core.PairRangeDual{},
				Attr:     datagen.AttrTitle,
				BlockKey: datagen.BlockKey(),
				R:        2,
			})
			return err
		},
		"missingkeys": func() error {
			cfg := baseConfig(core.BlockSplit{}, 2)
			cfg.BlockKey = missingKeyBlocker
			_, err := er.RunWithMissingKeysPipeline(ctx, er.FromPartitions(parts), cfg)
			return err
		},
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestMissingKeysSinkStreamsDisjointParts: the three decomposition
// parts emit disjoint pair sets, so a Canonical sink over the streamed
// union equals the collected (deduplicated) Matches.
func TestMissingKeysSinkStreamsDisjointParts(t *testing.T) {
	es := testEntities(120, 29)
	parts := entity.SplitRoundRobin(es, 3)
	cfg := baseConfig(core.PairRange{}, 2)
	cfg.BlockKey = missingKeyBlocker
	collected, err := er.RunWithMissingKeys(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := &countingSink{}
	canon := &er.Canonical{}
	for _, sink := range []er.MatchSink{count, canon} {
		cfg.Sink = sink
		res, err := er.RunWithMissingKeysPipeline(context.Background(), er.FromPartitions(parts), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != nil {
			t.Fatal("missing-keys result accumulated matches despite sink")
		}
	}
	if !reflect.DeepEqual(canon.Matches(), collected.Matches) {
		t.Fatal("Canonical sink over missing-keys stream differs from collected matches")
	}
	// Raw stream length == deduplicated length proves disjointness for
	// this dataset (every streamed pair is distinct).
	if count.n != int64(len(collected.Matches)) {
		t.Fatalf("raw stream carried %d pairs, %d distinct — parts not disjoint?", count.n, len(collected.Matches))
	}
}
