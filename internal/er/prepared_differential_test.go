package er

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/match"
	"repro/internal/similarity"
)

// randEntities builds a dataset of random short titles over a small
// alphabet, so blocks collide and near-duplicates occur naturally.
func randEntities(rng *rand.Rand, n int) []entity.Entity {
	es := make([]entity.Entity, n)
	for i := range es {
		ln := 3 + rng.Intn(10)
		var b strings.Builder
		for j := 0; j < ln; j++ {
			if rng.Intn(7) == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte(byte('a' + rng.Intn(4)))
			}
		}
		es[i] = entity.New(idFor(i), "title", b.String())
	}
	return es
}

func idFor(i int) string {
	return string([]byte{'e', byte('0' + i/100), byte('0' + (i/10)%10), byte('0' + i%10)})
}

// plainEditDistance is the hand-written plain Matcher semantically
// equivalent to match.EditDistance: same decisions, same similarity
// floats (both sides compute 1 - dist/longest in float64).
func plainEditDistance(attr string, threshold float64) core.Matcher {
	return func(a, b entity.Entity) (float64, bool) {
		if !similarity.LevenshteinAtLeast(a.Attr(attr), b.Attr(attr), threshold) {
			return 0, false
		}
		return similarity.LevenshteinSimilarity(a.Attr(attr), b.Attr(attr)), true
	}
}

// TestPreparedMatcherDifferential proves the tentpole's correctness
// claim: the prepared comparison kernel produces bit-identical Matches
// and Comparisons to the plain matcher on random datasets across all
// three strategies and several (m, r) shapes.
func TestPreparedMatcherDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	strategies := []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}}
	for trial := 0; trial < 6; trial++ {
		es := randEntities(rng, 60+rng.Intn(120))
		m := 1 + rng.Intn(4)
		r := 1 + rng.Intn(8)
		th := []float64{0.5, 0.8, 0.6}[trial%3]
		parts := entity.SplitRoundRobin(es, m)
		key := blocking.NormalizedPrefix(2)

		serial, serialComps := SerialMatch(es, "title", key, plainEditDistance("title", th))
		for _, strat := range strategies {
			base := Config{
				Strategy: strat,
				Attr:     "title",
				BlockKey: key,
				R:        r,
			}
			plainCfg := base
			plainCfg.Matcher = plainEditDistance("title", th)
			preparedCfg := base
			preparedCfg.PreparedMatcher = match.EditDistance("title", th)

			plainRes, err := Run(parts, plainCfg)
			if err != nil {
				t.Fatalf("%s plain: %v", strat.Name(), err)
			}
			preparedRes, err := Run(parts, preparedCfg)
			if err != nil {
				t.Fatalf("%s prepared: %v", strat.Name(), err)
			}
			if !reflect.DeepEqual(plainRes.Matches, preparedRes.Matches) {
				t.Fatalf("%s m=%d r=%d th=%v: prepared Matches differ from plain\nplain:    %v\nprepared: %v",
					strat.Name(), m, r, th, plainRes.Matches, preparedRes.Matches)
			}
			if plainRes.Comparisons != preparedRes.Comparisons {
				t.Fatalf("%s m=%d r=%d th=%v: prepared Comparisons = %d, plain = %d",
					strat.Name(), m, r, th, preparedRes.Comparisons, plainRes.Comparisons)
			}
			if !reflect.DeepEqual(preparedRes.Matches, serial) || preparedRes.Comparisons != serialComps {
				t.Fatalf("%s m=%d r=%d th=%v: prepared result disagrees with serial reference",
					strat.Name(), m, r, th)
			}
		}
	}
}

// TestPreparedMatcherDifferentialTokenKernels repeats the differential
// for the token and n-gram kernels (sorted-slice intersections).
func TestPreparedMatcherDifferentialTokenKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	es := randEntities(rng, 120)
	parts := entity.SplitRoundRobin(es, 3)
	key := blocking.NormalizedPrefix(1)
	cases := []struct {
		name     string
		prepared core.PreparedMatcher
		plain    core.Matcher
	}{
		{
			name:     "TokenJaccard",
			prepared: match.TokenJaccard("title", 0.5),
			plain: func(a, b entity.Entity) (float64, bool) {
				sim := similarity.TokenJaccard(a.Attr("title"), b.Attr("title"))
				return sim, sim >= 0.5
			},
		},
		{
			name:     "NGramJaccard",
			prepared: match.NGramJaccard("title", 2, 0.4),
			plain: func(a, b entity.Entity) (float64, bool) {
				sim := similarity.JaccardNGram(a.Attr("title"), b.Attr("title"), 2)
				return sim, sim >= 0.4
			},
		},
	}
	for _, tc := range cases {
		for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
			plainRes, err := Run(parts, Config{
				Strategy: strat, Attr: "title", BlockKey: key, Matcher: tc.plain, R: 5,
			})
			if err != nil {
				t.Fatalf("%s/%s plain: %v", tc.name, strat.Name(), err)
			}
			preparedRes, err := Run(parts, Config{
				Strategy: strat, Attr: "title", BlockKey: key, PreparedMatcher: tc.prepared, R: 5,
			})
			if err != nil {
				t.Fatalf("%s/%s prepared: %v", tc.name, strat.Name(), err)
			}
			if !reflect.DeepEqual(plainRes.Matches, preparedRes.Matches) ||
				plainRes.Comparisons != preparedRes.Comparisons {
				t.Fatalf("%s/%s: prepared (matches=%d comps=%d) != plain (matches=%d comps=%d)",
					tc.name, strat.Name(), len(preparedRes.Matches), preparedRes.Comparisons,
					len(plainRes.Matches), plainRes.Comparisons)
			}
		}
	}
}

// TestPreparedMatcherDualDifferential covers both two-source strategies.
func TestPreparedMatcherDualDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	es := randEntities(rng, 150)
	rsrc, ssrc := es[:90], es[90:]
	key := blocking.NormalizedPrefix(2)
	for _, strat := range []core.DualStrategy{core.BlockSplitDual{}, core.PairRangeDual{}} {
		plainRes, err := RunDual(
			entity.SplitRoundRobin(rsrc, 2), entity.SplitRoundRobin(ssrc, 3),
			DualConfig{
				Strategy: strat, Attr: "title", BlockKey: key,
				Matcher: plainEditDistance("title", 0.6), R: 4,
			})
		if err != nil {
			t.Fatalf("%s plain: %v", strat.Name(), err)
		}
		preparedRes, err := RunDual(
			entity.SplitRoundRobin(rsrc, 2), entity.SplitRoundRobin(ssrc, 3),
			DualConfig{
				Strategy: strat, Attr: "title", BlockKey: key,
				PreparedMatcher: match.EditDistance("title", 0.6), R: 4,
			})
		if err != nil {
			t.Fatalf("%s prepared: %v", strat.Name(), err)
		}
		if !reflect.DeepEqual(plainRes.Matches, preparedRes.Matches) ||
			plainRes.Comparisons != preparedRes.Comparisons {
			t.Fatalf("%s: prepared dual result differs from plain", strat.Name())
		}
	}
}

// plainOnlyStrategy hides the PreparedStrategy implementation of the
// wrapped strategy, forcing er.Run's transparent PlainMatcher fallback.
type plainOnlyStrategy struct{ core.Strategy }

// TestPreparedMatcherFallback: a strategy without JobPrepared still
// works with a PreparedMatcher via the per-pair adapter, identically.
func TestPreparedMatcherFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	es := randEntities(rng, 80)
	parts := entity.SplitRoundRobin(es, 2)
	key := blocking.NormalizedPrefix(2)
	if _, ok := any(plainOnlyStrategy{core.PairRange{}}).(core.PreparedStrategy); ok {
		t.Fatal("plainOnlyStrategy must not implement PreparedStrategy")
	}
	want, err := Run(parts, Config{
		Strategy: core.PairRange{}, Attr: "title", BlockKey: key,
		PreparedMatcher: match.EditDistance("title", 0.7), R: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(parts, Config{
		Strategy: plainOnlyStrategy{core.PairRange{}}, Attr: "title", BlockKey: key,
		PreparedMatcher: match.EditDistance("title", 0.7), R: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Matches, got.Matches) || want.Comparisons != got.Comparisons {
		t.Fatal("fallback path result differs from prepared path")
	}
}
