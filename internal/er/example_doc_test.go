package er_test

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/similarity"
)

// The complete workflow of Figure 2: BDM job, load-balanced matching,
// match collection.
func ExampleRun() {
	entities := []entity.Entity{
		entity.New("p1", "title", "acme rocket skates"),
		entity.New("p2", "title", "acme rocket skates!"),
		entity.New("p3", "title", "acme anvil"),
		entity.New("p4", "title", "bolt cutter"),
	}
	res, err := er.Run(entity.SplitRoundRobin(entities, 2), er.Config{
		Strategy: core.BlockSplit{},
		Attr:     "title",
		BlockKey: blocking.NormalizedPrefix(3),
		Matcher: func(a, b entity.Entity) (float64, bool) {
			sim := similarity.LevenshteinSimilarity(a.Attr("title"), b.Attr("title"))
			return sim, sim >= 0.8
		},
		R: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("pairs compared:", res.Comparisons)
	for _, m := range res.Matches {
		fmt.Println("match:", m.A, m.B)
	}
	// Output:
	// pairs compared: 3
	// match: p1 p2
}

// Clusters turns pairwise matches into duplicate groups via transitive
// closure.
func ExampleClusters() {
	pairs := []core.MatchPair{
		core.NewMatchPair("a", "b"),
		core.NewMatchPair("c", "b"),
		core.NewMatchPair("x", "y"),
	}
	for _, c := range er.Clusters(pairs) {
		fmt.Println(c)
	}
	// Output:
	// [a b c]
	// [x y]
}
