package er

import (
	"context"
	"fmt"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
)

// Section III of the paper: entities R∅ ⊆ R without a valid blocking key
// (e.g., products with missing manufacturer) cannot be blocked and must
// be matched against *all* entities. The paper decomposes the problem:
//
//	matchB(R) = matchB(R−R∅)            (the ordinary blocked matching)
//	          ∪ match⊥(R∅, R−R∅)        (Cartesian product, two sources)
//	          ∪ match⊥(R∅)              (Cartesian product within R∅)
//
// where ⊥ is a constant blocking key so that every pair is considered.
// RunWithMissingKeys implements this decomposition with the library's
// existing one- and two-source pipelines.

// noKeySentinel is the constant ⊥ block used for the Cartesian parts.
const noKeySentinel = "\x00⊥"

// MissingKeyResult aggregates the three sub-runs of the decomposition.
type MissingKeyResult struct {
	// Matches is the union of the three match results, deduplicated and
	// sorted canonically.
	Matches []core.MatchPair
	// Comparisons is the total over all three sub-runs.
	Comparisons int64
	// Keyed, Cross, and NoKey expose the individual sub-results
	// (Cross/NoKey are nil when R∅ is empty; Keyed is nil when no
	// entity has a key).
	Keyed *Result
	Cross *DualResult
	NoKey *Result
}

// dualStrategyFor pairs each one-source strategy with its two-source
// counterpart for the Cartesian cross part. Basic has no dual variant in
// the paper; BlockSplitDual degenerates gracefully (one block) and keeps
// the Cartesian product balanced, so it serves as Basic's stand-in.
func dualStrategyFor(s core.Strategy) core.DualStrategy {
	if _, ok := s.(core.PairRange); ok {
		return core.PairRangeDual{}
	}
	return core.BlockSplitDual{}
}

// RunWithMissingKeys runs the full decomposition — the pre-context
// adapter over RunWithMissingKeysPipeline.
func RunWithMissingKeys(parts entity.Partitions, cfg Config) (*MissingKeyResult, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return RunWithMissingKeysPipeline(context.Background(), FromPartitions(parts), cfg)
}

// RunWithMissingKeysPipeline runs the full decomposition over the
// source's partitions. cfg.BlockKey may return "" for entities without
// a valid key; those are routed through the Cartesian parts. All other
// configuration — the whole embedded RunOptions included, so spilling
// and a configured Sink apply to every sub-run — is forwarded to each
// of the three sub-pipelines. The three parts produce disjoint pair
// sets (each pair falls into exactly one part by which sides carry a
// key), so a streaming sink sees each match once; without a sink the
// union is additionally deduplicated and canonically sorted into
// MissingKeyResult.Matches.
func RunWithMissingKeysPipeline(ctx context.Context, src Source, cfg Config) (*MissingKeyResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts, err := src.Partitions()
	if err != nil {
		return nil, err
	}
	keyed := make(entity.Partitions, len(parts))
	noKey := make(entity.Partitions, len(parts))
	var nKeyed, nNoKey int
	for i, part := range parts {
		for _, e := range part {
			if cfg.BlockKey(e.Attr(cfg.Attr)) == "" {
				noKey[i] = append(noKey[i], e)
				nNoKey++
			} else {
				keyed[i] = append(keyed[i], e)
				nKeyed++
			}
		}
	}

	out := &MissingKeyResult{}
	seen := make(map[core.MatchPair]bool)
	add := func(pairs []core.MatchPair) {
		for _, p := range pairs {
			if !seen[p] {
				seen[p] = true
				out.Matches = append(out.Matches, p)
			}
		}
	}

	// Part 1: ordinary blocked matching of the keyed entities.
	if nKeyed > 0 {
		res, err := RunPipeline(ctx, FromPartitions(compact(keyed)), cfg)
		if err != nil {
			return nil, fmt.Errorf("er: missing-keys decomposition, keyed part: %w", err)
		}
		out.Keyed = res
		out.Comparisons += res.Comparisons
		add(res.Matches)
	}

	// Part 2: R∅ × (R−R∅) under the constant key ⊥ (two sources).
	if nNoKey > 0 && nKeyed > 0 {
		res, err := RunDualPipeline(ctx, FromPartitions(compact(noKey)), FromPartitions(compact(keyed)), DualConfig{
			RunOptions:      cfg.RunOptions,
			Strategy:        dualStrategyFor(cfg.Strategy),
			Attr:            cfg.Attr,
			BlockKey:        blocking.Constant(noKeySentinel),
			Matcher:         cfg.Matcher,
			PreparedMatcher: cfg.PreparedMatcher,
			R:               cfg.R,
		})
		if err != nil {
			return nil, fmt.Errorf("er: missing-keys decomposition, cross part: %w", err)
		}
		out.Cross = res
		out.Comparisons += res.Comparisons
		add(res.Matches)
	}

	// Part 3: the Cartesian product within R∅ itself.
	if nNoKey > 1 {
		sub := cfg
		sub.BlockKey = blocking.Constant(noKeySentinel)
		res, err := RunPipeline(ctx, FromPartitions(compact(noKey)), sub)
		if err != nil {
			return nil, fmt.Errorf("er: missing-keys decomposition, no-key part: %w", err)
		}
		out.NoKey = res
		out.Comparisons += res.Comparisons
		add(res.Matches)
	}

	// Degenerate inputs (no keyed entities and fewer than two keyless
	// ones) run zero sub-pipelines; flush the sink anyway so every
	// successful run honours the MatchSink contract (writer sinks emit
	// their header, buffers drain).
	if cfg.Sink != nil && out.Keyed == nil && out.Cross == nil && out.NoKey == nil {
		if err := cfg.Sink.Flush(); err != nil {
			return nil, err
		}
	}

	SortMatches(out.Matches)
	return out, nil
}

// compact drops empty partitions (the pipelines require at least one
// entity-bearing partition and m equals the partition count, so empty
// tails would skew the BDM for no benefit) while preserving order.
func compact(parts entity.Partitions) entity.Partitions {
	out := make(entity.Partitions, 0, len(parts))
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return entity.Partitions{{}}
	}
	return out
}
