package er

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
)

func TestClustersBasic(t *testing.T) {
	pairs := []core.MatchPair{
		{A: "a", B: "b"},
		{A: "b", B: "c"}, // transitive: a-b-c is one cluster
		{A: "x", B: "y"},
	}
	got := Clusters(pairs)
	want := [][]string{{"a", "b", "c"}, {"x", "y"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Clusters = %v, want %v", got, want)
	}
}

func TestClustersEmpty(t *testing.T) {
	if got := Clusters(nil); len(got) != 0 {
		t.Errorf("Clusters(nil) = %v", got)
	}
}

func TestClustersDuplicatePairs(t *testing.T) {
	pairs := []core.MatchPair{
		{A: "a", B: "b"}, {A: "a", B: "b"}, {A: "b", B: "a"},
	}
	got := Clusters(pairs)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("Clusters = %v", got)
	}
}

// TestClustersTransitiveClosureProperty: for random graphs, two IDs are
// in the same cluster iff they are connected by a path of pairs.
func TestClustersTransitiveClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(40) + 2
		var pairs []core.MatchPair
		adj := make(map[string]map[string]bool)
		addEdge := func(a, b string) {
			if adj[a] == nil {
				adj[a] = make(map[string]bool)
			}
			if adj[b] == nil {
				adj[b] = make(map[string]bool)
			}
			adj[a][b] = true
			adj[b][a] = true
		}
		for e := 0; e < rng.Intn(3*n); e++ {
			a := fmt.Sprintf("v%02d", rng.Intn(n))
			b := fmt.Sprintf("v%02d", rng.Intn(n))
			if a == b {
				continue
			}
			pairs = append(pairs, core.NewMatchPair(a, b))
			addEdge(a, b)
		}
		clusters := Clusters(pairs)

		// BFS reference components.
		visited := make(map[string]bool)
		refComp := make(map[string]int)
		comp := 0
		for v := range adj {
			if visited[v] {
				continue
			}
			queue := []string{v}
			visited[v] = true
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				refComp[cur] = comp
				for nb := range adj[cur] {
					if !visited[nb] {
						visited[nb] = true
						queue = append(queue, nb)
					}
				}
			}
			comp++
		}

		// Compare: same component iff same cluster.
		clusterOf := make(map[string]int)
		for ci, members := range clusters {
			for _, m := range members {
				clusterOf[m] = ci
			}
		}
		if len(clusterOf) != len(refComp) {
			t.Fatalf("trial %d: %d clustered IDs, want %d", trial, len(clusterOf), len(refComp))
		}
		for a := range refComp {
			for b := range refComp {
				same := refComp[a] == refComp[b]
				got := clusterOf[a] == clusterOf[b]
				if same != got {
					t.Fatalf("trial %d: %s/%s same-component=%v but same-cluster=%v", trial, a, b, same, got)
				}
			}
		}
	}
}

func TestClustersFromPipeline(t *testing.T) {
	// End-to-end: duplicates injected around two base entities collapse
	// into clusters containing their bases.
	es := smallDataset()
	res, err := Run(entity.Partitions{es[:3], es[3:]}, Config{
		Strategy: core.PairRange{},
		Attr:     "title",
		BlockKey: blocking.NormalizedPrefix(3),
		Matcher:  titleMatcher(0.8),
		R:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	clusters := Clusters(res.Matches)
	for _, c := range clusters {
		if len(c) < 2 {
			t.Errorf("cluster %v has fewer than 2 members", c)
		}
	}
}
