package er

import "repro/internal/core"

// Quality holds standard match-quality metrics against a gold standard.
type Quality struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP / (TP + FP); 1 when nothing was predicted.
func (q Quality) Precision() float64 {
	d := q.TruePositives + q.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(q.TruePositives) / float64(d)
}

// Recall returns TP / (TP + FN); 1 when the gold standard is empty.
func (q Quality) Recall() float64 {
	d := q.TruePositives + q.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(q.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (q Quality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate compares predicted match pairs against the gold standard.
// Both inputs may be unsorted; pairs are compared canonically.
func Evaluate(predicted, truth []core.MatchPair) Quality {
	truthSet := make(map[core.MatchPair]bool, len(truth))
	for _, p := range truth {
		truthSet[core.NewMatchPair(p.A, p.B)] = true
	}
	var q Quality
	seen := make(map[core.MatchPair]bool, len(predicted))
	for _, p := range predicted {
		cp := core.NewMatchPair(p.A, p.B)
		if seen[cp] {
			continue
		}
		seen[cp] = true
		if truthSet[cp] {
			q.TruePositives++
		} else {
			q.FalsePositives++
		}
	}
	q.FalseNegatives = len(truthSet) - q.TruePositives
	return q
}
