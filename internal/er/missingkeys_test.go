package er

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
)

// serialWithMissing is the reference: blocked pairs for keyed entities
// plus every pair involving at least one no-key entity.
func serialWithMissing(es []entity.Entity, attr string, key blocking.KeyFunc, match core.Matcher) ([]core.MatchPair, int64) {
	var keyed, noKey []entity.Entity
	for _, e := range es {
		if key(e.Attr(attr)) == "" {
			noKey = append(noKey, e)
		} else {
			keyed = append(keyed, e)
		}
	}
	var pairs []core.MatchPair
	var comparisons int64
	try := func(a, b entity.Entity) {
		comparisons++
		if match == nil {
			return
		}
		if _, ok := match(a, b); ok {
			pairs = append(pairs, core.NewMatchPair(a.ID, b.ID))
		}
	}
	blockPairs, blockComps := SerialMatch(keyed, attr, key, match)
	pairs = append(pairs, blockPairs...)
	comparisons += blockComps
	for _, a := range noKey {
		for _, b := range keyed {
			try(a, b)
		}
	}
	for i := range noKey {
		for j := i + 1; j < len(noKey); j++ {
			try(noKey[i], noKey[j])
		}
	}
	SortMatches(pairs)
	return pairs, comparisons
}

// prefixOrEmpty blocks on the first 2 letters; values starting with '?'
// have no valid key.
func prefixOrEmpty(v string) string {
	if len(v) == 0 || v[0] == '?' {
		return ""
	}
	return blocking.Prefix(2)(v)
}

func missingKeyDataset(rng *rand.Rand, n int) []entity.Entity {
	es := make([]entity.Entity, n)
	for i := range es {
		var title string
		if rng.Float64() < 0.2 {
			title = fmt.Sprintf("?unknown %d", rng.Intn(5))
		} else {
			title = fmt.Sprintf("t%d item %d", rng.Intn(4), rng.Intn(6))
		}
		es[i] = entity.New(fmt.Sprintf("e%03d", i), "title", title)
	}
	return es
}

func matchSameTail(a, b entity.Entity) (float64, bool) {
	ta, tb := a.Attr("title"), b.Attr("title")
	return 1, ta[len(ta)-1] == tb[len(tb)-1]
}

func TestRunWithMissingKeysAgainstSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		es := missingKeyDataset(rng, rng.Intn(60)+10)
		want, wantComps := serialWithMissing(es, "title", prefixOrEmpty, matchSameTail)
		for _, strat := range []core.Strategy{core.BlockSplit{}, core.PairRange{}} {
			res, err := RunWithMissingKeys(entity.SplitRoundRobin(es, rng.Intn(3)+1), Config{
				Strategy: strat,
				Attr:     "title",
				BlockKey: prefixOrEmpty,
				Matcher:  matchSameTail,
				R:        rng.Intn(6) + 1,
			})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, strat.Name(), err)
			}
			if res.Comparisons != wantComps {
				t.Errorf("trial %d %s: %d comparisons, want %d", trial, strat.Name(), res.Comparisons, wantComps)
			}
			if len(res.Matches) != len(want) || (len(want) > 0 && !reflect.DeepEqual(res.Matches, want)) {
				t.Errorf("trial %d %s: %d matches, want %d", trial, strat.Name(), len(res.Matches), len(want))
			}
		}
	}
}

func TestRunWithMissingKeysAllKeyed(t *testing.T) {
	es := []entity.Entity{
		entity.New("a", "title", "aa x"),
		entity.New("b", "title", "aa y"),
		entity.New("c", "title", "bb z"),
	}
	res, err := RunWithMissingKeys(entity.SplitRoundRobin(es, 2), Config{
		Strategy: core.BlockSplit{},
		Attr:     "title",
		BlockKey: prefixOrEmpty,
		Matcher:  func(entity.Entity, entity.Entity) (float64, bool) { return 1, true },
		R:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cross != nil || res.NoKey != nil {
		t.Error("no missing-key entities: cross/no-key parts should not run")
	}
	if res.Comparisons != 1 || len(res.Matches) != 1 {
		t.Errorf("comparisons=%d matches=%d, want 1/1", res.Comparisons, len(res.Matches))
	}
}

func TestRunWithMissingKeysAllMissing(t *testing.T) {
	es := []entity.Entity{
		entity.New("a", "title", "?x"),
		entity.New("b", "title", "?y"),
		entity.New("c", "title", "?z"),
	}
	res, err := RunWithMissingKeys(entity.SplitRoundRobin(es, 2), Config{
		Strategy: core.PairRange{},
		Attr:     "title",
		BlockKey: prefixOrEmpty,
		Matcher:  func(entity.Entity, entity.Entity) (float64, bool) { return 1, true },
		R:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Keyed != nil || res.Cross != nil {
		t.Error("all entities lack keys: only the no-key Cartesian part should run")
	}
	// Full Cartesian product of 3 entities.
	if res.Comparisons != 3 || len(res.Matches) != 3 {
		t.Errorf("comparisons=%d matches=%d, want 3/3", res.Comparisons, len(res.Matches))
	}
}

func TestRunWithMissingKeysSingleNoKeyEntity(t *testing.T) {
	// One no-key entity: cross part runs, no-key self part is skipped.
	es := []entity.Entity{
		entity.New("a", "title", "aa x"),
		entity.New("b", "title", "aa y"),
		entity.New("q", "title", "?"),
	}
	res, err := RunWithMissingKeys(entity.SplitRoundRobin(es, 1), Config{
		Strategy: core.BlockSplit{},
		Attr:     "title",
		BlockKey: prefixOrEmpty,
		Matcher:  func(entity.Entity, entity.Entity) (float64, bool) { return 1, true },
		R:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoKey != nil {
		t.Error("single no-key entity: self part should be skipped")
	}
	// 1 blocked pair + 2 cross pairs.
	if res.Comparisons != 3 || len(res.Matches) != 3 {
		t.Errorf("comparisons=%d matches=%d, want 3/3", res.Comparisons, len(res.Matches))
	}
}

func TestDualStrategyFor(t *testing.T) {
	if _, ok := dualStrategyFor(core.PairRange{}).(core.PairRangeDual); !ok {
		t.Error("PairRange should map to PairRangeDual")
	}
	if _, ok := dualStrategyFor(core.BlockSplit{}).(core.BlockSplitDual); !ok {
		t.Error("BlockSplit should map to BlockSplitDual")
	}
	if _, ok := dualStrategyFor(core.Basic{}).(core.BlockSplitDual); !ok {
		t.Error("Basic should fall back to BlockSplitDual")
	}
}
