package er

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
)

// MatchSink consumes a pipeline's emitted matches as a stream. When a
// sink is installed (RunOptions.Sink), the matching job's reduce phase
// hands every emitted pair to Consume instead of accumulating it in
// Result.Matches / MatchResult.Output, so peak memory is independent of
// the match count — the output half of the out-of-core story.
//
// Contract:
//   - Consume is never called concurrently (the engine serializes
//     streamed emissions), but the order across reduce tasks is the
//     tasks' completion interleaving — deterministic only at
//     Parallelism 1. Within one reduce task, emission order holds.
//   - The stream carries raw emissions: the usual dedup/sort pass of
//     the collecting path does not run. The in-tree strategies emit
//     each pair at most once; Canonical restores set semantics when
//     needed.
//   - Flush is called once after each (sub-)pipeline that streamed to
//     the sink completes successfully; composite workflows
//     (missing-keys, multi-pass SN) flush once per sub-run, so Flush
//     must be safe to call repeatedly. It is not called on error.
//   - A non-nil error from Consume or Flush fails the run.
type MatchSink interface {
	Consume(p core.MatchPair, similarity float64) error
	Flush() error
}

// SinkFunc adapts a plain consume function to the MatchSink interface
// (Flush is a no-op).
type SinkFunc func(p core.MatchPair, similarity float64) error

// Consume implements MatchSink.
func (f SinkFunc) Consume(p core.MatchPair, sim float64) error { return f(p, sim) }

// Flush implements MatchSink (no-op).
func (f SinkFunc) Flush() error { return nil }

// Collect accumulates every streamed match in arrival order, raw (no
// dedup, no sort) — the minimal sink, mostly useful in tests and as a
// building block.
type Collect struct {
	Pairs []core.MatchPair
	Sims  []float64
}

// Consume implements MatchSink.
func (c *Collect) Consume(p core.MatchPair, sim float64) error {
	c.Pairs = append(c.Pairs, p)
	c.Sims = append(c.Sims, sim)
	return nil
}

// Flush implements MatchSink (no-op).
func (c *Collect) Flush() error { return nil }

// Canonical deduplicates the streamed matches and, at Flush, sorts them
// into the canonical order — the streamed twin of the collecting path's
// CollectMatches. Memory is O(distinct matches), which is exactly what
// the legacy Result.Matches held.
type Canonical struct {
	seen    map[core.MatchPair]bool
	matches []core.MatchPair
}

// Consume implements MatchSink.
func (c *Canonical) Consume(p core.MatchPair, _ float64) error {
	if c.seen == nil {
		c.seen = make(map[core.MatchPair]bool)
	}
	if !c.seen[p] {
		c.seen[p] = true
		c.matches = append(c.matches, p)
	}
	return nil
}

// Flush implements MatchSink: it re-establishes the canonical sort
// (idempotent, so composite workflows may flush repeatedly).
func (c *Canonical) Flush() error {
	SortMatches(c.matches)
	return nil
}

// Matches returns the deduplicated matches. Canonically sorted after
// Flush — i.e., after the pipeline run that streamed into the sink.
func (c *Canonical) Matches() []core.MatchPair { return c.matches }

// CSVSink streams matches as CSV rows "a,b,similarity" with a header,
// writing through a buffered csv.Writer — constant memory in the match
// count.
type CSVSink struct {
	w          *csv.Writer
	n          atomic.Int64
	headerDone bool
}

// NewCSVSink returns a CSVSink writing to w. The header row is written
// lazily — by the first Consume, or by Flush for a zero-match run — so
// every successful run produces at least the header; only an erroring
// run can leave an empty file.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

func (s *CSVSink) header() error {
	if s.headerDone {
		return nil
	}
	s.headerDone = true
	return s.w.Write([]string{"a", "b", "similarity"})
}

// Consume implements MatchSink.
func (s *CSVSink) Consume(p core.MatchPair, sim float64) error {
	if err := s.header(); err != nil {
		return err
	}
	s.n.Add(1)
	return s.w.Write([]string{p.A, p.B, strconv.FormatFloat(sim, 'g', -1, 64)})
}

// Flush implements MatchSink.
func (s *CSVSink) Flush() error {
	if err := s.header(); err != nil {
		return err
	}
	s.w.Flush()
	return s.w.Error()
}

// Count returns the number of matches consumed so far.
func (s *CSVSink) Count() int64 { return s.n.Load() }

// NDJSONSink streams matches as newline-delimited JSON objects
// {"a":…,"b":…,"similarity":…} — constant memory in the match count.
type NDJSONSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   atomic.Int64
}

// NewNDJSONSink returns an NDJSONSink writing to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	bw := bufio.NewWriter(w)
	return &NDJSONSink{w: bw, enc: json.NewEncoder(bw)}
}

// Consume implements MatchSink.
func (s *NDJSONSink) Consume(p core.MatchPair, sim float64) error {
	s.n.Add(1)
	return s.enc.Encode(struct {
		A          string  `json:"a"`
		B          string  `json:"b"`
		Similarity float64 `json:"similarity"`
	}{p.A, p.B, sim})
}

// Flush implements MatchSink.
func (s *NDJSONSink) Flush() error { return s.w.Flush() }

// Count returns the number of matches consumed so far.
func (s *NDJSONSink) Count() int64 { return s.n.Load() }
