// Package multipass implements multi-pass blocking, the extension the
// paper names as future work ("we will extend our approaches to
// multi-pass blocking that assigns multiple blocks per entity").
//
// With multi-pass blocking an entity belongs to one block per pass
// (e.g., pass 1: title prefix, pass 2: manufacturer), raising recall:
// two duplicates are compared if they agree on *any* pass. The naive
// realization compares a pair once per shared block; this package uses
// the standard least-common-block-key rule to keep the match result
// duplicate-free and to skip the redundant expensive comparisons: a pair
// is evaluated only in the lexicographically smallest block key the two
// entities share.
//
// The mechanism composes with all of the paper's load-balancing
// strategies unchanged: each entity is replicated once per distinct
// blocking key before Job 1, so the BDM, BlockSplit, and PairRange see
// an ordinary (if larger) one-key-per-entity input.
package multipass

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
)

// Attribute names used on the expanded replicas. The separator is an
// ASCII unit separator, which cannot appear in sane blocking keys.
const (
	// AttrKey carries the replica's own blocking key.
	AttrKey = "__mp_key"
	// AttrAllKeys carries the entity's full sorted key set.
	AttrAllKeys = "__mp_keys"

	keySep = "\x1f"
)

// Pass derives one blocking key from one attribute.
type Pass struct {
	// Name identifies the pass in diagnostics.
	Name string
	// Attr is the entity attribute the key is derived from.
	Attr string
	// Key derives the blocking key; an empty result means the entity
	// has no key in this pass (and is simply not blocked by it).
	Key blocking.KeyFunc
}

// Keys returns the entity's distinct, sorted blocking keys over all
// passes. Empty keys are dropped.
func Keys(e entity.Entity, passes []Pass) []string {
	seen := make(map[string]bool, len(passes))
	keys := make([]string, 0, len(passes))
	for _, p := range passes {
		k := p.Key(e.Attr(p.Attr))
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Expand replicates every entity once per distinct blocking key. Each
// replica keeps the entity's ID and attributes and additionally carries
// AttrKey (its block for this replica) and AttrAllKeys (the full key
// set, needed by the least-common-key rule). Entities with no key in
// any pass are dropped — callers that must match them against everything
// should use er.RunWithMissingKeys-style decomposition instead.
func Expand(parts entity.Partitions, passes []Pass) entity.Partitions {
	out := make(entity.Partitions, len(parts))
	for pi, part := range parts {
		expanded := make(entity.Partition, 0, len(part))
		for _, e := range part {
			keys := Keys(e, passes)
			if len(keys) == 0 {
				continue
			}
			all := strings.Join(keys, keySep)
			for _, k := range keys {
				expanded = append(expanded, e.WithAttr(AttrKey, k).WithAttr(AttrAllKeys, all))
			}
		}
		out[pi] = expanded
	}
	return out
}

// LeastCommonKey returns the lexicographically smallest blocking key two
// replicas share, or "" when they share none. Both key sets are sorted,
// so a linear merge suffices.
func LeastCommonKey(allA, allB string) string {
	ka := strings.Split(allA, keySep)
	kb := strings.Split(allB, keySep)
	i, j := 0, 0
	for i < len(ka) && j < len(kb) {
		switch {
		case ka[i] == kb[j]:
			return ka[i]
		case ka[i] < kb[j]:
			i++
		default:
			j++
		}
	}
	return ""
}

// WrapMatcher applies the least-common-block-key rule around an inner
// matcher: within block k, a candidate pair is forwarded to the inner
// matcher only if k is the smallest key the two entities share. All
// other co-occurrences are redundant — they would re-evaluate (and
// re-emit) the same pair. The skipped candidates still count as
// redistribution work (they were shuffled and buffered), which is
// exactly the multi-pass overhead the paper's related work discusses.
func WrapMatcher(inner core.Matcher) core.Matcher {
	return func(a, b entity.Entity) (float64, bool) {
		block := a.Attr(AttrKey)
		if lck := LeastCommonKey(a.Attr(AttrAllKeys), b.Attr(AttrAllKeys)); lck != block {
			return 0, false
		}
		if inner == nil {
			return 0, false
		}
		return inner(a, b)
	}
}

// WrapPreparedMatcher is the prepare-once form of WrapMatcher: the
// replica's block key and key set are captured at preparation time
// (once per reduce group), so the least-common-key filter costs no
// attribute lookups on the per-pair path, and the inner matcher's
// prepared forms are reused across all of the replica's comparisons.
func WrapPreparedMatcher(inner core.PreparedMatcher) core.PreparedMatcher {
	return &lckPrepared{inner: inner}
}

type lckPrepared struct {
	inner core.PreparedMatcher
}

type lckPreparedEntity struct {
	block   string
	allKeys string
	inner   core.PreparedEntity
}

func (w *lckPrepared) Prepare(e entity.Entity) core.PreparedEntity {
	return lckPreparedEntity{
		block:   e.Attr(AttrKey),
		allKeys: e.Attr(AttrAllKeys),
		inner:   w.inner.Prepare(e),
	}
}

func (w *lckPrepared) MatchPrepared(a, b core.PreparedEntity) (float64, bool) {
	pa, pb := a.(lckPreparedEntity), b.(lckPreparedEntity)
	if lck := LeastCommonKey(pa.allKeys, pb.allKeys); lck != pa.block {
		return 0, false
	}
	return w.inner.MatchPrepared(pa.inner, pb.inner)
}

// ReleasePrepared implements core.PreparedReleaser by forwarding to the
// inner matcher's free list when it has one.
func (w *lckPrepared) ReleasePrepared(p core.PreparedEntity) {
	if rel, ok := w.inner.(core.PreparedReleaser); ok {
		rel.ReleasePrepared(p.(lckPreparedEntity).inner)
	}
}

// Config configures a multi-pass run.
type Config struct {
	Passes   []Pass
	Strategy core.Strategy
	Matcher  core.Matcher
	// PreparedMatcher, when non-nil, takes precedence over Matcher: the
	// pipeline runs the prepare-once kernel with the least-common-key
	// rule applied on prepared forms (WrapPreparedMatcher).
	PreparedMatcher core.PreparedMatcher
	R               int
	// Engine and UseCombiner are forwarded to the underlying pipeline.
	ErConfig er.Config
}

// Run executes the full load-balanced multi-pass workflow — the
// pre-context adapter over RunPipeline.
func Run(parts entity.Partitions, cfg Config) (*er.Result, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
}

// RunPipeline executes the full load-balanced multi-pass workflow over
// the source's partitions: expand the input (one replica per entity and
// key), run the two-job pipeline with the replica key as blocking key,
// and deduplicate matches via the least-common-key rule. The rule
// rejects every redundant co-occurrence before the matcher fires, so a
// streaming sink (ErConfig.Sink) sees each match exactly once.
func RunPipeline(ctx context.Context, src er.Source, cfg Config) (*er.Result, error) {
	if len(cfg.Passes) == 0 {
		return nil, fmt.Errorf("multipass: at least one pass is required")
	}
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("multipass: Config.Strategy is required")
	}
	parts, err := src.Partitions()
	if err != nil {
		return nil, err
	}
	expanded := Expand(parts, cfg.Passes)
	ec := cfg.ErConfig
	ec.Strategy = cfg.Strategy
	ec.Attr = AttrKey
	ec.BlockKey = blocking.Identity()
	if cfg.PreparedMatcher != nil {
		ec.Matcher = nil
		ec.PreparedMatcher = WrapPreparedMatcher(cfg.PreparedMatcher)
	} else {
		ec.Matcher = WrapMatcher(cfg.Matcher)
		ec.PreparedMatcher = nil
	}
	ec.R = cfg.R
	return er.RunPipeline(ctx, er.FromPartitions(expanded), ec)
}

// SerialMatch is the multi-pass reference implementation: for each pair
// of entities sharing at least one blocking key, evaluate the matcher
// exactly once. Returns the sorted match pairs and the number of
// distinct candidate pairs.
func SerialMatch(entities []entity.Entity, passes []Pass, match core.Matcher) ([]core.MatchPair, int64) {
	blocks := make(map[string][]int)
	keysOf := make([][]string, len(entities))
	for i, e := range entities {
		keysOf[i] = Keys(e, passes)
		for _, k := range keysOf[i] {
			blocks[k] = append(blocks[k], i)
		}
	}
	seen := make(map[[2]int]bool)
	var pairs []core.MatchPair
	var candidates int64
	for _, members := range blocks {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				i, j := members[a], members[b]
				if i > j {
					i, j = j, i
				}
				if seen[[2]int{i, j}] {
					continue
				}
				seen[[2]int{i, j}] = true
				candidates++
				if match == nil {
					continue
				}
				if _, ok := match(entities[i], entities[j]); ok {
					pairs = append(pairs, core.NewMatchPair(entities[i].ID, entities[j].ID))
				}
			}
		}
	}
	er.SortMatches(pairs)
	return pairs, candidates
}

// Overhead quantifies the redundant-candidate overhead of a multi-pass
// blocking on a dataset: the ratio of block-co-occurrences (what the
// reduce phase enumerates) to distinct candidate pairs (what actually
// needs comparing). 1.0 means no pair shares more than one block.
func Overhead(entities []entity.Entity, passes []Pass) float64 {
	blocks := make(map[string]int64)
	for _, e := range entities {
		for _, k := range Keys(e, passes) {
			blocks[k]++
		}
	}
	var coOccurrences int64
	for _, n := range blocks {
		coOccurrences += n * (n - 1) / 2
	}
	_, distinct := SerialMatch(entities, passes, nil)
	if distinct == 0 {
		return 1
	}
	return float64(coOccurrences) / float64(distinct)
}
