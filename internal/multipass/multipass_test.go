package multipass

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
)

// twoPass blocks on the prefix of two different attributes.
func twoPass() []Pass {
	return []Pass{
		{Name: "title", Attr: "title", Key: blocking.Prefix(3)},
		{Name: "brand", Attr: "brand", Key: blocking.Prefix(3)},
	}
}

func mkProd(id, title, brand string) entity.Entity {
	return entity.New(id, "title", title).WithAttr("brand", brand)
}

func sampleCatalog() []entity.Entity {
	return []entity.Entity{
		mkProd("p1", "alpha widget", "acme"),
		mkProd("p2", "alpha widget v2", "acme"),  // shares both blocks with p1
		mkProd("p3", "beta widget", "acme"),      // shares only brand with p1/p2
		mkProd("p4", "alpha gadget", "bolt"),     // shares only title with p1/p2
		mkProd("p5", "gamma thing", "corp"),      // shares nothing
		mkProd("p6", "beta widget max", "boltx"), // title with p3, brand with p4
	}
}

func TestKeys(t *testing.T) {
	keys := Keys(mkProd("x", "alpha", "acme"), twoPass())
	want := []string{"acm", "alp"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("Keys = %v, want %v", keys, want)
	}
	// Duplicate keys across passes collapse.
	dup := Keys(mkProd("x", "acme roadster", "acme"), twoPass())
	if !reflect.DeepEqual(dup, []string{"acm"}) {
		t.Errorf("duplicate keys = %v, want [acm]", dup)
	}
	// Empty keys are dropped.
	none := Keys(mkProd("x", "", ""), twoPass())
	if len(none) != 0 {
		t.Errorf("empty attrs gave keys %v", none)
	}
}

func TestExpandReplication(t *testing.T) {
	parts := entity.Partitions{{mkProd("p1", "alpha", "acme"), mkProd("p2", "acme x", "acme")}}
	out := Expand(parts, twoPass())
	// p1 has keys {alp, acm} → 2 replicas; p2 has {acm} only → 1.
	if len(out[0]) != 3 {
		t.Fatalf("expanded to %d replicas, want 3", len(out[0]))
	}
	for _, rep := range out[0] {
		if rep.Attr(AttrKey) == "" || rep.Attr(AttrAllKeys) == "" {
			t.Fatalf("replica missing multipass attrs: %v", rep)
		}
	}
}

func TestLeastCommonKey(t *testing.T) {
	tests := []struct {
		a, b []string
		want string
	}{
		{[]string{"acm", "alp"}, []string{"acm", "alp"}, "acm"},
		{[]string{"alp"}, []string{"acm", "alp"}, "alp"},
		{[]string{"aaa", "zzz"}, []string{"bbb", "zzz"}, "zzz"},
		{[]string{"aaa"}, []string{"bbb"}, ""},
	}
	for _, tc := range tests {
		a := joinKeys(tc.a)
		b := joinKeys(tc.b)
		if got := LeastCommonKey(a, b); got != tc.want {
			t.Errorf("LeastCommonKey(%v, %v) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
	}
}

func joinKeys(ks []string) string {
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += keySep
		}
		s += k
	}
	return s
}

func alwaysMatch(pairs *map[core.MatchPair]int, mu *sync.Mutex) core.Matcher {
	return func(a, b entity.Entity) (float64, bool) {
		mu.Lock()
		(*pairs)[core.NewMatchPair(a.ID, b.ID)]++
		mu.Unlock()
		return 1, true
	}
}

// TestRunMatchesSerialReference: the pipeline compares every pair that
// shares ≥1 block exactly once (inner-matcher invocations), for all
// three strategies.
func TestRunMatchesSerialReference(t *testing.T) {
	es := sampleCatalog()
	wantPairs, wantCandidates := SerialMatch(es, twoPass(), func(entity.Entity, entity.Entity) (float64, bool) { return 1, true })
	if wantCandidates == 0 {
		t.Fatal("sample catalog has no candidates")
	}
	for _, strat := range []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}} {
		var mu sync.Mutex
		got := make(map[core.MatchPair]int)
		res, err := Run(entity.SplitRoundRobin(es, 2), Config{
			Passes:   twoPass(),
			Strategy: strat,
			Matcher:  alwaysMatch(&got, &mu),
			R:        4,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if int64(len(got)) != wantCandidates {
			t.Errorf("%s: inner matcher saw %d distinct pairs, want %d", strat.Name(), len(got), wantCandidates)
		}
		for p, n := range got {
			if n != 1 {
				t.Errorf("%s: pair %v evaluated %d times, want once", strat.Name(), p, n)
			}
		}
		if len(res.Matches) != len(wantPairs) {
			t.Errorf("%s: %d matches, want %d", strat.Name(), len(res.Matches), len(wantPairs))
		}
		if len(wantPairs) > 0 && !reflect.DeepEqual(res.Matches, wantPairs) {
			t.Errorf("%s: matches = %v, want %v", strat.Name(), res.Matches, wantPairs)
		}
	}
}

// TestRunFuzz compares against the serial multi-pass reference on
// random catalogs.
func TestRunFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 12; trial++ {
		n := rng.Intn(80) + 5
		es := make([]entity.Entity, n)
		for i := range es {
			es[i] = mkProd(
				fmt.Sprintf("e%03d", i),
				fmt.Sprintf("ti%d tail", rng.Intn(6)),
				fmt.Sprintf("br%d", rng.Intn(5)),
			)
		}
		match := func(a, b entity.Entity) (float64, bool) {
			// Arbitrary but deterministic predicate.
			return 1, (len(a.Attr("title"))+len(b.Attr("title")))%3 == 0
		}
		want, _ := SerialMatch(es, twoPass(), match)
		for _, strat := range []core.Strategy{core.BlockSplit{}, core.PairRange{}} {
			res, err := Run(entity.SplitRoundRobin(es, rng.Intn(3)+1), Config{
				Passes:   twoPass(),
				Strategy: strat,
				Matcher:  match,
				R:        rng.Intn(6) + 1,
			})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, strat.Name(), err)
			}
			if len(res.Matches) != len(want) || (len(want) > 0 && !reflect.DeepEqual(res.Matches, want)) {
				t.Fatalf("trial %d %s: %d matches, want %d", trial, strat.Name(), len(res.Matches), len(want))
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	parts := entity.Partitions{{mkProd("p", "t", "b")}}
	if _, err := Run(parts, Config{Strategy: core.Basic{}, R: 2}); err == nil {
		t.Error("no passes: want error")
	}
	if _, err := Run(parts, Config{Passes: twoPass(), R: 2}); err == nil {
		t.Error("no strategy: want error")
	}
}

func TestOverhead(t *testing.T) {
	// p1/p2 share both blocks → 1 redundant co-occurrence.
	es := []entity.Entity{
		mkProd("p1", "alpha x", "acme"),
		mkProd("p2", "alpha y", "acme"),
	}
	if got := Overhead(es, twoPass()); got != 2.0 {
		t.Errorf("Overhead = %g, want 2.0 (pair shares 2 blocks)", got)
	}
	// Disjoint entities: no candidates → overhead defined as 1.
	es2 := []entity.Entity{mkProd("a", "x1", "y1"), mkProd("b", "x2", "y2")}
	if got := Overhead(es2, twoPass()); got != 1.0 {
		t.Errorf("empty Overhead = %g, want 1", got)
	}
}

// TestWrapMatcherSkipsRedundant: within the non-minimal shared block the
// wrapped matcher refuses without invoking the inner matcher.
func TestWrapMatcherSkipsRedundant(t *testing.T) {
	inner := 0
	wrapped := WrapMatcher(func(entity.Entity, entity.Entity) (float64, bool) {
		inner++
		return 1, true
	})
	a := mkProd("a", "alpha", "acme").WithAttr(AttrAllKeys, joinKeys([]string{"acm", "alp"}))
	b := mkProd("b", "alpha", "acme").WithAttr(AttrAllKeys, joinKeys([]string{"acm", "alp"}))
	if _, ok := wrapped(a.WithAttr(AttrKey, "alp"), b.WithAttr(AttrKey, "alp")); ok {
		t.Error("non-minimal block should be skipped")
	}
	if inner != 0 {
		t.Error("inner matcher invoked on redundant candidate")
	}
	if _, ok := wrapped(a.WithAttr(AttrKey, "acm"), b.WithAttr(AttrKey, "acm")); !ok {
		t.Error("minimal block should be evaluated")
	}
	if inner != 1 {
		t.Errorf("inner invoked %d times, want 1", inner)
	}
}
