package multipass

// Pipeline-API tests for multi-pass blocking: the legacy Run adapter
// must match RunPipeline byte for byte, and — because the
// least-common-key rule fires before the matcher — a streaming sink
// sees each match exactly once despite the replication.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
)

func pipelineFixture() (entity.Partitions, Config) {
	var es []entity.Entity
	for i := 0; i < 40; i++ {
		es = append(es, entity.New(fmt.Sprintf("p%02d", i),
			"title", fmt.Sprintf("widget model %d rev %d", i%4, i%3)))
	}
	cfg := Config{
		Passes: []Pass{
			{Name: "prefix", Attr: "title", Key: blocking.Prefix(9)},
			{Name: "suffix", Attr: "title", Key: blocking.Suffix(5)},
		},
		Strategy: core.BlockSplit{},
		Matcher: func(a, b entity.Entity) (float64, bool) {
			return 1, a.Attr("title") == b.Attr("title")
		},
		R: 4,
	}
	return entity.SplitRoundRobin(es, 3), cfg
}

func TestMultipassAdapterMatchesPipeline(t *testing.T) {
	parts, cfg := pipelineFixture()
	legacy, err := Run(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Matches) == 0 {
		t.Fatal("fixture produced no matches")
	}
	pipeline, err := RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, pipeline) {
		t.Fatal("legacy multipass adapter result differs from pipeline")
	}
}

func TestMultipassSinkSeesEachMatchOnce(t *testing.T) {
	parts, cfg := pipelineFixture()
	collected, err := Run(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	canon := &er.Canonical{}
	var raw int
	cfg.ErConfig.Sink = er.SinkFunc(func(p core.MatchPair, sim float64) error {
		raw++
		return canon.Consume(p, sim)
	})
	streamed, err := RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := canon.Flush(); err != nil {
		t.Fatal(err)
	}
	if streamed.Matches != nil || len(streamed.MatchResult.Output) != 0 {
		t.Fatal("matches accumulated despite sink")
	}
	if !reflect.DeepEqual(canon.Matches(), collected.Matches) {
		t.Fatal("streamed matches differ from collected matches")
	}
	if raw != len(collected.Matches) {
		t.Fatalf("raw stream carried %d pairs, want %d (least-common-key rule suppresses duplicates)", raw, len(collected.Matches))
	}
}
