package entity

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mk(id, title string) Entity { return New(id, "title", title) }

func TestEntityBasics(t *testing.T) {
	e := mk("e1", "hello")
	if e.Attr("title") != "hello" {
		t.Error("Attr wrong")
	}
	if e.Attr("missing") != "" {
		t.Error("missing attr should be empty")
	}
	e2 := e.WithAttr("brand", "acme")
	if e2.Attr("brand") != "acme" || e.Attr("brand") != "" {
		t.Error("WithAttr must copy, not mutate")
	}
	if got := e2.String(); got != "e1{brand=acme, title=hello}" {
		t.Errorf("String() = %q", got)
	}
}

func TestSplitRoundRobin(t *testing.T) {
	es := []Entity{mk("a", ""), mk("b", ""), mk("c", ""), mk("d", ""), mk("e", "")}
	ps := SplitRoundRobin(es, 2)
	if len(ps) != 2 || len(ps[0]) != 3 || len(ps[1]) != 2 {
		t.Fatalf("shape = %d/%d", len(ps[0]), len(ps[1]))
	}
	if ps[0][0].ID != "a" || ps[1][0].ID != "b" || ps[0][1].ID != "c" {
		t.Error("round-robin order wrong")
	}
	if ps.Total() != 5 {
		t.Errorf("Total = %d", ps.Total())
	}
}

func TestSplitContiguous(t *testing.T) {
	es := []Entity{mk("a", ""), mk("b", ""), mk("c", ""), mk("d", ""), mk("e", "")}
	ps := SplitContiguous(es, 2)
	if len(ps[0]) != 2 || len(ps[1]) != 3 {
		t.Fatalf("shape = %d/%d", len(ps[0]), len(ps[1]))
	}
	if ps[0][0].ID != "a" || ps[1][0].ID != "c" {
		t.Error("contiguous split order wrong")
	}
}

// TestSplitsPreserveEverything: both splitters produce a permutation of
// the input covering every entity exactly once, for any m.
func TestSplitsPreserveEverything(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw % 50)
		m := int(mRaw%10) + 1
		es := make([]Entity, n)
		for i := range es {
			es[i] = mk(fmt.Sprintf("e%d", i), "")
		}
		for _, ps := range []Partitions{SplitRoundRobin(es, m), SplitContiguous(es, m)} {
			if len(ps) != m || ps.Total() != n {
				return false
			}
			seen := make(map[string]bool)
			for _, p := range ps {
				for _, e := range p {
					if seen[e.ID] {
						return false
					}
					seen[e.ID] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitPanicsOnBadM(t *testing.T) {
	for name, fn := range map[string]func(){
		"SplitRoundRobin": func() { SplitRoundRobin(nil, 0) },
		"SplitContiguous": func() { SplitContiguous(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(m=0) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlatten(t *testing.T) {
	ps := Partitions{{mk("a", "")}, {mk("b", ""), mk("c", "")}}
	flat := ps.Flatten()
	if len(flat) != 3 || flat[0].ID != "a" || flat[2].ID != "c" {
		t.Errorf("Flatten = %v", flat)
	}
}

func TestSortByAttr(t *testing.T) {
	es := []Entity{mk("1", "zebra"), mk("2", "apple"), mk("3", "apple")}
	sorted := SortByAttr(es, "title")
	if sorted[0].Attr("title") != "apple" || sorted[2].Attr("title") != "zebra" {
		t.Error("not sorted by attr")
	}
	if sorted[0].ID != "2" || sorted[1].ID != "3" {
		t.Error("ties not broken by ID")
	}
	if es[0].Attr("title") != "zebra" {
		t.Error("SortByAttr mutated its input")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	es := []Entity{
		New("e1", "title", "hello, world"),
		New("e2", "title", "line\nbreak").WithAttr("brand", "acme"),
		New("e3", "title", `with "quotes"`),
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es, []string{"title", "brand"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entities", len(got))
	}
	for i := range es {
		if got[i].ID != es[i].ID || got[i].Attr("title") != es[i].Attr("title") {
			t.Errorf("entity %d: %v != %v", i, got[i], es[i])
		}
	}
	if got[1].Attr("brand") != "acme" {
		t.Error("brand attr lost")
	}
	// e1 has no brand: reads back as empty, which Attr treats uniformly.
	if got[0].Attr("brand") != "" {
		t.Error("absent attr should read back empty")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadCSV(strings.NewReader("name,title\nx,y\n")); err == nil {
		t.Error("header without id: want error")
	}
}

func TestPartitionsEqualAfterCSV(t *testing.T) {
	// Splitting before or after a CSV round trip is equivalent.
	es := make([]Entity, 17)
	for i := range es {
		es[i] = mk(fmt.Sprintf("e%02d", i), fmt.Sprintf("title %d", i))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es, []string{"title"}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(SplitRoundRobin(es, 4), SplitRoundRobin(back, 4)) {
		t.Error("partitions differ after CSV round trip")
	}
}
