package entity

import (
	"fmt"

	"repro/internal/runio"
)

// Codec is the runio codec for Entity, the dominant shuffle value type
// of every matching job: the external dataflow serializes spilled
// entities with it. Layout: id ‖ attribute count ‖ (name ‖ value)*,
// all strings length-prefixed, so IDs and attributes containing tabs,
// newlines, or invalid UTF-8 survive the disk round trip byte-exactly.
// Attribute order on disk follows map iteration order — the decoded
// map is equal regardless.
type Codec struct{}

// Append implements runio.Codec.
func (Codec) Append(dst []byte, e Entity) []byte {
	dst = runio.AppendString(dst, e.ID)
	dst = runio.AppendUvarint(dst, uint64(len(e.Attrs)))
	for k, v := range e.Attrs {
		dst = runio.AppendString(dst, k)
		dst = runio.AppendString(dst, v)
	}
	return dst
}

// Decode implements runio.Codec. Zero attributes decode to a nil map,
// matching the zero Entity.
func (Codec) Decode(src []byte) (Entity, int, error) {
	var e Entity
	id, n, err := runio.String(src)
	if err != nil {
		return e, 0, fmt.Errorf("entity id: %w", err)
	}
	e.ID = id
	count, cn, err := runio.Uvarint(src[n:])
	if err != nil {
		return e, 0, fmt.Errorf("entity attr count: %w", err)
	}
	n += cn
	if count > uint64(len(src)-n) {
		// Each attribute needs at least two bytes; a larger claimed
		// count is corrupt, and bounding it here keeps the map
		// allocation proportional to real data.
		return e, 0, fmt.Errorf("%w: entity attr count %d exceeds remaining bytes", runio.ErrCorrupt, count)
	}
	if count > 0 {
		e.Attrs = make(map[string]string, count)
		for i := uint64(0); i < count; i++ {
			k, kn, err := runio.String(src[n:])
			if err != nil {
				return e, 0, fmt.Errorf("entity attr name: %w", err)
			}
			n += kn
			v, vn, err := runio.String(src[n:])
			if err != nil {
				return e, 0, fmt.Errorf("entity attr value: %w", err)
			}
			n += vn
			e.Attrs[k] = v
		}
	}
	return e, n, nil
}

func init() {
	runio.Register[Entity](Codec{})
}
