package entity

import (
	"fmt"

	"repro/internal/runio"
)

// Codec is the runio codec for Entity, the dominant shuffle value type
// of every matching job: the external dataflow serializes spilled
// entities with it. Layout: id ‖ attribute count ‖ (name ‖ value)*,
// all strings length-prefixed, so IDs and attributes containing tabs,
// newlines, or invalid UTF-8 survive the disk round trip byte-exactly.
// Attribute order on disk follows the entity's sorted slice order, so
// the encoding is deterministic; decoding re-establishes the sorted
// invariant even for foreign byte streams.
type Codec struct{}

// Append implements runio.Codec.
func (Codec) Append(dst []byte, e Entity) []byte {
	dst = runio.AppendString(dst, e.ID)
	dst = runio.AppendUvarint(dst, uint64(len(e.Attrs)))
	for _, a := range e.Attrs {
		dst = runio.AppendString(dst, a.Name)
		dst = runio.AppendString(dst, a.Value)
	}
	return dst
}

// Decode implements runio.Codec. Zero attributes decode to nil Attrs,
// matching the zero Entity.
func (Codec) Decode(src []byte) (Entity, int, error) {
	var e Entity
	id, n, err := runio.String(src)
	if err != nil {
		return e, 0, fmt.Errorf("entity id: %w", err)
	}
	e.ID = id
	count, cn, err := runio.Uvarint(src[n:])
	if err != nil {
		return e, 0, fmt.Errorf("entity attr count: %w", err)
	}
	n += cn
	if count > uint64(len(src)-n) {
		// Each attribute needs at least two bytes; a larger claimed
		// count is corrupt, and bounding it here keeps the slice
		// allocation proportional to real data.
		return e, 0, fmt.Errorf("%w: entity attr count %d exceeds remaining bytes", runio.ErrCorrupt, count)
	}
	if count > 0 {
		e.Attrs = make([]Attr, 0, count)
		for i := uint64(0); i < count; i++ {
			k, kn, err := runio.String(src[n:])
			if err != nil {
				return e, 0, fmt.Errorf("entity attr name: %w", err)
			}
			n += kn
			v, vn, err := runio.String(src[n:])
			if err != nil {
				return e, 0, fmt.Errorf("entity attr value: %w", err)
			}
			n += vn
			e.setAttr(k, v)
		}
	}
	return e, n, nil
}

// attrChunkLen is the Attr-arena chunk size of the shared decoder: big
// enough to amortize the chunk allocation over ~100 entities, small
// enough that one retained entity pins only a few KB of neighbors.
const attrChunkLen = 256

// NewSharedDecoder implements runio.SharedDecoder. Decoded IDs,
// attribute names, and attribute values all alias src; the Attrs slices
// are carved from a chunked arena, so the steady-state cost of decoding
// an entity is zero allocations.
func (Codec) NewSharedDecoder() func(string) (Entity, int, error) {
	var arena []Attr
	return func(src string) (Entity, int, error) {
		var e Entity
		id, n, err := runio.SharedString(src)
		if err != nil {
			return e, 0, fmt.Errorf("entity id: %w", err)
		}
		e.ID = id
		count, cn, err := runio.UvarintString(src[n:])
		if err != nil {
			return e, 0, fmt.Errorf("entity attr count: %w", err)
		}
		n += cn
		if count > uint64(len(src)-n) {
			return e, 0, fmt.Errorf("%w: entity attr count %d exceeds remaining bytes", runio.ErrCorrupt, count)
		}
		if count > 0 {
			need := int(count)
			if cap(arena)-len(arena) < need {
				size := attrChunkLen
				if need > size {
					size = need
				}
				arena = make([]Attr, 0, size)
			}
			start := len(arena)
			// Carve a capacity-capped sub-slice so setAttr's appends stay
			// inside the carved region and can never grow into a later
			// record's carve.
			e.Attrs = arena[start : start : start+need]
			for i := uint64(0); i < count; i++ {
				k, kn, err := runio.SharedString(src[n:])
				if err != nil {
					return Entity{}, 0, fmt.Errorf("entity attr name: %w", err)
				}
				n += kn
				v, vn, err := runio.SharedString(src[n:])
				if err != nil {
					return Entity{}, 0, fmt.Errorf("entity attr value: %w", err)
				}
				n += vn
				e.setAttr(k, v)
			}
			// Duplicate names shrink the result below the carve; reclaim
			// the spare slots for the next record and clamp the entity's
			// capacity so nothing can reach past its own attributes.
			arena = arena[:start+len(e.Attrs)]
			e.Attrs = e.Attrs[:len(e.Attrs):len(e.Attrs)]
		}
		return e, n, nil
	}
}

func init() {
	runio.Register[Entity](Codec{})
}
