// Package entity defines the data model for entity resolution: entities,
// partitions of entities, and helpers to split a dataset into the m input
// partitions consumed by the MapReduce jobs.
//
// An Entity is a flat record with a stable identifier and a set of named
// string attributes. The blocking key is not stored on the entity; it is
// derived by a blocking.KeyFunc so that the same dataset can be blocked in
// different ways (as the paper does in its skew-robustness experiment).
package entity

import (
	"fmt"
	"slices"
	"strings"
)

// Attr is one named attribute of an entity.
type Attr struct {
	Name  string
	Value string
}

// Entity is a single record to be resolved. ID must be unique within a
// source. Attrs holds the record's payload (e.g., a product title) as a
// slice sorted by attribute name with unique names — an invariant every
// constructor in this package maintains. The slice representation makes
// an entity one allocation instead of a map plus per-bucket overhead,
// which is what lets the external dataflow decode spilled entities out
// of reused arenas (see codec.go); two entities with the same
// attributes are reflect.DeepEqual regardless of how they were built.
type Entity struct {
	ID    string
	Attrs []Attr
}

// New returns an entity with the given id and a single attribute.
func New(id, attr, value string) Entity {
	return Entity{ID: id, Attrs: []Attr{{Name: attr, Value: value}}}
}

// Attr returns the named attribute or "" when absent. Entities hold a
// handful of attributes, so a linear scan of the sorted slice beats a
// binary search (and either beats the old map lookup).
func (e Entity) Attr(name string) string {
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			return e.Attrs[i].Value
		}
	}
	return ""
}

// setAttr sets or replaces the named attribute in place, keeping Attrs
// sorted by name with unique names. Appending already-sorted input (the
// common decode path) hits the fast append at the end.
func (e *Entity) setAttr(name, value string) {
	attrs := e.Attrs
	i := len(attrs)
	for i > 0 && attrs[i-1].Name > name {
		i--
	}
	if i > 0 && attrs[i-1].Name == name {
		attrs[i-1].Value = value
		return
	}
	attrs = append(attrs, Attr{})
	copy(attrs[i+1:], attrs[i:])
	attrs[i] = Attr{Name: name, Value: value}
	e.Attrs = attrs
}

// WithAttr returns a copy of e with the named attribute set. The
// original entity is not modified; the attribute slice is copied.
func (e Entity) WithAttr(name, value string) Entity {
	attrs := make([]Attr, len(e.Attrs), len(e.Attrs)+1)
	copy(attrs, e.Attrs)
	out := Entity{ID: e.ID, Attrs: attrs}
	out.setAttr(name, value)
	return out
}

// String renders the entity as "id{k=v, ...}" with attributes sorted by
// name (the slice order), for deterministic logs and test output.
func (e Entity) String() string {
	var b strings.Builder
	b.WriteString(e.ID)
	b.WriteByte('{')
	for i, a := range e.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", a.Name, a.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Partition is one input partition (split) of a dataset. The MR engine
// runs one map task per partition, mirroring the paper's setup where the
// number of map tasks m equals the number of input partitions.
type Partition []Entity

// Partitions is the full partitioned input of one source.
type Partitions []Partition

// Total returns the total number of entities across all partitions.
func (ps Partitions) Total() int {
	n := 0
	for _, p := range ps {
		n += len(p)
	}
	return n
}

// Flatten concatenates all partitions in order into a single slice.
func (ps Partitions) Flatten() []Entity {
	out := make([]Entity, 0, ps.Total())
	for _, p := range ps {
		out = append(out, p...)
	}
	return out
}

// SplitRoundRobin distributes entities over m partitions in round-robin
// order. This models an "arbitrary" (blocking-key independent) input
// order, the favorable case for BlockSplit.
func SplitRoundRobin(entities []Entity, m int) Partitions {
	if m <= 0 {
		panic("entity: SplitRoundRobin requires m > 0")
	}
	ps := make(Partitions, m)
	per := (len(entities) + m - 1) / m
	for i := range ps {
		ps[i] = make(Partition, 0, per)
	}
	for i, e := range entities {
		ps[i%m] = append(ps[i%m], e)
	}
	return ps
}

// SplitContiguous cuts the entity slice into m contiguous chunks of
// near-equal size, preserving order. Applied to a dataset sorted by the
// blocking attribute this reproduces the paper's "sorted" experiment
// (Figure 11), where large blocks land in few partitions and BlockSplit's
// ability to split them degrades.
func SplitContiguous(entities []Entity, m int) Partitions {
	if m <= 0 {
		panic("entity: SplitContiguous requires m > 0")
	}
	ps := make(Partitions, m)
	n := len(entities)
	for i := 0; i < m; i++ {
		lo := i * n / m
		hi := (i + 1) * n / m
		ps[i] = append(Partition(nil), entities[lo:hi]...)
	}
	return ps
}

// SortByAttr returns a copy of entities sorted by the given attribute
// (ties broken by ID), used to build the "sorted by title" input of the
// Figure 11 experiment.
func SortByAttr(entities []Entity, attr string) []Entity {
	out := append([]Entity(nil), entities...)
	slices.SortStableFunc(out, func(x, y Entity) int {
		if c := strings.Compare(x.Attr(attr), y.Attr(attr)); c != 0 {
			return c
		}
		return strings.Compare(x.ID, y.ID)
	})
	return out
}
