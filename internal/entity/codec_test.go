package entity

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/runio"
)

func TestEntityCodecRegistered(t *testing.T) {
	if _, ok := runio.Lookup[Entity](); !ok {
		t.Fatal("entity.Codec not registered with runio")
	}
}

// FuzzEntityCodec round-trips entities whose ID and attributes carry
// arbitrary bytes — tabs, newlines, invalid UTF-8 — through the disk
// codec.
func FuzzEntityCodec(f *testing.F) {
	f.Add("p1", "title", "canon eos 5d", "price", "1299")
	f.Add("tab\tid", "attr\nname", "value\twith\ttabs", "", "")
	f.Add(string([]byte{0xff, 0x00}), string([]byte{0xc0, 0x80}), "x", "y", "z")
	f.Fuzz(func(t *testing.T, id, k1, v1, k2, v2 string) {
		e := Entity{ID: id}
		if k1 != "" || v1 != "" || k2 != "" || v2 != "" {
			e.setAttr(k1, v1)
			e.setAttr(k2, v2)
		}
		var c Codec
		enc := c.Append(nil, e)
		got, n, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip: got %+v, want %+v", got, e)
		}
	})
}

// FuzzEntityDecodeArbitrary feeds the decoder arbitrary bytes: it must
// error or succeed, never panic or allocate unboundedly.
func FuzzEntityDecodeArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add((Codec{}).Append(nil, New("id", "a", "b")))
	f.Add(runio.AppendUvarint(runio.AppendString(nil, "id"), 1<<40))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := (Codec{}).Decode(data)
		if err == nil {
			if n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			// A successful decode must re-encode to an equal value.
			enc := (Codec{}).Append(nil, e)
			got, _, err := (Codec{}).Decode(enc)
			if err != nil || !reflect.DeepEqual(got, e) {
				t.Fatalf("re-encode round trip failed: %v", err)
			}
		}
	})
}

func TestScanCSVStreams(t *testing.T) {
	const csv = "id,title,price\np1,canon eos,100\np2,nikon d850,200\np3,sony alpha,300\n"
	var ids []string
	err := ScanCSV(strings.NewReader(csv), func(e Entity) error {
		ids = append(ids, e.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"p1", "p2", "p3"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}

	// ReadCSV is a thin wrapper: identical records.
	all, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[1].Attr("title") != "nikon d850" {
		t.Fatalf("ReadCSV = %v", all)
	}
}

func TestScanCSVCallbackErrorStops(t *testing.T) {
	const csv = "id,title\np1,a\np2,b\np3,c\n"
	calls := 0
	sentinel := errStop{}
	err := ScanCSV(strings.NewReader(csv), func(e Entity) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || calls != 2 {
		t.Fatalf("err = %v after %d calls, want sentinel after 2", err, calls)
	}
}

type errStop struct{}

func (errStop) Error() string { return "stop" }

func TestReadPartitionsCSV(t *testing.T) {
	const csv = "id,title\np0,a\np1,b\np2,c\np3,d\np4,e\n"
	ps, err := ReadPartitionsCSV(strings.NewReader(csv), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Must match SplitRoundRobin over the same rows exactly.
	all, _ := ReadCSV(strings.NewReader(csv))
	want := SplitRoundRobin(all, 2)
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("ReadPartitionsCSV = %v, want %v", ps, want)
	}
	if _, err := ReadPartitionsCSV(strings.NewReader(csv), 0); err == nil {
		t.Fatal("m=0 accepted")
	}
}
