package entity

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV writes entities as CSV with a header row. The first column is
// always "id"; the remaining columns are the given attribute names in
// order. Missing attributes are written as empty strings.
func WriteCSV(w io.Writer, entities []Entity, attrs []string) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, attrs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("entity: write csv header: %w", err)
	}
	row := make([]string, len(header))
	for _, e := range entities {
		row[0] = e.ID
		for i, a := range attrs {
			row[i+1] = e.Attr(a)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("entity: write csv row for %s: %w", e.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ScanCSV streams entities from CSV produced by WriteCSV (or any CSV
// whose first column is an id and whose header names the attribute
// columns), invoking fn once per row in input order. Only one row is
// materialized at a time, so callers can partition or filter arbitrarily
// large datasets without holding the full entity slice; a non-nil error
// from fn stops the scan and is returned unwrapped.
func ScanCSV(r io.Reader, fn func(Entity) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("entity: read csv header: %w", err)
	}
	if len(header) == 0 || header[0] != "id" {
		return fmt.Errorf("entity: csv header must start with %q, got %v", "id", header)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("entity: read csv row: %w", err)
		}
		if len(rec) == 0 {
			continue
		}
		e := Entity{ID: rec[0], Attrs: make([]Attr, 0, len(header)-1)}
		for i := 1; i < len(rec) && i < len(header); i++ {
			e.setAttr(header[i], rec[i])
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// ReadCSV reads all entities into a slice — a thin wrapper over
// ScanCSV for callers that need the full dataset in memory.
func ReadCSV(r io.Reader) ([]Entity, error) {
	var out []Entity
	err := ScanCSV(r, func(e Entity) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPartitionsCSV streams a CSV dataset directly into m round-robin
// partitions (the SplitRoundRobin layout) without materializing the
// intermediate full entity slice — the input path of the out-of-core
// pipeline, where the partitions feed map tasks that spill to disk.
func ReadPartitionsCSV(r io.Reader, m int) (Partitions, error) {
	if m <= 0 {
		return nil, fmt.Errorf("entity: ReadPartitionsCSV requires m > 0, got %d", m)
	}
	ps := make(Partitions, m)
	i := 0
	err := ScanCSV(r, func(e Entity) error {
		ps[i%m] = append(ps[i%m], e)
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}
