package entity

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV writes entities as CSV with a header row. The first column is
// always "id"; the remaining columns are the given attribute names in
// order. Missing attributes are written as empty strings.
func WriteCSV(w io.Writer, entities []Entity, attrs []string) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, attrs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("entity: write csv header: %w", err)
	}
	row := make([]string, len(header))
	for _, e := range entities {
		row[0] = e.ID
		for i, a := range attrs {
			row[i+1] = e.Attr(a)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("entity: write csv row for %s: %w", e.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads entities from CSV produced by WriteCSV (or any CSV whose
// first column is an id and whose header names the attribute columns).
func ReadCSV(r io.Reader) ([]Entity, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("entity: read csv header: %w", err)
	}
	if len(header) == 0 || header[0] != "id" {
		return nil, fmt.Errorf("entity: csv header must start with %q, got %v", "id", header)
	}
	var out []Entity
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("entity: read csv row: %w", err)
		}
		if len(rec) == 0 {
			continue
		}
		e := Entity{ID: rec[0], Attrs: make(map[string]string, len(header)-1)}
		for i := 1; i < len(rec) && i < len(header); i++ {
			e.Attrs[header[i]] = rec[i]
		}
		out = append(out, e)
	}
	return out, nil
}
