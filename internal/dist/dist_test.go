package dist

// Control-plane unit tests: lease expiry through the heartbeat monitor
// (a silent worker is declared dead and leaves the pool), ErrNoWorkers
// from an empty pool, and worker registration/await plumbing. The
// end-to-end dispatch paths are covered by the er-level distributed
// differential suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/testleak"
)

func testMaster(t *testing.T) *Master {
	t.Helper()
	m := NewMaster(MasterOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTTL:          100 * time.Millisecond,
		Log:               obs.LogfLogger(slog.LevelDebug, t.Logf),
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// registerRaw registers a (possibly fictitious) worker URL directly
// over the wire, standing in for a worker that dies right after
// registering.
func registerRaw(t *testing.T, m *Master, workerURL string) RegisterResponse {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{URL: workerURL, Slots: 1})
	resp, err := http.Post(m.URL()+pathRegister, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: http %s", resp.Status)
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestMasterExpiresSilentWorker(t *testing.T) {
	before := testleak.Snapshot()
	m := testMaster(t)
	// A dead-on-arrival worker: registered, never heartbeats.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()
	reg := registerRaw(t, m, deadURL)
	if reg.WorkerID == 0 || reg.HeartbeatMillis <= 0 || reg.LeaseTTLMillis <= reg.HeartbeatMillis {
		t.Fatalf("register response %+v: want nonzero id and lease > heartbeat", reg)
	}
	if n := m.Workers(); n != 1 {
		t.Fatalf("Workers() = %d after register, want 1", n)
	}
	// The monitor must revoke the lease within a few TTLs.
	deadline := time.Now().Add(2 * time.Second)
	for m.Workers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker still leased after 2s (TTL 100ms)")
		}
		time.Sleep(10 * time.Millisecond)
	}
	m.Close()
	testleak.Check(t, before)
}

func TestSessionEmptyPoolReturnsErrNoWorkers(t *testing.T) {
	m := testMaster(t)
	s := m.Session("er/test-none", []byte(`{}`))
	defer s.Close()
	_, err := s.RunMapAttempt(context.Background(), 2, 0, 1, nil, 0, t.TempDir()+"/m0.run")
	if !errors.Is(err, mapreduce.ErrNoWorkers) {
		t.Fatalf("map dispatch on empty pool: err = %v, want ErrNoWorkers", err)
	}
	_, err = s.RunReduceAttempt(context.Background(), 2, 0, 1, nil)
	if !errors.Is(err, mapreduce.ErrNoWorkers) {
		t.Fatalf("reduce dispatch on empty pool: err = %v, want ErrNoWorkers", err)
	}
}

func TestAwaitWorkersTimesOutAndSatisfies(t *testing.T) {
	m := testMaster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.AwaitWorkers(ctx, 1); err == nil {
		t.Fatal("AwaitWorkers returned without any worker")
	}
	registerRaw(t, m, "http://127.0.0.1:1") // liveness comes from heartbeats, not dial
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := m.AwaitWorkers(ctx2, 1); err != nil {
		t.Fatalf("AwaitWorkers after register: %v", err)
	}
}

func TestHeartbeatUnknownWorkerRejected(t *testing.T) {
	m := testMaster(t)
	body, _ := json.Marshal(HeartbeatRequest{WorkerID: 999})
	resp, err := http.Post(m.URL()+pathHeartbeat, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hb HeartbeatResponse
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.OK {
		t.Fatal("heartbeat for an unknown worker id reported OK (worker would never re-register)")
	}
}

func TestJobRefIDStableAndSpecSensitive(t *testing.T) {
	a := NewJobRef("er/match", []byte(`{"r":4}`))
	b := NewJobRef("er/match", []byte(`{"r":4}`))
	c := NewJobRef("er/match", []byte(`{"r":8}`))
	d := NewJobRef("er/bdm", []byte(`{"r":4}`))
	if a.ID != b.ID {
		t.Fatal("identical name+spec produced different job IDs")
	}
	if a.ID == c.ID || a.ID == d.ID {
		t.Fatal("different spec or name collided on job ID")
	}
}
