// Package dist is the distributed master/worker control plane: an
// HTTP/JSON protocol that dispatches the engine's task attempts to
// worker processes and ships map output between them as ERN1 runs.
//
// Layering: internal/mapreduce defines the process-agnostic seam
// (RemoteDispatcher on the master side, RemoteRunnable on the worker
// side); this package supplies the network between the two — worker
// registration, heartbeats with lease renewal, task dispatch,
// replica-backed run serving, and dead-worker detection. The executable
// entry points are Master (embedded by driver processes; see
// er.RunDistributedPipeline) and Worker (cmd/erworker).
//
// Wire conventions: every record payload ([]byte fields) is a
// mapreduce record blob (EncodeRecords), which JSON transports as
// base64 — an exact byte round-trip, so float64 values travel as codec
// bytes, never as JSON numbers. Errors cross the wire as ErrorResponse
// with the engine's two orthogonal classifications preserved: Fatal
// (don't retry) and Corrupt (structural ERN1/blob damage,
// runio.ErrCorrupt).
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/runio"
)

// Protocol endpoints. Master serves /register, /heartbeat, /replica/;
// workers serve /task, /run/, /release.
const (
	pathRegister  = "/register"
	pathHeartbeat = "/heartbeat"
	pathReplica   = "/replica/"
	pathTask      = "/task"
	pathRun       = "/run/"
	pathRelease   = "/release"
	// Introspection endpoints (master and workers both serve them;
	// obs.Attach mounts /debug/vars and the opt-in pprof handlers).
	pathStatus = "/status"
)

// RegisterRequest announces a worker to the master.
type RegisterRequest struct {
	// URL is the worker's base URL (scheme://host:port), reachable from
	// the master and from other workers.
	URL string `json:"url"`
	// Slots is the worker's concurrent task capacity (≥1).
	Slots int `json:"slots"`
}

// RegisterResponse assigns the worker its identity and lease terms.
type RegisterResponse struct {
	WorkerID int64 `json:"worker_id"`
	// HeartbeatMillis is how often the worker must renew its lease.
	HeartbeatMillis int64 `json:"heartbeat_millis"`
	// LeaseTTLMillis is how long the lease survives without renewal
	// before the master declares the worker dead and reassigns its
	// uncommitted tasks.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// HeartbeatRequest renews a worker's lease.
type HeartbeatRequest struct {
	WorkerID int64 `json:"worker_id"`
}

// HeartbeatResponse acknowledges a renewal. Unknown workers (e.g. a
// worker expired and forgotten during a master restart or long pause)
// get OK=false and must re-register.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// JobRef identifies and fully describes a job to a worker: the
// registered builder name plus the opaque spec blob the builder turns
// into a RemoteRunnable. ID keys the worker's runnable cache.
type JobRef struct {
	Name string `json:"name"`
	Spec []byte `json:"spec,omitempty"`
	ID   string `json:"id"`
}

// NewJobRef builds a JobRef with its content-derived ID.
func NewJobRef(name string, spec []byte) JobRef {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(spec)
	return JobRef{Name: name, Spec: spec, ID: hex.EncodeToString(h.Sum(nil)[:16])}
}

// SegmentRef locates one map task's partition segment for a reduce
// attempt: byte range within the run plus the URLs it can be fetched
// from, in preference order (origin worker first, master replica last —
// the fallback when the origin is dead).
type SegmentRef struct {
	MapTask   int      `json:"map_task"`
	URLs      []string `json:"urls"`
	Off       int64    `json:"off"`
	Len       int64    `json:"len"`
	Records   int64    `json:"records"`
	CodeWidth int      `json:"code_width"`
}

// TaskRequest dispatches one task attempt to a worker.
type TaskRequest struct {
	Job   JobRef `json:"job"`
	Phase string `json:"phase"` // "map" or "reduce"
	// M is the job's input partition count (= number of map tasks).
	M       int `json:"m"`
	Task    int `json:"task"`
	Attempt int `json:"attempt"`
	// Map phase: the task's input partition as a record blob.
	Input      []byte `json:"input,omitempty"`
	InputCount int    `json:"input_count"`
	// Reduce phase: one segment per map task with records for this
	// partition, in map-task order.
	Sources []SegmentRef `json:"sources,omitempty"`
}

// TaskResponse reports a completed attempt.
type TaskResponse struct {
	Metrics mapreduce.TaskMetrics `json:"metrics"`
	// Map phase: the attempt's side output and the URL its ERN1 run is
	// served at. The run's segment index travels inside the run file
	// itself (the ERN1 trailer) — the master re-reads and re-validates
	// it from its replica rather than trusting a wire copy.
	Side      []byte `json:"side,omitempty"`
	SideCount int    `json:"side_count,omitempty"`
	RunURL    string `json:"run_url,omitempty"`
	// Reduce phase: the attempt's output as a record blob.
	Output      []byte `json:"output,omitempty"`
	OutputCount int    `json:"output_count,omitempty"`
}

// ErrorResponse is a task failure crossing the wire with the engine's
// error classifications intact.
type ErrorResponse struct {
	Error   string `json:"error"`
	Fatal   bool   `json:"fatal,omitempty"`
	Corrupt bool   `json:"corrupt,omitempty"`
}

// toError reconstructs the classified error on the receiving side.
func (e *ErrorResponse) toError() error {
	err := errors.New(e.Error)
	if e.Corrupt {
		err = fmt.Errorf("%w: %w", runio.ErrCorrupt, err)
	}
	if e.Fatal {
		err = mapreduce.Fatal(err)
	}
	return err
}

// newErrorResponse classifies err for the wire.
func newErrorResponse(err error) ErrorResponse {
	return ErrorResponse{
		Error:   err.Error(),
		Fatal:   mapreduce.IsFatal(err),
		Corrupt: mapreduce.IsCorrupt(err),
	}
}
