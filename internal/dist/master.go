package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/runio"
)

// Default lease parameters. A worker heartbeats every interval; the
// master declares it dead when no heartbeat arrives for a full TTL and
// reassigns its uncommitted attempts. The TTL is a small multiple of
// the interval so one dropped beat never kills a healthy worker.
const (
	DefaultHeartbeatInterval = 250 * time.Millisecond
	defaultLeaseMultiple     = 4
)

// MasterOptions configures a Master.
type MasterOptions struct {
	// Addr is the listen address ("127.0.0.1:0" when empty).
	Addr string
	// HeartbeatInterval is the lease-renewal period workers are
	// assigned at registration (DefaultHeartbeatInterval when 0).
	HeartbeatInterval time.Duration
	// LeaseTTL is how long a lease survives without renewal
	// (defaultLeaseMultiple × HeartbeatInterval when 0).
	LeaseTTL time.Duration
	// Log receives operational events (registrations, expiries,
	// degradations) as structured records. Nil falls back to
	// Obs.Logger(), which is slog.Default() when Obs is nil too.
	Log *slog.Logger
	// Obs, when non-nil, enables tracing (dispatch spans per worker,
	// death/reassignment instants), dist.master.* metrics, and the
	// /debug/vars introspection endpoint on the control-plane mux.
	Obs *obs.Observer
	// PProf opts the control-plane mux into net/http/pprof handlers.
	PProf bool
}

// workerState is the master's view of one registered worker.
type workerState struct {
	id       int64
	url      string
	slots    int
	inflight int
	lastBeat time.Time
	// ctx is cancelled when the master declares the worker dead, which
	// aborts every dispatch in flight to it.
	ctx    context.Context
	cancel context.CancelFunc
}

// Master is the distributed runtime's coordinator: it tracks worker
// leases, dispatches task attempts (through per-job Sessions that plug
// into the engine as mapreduce.RemoteDispatcher), and serves its local
// run replicas to reducers so committed map output survives the death
// of the worker that produced it.
type Master struct {
	opts   MasterOptions
	srv    *http.Server
	ln     net.Listener
	client *http.Client
	log    *slog.Logger
	obs    *obs.Observer
	met    masterMetrics

	mu      sync.Mutex
	closed  bool
	nextID  int64
	workers map[int64]*workerState
	// deaths is the reassignment history served by /status: the most
	// recent worker deaths, oldest first, capped at deathHistoryCap.
	deaths []deathRecord
	// changed is closed and replaced whenever worker availability
	// changes (register, death, slot release) — a broadcast that wakes
	// every acquire/AwaitWorkers waiter to re-check.
	changed chan struct{}
	// replicas maps serving tokens to master-local replica paths.
	replicas  map[string]string
	nextToken int64

	serveDone chan struct{}
	monStop   chan struct{}
	monDone   chan struct{}
}

// masterMetrics caches the master's dist.master.* registry handles so
// hot paths never do a name lookup. Every handle is nil when the master
// has no Observer; the obs metric methods are nil-safe, so call sites
// stay unconditional.
type masterMetrics struct {
	workersLive    *obs.Gauge     // dist.master.workers_live
	dispatches     *obs.Counter   // dist.master.dispatch_total
	dispatchErrors *obs.Counter   // dist.master.dispatch_errors_total
	dispatchInfl   *obs.Gauge     // dist.master.dispatch_inflight
	acquireWaiting *obs.Gauge     // dist.master.acquire_waiting
	workerDeaths   *obs.Counter   // dist.master.worker_deaths_total
	reassigned     *obs.Counter   // dist.master.reassigned_attempts_total
	leaseAgeNS     *obs.Histogram // dist.master.lease_age_ns
}

func newMasterMetrics(o *obs.Observer) masterMetrics {
	if o == nil {
		return masterMetrics{}
	}
	r := o.Reg
	return masterMetrics{
		workersLive:    r.Gauge("dist.master.workers_live"),
		dispatches:     r.Counter("dist.master.dispatch_total"),
		dispatchErrors: r.Counter("dist.master.dispatch_errors_total"),
		dispatchInfl:   r.Gauge("dist.master.dispatch_inflight"),
		acquireWaiting: r.Gauge("dist.master.acquire_waiting"),
		workerDeaths:   r.Counter("dist.master.worker_deaths_total"),
		reassigned:     r.Counter("dist.master.reassigned_attempts_total"),
		leaseAgeNS:     r.Histogram("dist.master.lease_age_ns"),
	}
}

// deathRecord is one entry in the reassignment history: which worker
// died, why, and how many attempts were in flight to it (each of those
// is cancelled and reassigned by the supervisor's retry loop).
type deathRecord struct {
	WorkerID        int64     `json:"worker_id"`
	URL             string    `json:"url"`
	Why             string    `json:"why"`
	InflightAtDeath int       `json:"inflight_at_death"`
	At              time.Time `json:"at"`
}

const deathHistoryCap = 64

// NewMaster creates an unstarted Master.
func NewMaster(opts MasterOptions) *Master {
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseMultiple * opts.HeartbeatInterval
	}
	m := &Master{
		opts:      opts,
		workers:   map[int64]*workerState{},
		changed:   make(chan struct{}),
		replicas:  map[string]string{},
		serveDone: make(chan struct{}),
		monStop:   make(chan struct{}),
		monDone:   make(chan struct{}),
	}
	m.log = opts.Log
	if m.log == nil {
		m.log = opts.Obs.Logger() // slog.Default() when Obs is nil too
	}
	m.obs = opts.Obs
	m.met = newMasterMetrics(opts.Obs)
	m.client = &http.Client{Transport: &http.Transport{}}
	return m
}

// Start binds the listener and begins serving the control plane.
func (m *Master) Start() error {
	addr := m.opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: master listen %s: %w", addr, err)
	}
	m.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc(pathRegister, m.handleRegister)
	mux.HandleFunc(pathHeartbeat, m.handleHeartbeat)
	mux.HandleFunc(pathReplica, m.handleReplica)
	// Introspection rides the control-plane mux: /status always (it
	// needs no Observer), /debug/vars and opt-in pprof when observed.
	if m.obs != nil {
		obs.Attach(mux, m.obs, m.statusSnapshot, m.opts.PProf)
	} else {
		mux.Handle(pathStatus, obs.StatusHandler(m.statusSnapshot))
	}
	m.srv = &http.Server{Handler: mux}
	go func() {
		defer close(m.serveDone)
		m.srv.Serve(ln)
	}()
	go m.monitor()
	return nil
}

// URL returns the master's base URL (valid after Start).
func (m *Master) URL() string { return "http://" + m.ln.Addr().String() }

// Close shuts the control plane down: in-flight dispatches are
// aborted, workers are forgotten, and the HTTP server stops. Workers
// notice on their next heartbeat and keep retrying registration (they
// outlive masters by design); Close does not contact them.
func (m *Master) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, w := range m.workers {
		w.cancel()
	}
	m.workers = map[int64]*workerState{}
	m.replicas = map[string]string{}
	m.broadcastLocked()
	m.mu.Unlock()

	close(m.monStop)
	<-m.monDone
	m.srv.Close()
	<-m.serveDone
	m.client.CloseIdleConnections()
}

// AwaitWorkers blocks until at least n workers hold live leases.
func (m *Master) AwaitWorkers(ctx context.Context, n int) error {
	for {
		m.mu.Lock()
		live := len(m.workers)
		ch := m.changed
		closed := m.closed
		m.mu.Unlock()
		if live >= n {
			return nil
		}
		if closed {
			return errors.New("dist: master closed")
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: waiting for %d workers (have %d): %w", n, live, ctx.Err())
		case <-ch:
		}
	}
}

// Workers reports the number of live leases.
func (m *Master) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// broadcastLocked wakes every waiter; callers hold m.mu.
func (m *Master) broadcastLocked() {
	close(m.changed)
	m.changed = make(chan struct{})
}

func (m *Master) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		http.Error(w, "bad register request", http.StatusBadRequest)
		return
	}
	if req.Slots < 1 {
		req.Slots = 1
	}
	//erlint:ignore ctxflow per-worker lease root: must outlive any single dispatch request, cancelled on worker death
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		http.Error(w, "master closed", http.StatusServiceUnavailable)
		return
	}
	m.nextID++
	ws := &workerState{
		id:       m.nextID,
		url:      strings.TrimSuffix(req.URL, "/"),
		slots:    req.Slots,
		lastBeat: time.Now(),
		ctx:      ctx,
		cancel:   cancel,
	}
	m.workers[ws.id] = ws
	m.broadcastLocked()
	n := len(m.workers)
	m.mu.Unlock()
	m.met.workersLive.Set(int64(n))
	m.log.Info("dist master: worker registered",
		"worker", ws.id, "url", ws.url, "slots", ws.slots, "live", n)
	writeJSON(w, RegisterResponse{
		WorkerID:        ws.id,
		HeartbeatMillis: m.opts.HeartbeatInterval.Milliseconds(),
		LeaseTTLMillis:  m.opts.LeaseTTL.Milliseconds(),
	})
}

func (m *Master) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat request", http.StatusBadRequest)
		return
	}
	m.mu.Lock()
	ws, ok := m.workers[req.WorkerID]
	if ok {
		ws.lastBeat = time.Now()
	}
	m.mu.Unlock()
	writeJSON(w, HeartbeatResponse{OK: ok})
}

func (m *Master) handleReplica(w http.ResponseWriter, r *http.Request) {
	token := strings.TrimPrefix(r.URL.Path, pathReplica)
	m.mu.Lock()
	path, ok := m.replicas[token]
	m.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	// ServeFile handles Range requests — runio.SegmentReader range-reads
	// replica segments through this endpoint.
	http.ServeFile(w, r, path)
}

// monitor expires leases: a worker whose last heartbeat is older than
// the TTL is declared dead, which cancels its in-flight dispatches so
// the supervisor's retry loop reassigns those attempts elsewhere.
func (m *Master) monitor() {
	defer close(m.monDone)
	t := time.NewTicker(m.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-m.monStop:
			return
		case <-t.C:
		}
		now := time.Now()
		m.mu.Lock()
		var dead []*workerState
		for _, ws := range m.workers {
			// Lease age of every live worker, sampled once per tick —
			// the /debug/vars view of heartbeat health.
			m.met.leaseAgeNS.Observe(now.Sub(ws.lastBeat).Nanoseconds())
			if now.Sub(ws.lastBeat) > m.opts.LeaseTTL {
				dead = append(dead, ws)
			}
		}
		for _, ws := range dead {
			m.markDeadLocked(ws, "lease expired")
		}
		m.mu.Unlock()
	}
}

// markDeadLocked revokes a worker's lease: cancel its dispatches, drop
// it from the pool, wake waiters. Callers hold m.mu.
func (m *Master) markDeadLocked(ws *workerState, why string) {
	if _, ok := m.workers[ws.id]; !ok {
		return // already dead
	}
	delete(m.workers, ws.id)
	ws.cancel()
	m.broadcastLocked()
	inflight := ws.inflight
	m.deaths = append(m.deaths, deathRecord{
		WorkerID:        ws.id,
		URL:             ws.url,
		Why:             why,
		InflightAtDeath: inflight,
		At:              time.Now(),
	})
	if len(m.deaths) > deathHistoryCap {
		m.deaths = m.deaths[len(m.deaths)-deathHistoryCap:]
	}
	m.met.workersLive.Set(int64(len(m.workers)))
	m.met.workerDeaths.Inc()
	m.met.reassigned.Add(int64(inflight))
	if o := m.obs; o != nil {
		o.Tracer.Record(obs.Event{Type: obs.EvInstant, Kind: obs.KWorkerDeath,
			Task: -1, Worker: int32(ws.id), Arg: int64(inflight)})
		if inflight > 0 {
			o.Tracer.Record(obs.Event{Type: obs.EvInstant, Kind: obs.KReassign,
				Task: -1, Worker: int32(ws.id), Arg: int64(inflight)})
		}
	}
	m.log.Warn("dist master: worker declared dead; reassigning its uncommitted tasks",
		"worker", ws.id, "url", ws.url, "why", why, "inflight", inflight)
}

// markDead is markDeadLocked for callers not holding m.mu.
func (m *Master) markDead(ws *workerState, why string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.markDeadLocked(ws, why)
}

// acquire reserves one task slot on the least-loaded live worker. It
// returns mapreduce.ErrNoWorkers when the pool is empty (the engine
// degrades to local execution) and blocks while workers exist but all
// slots are busy.
func (m *Master) acquire(ctx context.Context) (*workerState, func(), error) {
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, nil, errors.New("dist: master closed")
		}
		if len(m.workers) == 0 {
			m.mu.Unlock()
			return nil, nil, mapreduce.ErrNoWorkers
		}
		var best *workerState
		for _, ws := range m.workers {
			if ws.inflight >= ws.slots {
				continue
			}
			// Least-loaded wins; worker id breaks ties so selection does
			// not depend on map iteration order.
			if best == nil || ws.inflight < best.inflight || (ws.inflight == best.inflight && ws.id < best.id) {
				best = ws
			}
		}
		if best != nil {
			best.inflight++
			m.mu.Unlock()
			var once sync.Once
			release := func() {
				once.Do(func() {
					m.mu.Lock()
					best.inflight--
					m.broadcastLocked()
					m.mu.Unlock()
				})
			}
			return best, release, nil
		}
		ch := m.changed
		m.mu.Unlock()
		// Workers exist but every slot is busy: this acquire queues.
		m.met.acquireWaiting.Add(1)
		select {
		case <-ctx.Done():
			m.met.acquireWaiting.Add(-1)
			return nil, nil, ctx.Err()
		case <-ch:
		}
		m.met.acquireWaiting.Add(-1)
	}
}

// statusSnapshot assembles the /status view: live workers with their
// load and lease age, plus the recent death/reassignment history.
func (m *Master) statusSnapshot() any {
	type workerStatus struct {
		WorkerID     int64  `json:"worker_id"`
		URL          string `json:"url"`
		Slots        int    `json:"slots"`
		Inflight     int    `json:"inflight"`
		LeaseAgeMill int64  `json:"lease_age_millis"`
	}
	now := time.Now()
	m.mu.Lock()
	ws := make([]workerStatus, 0, len(m.workers))
	for _, w := range m.workers {
		ws = append(ws, workerStatus{
			WorkerID:     w.id,
			URL:          w.url,
			Slots:        w.slots,
			Inflight:     w.inflight,
			LeaseAgeMill: now.Sub(w.lastBeat).Milliseconds(),
		})
	}
	deaths := append([]deathRecord(nil), m.deaths...)
	replicas := len(m.replicas)
	closed := m.closed
	m.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].WorkerID < ws[j].WorkerID })
	return map[string]any{
		"role":     "master",
		"closed":   closed,
		"workers":  ws,
		"deaths":   deaths,
		"replicas": replicas,
	}
}

// registerReplica exposes a master-local replica file over /replica/
// and returns its URL. Idempotence is the caller's concern (Session
// caches per path).
func (m *Master) registerReplica(path string) string {
	m.mu.Lock()
	m.nextToken++
	token := strconv.FormatInt(m.nextToken, 10)
	m.replicas[token] = path
	m.mu.Unlock()
	return m.URL() + pathReplica + token
}

func (m *Master) unregisterReplicas(urls []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, u := range urls {
		if i := strings.LastIndex(u, pathReplica); i >= 0 {
			delete(m.replicas, u[i+len(pathReplica):])
		}
	}
}

// Session binds one job to the master as the engine-facing dispatcher:
// set Engine.Remote to the returned session while running that job,
// and Close it afterwards. name must be a builder registered (via
// RegisterJob) in the worker binary; spec is the opaque job description
// the builder consumes.
func (m *Master) Session(name string, spec []byte) *Session {
	s := &Session{m: m, ref: NewJobRef(name, spec), replicaURLs: map[string]string{}}
	if o := m.obs; o != nil {
		s.jobID = o.Tracer.InternJob(name)
	}
	return s
}

// Session implements mapreduce.RemoteDispatcher for one job.
type Session struct {
	m   *Master
	ref JobRef
	// jobID is the interned trace name for dispatch spans (0 when the
	// master has no Observer).
	jobID uint32

	mu sync.Mutex
	// replicaURLs caches the /replica/ URL per master-local run path.
	replicaURLs map[string]string
}

var _ mapreduce.RemoteDispatcher = (*Session)(nil)

// Close releases the session's replica registrations. Workers clean
// their per-job state when told to (Release) or when they exit.
func (s *Session) Close() {
	s.mu.Lock()
	urls := make([]string, 0, len(s.replicaURLs))
	for _, u := range s.replicaURLs {
		urls = append(urls, u)
	}
	s.replicaURLs = map[string]string{}
	s.mu.Unlock()
	s.m.unregisterReplicas(urls)
	s.release()
}

// release asks every live worker to drop the job's cached runnable and
// run files — best effort; a dead worker's files die with its dir.
func (s *Session) release() {
	s.m.mu.Lock()
	urls := make([]string, 0, len(s.m.workers))
	for _, ws := range s.m.workers {
		urls = append(urls, ws.url)
	}
	s.m.mu.Unlock()
	body, _ := json.Marshal(struct {
		JobID string `json:"job_id"`
	}{s.ref.ID})
	for _, u := range urls {
		//erlint:ignore ctxflow best-effort release broadcast during job teardown runs after the job context is done
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u+pathRelease, bytes.NewReader(body))
		if err == nil {
			if resp, err := s.m.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		cancel()
	}
}

// RunMapAttempt dispatches one map attempt, then replicates the
// worker's run file to replicaPath and validates it structurally
// (runio.ReadInfo re-reads the trailer and segment index); the
// validated local Info — not the worker's claim — is what the engine
// commits. From commit on, the task's output survives the worker.
func (s *Session) RunMapAttempt(ctx context.Context, m, task, attempt int, input []byte, inputCount int, replicaPath string) (*mapreduce.RemoteMapResult, error) {
	var resp TaskResponse
	ws, err := s.dispatch(ctx, &TaskRequest{
		Job:        s.ref,
		Phase:      "map",
		M:          m,
		Task:       task,
		Attempt:    attempt,
		Input:      input,
		InputCount: inputCount,
	}, &resp)
	if err != nil {
		return nil, err
	}
	if err := s.download(ctx, ws, resp.RunURL, replicaPath); err != nil {
		return nil, fmt.Errorf("replicate map task %d run: %w", task, err)
	}
	info, err := runio.ReadInfo(replicaPath)
	if err != nil {
		os.Remove(replicaPath)
		return nil, fmt.Errorf("validate map task %d replica: %w", task, err)
	}
	return &mapreduce.RemoteMapResult{
		Info:      info,
		Origin:    resp.RunURL,
		Side:      resp.Side,
		SideCount: resp.SideCount,
		Metrics:   resp.Metrics,
	}, nil
}

// RunReduceAttempt dispatches one reduce attempt. Each map task's
// segment is offered to the worker with its replica set in preference
// order: the origin worker's run URL first, the master replica as
// fallback — a reduce outlives the death of any map task's worker.
func (s *Session) RunReduceAttempt(ctx context.Context, m, task, attempt int, runs []mapreduce.RemoteRun) (*mapreduce.RemoteReduceResult, error) {
	refs := make([]SegmentRef, 0, len(runs))
	for _, run := range runs {
		seg := run.Info.Segments[task]
		if seg.Records == 0 {
			continue
		}
		urls := make([]string, 0, 2)
		if run.Origin != "" {
			urls = append(urls, run.Origin)
		}
		urls = append(urls, s.replicaURL(run.Path))
		refs = append(refs, SegmentRef{
			MapTask:   run.MapTask,
			URLs:      urls,
			Off:       seg.Off,
			Len:       seg.Len,
			Records:   seg.Records,
			CodeWidth: run.Info.CodeWidth,
		})
	}
	var resp TaskResponse
	if _, err := s.dispatch(ctx, &TaskRequest{
		Job:     s.ref,
		Phase:   "reduce",
		M:       m,
		Task:    task,
		Attempt: attempt,
		Sources: refs,
	}, &resp); err != nil {
		return nil, err
	}
	return &mapreduce.RemoteReduceResult{
		Output:      resp.Output,
		OutputCount: resp.OutputCount,
		Metrics:     resp.Metrics,
	}, nil
}

func (s *Session) replicaURL(path string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u, ok := s.replicaURLs[path]; ok {
		return u
	}
	u := s.m.registerReplica(path)
	s.replicaURLs[path] = u
	return u
}

// dispatch sends one task attempt to an acquired worker and decodes the
// outcome. Error taxonomy: transport failure or lease expiry mid-task
// marks the worker dead and fails the attempt (retryable — the
// supervisor reassigns); an ErrorResponse is the attempt's own failure
// with Fatal/Corrupt classification preserved, and says nothing about
// worker health.
func (s *Session) dispatch(ctx context.Context, treq *TaskRequest, out *TaskResponse) (*workerState, error) {
	ws, release, err := s.m.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	// The dispatch span carries Worker — the Chrome exporter turns that
	// into per-worker swimlanes, so a killed worker's attempts visibly
	// migrate to the survivors.
	m := s.m
	m.met.dispatches.Inc()
	m.met.dispatchInfl.Add(1)
	s.recordDispatch(obs.EvBegin, treq, ws, 0)
	err = s.exchange(ctx, ws, treq, out)
	var failed int64
	if err != nil {
		failed = 1
		m.met.dispatchErrors.Inc()
	}
	s.recordDispatch(obs.EvEnd, treq, ws, failed)
	m.met.dispatchInfl.Add(-1)
	if err != nil {
		return nil, err
	}
	return ws, nil
}

func (s *Session) recordDispatch(typ obs.EventType, treq *TaskRequest, ws *workerState, arg int64) {
	o := s.m.obs
	if o == nil {
		return
	}
	phase := obs.PhaseMap
	if treq.Phase == "reduce" {
		phase = obs.PhaseReduce
	}
	o.Tracer.Record(obs.Event{
		Type: typ, Kind: obs.KDispatch, Phase: phase, Job: s.jobID,
		Task: int32(treq.Task), Attempt: int32(treq.Attempt),
		Worker: int32(ws.id), Arg: arg,
	})
}

// exchange performs the task POST to one acquired worker and decodes
// the outcome; dispatch wraps it with the span and counters.
func (s *Session) exchange(ctx context.Context, ws *workerState, treq *TaskRequest, out *TaskResponse) error {
	// The dispatch context dies with the attempt or with the worker's
	// lease, whichever goes first — a hung worker cannot hang the task.
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(ws.ctx, cancel)
	defer stop()

	body, err := json.Marshal(treq)
	if err != nil {
		return mapreduce.Fatal(fmt.Errorf("dist: encode task request: %w", err))
	}
	req, err := http.NewRequestWithContext(dctx, http.MethodPost, ws.url+pathTask, bytes.NewReader(body))
	if err != nil {
		return mapreduce.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.m.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.m.markDead(ws, fmt.Sprintf("dispatch failed: %v", err))
		return fmt.Errorf("dist: worker %d: %s task %d attempt %d: %w", ws.id, treq.Phase, treq.Task, treq.Attempt, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
			return fmt.Errorf("dist: worker %d: %s task %d attempt %d: http %s", ws.id, treq.Phase, treq.Task, treq.Attempt, resp.Status)
		}
		return fmt.Errorf("dist: worker %d: %s task %d attempt %d: %w", ws.id, treq.Phase, treq.Task, treq.Attempt, er.toError())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		s.m.markDead(ws, fmt.Sprintf("bad task response: %v", err))
		return fmt.Errorf("dist: worker %d: decode task response: %w", ws.id, err)
	}
	return nil
}

// download fetches a worker's run file to a master-local replica.
func (s *Session) download(ctx context.Context, ws *workerState, url, path string) error {
	if url == "" {
		return errors.New("dist: map response carries no run URL")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.m.client.Do(req)
	if err != nil {
		s.m.markDead(ws, fmt.Sprintf("run download failed: %v", err))
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("download %s: http %s", url, resp.Status)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
