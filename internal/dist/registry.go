package dist

import (
	"fmt"
	"sync"

	"repro/internal/mapreduce"
)

// The job registry maps builder names to constructors so a worker
// process can instantiate jobs whose concrete type parameters it does
// not know: the master sends (name, spec), the worker calls the
// registered builder. Packages that define distributable jobs register
// their builders in init (see internal/er/dist.go), so any binary that
// imports them — cmd/erworker above all — can execute their tasks.

var (
	registryMu sync.RWMutex
	registry   = map[string]func(spec []byte) (mapreduce.RemoteRunnable, error){}
)

// RegisterJob registers a named job builder. It panics on a duplicate
// name, like runio.Register: builder sets are process-static.
func RegisterJob(name string, build func(spec []byte) (mapreduce.RemoteRunnable, error)) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("dist: RegisterJob: duplicate job name %q", name))
	}
	registry[name] = build
}

// lookupJob returns the builder for name.
func lookupJob(name string) (func(spec []byte) (mapreduce.RemoteRunnable, error), bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}
