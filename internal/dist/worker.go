package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/runio"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// MasterURL is the master's base URL (required).
	MasterURL string
	// Addr is the listen address for the task/run server
	// ("127.0.0.1:0" when empty). It must be reachable from the master
	// and from the other workers (shuffle reads).
	Addr string
	// Dir is where run files live; the worker creates a private
	// subdirectory per job under it ("" = the system temp dir) and
	// removes everything on graceful Stop.
	Dir string
	// Slots is the advertised concurrent task capacity (1 when < 1).
	Slots int
	// Log receives operational events as structured records. Nil falls
	// back to Obs.Logger(), which is slog.Default() when Obs is nil too.
	Log *slog.Logger
	// Obs, when non-nil, enables worker-side task spans, shuffle-read
	// tracing, dist.worker.* metrics, and /debug/vars on the task mux.
	Obs *obs.Observer
	// PProf opts the task mux into net/http/pprof handlers.
	PProf bool
	// TaskStarted, when non-nil, runs at the top of every task attempt
	// — the chaos seam: tests and cmd/erworker use it to stall a
	// chosen phase or mark the moment a kill becomes interesting. The
	// context is the attempt's (cancelled when the master gives up or
	// dies mid-request).
	TaskStarted func(ctx context.Context, phase string, task, attempt int)
}

// Worker executes dispatched task attempts and serves its map runs.
// One Worker per process is the intended shape (cmd/erworker), but
// tests run several in one process.
type Worker struct {
	opts   WorkerOptions
	dir    string
	ownDir bool
	srv    *http.Server
	ln     net.Listener
	client *http.Client
	log    *slog.Logger
	obs    *obs.Observer
	met    workerMetrics
	// id is the master-assigned worker id of the current registration
	// (0 before the first one) — stamped on every worker-side span.
	id atomic.Int64

	mu        sync.Mutex
	runnables map[string]mapreduce.RemoteRunnable // by JobRef.ID
	runs      map[string]string                   // serving token → path
	jobRuns   map[string][]string                 // JobRef.ID → tokens
	nextToken int64

	ctx       context.Context
	cancel    context.CancelFunc
	serveDone chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
}

// workerMetrics caches the worker's dist.worker.* registry handles.
// All handles are nil (and every call a no-op) without an Observer.
type workerMetrics struct {
	tasks         *obs.Counter // dist.worker.tasks_total
	taskErrors    *obs.Counter // dist.worker.task_errors_total
	inflight      *obs.Gauge   // dist.worker.tasks_inflight
	shuffleBytes  *obs.Counter // dist.worker.shuffle_read_bytes_total
	registrations *obs.Counter // dist.worker.registrations_total
}

func newWorkerMetrics(o *obs.Observer) workerMetrics {
	if o == nil {
		return workerMetrics{}
	}
	r := o.Reg
	return workerMetrics{
		tasks:         r.Counter("dist.worker.tasks_total"),
		taskErrors:    r.Counter("dist.worker.task_errors_total"),
		inflight:      r.Gauge("dist.worker.tasks_inflight"),
		shuffleBytes:  r.Counter("dist.worker.shuffle_read_bytes_total"),
		registrations: r.Counter("dist.worker.registrations_total"),
	}
}

// StartWorker launches a worker: it binds the task server, then keeps a
// registration with the master alive in the background (registering,
// heartbeating, and re-registering as needed) until Stop or Kill.
func StartWorker(opts WorkerOptions) (*Worker, error) {
	if opts.MasterURL == "" {
		return nil, fmt.Errorf("dist: worker: MasterURL is required")
	}
	if opts.Slots < 1 {
		opts.Slots = 1
	}
	w := &Worker{
		opts:      opts,
		runnables: map[string]mapreduce.RemoteRunnable{},
		runs:      map[string]string{},
		jobRuns:   map[string][]string{},
		serveDone: make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	w.log = opts.Log
	if w.log == nil {
		w.log = opts.Obs.Logger() // slog.Default() when Obs is nil too
	}
	w.obs = opts.Obs
	w.met = newWorkerMetrics(opts.Obs)
	dir, err := os.MkdirTemp(opts.Dir, "erworker-*")
	if err != nil {
		return nil, fmt.Errorf("dist: worker: create run dir: %w", err)
	}
	w.dir = dir
	w.ownDir = true
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("dist: worker listen %s: %w", addr, err)
	}
	w.ln = ln
	w.client = &http.Client{Transport: &http.Transport{}}
	//erlint:ignore ctxflow worker lifecycle root: this context is the serve loop lifetime, cancelled by Close
	w.ctx, w.cancel = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc(pathTask, w.handleTask)
	mux.HandleFunc(pathRun, w.handleRun)
	mux.HandleFunc(pathRelease, w.handleRelease)
	if w.obs != nil {
		obs.Attach(mux, w.obs, w.statusSnapshot, opts.PProf)
	} else {
		mux.Handle(pathStatus, obs.StatusHandler(w.statusSnapshot))
	}
	w.srv = &http.Server{Handler: mux}
	go func() {
		defer close(w.serveDone)
		w.srv.Serve(ln)
	}()
	go w.registerLoop()
	return w, nil
}

// URL returns the worker's base URL.
func (w *Worker) URL() string { return "http://" + w.ln.Addr().String() }

// Stop shuts the worker down gracefully: deregistration happens by
// lease expiry (the protocol has no unregister — death and shutdown
// look the same to the master), the server drains, and the run
// directory is removed.
func (w *Worker) Stop() {
	w.shutdown(true)
}

// Kill is the chaos shutdown: the listener and every open connection
// close immediately (in-flight task responses are cut mid-stream, like
// a SIGKILL) and the run directory is left behind, exactly as a dead
// process would leave it. Tests clean the directory themselves.
func (w *Worker) Kill() {
	w.shutdown(false)
}

func (w *Worker) shutdown(graceful bool) {
	w.closeOnce.Do(func() {
		w.cancel()
		<-w.loopDone
		if graceful {
			//erlint:ignore ctxflow graceful-shutdown timeout deliberately outlives the cancelled worker lifecycle context
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			w.srv.Shutdown(ctx)
			cancel()
			w.srv.Close()
		} else {
			w.srv.Close()
		}
		<-w.serveDone
		w.client.CloseIdleConnections()
		if graceful && w.ownDir {
			os.RemoveAll(w.dir)
		}
	})
}

// Dir returns the worker's run directory (left behind by Kill).
func (w *Worker) Dir() string { return w.dir }

// registerLoop keeps the worker leased: register, heartbeat at the
// assigned interval, re-register when the master forgot us (restart,
// expiry), retry with backoff while the master is unreachable.
func (w *Worker) registerLoop() {
	defer close(w.loopDone)
	const retryDelay = 200 * time.Millisecond
	for w.ctx.Err() == nil {
		reg, err := w.register()
		if err != nil {
			w.log.Warn("dist worker: register failed (will retry)",
				"master", w.opts.MasterURL, "err", err)
			if !sleepCtx(w.ctx, retryDelay) {
				return
			}
			continue
		}
		w.id.Store(reg.WorkerID)
		w.met.registrations.Inc()
		w.log.Info("dist worker: registered",
			"worker", reg.WorkerID, "master", w.opts.MasterURL, "url", w.URL())
		interval := time.Duration(reg.HeartbeatMillis) * time.Millisecond
		if interval <= 0 {
			interval = DefaultHeartbeatInterval
		}
		t := time.NewTicker(interval)
		for ok := true; ok; {
			select {
			case <-w.ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			hb, err := w.heartbeat(reg.WorkerID)
			switch {
			case err != nil:
				w.log.Warn("dist worker: heartbeat failed (re-registering)",
					"worker", reg.WorkerID, "err", err)
				ok = false
			case !hb.OK:
				w.log.Warn("dist worker: lease lost (re-registering)",
					"worker", reg.WorkerID)
				ok = false
			}
		}
		t.Stop()
	}
}

func (w *Worker) register() (*RegisterResponse, error) {
	body, _ := json.Marshal(RegisterRequest{URL: w.URL(), Slots: w.opts.Slots})
	var resp RegisterResponse
	if err := w.postJSON(w.opts.MasterURL+pathRegister, body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (w *Worker) heartbeat(id int64) (*HeartbeatResponse, error) {
	body, _ := json.Marshal(HeartbeatRequest{WorkerID: id})
	var resp HeartbeatResponse
	if err := w.postJSON(w.opts.MasterURL+pathHeartbeat, body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (w *Worker) postJSON(url string, body []byte, out any) error {
	ctx, cancel := context.WithTimeout(w.ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: http %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runnableFor returns the job's cached executor, building it through
// the registered builder on first use.
func (w *Worker) runnableFor(ref JobRef) (mapreduce.RemoteRunnable, error) {
	w.mu.Lock()
	rr, ok := w.runnables[ref.ID]
	w.mu.Unlock()
	if ok {
		return rr, nil
	}
	build, ok := lookupJob(ref.Name)
	if !ok {
		return nil, fmt.Errorf("dist: worker: no job builder registered for %q (is the package imported?)", ref.Name)
	}
	rr, err := build(ref.Spec)
	if err != nil {
		return nil, fmt.Errorf("dist: worker: build job %q: %w", ref.Name, err)
	}
	w.mu.Lock()
	// A concurrent builder for the same ref may have won; either value
	// is equivalent, keep the first.
	if prev, ok := w.runnables[ref.ID]; ok {
		rr = prev
	} else {
		w.runnables[ref.ID] = rr
	}
	w.mu.Unlock()
	return rr, nil
}

// handleTask executes one dispatched attempt. The request context is
// the attempt's lifeline: net/http cancels it when the master hangs up
// (attempt superseded, lease revoked, master dead), which stops the
// typed attempt at its usual cancellation points.
func (w *Worker) handleTask(rw http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad task request", http.StatusBadRequest)
		return
	}
	rr, err := w.runnableFor(req.Job)
	if err != nil {
		w.taskError(rw, mapreduce.Fatal(err))
		return
	}
	// Worker-side task span: the worker's own timeline of dispatched
	// attempts (its engine-side obs stays nil — master-side supervision
	// already traces attempts; this is the remote half of the picture).
	w.met.tasks.Inc()
	w.met.inflight.Add(1)
	w.recordTask(obs.EvBegin, &req)
	defer func() {
		w.recordTask(obs.EvEnd, &req)
		w.met.inflight.Add(-1)
	}()
	ctx := r.Context()
	if w.opts.TaskStarted != nil {
		w.opts.TaskStarted(ctx, req.Phase, req.Task, req.Attempt)
	}
	switch req.Phase {
	case "map":
		w.execMap(ctx, rw, rr, &req)
	case "reduce":
		w.execReduce(ctx, rw, rr, &req)
	default:
		w.taskError(rw, mapreduce.Fatal(fmt.Errorf("dist: worker: unknown phase %q", req.Phase)))
	}
}

func (w *Worker) recordTask(typ obs.EventType, req *TaskRequest) {
	o := w.obs
	if o == nil {
		return
	}
	phase := obs.PhaseMap
	if req.Phase == "reduce" {
		phase = obs.PhaseReduce
	}
	o.Tracer.Record(obs.Event{
		Type: typ, Kind: obs.KTask, Phase: phase,
		Job:  o.Tracer.InternJob(req.Job.Name),
		Task: int32(req.Task), Attempt: int32(req.Attempt),
		Worker: int32(w.id.Load()),
	})
}

// statusSnapshot assembles the worker's /status view.
func (w *Worker) statusSnapshot() any {
	w.mu.Lock()
	jobs := len(w.runnables)
	runs := len(w.runs)
	w.mu.Unlock()
	return map[string]any{
		"role":        "worker",
		"worker_id":   w.id.Load(),
		"master_url":  w.opts.MasterURL,
		"url":         w.URL(),
		"slots":       w.opts.Slots,
		"dir":         w.dir,
		"cached_jobs": jobs,
		"served_runs": runs,
	}
}

func (w *Worker) execMap(ctx context.Context, rw http.ResponseWriter, rr mapreduce.RemoteRunnable, req *TaskRequest) {
	jobDir := filepath.Join(w.dir, req.Job.ID)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		w.taskError(rw, err)
		return
	}
	runPath := filepath.Join(jobDir, fmt.Sprintf("m%04d-a%03d.run", req.Task, req.Attempt))
	// A retried dispatch of the same attempt (master resend after a cut
	// response) may find the file already there; recreate it.
	os.Remove(runPath)
	res, err := rr.ExecRemoteMap(ctx, req.M, req.Task, req.Attempt, req.Input, req.InputCount, runPath)
	if err != nil {
		w.taskError(rw, err)
		return
	}
	token := w.registerRun(req.Job.ID, runPath)
	writeJSON(rw, TaskResponse{
		Metrics:   res.Metrics,
		Side:      res.Side,
		SideCount: res.SideCount,
		RunURL:    w.URL() + pathRun + token,
	})
}

func (w *Worker) execReduce(ctx context.Context, rw http.ResponseWriter, rr mapreduce.RemoteRunnable, req *TaskRequest) {
	srcs := make([]mapreduce.SegmentSource, len(req.Sources))
	for i, ref := range req.Sources {
		ra := &httpReaderAt{client: w.client, ctx: ctx, urls: ref.URLs}
		if o := w.obs; o != nil {
			// Shuffle fetches trace under the reduce task's lane: one
			// span per range read, Arg = bytes fetched.
			ra.obs = o
			ra.bytes = w.met.shuffleBytes
			ra.job = o.Tracer.InternJob(req.Job.Name)
			ra.task = int32(req.Task)
			ra.attempt = int32(req.Attempt)
			ra.worker = int32(w.id.Load())
		}
		srcs[i] = mapreduce.SegmentSource{
			R:    ra,
			Seg:  segmentOf(ref),
			Path: fmt.Sprintf("map task %d run (%v)", ref.MapTask, ref.URLs),
		}
	}
	res, err := rr.ExecRemoteReduce(ctx, req.M, req.Task, req.Attempt, srcs)
	if err != nil {
		w.taskError(rw, err)
		return
	}
	writeJSON(rw, TaskResponse{
		Metrics:     res.Metrics,
		Output:      res.Output,
		OutputCount: res.OutputCount,
	})
}

func (w *Worker) taskError(rw http.ResponseWriter, err error) {
	w.met.taskErrors.Inc()
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusInternalServerError)
	json.NewEncoder(rw).Encode(newErrorResponse(err))
}

func (w *Worker) registerRun(jobID, path string) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextToken++
	token := strconv.FormatInt(w.nextToken, 10)
	w.runs[token] = path
	w.jobRuns[jobID] = append(w.jobRuns[jobID], token)
	return token
}

// handleRun serves a map run file to reducers (and to the master's
// replication download). Only registered tokens resolve — the URL space
// carries no paths.
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	token := r.URL.Path[len(pathRun):]
	w.mu.Lock()
	path, ok := w.runs[token]
	w.mu.Unlock()
	if !ok {
		http.NotFound(rw, r)
		return
	}
	http.ServeFile(rw, r, path)
}

// handleRelease drops one job's cached runnable and run files.
func (w *Worker) handleRelease(rw http.ResponseWriter, r *http.Request) {
	var req struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad release request", http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	delete(w.runnables, req.JobID)
	for _, token := range w.jobRuns[req.JobID] {
		delete(w.runs, token)
	}
	delete(w.jobRuns, req.JobID)
	w.mu.Unlock()
	os.RemoveAll(filepath.Join(w.dir, req.JobID))
	rw.WriteHeader(http.StatusOK)
}

func segmentOf(ref SegmentRef) runio.Segment {
	return runio.Segment{Off: ref.Off, Len: ref.Len, Records: ref.Records}
}

// sleepCtx sleeps for d, returning false if ctx is done first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
