package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
)

// httpReaderAt adapts HTTP range requests to io.ReaderAt so
// runio.SegmentReader can merge a remote run segment exactly as it
// merges a local file. The segment reader's io.SectionReader guarantees
// every ReadAt stays inside the segment's validated bounds, so a plain
// Range request per read is always satisfiable; the buffered reader
// above it keeps the request count low (one per buffer fill).
//
// urls is a preference-ordered replica set: the origin worker first,
// the master's replica last. A failed read moves down the list — this
// is how a reduce attempt survives the death of the worker that
// produced the run without failing the attempt.
type httpReaderAt struct {
	client *http.Client
	ctx    context.Context
	urls   []string

	// Observability identity (all zero when the worker runs unobserved):
	// every range read becomes a KShuffleFetch span under the reduce
	// task's lane with Arg = bytes fetched, and bytes feed the
	// dist.worker.shuffle_read_bytes_total counter. The obs pointer
	// gates recording; bytes is nil-safe on its own.
	obs     *obs.Observer
	bytes   *obs.Counter
	job     uint32
	task    int32
	attempt int32
	worker  int32
}

func (r *httpReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if o := r.obs; o != nil {
		o.Tracer.Record(obs.Event{Type: obs.EvBegin, Kind: obs.KShuffleFetch,
			Phase: obs.PhaseReduce, Job: r.job, Task: r.task,
			Attempt: r.attempt, Worker: r.worker, Arg: int64(len(p))})
		defer func() {
			o.Tracer.Record(obs.Event{Type: obs.EvEnd, Kind: obs.KShuffleFetch,
				Phase: obs.PhaseReduce, Job: r.job, Task: r.task,
				Attempt: r.attempt, Worker: r.worker, Arg: int64(len(p))})
		}()
	}
	var firstErr error
	for _, u := range r.urls {
		n, err := r.readRange(u, p, off)
		if err == nil {
			r.bytes.Add(int64(n))
			return n, nil
		}
		if r.ctx.Err() != nil {
			return 0, r.ctx.Err()
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("range read %s: %w", u, err)
		}
	}
	if firstErr == nil {
		firstErr = errors.New("no replica URLs")
	}
	return 0, firstErr
}

func (r *httpReaderAt) readRange(url string, p []byte, off int64) (int, error) {
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(len(p))-1))
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusPartialContent {
		return 0, fmt.Errorf("status %s (want 206 Partial Content)", resp.Status)
	}
	return io.ReadFull(resp.Body, p)
}
