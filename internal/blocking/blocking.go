// Package blocking provides blocking key functions. A blocking key
// partitions the input into blocks; entity resolution then compares only
// entities within the same block, reducing the O(n^2) search space.
//
// The paper's default blocking for both evaluation datasets is the first
// three letters of the title attribute; the skew-robustness experiment
// instead controls the block distribution directly via a synthetic key.
package blocking

import (
	"strings"
	"unicode"
)

// KeyFunc derives the blocking key from an entity attribute value. The
// empty string is a valid key (the paper treats entities without a
// blocking key via a Cartesian-product special case; callers that need
// that behaviour should use Constant for the no-key subset).
type KeyFunc func(attrValue string) string

// Prefix returns a KeyFunc taking the first n runes of the value,
// unmodified. Values shorter than n map to themselves.
func Prefix(n int) KeyFunc {
	if n <= 0 {
		panic("blocking: Prefix requires n > 0")
	}
	return func(v string) string {
		// Fast path: when the first min(n, len(v)) bytes are ASCII, the
		// first n runes are exactly those bytes (and an all-ASCII value
		// shorter than n runes is its own key) — a substring, no
		// allocation. The rune-slice fallback only runs for values with
		// a multi-byte rune in the prefix.
		limit := n
		if len(v) < limit {
			limit = len(v)
		}
		ascii := true
		for i := 0; i < limit; i++ {
			if v[i] >= 0x80 {
				ascii = false
				break
			}
		}
		if ascii {
			if len(v) <= n {
				return v
			}
			return v[:n]
		}
		r := []rune(v)
		if len(r) <= n {
			return string(r)
		}
		return string(r[:n])
	}
}

// NormalizedPrefix lowercases the value, strips leading non-letter runes,
// and takes the first n letters. This is the paper's "first three letters
// of the title" key made robust to case and stray punctuation.
func NormalizedPrefix(n int) KeyFunc {
	if n <= 0 {
		panic("blocking: NormalizedPrefix requires n > 0")
	}
	return func(v string) string {
		// Fast path: the first n bytes are already lowercase ASCII
		// letters or digits (the common case for normalized titles) —
		// the key is a substring, no allocation.
		if len(v) >= n {
			ok := true
			for i := 0; i < n; i++ {
				c := v[i]
				if !('a' <= c && c <= 'z' || '0' <= c && c <= '9') {
					ok = false
					break
				}
			}
			if ok {
				return v[:n]
			}
		}
		var b strings.Builder
		for _, r := range v {
			r = unicode.ToLower(r)
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				if b.Len() == 0 {
					continue // strip leading separators
				}
				break
			}
			b.WriteRune(r)
			if b.Len() >= n {
				break
			}
		}
		return b.String()
	}
}

// Suffix returns a KeyFunc taking the last n runes of the value. A
// useful second pass for multi-pass blocking: typos near the front of a
// title move an entity out of its prefix block but usually not out of
// its suffix block.
func Suffix(n int) KeyFunc {
	if n <= 0 {
		panic("blocking: Suffix requires n > 0")
	}
	return func(v string) string {
		// Fast path mirror of Prefix: an ASCII byte never continues a
		// multi-byte rune, so when the last min(n, len(v)) bytes are all
		// ASCII they are exactly the last runes, wherever the earlier
		// rune boundaries fall.
		limit := n
		if len(v) < limit {
			limit = len(v)
		}
		ascii := true
		for i := len(v) - limit; i < len(v); i++ {
			if v[i] >= 0x80 {
				ascii = false
				break
			}
		}
		if ascii {
			if len(v) <= n {
				return v
			}
			return v[len(v)-n:]
		}
		r := []rune(v)
		if len(r) <= n {
			return string(r)
		}
		return string(r[len(r)-n:])
	}
}

// Constant returns a KeyFunc mapping every entity to the same block,
// denoted ⊥ in the paper. It is used when matching entities without a
// valid blocking key against everything else.
func Constant(key string) KeyFunc {
	return func(string) string { return key }
}

// Identity uses the attribute value itself as the blocking key. Useful
// with synthetic datasets whose block membership is pre-assigned to an
// attribute (the skew experiment of Figure 9).
func Identity() KeyFunc {
	return func(v string) string { return v }
}
