package blocking

import "strings"

// Soundex returns a KeyFunc computing the American Soundex code of the
// value's first word — the classic phonetic blocking key of the record
// linkage literature, useful as an additional pass in multi-pass
// blocking: it groups names that sound alike despite spelling variation
// ("Robert"/"Rupert" → R163).
//
// Rules implemented: the first letter is kept; subsequent letters map to
// digit classes (1: BFPV, 2: CGJKQSXZ, 3: DT, 4: L, 5: MN, 6: R);
// adjacent same-class letters collapse; H and W are transparent for the
// collapsing rule; vowels (and Y) separate classes; the code is padded
// or truncated to one letter plus three digits. Values that do not start
// with an ASCII letter yield the empty key (no valid blocking key).
func Soundex() KeyFunc {
	return func(v string) string {
		word := firstWord(v)
		if word == "" {
			return ""
		}
		first := upper(word[0])
		if first < 'A' || first > 'Z' {
			return ""
		}
		code := []byte{first}
		prevClass := soundexClass(first)
		for i := 1; i < len(word) && len(code) < 4; i++ {
			c := upper(word[i])
			if c < 'A' || c > 'Z' {
				break // stop at the first non-letter
			}
			class := soundexClass(c)
			switch {
			case c == 'H' || c == 'W':
				// Transparent: do not reset the previous class.
				continue
			case class == 0:
				// Vowel: emits nothing but separates equal classes.
				prevClass = 0
			case class != prevClass:
				code = append(code, '0'+class)
				prevClass = class
			}
		}
		for len(code) < 4 {
			code = append(code, '0')
		}
		return string(code)
	}
}

func firstWord(v string) string {
	v = strings.TrimSpace(v)
	if i := strings.IndexByte(v, ' '); i >= 0 {
		return v[:i]
	}
	return v
}

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// soundexClass returns the digit class of an uppercase letter (0 for
// vowels, H, W, and Y).
func soundexClass(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	default:
		return 0
	}
}
