package blocking

import "testing"

func TestPrefix(t *testing.T) {
	p3 := Prefix(3)
	tests := map[string]string{
		"abcdef": "abc",
		"ab":     "ab",
		"":       "",
		"日本語です":  "日本語", // rune-wise
		"ABC":    "ABC", // no normalization
	}
	for in, want := range tests {
		if got := p3(in); got != want {
			t.Errorf("Prefix(3)(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPrefixPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Prefix(0) did not panic")
		}
	}()
	Prefix(0)
}

func TestNormalizedPrefix(t *testing.T) {
	p3 := NormalizedPrefix(3)
	tests := map[string]string{
		"Canon EOS":   "can",
		"  sony a7":   "son",
		"\"quoted\"":  "quo",
		"a b":         "a", // separator ends the key
		"ABCdef":      "abc",
		"":            "",
		"!!!":         "",
		"x":           "x",
		"123 printer": "123", // digits count
	}
	for in, want := range tests {
		if got := p3(in); got != want {
			t.Errorf("NormalizedPrefix(3)(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizedPrefixPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NormalizedPrefix(0) did not panic")
		}
	}()
	NormalizedPrefix(0)
}

func TestSuffix(t *testing.T) {
	s3 := Suffix(3)
	tests := map[string]string{
		"abcdef": "def",
		"ab":     "ab",
		"":       "",
		"日本語です":  "語です",
	}
	for in, want := range tests {
		if got := s3(in); got != want {
			t.Errorf("Suffix(3)(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSuffixPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Suffix(0) did not panic")
		}
	}()
	Suffix(0)
}

func TestConstant(t *testing.T) {
	c := Constant("⊥")
	if c("anything") != "⊥" || c("") != "⊥" {
		t.Error("Constant not constant")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity()
	for _, s := range []string{"", "x", "block-42"} {
		if id(s) != s {
			t.Errorf("Identity()(%q) = %q", s, id(s))
		}
	}
}
