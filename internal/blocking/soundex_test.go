package blocking

import "testing"

func TestSoundexKnownCodes(t *testing.T) {
	sx := Soundex()
	// Classic reference vectors (US National Archives rules).
	tests := map[string]string{
		"Robert":     "R163",
		"Rupert":     "R163",
		"Ashcraft":   "A261", // H is transparent: s,c collapse
		"Ashcroft":   "A261",
		"Tymczak":    "T522",
		"Pfister":    "P236",
		"Honeyman":   "H555",
		"Jackson":    "J250",
		"Washington": "W252",
		"Lee":        "L000",
		"Gutierrez":  "G362",
	}
	for in, want := range tests {
		if got := sx(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSoundexNormalization(t *testing.T) {
	sx := Soundex()
	if sx("robert") != sx("ROBERT") {
		t.Error("case should not matter")
	}
	if got := sx("Robert Smith"); got != "R163" {
		t.Errorf("first word only: got %q", got)
	}
	if got := sx("  Robert"); got != "R163" {
		t.Errorf("leading spaces: got %q", got)
	}
}

func TestSoundexInvalidInput(t *testing.T) {
	sx := Soundex()
	for _, in := range []string{"", "123", "!robert", " "} {
		if got := sx(in); got != "" {
			t.Errorf("Soundex(%q) = %q, want empty (no valid key)", in, got)
		}
	}
}

func TestSoundexStopsAtNonLetter(t *testing.T) {
	sx := Soundex()
	if got, want := sx("O'Brien"), "O000"; got != want {
		t.Errorf("Soundex(O'Brien) = %q, want %q (stops at apostrophe)", got, want)
	}
}
