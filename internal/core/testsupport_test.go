package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// assertPlanMatchesExecution executes the strategy's job over the given
// partitions and checks every analytic plan quantity against the
// engine's measured metrics — the core validation that makes the
// planner-driven experiments trustworthy.
func assertPlanMatchesExecution(t *testing.T, strat Strategy, x *bdm.Matrix, parts entity.Partitions, attr string, r int) {
	t.Helper()
	plan, err := strat.Plan(x, len(parts), r)
	if err != nil {
		t.Fatalf("%s.Plan: %v", strat.Name(), err)
	}
	job, err := strat.Job(x, r, nil)
	if err != nil {
		t.Fatalf("%s.Job: %v", strat.Name(), err)
	}
	res, err := job.Run(&mapreduce.Engine{}, annotatedInput(parts, attr))
	if err != nil {
		t.Fatalf("%s: Run: %v", strat.Name(), err)
	}
	for i := range res.MapMetrics {
		if got, want := res.MapMetrics[i].InputRecords, plan.MapRecords[i]; got != want {
			t.Errorf("%s: map task %d records: executed %d, planned %d", strat.Name(), i, got, want)
		}
		if got, want := res.MapMetrics[i].OutputRecords, plan.MapEmits[i]; got != want {
			t.Errorf("%s: map task %d emits: executed %d, planned %d", strat.Name(), i, got, want)
		}
	}
	for j := range res.ReduceMetrics {
		if got, want := res.ReduceMetrics[j].InputRecords, plan.ReduceRecords[j]; got != want {
			t.Errorf("%s: reduce task %d records: executed %d, planned %d", strat.Name(), j, got, want)
		}
		if got, want := res.ReduceMetrics[j].Counter(ComparisonsCounter), plan.ReduceComparisons[j]; got != want {
			t.Errorf("%s: reduce task %d comparisons: executed %d, planned %d", strat.Name(), j, got, want)
		}
	}
	if got, want := plan.TotalComparisons(), x.Pairs(); got != want {
		t.Errorf("%s: plan total comparisons = %d, want P=%d", strat.Name(), got, want)
	}
}

// randomParts generates m partitions with block keys drawn from a skewed
// distribution — the fuzz input for plan/execution equivalence and
// completeness properties.
func randomParts(rng *rand.Rand, n, m, blocks int) entity.Partitions {
	es := make([]entity.Entity, n)
	for i := range es {
		// Quadratic skew: low block indexes are much more likely.
		b := int(float64(blocks) * rng.Float64() * rng.Float64())
		if b >= blocks {
			b = blocks - 1
		}
		es[i] = entity.New(fmt.Sprintf("e%04d", i), "k", fmt.Sprintf("b%03d", b))
	}
	parts := make(entity.Partitions, m)
	for _, e := range es {
		p := rng.Intn(m)
		parts[p] = append(parts[p], e)
	}
	return parts
}

func mustBDM(t *testing.T, parts entity.Partitions) *bdm.Matrix {
	t.Helper()
	x, err := bdm.FromPartitions(parts, "k", blocking.Identity())
	if err != nil {
		t.Fatalf("FromPartitions: %v", err)
	}
	return x
}

// annotatedInput builds the typed job input: each entity annotated with
// its blocking key read from the given attribute.
func annotatedInput(parts entity.Partitions, attr string) [][]AnnotatedEntity {
	input := make([][]AnnotatedEntity, len(parts))
	for i, p := range parts {
		input[i] = make([]AnnotatedEntity, len(p))
		for j, e := range p {
			input[i][j] = AnnotatedEntity{Key: e.Attr(attr), Value: e}
		}
	}
	return input
}

// runStrategy executes a strategy end to end with the given matcher and
// returns the result.
func runStrategy(t *testing.T, strat Strategy, x *bdm.Matrix, parts entity.Partitions, r int, match Matcher) *MatchJobResult {
	t.Helper()
	job, err := strat.Job(x, r, match)
	if err != nil {
		t.Fatalf("%s.Job: %v", strat.Name(), err)
	}
	res, err := job.Run(&mapreduce.Engine{}, annotatedInput(parts, "k"))
	if err != nil {
		t.Fatalf("%s: Run: %v", strat.Name(), err)
	}
	return res
}
