package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// Two-source example in the spirit of Figure 15: source R in one
// partition, source S in two, blocks w/x/y/z where y exists only in R
// (so it needs no processing) and z is the largest block.
func dualExample() (parts entity.Partitions, sources []bdm.Source) {
	mk := func(id, block string) entity.Entity { return entity.New(id, exAttr, block) }
	parts = entity.Partitions{
		// Π0 = R
		{mk("A", "w"), mk("B", "w"), mk("C", "z"), mk("D", "z"), mk("E", "y"), mk("F", "x")},
		// Π1 = S
		{mk("G", "w"), mk("H", "w"), mk("I", "z"), mk("J", "z")},
		// Π2 = S
		{mk("K", "x"), mk("L", "z")},
	}
	sources = []bdm.Source{bdm.SourceR, bdm.SourceS, bdm.SourceS}
	return parts, sources
}

func dualExampleBDM(t *testing.T) *bdm.DualMatrix {
	t.Helper()
	parts, sources := dualExample()
	x, err := bdm.FromDualPartitions(parts, sources, exAttr, blocking.Identity())
	if err != nil {
		t.Fatalf("FromDualPartitions: %v", err)
	}
	return x
}

func TestDualBDMExample(t *testing.T) {
	x := dualExampleBDM(t)
	// Blocks lexicographic: w, x, y, z.
	wantPairs := map[string]int64{"w": 4, "x": 1, "y": 0, "z": 6}
	var total int64
	for key, want := range wantPairs {
		k, ok := x.BlockIndex(key)
		if !ok {
			t.Fatalf("block %q missing", key)
		}
		if got := x.BlockPairs(k); got != want {
			t.Errorf("block %q pairs = %d, want %d", key, got, want)
		}
		total += want
	}
	if got := x.Pairs(); got != total {
		t.Errorf("Pairs = %d, want %d", got, total)
	}
	zk, _ := x.BlockIndex("z")
	if got := x.SourceSize(zk, bdm.SourceR); got != 2 {
		t.Errorf("|z,R| = %d, want 2", got)
	}
	if got := x.SourceSize(zk, bdm.SourceS); got != 3 {
		t.Errorf("|z,S| = %d, want 3", got)
	}
	// Entity offsets: L (partition 2, S) is the third S entity of z.
	if got := x.EntityOffset(zk, 2); got != 2 {
		t.Errorf("EntityOffset(z, Π2) = %d, want 2", got)
	}
}

// expectedDualPairs computes the cross-source pairs serially.
func expectedDualPairs(parts entity.Partitions, sources []bdm.Source) map[MatchPair]bool {
	blocksR := make(map[string][]entity.Entity)
	blocksS := make(map[string][]entity.Entity)
	for p, part := range parts {
		for _, e := range part {
			k := e.Attr(exAttr)
			if sources[p] == bdm.SourceR {
				blocksR[k] = append(blocksR[k], e)
			} else {
				blocksS[k] = append(blocksS[k], e)
			}
		}
	}
	want := make(map[MatchPair]bool)
	for k, rs := range blocksR {
		for _, er := range rs {
			for _, es := range blocksS[k] {
				want[NewMatchPair(er.ID, es.ID)] = true
			}
		}
	}
	return want
}

func runDualStrategy(t *testing.T, strat DualStrategy, x *bdm.DualMatrix, parts entity.Partitions, r int, match Matcher) *MatchJobResult {
	t.Helper()
	job, err := strat.Job(x, r, match)
	if err != nil {
		t.Fatalf("%s.Job: %v", strat.Name(), err)
	}
	res, err := job.Run(&mapreduce.Engine{}, annotatedInput(parts, exAttr))
	if err != nil {
		t.Fatalf("%s: Run: %v", strat.Name(), err)
	}
	return res
}

func TestDualExampleCompleteness(t *testing.T) {
	parts, sources := dualExample()
	x := dualExampleBDM(t)
	want := expectedDualPairs(parts, sources)
	for _, strat := range []DualStrategy{BlockSplitDual{}, PairRangeDual{}} {
		for _, r := range []int{1, 2, 3, 5, 11} {
			got := make(map[MatchPair]int)
			res := runDualStrategy(t, strat, x, parts, r, recordingMatcher(&got))
			if len(got) != len(want) {
				t.Fatalf("%s r=%d: %d distinct pairs, want %d", strat.Name(), r, len(got), len(want))
			}
			for p, c := range got {
				if !want[p] || c != 1 {
					t.Fatalf("%s r=%d: pair %v compared %d times (want once, expected=%v)", strat.Name(), r, p, c, want[p])
				}
			}
			if cmp := res.Counter(ComparisonsCounter); cmp != x.Pairs() {
				t.Errorf("%s r=%d: %d comparisons, want P=%d", strat.Name(), r, cmp, x.Pairs())
			}
		}
	}
}

func TestDualBlockSplitSplitsLargestBlock(t *testing.T) {
	x := dualExampleBDM(t)
	asg := buildDualAssignment(x, 3)
	// P=11, avg=11/3=3: w (4 pairs) and z (6 pairs) split; x (1) stays.
	if asg.avg != 3 {
		t.Fatalf("avg = %d, want 3", asg.avg)
	}
	zk, _ := x.BlockIndex("z")
	if _, ok := asg.tasks[dualTaskID{block: zk, rPart: -1, sPart: -1}]; ok {
		t.Error("block z was not split despite exceeding the average workload")
	}
	// Split tasks pair R partition 0 with S partitions 1 and 2.
	if task := asg.tasks[dualTaskID{block: zk, rPart: 0, sPart: 1}]; task == nil || task.comps != 4 {
		t.Errorf("task z.0x1 = %+v, want 4 comps", task)
	}
	if task := asg.tasks[dualTaskID{block: zk, rPart: 0, sPart: 2}]; task == nil || task.comps != 2 {
		t.Errorf("task z.0x2 = %+v, want 2 comps", task)
	}
	// Block y has no S entities: no task at all.
	yk, _ := x.BlockIndex("y")
	for id := range asg.tasks {
		if id.block == yk {
			t.Errorf("block y got match task %v despite empty S side", id)
		}
	}
}

func TestDualPlanMatchesExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		parts, sources := randomDualParts(rng, rng.Intn(120)+2, rng.Intn(3)+1, rng.Intn(3)+1, rng.Intn(6)+1)
		x, err := bdm.FromDualPartitions(parts, sources, exAttr, blocking.Identity())
		if err != nil {
			t.Fatalf("FromDualPartitions: %v", err)
		}
		r := rng.Intn(10) + 1
		for _, strat := range []DualStrategy{BlockSplitDual{}, PairRangeDual{}} {
			plan, err := strat.Plan(x, r)
			if err != nil {
				t.Fatalf("%s.Plan: %v", strat.Name(), err)
			}
			res := runDualStrategy(t, strat, x, parts, r, nil)
			for i := range res.MapMetrics {
				if got, want := res.MapMetrics[i].OutputRecords, plan.MapEmits[i]; got != want {
					t.Errorf("%s trial %d: map task %d emits %d, planned %d", strat.Name(), trial, i, got, want)
				}
			}
			for j := range res.ReduceMetrics {
				if got, want := res.ReduceMetrics[j].InputRecords, plan.ReduceRecords[j]; got != want {
					t.Errorf("%s trial %d: reduce task %d records %d, planned %d", strat.Name(), trial, j, got, want)
				}
				if got, want := res.ReduceMetrics[j].Counter(ComparisonsCounter), plan.ReduceComparisons[j]; got != want {
					t.Errorf("%s trial %d: reduce task %d comparisons %d, planned %d", strat.Name(), trial, j, got, want)
				}
			}
			if got := plan.TotalComparisons(); got != x.Pairs() {
				t.Errorf("%s trial %d: Σ comparisons = %d, want P=%d", strat.Name(), trial, got, x.Pairs())
			}
		}
	}
}

func TestDualCompletenessFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 15; trial++ {
		parts, sources := randomDualParts(rng, rng.Intn(100)+2, rng.Intn(3)+1, rng.Intn(3)+1, rng.Intn(5)+1)
		x, err := bdm.FromDualPartitions(parts, sources, exAttr, blocking.Identity())
		if err != nil {
			t.Fatalf("FromDualPartitions: %v", err)
		}
		want := expectedDualPairs(parts, sources)
		r := rng.Intn(8) + 1
		for _, strat := range []DualStrategy{BlockSplitDual{}, PairRangeDual{}} {
			got := make(map[MatchPair]int)
			runDualStrategy(t, strat, x, parts, r, recordingMatcher(&got))
			if len(got) != len(want) {
				t.Fatalf("%s trial %d r=%d: %d pairs, want %d", strat.Name(), trial, r, len(got), len(want))
			}
			for p, c := range got {
				if !want[p] || c != 1 {
					t.Fatalf("%s: pair %v count %d", strat.Name(), p, c)
				}
			}
		}
	}
}

func TestDualPairRangeBalanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		parts, sources := randomDualParts(rng, rng.Intn(200)+2, 2, 2, rng.Intn(5)+1)
		x, err := bdm.FromDualPartitions(parts, sources, exAttr, blocking.Identity())
		if err != nil {
			t.Fatal(err)
		}
		r := rng.Intn(12) + 1
		plan, err := PairRangeDual{}.Plan(x, r)
		if err != nil {
			t.Fatal(err)
		}
		q := NewRanges(x.Pairs(), r).Q
		for j, c := range plan.ReduceComparisons {
			if c > q {
				t.Fatalf("reduce task %d: %d comparisons > ceil(P/r)=%d", j, c, q)
			}
		}
	}
}

func TestDualRejectsBadParams(t *testing.T) {
	x := dualExampleBDM(t)
	for _, strat := range []DualStrategy{BlockSplitDual{}, PairRangeDual{}} {
		if _, err := strat.Job(x, 0, nil); err == nil {
			t.Errorf("%s.Job(r=0) succeeded", strat.Name())
		}
		if _, err := strat.Job(nil, 3, nil); err == nil {
			t.Errorf("%s.Job(nil) succeeded", strat.Name())
		}
		if _, err := strat.Plan(nil, 3); err == nil {
			t.Errorf("%s.Plan(nil) succeeded", strat.Name())
		}
	}
}

// randomDualParts builds mr R-partitions and ms S-partitions with skewed
// block membership.
func randomDualParts(rng *rand.Rand, n, mr, ms, blocks int) (entity.Partitions, []bdm.Source) {
	parts := make(entity.Partitions, mr+ms)
	sources := make([]bdm.Source, mr+ms)
	for i := range sources {
		if i >= mr {
			sources[i] = bdm.SourceS
		}
	}
	for i := 0; i < n; i++ {
		b := int(float64(blocks) * rng.Float64() * rng.Float64())
		if b >= blocks {
			b = blocks - 1
		}
		e := entity.New(fmt.Sprintf("e%04d", i), exAttr, fmt.Sprintf("b%03d", b))
		p := rng.Intn(mr + ms)
		parts[p] = append(parts[p], e)
	}
	return parts, sources
}
