package core

import (
	"reflect"
	"testing"

	"repro/internal/bdm"
	"repro/internal/entity"
	"repro/internal/runio"
)

// Round-trip fuzz tests for the strategy key/value codecs — every
// intermediate type the five redistribution strategies spill on the
// external dataflow.

func codecRoundTrip[T any](t *testing.T, v T) {
	t.Helper()
	c, ok := runio.Lookup[T]()
	if !ok {
		t.Fatalf("no codec registered for %T", v)
	}
	enc := c.Append(nil, v)
	got, n, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("Decode(%+v): %v", v, err)
	}
	if n != len(enc) {
		t.Fatalf("%+v: consumed %d of %d bytes", v, n, len(enc))
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip: got %+v, want %+v", got, v)
	}
	// Self-delimitation against a following record.
	enc2 := c.Append(enc, v)
	got, n, err = c.Decode(enc2)
	if err != nil || n != len(enc) || !reflect.DeepEqual(got, v) {
		t.Fatalf("%+v: decode with trailing record failed (n=%d, err=%v)", v, n, err)
	}
}

func FuzzBSKeyCodec(f *testing.F) {
	f.Add(0, 0, -1, -1)
	f.Add(3, 17, 2, 0)
	f.Add(-5, 1<<30, -1<<20, 7)
	f.Fuzz(func(t *testing.T, reduce, block, i, j int) {
		codecRoundTrip(t, BSKey{Reduce: reduce, Block: block, I: i, J: j})
	})
}

func FuzzBSValueCodec(f *testing.F) {
	f.Add("p1", "canon eos 5d", 3)
	f.Add("tab\tid", "title\nwith\nnewlines", -1)
	f.Add(string([]byte{0xff, 0xfe}), string([]byte{0x00, 0xc0}), 1<<30)
	f.Fuzz(func(t *testing.T, id, title string, part int) {
		codecRoundTrip(t, bsValue{E: entity.New(id, "title", title), Partition: part})
	})
}

func FuzzPRKeyCodec(f *testing.F) {
	f.Add(0, 0, int64(0))
	f.Add(7, 123, int64(-9))
	f.Add(-1, 1<<28, int64(1)<<60)
	f.Fuzz(func(t *testing.T, rng, block int, index int64) {
		codecRoundTrip(t, PRKey{Range: rng, Block: block, Index: index})
	})
}

func FuzzBSDKeyCodec(f *testing.F) {
	f.Add(0, 0, -1, -1, 0)
	f.Add(2, 9, 1, 3, 1)
	f.Fuzz(func(t *testing.T, reduce, block, rp, sp, src int) {
		codecRoundTrip(t, BSDKey{Reduce: reduce, Block: block, RPart: rp, SPart: sp, Source: bdm.Source(src)})
	})
}

func FuzzPRDKeyCodec(f *testing.F) {
	f.Add(0, 0, 0, int64(0))
	f.Add(5, 44, 1, int64(1)<<40)
	f.Fuzz(func(t *testing.T, rng, block, src int, index int64) {
		codecRoundTrip(t, PRDKey{Range: rng, Block: block, Source: bdm.Source(src), Index: index})
	})
}

// TestStrategyValueCodecsRegistered pins the full set of intermediate
// types the strategies shuffle: a new strategy whose types lack codecs
// would silently lose external-mode support.
func TestStrategyValueCodecsRegistered(t *testing.T) {
	codecRoundTrip(t, "blocking-key")                 // Basic key
	codecRoundTrip(t, entity.New("id", "title", "x")) // Basic/PairRange/dual values
	codecRoundTrip(t, BSKey{Reduce: 1, Block: 2, I: -1, J: -1})
	codecRoundTrip(t, bsValue{E: entity.New("a", "t", "v"), Partition: 0})
	codecRoundTrip(t, PRKey{Range: 1, Block: 2, Index: 3})
	codecRoundTrip(t, BSDKey{Reduce: 1, Block: 2, RPart: -1, SPart: -1, Source: bdm.SourceS})
	codecRoundTrip(t, PRDKey{Range: 1, Block: 2, Source: bdm.SourceR, Index: 4})
}
