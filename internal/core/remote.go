package core

import (
	"fmt"

	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// RemoteRunnableFor wraps a strategy's match job for worker-side
// execution. MatchJob erases the strategy's intermediate key/value
// types, and a worker must recover them to run typed attempts — this
// type switch is the closed enumeration of every concrete job shape the
// strategies build (one case per strategy family).
func RemoteRunnableFor(j MatchJob) (mapreduce.RemoteRunnable, error) {
	switch jt := j.(type) {
	case *mapreduce.Job[AnnotatedEntity, string, entity.Entity, MatchOutput]:
		return mapreduce.NewRemoteRunnable(jt) // Basic
	case *mapreduce.Job[AnnotatedEntity, BSKey, bsValue, MatchOutput]:
		return mapreduce.NewRemoteRunnable(jt) // BlockSplit
	case *mapreduce.Job[AnnotatedEntity, PRKey, entity.Entity, MatchOutput]:
		return mapreduce.NewRemoteRunnable(jt) // PairRange
	case *mapreduce.Job[AnnotatedEntity, BSDKey, entity.Entity, MatchOutput]:
		return mapreduce.NewRemoteRunnable(jt) // DualBlockSplit
	case *mapreduce.Job[AnnotatedEntity, PRDKey, entity.Entity, MatchOutput]:
		return mapreduce.NewRemoteRunnable(jt) // DualPairRange
	default:
		return nil, fmt.Errorf("core: no remote execution support for match job type %T", j)
	}
}
