package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadStatsUniform(t *testing.T) {
	st := ComputeLoadStats([]int64{10, 10, 10, 10})
	if st.Total != 40 || st.Max != 10 || st.Min != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.CV != 0 || st.Gini != 0 || st.MaxOverMean != 1 {
		t.Errorf("uniform loads should have zero dispersion: %+v", st)
	}
}

func TestLoadStatsAllOnOne(t *testing.T) {
	st := ComputeLoadStats([]int64{100, 0, 0, 0})
	if st.MaxOverMean != 4 {
		t.Errorf("MaxOverMean = %g, want 4", st.MaxOverMean)
	}
	// Gini of (0,0,0,100) = 3/4.
	if math.Abs(st.Gini-0.75) > 1e-9 {
		t.Errorf("Gini = %g, want 0.75", st.Gini)
	}
}

func TestLoadStatsEmptyAndZero(t *testing.T) {
	if st := ComputeLoadStats(nil); st.Tasks != 0 || st.Gini != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if st := ComputeLoadStats([]int64{0, 0}); st.Gini != 0 || st.CV != 0 {
		t.Errorf("all-zero stats = %+v", st)
	}
}

// TestGiniRangeProperty: Gini is always in [0,1) and invariant under
// permutation.
func TestGiniRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		loads := make([]int64, len(raw))
		for i, r := range raw {
			loads[i] = int64(r)
		}
		g := gini(loads)
		if g < 0 || g >= 1 {
			return len(loads) == 0 && g == 0
		}
		// Permutation invariance.
		rng := rand.New(rand.NewSource(1))
		shuffled := append([]int64(nil), loads...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return math.Abs(gini(shuffled)-g) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStrategyBalanceStats quantifies the paper's balance claims on a
// skewed dataset: Basic's straggler factor is large, the balanced
// strategies stay close to 1.
func TestStrategyBalanceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	parts := randomParts(rng, 500, 4, 3) // few blocks → heavy skew
	x := mustBDM(t, parts)
	r := 8

	basic, err := Basic{}.Plan(x, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := BlockSplit{}.Plan(x, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PairRange{}.Plan(x, 4, r)
	if err != nil {
		t.Fatal(err)
	}

	basicStats := basic.ComparisonStats()
	bsStats := bs.ComparisonStats()
	prStats := pr.ComparisonStats()

	if basicStats.MaxOverMean < 2 {
		t.Errorf("Basic straggler factor = %.2f, expected heavy imbalance on skewed input", basicStats.MaxOverMean)
	}
	if bsStats.MaxOverMean > 1.5 {
		t.Errorf("BlockSplit straggler factor = %.2f, want near 1", bsStats.MaxOverMean)
	}
	if prStats.MaxOverMean > 1.01 {
		t.Errorf("PairRange straggler factor = %.2f, want ~1 (perfect ranges)", prStats.MaxOverMean)
	}
	if !(prStats.Gini <= bsStats.Gini && bsStats.Gini < basicStats.Gini) {
		t.Errorf("Gini ordering violated: PairRange %.3f, BlockSplit %.3f, Basic %.3f",
			prStats.Gini, bsStats.Gini, basicStats.Gini)
	}
}
