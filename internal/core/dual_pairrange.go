package core

import (
	"fmt"

	"repro/internal/bdm"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// PairRangeDual is the two-source extension of PairRange described in
// Appendix I-B. Within block Φi, all |Φi,R|×|Φi,S| cross-source cells
// are enumerated with
//
//	c(x, y, |Φi,S|) = x·|Φi,S| + y
//
// (x indexes R entities, y indexes S entities) and blocks are
// concatenated with offsets o(i) = Σ_{k<i} |Φk,R|·|Φk,S|. The pair-index
// space [0, P) is split into r ranges exactly as in the one-source case.
type PairRangeDual struct{}

// Name implements DualStrategy.
func (PairRangeDual) Name() string { return "PairRange" }

// PRDKey is the composite map-output key: range index ‖ block index ‖
// source ‖ entity index. Sorting on the whole key places all R entities
// of a group (ascending index) before all S entities.
type PRDKey struct {
	Range  int
	Block  int
	Source bdm.Source
	Index  int64
}

func (k PRDKey) String() string {
	return fmt.Sprintf("%d.%d.%s.%d", k.Range, k.Block, k.Source, k.Index)
}

// prdValue is the reduce-side buffer entry for R entities; source and
// index travel in the record's PRDKey, so the shuffle carries the bare
// entity.
type prdValue struct {
	E     entity.Entity
	Index int64
}

func comparePRDKeys(a, b PRDKey) int {
	if c := mapreduce.CompareInts(a.Range, b.Range); c != 0 {
		return c
	}
	if c := mapreduce.CompareInts(a.Block, b.Block); c != 0 {
		return c
	}
	if c := mapreduce.CompareInts(int(a.Source), int(b.Source)); c != 0 {
		return c
	}
	return mapreduce.CompareInt64s(a.Index, b.Index)
}

func groupPRDKeys(a, b PRDKey) int {
	if c := mapreduce.CompareInts(a.Range, b.Range); c != 0 {
		return c
	}
	return mapreduce.CompareInts(a.Block, b.Block)
}

// prdKeyCoding packs a PRDKey exactly: range ‖ block in the high word
// (the grouping key, hence GroupBits 64), the source bit above the
// 63-bit entity index in the low word.
func prdKeyCoding(x *bdm.DualMatrix, r int) mapreduce.KeyCoding[PRDKey] {
	if x.NumBlocks() > 1<<32 || r > 1<<31 {
		return mapreduce.KeyCoding[PRDKey]{}
	}
	return mapreduce.KeyCoding[PRDKey]{
		Encode: func(k PRDKey) mapreduce.Code {
			return mapreduce.Code{
				Hi: uint64(uint32(k.Range))<<32 | uint64(uint32(k.Block)),
				Lo: uint64(k.Source)<<63 | uint64(k.Index),
			}
		},
		Exact:     true,
		GroupBits: 64,
	}
}

// dualRelevantRanges computes the ranges containing at least one pair of
// the entity with index idx in block k. R entities own one contiguous
// run of pair indexes (their matrix row); S entities own an arithmetic
// progression with stride |Φk,S| (their matrix column), whose range
// sequence is non-decreasing and is enumerated by galloping.
func dualRelevantRanges(x *bdm.DualMatrix, ranges Ranges, k int, src bdm.Source, idx int64, out []int) []int {
	out = out[:0]
	nr := int64(x.SourceSize(k, bdm.SourceR))
	ns := int64(x.SourceSize(k, bdm.SourceS))
	if nr == 0 || ns == 0 {
		return out
	}
	off := x.PairOffset(k)
	if src == bdm.SourceR {
		first := ranges.Index(off + idx*ns)
		last := ranges.Index(off + idx*ns + ns - 1)
		for r := first; r <= last; r++ {
			out = append(out, r)
		}
		return out
	}
	// Source S: pairs off + xr·ns + idx for xr in [0, nr).
	for xr := int64(0); xr < nr; {
		p := off + xr*ns + idx
		r := ranges.Index(p)
		out = append(out, r)
		_, hi := ranges.Bounds(r)
		xr = searchFirstAtLeast(xr+1, nr, func(xx int64) bool {
			return off+xx*ns+idx >= hi
		})
	}
	return out
}

// Job implements DualStrategy. Input records must be blocking-key-
// annotated entities, one source per input partition.
func (PairRangeDual) Job(x *bdm.DualMatrix, r int, match Matcher) (MatchJob, error) {
	return pairRangeDualJob(x, r, matchKernel{match: match})
}

// JobPrepared implements PreparedDualStrategy.
func (PairRangeDual) JobPrepared(x *bdm.DualMatrix, r int, pm PreparedMatcher) (MatchJob, error) {
	return pairRangeDualJob(x, r, preparedKernel(pm))
}

func pairRangeDualJob(x *bdm.DualMatrix, r int, kern matchKernel) (MatchJob, error) {
	if err := validateJobParams("PairRangeDual", r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: PairRangeDual requires a dual BDM")
	}
	ranges := NewRanges(x.Pairs(), r)
	return &mapreduce.Job[AnnotatedEntity, PRDKey, entity.Entity, MatchOutput]{
		Name:           "pairrange-dual",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[AnnotatedEntity, PRDKey, entity.Entity] {
			return &prdMapper{x: x, ranges: ranges}
		},
		NewReducer: func() mapreduce.Reducer[PRDKey, entity.Entity, MatchOutput] {
			return &prdReducer{x: x, ranges: ranges, kern: kern}
		},
		Partition: func(key PRDKey, r int) int { return key.Range % r },
		Compare:   comparePRDKeys,
		Group:     groupPRDKeys,
		Coding:    prdKeyCoding(x, r),
	}, nil
}

type prdMapper struct {
	x           *bdm.DualMatrix
	ranges      Ranges
	source      bdm.Source
	entityIndex []int64
	scratch     []int
}

func (mp *prdMapper) Configure(m, _, partitionIndex int) {
	if m != mp.x.NumPartitions() {
		panic(fmt.Sprintf("core: PairRangeDual: job has %d map tasks but dual BDM was built for %d partitions", m, mp.x.NumPartitions()))
	}
	mp.source = mp.x.PartitionSource(partitionIndex)
	mp.entityIndex = make([]int64, mp.x.NumBlocks())
	for k := range mp.entityIndex {
		mp.entityIndex[k] = int64(mp.x.EntityOffset(k, partitionIndex))
	}
}

func (mp *prdMapper) Map(ctx *mapreduce.MapContext[AnnotatedEntity, PRDKey, entity.Entity], rec AnnotatedEntity) {
	blockKey := rec.Key
	e := rec.Value
	k, ok := mp.x.BlockIndex(blockKey)
	if !ok {
		panic(fmt.Sprintf("core: PairRangeDual: blocking key %q not present in dual BDM", blockKey))
	}
	idx := mp.entityIndex[k]
	mp.entityIndex[k]++
	mp.scratch = dualRelevantRanges(mp.x, mp.ranges, k, mp.source, idx, mp.scratch)
	for _, rg := range mp.scratch {
		ctx.Emit(PRDKey{Range: rg, Block: k, Source: mp.source, Index: idx}, e)
	}
}

type prdReducer struct {
	x      *bdm.DualMatrix
	ranges Ranges
	kern   matchKernel
	task   int
	buffer []prdValue
	prep   []PreparedEntity
}

func (rd *prdReducer) Configure(_, _, taskIndex int) { rd.task = taskIndex }

// Reduce receives one (range, block) group with all relevant R entities
// (ascending index) followed by all relevant S entities. For each S
// entity it scans the R buffer; pair indexes grow with the R index, so
// the scan stops once the range is exceeded. With a prepared matcher,
// every entity is prepared exactly once per group.
func (rd *prdReducer) Reduce(ctx *matchCtx, k PRDKey, values []mapreduce.Rec[PRDKey, entity.Entity]) {
	ns := int64(rd.x.SourceSize(k.Block, bdm.SourceS))
	off := rd.x.PairOffset(k.Block)
	// Direct bound comparisons replace the per-pair Ranges.Index
	// division; see prReducer.Reduce for the equivalence argument.
	lo, hi := rd.ranges.Bounds(rd.task)
	if pm := rd.kern.pm; pm != nil {
		rd.buffer, rd.prep = rd.buffer[:0], rd.prep[:0]
		for _, v := range values {
			pv := prdValue{E: v.Value, Index: v.Key.Index}
			if v.Key.Source == bdm.SourceR {
				rd.buffer = append(rd.buffer, pv)
				rd.prep = append(rd.prep, pm.Prepare(pv.E))
				continue
			}
			p2 := pm.Prepare(pv.E)
			for i, b := range rd.buffer {
				p := off + b.Index*ns + pv.Index
				if p >= hi {
					break
				}
				if p >= lo {
					matchAndEmitPrepared(ctx, pm, b.E, pv.E, rd.prep[i], p2)
				}
			}
			rd.kern.release(p2)
		}
		rd.kern.releaseAll(rd.prep)
		return
	}
	rd.buffer = rd.buffer[:0]
	for _, v := range values {
		pv := prdValue{E: v.Value, Index: v.Key.Index}
		if v.Key.Source == bdm.SourceR {
			rd.buffer = append(rd.buffer, pv)
			continue
		}
		for _, b := range rd.buffer {
			p := off + b.Index*ns + pv.Index
			if p >= hi {
				break
			}
			if p >= lo {
				matchAndEmit(ctx, rd.kern.match, b.E, pv.E)
			}
		}
	}
}

// Plan implements DualStrategy analytically: for each range and each
// block it overlaps, the relevant R entities form one contiguous index
// interval (the covered matrix rows) and the relevant S entities a union
// of at most three intervals (partial first row, full middle rows,
// partial last row).
func (PairRangeDual) Plan(x *bdm.DualMatrix, r int) (*Plan, error) {
	if err := validateJobParams("PairRangeDual", r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: PairRangeDual.Plan requires a dual BDM")
	}
	m := x.NumPartitions()
	ranges := NewRanges(x.Pairs(), r)
	p := newPlan("PairRangeDual", m, r)

	for pi := 0; pi < m; pi++ {
		for k := 0; k < x.NumBlocks(); k++ {
			p.MapRecords[pi] += int64(x.SizeIn(k, pi))
		}
	}

	k := 0
	for j := 0; j < r; j++ {
		lo, hi := ranges.Bounds(j)
		p.ReduceComparisons[j] = hi - lo
		if hi <= lo {
			continue
		}
		for k < x.NumBlocks() && x.PairOffset(k)+x.BlockPairs(k) <= lo {
			k++
		}
		for kk := k; kk < x.NumBlocks() && x.PairOffset(kk) < hi; kk++ {
			bLo, bHi := x.PairOffset(kk), x.PairOffset(kk)+x.BlockPairs(kk)
			if bHi <= bLo {
				continue
			}
			ns := int64(x.SourceSize(kk, bdm.SourceS))
			a := max64(lo, bLo) - bLo
			b := min64(hi, bHi) - bLo
			xa, xb := a/ns, (b-1)/ns
			ya, yb := a%ns, (b-1)%ns

			rIvs := []interval{{xa, xb + 1}}
			var sIvs []interval
			if xa == xb {
				sIvs = mergeIntervals([]interval{{ya, yb + 1}})
			} else {
				cand := []interval{{ya, ns}, {0, yb + 1}}
				if xb > xa+1 {
					cand = append(cand, interval{0, ns})
				}
				sIvs = mergeIntervals(cand)
			}
			p.ReduceRecords[j] += intervalsTotal(rIvs) + intervalsTotal(sIvs)

			// Charge map emits per owning partition.
			offR, offS := int64(0), int64(0)
			for pi := 0; pi < m; pi++ {
				size := int64(x.SizeIn(kk, pi))
				if size == 0 {
					continue
				}
				if x.PartitionSource(pi) == bdm.SourceR {
					for _, iv := range rIvs {
						p.MapEmits[pi] += intersectLen(iv, offR, offR+size)
					}
					offR += size
				} else {
					for _, iv := range sIvs {
						p.MapEmits[pi] += intersectLen(iv, offS, offS+size)
					}
					offS += size
				}
			}
		}
	}
	return p, nil
}
