package core

import (
	"fmt"
	"slices"

	"repro/internal/bdm"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// BlockSplit implements the block-based load balancing strategy of
// Section IV. Blocks whose pair count does not exceed the average reduce
// workload P/r are processed like in Basic, as a single "match task".
// Larger blocks are split along the m input partitions into m sub-blocks,
// yielding m self-join match tasks (k.i) and m·(m−1)/2 cross-product
// match tasks (k.i×j). Match tasks are assigned to reduce tasks greedily
// in descending size order, each to the currently least-loaded task.
//
// The zero value is the paper's strategy. MaxEntitiesPerTask additionally
// enforces the memory constraint Section IV alludes to ("assigns entire
// blocks to reduce tasks if this does not violate load balancing or
// memory constraints"): a block whose entity count exceeds the limit is
// split even when its pair count is below the average reduce workload,
// bounding the number of entities any reduce call must buffer in memory.
type BlockSplit struct {
	// MaxEntitiesPerTask bounds the entities a single match task may
	// hold (0 = unlimited, the paper's default behaviour).
	MaxEntitiesPerTask int
}

// Name implements Strategy.
func (BlockSplit) Name() string { return "BlockSplit" }

// NeedsBDM implements Strategy.
func (BlockSplit) NeedsBDM() bool { return true }

// BSKey is the composite map-output key: reduce index ‖ block index ‖
// split. The partition function uses only Reduce; sorting and grouping
// use (Block, I, J). The split component (I, J) encodes the match task:
// I = J = −1 for an unsplit block (k.*), I = J = i for sub-block k.i,
// and I > J for the cross product k.J×I.
type BSKey struct {
	Reduce int
	Block  int
	I, J   int
}

func (k BSKey) String() string {
	switch {
	case k.I < 0:
		return fmt.Sprintf("%d.%d.*", k.Reduce, k.Block)
	case k.I == k.J:
		return fmt.Sprintf("%d.%d.%d", k.Reduce, k.Block, k.I)
	default:
		return fmt.Sprintf("%d.%d.%dx%d", k.Reduce, k.Block, k.J, k.I)
	}
}

// bsValue annotates an entity with its input partition index so the
// reduce function of a cross-product task can separate the two
// sub-blocks.
type bsValue struct {
	E         entity.Entity
	Partition int
}

// taskID identifies one match task.
type taskID struct {
	block int
	i, j  int // −1,−1 = unsplit; i==j = sub-block; i>j = cross product
}

// matchTask is one unit of reduce-side work with its assignment.
type matchTask struct {
	id     taskID
	comps  int64
	reduce int
}

// Assignment is the deterministic outcome of BlockSplit's match-task
// creation and greedy distribution; both the executable job and the
// analytic planner are driven by it. Exported for the ablation
// benchmarks, which compare the greedy heuristic against alternatives.
type Assignment struct {
	tasks   map[taskID]*matchTask
	ordered []*matchTask // descending comparisons
	arena   []matchTask  // chunked backing store of the task structs
	loads   []int64      // per reduce task
	avg     int64        // compsPerReduceTask = P/r
	split   []bool       // per block: was it split into sub-blocks?
}

// Split reports whether block k was split into sub-blocks.
func (a *Assignment) Split(k int) bool { return a.split[k] }

// ReduceLoads returns the per-reduce-task comparison loads.
func (a *Assignment) ReduceLoads() []int64 { return a.loads }

// NumTasks returns the number of match tasks created.
func (a *Assignment) NumTasks() int { return len(a.ordered) }

// AssignFunc chooses reduce tasks for match tasks; tasks arrive in
// descending comparison order. The default is greedy least-loaded.
type AssignFunc func(tasks []*matchTask, r int) (loads []int64)

// GreedyAssign implements the paper's heuristic: process match tasks in
// descending size and give each to the reduce task with the fewest
// already-assigned comparisons (ties: lowest index). The heap is
// hand-sifted rather than driven through container/heap, whose
// interface methods box one loadEntry per push and pop — two heap
// allocations per match task, which profiling showed dominating the
// planning phase on large assignments.
func GreedyAssign(tasks []*matchTask, r int) []int64 {
	loads := make([]int64, r)
	h := make(loadHeap, r)
	for i := range h {
		h[i] = loadEntry{load: 0, idx: i}
	}
	// All-zero loads with ascending indices is already a valid min-heap.
	for _, t := range tasks {
		t.reduce = h[0].idx
		h[0].load += t.comps
		loads[h[0].idx] = h[0].load
		h.siftDown(0)
	}
	return loads
}

// RoundRobinAssign is the naive baseline for the assignment ablation:
// match task n goes to reduce task n mod r regardless of size.
func RoundRobinAssign(tasks []*matchTask, r int) []int64 {
	loads := make([]int64, r)
	for n, t := range tasks {
		t.reduce = n % r
		loads[t.reduce] += t.comps
	}
	return loads
}

// BuildAssignment performs match-task creation (Algorithm 1, lines 6-21)
// and reduce-task assignment (lines 22-27) from the BDM, using the given
// assignment policy (nil = GreedyAssign).
func BuildAssignment(x *bdm.Matrix, r int, assign AssignFunc) *Assignment {
	return buildAssignment(x, r, assign, 0)
}

func buildAssignment(x *bdm.Matrix, r int, assign AssignFunc, maxEntities int) *Assignment {
	if assign == nil {
		assign = GreedyAssign
	}
	m := x.NumPartitions()
	a := &Assignment{
		tasks: make(map[taskID]*matchTask),
		split: make([]bool, x.NumBlocks()),
	}
	if p := x.Pairs(); p > 0 {
		a.avg = p / int64(r)
	}
	for k := 0; k < x.NumBlocks(); k++ {
		comps := x.BlockPairs(k)
		if comps <= a.avg && (maxEntities <= 0 || x.Size(k) <= maxEntities) {
			a.add(taskID{block: k, i: -1, j: -1}, comps)
			continue
		}
		// Split along the input partitions; skip combinations with an
		// empty side (|Φik|·|Φjk| = 0).
		a.split[k] = true
		for i := 0; i < m; i++ {
			ni := int64(x.SizeIn(k, i))
			for j := 0; j <= i; j++ {
				nj := int64(x.SizeIn(k, j))
				if ni*nj == 0 {
					continue
				}
				if i == j {
					a.add(taskID{block: k, i: i, j: i}, ni*(ni-1)/2)
				} else {
					a.add(taskID{block: k, i: i, j: j}, ni*nj)
				}
			}
		}
	}
	// Descending by comparisons; ties by ascending (block, i, j) for
	// determinism (this reproduces the ordering of the paper's example).
	// The tie-break makes the order total, so a non-stable sort on the
	// concrete type suffices.
	slices.SortFunc(a.ordered, func(tp, tq *matchTask) int {
		if tp.comps != tq.comps {
			if tp.comps > tq.comps {
				return -1
			}
			return 1
		}
		if c := tp.id.block - tq.id.block; c != 0 {
			return c
		}
		if c := tp.id.i - tq.id.i; c != 0 {
			return c
		}
		return tp.id.j - tq.id.j
	})
	a.loads = assign(a.ordered, r)
	return a
}

// add creates one match task. Tasks live in chunked arenas — a split
// block creates up to m(m+1)/2 of them, and one heap object each was
// the planning phase's dominant allocation. A chunk is never grown, so
// pointers into it stay valid when the next chunk is started.
func (a *Assignment) add(id taskID, comps int64) {
	if len(a.arena) == cap(a.arena) {
		a.arena = make([]matchTask, 0, 1024)
	}
	a.arena = append(a.arena, matchTask{id: id, comps: comps})
	t := &a.arena[len(a.arena)-1]
	a.tasks[id] = t
	a.ordered = append(a.ordered, t)
}

// lookup returns the match task for (block k, i, j), nil if absent.
func (a *Assignment) lookup(k, i, j int) *matchTask {
	return a.tasks[taskID{block: k, i: i, j: j}]
}

type loadEntry struct {
	load int64
	idx  int
}

type loadHeap []loadEntry

func (h loadHeap) less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].idx < h[j].idx
}

// siftDown restores the min-heap property after h[i] grew.
func (h loadHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		s := l
		if r := l + 1; r < n && h.less(r, l) {
			s = r
		}
		if !h.less(s, i) {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

func compareBSKeys(a, b BSKey) int {
	if c := mapreduce.CompareInts(a.Block, b.Block); c != 0 {
		return c
	}
	if c := mapreduce.CompareInts(a.I, b.I); c != 0 {
		return c
	}
	return mapreduce.CompareInts(a.J, b.J)
}

// bsKeyCoding packs a BSKey into an exact order-preserving code:
// block ‖ i+1 ‖ j+1 (the +1 maps the unsplit sentinel −1 to 0, keeping
// all components non-negative). Group ≡ Compare, so grouping is full
// code equality. The bounds are far beyond any realistic BDM; if they
// are ever exceeded the coding is disabled and the engine falls back to
// the struct comparator.
func bsKeyCoding(x *bdm.Matrix) mapreduce.KeyCoding[BSKey] {
	if x.NumBlocks() > 1<<32 || x.NumPartitions() >= 1<<31 {
		return mapreduce.KeyCoding[BSKey]{}
	}
	return mapreduce.KeyCoding[BSKey]{
		Encode: func(k BSKey) mapreduce.Code {
			return mapreduce.Code{
				Hi: uint64(uint32(k.Block))<<32 | uint64(uint32(k.I+1)),
				Lo: uint64(uint32(k.J + 1)),
			}
		},
		Exact:     true,
		GroupBits: 128,
	}
}

// Job implements Strategy (Algorithm 1). Input records must be the BDM
// job's side output (blocking-key-annotated entities).
func (bs BlockSplit) Job(x *bdm.Matrix, r int, match Matcher) (MatchJob, error) {
	return blockSplitJob(x, r, matchKernel{match: match}, nil, bs.MaxEntitiesPerTask)
}

// JobPrepared implements PreparedStrategy.
func (bs BlockSplit) JobPrepared(x *bdm.Matrix, r int, pm PreparedMatcher) (MatchJob, error) {
	return blockSplitJob(x, r, preparedKernel(pm), nil, bs.MaxEntitiesPerTask)
}

// JobWithAssign is Job with a custom assignment policy (for ablations).
func (bs BlockSplit) JobWithAssign(x *bdm.Matrix, r int, match Matcher, assign AssignFunc) (MatchJob, error) {
	return blockSplitJob(x, r, matchKernel{match: match}, assign, bs.MaxEntitiesPerTask)
}

func blockSplitJob(x *bdm.Matrix, r int, kern matchKernel, assign AssignFunc, maxEntities int) (MatchJob, error) {
	if err := validateJobParams("BlockSplit", r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: BlockSplit requires a BDM")
	}
	// The assignment is deterministic and identical in every map task;
	// compute it once and share it read-only (each Hadoop map task would
	// recompute it from the distributed BDM file).
	asg := buildAssignment(x, r, assign, maxEntities)
	return &mapreduce.Job[AnnotatedEntity, BSKey, bsValue, MatchOutput]{
		Name:           "blocksplit",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[AnnotatedEntity, BSKey, bsValue] {
			return &bsMapper{x: x, asg: asg}
		},
		NewReducer: func() mapreduce.Reducer[BSKey, bsValue, MatchOutput] {
			return &bsReducer{kern: kern}
		},
		Partition: func(key BSKey, r int) int { return key.Reduce % r },
		Compare:   compareBSKeys,
		Group:     compareBSKeys,
		Coding:    bsKeyCoding(x),
	}, nil
}

type bsMapper struct {
	x         *bdm.Matrix
	asg       *Assignment
	m         int
	partition int
}

func (mp *bsMapper) Configure(m, _, partitionIndex int) {
	if m != mp.x.NumPartitions() {
		panic(fmt.Sprintf("core: BlockSplit: job has %d map tasks but BDM was built for %d partitions", m, mp.x.NumPartitions()))
	}
	mp.m = m
	mp.partition = partitionIndex
}

// Map implements Algorithm 1 lines 29-44: one output per unsplit block
// entity, m outputs (own sub-block + m−1 combinations) per split-block
// entity.
func (mp *bsMapper) Map(ctx *mapreduce.MapContext[AnnotatedEntity, BSKey, bsValue], rec AnnotatedEntity) {
	blockKey := rec.Key
	e := rec.Value
	k, ok := mp.x.BlockIndex(blockKey)
	if !ok {
		panic(fmt.Sprintf("core: BlockSplit: blocking key %q not present in BDM", blockKey))
	}
	if !mp.asg.split[k] {
		if mp.x.BlockPairs(k) == 0 {
			return // singleton block: nothing to compare
		}
		t := mp.asg.lookup(k, -1, -1)
		ctx.Emit(BSKey{Reduce: t.reduce, Block: k, I: -1, J: -1},
			bsValue{E: e, Partition: mp.partition})
		return
	}
	for i := 0; i < mp.m; i++ {
		hi, lo := mp.partition, i
		if hi < lo {
			hi, lo = lo, hi
		}
		t := mp.asg.lookup(k, hi, lo)
		if t == nil {
			continue // empty counterpart partition
		}
		ctx.Emit(BSKey{Reduce: t.reduce, Block: k, I: hi, J: lo},
			bsValue{E: e, Partition: mp.partition})
	}
}

type bsReducer struct {
	kern   matchKernel
	buffer []entity.Entity
	prep   []PreparedEntity
}

func (rd *bsReducer) Configure(_, _, _ int) {}

// Reduce implements Algorithm 1 lines 48-65. For a self-join task
// (unsplit block or single sub-block, I == J) it compares all values
// pairwise. For a cross-product task it buffers the first partition's
// entities (the stable map-task-ordered merge guarantees they arrive
// first) and compares every later entity against the buffer. With a
// prepared matcher, every buffered entity is prepared exactly once; in a
// cross-product task the non-buffered side's entity is prepared once and
// compared against the whole buffer.
func (rd *bsReducer) Reduce(ctx *matchCtx, k BSKey, values []mapreduce.Rec[BSKey, bsValue]) {
	if rd.kern.pm != nil {
		rd.reducePrepared(ctx, k, values)
		return
	}
	rd.buffer = rd.buffer[:0]
	if k.I == k.J {
		for _, v := range values {
			e2 := v.Value.E
			for _, e1 := range rd.buffer {
				matchAndEmit(ctx, rd.kern.match, e1, e2)
			}
			rd.buffer = append(rd.buffer, e2)
		}
		return
	}
	firstPartition := values[0].Value.Partition
	for _, v := range values {
		bv := v.Value
		if bv.Partition == firstPartition {
			rd.buffer = append(rd.buffer, bv.E)
			continue
		}
		for _, e1 := range rd.buffer {
			matchAndEmit(ctx, rd.kern.match, e1, bv.E)
		}
	}
}

func (rd *bsReducer) reducePrepared(ctx *matchCtx, k BSKey, values []mapreduce.Rec[BSKey, bsValue]) {
	pm := rd.kern.pm
	rd.buffer, rd.prep = rd.buffer[:0], rd.prep[:0]
	if k.I == k.J {
		for _, v := range values {
			e2 := v.Value.E
			p2 := pm.Prepare(e2)
			for i, e1 := range rd.buffer {
				matchAndEmitPrepared(ctx, pm, e1, e2, rd.prep[i], p2)
			}
			rd.buffer = append(rd.buffer, e2)
			rd.prep = append(rd.prep, p2)
		}
		rd.kern.releaseAll(rd.prep)
		return
	}
	firstPartition := values[0].Value.Partition
	for _, v := range values {
		bv := v.Value
		if bv.Partition == firstPartition {
			rd.buffer = append(rd.buffer, bv.E)
			rd.prep = append(rd.prep, pm.Prepare(bv.E))
			continue
		}
		p2 := pm.Prepare(bv.E)
		for i, e1 := range rd.buffer {
			matchAndEmitPrepared(ctx, pm, e1, bv.E, rd.prep[i], p2)
		}
		rd.kern.release(p2)
	}
	rd.kern.releaseAll(rd.prep)
}

// Plan implements Strategy: it reuses the exact match-task creation and
// assignment of the executable job and derives all per-task workloads
// from the BDM alone.
func (bs BlockSplit) Plan(x *bdm.Matrix, m, r int) (*Plan, error) {
	return blockSplitPlan(x, m, r, nil, bs.MaxEntitiesPerTask)
}

// PlanWithAssign is Plan with a custom assignment policy (ablations).
func (bs BlockSplit) PlanWithAssign(x *bdm.Matrix, m, r int, assign AssignFunc) (*Plan, error) {
	return blockSplitPlan(x, m, r, assign, bs.MaxEntitiesPerTask)
}

func blockSplitPlan(x *bdm.Matrix, m, r int, assign AssignFunc, maxEntities int) (*Plan, error) {
	if err := validatePlanParams("BlockSplit", m, r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: BlockSplit.Plan requires a BDM")
	}
	if x.NumPartitions() != m {
		return nil, fmt.Errorf("core: BlockSplit.Plan: BDM has %d partitions, want m=%d", x.NumPartitions(), m)
	}
	asg := buildAssignment(x, r, assign, maxEntities)
	p := newPlan("BlockSplit", m, r)
	copy(p.ReduceComparisons, asg.loads)

	for _, t := range asg.ordered {
		k := t.id.block
		switch {
		case t.id.i < 0: // unsplit: receives the whole block (if non-trivial)
			if t.comps > 0 {
				p.ReduceRecords[t.reduce] += int64(x.Size(k))
			}
		case t.id.i == t.id.j: // sub-block self-join
			p.ReduceRecords[t.reduce] += int64(x.SizeIn(k, t.id.i))
		default: // cross product of two sub-blocks
			p.ReduceRecords[t.reduce] += int64(x.SizeIn(k, t.id.i) + x.SizeIn(k, t.id.j))
		}
	}

	for k := 0; k < x.NumBlocks(); k++ {
		comps := x.BlockPairs(k)
		split := asg.split[k]
		for pi := 0; pi < m; pi++ {
			n := int64(x.SizeIn(k, pi))
			if n == 0 {
				continue
			}
			p.MapRecords[pi] += n
			switch {
			case !split && comps > 0:
				p.MapEmits[pi] += n
			case split:
				// Each entity of partition pi is emitted once per match
				// task involving pi: its own sub-block plus one cross
				// task per other non-empty partition.
				emitsPer := int64(0)
				for i := 0; i < m; i++ {
					if x.SizeIn(k, i) > 0 {
						emitsPer++
					}
				}
				p.MapEmits[pi] += n * emitsPer
			}
		}
	}
	return p, nil
}
