package core

import (
	"fmt"
	"testing"

	"repro/internal/entity"
)

// maxGroup returns the largest reduce-call value list observed across
// all reduce tasks — the in-memory buffering lower bound.
func maxGroup(res *MatchJobResult) int64 {
	var mx int64
	for _, m := range res.ReduceMetrics {
		if m.MaxGroupRecords > mx {
			mx = m.MaxGroupRecords
		}
	}
	return mx
}

// TestMemoryFootprintOrdering demonstrates the paper's memory argument
// quantitatively on a skewed input: Basic must buffer the whole largest
// block in one reduce call, while BlockSplit's splitting caps every
// reduce call near the sub-block size.
func TestMemoryFootprintOrdering(t *testing.T) {
	const bigBlock = 120
	var es []entity.Entity
	for i := 0; i < bigBlock; i++ {
		es = append(es, entity.New(fmt.Sprintf("b%03d", i), "k", "big"))
	}
	for i := 0; i < 80; i++ {
		es = append(es, entity.New(fmt.Sprintf("s%03d", i), "k", fmt.Sprintf("u%02d", i%40)))
	}
	const m = 6
	parts := entity.SplitRoundRobin(es, m)
	x := mustBDM(t, parts)
	const r = 8

	basicRes := runStrategy(t, Basic{}, x, parts, r, nil)
	bsRes := runStrategy(t, BlockSplit{}, x, parts, r, nil)

	basicMax := maxGroup(basicRes)
	bsMax := maxGroup(bsRes)

	if basicMax != bigBlock {
		t.Errorf("Basic max group = %d, want the whole largest block (%d)", basicMax, bigBlock)
	}
	// A cross-product match task buffers two sub-blocks of ~bigBlock/m.
	if want := int64(2 * bigBlock / m); bsMax != want {
		t.Errorf("BlockSplit max group = %d, want %d (two sub-blocks)", bsMax, want)
	}
}

// TestMemoryCapBoundsBuffering: a mid-sized block below the average
// workload is nevertheless split when it exceeds MaxEntitiesPerTask,
// bounding the reduce-call buffer. (The cap cannot split finer than the
// m input partitions — splitting is partition-based, as in the paper.)
func TestMemoryCapBoundsBuffering(t *testing.T) {
	var es []entity.Entity
	for i := 0; i < 60; i++ {
		es = append(es, entity.New(fmt.Sprintf("m%03d", i), "k", "mid"))
	}
	for i := 0; i < 30; i++ {
		es = append(es, entity.New(fmt.Sprintf("s%03d", i), "k", fmt.Sprintf("u%02d", i%15)))
	}
	const m = 6
	parts := entity.SplitRoundRobin(es, m)
	x := mustBDM(t, parts)
	const r = 1 // the average workload is P itself: nothing splits by load alone

	uncapped := runStrategy(t, BlockSplit{}, x, parts, r, nil)
	capped := runStrategy(t, BlockSplit{MaxEntitiesPerTask: 20}, x, parts, r, nil)

	if got := maxGroup(uncapped); got != 60 {
		t.Errorf("uncapped max group = %d, want the whole mid block (60)", got)
	}
	// Sub-blocks of 10 each; cross tasks buffer 20.
	if got := maxGroup(capped); got != 20 {
		t.Errorf("capped max group = %d, want 20 (two sub-blocks of 10)", got)
	}
}
