package core

import (
	"math"
	"slices"
)

// LoadStats summarizes how evenly a workload is spread over tasks. It is
// the quantitative backing for the paper's balance claims: Basic's
// comparison loads have near-1 Gini under skew while BlockSplit and
// PairRange stay near 0.
type LoadStats struct {
	Tasks int
	Total int64
	Max   int64
	Min   int64
	Mean  float64
	// StdDev is the population standard deviation of the loads.
	StdDev float64
	// CV is the coefficient of variation (StdDev/Mean); 0 for a
	// perfectly even distribution.
	CV float64
	// MaxOverMean is the straggler factor: the heaviest task's load
	// relative to the mean. The reduce-phase makespan is at least
	// MaxOverMean times the balanced optimum.
	MaxOverMean float64
	// Gini is the Gini coefficient of the loads in [0,1): 0 = perfectly
	// even, →1 = all load on one task.
	Gini float64
}

// ComputeLoadStats derives LoadStats from per-task loads. Zero tasks
// yield the zero value.
func ComputeLoadStats(loads []int64) LoadStats {
	st := LoadStats{Tasks: len(loads)}
	if len(loads) == 0 {
		return st
	}
	st.Min = loads[0]
	for _, l := range loads {
		st.Total += l
		if l > st.Max {
			st.Max = l
		}
		if l < st.Min {
			st.Min = l
		}
	}
	st.Mean = float64(st.Total) / float64(len(loads))
	var ss float64
	for _, l := range loads {
		d := float64(l) - st.Mean
		ss += d * d
	}
	st.StdDev = math.Sqrt(ss / float64(len(loads)))
	if st.Mean > 0 {
		st.CV = st.StdDev / st.Mean
		st.MaxOverMean = float64(st.Max) / st.Mean
	}
	st.Gini = gini(loads)
	return st
}

// gini computes the Gini coefficient via the sorted-rank formula.
func gini(loads []int64) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), loads...)
	slices.Sort(sorted)
	var cum, weighted float64
	for i, l := range sorted {
		cum += float64(l)
		weighted += float64(i+1) * float64(l)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// ComparisonStats summarizes the plan's per-reduce-task comparison
// loads.
func (p *Plan) ComparisonStats() LoadStats {
	return ComputeLoadStats(p.ReduceComparisons)
}

// RecordStats summarizes the plan's per-reduce-task input record loads.
func (p *Plan) RecordStats() LoadStats {
	return ComputeLoadStats(p.ReduceRecords)
}
