package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/entity"
)

// recordingMatcher records each compared pair and "matches" everything —
// the completeness oracle. Matchers run on concurrent reduce tasks, so
// the shared map is mutex-guarded.
func recordingMatcher(pairs *map[MatchPair]int) Matcher {
	var mu sync.Mutex
	return func(a, b entity.Entity) (float64, bool) {
		mu.Lock()
		(*pairs)[NewMatchPair(a.ID, b.ID)]++
		mu.Unlock()
		return 1, true
	}
}

// expectedPairs computes the set of within-block pairs serially.
func expectedPairs(parts entity.Partitions) map[MatchPair]bool {
	blocks := make(map[string][]entity.Entity)
	for _, p := range parts {
		for _, e := range p {
			k := e.Attr("k")
			blocks[k] = append(blocks[k], e)
		}
	}
	want := make(map[MatchPair]bool)
	for _, es := range blocks {
		for i := range es {
			for j := i + 1; j < len(es); j++ {
				want[NewMatchPair(es[i].ID, es[j].ID)] = true
			}
		}
	}
	return want
}

// TestStrategyCompleteness is the central invariant: every strategy
// compares every within-block pair exactly once, for a sweep of random
// skewed inputs and task counts.
func TestStrategyCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(120) + 2
		m := rng.Intn(5) + 1
		blocks := rng.Intn(8) + 1
		r := rng.Intn(12) + 1
		parts := randomParts(rng, n, m, blocks)
		x := mustBDM(t, parts)
		want := expectedPairs(parts)

		for _, strat := range []Strategy{Basic{}, BlockSplit{}, PairRange{}} {
			got := make(map[MatchPair]int)
			runStrategy(t, strat, x, parts, r, recordingMatcher(&got))
			if len(got) != len(want) {
				t.Fatalf("trial %d (n=%d m=%d r=%d): %s compared %d distinct pairs, want %d",
					trial, n, m, r, strat.Name(), len(got), len(want))
			}
			for p, count := range got {
				if !want[p] {
					t.Fatalf("%s compared unexpected pair %v", strat.Name(), p)
				}
				if count != 1 {
					t.Fatalf("%s compared pair %v %d times, want exactly once", strat.Name(), p, count)
				}
			}
		}
	}
}

// TestPlanExecutionEquivalenceFuzz: for random inputs, every plan
// quantity must equal the executed engine's metrics, for all strategies.
func TestPlanExecutionEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(150) + 1
		mm := rng.Intn(6) + 1
		blocks := rng.Intn(10) + 1
		r := rng.Intn(15) + 1
		parts := randomParts(rng, n, mm, blocks)
		x := mustBDM(t, parts)
		for _, strat := range []Strategy{Basic{}, BlockSplit{}, PairRange{}} {
			assertPlanMatchesExecution(t, strat, x, parts, "k", r)
		}
	}
}

// TestPairRangeBalanceBound: PairRange guarantees every reduce task at
// most ceil(P/r) comparisons.
func TestPairRangeBalanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		parts := randomParts(rng, rng.Intn(300)+2, rng.Intn(4)+1, rng.Intn(6)+1)
		x := mustBDM(t, parts)
		r := rng.Intn(20) + 1
		plan, err := PairRange{}.Plan(x, x.NumPartitions(), r)
		if err != nil {
			t.Fatalf("Plan: %v", err)
		}
		q := NewRanges(x.Pairs(), r).Q
		for j, c := range plan.ReduceComparisons {
			if c > q {
				t.Fatalf("reduce task %d has %d comparisons > ceil(P/r)=%d", j, c, q)
			}
		}
	}
}

// TestBlockSplitNeverWorseThanWholeBlocks: after splitting, no reduce
// task carries more comparisons than Basic's heaviest block... unless a
// single block already exceeds everything. Weak but useful sanity: the
// max load is bounded by max(largest match task, sum/r rounded up to
// assignment granularity); here we just assert max load <= Basic's max.
func TestBlockSplitMaxLoadNotWorseThanBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		parts := randomParts(rng, rng.Intn(300)+10, rng.Intn(4)+2, rng.Intn(5)+1)
		x := mustBDM(t, parts)
		r := rng.Intn(10) + 2
		basicPlan, err := Basic{}.Plan(x, x.NumPartitions(), r)
		if err != nil {
			t.Fatalf("Basic.Plan: %v", err)
		}
		bsPlan, err := BlockSplit{}.Plan(x, x.NumPartitions(), r)
		if err != nil {
			t.Fatalf("BlockSplit.Plan: %v", err)
		}
		if bsPlan.MaxReduceComparisons() > basicPlan.MaxReduceComparisons() {
			t.Fatalf("BlockSplit max load %d exceeds Basic max load %d",
				bsPlan.MaxReduceComparisons(), basicPlan.MaxReduceComparisons())
		}
	}
}

func TestBasicMapOutputEqualsInput(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	parts := randomParts(rng, 200, 3, 5)
	x := mustBDM(t, parts)
	plan, err := Basic{}.Plan(x, 3, 7)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got, want := plan.TotalMapEmits(), int64(parts.Total()); got != want {
		t.Errorf("Basic map emits = %d, want input size %d (no replication)", got, want)
	}
}

func TestBlockSplitSingleReduceTask(t *testing.T) {
	// r=1: everything lands on one task; avg = P so nothing splits.
	rng := rand.New(rand.NewSource(31))
	parts := randomParts(rng, 80, 3, 4)
	x := mustBDM(t, parts)
	asg := BuildAssignment(x, 1, nil)
	for _, task := range asg.ordered {
		if task.id.i != -1 {
			t.Fatalf("block %d was split with r=1", task.id.block)
		}
	}
	if asg.loads[0] != x.Pairs() {
		t.Errorf("r=1 load = %d, want P=%d", asg.loads[0], x.Pairs())
	}
}

func TestBlockSplitSinglePartition(t *testing.T) {
	// m=1: splitting is a no-op (one sub-block = whole block) but the
	// dataflow must still be exhaustive.
	rng := rand.New(rand.NewSource(37))
	parts := entity.Partitions{randomParts(rng, 100, 1, 3).Flatten()}
	x := mustBDM(t, parts)
	want := expectedPairs(parts)
	got := make(map[MatchPair]int)
	runStrategy(t, BlockSplit{}, x, parts, 5, recordingMatcher(&got))
	if len(got) != len(want) {
		t.Errorf("m=1: compared %d pairs, want %d", len(got), len(want))
	}
}

func TestStrategiesHandleAllSingletonBlocks(t *testing.T) {
	// Every entity in its own block: P=0, nothing to compare anywhere.
	parts := entity.Partitions{{
		entity.New("a", "k", "x1"), entity.New("b", "k", "x2"),
	}, {
		entity.New("c", "k", "x3"),
	}}
	x := mustBDM(t, parts)
	if x.Pairs() != 0 {
		t.Fatalf("Pairs = %d, want 0", x.Pairs())
	}
	for _, strat := range []Strategy{Basic{}, BlockSplit{}, PairRange{}} {
		got := make(map[MatchPair]int)
		res := runStrategy(t, strat, x, parts, 4, recordingMatcher(&got))
		if len(got) != 0 {
			t.Errorf("%s compared %d pairs on singleton blocks", strat.Name(), len(got))
		}
		if strat.Name() != "Basic" && res.MapOutputRecords != 0 {
			t.Errorf("%s emitted %d key-value pairs for zero work", strat.Name(), res.MapOutputRecords)
		}
	}
}

func TestStrategyRejectsBadParams(t *testing.T) {
	parts := entity.Partitions{{entity.New("a", "k", "x")}}
	x := mustBDM(t, parts)
	for _, strat := range []Strategy{Basic{}, BlockSplit{}, PairRange{}} {
		if _, err := strat.Job(x, 0, nil); err == nil {
			t.Errorf("%s.Job(r=0) succeeded, want error", strat.Name())
		}
		if _, err := strat.Plan(x, 0, 3); err == nil {
			t.Errorf("%s.Plan(m=0) succeeded, want error", strat.Name())
		}
		if _, err := strat.Plan(x, 2, 3); err == nil {
			t.Errorf("%s.Plan with mismatched m succeeded, want error", strat.Name())
		}
	}
	for _, strat := range []Strategy{BlockSplit{}, PairRange{}} {
		if _, err := strat.Job(nil, 3, nil); err == nil {
			t.Errorf("%s.Job(nil BDM) succeeded, want error", strat.Name())
		}
	}
}

// TestGreedyAssignBeatsRoundRobin: the ablation claim — greedy
// descending-size assignment yields a max load no worse than round-robin
// on skewed inputs (and typically better).
func TestGreedyAssignBeatsRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	greedyWins := 0
	for trial := 0; trial < 30; trial++ {
		parts := randomParts(rng, rng.Intn(400)+50, 4, rng.Intn(6)+2)
		x := mustBDM(t, parts)
		r := rng.Intn(8) + 2
		greedy := BuildAssignment(x, r, GreedyAssign)
		rr := BuildAssignment(x, r, RoundRobinAssign)
		if maxLoad(greedy.loads) > maxLoad(rr.loads) {
			t.Fatalf("greedy max load %d worse than round-robin %d", maxLoad(greedy.loads), maxLoad(rr.loads))
		}
		if maxLoad(greedy.loads) < maxLoad(rr.loads) {
			greedyWins++
		}
	}
	if greedyWins == 0 {
		t.Error("greedy never beat round-robin across 30 skewed trials; assignment ablation is vacuous")
	}
}

func maxLoad(loads []int64) int64 {
	var mx int64
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// TestAssignmentDeterminism: identical inputs produce identical
// assignments (required for every map task to agree).
func TestAssignmentDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	parts := randomParts(rng, 150, 3, 5)
	x := mustBDM(t, parts)
	a1 := BuildAssignment(x, 7, nil)
	a2 := BuildAssignment(x, 7, nil)
	if !reflect.DeepEqual(a1.loads, a2.loads) {
		t.Fatalf("assignment loads differ: %v vs %v", a1.loads, a2.loads)
	}
	for id, t1 := range a1.tasks {
		if t2 := a2.tasks[id]; t2 == nil || t2.reduce != t1.reduce {
			t.Fatalf("task %v assigned differently", id)
		}
	}
}

// TestPairRangeEmptyTrailingRanges: when r greatly exceeds P, trailing
// reduce tasks receive nothing, and all pairs are still covered.
func TestPairRangeEmptyTrailingRanges(t *testing.T) {
	parts := entity.Partitions{{
		entity.New("a", "k", "b"), entity.New("b", "k", "b"), entity.New("c", "k", "b"),
	}}
	x := mustBDM(t, parts) // P = 3
	r := 8
	got := make(map[MatchPair]int)
	res := runStrategy(t, PairRange{}, x, parts, r, recordingMatcher(&got))
	if len(got) != 3 {
		t.Fatalf("compared %d pairs, want 3", len(got))
	}
	busy := 0
	for j := range res.ReduceMetrics {
		if res.ReduceMetrics[j].Counter(ComparisonsCounter) > 0 {
			busy++
		}
	}
	if busy != 3 {
		t.Errorf("%d reduce tasks busy, want 3 (one pair each with q=1)", busy)
	}
}

// TestMatchPairCanonical: NewMatchPair orders IDs.
func TestMatchPairCanonical(t *testing.T) {
	if p := NewMatchPair("z", "a"); p.A != "a" || p.B != "z" {
		t.Errorf("NewMatchPair(z,a) = %v", p)
	}
	if got := NewMatchPair("a", "z").String(); got != "a|z" {
		t.Errorf("String = %q", got)
	}
}

// TestBSKeyStrings covers the human-readable key forms used in logs.
func TestBSKeyStrings(t *testing.T) {
	tests := []struct {
		k    BSKey
		want string
	}{
		{BSKey{Reduce: 1, Block: 3, I: -1, J: -1}, "1.3.*"},
		{BSKey{Reduce: 0, Block: 3, I: 1, J: 1}, "0.3.1"},
		{BSKey{Reduce: 2, Block: 3, I: 1, J: 0}, "2.3.0x1"},
	}
	for _, tc := range tests {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.k, got, tc.want)
		}
	}
}

// TestPlanSortedInputDegradesBlockSplit reproduces the Figure 11
// mechanism at unit level: with all large-block entities in one
// partition, BlockSplit cannot split effectively and its max reduce load
// grows, while PairRange is unaffected.
func TestPlanSortedInputDegradesBlockSplit(t *testing.T) {
	// One dominant block of 60 entities + 40 singletons, m=4.
	var es []entity.Entity
	for i := 0; i < 60; i++ {
		es = append(es, entity.New(id4("big", i), "k", "big"))
	}
	for i := 0; i < 40; i++ {
		es = append(es, entity.New(id4("s", i), "k", id4("u", i)))
	}
	m, r := 4, 8

	spread := entity.SplitRoundRobin(es, m)  // big block spread over partitions
	clumped := entity.SplitContiguous(es, m) // big block in few partitions

	xSpread := mustBDM(t, spread)
	xClumped := mustBDM(t, clumped)

	bsSpread, err := BlockSplit{}.Plan(xSpread, m, r)
	if err != nil {
		t.Fatal(err)
	}
	bsClumped, err := BlockSplit{}.Plan(xClumped, m, r)
	if err != nil {
		t.Fatal(err)
	}
	if bsClumped.MaxReduceComparisons() <= bsSpread.MaxReduceComparisons() {
		t.Errorf("clumped max load %d should exceed spread max load %d",
			bsClumped.MaxReduceComparisons(), bsSpread.MaxReduceComparisons())
	}

	prSpread, err := PairRange{}.Plan(xSpread, m, r)
	if err != nil {
		t.Fatal(err)
	}
	prClumped, err := PairRange{}.Plan(xClumped, m, r)
	if err != nil {
		t.Fatal(err)
	}
	if prSpread.MaxReduceComparisons() != prClumped.MaxReduceComparisons() {
		t.Errorf("PairRange max load changed with input order: %d vs %d",
			prSpread.MaxReduceComparisons(), prClumped.MaxReduceComparisons())
	}
}

func id4(prefix string, i int) string {
	return prefix + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + "x"
}

// TestLoadsSumToP: for all strategies the per-task comparisons sum to P.
func TestLoadsSumToP(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		parts := randomParts(rng, rng.Intn(200)+2, rng.Intn(4)+1, rng.Intn(6)+1)
		x := mustBDM(t, parts)
		r := rng.Intn(10) + 1
		for _, strat := range []Strategy{Basic{}, BlockSplit{}, PairRange{}} {
			plan, err := strat.Plan(x, x.NumPartitions(), r)
			if err != nil {
				t.Fatalf("%s.Plan: %v", strat.Name(), err)
			}
			if got := plan.TotalComparisons(); got != x.Pairs() {
				t.Errorf("%s: Σ comparisons = %d, want P=%d", strat.Name(), got, x.Pairs())
			}
		}
	}
}
