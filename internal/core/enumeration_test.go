package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCellIndexSmall(t *testing.T) {
	// N=5, column-wise: (0,1)=0 (0,2)=1 (0,3)=2 (0,4)=3 (1,2)=4 ...
	want := map[[2]int64]int64{
		{0, 1}: 0, {0, 2}: 1, {0, 3}: 2, {0, 4}: 3,
		{1, 2}: 4, {1, 3}: 5, {1, 4}: 6,
		{2, 3}: 7, {2, 4}: 8,
		{3, 4}: 9,
	}
	for xy, w := range want {
		if got := CellIndex(xy[0], xy[1], 5); got != w {
			t.Errorf("CellIndex(%d,%d,5) = %d, want %d", xy[0], xy[1], got, w)
		}
	}
}

// TestCellIndexBijection checks that the enumeration is a bijection from
// {(x,y): x<y<n} onto [0, n(n−1)/2) for a spread of block sizes.
func TestCellIndexBijection(t *testing.T) {
	for _, n := range []int64{2, 3, 4, 5, 7, 10, 31, 100} {
		total := n * (n - 1) / 2
		seen := make([]bool, total)
		for x := int64(0); x < n; x++ {
			for y := x + 1; y < n; y++ {
				p := CellIndex(x, y, n)
				if p < 0 || p >= total {
					t.Fatalf("n=%d: CellIndex(%d,%d) = %d outside [0,%d)", n, x, y, p, total)
				}
				if seen[p] {
					t.Fatalf("n=%d: index %d hit twice", n, p)
				}
				seen[p] = true
			}
		}
	}
}

// TestCellOfInverse is the quick-check property: CellOf inverts
// CellIndex for arbitrary (p, n).
func TestCellOfInverse(t *testing.T) {
	f := func(pRaw uint32, nRaw uint8) bool {
		n := int64(nRaw%120) + 2
		total := n * (n - 1) / 2
		p := int64(pRaw) % total
		x, y := CellOf(p, n)
		return x >= 0 && x < y && y < n && CellIndex(x, y, n) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCellOfPanicsOutOfRange(t *testing.T) {
	for _, p := range []int64{-1, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CellOf(%d, 5) did not panic", p)
				}
			}()
			CellOf(p, 5)
		}()
	}
}

func TestColumnStartAndLen(t *testing.T) {
	// Columns must tile [0, n(n−1)/2) exactly.
	for _, n := range []int64{2, 3, 5, 17, 64} {
		pos := int64(0)
		for x := int64(0); x < n-1; x++ {
			if got := ColumnStart(x, n); got != pos {
				t.Fatalf("n=%d: ColumnStart(%d) = %d, want %d", n, x, got, pos)
			}
			pos += ColumnLen(x, n)
		}
		if pos != n*(n-1)/2 {
			t.Fatalf("n=%d: columns cover %d pairs, want %d", n, pos, n*(n-1)/2)
		}
	}
}

func TestRangesBounds(t *testing.T) {
	tests := []struct {
		p    int64
		r    int
		q    int64
		last int64 // size of final non-empty range
	}{
		{20, 3, 7, 6},
		{10, 5, 2, 2},
		{7, 3, 3, 1},
		{1, 4, 1, 1},
		{0, 3, 1, 0},
		{100, 1, 100, 100},
	}
	for _, tc := range tests {
		rg := NewRanges(tc.p, tc.r)
		if rg.Q != tc.q {
			t.Errorf("NewRanges(%d,%d).Q = %d, want %d", tc.p, tc.r, rg.Q, tc.q)
		}
		var total int64
		for k := 0; k < tc.r; k++ {
			total += rg.Size(k)
		}
		if total != tc.p {
			t.Errorf("NewRanges(%d,%d): range sizes sum to %d", tc.p, tc.r, total)
		}
	}
}

// TestRangesPartitionProperty: every pair index belongs to exactly the
// range whose bounds contain it.
func TestRangesPartitionProperty(t *testing.T) {
	f := func(pRaw uint16, rRaw uint8) bool {
		p := int64(pRaw)%5000 + 1
		r := int(rRaw)%64 + 1
		rg := NewRanges(p, r)
		for pi := int64(0); pi < p; pi++ {
			k := rg.Index(pi)
			lo, hi := rg.Bounds(k)
			if pi < lo || pi >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// bruteRelevantRanges recomputes an entity's relevant ranges by
// enumerating all its pairs.
func bruteRelevantRanges(rg Ranges, ex, n, off int64) []int {
	set := make(map[int]bool)
	for k := int64(0); k < ex; k++ {
		set[rg.Index(CellIndex(k, ex, n)+off)] = true
	}
	for y := ex + 1; y < n; y++ {
		set[rg.Index(CellIndex(ex, y, n)+off)] = true
	}
	out := make([]int, 0, len(set))
	for r := 0; r < rg.R; r++ {
		if set[r] {
			out = append(out, r)
		}
	}
	return out
}

func TestRelevantRangesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := int64(rng.Intn(40) + 2)
		off := int64(rng.Intn(100))
		total := off + n*(n-1)/2 + int64(rng.Intn(50))
		r := rng.Intn(20) + 1
		rg := NewRanges(total, r)
		for ex := int64(0); ex < n; ex++ {
			got := rg.relevantRanges(ex, n, off, nil)
			want := bruteRelevantRanges(rg, ex, n, off)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d off=%d r=%d ex=%d: relevantRanges = %v, want %v", n, off, r, ex, got, want)
			}
		}
	}
}

func TestRelevantRangesSingletonBlock(t *testing.T) {
	rg := NewRanges(100, 4)
	if got := rg.relevantRanges(0, 1, 0, nil); len(got) != 0 {
		t.Errorf("singleton block entity has relevant ranges %v, want none", got)
	}
}

// bruteRelevantEntities recomputes the entity set touching local pair
// interval [a,b) by enumeration.
func bruteRelevantEntities(a, b, n int64) map[int64]bool {
	set := make(map[int64]bool)
	for p := a; p < b; p++ {
		x, y := CellOf(p, n)
		set[x] = true
		set[y] = true
	}
	return set
}

func TestRelevantEntitiesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := int64(rng.Intn(30) + 2)
		total := n * (n - 1) / 2
		a := int64(rng.Intn(int(total)))
		b := a + 1 + int64(rng.Intn(int(total-a)))
		ivs := relevantEntities(a, b, n)
		want := bruteRelevantEntities(a, b, n)
		var gotCount int64
		got := make(map[int64]bool)
		for _, iv := range ivs {
			gotCount += iv.len()
			for e := iv.lo; e < iv.hi; e++ {
				got[e] = true
			}
		}
		if int64(len(got)) != gotCount {
			t.Fatalf("n=%d [%d,%d): intervals overlap after merge: %v", n, a, b, ivs)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d [%d,%d): relevantEntities = %v, want %v entities", n, a, b, ivs, len(want))
		}
	}
}

func TestRelevantEntitiesEmptyAndDegenerate(t *testing.T) {
	if ivs := relevantEntities(5, 5, 10); len(ivs) != 0 {
		t.Errorf("empty interval gave %v", ivs)
	}
	if ivs := relevantEntities(0, 1, 1); len(ivs) != 0 {
		t.Errorf("block of size 1 gave %v", ivs)
	}
	// Whole triangle: all n entities.
	ivs := relevantEntities(0, 10, 5)
	if intervalsTotal(ivs) != 5 {
		t.Errorf("full interval covers %d entities, want 5 (%v)", intervalsTotal(ivs), ivs)
	}
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]interval{{5, 7}, {1, 3}, {2, 4}, {7, 7}, {6, 9}})
	want := []interval{{1, 4}, {5, 9}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mergeIntervals = %v, want %v", got, want)
	}
}

func TestIntersectLen(t *testing.T) {
	tests := []struct {
		iv       interval
		blo, bhi int64
		want     int64
	}{
		{interval{0, 10}, 3, 7, 4},
		{interval{0, 10}, 10, 20, 0},
		{interval{5, 8}, 0, 100, 3},
		{interval{5, 8}, 7, 7, 0},
	}
	for _, tc := range tests {
		if got := intersectLen(tc.iv, tc.blo, tc.bhi); got != tc.want {
			t.Errorf("intersectLen(%v, %d, %d) = %d, want %d", tc.iv, tc.blo, tc.bhi, got, tc.want)
		}
	}
}
