package core

import (
	"fmt"
	"slices"

	"repro/internal/bdm"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// BlockSplitDual is the two-source extension of BlockSplit described in
// Appendix I-A. Match work of block Φk is |Φk,R|·|Φk,S| cross-source
// comparisons; blocks whose work exceeds the average reduce workload are
// split along the input partitions, but the resulting cross-product match
// tasks k.i×j are restricted to Πi ∈ R and Πj ∈ S (no same-source
// comparisons). Keys and values carry the entity's source so the reduce
// function can buffer all R entities and compare each S entity against
// them.
type BlockSplitDual struct{}

// Name implements DualStrategy.
func (BlockSplitDual) Name() string { return "BlockSplit" }

// BSDKey is the composite map-output key: reduce index ‖ block index ‖
// split ‖ source. RPart/SPart identify the sub-block pair of a split
// block (−1,−1 = unsplit). Sorting places source R before S within a
// group, which lets the reduce function buffer R first.
type BSDKey struct {
	Reduce int
	Block  int
	RPart  int
	SPart  int
	Source bdm.Source
}

func (k BSDKey) String() string {
	if k.RPart < 0 {
		return fmt.Sprintf("%d.%d.*.%s", k.Reduce, k.Block, k.Source)
	}
	return fmt.Sprintf("%d.%d.%dx%d.%s", k.Reduce, k.Block, k.RPart, k.SPart, k.Source)
}

type dualTaskID struct {
	block        int
	rPart, sPart int // −1,−1 = unsplit
}

type dualMatchTask struct {
	id     dualTaskID
	comps  int64
	reduce int
}

// dualAssignment mirrors Assignment for the two-source case.
type dualAssignment struct {
	tasks   map[dualTaskID]*dualMatchTask
	ordered []*dualMatchTask
	loads   []int64
	avg     int64
}

func buildDualAssignment(x *bdm.DualMatrix, r int) *dualAssignment {
	a := &dualAssignment{tasks: make(map[dualTaskID]*dualMatchTask)}
	if p := x.Pairs(); p > 0 {
		a.avg = p / int64(r)
	}
	m := x.NumPartitions()
	for k := 0; k < x.NumBlocks(); k++ {
		comps := x.BlockPairs(k)
		if comps == 0 {
			continue // one side empty: the block needs no processing
		}
		if comps <= a.avg {
			a.add(dualTaskID{block: k, rPart: -1, sPart: -1}, comps)
			continue
		}
		for i := 0; i < m; i++ {
			if x.PartitionSource(i) != bdm.SourceR {
				continue
			}
			ni := int64(x.SizeIn(k, i))
			if ni == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				if x.PartitionSource(j) != bdm.SourceS {
					continue
				}
				nj := int64(x.SizeIn(k, j))
				if nj == 0 {
					continue
				}
				a.add(dualTaskID{block: k, rPart: i, sPart: j}, ni*nj)
			}
		}
	}
	// Total order (ties fully broken), so a non-stable sort on the
	// concrete type suffices.
	slices.SortFunc(a.ordered, func(tp, tq *dualMatchTask) int {
		if tp.comps != tq.comps {
			if tp.comps > tq.comps {
				return -1
			}
			return 1
		}
		if c := tp.id.block - tq.id.block; c != 0 {
			return c
		}
		if c := tp.id.rPart - tq.id.rPart; c != 0 {
			return c
		}
		return tp.id.sPart - tq.id.sPart
	})
	a.loads = assignDualGreedy(a.ordered, r)
	return a
}

func (a *dualAssignment) add(id dualTaskID, comps int64) {
	t := &dualMatchTask{id: id, comps: comps}
	a.tasks[id] = t
	a.ordered = append(a.ordered, t)
}

func assignDualGreedy(tasks []*dualMatchTask, r int) []int64 {
	// Same greedy least-loaded policy as the one-source GreedyAssign.
	loads := make([]int64, r)
	for _, t := range tasks {
		best := 0
		for j := 1; j < r; j++ {
			if loads[j] < loads[best] {
				best = j
			}
		}
		t.reduce = best
		loads[best] += t.comps
	}
	return loads
}

func compareBSDKeys(a, b BSDKey) int {
	if c := mapreduce.CompareInts(a.Block, b.Block); c != 0 {
		return c
	}
	if c := mapreduce.CompareInts(a.RPart, b.RPart); c != 0 {
		return c
	}
	if c := mapreduce.CompareInts(a.SPart, b.SPart); c != 0 {
		return c
	}
	return mapreduce.CompareInts(int(a.Source), int(b.Source))
}

func groupBSDKeys(a, b BSDKey) int {
	if c := mapreduce.CompareInts(a.Block, b.Block); c != 0 {
		return c
	}
	if c := mapreduce.CompareInts(a.RPart, b.RPart); c != 0 {
		return c
	}
	return mapreduce.CompareInts(a.SPart, b.SPart)
}

// bsdKeyCoding packs a BSDKey exactly: block ‖ rPart+1 ‖ sPart+1 in the
// high word (the grouping key, hence GroupBits 64), the source bit in
// the low word.
func bsdKeyCoding(x *bdm.DualMatrix) mapreduce.KeyCoding[BSDKey] {
	if x.NumBlocks() > 1<<32 || x.NumPartitions() >= (1<<16)-1 {
		return mapreduce.KeyCoding[BSDKey]{}
	}
	return mapreduce.KeyCoding[BSDKey]{
		Encode: func(k BSDKey) mapreduce.Code {
			return mapreduce.Code{
				Hi: uint64(uint32(k.Block))<<32 | uint64(uint16(k.RPart+1))<<16 | uint64(uint16(k.SPart+1)),
				Lo: uint64(k.Source),
			}
		},
		Exact:     true,
		GroupBits: 64,
	}
}

// Job implements DualStrategy. Input records must be blocking-key-
// annotated entities; each input partition holds entities of exactly
// one source as recorded in the DualMatrix.
func (BlockSplitDual) Job(x *bdm.DualMatrix, r int, match Matcher) (MatchJob, error) {
	return blockSplitDualJob(x, r, matchKernel{match: match})
}

// JobPrepared implements PreparedDualStrategy.
func (BlockSplitDual) JobPrepared(x *bdm.DualMatrix, r int, pm PreparedMatcher) (MatchJob, error) {
	return blockSplitDualJob(x, r, preparedKernel(pm))
}

func blockSplitDualJob(x *bdm.DualMatrix, r int, kern matchKernel) (MatchJob, error) {
	if err := validateJobParams("BlockSplitDual", r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: BlockSplitDual requires a dual BDM")
	}
	asg := buildDualAssignment(x, r)
	return &mapreduce.Job[AnnotatedEntity, BSDKey, entity.Entity, MatchOutput]{
		Name:           "blocksplit-dual",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[AnnotatedEntity, BSDKey, entity.Entity] {
			return &bsdMapper{x: x, asg: asg}
		},
		NewReducer: func() mapreduce.Reducer[BSDKey, entity.Entity, MatchOutput] {
			return &bsdReducer{kern: kern}
		},
		Partition: func(key BSDKey, r int) int { return key.Reduce % r },
		Compare:   compareBSDKeys,
		Group:     groupBSDKeys,
		Coding:    bsdKeyCoding(x),
	}, nil
}

type bsdMapper struct {
	x         *bdm.DualMatrix
	asg       *dualAssignment
	partition int
	source    bdm.Source
}

func (mp *bsdMapper) Configure(m, _, partitionIndex int) {
	if m != mp.x.NumPartitions() {
		panic(fmt.Sprintf("core: BlockSplitDual: job has %d map tasks but dual BDM was built for %d partitions", m, mp.x.NumPartitions()))
	}
	mp.partition = partitionIndex
	mp.source = mp.x.PartitionSource(partitionIndex)
}

func (mp *bsdMapper) Map(ctx *mapreduce.MapContext[AnnotatedEntity, BSDKey, entity.Entity], rec AnnotatedEntity) {
	blockKey := rec.Key
	e := rec.Value
	k, ok := mp.x.BlockIndex(blockKey)
	if !ok {
		panic(fmt.Sprintf("core: BlockSplitDual: blocking key %q not present in dual BDM", blockKey))
	}
	comps := mp.x.BlockPairs(k)
	if comps == 0 {
		return // counterpart source has no entities with this key
	}
	if comps <= mp.asg.avg {
		t := mp.asg.tasks[dualTaskID{block: k, rPart: -1, sPart: -1}]
		ctx.Emit(BSDKey{Reduce: t.reduce, Block: k, RPart: -1, SPart: -1, Source: mp.source}, e)
		return
	}
	// Split block: emit one copy per match task pairing this entity's
	// partition with each non-empty partition of the other source.
	for p := 0; p < mp.x.NumPartitions(); p++ {
		if mp.x.PartitionSource(p) == mp.source || mp.x.SizeIn(k, p) == 0 {
			continue
		}
		id := dualTaskID{block: k, rPart: mp.partition, sPart: p}
		if mp.source == bdm.SourceS {
			id = dualTaskID{block: k, rPart: p, sPart: mp.partition}
		}
		t := mp.asg.tasks[id]
		if t == nil {
			continue
		}
		ctx.Emit(BSDKey{Reduce: t.reduce, Block: k, RPart: id.rPart, SPart: id.sPart, Source: mp.source}, e)
	}
}

type bsdReducer struct {
	kern   matchKernel
	buffer []entity.Entity
	prep   []PreparedEntity
}

func (rd *bsdReducer) Configure(_, _, _ int) {}

// Reduce buffers all R entities (sorted first via the Source key
// component) and compares each S entity against the buffer — only
// cross-source pairs are evaluated. With a prepared matcher, each R
// entity is prepared once while buffering and each S entity once before
// its scan of the buffer.
func (rd *bsdReducer) Reduce(ctx *matchCtx, _ BSDKey, values []mapreduce.Rec[BSDKey, entity.Entity]) {
	if pm := rd.kern.pm; pm != nil {
		rd.buffer, rd.prep = rd.buffer[:0], rd.prep[:0]
		for _, v := range values {
			e := v.Value
			if v.Key.Source == bdm.SourceR {
				rd.buffer = append(rd.buffer, e)
				rd.prep = append(rd.prep, pm.Prepare(e))
				continue
			}
			p2 := pm.Prepare(e)
			for i, e1 := range rd.buffer {
				matchAndEmitPrepared(ctx, pm, e1, e, rd.prep[i], p2)
			}
			rd.kern.release(p2)
		}
		rd.kern.releaseAll(rd.prep)
		return
	}
	rd.buffer = rd.buffer[:0]
	for _, v := range values {
		e := v.Value
		if v.Key.Source == bdm.SourceR {
			rd.buffer = append(rd.buffer, e)
			continue
		}
		for _, e1 := range rd.buffer {
			matchAndEmit(ctx, rd.kern.match, e1, e)
		}
	}
}

// Plan implements DualStrategy analytically.
func (BlockSplitDual) Plan(x *bdm.DualMatrix, r int) (*Plan, error) {
	if err := validateJobParams("BlockSplitDual", r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: BlockSplitDual.Plan requires a dual BDM")
	}
	m := x.NumPartitions()
	asg := buildDualAssignment(x, r)
	p := newPlan("BlockSplitDual", m, r)
	copy(p.ReduceComparisons, asg.loads)

	for _, t := range asg.ordered {
		k := t.id.block
		if t.id.rPart < 0 {
			p.ReduceRecords[t.reduce] += int64(x.SourceSize(k, bdm.SourceR) + x.SourceSize(k, bdm.SourceS))
		} else {
			p.ReduceRecords[t.reduce] += int64(x.SizeIn(k, t.id.rPart) + x.SizeIn(k, t.id.sPart))
		}
	}

	for k := 0; k < x.NumBlocks(); k++ {
		comps := x.BlockPairs(k)
		split := comps > asg.avg
		for pi := 0; pi < m; pi++ {
			n := int64(x.SizeIn(k, pi))
			if n == 0 {
				continue
			}
			p.MapRecords[pi] += n
			if comps == 0 {
				continue
			}
			if !split {
				p.MapEmits[pi] += n
				continue
			}
			other := bdm.SourceR
			if x.PartitionSource(pi) == bdm.SourceR {
				other = bdm.SourceS
			}
			emitsPer := int64(0)
			for q := 0; q < m; q++ {
				if x.PartitionSource(q) == other && x.SizeIn(k, q) > 0 {
					emitsPer++
				}
			}
			p.MapEmits[pi] += n * emitsPer
		}
	}
	return p, nil
}
