package core

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"repro/internal/bdm"
)

// This file implements the pair-enumeration scheme of Section V.
//
// Within a block of N entities (indexed 0..N-1), all pairs (x,y) with
// x < y are enumerated column-wise:
//
//	c(x, y, N) = x·(2N−x−3)/2 + y − 1
//
// so column x occupies the contiguous index interval
// [colStart(x), colStart(x)+N−1−x). Globally, block Φi's pairs start at
// offset o(i) = Σ_{k<i} |Φk|·(|Φk|−1)/2, giving the global pair index
// p_i(x,y) = c(x,y,|Φi|) + o(i).

// CellIndex computes c(x, y, n): the column-wise index of cell (x,y),
// x < y, in the strictly-upper-triangular n×n matrix.
func CellIndex(x, y, n int64) int64 {
	// x·(2n−x−3) is always even: x and (2n−x−3) have opposite parity.
	return x*(2*n-x-3)/2 + y - 1
}

// ColumnStart returns the index of column x's first pair, c(x, x+1, n).
func ColumnStart(x, n int64) int64 {
	return CellIndex(x, x+1, n)
}

// ColumnLen returns the number of pairs in column x: n−1−x.
func ColumnLen(x, n int64) int64 { return n - 1 - x }

// CellOf inverts CellIndex: it returns the (x, y) pair with
// CellIndex(x,y,n) == p. It panics if p is outside [0, n(n−1)/2).
func CellOf(p, n int64) (x, y int64) {
	total := n * (n - 1) / 2
	if p < 0 || p >= total {
		panic(fmt.Sprintf("core: CellOf: pair index %d outside [0,%d)", p, total))
	}
	x = ColumnOf(p, n)
	y = x + 1 + (p - ColumnStart(x, n))
	return x, y
}

// ColumnOf returns the column x whose index interval contains local pair
// index p: the largest x with ColumnStart(x,n) <= p.
func ColumnOf(p, n int64) int64 {
	// Binary search over x in [0, n-1).
	lo, hi := int64(0), n-1 // search in [lo, hi)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ColumnStart(mid, n) <= p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// PairIndex returns the global pair index p_k(x,y) of entities with
// block-k entity indexes x < y.
func PairIndex(x *bdm.Matrix, k int, ex, ey int64) int64 {
	return CellIndex(ex, ey, int64(x.Size(k))) + x.PairOffset(k)
}

// Ranges captures the PairRange partitioning of [0, P) into r ranges of
// q = ceil(P/r) pairs each (the last range holds the remainder). This is
// the rangeIndex function of Algorithm 2.
type Ranges struct {
	P int64 // total number of pairs
	R int   // number of ranges (= reduce tasks)
	Q int64 // pairs per range, ceil(P/R)
}

// NewRanges computes the range partitioning for P pairs and r reduce
// tasks.
func NewRanges(p int64, r int) Ranges {
	if r <= 0 {
		panic("core: NewRanges requires r > 0")
	}
	q := int64(1)
	if p > 0 {
		q = (p + int64(r) - 1) / int64(r)
	}
	return Ranges{P: p, R: r, Q: q}
}

// Index returns the range containing global pair index p.
func (rg Ranges) Index(p int64) int {
	if p < 0 || p >= rg.P {
		panic(fmt.Sprintf("core: Ranges.Index: pair index %d outside [0,%d)", p, rg.P))
	}
	return int(p / rg.Q)
}

// Bounds returns the half-open global pair-index interval [lo, hi)
// assigned to range k. Empty for trailing ranges when P < k·Q.
func (rg Ranges) Bounds(k int) (lo, hi int64) {
	lo = int64(k) * rg.Q
	hi = lo + rg.Q
	if lo > rg.P {
		lo = rg.P
	}
	if hi > rg.P {
		hi = rg.P
	}
	return lo, hi
}

// Size returns the number of pairs in range k.
func (rg Ranges) Size(k int) int64 {
	lo, hi := rg.Bounds(k)
	return hi - lo
}

// relevantRanges returns, in ascending order, every range that contains
// at least one pair involving the entity with index ex in a block of
// size n whose global pair offset is off.
//
// The entity participates in the "row pairs" (0,ex)...(ex−1,ex), whose
// indexes are strictly increasing but not contiguous, and in the "column
// pairs" (ex,ex+1)...(ex,n−1), which are contiguous. Row ranges are
// found by galloping over range boundaries (monotonicity of the pair
// index in the column argument); column ranges form one contiguous run.
func (rg Ranges) relevantRanges(ex, n, off int64, out []int) []int {
	out = out[:0]
	if n < 2 {
		return out
	}
	// Row pairs: (k, ex) for k in [0, ex). Index f(k) = c(k,ex,n)+off is
	// strictly increasing in k, so the sequence of range indexes is
	// non-decreasing; enumerate each distinct range once via binary
	// search for the last k still inside the current range.
	for k := int64(0); k < ex; {
		p := CellIndex(k, ex, n) + off
		r := rg.Index(p)
		out = append(out, r)
		// Find the largest k' < ex with range(f(k')) == r.
		_, hi := rg.Bounds(r)
		k = searchFirstAtLeast(k+1, ex, func(kk int64) bool {
			return CellIndex(kk, ex, n)+off >= hi
		})
	}
	// Column pairs: (ex, ex+1)..(ex, n−1), contiguous indexes.
	if ex <= n-2 {
		first := rg.Index(CellIndex(ex, ex+1, n) + off)
		last := rg.Index(CellIndex(ex, n-1, n) + off)
		for r := first; r <= last; r++ {
			if len(out) > 0 && out[len(out)-1] == r {
				continue
			}
			out = append(out, r)
		}
	}
	return out
}

// searchFirstAtLeast returns the smallest k in [lo, hi] for which
// pred(k) is true, assuming pred is monotone (false...true); returns hi
// when pred is false everywhere in [lo, hi).
func searchFirstAtLeast(lo, hi int64, pred func(int64) bool) int64 {
	return lo + int64(sort.Search(int(hi-lo), func(i int) bool {
		return pred(lo + int64(i))
	}))
}

// interval is a half-open [lo, hi) range of entity indexes.
type interval struct{ lo, hi int64 }

func (iv interval) empty() bool { return iv.hi <= iv.lo }
func (iv interval) len() int64 {
	if iv.empty() {
		return 0
	}
	return iv.hi - iv.lo
}

// mergeIntervals sorts and merges overlapping/adjacent intervals.
func mergeIntervals(ivs []interval) []interval {
	kept := ivs[:0]
	for _, iv := range ivs {
		if !iv.empty() {
			kept = append(kept, iv)
		}
	}
	slices.SortFunc(kept, func(a, b interval) int { return cmp.Compare(a.lo, b.lo) })
	out := kept[:0]
	for _, iv := range kept {
		if n := len(out); n > 0 && iv.lo <= out[n-1].hi {
			if iv.hi > out[n-1].hi {
				out[n-1].hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

func intervalsTotal(ivs []interval) int64 {
	var t int64
	for _, iv := range ivs {
		t += iv.len()
	}
	return t
}

// intersectLen returns |[alo,ahi) ∩ [blo,bhi)|.
func intersectLen(a interval, blo, bhi int64) int64 {
	lo, hi := a.lo, a.hi
	if blo > lo {
		lo = blo
	}
	if bhi < hi {
		hi = bhi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// relevantEntities returns the set of entity indexes (as merged
// intervals) of a block of size n that participate in at least one pair
// with local pair index in [a, b). Used by the PairRange planner to
// compute exact reduce-input sizes and per-partition map emits without
// enumerating pairs.
func relevantEntities(a, b, n int64) []interval {
	if b <= a || n < 2 {
		return nil
	}
	xa := ColumnOf(a, n)
	xb := ColumnOf(b-1, n)
	ya := xa + 1 + (a - ColumnStart(xa, n))
	yb := xb + 1 + (b - 1 - ColumnStart(xb, n))

	ivs := make([]interval, 0, 4)
	// Column entities: every column with at least one pair in [a,b).
	ivs = append(ivs, interval{xa, xb + 1})
	if xa == xb {
		// Single column: rows ya..yb.
		ivs = append(ivs, interval{ya, yb + 1})
	} else {
		// First (partial) column contributes rows ya..n−1.
		ivs = append(ivs, interval{ya, n})
		// Full columns in between contribute rows xa+2..n−1 (already
		// subsumed by {ya..n−1} only when ya <= xa+2; keep both and let
		// the merge handle it).
		if xb > xa+1 {
			ivs = append(ivs, interval{xa + 2, n})
		}
		// Last (partial) column contributes rows xb+1..yb.
		ivs = append(ivs, interval{xb + 1, yb + 1})
	}
	return mergeIntervals(ivs)
}
