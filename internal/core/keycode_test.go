package core

import (
	"math/rand"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
)

// mustTestBDM builds the running-example BDM (the codings only consult
// it for their size guards; the Encode closures are domain-independent).
func mustTestBDM(tb testing.TB) *bdm.Matrix {
	tb.Helper()
	x, err := bdm.FromPartitions(exampleParts(), exAttr, blocking.Identity())
	if err != nil {
		tb.Fatalf("FromPartitions: %v", err)
	}
	return x
}

func mustTestDualBDM(tb testing.TB) *bdm.DualMatrix {
	tb.Helper()
	parts, sources := dualExample()
	x, err := bdm.FromDualPartitions(parts, sources, exAttr, blocking.Identity())
	if err != nil {
		tb.Fatalf("FromDualPartitions: %v", err)
	}
	return x
}

func sourceOf(s bool) bdm.Source {
	if s {
		return bdm.SourceS
	}
	return bdm.SourceR
}

func absInt64(v int64) int64 {
	if v < 0 {
		if v == -v { // math.MinInt64
			return 0
		}
		return -v
	}
	return v
}

// Fuzz + property tests proving each strategy's binary key coding obeys
// the contract in mapreduce/keycode.go: unequal codes decide Compare,
// equal comparison keys get equal codes, Exact codings never collide,
// and the declared group-bit prefix agrees exactly with Group. The raw
// fuzz inputs are mapped into each key type's documented domain (block
// and partition indexes are non-negative and bounded by the coding
// guards; the BlockSplit split components use −1 as the unsplit
// sentinel).

// clampIndex maps a raw fuzz value into [-1, 1<<30).
func clampIndex(v int64) int {
	if v < 0 {
		v = -v
	}
	return int(v%(1<<30)) - 1
}

// clampNonNeg maps a raw fuzz value into [0, bound).
func clampNonNeg(v int64, bound int64) int {
	if v < 0 {
		v = -v
	}
	return int(v % bound)
}

func FuzzBSKeyCoding(f *testing.F) {
	f.Add(int64(0), int64(-1), int64(-1), int64(0), int64(-1), int64(-1))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(1), int64(0))
	f.Add(int64(1<<31), int64(1<<20), int64(0), int64(1<<31), int64(1<<20), int64(0))
	coding := bsKeyCoding(mustTestBDM(f))
	f.Fuzz(func(t *testing.T, blockA, iA, jA, blockB, iB, jB int64) {
		a := BSKey{Block: clampNonNeg(blockA, 1<<32), I: clampIndex(iA), J: clampIndex(jA)}
		b := BSKey{Block: clampNonNeg(blockB, 1<<32), I: clampIndex(iB), J: clampIndex(jB)}
		if err := coding.Verify(compareBSKeys, compareBSKeys, a, b); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzPRKeyCoding(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(1))
	f.Add(int64(1<<31), int64(1<<32-1), int64(1<<62), int64(1<<31), int64(1<<32-1), int64(1<<62))
	coding := prKeyCoding(mustTestBDM(f), 8)
	f.Fuzz(func(t *testing.T, rangeA, blockA, idxA, rangeB, blockB, idxB int64) {
		a := PRKey{Range: clampNonNeg(rangeA, 1<<31), Block: clampNonNeg(blockA, 1<<32), Index: absInt64(idxA)}
		b := PRKey{Range: clampNonNeg(rangeB, 1<<31), Block: clampNonNeg(blockB, 1<<32), Index: absInt64(idxB)}
		if err := coding.Verify(comparePRKeys, groupPRKeys, a, b); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzBSDKeyCoding(f *testing.F) {
	f.Add(int64(0), int64(-1), int64(-1), true, int64(0), int64(-1), int64(0), false)
	f.Add(int64(7), int64(3), int64(2), false, int64(7), int64(3), int64(2), true)
	coding := bsdKeyCoding(mustTestDualBDM(f))
	f.Fuzz(func(t *testing.T, blockA, rA, sA int64, srcA bool, blockB, rB, sB int64, srcB bool) {
		clampPart := func(v int64) int {
			if v < 0 {
				v = -v
			}
			return int(v%((1<<16)-2)) - 1 // [-1, 1<<16-3]: +1 fits uint16
		}
		a := BSDKey{Block: clampNonNeg(blockA, 1<<32), RPart: clampPart(rA), SPart: clampPart(sA), Source: sourceOf(srcA)}
		b := BSDKey{Block: clampNonNeg(blockB, 1<<32), RPart: clampPart(rB), SPart: clampPart(sB), Source: sourceOf(srcB)}
		if err := coding.Verify(compareBSDKeys, groupBSDKeys, a, b); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzPRDKeyCoding(f *testing.F) {
	f.Add(int64(0), int64(0), true, int64(0), int64(0), int64(0), false, int64(0))
	f.Add(int64(1<<30), int64(1<<32-1), false, int64(1<<62), int64(1<<30), int64(1<<32-1), true, int64(1<<62))
	coding := prdKeyCoding(mustTestDualBDM(f), 8)
	f.Fuzz(func(t *testing.T, rangeA, blockA int64, srcA bool, idxA, rangeB, blockB int64, srcB bool, idxB int64) {
		a := PRDKey{Range: clampNonNeg(rangeA, 1<<31), Block: clampNonNeg(blockA, 1<<32), Source: sourceOf(srcA), Index: absInt64(idxA) % (1 << 62)}
		b := PRDKey{Range: clampNonNeg(rangeB, 1<<31), Block: clampNonNeg(blockB, 1<<32), Source: sourceOf(srcB), Index: absInt64(idxB) % (1 << 62)}
		if err := coding.Verify(comparePRDKeys, groupPRDKeys, a, b); err != nil {
			t.Fatal(err)
		}
	})
}

// TestKeyCodingsRandomMatrix hammers all four codings with dense random
// keys drawn from a small domain, so equal comparison keys, equal
// groups, and adjacent codes all occur constantly — the regime where an
// off-by-one in the packing would collide or reorder.
func TestKeyCodingsRandomMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := mustTestBDM(t)
	dx := mustTestDualBDM(t)
	bs := bsKeyCoding(x)
	pr := prKeyCoding(x, 8)
	bsd := bsdKeyCoding(dx)
	prd := prdKeyCoding(dx, 8)
	small := func(n int) int { return rng.Intn(n) }
	for trial := 0; trial < 50000; trial++ {
		{
			a := BSKey{Block: small(4), I: small(4) - 1, J: small(4) - 1}
			b := BSKey{Block: small(4), I: small(4) - 1, J: small(4) - 1}
			if err := bs.Verify(compareBSKeys, compareBSKeys, a, b); err != nil {
				t.Fatal("BSKey:", err)
			}
		}
		{
			a := PRKey{Range: small(3), Block: small(3), Index: int64(small(4))}
			b := PRKey{Range: small(3), Block: small(3), Index: int64(small(4))}
			if err := pr.Verify(comparePRKeys, groupPRKeys, a, b); err != nil {
				t.Fatal("PRKey:", err)
			}
		}
		{
			a := BSDKey{Block: small(3), RPart: small(3) - 1, SPart: small(3) - 1, Source: sourceOf(small(2) == 0)}
			b := BSDKey{Block: small(3), RPart: small(3) - 1, SPart: small(3) - 1, Source: sourceOf(small(2) == 0)}
			if err := bsd.Verify(compareBSDKeys, groupBSDKeys, a, b); err != nil {
				t.Fatal("BSDKey:", err)
			}
		}
		{
			a := PRDKey{Range: small(3), Block: small(3), Source: sourceOf(small(2) == 0), Index: int64(small(4))}
			b := PRDKey{Range: small(3), Block: small(3), Source: sourceOf(small(2) == 0), Index: int64(small(4))}
			if err := prd.Verify(comparePRDKeys, groupPRDKeys, a, b); err != nil {
				t.Fatal("PRDKey:", err)
			}
		}
	}
}

// TestKeyCodingGuardsDisableOutOfRange pins the guard behaviour: a BDM
// too large for the packing must disable the coding (nil Encode), never
// produce a lossy one. Simulated via the r bound, the only guard a test
// can trip without building a 2^32-block matrix.
func TestKeyCodingGuardsDisableOutOfRange(t *testing.T) {
	x := mustTestBDM(t)
	if c := prKeyCoding(x, 1<<31+1); c.Encode != nil {
		t.Error("prKeyCoding: expected disabled coding for r > 1<<31")
	}
	if c := prKeyCoding(x, 8); c.Encode == nil {
		t.Error("prKeyCoding: expected enabled coding for small r")
	}
}
