package core

import (
	"fmt"

	"repro/internal/bdm"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// PairRange implements the pair-based load balancing strategy of
// Section V. All P pairs across all blocks are enumerated globally
// (column-wise within a block, blocks concatenated in index order); the
// pair index space [0, P) is cut into r ranges of ceil(P/r) pairs, and
// range k is processed by reduce task k. Every entity is sent to each
// range that contains at least one of its pairs, annotated with its
// block-wise entity index so that the reduce function can recompute pair
// indexes locally.
type PairRange struct{}

// Name implements Strategy.
func (PairRange) Name() string { return "PairRange" }

// NeedsBDM implements Strategy.
func (PairRange) NeedsBDM() bool { return true }

// PRKey is the composite map-output key: range index ‖ block index ‖
// entity index. Partitioning uses only Range; sorting uses the whole
// key; grouping uses (Range, Block) so one reduce call sees a block's
// relevant entities in ascending entity-index order.
type PRKey struct {
	Range int
	Block int
	Index int64
}

func (k PRKey) String() string { return fmt.Sprintf("%d.%d.%d", k.Range, k.Block, k.Index) }

// prValue is the reduce-side buffer entry: the entity plus its
// block-wise index. The shuffle carries the bare entity — the index
// already travels in the record's PRKey, so the reduce function
// reconstructs prValue from (key, value) instead of shipping the index
// twice per record.
type prValue struct {
	E     entity.Entity
	Index int64
}

func comparePRKeys(a, b PRKey) int {
	if c := mapreduce.CompareInts(a.Range, b.Range); c != 0 {
		return c
	}
	if c := mapreduce.CompareInts(a.Block, b.Block); c != 0 {
		return c
	}
	return mapreduce.CompareInt64s(a.Index, b.Index)
}

func groupPRKeys(a, b PRKey) int {
	if c := mapreduce.CompareInts(a.Range, b.Range); c != 0 {
		return c
	}
	return mapreduce.CompareInts(a.Block, b.Block)
}

// prKeyCoding packs a PRKey into an exact order-preserving code:
// range ‖ block in the high word, the entity index in the low word.
// Grouping is on (range, block), i.e. exactly the high 64 bits.
func prKeyCoding(x *bdm.Matrix, r int) mapreduce.KeyCoding[PRKey] {
	if x.NumBlocks() > 1<<32 || r > 1<<31 {
		return mapreduce.KeyCoding[PRKey]{}
	}
	return mapreduce.KeyCoding[PRKey]{
		Encode: func(k PRKey) mapreduce.Code {
			return mapreduce.Code{
				Hi: uint64(uint32(k.Range))<<32 | uint64(uint32(k.Block)),
				Lo: uint64(k.Index),
			}
		},
		Exact:     true,
		GroupBits: 64,
	}
}

// Job implements Strategy (Algorithm 2). Input records must be the BDM
// job's side output (blocking-key-annotated entities).
func (PairRange) Job(x *bdm.Matrix, r int, match Matcher) (MatchJob, error) {
	return pairRangeJob(x, r, matchKernel{match: match})
}

// JobPrepared implements PreparedStrategy.
func (PairRange) JobPrepared(x *bdm.Matrix, r int, pm PreparedMatcher) (MatchJob, error) {
	return pairRangeJob(x, r, preparedKernel(pm))
}

func pairRangeJob(x *bdm.Matrix, r int, kern matchKernel) (MatchJob, error) {
	if err := validateJobParams("PairRange", r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: PairRange requires a BDM")
	}
	ranges := NewRanges(x.Pairs(), r)
	return &mapreduce.Job[AnnotatedEntity, PRKey, entity.Entity, MatchOutput]{
		Name:           "pairrange",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[AnnotatedEntity, PRKey, entity.Entity] {
			return &prMapper{x: x, ranges: ranges}
		},
		NewReducer: func() mapreduce.Reducer[PRKey, entity.Entity, MatchOutput] {
			return &prReducer{x: x, ranges: ranges, kern: kern}
		},
		Partition: func(key PRKey, r int) int { return key.Range % r },
		Compare:   comparePRKeys,
		Group:     groupPRKeys,
		Coding:    prKeyCoding(x, r),
	}, nil
}

type prMapper struct {
	x      *bdm.Matrix
	ranges Ranges
	// entityIndex[k] is the index the next block-k entity of this
	// partition will receive (Algorithm 2 lines 4-8): the count of
	// block-k entities in preceding partitions, then incremented per
	// entity seen.
	entityIndex []int64
	scratch     []int
}

func (mp *prMapper) Configure(m, _, partitionIndex int) {
	if m != mp.x.NumPartitions() {
		panic(fmt.Sprintf("core: PairRange: job has %d map tasks but BDM was built for %d partitions", m, mp.x.NumPartitions()))
	}
	mp.entityIndex = make([]int64, mp.x.NumBlocks())
	for k := range mp.entityIndex {
		mp.entityIndex[k] = int64(mp.x.EntityOffset(k, partitionIndex))
	}
}

// Map implements Algorithm 2 lines 10-26: compute the entity's global
// block-wise index, find all ranges containing one of its pairs, and
// emit one annotated copy per relevant range.
func (mp *prMapper) Map(ctx *mapreduce.MapContext[AnnotatedEntity, PRKey, entity.Entity], rec AnnotatedEntity) {
	blockKey := rec.Key
	e := rec.Value
	k, ok := mp.x.BlockIndex(blockKey)
	if !ok {
		panic(fmt.Sprintf("core: PairRange: blocking key %q not present in BDM", blockKey))
	}
	x := mp.entityIndex[k]
	mp.entityIndex[k]++
	n := int64(mp.x.Size(k))
	mp.scratch = mp.ranges.relevantRanges(x, n, mp.x.PairOffset(k), mp.scratch)
	for _, rg := range mp.scratch {
		ctx.Emit(PRKey{Range: rg, Block: k, Index: x}, e)
	}
}

type prReducer struct {
	x      *bdm.Matrix
	ranges Ranges
	kern   matchKernel
	task   int
	buffer []prValue
	prep   []PreparedEntity
}

func (rd *prReducer) Configure(_, _, taskIndex int) { rd.task = taskIndex }

// Reduce implements Algorithm 2 lines 32-42: for one (range, block)
// group it receives the block's relevant entities in ascending index
// order, generates candidate pairs (x1, x2) with x1 < x2, and compares
// exactly those whose pair index falls into this task's range.
//
// Deviation from the paper's listing: when a candidate pair's range
// exceeds the task's range, the listing returns from the whole reduce
// call. That would skip valid pairs — e.g. after (x1,x2) overshoots,
// (x1', x2+1) with x1' < x1 can still fall in range (pair indexes grow
// with both components, so only the *rest of the inner loop* is safely
// skippable). We break the inner loop instead; completeness is covered
// by property tests against serial matching.
func (rd *prReducer) Reduce(ctx *matchCtx, k PRKey, values []mapreduce.Rec[PRKey, entity.Entity]) {
	n := int64(rd.x.Size(k.Block))
	off := rd.x.PairOffset(k.Block)
	// Comparing pair indexes against the task's [lo, hi) interval avoids
	// the per-pair division of Ranges.Index: p >= hi iff the pair's range
	// exceeds this task, p >= lo iff it is at least this task (every
	// valid p is < P, so the clamped bounds preserve both equivalences).
	lo, hi := rd.ranges.Bounds(rd.task)
	// Every value lands in the buffer; presizing once avoids the
	// append-doubling allocations the profiler showed on large groups.
	if cap(rd.buffer) < len(values) {
		rd.buffer = make([]prValue, 0, len(values))
	}
	if pm := rd.kern.pm; pm != nil {
		if cap(rd.prep) < len(values) {
			rd.prep = make([]PreparedEntity, 0, len(values))
		}
		rd.buffer, rd.prep = rd.buffer[:0], rd.prep[:0]
		for _, v := range values {
			pv := prValue{E: v.Value, Index: v.Key.Index}
			p2 := pm.Prepare(pv.E)
			for i, b := range rd.buffer {
				p := CellIndex(b.Index, pv.Index, n) + off
				if p >= hi {
					break
				}
				if p >= lo {
					matchAndEmitPrepared(ctx, pm, b.E, pv.E, rd.prep[i], p2)
				}
			}
			rd.buffer = append(rd.buffer, pv)
			rd.prep = append(rd.prep, p2)
		}
		rd.kern.releaseAll(rd.prep)
		return
	}
	rd.buffer = rd.buffer[:0]
	for _, v := range values {
		pv := prValue{E: v.Value, Index: v.Key.Index}
		for _, b := range rd.buffer {
			p := CellIndex(b.Index, pv.Index, n) + off
			if p >= hi {
				// Within this row (fixed pv.Index), pair indexes grow
				// with the buffered entity's index: nothing further in
				// the buffer can be in range.
				break
			}
			if p >= lo {
				matchAndEmit(ctx, rd.kern.match, b.E, pv.E)
			}
		}
		rd.buffer = append(rd.buffer, pv)
	}
}

// Plan implements Strategy. All quantities are exact and computed in
// O((b + r·m) log) time from the BDM, never touching pairs:
//
//   - reduce comparisons: range k processes exactly its pair-interval
//     size;
//   - reduce records: for each range and each block it overlaps, the
//     relevant entities form a union of at most four index intervals
//     (columns + row segments of the covered triangle region);
//   - map emits: the per-partition share of those intervals — entities
//     of partition p hold the contiguous index interval
//     [EntityOffset(k,p), EntityOffset(k,p)+|Φk,p|) within block k.
func (PairRange) Plan(x *bdm.Matrix, m, r int) (*Plan, error) {
	if err := validatePlanParams("PairRange", m, r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: PairRange.Plan requires a BDM")
	}
	if x.NumPartitions() != m {
		return nil, fmt.Errorf("core: PairRange.Plan: BDM has %d partitions, want m=%d", x.NumPartitions(), m)
	}
	ranges := NewRanges(x.Pairs(), r)
	p := newPlan("PairRange", m, r)

	for pi := 0; pi < m; pi++ {
		for k := 0; k < x.NumBlocks(); k++ {
			p.MapRecords[pi] += int64(x.SizeIn(k, pi))
		}
	}

	// Walk blocks and ranges in tandem; both partition [0, P).
	k := 0
	for j := 0; j < r; j++ {
		lo, hi := ranges.Bounds(j)
		p.ReduceComparisons[j] = hi - lo
		if hi <= lo {
			continue
		}
		// Advance to the first block whose pair interval reaches lo.
		for k < x.NumBlocks() && x.PairOffset(k)+x.BlockPairs(k) <= lo {
			k++
		}
		for kk := k; kk < x.NumBlocks() && x.PairOffset(kk) < hi; kk++ {
			bLo, bHi := x.PairOffset(kk), x.PairOffset(kk)+x.BlockPairs(kk)
			if bHi <= bLo {
				continue
			}
			a := max64(lo, bLo) - bLo
			b := min64(hi, bHi) - bLo
			ivs := relevantEntities(a, b, int64(x.Size(kk)))
			p.ReduceRecords[j] += intervalsTotal(ivs)
			// Charge each relevant entity to its owning partition's map
			// task: partition pi owns index interval [off, off+size).
			off := int64(0)
			for pi := 0; pi < m; pi++ {
				size := int64(x.SizeIn(kk, pi))
				if size > 0 {
					for _, iv := range ivs {
						p.MapEmits[pi] += intersectLen(iv, off, off+size)
					}
				}
				off += size
			}
		}
	}
	return p, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
