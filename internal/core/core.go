// Package core implements the paper's primary contribution: the three
// entity-redistribution strategies for MapReduce-based entity resolution
// with blocking —
//
//   - Basic (Section III): the straightforward one-block-per-reduce-call
//     dataflow, vulnerable to data skew;
//   - BlockSplit (Section IV): splits above-average blocks into
//     per-input-partition sub-blocks and greedily assigns the resulting
//     match tasks to reduce tasks;
//   - PairRange (Section V): globally enumerates all entity pairs and
//     assigns each reduce task an (almost) equal-sized contiguous range
//     of pair indexes.
//
// Each strategy can produce an executable mapreduce.Job (Job 2 of the
// paper's workflow, consuming the BDM job's annotated side output) and an
// analytic Plan that computes the identical per-task workloads directly
// from the BDM without materializing any pairs. Plans make cluster-scale
// experiments (Figures 13/14) tractable on one machine; tests assert that
// executed workloads and planned workloads agree exactly.
//
// Two-source variants (Appendix I) are provided as BlockSplitDual and
// PairRangeDual.
package core

import (
	"fmt"
	"strings"

	"repro/internal/bdm"
	"repro/internal/cluster"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// Matcher compares two entities and reports their similarity and whether
// they match. A nil Matcher is valid everywhere and means "count the
// comparison but do not compare" — used by benchmarks that only measure
// redistribution behaviour. Matchers are invoked from concurrently
// executing reduce tasks and must be safe for concurrent use (pure
// functions, the common case, trivially are).
type Matcher func(a, b entity.Entity) (float64, bool)

// PreparedEntity is the opaque prepared form of one entity: whatever a
// PreparedMatcher derives once per entity (cached runes, token sets,
// n-gram profiles, …) so that the O(group²) comparison loop of a reduce
// call runs on precomputed forms.
type PreparedEntity any

// PreparedMatcher is the two-phase form of Matcher. The reducers of all
// strategies prepare each entity exactly once per key group — O(group)
// preparation instead of re-deriving both sides on every one of the
// O(group²) comparisons — and invoke MatchPrepared on the cached forms.
// Prepare is called from a single goroutine per reduce group; the
// returned PreparedEntity is never shared across groups. MatchPrepared
// must be safe for concurrent use across groups (pure functions are).
//
// A PreparedMatcher must be semantically equivalent to the plain Matcher
// PlainMatcher derives from it: same decisions, same similarities.
type PreparedMatcher interface {
	// Prepare derives the cached comparison form of one entity.
	Prepare(e entity.Entity) PreparedEntity
	// MatchPrepared compares two prepared entities and reports their
	// similarity and whether they match.
	MatchPrepared(a, b PreparedEntity) (float64, bool)
}

// PreparedReleaser is an optional extension of PreparedMatcher: a
// matcher whose prepared forms come from a free list implements it, and
// the strategy reducers hand every PreparedEntity back via
// ReleasePrepared as soon as its reduce group is finished. A released
// entity must never be used again. Matchers without the interface are
// simply never released (the GC reclaims their prepared forms).
type PreparedReleaser interface {
	ReleasePrepared(PreparedEntity)
}

// PlainMatcher adapts a PreparedMatcher to the plain Matcher form by
// preparing both entities on every call. It is the transparent fallback
// for execution paths that only accept a Matcher (custom strategies,
// sorted neighborhood, serial references); results are identical, only
// the per-pair preparation cost returns.
func PlainMatcher(pm PreparedMatcher) Matcher {
	rel, _ := pm.(PreparedReleaser)
	return func(a, b entity.Entity) (float64, bool) {
		pa, pb := pm.Prepare(a), pm.Prepare(b)
		sim, ok := pm.MatchPrepared(pa, pb)
		if rel != nil {
			rel.ReleasePrepared(pa)
			rel.ReleasePrepared(pb)
		}
		return sim, ok
	}
}

// matchKernel carries whichever matcher form a job was built with. At
// most one of match/pm is set; both nil means "count comparisons
// without comparing" (the nil-Matcher contract). rel is pm's optional
// release hook.
type matchKernel struct {
	match Matcher
	pm    PreparedMatcher
	rel   PreparedReleaser
}

// preparedKernel builds the kernel for a prepared matcher, wiring the
// release hook when the matcher provides one.
func preparedKernel(pm PreparedMatcher) matchKernel {
	k := matchKernel{pm: pm}
	if r, ok := pm.(PreparedReleaser); ok {
		k.rel = r
	}
	return k
}

// release hands one prepared entity back to the matcher's free list.
func (k *matchKernel) release(p PreparedEntity) {
	if k.rel != nil {
		k.rel.ReleasePrepared(p)
	}
}

// releaseAll hands a whole group buffer back.
func (k *matchKernel) releaseAll(ps []PreparedEntity) {
	if k.rel == nil {
		return
	}
	for _, p := range ps {
		k.rel.ReleasePrepared(p)
	}
}

// MatchPair is one entry of the match result: the IDs of two entities
// considered the same, with A < B lexicographically for canonical form.
type MatchPair struct {
	A, B string
}

// NewMatchPair returns the canonical (ordered) pair for two entity IDs.
// The IDs are copied: match pairs are retained in job output long after
// the reduce call, and on the external dataflow's arena read path an
// entity ID aliases a ~32KB decode block — a retained alias would pin
// the whole block. Copying only on match (not per comparison) keeps the
// cost proportional to the result size; both IDs share one allocation.
func NewMatchPair(id1, id2 string) MatchPair {
	if id1 > id2 {
		id1, id2 = id2, id1
	}
	joined := id1 + id2
	return MatchPair{A: joined[:len(id1)], B: joined[len(id1):]}
}

func (p MatchPair) String() string { return p.A + "|" + p.B }

// CompareMatchPairs orders pairs lexicographically (A, then B) — the
// canonical match-result order used by every pipeline.
func CompareMatchPairs(a, b MatchPair) int {
	if c := strings.Compare(a.A, b.A); c != 0 {
		return c
	}
	return strings.Compare(a.B, b.B)
}

// ComparisonsCounter is the user-counter name under which every
// strategy's reduce function records the number of pair comparisons it
// performed. The cluster simulator keys its cost model off it. It
// aliases the engine's constant, which gives it an allocation-free fast
// path in the contexts' Inc.
const ComparisonsCounter = mapreduce.ComparisonsCounter

// AnnotatedEntity is one input record of a matching job: an entity
// annotated with its blocking key — the format of the BDM job's side
// output (Algorithm 3's "additionalOutput").
type AnnotatedEntity = mapreduce.Pair[string, entity.Entity]

// MatchOutput is one emitted match: the canonical pair and its
// similarity.
type MatchOutput = mapreduce.Pair[MatchPair, float64]

// MatchJob is a runnable matching job (Job 2 of the paper's workflow)
// with the strategy's intermediate key/value types erased: all
// strategies consume blocking-key-annotated entities and emit match
// pairs, but each redistributes through its own composite key type.
type MatchJob = mapreduce.JobRunner[AnnotatedEntity, MatchOutput]

// MatchJobResult is the result of executing a MatchJob.
type MatchJobResult = mapreduce.Result[AnnotatedEntity, MatchOutput]

// matchCtx is the reduce-side context type shared by all strategy
// reducers.
type matchCtx = mapreduce.ReduceContext[MatchOutput]

// Strategy is a one-source redistribution strategy. Implementations:
// Basic, BlockSplit, PairRange.
type Strategy interface {
	// Name returns the paper's name for the strategy.
	Name() string
	// NeedsBDM reports whether the strategy requires the block
	// distribution matrix (true for BlockSplit and PairRange; Basic runs
	// as a single job without the preprocessing step).
	NeedsBDM() bool
	// Job builds the executable MR Job 2. Input records must be the BDM
	// job's side output (blocking-key-annotated entities). x may be nil
	// iff !NeedsBDM().
	Job(x *bdm.Matrix, r int, match Matcher) (MatchJob, error)
	// Plan computes the exact per-task workloads Job would produce for m
	// input partitions and r reduce tasks, without executing anything.
	Plan(x *bdm.Matrix, m, r int) (*Plan, error)
}

// PreparedStrategy is implemented by strategies whose matching job can
// exploit a PreparedMatcher (all in-tree one-source strategies). The
// job's dataflow and comparison order are identical to Job's; only the
// per-pair cost changes.
type PreparedStrategy interface {
	Strategy
	// JobPrepared is Job with a prepared matcher driving the reduce
	// phase. pm may be nil (count comparisons only).
	JobPrepared(x *bdm.Matrix, r int, pm PreparedMatcher) (MatchJob, error)
}

// DualStrategy is a two-source (R×S) redistribution strategy from
// Appendix I. Implementations: BlockSplitDual, PairRangeDual.
type DualStrategy interface {
	Name() string
	Job(x *bdm.DualMatrix, r int, match Matcher) (MatchJob, error)
	Plan(x *bdm.DualMatrix, r int) (*Plan, error)
}

// PreparedDualStrategy is the two-source analogue of PreparedStrategy
// (implemented by BlockSplitDual and PairRangeDual).
type PreparedDualStrategy interface {
	DualStrategy
	JobPrepared(x *bdm.DualMatrix, r int, pm PreparedMatcher) (MatchJob, error)
}

// Plan holds the exact per-task workloads a strategy's Job 2 produces.
// It is the analytic twin of an executed job's metrics.
type Plan struct {
	Strategy string
	M, R     int
	// MapRecords[i] is the number of input records map task i reads;
	// MapEmits[i] the number of key-value pairs it emits.
	MapRecords []int64
	MapEmits   []int64
	// ReduceRecords[j] is the number of key-value pairs reduce task j
	// receives; ReduceComparisons[j] the number of pair comparisons it
	// performs.
	ReduceRecords     []int64
	ReduceComparisons []int64
}

// TotalComparisons sums the per-reduce-task comparisons; for a correct
// plan this equals the BDM's total pair count P.
func (p *Plan) TotalComparisons() int64 {
	var t int64
	for _, c := range p.ReduceComparisons {
		t += c
	}
	return t
}

// TotalMapEmits sums the emitted map-output key-value pairs (the metric
// of Figure 12).
func (p *Plan) TotalMapEmits() int64 {
	var t int64
	for _, e := range p.MapEmits {
		t += e
	}
	return t
}

// MaxReduceComparisons returns the heaviest reduce-task workload, the
// quantity that lower-bounds the reduce-phase makespan.
func (p *Plan) MaxReduceComparisons() int64 {
	var mx int64
	for _, c := range p.ReduceComparisons {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// Workload converts the plan into the cluster simulator's job workload.
func (p *Plan) Workload(name string) cluster.JobWorkload {
	return cluster.JobWorkload{
		Name:              name,
		MapRecords:        p.MapRecords,
		MapEmits:          p.MapEmits,
		ReduceRecords:     p.ReduceRecords,
		ReduceComparisons: p.ReduceComparisons,
	}
}

func newPlan(strategy string, m, r int) *Plan {
	return &Plan{
		Strategy:          strategy,
		M:                 m,
		R:                 r,
		MapRecords:        make([]int64, m),
		MapEmits:          make([]int64, m),
		ReduceRecords:     make([]int64, r),
		ReduceComparisons: make([]int64, r),
	}
}

// matchAndEmit performs one comparison via the matcher and emits the
// canonical pair on success. A nil matcher counts only.
func matchAndEmit(ctx *matchCtx, match Matcher, a, b entity.Entity) {
	ctx.Inc(ComparisonsCounter, 1)
	if match == nil {
		return
	}
	if sim, ok := match(a, b); ok {
		ctx.Emit(MatchOutput{Key: NewMatchPair(a.ID, b.ID), Value: sim})
	}
}

// matchAndEmitPrepared is matchAndEmit on already-prepared forms.
func matchAndEmitPrepared(ctx *matchCtx, pm PreparedMatcher, a, b entity.Entity, pa, pb PreparedEntity) {
	ctx.Inc(ComparisonsCounter, 1)
	if sim, ok := pm.MatchPrepared(pa, pb); ok {
		ctx.Emit(MatchOutput{Key: NewMatchPair(a.ID, b.ID), Value: sim})
	}
}

func validateJobParams(name string, r int) error {
	if r <= 0 {
		return fmt.Errorf("core: %s: number of reduce tasks must be > 0, got %d", name, r)
	}
	return nil
}

func validatePlanParams(name string, m, r int) error {
	if m <= 0 {
		return fmt.Errorf("core: %s: number of map tasks must be > 0, got %d", name, m)
	}
	return validateJobParams(name, r)
}
