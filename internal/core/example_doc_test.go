package core_test

import (
	"fmt"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
)

// The paper's pair enumeration: cell indexes of the upper triangle of a
// 5-entity block, column-wise.
func ExampleCellIndex() {
	fmt.Println(core.CellIndex(0, 1, 5)) // first pair of column 0
	fmt.Println(core.CellIndex(0, 2, 5))
	fmt.Println(core.CellIndex(2, 3, 5))
	fmt.Println(core.CellIndex(3, 4, 5)) // last pair
	// Output:
	// 0
	// 1
	// 7
	// 9
}

// Splitting P=20 pairs into r=3 ranges reproduces the paper's running
// example: ranges [0,6], [7,13], [14,19].
func ExampleNewRanges() {
	rg := core.NewRanges(20, 3)
	for k := 0; k < 3; k++ {
		lo, hi := rg.Bounds(k)
		fmt.Printf("range %d: [%d,%d]\n", k, lo, hi-1)
	}
	// Output:
	// range 0: [0,6]
	// range 1: [7,13]
	// range 2: [14,19]
}

// BuildAssignment shows BlockSplit's match-task creation on a skewed
// two-block input: the large block is split, the small one is not.
func ExampleBuildAssignment() {
	parts := entity.Partitions{
		{e("a", "big"), e("b", "big"), e("c", "big"), e("d", "small")},
		{e("e", "big"), e("f", "big"), e("g", "small")},
	}
	x, _ := bdm.FromPartitions(parts, "k", blocking.Identity())
	asg := core.BuildAssignment(x, 2, nil)
	bigIdx, _ := x.BlockIndex("big")
	smallIdx, _ := x.BlockIndex("small")
	fmt.Println("big split:", asg.Split(bigIdx))
	fmt.Println("small split:", asg.Split(smallIdx))
	// Output:
	// big split: true
	// small split: false
}

func e(id, key string) entity.Entity { return entity.New(id, "k", key) }
