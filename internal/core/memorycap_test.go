package core

import (
	"math/rand"
	"testing"

	"repro/internal/entity"
)

// memoryCapDataset: one mid-sized block that stays below the average
// reduce workload when r is small, plus enough other work to raise the
// average above it.
func memoryCapDataset() entity.Partitions {
	var es []entity.Entity
	for i := 0; i < 40; i++ {
		es = append(es, entity.New(id4("mid", i), "k", "mid"))
	}
	for i := 0; i < 60; i++ {
		es = append(es, entity.New(id4("big", i), "k", "big"))
	}
	return entity.SplitRoundRobin(es, 4)
}

func TestBlockSplitMemoryCapForcesSplit(t *testing.T) {
	parts := memoryCapDataset()
	x := mustBDM(t, parts)
	midK, _ := x.BlockIndex("mid")

	// Default behaviour: with r=2 the average workload is large and the
	// mid block (40 entities, 780 pairs) is NOT split.
	def := BuildAssignment(x, 2, nil)
	if def.Split(midK) {
		t.Fatal("mid block unexpectedly split without a memory cap")
	}

	// A 30-entity memory cap forces the split regardless of workload.
	capped := buildAssignment(x, 2, nil, 30)
	if !capped.Split(midK) {
		t.Fatal("memory cap did not force the split")
	}
	// Every match task now buffers at most ~cap entities per side.
	for _, task := range capped.ordered {
		if task.id.i < 0 {
			if x.Size(task.id.block) > 30 {
				t.Errorf("unsplit block %d exceeds the cap with %d entities", task.id.block, x.Size(task.id.block))
			}
			continue
		}
		if n := x.SizeIn(task.id.block, task.id.i); n > 30 {
			t.Errorf("sub-block %d.%d holds %d entities", task.id.block, task.id.i, n)
		}
	}
}

func TestBlockSplitMemoryCapPreservesCompleteness(t *testing.T) {
	parts := memoryCapDataset()
	x := mustBDM(t, parts)
	want := expectedPairs(parts)
	got := make(map[MatchPair]int)
	strat := BlockSplit{MaxEntitiesPerTask: 25}
	runStrategy(t, strat, x, parts, 3, recordingMatcher(&got))
	if len(got) != len(want) {
		t.Fatalf("compared %d distinct pairs, want %d", len(got), len(want))
	}
	for p, n := range got {
		if n != 1 || !want[p] {
			t.Fatalf("pair %v compared %d times (expected=%v)", p, n, want[p])
		}
	}
}

func TestBlockSplitMemoryCapPlanMatchesExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 8; trial++ {
		parts := randomParts(rng, rng.Intn(150)+20, rng.Intn(4)+1, rng.Intn(5)+1)
		x := mustBDM(t, parts)
		r := rng.Intn(6) + 1
		strat := BlockSplit{MaxEntitiesPerTask: rng.Intn(20) + 5}
		assertPlanMatchesExecution(t, strat, x, parts, "k", r)
	}
}

func TestBlockSplitMemoryCapBoundsReduceBuffer(t *testing.T) {
	// The reduce-input records of any single match task stay within
	// 2×cap (cross tasks buffer two sub-blocks).
	parts := memoryCapDataset()
	x := mustBDM(t, parts)
	strat := BlockSplit{MaxEntitiesPerTask: 20}
	res := runStrategy(t, strat, x, parts, 1, nil)
	// r=1: a single reduce task processes every group sequentially, so
	// per-group buffering is what the cap controls; groups equal match
	// tasks here.
	if res.ReduceMetrics[0].InputGroups == 1 {
		t.Fatal("expected multiple match tasks under the cap")
	}
}
