package core

import (
	"fmt"

	"repro/internal/bdm"
	"repro/internal/entity"
	"repro/internal/mapreduce"
	"repro/internal/runio"
)

// runio codecs for every intermediate key/value type the five
// redistribution strategies shuffle, registered at init so all of them
// run unchanged on the external (out-of-core) dataflow. Composite keys
// are flat sequences of zig-zag varints; entity-carrying values reuse
// the entity.Codec. The 128-bit binary key code is not part of these
// encodings — the engine stores it as a fixed-width record prefix.

// entCodec is the shared entity payload codec (registered by the
// entity package, whose init runs before this one).
var entCodec = entity.Codec{}

type bsKeyCodec struct{}

func (bsKeyCodec) Append(dst []byte, k BSKey) []byte {
	dst = runio.AppendVarint(dst, int64(k.Reduce))
	dst = runio.AppendVarint(dst, int64(k.Block))
	dst = runio.AppendVarint(dst, int64(k.I))
	return runio.AppendVarint(dst, int64(k.J))
}

func (bsKeyCodec) Decode(src []byte) (BSKey, int, error) {
	var k BSKey
	n, err := decodeInts(src, &k.Reduce, &k.Block, &k.I, &k.J)
	if err != nil {
		return k, 0, fmt.Errorf("BSKey: %w", err)
	}
	return k, n, nil
}

type bsValueCodec struct{}

func (bsValueCodec) Append(dst []byte, v bsValue) []byte {
	dst = runio.AppendVarint(dst, int64(v.Partition))
	return entCodec.Append(dst, v.E)
}

func (bsValueCodec) Decode(src []byte) (bsValue, int, error) {
	var v bsValue
	n, err := decodeInts(src, &v.Partition)
	if err != nil {
		return v, 0, fmt.Errorf("bsValue: %w", err)
	}
	e, en, err := entCodec.Decode(src[n:])
	if err != nil {
		return v, 0, fmt.Errorf("bsValue: %w", err)
	}
	v.E = e
	return v, n + en, nil
}

type prKeyCodec struct{}

func (prKeyCodec) Append(dst []byte, k PRKey) []byte {
	dst = runio.AppendVarint(dst, int64(k.Range))
	dst = runio.AppendVarint(dst, int64(k.Block))
	return runio.AppendVarint(dst, k.Index)
}

func (prKeyCodec) Decode(src []byte) (PRKey, int, error) {
	var k PRKey
	n, err := decodeInts(src, &k.Range, &k.Block)
	if err != nil {
		return k, 0, fmt.Errorf("PRKey: %w", err)
	}
	idx, in, err := runio.Varint(src[n:])
	if err != nil {
		return k, 0, fmt.Errorf("PRKey index: %w", err)
	}
	k.Index = idx
	return k, n + in, nil
}

type bsdKeyCodec struct{}

func (bsdKeyCodec) Append(dst []byte, k BSDKey) []byte {
	dst = runio.AppendVarint(dst, int64(k.Reduce))
	dst = runio.AppendVarint(dst, int64(k.Block))
	dst = runio.AppendVarint(dst, int64(k.RPart))
	dst = runio.AppendVarint(dst, int64(k.SPart))
	return runio.AppendVarint(dst, int64(k.Source))
}

func (bsdKeyCodec) Decode(src []byte) (BSDKey, int, error) {
	var k BSDKey
	var src_ int
	n, err := decodeInts(src, &k.Reduce, &k.Block, &k.RPart, &k.SPart, &src_)
	if err != nil {
		return k, 0, fmt.Errorf("BSDKey: %w", err)
	}
	k.Source = bdm.Source(src_)
	return k, n, nil
}

type prdKeyCodec struct{}

func (prdKeyCodec) Append(dst []byte, k PRDKey) []byte {
	dst = runio.AppendVarint(dst, int64(k.Range))
	dst = runio.AppendVarint(dst, int64(k.Block))
	dst = runio.AppendVarint(dst, int64(k.Source))
	return runio.AppendVarint(dst, k.Index)
}

func (prdKeyCodec) Decode(src []byte) (PRDKey, int, error) {
	var k PRDKey
	var src_ int
	n, err := decodeInts(src, &k.Range, &k.Block, &src_)
	if err != nil {
		return k, 0, fmt.Errorf("PRDKey: %w", err)
	}
	k.Source = bdm.Source(src_)
	idx, in, err := runio.Varint(src[n:])
	if err != nil {
		return k, 0, fmt.Errorf("PRDKey index: %w", err)
	}
	k.Index = idx
	return k, n + in, nil
}

// decodeInts decodes consecutive zig-zag varints into the given int
// fields, returning the bytes consumed.
func decodeInts(src []byte, dst ...*int) (int, error) {
	n := 0
	for i, d := range dst {
		v, vn, err := runio.Varint(src[n:])
		if err != nil {
			return 0, fmt.Errorf("field %d: %w", i, err)
		}
		*d = int(v)
		n += vn
	}
	return n, nil
}

// decodeInt4String is decodeInts over a string source for up to four
// fields (nil stops early). Taking fixed parameters instead of a
// variadic slice keeps the hot shared-decode path free of the ...*int
// allocation.
func decodeInt4String(src string, a, b, c, d *int) (int, error) {
	n := 0
	for i, p := range [...]*int{a, b, c, d} {
		if p == nil {
			break
		}
		v, vn, err := runio.VarintString(src[n:])
		if err != nil {
			return 0, fmt.Errorf("field %d: %w", i, err)
		}
		*p = int(v)
		n += vn
	}
	return n, nil
}

// Shared decoders (runio.SharedDecoder) for the strategy codecs: the
// composite keys are pure varints (nothing to alias — the win is that
// having them lets the engine pick the arena read path, which needs
// BOTH the key and value codec to support shared decoding), while
// bsValue defers to the entity shared decoder whose decoded strings
// alias the source block.

func (bsKeyCodec) NewSharedDecoder() func(string) (BSKey, int, error) {
	return func(src string) (BSKey, int, error) {
		var k BSKey
		n, err := decodeInt4String(src, &k.Reduce, &k.Block, &k.I, &k.J)
		if err != nil {
			return k, 0, fmt.Errorf("BSKey: %w", err)
		}
		return k, n, nil
	}
}

func (bsValueCodec) NewSharedDecoder() func(string) (bsValue, int, error) {
	decEnt := entCodec.NewSharedDecoder()
	return func(src string) (bsValue, int, error) {
		var v bsValue
		p, n, err := runio.VarintString(src)
		if err != nil {
			return v, 0, fmt.Errorf("bsValue: %w", err)
		}
		v.Partition = int(p)
		e, en, err := decEnt(src[n:])
		if err != nil {
			return v, 0, fmt.Errorf("bsValue: %w", err)
		}
		v.E = e
		return v, n + en, nil
	}
}

func (prKeyCodec) NewSharedDecoder() func(string) (PRKey, int, error) {
	return func(src string) (PRKey, int, error) {
		var k PRKey
		n, err := decodeInt4String(src, &k.Range, &k.Block, nil, nil)
		if err != nil {
			return k, 0, fmt.Errorf("PRKey: %w", err)
		}
		idx, in, err := runio.VarintString(src[n:])
		if err != nil {
			return k, 0, fmt.Errorf("PRKey index: %w", err)
		}
		k.Index = idx
		return k, n + in, nil
	}
}

func (bsdKeyCodec) NewSharedDecoder() func(string) (BSDKey, int, error) {
	return func(src string) (BSDKey, int, error) {
		var k BSDKey
		var srcField int
		n, err := decodeInt4String(src, &k.Reduce, &k.Block, &k.RPart, &k.SPart)
		if err != nil {
			return k, 0, fmt.Errorf("BSDKey: %w", err)
		}
		sv, sn, err := runio.VarintString(src[n:])
		if err != nil {
			return k, 0, fmt.Errorf("BSDKey: field 4: %w", err)
		}
		srcField = int(sv)
		k.Source = bdm.Source(srcField)
		return k, n + sn, nil
	}
}

func (prdKeyCodec) NewSharedDecoder() func(string) (PRDKey, int, error) {
	return func(src string) (PRDKey, int, error) {
		var k PRDKey
		var srcField int
		n, err := decodeInt4String(src, &k.Range, &k.Block, &srcField, nil)
		if err != nil {
			return k, 0, fmt.Errorf("PRDKey: %w", err)
		}
		k.Source = bdm.Source(srcField)
		idx, in, err := runio.VarintString(src[n:])
		if err != nil {
			return k, 0, fmt.Errorf("PRDKey index: %w", err)
		}
		k.Index = idx
		return k, n + in, nil
	}
}

// NewSharedDecoder for MatchPair aliases both IDs; used only by remote
// transport decode, which copies into result slices it owns.
func (matchPairCodec) NewSharedDecoder() func(string) (MatchPair, int, error) {
	return func(src string) (MatchPair, int, error) {
		var p MatchPair
		a, n, err := runio.SharedString(src)
		if err != nil {
			return p, 0, fmt.Errorf("MatchPair.A: %w", err)
		}
		b, bn, err := runio.SharedString(src[n:])
		if err != nil {
			return p, 0, fmt.Errorf("MatchPair.B: %w", err)
		}
		p.A, p.B = a, b
		return p, n + bn, nil
	}
}

type matchPairCodec struct{}

func (matchPairCodec) Append(dst []byte, p MatchPair) []byte {
	dst = runio.AppendString(dst, p.A)
	return runio.AppendString(dst, p.B)
}

func (matchPairCodec) Decode(src []byte) (MatchPair, int, error) {
	var p MatchPair
	a, n, err := runio.String(src)
	if err != nil {
		return p, 0, fmt.Errorf("MatchPair.A: %w", err)
	}
	b, bn, err := runio.String(src[n:])
	if err != nil {
		return p, 0, fmt.Errorf("MatchPair.B: %w", err)
	}
	p.A, p.B = a, b
	return p, n + bn, nil
}

func init() {
	runio.Register[BSKey](bsKeyCodec{})
	runio.Register[bsValue](bsValueCodec{})
	runio.Register[PRKey](prKeyCodec{})
	runio.Register[BSDKey](bsdKeyCodec{})
	runio.Register[PRDKey](prdKeyCodec{})
	// Distributed execution ships match outputs between processes:
	// register MatchPair and the MatchOutput pair shape. Similarities
	// travel as the float64 codec's fixed 8 bytes (exact bit pattern),
	// never as formatted decimals. The AnnotatedEntity pair codec is
	// registered by the bdm package (the shape is shared).
	runio.Register[MatchPair](matchPairCodec{})
	mapreduce.RegisterPairCodec[MatchPair, float64]()
}
