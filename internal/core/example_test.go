package core

import (
	"cmp"
	"reflect"
	"slices"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// This file reproduces the paper's running example (Figures 3-7):
// 14 entities in two partitions, four blocks w/x/y/z with sizes
// 4/2/3/5, P = 20 pairs, m = 2 map tasks and r = 3 reduce tasks.

const exAttr = "k"

func exampleParts() entity.Partitions {
	mk := func(id, block string) entity.Entity { return entity.New(id, exAttr, block) }
	return entity.Partitions{
		{mk("A", "w"), mk("B", "w"), mk("C", "x"), mk("D", "y"), mk("E", "y"), mk("F", "z"), mk("G", "z")},
		{mk("H", "w"), mk("I", "w"), mk("K", "y"), mk("L", "x"), mk("M", "z"), mk("N", "z"), mk("O", "z")},
	}
}

func exampleBDM(t *testing.T) *bdm.Matrix {
	t.Helper()
	x, err := bdm.FromPartitions(exampleParts(), exAttr, blocking.Identity())
	if err != nil {
		t.Fatalf("FromPartitions: %v", err)
	}
	return x
}

func TestPaperExampleBDM(t *testing.T) {
	x := exampleBDM(t)
	if got, want := x.NumBlocks(), 4; got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	wantSizes := map[string][2]int{"w": {2, 2}, "x": {1, 1}, "y": {2, 1}, "z": {2, 3}}
	for key, want := range wantSizes {
		k, ok := x.BlockIndex(key)
		if !ok {
			t.Fatalf("block %q missing", key)
		}
		if got := [2]int{x.SizeIn(k, 0), x.SizeIn(k, 1)}; got != want {
			t.Errorf("block %q sizes = %v, want %v", key, got, want)
		}
	}
	if got := x.Pairs(); got != 20 {
		t.Errorf("Pairs = %d, want 20 (paper: P=20)", got)
	}
	// Block order w,x,y,z with pair offsets 0, 6, 7, 10 (Figure 6).
	wantOffsets := []int64{0, 6, 7, 10}
	for k, want := range wantOffsets {
		if got := x.PairOffset(k); got != want {
			t.Errorf("PairOffset(%d) = %d, want %d", k, got, want)
		}
	}
	// The largest block z holds 10 of 20 pairs (50%) with 5 of 14
	// entities (~35%), the skew the paper highlights.
	zk, _ := x.BlockIndex("z")
	if got := x.BlockPairs(zk); got != 10 {
		t.Errorf("z pairs = %d, want 10", got)
	}
}

func TestPaperExampleBDMViaMapReduce(t *testing.T) {
	// The MR computation (Algorithm 3) must agree with the direct
	// builder, with and without the combiner.
	for _, combiner := range []bool{false, true} {
		eng := &mapreduce.Engine{}
		x, side, res, err := bdm.Compute(eng, exampleParts(), bdm.JobOptions{
			Attr:           exAttr,
			KeyFunc:        blocking.Identity(),
			NumReduceTasks: 3,
			UseCombiner:    combiner,
		})
		if err != nil {
			t.Fatalf("Compute(combiner=%v): %v", combiner, err)
		}
		want := exampleBDM(t)
		if !reflect.DeepEqual(x.Cells(), want.Cells()) {
			t.Errorf("combiner=%v: MR cells = %v, want %v", combiner, x.Cells(), want.Cells())
		}
		// The side output must mirror the input partitioning with
		// blocking-key annotations.
		if len(side) != 2 || len(side[0]) != 7 || len(side[1]) != 7 {
			t.Fatalf("combiner=%v: side output shape wrong: %d/%d", combiner, len(side[0]), len(side[1]))
		}
		if got := side[1][4].Key; got != "z" {
			t.Errorf("M's side-output key = %q, want z", got)
		}
		// Combiner compresses the map output: one pair per non-zero
		// (block, partition) cell instead of one per entity.
		if combiner && res.MapOutputRecords != 8 {
			t.Errorf("combined map output = %d records, want 8 cells", res.MapOutputRecords)
		}
		if !combiner && res.MapOutputRecords != 14 {
			t.Errorf("uncombined map output = %d records, want 14", res.MapOutputRecords)
		}
	}
}

func TestPaperExampleBlockSplitAssignment(t *testing.T) {
	x := exampleBDM(t)
	asg := BuildAssignment(x, 3, nil)

	// avg = P/r = 20/3 = 6; only block z (10 pairs) is split.
	if asg.avg != 6 {
		t.Fatalf("avg workload = %d, want 6", asg.avg)
	}
	zk, _ := x.BlockIndex("z")
	// Match tasks in descending order: 0.* (6), 3.0×1 (6), 2.* (3),
	// 3.1 (3), 1.* (1), 3.0 (1) — exactly the paper's ordering.
	wantOrder := []struct {
		id    taskID
		comps int64
	}{
		{taskID{block: 0, i: -1, j: -1}, 6},
		{taskID{block: zk, i: 1, j: 0}, 6},
		{taskID{block: 2, i: -1, j: -1}, 3},
		{taskID{block: zk, i: 1, j: 1}, 3},
		{taskID{block: 1, i: -1, j: -1}, 1},
		{taskID{block: zk, i: 0, j: 0}, 1},
	}
	if len(asg.ordered) != len(wantOrder) {
		t.Fatalf("got %d match tasks, want %d", len(asg.ordered), len(wantOrder))
	}
	for i, want := range wantOrder {
		got := asg.ordered[i]
		if got.id != want.id || got.comps != want.comps {
			t.Errorf("task[%d] = %+v (%d comps), want %+v (%d)", i, got.id, got.comps, want.id, want.comps)
		}
	}
	// Greedy assignment: loads 7, 7, 6 ("between six and seven
	// comparisons" per reduce task).
	loads := append([]int64(nil), asg.loads...)
	slices.SortFunc(loads, func(a, b int64) int { return cmp.Compare(b, a) })
	if !reflect.DeepEqual(loads, []int64{7, 7, 6}) {
		t.Errorf("reduce loads = %v, want [7 7 6]", loads)
	}
}

func TestPaperExampleBlockSplitExecution(t *testing.T) {
	x := exampleBDM(t)
	job, err := BlockSplit{}.Job(x, 3, nil)
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	res, err := job.Run(&mapreduce.Engine{}, annotated(exampleParts()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// "The replication of the five entities for the split block leads
	// to 19 key-value pairs for the 14 input entities."
	if res.MapOutputRecords != 19 {
		t.Errorf("map output = %d key-value pairs, want 19", res.MapOutputRecords)
	}
	assertComparisonLoads(t, res, []int64{7, 7, 6})
	if got := res.Counter(ComparisonsCounter); got != 20 {
		t.Errorf("total comparisons = %d, want P=20", got)
	}
}

func TestPaperExamplePairRangeEnumeration(t *testing.T) {
	x := exampleBDM(t)
	zk, _ := x.BlockIndex("z")
	// Pair indexes of Figure 6: p3(0,2)=11, p3(2,4)=18, p0(2,3)=5.
	if got := PairIndex(x, zk, 0, 2); got != 11 {
		t.Errorf("p3(0,2) = %d, want 11 (M's pmin)", got)
	}
	if got := PairIndex(x, zk, 2, 4); got != 18 {
		t.Errorf("p3(2,4) = %d, want 18 (M's pmax)", got)
	}
	if got := PairIndex(x, 0, 2, 3); got != 5 {
		t.Errorf("p0(2,3) = %d, want 5", got)
	}

	ranges := NewRanges(x.Pairs(), 3)
	if ranges.Q != 7 {
		t.Fatalf("Q = %d, want 7", ranges.Q)
	}
	for p, want := range map[int64]int{0: 0, 6: 0, 7: 1, 13: 1, 14: 2, 19: 2} {
		if got := ranges.Index(p); got != want {
			t.Errorf("range of pair %d = %d, want %d", p, got, want)
		}
	}

	// M (index 2 in z, pairs 11, 14, 17, 18) is needed by ranges 1 and 2.
	got := ranges.relevantRanges(2, 5, x.PairOffset(zk), nil)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("M's relevant ranges = %v, want [1 2]", got)
	}
	// F (index 0, pairs 10-13) is needed only by range 1 — the paper
	// notes reduce task 2 receives all of Φ3 but F.
	got = ranges.relevantRanges(0, 5, x.PairOffset(zk), nil)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("F's relevant ranges = %v, want [1]", got)
	}
}

func TestPaperExamplePairRangeExecution(t *testing.T) {
	x := exampleBDM(t)
	job, err := PairRange{}.Job(x, 3, nil)
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	res, err := job.Run(&mapreduce.Engine{}, annotated(exampleParts()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Ranges of 7, 7, and 6 pairs.
	assertComparisonLoads(t, res, []int64{7, 7, 6})
	if got := res.Counter(ComparisonsCounter); got != 20 {
		t.Errorf("total comparisons = %d, want P=20", got)
	}
	// Reduce task 1 receives all five entities of Φ3 plus all three of
	// Φ2 (Figure 7): 8 records. Task 2 receives Φ3 without F: 4.
	if got := res.ReduceMetrics[1].InputRecords; got != 8 {
		t.Errorf("reduce task 1 input = %d records, want 8", got)
	}
	if got := res.ReduceMetrics[2].InputRecords; got != 4 {
		t.Errorf("reduce task 2 input = %d records, want 4", got)
	}
}

func TestPaperExamplePlansMatchExecution(t *testing.T) {
	x := exampleBDM(t)
	for _, strat := range []Strategy{Basic{}, BlockSplit{}, PairRange{}} {
		assertPlanMatchesExecution(t, strat, x, exampleParts(), exAttr, 3)
	}
}

// annotated converts partitions into the (blocking key, entity) records
// Job 2 consumes. The example's blocking key is the entity's block
// attribute itself.
func annotated(parts entity.Partitions) [][]AnnotatedEntity {
	return annotatedInput(parts, exAttr)
}

func assertComparisonLoads(t *testing.T, res *MatchJobResult, wantSortedDesc []int64) {
	t.Helper()
	loads := make([]int64, len(res.ReduceMetrics))
	for i := range res.ReduceMetrics {
		loads[i] = res.ReduceMetrics[i].Counter(ComparisonsCounter)
	}
	sorted := append([]int64(nil), loads...)
	slices.SortFunc(sorted, func(a, b int64) int { return cmp.Compare(b, a) })
	if !reflect.DeepEqual(sorted, wantSortedDesc) {
		t.Errorf("per-task comparisons (sorted desc) = %v, want %v", sorted, wantSortedDesc)
	}
}
