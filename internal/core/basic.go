package core

import (
	"fmt"
	"strings"

	"repro/internal/bdm"
	"repro/internal/entity"
	"repro/internal/mapreduce"
)

// Basic is the straightforward MR implementation of blocking-based ER
// described in Section III: map emits (blocking key, entity), the default
// hash partitioner routes whole blocks to reduce tasks, and each reduce
// call compares all entities of one block. It needs no BDM and no
// preprocessing job, but the match work of an entire block lands on a
// single reduce task, so skewed block sizes dominate the execution time.
type Basic struct{}

// Name implements Strategy.
func (Basic) Name() string { return "Basic" }

// NeedsBDM implements Strategy: Basic runs without the preprocessing job.
func (Basic) NeedsBDM() bool { return false }

// Job implements Strategy. The BDM is ignored and may be nil.
func (Basic) Job(_ *bdm.Matrix, r int, match Matcher) (MatchJob, error) {
	return basicJob(r, matchKernel{match: match})
}

// JobPrepared implements PreparedStrategy.
func (Basic) JobPrepared(_ *bdm.Matrix, r int, pm PreparedMatcher) (MatchJob, error) {
	return basicJob(r, preparedKernel(pm))
}

func basicJob(r int, kern matchKernel) (MatchJob, error) {
	if err := validateJobParams("Basic", r); err != nil {
		return nil, err
	}
	return &mapreduce.Job[AnnotatedEntity, string, entity.Entity, MatchOutput]{
		Name:           "basic",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[AnnotatedEntity, string, entity.Entity] {
			return &mapreduce.MapperFunc[AnnotatedEntity, string, entity.Entity]{
				OnMap: func(ctx *mapreduce.MapContext[AnnotatedEntity, string, entity.Entity], rec AnnotatedEntity) {
					// Input records are the BDM job's side output
					// (blocking key, entity); Basic forwards them
					// unchanged. (Run standalone, the blocking key would
					// be computed here — the dataflow is identical.)
					ctx.Emit(rec.Key, rec.Value)
				},
			}
		},
		NewReducer: func() mapreduce.Reducer[string, entity.Entity, MatchOutput] {
			return &basicReducer{kern: kern}
		},
		Partition: mapreduce.HashPartition,
		Compare:   strings.Compare,
		// The blocking key is an arbitrary string: a 16-byte prefix code
		// decides most comparisons, ties fall back to the full compare.
		Coding: mapreduce.KeyCoding[string]{Encode: mapreduce.StringPrefixCode},
	}, nil
}

type basicReducer struct {
	kern   matchKernel
	buffer []entity.Entity
	prep   []PreparedEntity
}

// Reduce compares all entities of one block with each other. The buffer
// of already-seen entities is what forces a reduce task to hold an entire
// block in memory — the paper's memory-bottleneck argument against Basic.
func (b *basicReducer) Configure(_, _, _ int) {}

func (b *basicReducer) Reduce(ctx *matchCtx, _ string, values []mapreduce.Rec[string, entity.Entity]) {
	if pm := b.kern.pm; pm != nil {
		// Prepared path: derive each entity's comparison form once per
		// group, compare cached forms pairwise.
		b.buffer, b.prep = b.buffer[:0], b.prep[:0]
		for _, v := range values {
			e2 := v.Value
			p2 := pm.Prepare(e2)
			for i, e1 := range b.buffer {
				matchAndEmitPrepared(ctx, pm, e1, e2, b.prep[i], p2)
			}
			b.buffer = append(b.buffer, e2)
			b.prep = append(b.prep, p2)
		}
		b.kern.releaseAll(b.prep)
		return
	}
	b.buffer = b.buffer[:0]
	for _, v := range values {
		e2 := v.Value
		for _, e1 := range b.buffer {
			matchAndEmit(ctx, b.kern.match, e1, e2)
		}
		b.buffer = append(b.buffer, e2)
	}
}

// Plan implements Strategy: per-reduce-task comparisons follow from
// hash-partitioning whole blocks; the map phase emits exactly one
// key-value pair per input entity.
func (Basic) Plan(x *bdm.Matrix, m, r int) (*Plan, error) {
	if err := validatePlanParams("Basic", m, r); err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("core: Basic.Plan requires a BDM (used only for analysis)")
	}
	if x.NumPartitions() != m {
		return nil, fmt.Errorf("core: Basic.Plan: BDM has %d partitions, want m=%d", x.NumPartitions(), m)
	}
	p := newPlan("Basic", m, r)
	for k := 0; k < x.NumBlocks(); k++ {
		j := mapreduce.HashPartition(x.BlockKey(k), r)
		p.ReduceComparisons[j] += x.BlockPairs(k)
		p.ReduceRecords[j] += int64(x.Size(k))
		for pi := 0; pi < m; pi++ {
			n := int64(x.SizeIn(k, pi))
			p.MapRecords[pi] += n
			p.MapEmits[pi] += n
		}
	}
	return p, nil
}
