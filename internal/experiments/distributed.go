package experiments

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/match"
	"repro/internal/report"
)

// Distributed compares local and distributed execution of the full
// workflow per strategy: same dataset, same parameters, one run on the
// in-process engine and one dispatched through the caller's dist master
// (erbench -master starts it and workers register against it). The
// "identical" column is the PR's headline property — the distributed
// run's matches and comparison counts must equal the local run's
// exactly, because task attempts run the same typed kernels and the
// shuffle ships the same ERN1 byte stream the local external dataflow
// writes.
func Distributed(ctx context.Context, o Options) (*report.Table, error) {
	if o.Master == nil {
		return nil, fmt.Errorf("experiments: Distributed requires a started dist master (erbench -master)")
	}
	const (
		m         = 8
		r         = 32
		keyPrefix = 3
		threshold = 0.8
	)
	es := ds1(o)
	parts := entity.SplitRoundRobin(es, m)
	t := &report.Table{
		Title: fmt.Sprintf("Distributed vs local execution (DS1 scale=%g, m=%d, r=%d, %d workers)",
			o.scale(), m, r, o.Workers),
		Headers: []string{"strategy", "comparisons", "matches", "local wall", "dist wall", "identical"},
	}
	for _, strat := range allStrategies() {
		start := time.Now()
		local, err := er.RunPipeline(ctx, er.FromPartitions(parts), er.Config{
			RunOptions:      o.runOptions(),
			Strategy:        strat,
			Attr:            datagen.AttrTitle,
			BlockKey:        blocking.NormalizedPrefix(keyPrefix),
			PreparedMatcher: match.EditDistance(datagen.AttrTitle, threshold),
			R:               r,
			UseCombiner:     true,
		})
		if err != nil {
			return nil, err
		}
		localWall := time.Since(start)

		start = time.Now()
		dist, err := er.RunDistributedPipeline(ctx, er.FromPartitions(parts), er.DistParams{
			Strategy:    strat.Name(),
			Attr:        datagen.AttrTitle,
			KeyPrefix:   keyPrefix,
			Threshold:   threshold,
			R:           r,
			UseCombiner: true,
		}, o.runOptions())
		if err != nil {
			return nil, err
		}
		distWall := time.Since(start)

		identical := local.Comparisons == dist.Comparisons &&
			reflect.DeepEqual(local.Matches, dist.Matches)
		t.AddRow(strat.Name(), dist.Comparisons, len(dist.Matches),
			localWall.Round(time.Millisecond).String(),
			distWall.Round(time.Millisecond).String(),
			identical)
	}
	return t, nil
}
