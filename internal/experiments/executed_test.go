package experiments

import (
	"reflect"
	"testing"
)

// TestExecutedModeEqualsPlannerMode is the figure-level consequence of
// the exact planners: running the real MapReduce engine and feeding its
// measured workloads to the simulator must reproduce the planner-mode
// tables cell for cell.
func TestExecutedModeEqualsPlannerMode(t *testing.T) {
	planner := DefaultOptions()
	planner.Scale = 0.01
	executed := planner
	executed.Executed = true

	for _, figure := range []int{9, 10} {
		pt, err := ByNumber(t.Context(), figure, planner)
		if err != nil {
			t.Fatalf("figure %d planner: %v", figure, err)
		}
		et, err := ByNumber(t.Context(), figure, executed)
		if err != nil {
			t.Fatalf("figure %d executed: %v", figure, err)
		}
		if !reflect.DeepEqual(pt.Rows, et.Rows) {
			t.Errorf("figure %d: executed rows differ from planner rows\nplanner:  %v\nexecuted: %v",
				figure, pt.Rows, et.Rows)
		}
	}
}
