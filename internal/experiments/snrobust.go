package experiments

import (
	"context"

	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/report"
	"repro/internal/sn"
)

// SNRobustness quantifies the related-work claim of Section VII: Sorted
// Neighborhood "is by design less vulnerable to skewed data". For the
// controlled-skew datasets of Figure 9, blocked matching must evaluate
// every within-block pair (P grows quadratically as skew concentrates
// entities), while SN's window bounds total comparisons at < w·n
// regardless of skew. The table reports both, plus SN's per-reduce-task
// balance (max/mean of the window comparisons).
func SNRobustness(ctx context.Context, o Options) (*report.Table, error) {
	const (
		m      = 20
		r      = 40
		blocks = 100
		window = 10
	)
	nEntities := scaledCount(114000, o.scale())
	t := &report.Table{
		Title: fmt.Sprintf("Extension: Sorted Neighborhood skew robustness (n=%d, b=%d, w=%d, r=%d)",
			nEntities, blocks, window, r),
		Headers: []string{"skew s", "blocked pairs P", "SN comparisons", "SN/P", "keyed max/mean", "ranked max/mean"},
	}
	for _, s := range []float64{0, 0.4, 0.8, 1.2} {
		es := datagen.Exponential(nEntities, blocks, s, 42)
		parts := entity.SplitRoundRobin(es, m)

		var blockedPairs int64
		counts := make(map[string]int64)
		for _, e := range es {
			counts[e.Attr(datagen.AttrBlock)]++
		}
		for _, c := range counts {
			blockedPairs += c * (c - 1) / 2
		}

		// Sort by the block attribute: duplicates (same block) become
		// window neighbours, the standard SN setup.
		cfg := sn.Config{
			RunOptions: o.runOptions(),
			Attr:       datagen.AttrBlock,
			Key:        func(v string) string { return v },
			Window:     window,
			R:          r,
		}
		keyed, err := sn.RunPipeline(ctx, er.FromPartitions(parts), cfg)
		if err != nil {
			return nil, err
		}
		ranked, err := sn.RunRankedPipeline(ctx, er.FromPartitions(parts), cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(s, blockedPairs, keyed.Comparisons,
			float64(keyed.Comparisons)/float64(blockedPairs),
			balanceOf(keyed).MaxOverMean, balanceOf(ranked).MaxOverMean)
	}
	return t, nil
}

// balanceOf summarizes an SN run's per-reduce-task comparison loads.
func balanceOf(res *sn.Result) core.LoadStats {
	loads := make([]int64, len(res.MatchResult.ReduceMetrics))
	for i, rm := range res.MatchResult.ReduceMetrics {
		loads[i] = rm.Counter(core.ComparisonsCounter)
	}
	return core.ComputeLoadStats(loads)
}
