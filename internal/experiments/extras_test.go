package experiments

import (
	"strconv"
	"testing"
)

func TestAppendixDual(t *testing.T) {
	tbl, err := AppendixDual(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// PairRange stays essentially perfectly balanced at every r.
		pr := parseFloat(t, row[3])
		if pr > 1.05 {
			t.Errorf("r=%s: PairRangeDual max/mean = %g, want ~1", row[0], pr)
		}
		// BlockSplit's balance is never catastrophic (its match-task
		// granularity bounds the straggler).
		bs := parseFloat(t, row[1])
		if bs > 5 {
			t.Errorf("r=%s: BlockSplitDual max/mean = %g", row[0], bs)
		}
	}
}

func TestAblationsTable(t *testing.T) {
	tbl, err := Ablations(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]float64)
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("non-numeric ablation value %q", row[1])
		}
		byName[row[0]] = v
	}
	if v := byName["greedy vs round-robin assignment"]; v < 1 {
		t.Errorf("greedy should be at least as good as round-robin, ratio %g", v)
	}
	if v := byName["BDM combiner (paper footnote 2)"]; v < 1 {
		t.Errorf("combiner should not increase map output, factor %g", v)
	}
	if byName["PairRange emits per entity (r=1000)"] <= byName["PairRange emits per entity (r=20)"] {
		t.Error("PairRange replication should grow with r")
	}
	if v := byName["task granularity under ±15% slot speeds"]; v <= 1 {
		t.Errorf("coarse scheduling should be slower under heterogeneity, ratio %g", v)
	}
	if v := byName["memory cap 64 entities/task"]; v > 1.5 {
		t.Errorf("memory cap should cost little balance, ratio %g", v)
	}
}

func TestBalanceTable(t *testing.T) {
	tbl, err := BalanceTable(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Basic's straggler factor dwarfs the balanced strategies'.
	basic := parseFloat(t, tbl.Rows[0][3])
	bs := parseFloat(t, tbl.Rows[1][3])
	pr := parseFloat(t, tbl.Rows[2][3])
	if basic < 5*bs || basic < 5*pr {
		t.Errorf("Basic max/mean %g should dwarf BlockSplit %g / PairRange %g", basic, bs, pr)
	}
	if pr > 1.05 {
		t.Errorf("PairRange max/mean = %g, want ~1", pr)
	}
}

func TestQualityTable(t *testing.T) {
	tbl, err := QualityTable(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	prevRecall := 2.0
	for _, row := range tbl.Rows {
		p := parseFloat(t, row[3])
		rc := parseFloat(t, row[4])
		if p < 0 || p > 1 || rc < 0 || rc > 1 {
			t.Errorf("threshold %s: precision=%g recall=%g out of range", row[0], p, rc)
		}
		// Recall is non-increasing in the threshold.
		if rc > prevRecall+1e-9 {
			t.Errorf("recall increased with threshold at %s (%g after %g)", row[0], rc, prevRecall)
		}
		prevRecall = rc
	}
	// At 0.8 (the paper's threshold) recall should be near-perfect on
	// lightly perturbed duplicates.
	if rc := parseFloat(t, tbl.Rows[2][4]); rc < 0.9 {
		t.Errorf("recall at threshold 0.8 = %g, want > 0.9", rc)
	}
}
