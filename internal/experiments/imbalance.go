package experiments

import (
	"context"

	"fmt"

	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/report"
)

// Imbalance executes the full workflow per strategy and reports the
// *measured* reduce-task time imbalance from the engine's per-task
// duration histograms — the observed counterpart of BalanceTable's
// analytic load statistics, and the paper's execution-time skew
// argument made visible without a cluster. Each run gets a fresh
// Observer so one strategy's histogram never bleeds into the next;
// the in-memory typed dataflow and the out-of-core external dataflow
// are both measured, since spilling shifts where reduce time goes.
//
// Wall-clock times are nondeterministic, so the table asserts nothing;
// the stable signal is the ordering — Basic's max/mean tracks the
// blocking skew, BlockSplit and PairRange stay near 1.
func Imbalance(ctx context.Context, o Options) (*report.Table, error) {
	scale := minScale(o.scale(), 0.02)
	spec := datagen.DS1Spec(scale)
	es, _ := datagen.Generate(spec)
	parts := entity.SplitRoundRobin(es, 8)
	const r = 32

	t := &report.Table{
		Title:   fmt.Sprintf("Measured reduce-task time imbalance (DS1 scale=%g, %d entities, m=8, r=%d; executed)", scale, len(es), r),
		Headers: []string{"dataflow", "strategy", "comparisons", "tasks", "max ms", "mean ms", "max/mean"},
	}
	dataflows := []struct {
		name        string
		spillBudget int64
	}{
		{"typed", 0},
		{"external", 256 << 10},
	}
	for _, df := range dataflows {
		for _, strat := range allStrategies() {
			observer := obs.New(obs.Options{Log: obs.Quiet()})
			ro := er.RunOptions{
				Parallelism: o.parallelism(),
				SpillBudget: df.spillBudget,
				TmpDir:      o.TmpDir,
				Obs:         observer,
			}
			res, err := er.RunPipeline(ctx, er.FromPartitions(parts), er.Config{
				RunOptions:      ro,
				Strategy:        strat,
				Attr:            datagen.AttrTitle,
				BlockKey:        datagen.BlockKey(),
				PreparedMatcher: match.EditDistance(datagen.AttrTitle, 0.8),
				R:               r,
				UseCombiner:     true,
			})
			if err != nil {
				return nil, err
			}
			s := observer.Engine.ReduceTaskNS.Snapshot()
			t.AddRow(df.name, strat.Name(), res.Comparisons, s.Count,
				fmt.Sprintf("%.2f", float64(s.Max)/1e6),
				fmt.Sprintf("%.2f", s.Mean/1e6),
				fmt.Sprintf("%.2f", s.MaxOverMean()))
		}
	}
	return t, nil
}
