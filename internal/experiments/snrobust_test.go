package experiments

import "testing"

func TestSNRobustness(t *testing.T) {
	tbl, err := SNRobustness(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	prevP := 0.0
	for _, row := range tbl.Rows {
		p := parseFloat(t, row[1])
		snc := parseFloat(t, row[2])
		frac := parseFloat(t, row[3])
		// Blocked pairs grow with skew; SN comparisons stay bounded.
		if p < prevP {
			t.Errorf("s=%s: blocked pairs decreased (%g after %g)", row[0], p, prevP)
		}
		prevP = p
		if snc > 10*114000*0.06 { // < w·n with slack at the test scale
			t.Errorf("s=%s: SN comparisons = %g, want window-bounded", row[0], snc)
		}
		_ = frac
	}
	// At the highest skew, SN's work is a small fraction of blocked P.
	if frac := parseFloat(t, tbl.Rows[3][3]); frac > 0.2 {
		t.Errorf("SN/P at max skew = %g, want ≪ 1", frac)
	}
	// The naive key partitioner congests under skew; the rank
	// partitioner (the BDM idea applied to SN) stays balanced.
	if keyed := parseFloat(t, tbl.Rows[3][4]); keyed < 3 {
		t.Errorf("keyed max/mean at max skew = %g, expected congestion", keyed)
	}
	for _, row := range tbl.Rows {
		if ranked := parseFloat(t, row[5]); ranked > 1.2 {
			t.Errorf("s=%s: ranked max/mean = %g, want ~1", row[0], ranked)
		}
	}
}
