package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickOptions runs the experiments at the default 5% scale — the
// smallest scale at which the synthetic datasets preserve the paper's
// skew profile (the >70%-of-pairs head block needs a tail of thousands
// of small blocks, which a 1% sample cannot hold).
func quickOptions() Options {
	return DefaultOptions()
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestFigure8Profile(t *testing.T) {
	tbl, err := Figure8(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 datasets", len(tbl.Rows))
	}
	// Column 6 is the largest block's pair share; the paper documents
	// >70% for DS1 — at tiny scales it may dip, but it must dominate.
	for _, row := range tbl.Rows {
		share := parseFloat(t, row[6])
		if share < 40 {
			t.Errorf("%s largest-block pair share = %s, want the dominant block to hold most pairs", row[0], row[6])
		}
		ents := parseFloat(t, row[4])
		if ents > 15 {
			t.Errorf("%s largest-block entity share = %s, want a few percent", row[0], row[4])
		}
	}
}

func TestFigure9Shapes(t *testing.T) {
	tbl, err := Figure9(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	// At s=0 Basic is fastest (no BDM job).
	if b, bs := parseFloat(t, first[2]), parseFloat(t, first[3]); b >= bs {
		t.Errorf("s=0: Basic (%.0f) should beat BlockSplit (%.0f)", b, bs)
	}
	// At s=1 Basic is much slower than both balanced strategies.
	b1 := parseFloat(t, last[2])
	for col, name := range map[int]string{3: "BlockSplit", 4: "PairRange"} {
		v := parseFloat(t, last[col])
		if b1 < 4*v {
			t.Errorf("s=1: Basic (%.0f) should be ≫ %s (%.0f); paper reports >12×", b1, name, v)
		}
	}
	// Balanced strategies stay stable across skew (within 3× of their
	// own minimum once skew kicks in).
	for col := 3; col <= 4; col++ {
		lo, hi := 1e18, 0.0
		for _, row := range tbl.Rows[1:] {
			v := parseFloat(t, row[col])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > 3*lo {
			t.Errorf("column %d varies %g..%g across skew; should be robust", col, lo, hi)
		}
	}
}

func TestFigure10Shapes(t *testing.T) {
	tbl, err := Figure10(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		basic := parseFloat(t, row[1])
		for col := 2; col <= 3; col++ {
			if v := parseFloat(t, row[col]); basic < 2*v {
				t.Errorf("r=%s: Basic (%.0f) should clearly exceed col %d (%.0f)", row[0], basic, col, v)
			}
		}
	}
}

func TestFigure11Shapes(t *testing.T) {
	tbl, err := Figure11(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		bsU, bsS := parseFloat(t, row[1]), parseFloat(t, row[2])
		prU, prS := parseFloat(t, row[3]), parseFloat(t, row[4])
		if bsS < bsU*1.2 {
			t.Errorf("r=%s: sorted input should degrade BlockSplit (unsorted %.0f, sorted %.0f)", row[0], bsU, bsS)
		}
		if prS > prU*1.6 {
			t.Errorf("r=%s: PairRange should be largely unaffected by sorting (unsorted %.0f, sorted %.0f)", row[0], prU, prS)
		}
	}
}

func TestFigure12Shapes(t *testing.T) {
	tbl, err := Figure12(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	basic0 := parseFloat(t, tbl.Rows[0][1])
	prevPR := 0.0
	for i, row := range tbl.Rows {
		// Basic constant.
		if v := parseFloat(t, row[1]); v != basic0 {
			t.Errorf("Basic map output changed with r: %g vs %g", v, basic0)
		}
		// PairRange strictly increasing.
		pr := parseFloat(t, row[3])
		if pr <= prevPR {
			t.Errorf("row %d: PairRange map output not increasing (%g after %g)", i, pr, prevPR)
		}
		prevPR = pr
		// All strategies emit at least the input size when there is work.
		if bs := parseFloat(t, row[2]); bs < basic0 {
			t.Errorf("BlockSplit map output %g below input size %g", bs, basic0)
		}
	}
	// PairRange eventually exceeds BlockSplit (the Figure 12 crossover).
	lastBS := parseFloat(t, tbl.Rows[len(tbl.Rows)-1][2])
	lastPR := parseFloat(t, tbl.Rows[len(tbl.Rows)-1][3])
	if lastPR <= lastBS {
		t.Errorf("at r=160 PairRange (%g) should emit more than BlockSplit (%g)", lastPR, lastBS)
	}
}

func TestFigure13Shapes(t *testing.T) {
	tbl, err := Figure13(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	basicSpeedup := parseFloat(t, last[4])
	bsSpeedup := parseFloat(t, last[6])
	prSpeedup := parseFloat(t, last[8])
	if basicSpeedup > 3 {
		t.Errorf("Basic speedup at 100 nodes = %.1f; paper: does not scale past ~2 nodes", basicSpeedup)
	}
	if bsSpeedup < 3*basicSpeedup || prSpeedup < 3*basicSpeedup {
		t.Errorf("balanced strategies should scale far better than Basic (%.1f/%.1f vs %.1f)",
			bsSpeedup, prSpeedup, basicSpeedup)
	}
}

func TestFigure14Shapes(t *testing.T) {
	tbl, err := Figure14(t.Context(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Speedups grow monotonically with nodes for both strategies.
	prevBS, prevPR := 0.0, 0.0
	for _, row := range tbl.Rows {
		bs, pr := parseFloat(t, row[4]), parseFloat(t, row[6])
		if bs < prevBS || pr < prevPR {
			t.Errorf("nodes=%s: speedup regressed (BS %.1f after %.1f, PR %.1f after %.1f)",
				row[0], bs, prevBS, pr, prevPR)
		}
		prevBS, prevPR = bs, pr
	}
	if prevBS < 10 || prevPR < 10 {
		t.Errorf("DS2 speedup at 100 nodes = %.1f/%.1f, want near-linear scaling region", prevBS, prevPR)
	}
}

func TestByNumber(t *testing.T) {
	if _, err := ByNumber(t.Context(), 7, quickOptions()); err == nil {
		t.Error("figure 7 should be rejected")
	}
	if _, err := ByNumber(t.Context(), 8, quickOptions()); err != nil {
		t.Errorf("figure 8: %v", err)
	}
}
