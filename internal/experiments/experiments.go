// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section VI and Figure 8). Each Figure* function
// returns a report.Table whose rows are the series the corresponding
// figure plots. The cmd/erbench CLI and the repository's benchmarks are
// thin wrappers around this package.
//
// Execution-time figures use the analytic planners plus the cluster
// simulator (see DESIGN.md for the substitution argument); the planners
// are validated against the executing MapReduce engine by the test
// suites in internal/core and internal/er.
package experiments

import (
	"context"

	"fmt"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/report"
)

// Options tunes the harness. Scale shrinks the DS1/DS2 stand-ins for
// quick runs; 1.0 reproduces full-size datasets (planner mode keeps even
// those fast).
type Options struct {
	// RunOptions is the shared execution plumbing for executed-mode
	// runs: Parallelism bounds concurrently executing tasks per phase
	// (0 = the harness default of 8; cmd/erbench -parallelism),
	// SpillBudget > 0 selects the out-of-core external dataflow
	// (cmd/erbench -spill-budget) with TmpDir as the spill-directory
	// root (cmd/erbench -tmpdir).
	er.RunOptions

	Scale float64
	Cost  cluster.CostModel
	// Executed switches Figures 9 and 10 from the analytic planner to
	// real execution on the MapReduce engine: both jobs run, every
	// comparison is counted by the reduce functions, and the cluster
	// simulator consumes the *measured* per-task workloads. Because the
	// planners are exact, executed and planner mode produce identical
	// tables (a property the tests assert); executed mode exists to
	// demonstrate that, and is limited by real O(P) work.
	Executed bool
	// Dataset, when non-nil, replaces the generated DS1 stand-in with a
	// real dataset (cmd/erbench -in streams one from CSV via
	// entity.ScanCSV).
	Dataset []entity.Entity
}

// DefaultOptions uses a 5% scale — large enough for stable shapes,
// small enough for seconds-long runs.
func DefaultOptions() Options {
	return Options{Scale: 0.05, Cost: cluster.DefaultCostModel()}
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.05
	}
	return o.Scale
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return 8
	}
	return o.Parallelism
}

// runOptions returns the executed-mode RunOptions with the harness's
// parallelism default applied; engine resolution and the out-of-core
// switch live in er.RunOptions.ResolveEngine.
func (o Options) runOptions() er.RunOptions {
	ro := o.RunOptions
	ro.Parallelism = o.parallelism()
	return ro
}

// engine builds the executed-mode engine: in-memory typed by default,
// the out-of-core external dataflow when a spill budget is set.
func (o Options) engine() *mapreduce.Engine {
	ro := o.runOptions()
	return ro.ResolveEngine()
}

// strategies in the order the paper plots them.
func allStrategies() []core.Strategy {
	return []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}}
}

// ds1 generates the DS1 stand-in, already shuffled (unsorted order) —
// or returns the caller-supplied real dataset when Options.Dataset is
// set (cmd/erbench -in).
func ds1(o Options) []entity.Entity {
	if o.Dataset != nil {
		return o.Dataset
	}
	es, _ := datagen.Generate(datagen.DS1Spec(o.scale()))
	return es
}

func ds2(o Options) []entity.Entity {
	es, _ := datagen.Generate(datagen.DS2Spec(o.scale()))
	return es
}

func buildBDM(es []entity.Entity, m int, key blocking.KeyFunc) (*bdm.Matrix, error) {
	parts := entity.SplitRoundRobin(es, m)
	return bdm.FromPartitions(parts, datagen.AttrTitle, key)
}

// strategyTime returns the simulated execution time of the full workflow
// for one strategy, using the analytic planner or — in executed mode —
// the measured workloads of a real engine run.
func strategyTime(ctx context.Context, o Options, parts entity.Partitions, x *bdm.Matrix, strat core.Strategy, attr string, key blocking.KeyFunc, r int, cfg cluster.Config) (float64, error) {
	if !o.Executed {
		t, _, err := er.SimulatedStrategyTime(x, strat, x.NumPartitions(), r, cfg, o.Cost)
		return t, err
	}
	res, err := er.RunPipeline(ctx, er.FromPartitions(parts), er.Config{
		RunOptions:  o.runOptions(),
		Strategy:    strat,
		Attr:        attr,
		BlockKey:    key,
		Matcher:     nil, // count comparisons only
		R:           r,
		UseCombiner: true,
	})
	if err != nil {
		return 0, err
	}
	return er.SimulateWorkloads(cfg, o.Cost, res.Workloads())
}

// Figure8 reproduces the dataset-statistics table: entities, blocks,
// size and pair share of the largest block, total pairs.
func Figure8(ctx context.Context, o Options) (*report.Table, error) {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 8: datasets (scale=%g)", o.scale()),
		Headers: []string{"dataset", "entities", "blocks", "largest block", "largest %ents", "pairs", "largest %pairs"},
	}
	for _, d := range []struct {
		name string
		es   []entity.Entity
	}{{"DS1", ds1(o)}, {"DS2", ds2(o)}} {
		st := datagen.ComputeStats(d.es, datagen.AttrTitle, datagen.BlockKey())
		t.AddRow(d.name, st.Entities, st.Blocks, st.LargestBlock,
			fmt.Sprintf("%.1f%%", 100*st.LargestBlockFrac),
			st.Pairs,
			fmt.Sprintf("%.1f%%", 100*st.LargestPairsFrac))
	}
	return t, nil
}

// Figure9 reproduces the robustness experiment: average execution time
// per 10^4 pairs for skew factors s ∈ [0, 1] with b=100 blocks, n=10
// nodes, m=20 map tasks, r=100 reduce tasks. Basic is fastest at s=0
// (no BDM job) and degrades steeply with skew; BlockSplit and PairRange
// stay flat.
func Figure9(ctx context.Context, o Options) (*report.Table, error) {
	const (
		nodes  = 10
		m      = 20
		r      = 100
		blocks = 100
	)
	nEntities := scaledCount(114000, o.scale())
	cfg := cluster.DefaultSlots(nodes)
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 9: time per 10^4 pairs vs. data skew (n=%d entities, b=%d, nodes=%d, m=%d, r=%d)", nEntities, blocks, nodes, m, r),
		Headers: []string{"skew s", "pairs", "Basic", "BlockSplit", "PairRange"},
	}
	for _, s := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		es := datagen.Exponential(nEntities, blocks, s, 42)
		parts := entity.SplitRoundRobin(es, m)
		x, err := bdm.FromPartitions(parts, datagen.AttrBlock, blocking.Identity())
		if err != nil {
			return nil, err
		}
		pairs := x.Pairs()
		row := []any{s, pairs}
		for _, strat := range allStrategies() {
			tt, err := strategyTime(ctx, o, parts, x, strat, datagen.AttrBlock, blocking.Identity(), r, cfg)
			if err != nil {
				return nil, err
			}
			perPairs := tt / (float64(pairs) / 1e4)
			row = append(row, perPairs)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure10 reproduces the reduce-task experiment on DS1: execution time
// for r ∈ {20..160}, nodes=10, m=20. Basic is bounded below by its
// largest block and shows peaks when several large blocks hash to the
// same reduce task; BlockSplit and PairRange improve with r.
func Figure10(ctx context.Context, o Options) (*report.Table, error) {
	const (
		nodes = 10
		m     = 20
	)
	es := ds1(o)
	parts := entity.SplitRoundRobin(es, m)
	x, err := bdm.FromPartitions(parts, datagen.AttrTitle, datagen.BlockKey())
	if err != nil {
		return nil, err
	}
	cfg := cluster.DefaultSlots(nodes)
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 10: execution time vs. number of reduce tasks (DS1 scale=%g, nodes=%d, m=%d)", o.scale(), nodes, m),
		Headers: []string{"r", "Basic", "BlockSplit", "PairRange"},
	}
	for r := 20; r <= 160; r += 20 {
		row := []any{r}
		for _, strat := range allStrategies() {
			tt, err := strategyTime(ctx, o, parts, x, strat, datagen.AttrTitle, datagen.BlockKey(), r, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, tt)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure11 reproduces the sorted-input experiment: BlockSplit and
// PairRange on DS1 partitioned in arbitrary (round-robin) order versus
// sorted by title and split contiguously. Sorting groups large blocks
// into few partitions, crippling BlockSplit's splitting; PairRange is
// unaffected.
func Figure11(ctx context.Context, o Options) (*report.Table, error) {
	const (
		nodes = 10
		m     = 20
	)
	es := ds1(o)
	cfg := cluster.DefaultSlots(nodes)

	unsortedBDM, err := bdm.FromPartitions(entity.SplitRoundRobin(es, m), datagen.AttrTitle, datagen.BlockKey())
	if err != nil {
		return nil, err
	}
	sorted := entity.SortByAttr(es, datagen.AttrTitle)
	sortedBDM, err := bdm.FromPartitions(entity.SplitContiguous(sorted, m), datagen.AttrTitle, datagen.BlockKey())
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   fmt.Sprintf("Figure 11: sorted vs. unsorted input (DS1 scale=%g, nodes=%d, m=%d)", o.scale(), nodes, m),
		Headers: []string{"r", "BlockSplit unsorted", "BlockSplit sorted", "PairRange unsorted", "PairRange sorted"},
	}
	for r := 20; r <= 160; r += 20 {
		row := []any{r}
		for _, strat := range []core.Strategy{core.BlockSplit{}, core.PairRange{}} {
			for _, x := range []*bdm.Matrix{unsortedBDM, sortedBDM} {
				tt, _, err := er.SimulatedStrategyTime(x, strat, m, r, cfg, o.Cost)
				if err != nil {
					return nil, err
				}
				row = append(row, tt)
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure12 reproduces the map-output experiment: number of key-value
// pairs emitted by the map phase of the matching job for r ∈ {20..160}.
// Basic always emits exactly one pair per entity; BlockSplit grows
// step-wise (splitting more blocks as r grows); PairRange grows almost
// linearly with r and eventually emits the most.
func Figure12(ctx context.Context, o Options) (*report.Table, error) {
	const m = 20
	es := ds1(o)
	x, err := buildBDM(es, m, datagen.BlockKey())
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 12: map output key-value pairs vs. r (DS1 scale=%g, m=%d)", o.scale(), m),
		Headers: []string{"r", "Basic", "BlockSplit", "PairRange"},
	}
	for r := 20; r <= 160; r += 20 {
		row := []any{r}
		for _, strat := range allStrategies() {
			plan, err := strat.Plan(x, m, r)
			if err != nil {
				return nil, err
			}
			row = append(row, plan.TotalMapEmits())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// scalabilityNodes is the node sweep of Figures 13 and 14.
var scalabilityNodes = []int{1, 2, 5, 10, 20, 40, 100}

// Figure13 reproduces the DS1 scalability experiment: execution time and
// speedup for n nodes with m=2n map and r=10n reduce tasks. Basic stops
// scaling past ~2 nodes; the balanced strategies scale near-linearly up
// to ~10 nodes at DS1's size.
func Figure13(ctx context.Context, o Options) (*report.Table, error) {
	return scalability("Figure 13", ds1(o), allStrategies(), o)
}

// Figure14 reproduces the DS2 scalability experiment (BlockSplit and
// PairRange only — the paper drops Basic for the large dataset). The
// 10× larger workload keeps per-task comparisons reasonable, so
// near-linear scaling extends to ~40 nodes.
func Figure14(ctx context.Context, o Options) (*report.Table, error) {
	return scalability("Figure 14", ds2(o), []core.Strategy{core.BlockSplit{}, core.PairRange{}}, o)
}

func scalability(name string, es []entity.Entity, strats []core.Strategy, o Options) (*report.Table, error) {
	headers := []string{"nodes", "m", "r"}
	for _, s := range strats {
		headers = append(headers, s.Name(), s.Name()+" speedup")
	}
	t := &report.Table{
		Title:   fmt.Sprintf("%s: scalability (entities=%d, m=2n, r=10n)", name, len(es)),
		Headers: headers,
	}
	base := make([]float64, len(strats))
	for _, nodes := range scalabilityNodes {
		m, r := 2*nodes, 10*nodes
		x, err := buildBDM(es, m, datagen.BlockKey())
		if err != nil {
			return nil, err
		}
		cfg := cluster.DefaultSlots(nodes)
		row := []any{nodes, m, r}
		for i, strat := range strats {
			tt, _, err := er.SimulatedStrategyTime(x, strat, m, r, cfg, o.Cost)
			if err != nil {
				return nil, err
			}
			if nodes == scalabilityNodes[0] {
				base[i] = tt
			}
			row = append(row, tt, base[i]/tt)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func scaledCount(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 100 {
		s = 100
	}
	return s
}

// ByNumber dispatches to the figure functions; valid numbers are 8-14.
func ByNumber(ctx context.Context, figure int, o Options) (*report.Table, error) {
	switch figure {
	case 8:
		return Figure8(ctx, o)
	case 9:
		return Figure9(ctx, o)
	case 10:
		return Figure10(ctx, o)
	case 11:
		return Figure11(ctx, o)
	case 12:
		return Figure12(ctx, o)
	case 13:
		return Figure13(ctx, o)
	case 14:
		return Figure14(ctx, o)
	default:
		return nil, fmt.Errorf("experiments: no figure %d (valid: 8-14)", figure)
	}
}
