package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bdm"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/report"
)

// AppendixDual exercises the two-source extension of Appendix I (the
// paper describes the dataflow but reports no measurements): it splits
// the DS1 stand-in into two overlapping sources and reports, per reduce
// task count, the cross-source pair count and each dual strategy's
// straggler factor (max/mean reduce load) and Gini coefficient.
func AppendixDual(ctx context.Context, o Options) (*report.Table, error) {
	es := ds1(o)
	r1, s1 := datagen.TwoSources(es, 0.5, 17)
	parts := append(entity.SplitRoundRobin(r1, 10), entity.SplitRoundRobin(s1, 10)...)
	sources := make([]bdm.Source, 20)
	for i := 10; i < 20; i++ {
		sources[i] = bdm.SourceS
	}
	x, err := bdm.FromDualPartitions(parts, sources, datagen.AttrTitle, datagen.BlockKey())
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: fmt.Sprintf("Appendix I: two-source matching R×S (DS1 scale=%g split 50/50, P=%d cross pairs)",
			o.scale(), x.Pairs()),
		Headers: []string{"r", "BlockSplit max/mean", "BlockSplit Gini", "PairRange max/mean", "PairRange Gini"},
	}
	for _, r := range []int{10, 20, 40, 80, 160} {
		row := []any{r}
		for _, strat := range []core.DualStrategy{core.BlockSplitDual{}, core.PairRangeDual{}} {
			plan, err := strat.Plan(x, r)
			if err != nil {
				return nil, err
			}
			st := plan.ComparisonStats()
			row = append(row, st.MaxOverMean, st.Gini)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Ablations quantifies the design choices DESIGN.md calls out, on the
// DS1 stand-in with m=20.
func Ablations(ctx context.Context, o Options) (*report.Table, error) {
	es := ds1(o)
	parts := entity.SplitRoundRobin(es, 20)
	x, err := bdm.FromPartitions(parts, datagen.AttrTitle, datagen.BlockKey())
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablations (DS1 scale=%g, m=20, r=100)", o.scale()),
		Headers: []string{"ablation", "value", "meaning"},
	}

	// 1. Greedy vs round-robin match-task assignment.
	greedy, err := core.BlockSplit{}.PlanWithAssign(x, 20, 100, core.GreedyAssign)
	if err != nil {
		return nil, err
	}
	rr, err := core.BlockSplit{}.PlanWithAssign(x, 20, 100, core.RoundRobinAssign)
	if err != nil {
		return nil, err
	}
	t.AddRow("greedy vs round-robin assignment",
		float64(rr.MaxReduceComparisons())/float64(greedy.MaxReduceComparisons()),
		"round-robin max reduce load / greedy")

	// 2. BDM combiner.
	eng := o.engine()
	_, _, plain, err := bdm.ComputeContext(ctx, eng, parts, bdm.JobOptions{
		Attr: datagen.AttrTitle, KeyFunc: datagen.BlockKey(), NumReduceTasks: 20,
	})
	if err != nil {
		return nil, err
	}
	_, _, combined, err := bdm.ComputeContext(ctx, eng, parts, bdm.JobOptions{
		Attr: datagen.AttrTitle, KeyFunc: datagen.BlockKey(), NumReduceTasks: 20, UseCombiner: true,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("BDM combiner (paper footnote 2)",
		float64(plain.MapOutputRecords)/float64(combined.MapOutputRecords),
		"map-output reduction factor")

	// 3. PairRange replication overhead across r.
	for _, r := range []int{20, 160, 1000} {
		plan, err := core.PairRange{}.Plan(x, 20, r)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("PairRange emits per entity (r=%d)", r),
			float64(plan.TotalMapEmits())/float64(x.TotalEntities()),
			"replication factor (Basic = 1.0)")
	}

	// 4. Slot heterogeneity: coarse (1 task/slot) vs fine (8 tasks/slot)
	// makespan for a perfectly balanced workload.
	cfg := cluster.DefaultSlots(10)
	speeds := cfg.SlotSpeeds(cfg.ReduceSlots())
	coarse := make([]float64, cfg.ReduceSlots())
	for i := range coarse {
		coarse[i] = 1000
	}
	fine := make([]float64, 8*cfg.ReduceSlots())
	for i := range fine {
		fine[i] = 125
	}
	mc := cluster.ScheduleWithSpeeds(coarse, speeds).Makespan
	mf := cluster.ScheduleWithSpeeds(fine, speeds).Makespan
	t.AddRow("task granularity under ±15% slot speeds", mc/mf,
		"coarse/fine makespan (why more reduce tasks help)")

	// 4b. Speculative execution, measured on the real engine (the
	// simulator used to carry its own copy of this policy; the engine's
	// RetryPolicy.SpeculativeSlowdown is now the single implementation).
	// One map attempt stalls far past the median task duration — with
	// backups enabled a second attempt overtakes it.
	specRatio, err := speculativeAblation(ctx, o, parts)
	if err != nil {
		return nil, err
	}
	t.AddRow("speculative execution (one stalled map attempt)", specRatio,
		"plain/speculative wall clock on the real engine")

	// 5. BlockSplit memory cap: forcing small match tasks costs little
	// balance but bounds the reduce-side buffer.
	def, err := core.BlockSplit{}.Plan(x, 20, 100)
	if err != nil {
		return nil, err
	}
	capped, err := core.BlockSplit{MaxEntitiesPerTask: 64}.Plan(x, 20, 100)
	if err != nil {
		return nil, err
	}
	t.AddRow("memory cap 64 entities/task",
		float64(capped.MaxReduceComparisons())/float64(def.MaxReduceComparisons()),
		"max reduce load vs uncapped")

	return t, nil
}

// speculativeAblation runs the BDM job twice with a fault hook that
// stalls map task 0's first attempt for stallFor — a deliberate
// straggler, orders of magnitude past the median task duration. The
// plain run waits the stall out; the speculative run launches a backup
// attempt (which the hook leaves alone) as soon as the straggler
// crosses the slowdown threshold, so its wall clock is bounded by the
// backup's start, not the stall. Returns the plain/speculative ratio.
func speculativeAblation(ctx context.Context, o Options, parts entity.Partitions) (float64, error) {
	const stallFor = 200 * time.Millisecond
	hook := func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
		if phase == mapreduce.MapTask && task == 0 && attempt == 1 && point == mapreduce.FaultTaskStart {
			tm := time.NewTimer(stallFor)
			defer tm.Stop()
			select {
			case <-tm.C:
			case <-ctx.Done(): // a superseded straggler stops stalling
			}
		}
		return nil
	}
	run := func(retry mapreduce.RetryPolicy) (time.Duration, error) {
		eng := &mapreduce.Engine{Parallelism: o.parallelism(), Retry: retry, FaultHook: hook}
		start := time.Now()
		_, _, _, err := bdm.ComputeContext(ctx, eng, parts, bdm.JobOptions{
			Attr: datagen.AttrTitle, KeyFunc: datagen.BlockKey(), NumReduceTasks: 20, UseCombiner: true,
		})
		return time.Since(start), err
	}
	plain, err := run(mapreduce.RetryPolicy{})
	if err != nil {
		return 0, err
	}
	spec, err := run(mapreduce.RetryPolicy{
		SpeculativeSlowdown: 1.5,
		SpeculativeInterval: time.Millisecond,
		SpeculativeMinAge:   5 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	if spec <= 0 {
		return 0, nil
	}
	return float64(plain) / float64(spec), nil
}

// QualityTable sweeps the match threshold on the DS1 stand-in and
// reports precision/recall/F1 against the generator's injected
// duplicates — executed end to end (real comparisons). Not a paper
// figure (the paper fixes the threshold at 0.8 and studies runtime);
// included because a downstream user tuning a matcher needs it.
func QualityTable(ctx context.Context, o Options) (*report.Table, error) {
	spec := datagen.DS1Spec(minScale(o.scale(), 0.02))
	es, truthPairs := datagen.Generate(spec)
	truth := make([]core.MatchPair, len(truthPairs))
	for i, tp := range truthPairs {
		truth[i] = core.NewMatchPair(tp[0], tp[1])
	}
	parts := entity.SplitRoundRobin(es, 8)
	t := &report.Table{
		Title:   fmt.Sprintf("Match quality vs. threshold (DS1 scale=%g, %d entities, %d true duplicates)", minScale(o.scale(), 0.02), len(es), len(truth)),
		Headers: []string{"threshold", "comparisons", "matches", "precision", "recall", "F1"},
	}
	for _, th := range []float64{0.60, 0.70, 0.80, 0.90, 0.95} {
		th := th
		res, err := er.RunPipeline(ctx, er.FromPartitions(parts), er.Config{
			RunOptions:      o.runOptions(),
			Strategy:        core.BlockSplit{},
			Attr:            datagen.AttrTitle,
			BlockKey:        datagen.BlockKey(),
			PreparedMatcher: match.EditDistance(datagen.AttrTitle, th),
			R:               32,
			UseCombiner:     true,
		})
		if err != nil {
			return nil, err
		}
		q := er.Evaluate(res.Matches, truth)
		t.AddRow(th, res.Comparisons, len(res.Matches), q.Precision(), q.Recall(), q.F1())
	}
	return t, nil
}

// minScale caps the scale for executed-mode tables.
func minScale(s, cap float64) float64 {
	if s > cap {
		return cap
	}
	return s
}

// BalanceTable reports per-strategy load statistics (straggler factor,
// CV, Gini) on the DS1 stand-in — the quantitative core of the paper's
// balance argument, independent of any cost model.
func BalanceTable(ctx context.Context, o Options) (*report.Table, error) {
	es := ds1(o)
	const m, r = 20, 100
	x, err := bdm.FromPartitions(entity.SplitRoundRobin(es, m), datagen.AttrTitle, datagen.BlockKey())
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Reduce-task balance (DS1 scale=%g, m=%d, r=%d, P=%d)", o.scale(), m, r, x.Pairs()),
		Headers: []string{"strategy", "max load", "mean", "max/mean", "CV", "Gini"},
	}
	for _, strat := range allStrategies() {
		plan, err := strat.Plan(x, m, r)
		if err != nil {
			return nil, err
		}
		st := plan.ComparisonStats()
		t.AddRow(strat.Name(), st.Max, st.Mean, st.MaxOverMean, st.CV, st.Gini)
	}
	return t, nil
}
