package similarity

// Jaro returns the Jaro similarity of a and b in [0,1]. It counts
// matching runes within a sliding window of half the longer length and
// discounts transpositions.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatched[j] || ra[i] != rb[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between the matched subsequences.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts the Jaro similarity for strings sharing a common
// prefix (up to 4 runes) using the standard scaling factor p=0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
