package similarity

import (
	"slices"
	"strings"
	"sync"
)

// Prepared caches the derived forms of one string that the similarity
// kernels consume: the rune slice and a fixed-size rune histogram (the
// pre-filter input) eagerly, the sorted lowercase token set and sorted
// n-gram profiles lazily on first use. Building a Prepared costs one
// pass over the string; comparing two Prepared values allocates nothing.
// The intended pattern is the reduce phase's prepare-once model: derive
// each entity's Prepared once per key group and run the O(group²)
// comparisons on the cached forms.
//
// Lazy forms (Tokens, NGramProfile) cache by mutating the receiver, so
// a Prepared must not be shared across goroutines while they are still
// being materialized; materializing everything a matcher needs at
// Prepare time yields a read-only value safe to share. The reducers
// never share prepared entities across reduce groups, so this is only a
// concern for custom callers.
type Prepared struct {
	// Raw is the original string.
	Raw string
	// runes is the materialized rune slice. For ASCII strings the bytes
	// of Raw are the runes, so this stays nil unless a mixed
	// ASCII/non-ASCII comparison forces materialization (runeSeq).
	runes  []rune
	tokens []string // sorted unique lowercase whitespace tokens
	grams  []gramCount
	gramN  int
	// hist counts runes per bucket, saturating at 127. Saturation keeps
	// BagBound sound for arbitrarily long strings: clamping is monotone
	// and 1-Lipschitz, so it can only shrink bucket differences.
	hist        [histBuckets]uint8
	ascii       bool
	tokensReady bool
}

// histBuckets is the size of the rune histogram. 32 buckets separate
// the ASCII letters almost perfectly (r & 31); digits and wider
// alphabets collide, which weakens the BagBound filter but never makes
// it unsound (merging rune classes can only cancel differences).
const histBuckets = 32

// histCap is the saturation ceiling of one histogram bucket.
const histCap = 127

// gramCount is one entry of an n-gram profile: the gram and its
// multiplicity, sorted by gram.
type gramCount struct {
	g string
	n int
}

// Prepare derives the eager cached forms of s: the ASCII classification,
// the rune histogram, and (for non-ASCII strings) the rune slice. Token
// sets and n-gram profiles are derived lazily. For ASCII strings — the
// common case for product titles — Prepare performs a single allocation.
func Prepare(s string) *Prepared {
	p := &Prepared{}
	p.fill(s)
	return p
}

// preparedPool recycles Prepared values between PreparePooled and
// Release, making the steady-state prepare-once reduce loop
// allocation-free for ASCII strings.
var preparedPool = sync.Pool{New: func() any { return new(Prepared) }}

// PreparePooled is Prepare backed by a free list: the returned value
// must be handed back via Release once its reduce group is finished and
// must not be used afterwards. Kernel results are identical to
// Prepare's. The strategy reducers drive this through the matchers'
// optional release hook (core.PreparedReleaser).
func PreparePooled(s string) *Prepared {
	p := preparedPool.Get().(*Prepared)
	p.fill(s)
	return p
}

// Release resets p (keeping slice capacities) and returns it to the
// pool. Only values obtained from PreparePooled may be released.
func (p *Prepared) Release() {
	runes, tokens, grams := p.runes, p.tokens, p.grams
	clear(tokens[:cap(tokens)]) // drop string references past len too
	clear(grams[:cap(grams)])
	*p = Prepared{runes: runes[:0], tokens: tokens[:0], grams: grams[:0]}
	preparedPool.Put(p)
}

// fill populates a zeroed (or Released) Prepared in place, reusing any
// slice capacity left from a previous use.
func (p *Prepared) fill(s string) {
	p.Raw = s
	p.ascii = true
	p.hist = [histBuckets]uint8{}
	p.tokensReady = false
	p.gramN = 0
	runes := p.runes[:0]
	p.runes = runes // empty = not materialized; keeps recycled capacity
	// Fused pass: ASCII classification and histogram in one scan.
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			p.ascii = false
			break
		}
		if b := c & (histBuckets - 1); p.hist[b] < histCap {
			p.hist[b]++
		}
	}
	if !p.ascii {
		p.hist = [histBuckets]uint8{} // rebuild over runes, not bytes
		for _, r := range s {
			runes = append(runes, r)
			if b := uint32(r) & (histBuckets - 1); p.hist[b] < histCap {
				p.hist[b]++
			}
		}
		p.runes = runes
	}
}

// RuneLen returns the length of the string in runes.
func (p *Prepared) RuneLen() int {
	if p.ascii {
		return len(p.Raw)
	}
	return len(p.runes)
}

// runeSeq returns the rune slice, materializing and caching it for
// ASCII strings that end up in a mixed or over-long comparison.
func (p *Prepared) runeSeq() []rune {
	if len(p.runes) == 0 && len(p.Raw) > 0 {
		runes := p.runes[:0]
		for _, r := range p.Raw {
			runes = append(runes, r)
		}
		p.runes = runes
	}
	return p.runes
}

// Tokens returns the sorted unique lowercase whitespace tokens,
// computing and caching them on first use. The returned slice is
// shared; callers must not modify it.
func (p *Prepared) Tokens() []string {
	if !p.tokensReady {
		toks := strings.Fields(strings.ToLower(p.Raw))
		slices.Sort(toks)
		p.tokens = slices.Compact(toks)
		p.tokensReady = true
	}
	return p.tokens
}

// NGramProfile returns the sorted n-gram profile of the string,
// computing and caching it on first use (one n is cached at a time; a
// matcher uses a single n, so that is the steady state).
func (p *Prepared) NGramProfile(n int) []gramCount {
	if n <= 0 {
		panic("similarity: NGramProfile requires n > 0")
	}
	if p.gramN == n {
		return p.grams
	}
	var gs []string
	if p.ascii {
		// ASCII grams are substrings sharing Raw's backing array.
		if ln := len(p.Raw); ln > 0 {
			if ln <= n {
				gs = []string{p.Raw}
			} else {
				gs = make([]string, 0, ln-n+1)
				for i := 0; i+n <= ln; i++ {
					gs = append(gs, p.Raw[i:i+n])
				}
			}
		}
	} else if len(p.runes) > 0 {
		if len(p.runes) <= n {
			gs = []string{string(p.runes)}
		} else {
			gs = make([]string, 0, len(p.runes)-n+1)
			for i := 0; i+n <= len(p.runes); i++ {
				gs = append(gs, string(p.runes[i:i+n]))
			}
		}
	}
	slices.Sort(gs)
	profile := make([]gramCount, 0, len(gs))
	for _, g := range gs {
		if k := len(profile); k > 0 && profile[k-1].g == g {
			profile[k-1].n++
		} else {
			profile = append(profile, gramCount{g: g, n: 1})
		}
	}
	p.gramN, p.grams = n, profile
	return profile
}

// BagBound returns a lower bound on the Levenshtein distance of the two
// strings: the bag distance of their bucketed rune histograms — the
// larger of the two one-sided multiset differences. Every insertion,
// deletion, or substitution changes each one-sided difference by at
// most one, and collapsing runes into histogram buckets can only cancel
// differences, so BagBound(a, b) <= Levenshtein(a.Raw, b.Raw) always
// holds. That makes it a sound pre-filter: BagBound > maxDist implies
// the edit distance exceeds maxDist. The 32 byte-wide buckets are
// processed as four uint64 SWAR words — per-byte absolute differences
// and byte sums without a single branch or allocation.
func BagBound(a, b *Prepared) int {
	// With onlyA/onlyB the one-sided difference sums: onlyA + onlyB =
	// Σ|d| and onlyA − onlyB = Σd, so max(onlyA, onlyB) =
	// (Σ|d| + |Σd|) / 2.
	//
	// Per word: t = (x|H) − y computes 0x80 + x−y in every byte lane
	// without inter-byte borrow (bucket values are ≤ 127), so each high
	// bit reports x ≥ y and t ^ H is x−y mod 256 per byte. Lanes with
	// x < y are negated per-byte ((d ^ 0xFF) + 1, carry-free because
	// the true difference is ≤ 127). Byte sums fold pairwise into four
	// 16-bit lanes per word — a plain multiply-shift would overflow a
	// byte — and collapse to ints only once at the end.
	const (
		ones01 = 0x0101010101010101
		high   = 0x8080808080808080
		pairLo = 0x00FF00FF00FF00FF
	)
	var absAcc, aAcc, bAcc uint64 // 4 × 16-bit lanes each
	for i := 0; i <= histBuckets-8; i += 8 {
		x := leU64(a.hist[i : i+8 : i+8])
		y := leU64(b.hist[i : i+8 : i+8])
		t := (x | high) - y
		lt := (t&high)>>7 ^ ones01 // per-byte 1 where x < y
		d := t ^ high
		abs := (d ^ lt*0xFF) + lt
		absAcc += (abs & pairLo) + (abs >> 8 & pairLo)
		aAcc += (x & pairLo) + (x >> 8 & pairLo)
		bAcc += (y & pairLo) + (y >> 8 & pairLo)
	}
	sumAbs := fold16(absAcc)
	sumD := fold16(aAcc) - fold16(bAcc)
	if sumD < 0 {
		sumD = -sumD
	}
	return (sumAbs + sumD) / 2
}

// leU64 loads 8 histogram bytes as a little-endian uint64 word.
func leU64(b []uint8) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// fold16 sums the four 16-bit lanes of a SWAR accumulator.
func fold16(v uint64) int {
	return int(v&0xFFFF + v>>16&0xFFFF + v>>32&0xFFFF + v>>48)
}

// myersASCII returns the exact Levenshtein distance between an ASCII
// pattern p (1 <= len(p) <= 64) and an ASCII text t, using Myers'
// bit-parallel algorithm (in Hyyrö's formulation): the DP column is
// encoded in two 64-bit words and each text byte costs a handful of
// word operations, an order of magnitude faster than the banded DP on
// title-length strings. The per-call pattern mask table lives on the
// stack — no allocation.
func myersASCII(p, t string) int {
	var peq [128]uint64
	for i := 0; i < len(p); i++ {
		peq[p[i]] |= 1 << uint(i)
	}
	pv := ^uint64(0)
	mv := uint64(0)
	score := len(p)
	last := uint64(1) << uint(len(p)-1)
	for i := 0; i < len(t); i++ {
		eq := peq[t[i]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// levenshteinPreparedDist dispatches a prepared pair to the fastest
// exact kernel: single-word Myers for ASCII pairs whose shorter side
// fits in 64 runes, blocked (multi-word) Myers for longer ASCII pairs,
// and the rune-alphabet blocked Myers for everything else (materializing
// cached runes for ASCII strings only in a mixed pair). The rune DP
// (levenshteinRunes) survives as the property-test reference only.
func levenshteinPreparedDist(a, b *Prepared) int {
	if a.ascii && b.ascii {
		p, t := a.Raw, b.Raw
		if len(p) > len(t) {
			p, t = t, p
		}
		if len(p) == 0 {
			return len(t)
		}
		if len(p) <= 64 {
			return myersASCII(p, t)
		}
		return myersASCIIBlocked(p, t)
	}
	ra, rb := a.runeSeq(), b.runeSeq()
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(ra) == 0 {
		return len(rb)
	}
	return myersRunes(ra, rb)
}

// LevenshteinPrepared is Levenshtein on the cached forms.
func LevenshteinPrepared(a, b *Prepared) int {
	return levenshteinPreparedDist(a, b)
}

// LevenshteinBoundedPrepared is LevenshteinBounded on the cached forms.
func LevenshteinBoundedPrepared(a, b *Prepared, maxDist int) (int, bool) {
	if maxDist < 0 {
		return maxDist + 1, false
	}
	if a.ascii && b.ascii {
		p, t := a.Raw, b.Raw
		if len(p) > len(t) {
			p, t = t, p
		}
		if len(t)-len(p) > maxDist {
			return maxDist + 1, false
		}
		if len(p) == 0 {
			return len(t), true // length filter above guarantees len(t) <= maxDist
		}
		var d int
		if len(p) <= 64 {
			d = myersASCII(p, t)
		} else {
			d = myersASCIIBlocked(p, t)
		}
		if d <= maxDist {
			return d, true
		}
		return maxDist + 1, false
	}
	ra, rb := a.runeSeq(), b.runeSeq()
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(rb)-len(ra) > maxDist {
		return maxDist + 1, false
	}
	if len(ra) == 0 {
		return len(rb), true // length filter above guarantees len(rb) <= maxDist
	}
	if d := myersRunes(ra, rb); d <= maxDist {
		return d, true
	}
	return maxDist + 1, false
}

// LevenshteinSimilarityPrepared is LevenshteinSimilarity on the cached
// forms.
func LevenshteinSimilarityPrepared(a, b *Prepared) float64 {
	longest := a.RuneLen()
	if l := b.RuneLen(); l > longest {
		longest = l
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(levenshteinPreparedDist(a, b))/float64(longest)
}

// LevenshteinAtLeastPrepared is LevenshteinAtLeast on cached runes, with
// the pre-filter chain of LevenshteinMatchPrepared.
func LevenshteinAtLeastPrepared(a, b *Prepared, threshold float64) bool {
	_, ok := LevenshteinMatchPrepared(a, b, threshold)
	return ok
}

// LevenshteinMatchPrepared is the matcher kernel: it reports whether the
// normalized Levenshtein similarity of a and b reaches the threshold
// and, if so, the exact similarity. Equivalent to testing
// LevenshteinSimilarityPrepared(a, b) >= threshold, but clearly
// dissimilar pairs are rejected by two O(len) pre-filters — the length
// difference and the histogram bag bound, both lower bounds on the edit
// distance — before the banded DP runs. Steady-state calls allocate
// nothing.
func LevenshteinMatchPrepared(a, b *Prepared, threshold float64) (float64, bool) {
	la, lb := a.RuneLen(), b.RuneLen()
	longest, diff := la, la-lb
	if lb > la {
		longest, diff = lb, lb-la
	}
	if longest == 0 {
		return 1, threshold <= 1
	}
	return levenshteinMatchBounded(a, b, longest, diff, levenshteinMaxDist(longest, threshold))
}

func levenshteinMatchBounded(a, b *Prepared, longest, diff, maxDist int) (float64, bool) {
	if maxDist < 0 || diff > maxDist {
		return 0, false
	}
	if maxDist < longest && BagBound(a, b) > maxDist {
		return 0, false
	}
	d, ok := LevenshteinBoundedPrepared(a, b, maxDist)
	if !ok {
		return 0, false
	}
	return 1 - float64(d)/float64(longest), true
}

// Thresholder is the fixed-threshold form of LevenshteinMatchPrepared:
// it caches the per-length distance bounds once, removing the per-pair
// float arithmetic from the kernel. Matchers that evaluate millions of
// pairs against one threshold (the paper's setup) should build one
// Thresholder and reuse it; Match is safe for concurrent use.
type Thresholder struct {
	threshold float64
	bounds    [maxCachedBound + 1]int16
}

// maxCachedBound is the largest string length whose distance bound is
// precomputed; longer strings fall back to the on-the-fly computation.
const maxCachedBound = 512

// NewThresholder precomputes the distance bounds for the threshold.
func NewThresholder(threshold float64) *Thresholder {
	t := &Thresholder{threshold: threshold}
	for l := 0; l <= maxCachedBound; l++ {
		t.bounds[l] = int16(levenshteinMaxDist(l, threshold))
	}
	return t
}

// MaxDist returns the largest edit distance at which two strings of
// maximum rune length `longest` still reach the threshold (−1 when none
// does), identical to the bound LevenshteinAtLeast derives.
func (t *Thresholder) MaxDist(longest int) int {
	if longest >= 0 && longest <= maxCachedBound {
		return int(t.bounds[longest])
	}
	return levenshteinMaxDist(longest, t.threshold)
}

// Match reports whether the pair reaches the threshold and, if so, the
// exact normalized similarity — equivalent to
// LevenshteinMatchPrepared(a, b, threshold).
func (t *Thresholder) Match(a, b *Prepared) (float64, bool) {
	la, lb := a.RuneLen(), b.RuneLen()
	longest, diff := la, la-lb
	if lb > la {
		longest, diff = lb, lb-la
	}
	if longest == 0 {
		return 1, t.threshold <= 1
	}
	return levenshteinMatchBounded(a, b, longest, diff, t.MaxDist(longest))
}

// TokenJaccardPrepared is TokenJaccard on the cached sorted token sets:
// a single merge walk instead of two map builds per comparison.
func TokenJaccardPrepared(a, b *Prepared) float64 {
	ta, tb := a.Tokens(), b.Tokens()
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] < tb[j]:
			i++
		case ta[i] > tb[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

// JaccardNGramPrepared is JaccardNGram on cached sorted n-gram profiles
// (multiset min/max semantics), a single merge walk per comparison. Both
// profiles are materialized (and cached) on first use; prepare entities
// up front to keep the comparison loop allocation-free.
func JaccardNGramPrepared(a, b *Prepared, n int) float64 {
	ga, gb := a.NGramProfile(n), b.NGramProfile(n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i].g < gb[j].g:
			union += ga[i].n
			i++
		case ga[i].g > gb[j].g:
			union += gb[j].n
			j++
		default:
			if ga[i].n < gb[j].n {
				inter += ga[i].n
				union += gb[j].n
			} else {
				inter += gb[j].n
				union += ga[i].n
			}
			i++
			j++
		}
	}
	for ; i < len(ga); i++ {
		union += ga[i].n
	}
	for ; j < len(gb); j++ {
		union += gb[j].n
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
