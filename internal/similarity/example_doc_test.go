package similarity_test

import (
	"fmt"

	"repro/internal/similarity"
)

func ExampleLevenshtein() {
	fmt.Println(similarity.Levenshtein("kitten", "sitting"))
	// Output: 3
}

func ExampleLevenshteinSimilarity() {
	fmt.Printf("%.2f\n", similarity.LevenshteinSimilarity("canon eos 5d", "canon eos 5d!"))
	// Output: 0.92
}

func ExampleLevenshteinAtLeast() {
	// The paper's match rule: normalized similarity >= 0.8, computed
	// with an early-exit banded distance.
	fmt.Println(similarity.LevenshteinAtLeast("acme rocket skates", "acme rocket skates!", 0.8))
	fmt.Println(similarity.LevenshteinAtLeast("acme rocket skates", "bolt cutter", 0.8))
	// Output:
	// true
	// false
}

func ExampleJaroWinkler() {
	fmt.Printf("%.4f\n", similarity.JaroWinkler("martha", "marhta"))
	// Output: 0.9611
}

func ExampleJaccardNGram() {
	fmt.Printf("%.2f\n", similarity.JaccardNGram("abcd", "abce", 2))
	// Output: 0.50
}
