// Package similarity implements the string similarity measures used by
// the matcher in the reduce phase: Levenshtein edit distance (the paper's
// measure, with a 0.8 similarity threshold), Jaro-Winkler, and n-gram
// Jaccard. All functions operate on runes, not bytes.
//
// Every measure exists in two forms: a convenience form on raw strings,
// and a kernel form on Prepared values (see prepared.go) that skips the
// per-call rune conversion and tokenization — the form the prepare-once
// comparison kernel of internal/core uses.
package similarity

import "sync"

// levRowPool recycles the single DP row the Levenshtein kernels need, so
// steady-state comparisons allocate nothing. Rows beyond maxPooledRow
// ints are not returned to the pool to avoid pinning memory after one
// pathological input.
var levRowPool = sync.Pool{
	New: func() any {
		row := make([]int, 0, 128)
		return &row
	},
}

const maxPooledRow = 1 << 16

func getLevRow(n int) *[]int {
	rp := levRowPool.Get().(*[]int)
	if cap(*rp) < n {
		*rp = make([]int, n)
	}
	*rp = (*rp)[:n]
	return rp
}

func putLevRow(rp *[]int) {
	if cap(*rp) <= maxPooledRow {
		levRowPool.Put(rp)
	}
}

// Levenshtein returns the edit distance between a and b: the minimum
// number of single-rune insertions, deletions, and substitutions that
// transform a into b. It runs in O(len(a)*len(b)) time and O(min) space.
func Levenshtein(a, b string) int {
	return levenshteinRunes([]rune(a), []rune(b))
}

func levenshteinRunes(ra, rb []rune) int {
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	// ra is the shorter string; one row of the DP matrix suffices.
	n := len(ra)
	if n == 0 {
		return len(rb)
	}
	rp := getLevRow(n + 1)
	row := *rp
	for i := range row {
		row[i] = i
	}
	for j := 1; j <= len(rb); j++ {
		prev := row[0] // row[j-1][0]
		row[0] = j
		for i := 1; i <= n; i++ {
			cur := row[i]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			row[i] = min3(row[i]+1, row[i-1]+1, prev+cost)
			prev = cur
		}
	}
	d := row[n]
	putLevRow(rp)
	return d
}

// LevenshteinBounded returns the edit distance between a and b if it is
// at most maxDist, and (maxDist+1, false) otherwise. The banded dynamic
// program runs in O(maxDist * max(len)) time, which is what makes a 0.8
// similarity threshold cheap on long titles.
func LevenshteinBounded(a, b string, maxDist int) (int, bool) {
	return levenshteinBoundedRunes([]rune(a), []rune(b), maxDist)
}

func levenshteinBoundedRunes(ra, rb []rune, maxDist int) (int, bool) {
	if maxDist < 0 {
		return maxDist + 1, false
	}
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	n, m := len(ra), len(rb)
	if m-n > maxDist {
		return maxDist + 1, false
	}
	if n == 0 {
		return m, m <= maxDist
	}
	const inf = int(^uint(0) >> 2)
	rp := getLevRow(n + 1)
	row := *rp
	for i := range row {
		if i <= maxDist {
			row[i] = i
		} else {
			row[i] = inf
		}
	}
	for j := 1; j <= m; j++ {
		// Only cells with |i-j| <= maxDist can contribute.
		lo := j - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := j + maxDist
		if hi > n {
			hi = n
		}
		prev := row[lo-1]
		if lo == 1 {
			if j <= maxDist {
				row[0] = j
			} else {
				row[0] = inf
			}
		}
		if lo > 1 {
			// Left neighbour of the first in-band cell is out of band.
			row[lo-1] = inf
		}
		rowMin := inf
		for i := lo; i <= hi; i++ {
			cur := row[i]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev + cost
			if row[i]+1 < v {
				v = row[i] + 1
			}
			if row[i-1]+1 < v {
				v = row[i-1] + 1
			}
			row[i] = v
			if v < rowMin {
				rowMin = v
			}
			prev = cur
		}
		if hi < n {
			row[hi+1] = inf
		}
		if rowMin > maxDist {
			putLevRow(rp)
			return maxDist + 1, false
		}
	}
	d := row[n]
	putLevRow(rp)
	if d > maxDist {
		return maxDist + 1, false
	}
	return d, true
}

// LevenshteinSimilarity normalizes the edit distance into [0,1]:
// 1 - dist/max(len(a), len(b)). Two equal strings score 1; two strings
// with nothing in common score near 0. Both empty scores 1.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

// LevenshteinAtLeast reports whether the normalized Levenshtein
// similarity of a and b is >= threshold, using the banded distance to
// bail out early on clearly dissimilar pairs. It agrees exactly with
// LevenshteinSimilarity(a, b) >= threshold for every threshold.
func LevenshteinAtLeast(a, b string, threshold float64) bool {
	if threshold <= 0 {
		return true
	}
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return threshold <= 1 // both empty: similarity is exactly 1
	}
	_, ok := LevenshteinBounded(a, b, levenshteinMaxDist(longest, threshold))
	return ok
}

// levenshteinMaxDist returns the largest distance d with
// 1 - d/longest >= threshold (−1 when even d = 0 misses the threshold),
// evaluated with the exact float arithmetic of LevenshteinSimilarity.
// Computing the bound as int(float64(longest)*(1-threshold)) is wrong:
// 1-0.8 rounds to 0.19999…, so longest=5, threshold=0.8 yields 0 instead
// of 1 and pairs sitting exactly on the threshold are rejected. The
// float estimate is therefore only a seed, corrected by at most a couple
// of steps against the real predicate.
func levenshteinMaxDist(longest int, threshold float64) int {
	if threshold <= 0 {
		return longest // every distance qualifies (dist <= longest always)
	}
	d := int(float64(longest) * (1 - threshold))
	if d < 0 {
		d = 0
	}
	if d > longest {
		d = longest
	}
	for d < longest && 1-float64(d+1)/float64(longest) >= threshold {
		d++
	}
	for d >= 0 && 1-float64(d)/float64(longest) < threshold {
		d--
	}
	return d
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
