package similarity

import (
	"math"
	"strings"
)

// TokenVector is a term-frequency vector over lowercase whitespace
// tokens, with a precomputed Euclidean norm for fast cosine similarity.
// Building the vector once per entity and reusing it across the many
// comparisons a reduce task performs amortizes the tokenization cost.
type TokenVector struct {
	tf   map[string]float64
	norm float64
}

// NewTokenVector tokenizes s (lowercased, whitespace-split) into a
// term-frequency vector.
func NewTokenVector(s string) TokenVector {
	tf := make(map[string]float64)
	for _, tok := range strings.Fields(strings.ToLower(s)) {
		tf[tok]++
	}
	var ss float64
	for _, f := range tf {
		ss += f * f
	}
	return TokenVector{tf: tf, norm: math.Sqrt(ss)}
}

// Cosine returns the cosine similarity of the two vectors in [0,1].
// Two empty vectors score 1; one empty vector scores 0.
func (v TokenVector) Cosine(w TokenVector) float64 {
	if v.norm == 0 && w.norm == 0 {
		return 1
	}
	if v.norm == 0 || w.norm == 0 {
		return 0
	}
	// Iterate over the smaller map.
	a, b := v, w
	if len(b.tf) < len(a.tf) {
		a, b = b, a
	}
	var dot float64
	for tok, fa := range a.tf {
		if fb, ok := b.tf[tok]; ok {
			dot += fa * fb
		}
	}
	sim := dot / (v.norm * w.norm)
	if sim > 1 {
		// Norm rounding can push identical vectors a few ulps past 1;
		// the contract is [0,1].
		sim = 1
	}
	return sim
}

// CosineTokens is the convenience form building both vectors on the fly.
func CosineTokens(a, b string) float64 {
	return NewTokenVector(a).Cosine(NewTokenVector(b))
}
