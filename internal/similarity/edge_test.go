package similarity

import (
	"math/rand"
	"testing"
)

// edgeStrings collects the awkward inputs every measure must survive:
// empty, single-rune, multi-byte unicode (CJK), combining marks (the
// same visual glyph as a precomposed rune but a different rune
// sequence), and whitespace-only.
var edgeStrings = []string{
	"",
	" ",
	"a",
	"ä",
	"é",  // precomposed U+00E9
	"é", // e + combining acute: two runes, same glyph
	"日本語テキスト処理",
	"日本語",
	"中文分词测试",
	"한국어 텍스트",
	"à́", // stacked combining marks
	"  spaced   out  tokens  ",
	"ASCII and 中文 mixed",
}

// TestEdgeCaseKnownValues pins exact results on the tricky inputs.
func TestEdgeCaseKnownValues(t *testing.T) {
	if got := Levenshtein("", ""); got != 0 {
		t.Errorf("Levenshtein(\"\",\"\") = %d, want 0", got)
	}
	if got := Levenshtein("", "日本語"); got != 3 {
		t.Errorf("Levenshtein(\"\",\"日本語\") = %d, want 3 (runes, not bytes)", got)
	}
	if got := Levenshtein("é", "é"); got != 2 {
		t.Errorf("Levenshtein(é, e+combining) = %d, want 2 (no normalization)", got)
	}
	if got := LevenshteinSimilarity("", ""); got != 1 {
		t.Errorf("LevenshteinSimilarity(\"\",\"\") = %v, want 1", got)
	}
	if got := LevenshteinSimilarity("a", ""); got != 0 {
		t.Errorf("LevenshteinSimilarity(\"a\",\"\") = %v, want 0", got)
	}
	if !LevenshteinAtLeast("", "", 1) {
		t.Error("LevenshteinAtLeast(\"\",\"\",1) = false, want true (similarity is exactly 1)")
	}
	if LevenshteinAtLeast("", "", 1.5) {
		t.Error("LevenshteinAtLeast(\"\",\"\",1.5) = true, but similarity 1 < 1.5")
	}
	if got := Jaro("", ""); got != 1 {
		t.Errorf("Jaro(\"\",\"\") = %v, want 1", got)
	}
	if got := Jaro("a", ""); got != 0 {
		t.Errorf("Jaro(\"a\",\"\") = %v, want 0", got)
	}
	if got := TokenJaccard("  ", ""); got != 1 {
		t.Errorf("TokenJaccard(whitespace, empty) = %v, want 1 (both tokenless)", got)
	}
	if got := JaccardNGram("日", "日", 3); got != 1 {
		t.Errorf("JaccardNGram(日,日,3) = %v, want 1 (short string is its own gram)", got)
	}
	if got := CosineTokens("", "x"); got != 0 {
		t.Errorf("CosineTokens(\"\",\"x\") = %v, want 0", got)
	}
}

// TestEdgeCaseMeasures runs every measure (plain and prepared) over the
// full cross product of edge strings and checks range and symmetry; the
// real assertion is that none of them panics or steps out of [0,1].
func TestEdgeCaseMeasures(t *testing.T) {
	measures := map[string]func(a, b string) float64{
		"LevenshteinSimilarity": LevenshteinSimilarity,
		"Jaro":                  Jaro,
		"JaroWinkler":           JaroWinkler,
		"TokenJaccard":          TokenJaccard,
		"JaccardNGram2":         func(a, b string) float64 { return JaccardNGram(a, b, 2) },
		"CosineTokens":          CosineTokens,
		"TokenJaccardPrepared": func(a, b string) float64 {
			return TokenJaccardPrepared(Prepare(a), Prepare(b))
		},
		"LevenshteinSimilarityPrepared": func(a, b string) float64 {
			return LevenshteinSimilarityPrepared(Prepare(a), Prepare(b))
		},
		"JaccardNGramPrepared2": func(a, b string) float64 {
			return JaccardNGramPrepared(Prepare(a), Prepare(b), 2)
		},
	}
	for name, sim := range measures {
		for _, a := range edgeStrings {
			for _, b := range edgeStrings {
				got := sim(a, b)
				if got < 0 || got > 1 {
					t.Fatalf("%s(%q,%q) = %v out of [0,1]", name, a, b, got)
				}
				if rev := sim(b, a); rev != got {
					t.Fatalf("%s not symmetric on (%q,%q): %v vs %v", name, a, b, got, rev)
				}
				// Identity: 1 up to float rounding (cosine normalizes by
				// a sqrt'd norm, so exact 1 is not guaranteed).
				if a == b && name != "Jaro" && name != "JaroWinkler" && sim(a, a) < 1-1e-12 {
					t.Fatalf("%s(%q,%q) = %v, want 1 (identity)", name, a, a, sim(a, a))
				}
			}
		}
	}
	// Jaro scores 1 on identical non-empty strings too; the exclusion
	// above is only for the empty/whitespace identity subtleties shared
	// with the token measures. Pin the non-empty identity here.
	for _, s := range edgeStrings {
		if s == "" {
			continue
		}
		if Jaro(s, s) != 1 || JaroWinkler(s, s) != 1 {
			t.Fatalf("Jaro/JaroWinkler(%q,%q) != 1", s, s)
		}
	}
}

// TestSimilarityPropertyRandom is the randomized property test: every
// measure stays in [0,1] and is symmetric on random unicode-bearing
// strings.
func TestSimilarityPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []rune("ab 日本é́語x")
	randStr := func() string {
		n := rng.Intn(10)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	measures := map[string]func(a, b string) float64{
		"LevenshteinSimilarity": LevenshteinSimilarity,
		"Jaro":                  Jaro,
		"JaroWinkler":           JaroWinkler,
		"TokenJaccard":          TokenJaccard,
		"JaccardNGram3":         func(a, b string) float64 { return JaccardNGram(a, b, 3) },
		"CosineTokens":          CosineTokens,
	}
	for trial := 0; trial < 400; trial++ {
		a, b := randStr(), randStr()
		for name, sim := range measures {
			got := sim(a, b)
			if got < 0 || got > 1 {
				t.Fatalf("%s(%q,%q) = %v out of [0,1]", name, a, b, got)
			}
			if rev := sim(b, a); rev != got {
				t.Fatalf("%s not symmetric on (%q,%q): %v vs %v", name, a, b, got, rev)
			}
		}
	}
}
