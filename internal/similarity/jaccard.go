package similarity

import "strings"

// NGrams returns the multiset of n-grams of s as a frequency map. For
// strings shorter than n, the whole string is the single gram. n-grams
// are computed over runes.
func NGrams(s string, n int) map[string]int {
	if n <= 0 {
		panic("similarity: NGrams requires n > 0")
	}
	grams := make(map[string]int)
	r := []rune(s)
	if len(r) == 0 {
		return grams
	}
	if len(r) <= n {
		grams[string(r)]++
		return grams
	}
	for i := 0; i+n <= len(r); i++ {
		grams[string(r[i:i+n])]++
	}
	return grams
}

// JaccardNGram returns the Jaccard coefficient |A∩B| / |A∪B| of the
// n-gram multisets of a and b, with multiset intersection/union
// semantics (min/max of frequencies).
func JaccardNGram(a, b string, n int) float64 {
	ga, gb := NGrams(a, n), NGrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter, union := 0, 0
	for g, ca := range ga {
		cb := gb[g]
		if ca < cb {
			inter += ca
			union += cb
		} else {
			inter += cb
			union += ca
		}
	}
	for g, cb := range gb {
		if _, seen := ga[g]; !seen {
			union += cb
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TokenJaccard returns the Jaccard coefficient of the whitespace token
// sets of a and b (set semantics, case-insensitive).
func TokenJaccard(a, b string) float64 {
	ta := tokenSet(a)
	tb := tokenSet(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter := 0
	for t := range ta {
		if tb[t] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range strings.Fields(strings.ToLower(s)) {
		set[t] = true
	}
	return set
}
