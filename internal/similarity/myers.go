package similarity

import (
	"slices"
	"sync"
)

// This file holds the bit-parallel Levenshtein kernels. myersASCII
// (prepared.go) covers ASCII patterns up to 64 runes in two machine
// words; the blocked kernels here extend the same recurrence past 64
// runes (multi-word bit-vectors) and to arbitrary rune alphabets, so
// long and non-ASCII strings hit the bit-parallel fast path instead of
// the pooled DP rows. See DESIGN.md ("Blocked Myers") for the
// word-boundary carry argument.
//
// Formulation: Hyyrö's block variant of Myers' algorithm. The pattern's
// m rows are split into W = ceil(m/64) words. Per text character the
// words advance bottom-up; the only inter-word coupling is the
// horizontal delta hin/hout in {-1, 0, +1} crossing the boundary:
//
//   - hin = -1 enters the block like a free match at its bottom row
//     (Eq |= 1) and as a negative horizontal bit (Mh |= 1 after the
//     shift); hin = +1 only as a positive horizontal bit (Ph |= 1).
//   - hout is read off the block's top bit of Ph/Mh before the shift.
//
// The carry of the (Eq & Pv) + Pv addition never crosses words — that
// addition propagates match runs, and a run crossing a word boundary is
// re-established in the next word by the hin mechanism. Word 0 takes
// hin = +1, which is exactly the `Ph = Ph<<1 | 1` left-boundary term of
// the single-word kernel (the DP's first column D[i][0] = i).
//
// The last word is partially filled when m % 64 != 0: the score is
// tracked at the pattern's true last row (bit (m-1) % 64) before the
// shift, and the garbage bits above it never flow downward — in-word
// addition carries and the Ph/Mh shifts both move strictly upward.

// myersScratch carries the per-call tables of the blocked kernels: the
// pattern-mask rows (peq), the vertical delta words (pv/mv), and the
// sorted pattern-rune alphabet for the rune kernel. Pooled so
// steady-state comparisons allocate nothing.
type myersScratch struct {
	peq []uint64
	pv  []uint64
	mv  []uint64
	prs []rune
}

var myersScratchPool = sync.Pool{New: func() any { return new(myersScratch) }}

// maxPooledMyersWords bounds the peq capacity returned to the pool so
// one pathological pattern cannot pin a huge table for the process.
const maxPooledMyersWords = 1 << 16

func getMyersScratch() *myersScratch {
	return myersScratchPool.Get().(*myersScratch)
}

func putMyersScratch(s *myersScratch) {
	if cap(s.peq) > maxPooledMyersWords {
		return
	}
	myersScratchPool.Put(s)
}

// words returns a zeroed n-word slice backed by the scratch.
func (s *myersScratch) words(n int) []uint64 {
	if cap(s.peq) < n {
		s.peq = make([]uint64, n)
	}
	s.peq = s.peq[:n]
	clear(s.peq)
	return s.peq
}

// vecs returns the pv/mv word vectors initialized to the DP's left
// boundary: every vertical delta +1 (pv all ones, mv zero).
func (s *myersScratch) vecs(w int) (pv, mv []uint64) {
	if cap(s.pv) < w {
		s.pv = make([]uint64, w)
		s.mv = make([]uint64, w)
	}
	pv, mv = s.pv[:w], s.mv[:w]
	for i := range pv {
		pv[i] = ^uint64(0)
		mv[i] = 0
	}
	return pv, mv
}

// myersBlockedCore advances the blocked recurrence over the text mask
// rows produced by eqRow (the peq row of text character index i) and
// returns the edit distance. w is the word count, m the pattern length.
func myersBlockedCore(pv, mv []uint64, m, tlen int, eqRow func(i, b int) uint64) int {
	w := len(pv)
	last := w - 1
	lastMask := uint64(1) << uint((m-1)&63)
	score := m
	for i := 0; i < tlen; i++ {
		hin := 1 // the DP's top row D[0][j] = j: +1 per text character
		for b := 0; b < w; b++ {
			eq := eqRow(i, b)
			pvb, mvb := pv[b], mv[b]
			var hinNeg uint64
			if hin < 0 {
				hinNeg = 1
			}
			xv := eq | mvb
			eq |= hinNeg
			xh := (((eq & pvb) + pvb) ^ pvb) | eq
			ph := mvb | ^(xh | pvb)
			mh := pvb & xh
			if b == last {
				if ph&lastMask != 0 {
					score++
				} else if mh&lastMask != 0 {
					score--
				}
			}
			hout := int(ph>>63) - int(mh>>63)
			ph = ph<<1 | uint64((hin+1)>>1) // carry +1 in as a horizontal bit
			mh = mh<<1 | hinNeg             // carry -1 in as a horizontal bit
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
		}
	}
	return score
}

// myersASCIIBlocked returns the exact Levenshtein distance between an
// ASCII pattern p (len(p) >= 1, any length) and an ASCII text t using
// the blocked Myers recurrence: ceil(len(p)/64) words per text byte.
// The flat 128-row pattern-mask table lives in pooled scratch — no
// steady-state allocation.
func myersASCIIBlocked(p, t string) int {
	w := (len(p) + 63) >> 6
	s := getMyersScratch()
	peq := s.words(128 * w)
	for i := 0; i < len(p); i++ {
		peq[int(p[i])*w+(i>>6)] |= 1 << uint(i&63)
	}
	pv, mv := s.vecs(w)
	d := myersBlockedCore(pv, mv, len(p), len(t), func(i, b int) uint64 {
		return peq[int(t[i])*w+b]
	})
	putMyersScratch(s)
	return d
}

// myersRunes returns the exact Levenshtein distance between a rune
// pattern p (len(p) >= 1, any length) and a rune text t. The pattern
// alphabet is materialized as a sorted unique rune table with one
// W-word mask row per rune; text runes resolve their row by binary
// search (runes absent from the pattern contribute an all-zero row).
// Scratch is pooled — no steady-state allocation.
func myersRunes(p, t []rune) int {
	w := (len(p) + 63) >> 6
	s := getMyersScratch()
	prs := append(s.prs[:0], p...)
	slices.Sort(prs)
	prs = slices.Compact(prs)
	s.prs = prs
	peq := s.words(len(prs) * w)
	for i, r := range p {
		j, _ := slices.BinarySearch(prs, r)
		peq[j*w+(i>>6)] |= 1 << uint(i&63)
	}
	pv, mv := s.vecs(w)
	d := myersBlockedCore(pv, mv, len(p), len(t), func(i, b int) uint64 {
		j, ok := slices.BinarySearch(prs, t[i])
		if !ok {
			return 0
		}
		return peq[j*w+b]
	})
	putMyersScratch(s)
	return d
}
