package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCosineKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"a b c", "a b c", 1},
		{"a b c", "c b a", 1}, // order-insensitive
		{"a b", "c d", 0},
		{"", "", 1},
		{"a", "", 0},
		{"A B", "a b", 1}, // case-insensitive
		// tf vectors (1,1) vs (1,0): cos = 1/√2.
		{"a b", "a", 1 / math.Sqrt2},
		// repeated tokens weigh in: (2) vs (1) same token → 1.
		{"a a", "a", 1},
	}
	for _, tc := range tests {
		if got := CosineTokens(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("CosineTokens(%q,%q) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		va, vb := NewTokenVector(a), NewTokenVector(b)
		s1, s2 := va.Cosine(vb), vb.Cosine(va)
		self := va.Cosine(va)
		return s1 >= -1e-12 && s1 <= 1+1e-12 &&
			math.Abs(s1-s2) < 1e-12 &&
			(len(a) == 0 || math.Abs(self-1) < 1e-9 || va.norm == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenVectorReuse(t *testing.T) {
	v := NewTokenVector("shared base title")
	others := []string{"shared base title x", "completely different", "shared title"}
	for _, o := range others {
		got := v.Cosine(NewTokenVector(o))
		want := CosineTokens("shared base title", o)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("reused vector disagrees for %q: %g vs %g", o, got, want)
		}
	}
}
