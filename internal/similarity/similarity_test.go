package similarity

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"saturday", "sunday", 3},
		{"same", "same", 0},
		{"abc", "abd", 1},
		{"über", "uber", 1}, // rune-wise, not byte-wise
		{"日本語", "日本", 1},    // multi-byte runes
		{"ab", "ba", 2},     // transposition costs 2 (no Damerau)
		{"abcdef", "", 6},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		// Symmetry.
		if got := Levenshtein(tc.b, tc.a); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

// TestLevenshteinMetricProperties: identity, symmetry, triangle
// inequality on random short strings.
func TestLevenshteinMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randStr := func() string {
		n := rng.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte('a' + rng.Intn(4))) // small alphabet → collisions
		}
		return b.String()
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := randStr(), randStr(), randStr()
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: d(%q,%q)=%d, d(%q,%q)=%d", a, b, dab, b, a, dba)
		}
		if Levenshtein(a, a) != 0 {
			t.Fatalf("d(%q,%q) != 0", a, a)
		}
		if dac, dbc := Levenshtein(a, c), Levenshtein(b, c); dac > dab+dbc {
			t.Fatalf("triangle violated: d(%q,%q)=%d > %d+%d", a, c, dac, dab, dbc)
		}
	}
}

// TestLevenshteinBoundedAgreesWithFull: the banded version must equal
// the full computation whenever the distance is within the band.
func TestLevenshteinBoundedAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte('a' + rng.Intn(5)))
		}
		return b.String()
	}
	for trial := 0; trial < 1000; trial++ {
		a, b := randStr(rng.Intn(15)), randStr(rng.Intn(15))
		full := Levenshtein(a, b)
		for _, maxDist := range []int{0, 1, 2, 5, 20} {
			got, ok := LevenshteinBounded(a, b, maxDist)
			if full <= maxDist {
				if !ok || got != full {
					t.Fatalf("LevenshteinBounded(%q,%q,%d) = (%d,%v), want (%d,true)", a, b, maxDist, got, ok, full)
				}
			} else if ok {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = (%d,true), but full distance is %d", a, b, maxDist, got, full)
			}
		}
	}
}

func TestLevenshteinBoundedNegativeMax(t *testing.T) {
	if _, ok := LevenshteinBounded("a", "b", -1); ok {
		t.Error("negative maxDist should never match")
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abcd", "abcd", 1},
		{"abcd", "abce", 0.75},
		{"abcd", "wxyz", 0},
	}
	for _, tc := range tests {
		if got := LevenshteinSimilarity(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("LevenshteinSimilarity(%q,%q) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestLevenshteinAtLeastAgreesWithSimilarity on random inputs.
func TestLevenshteinAtLeastAgreesWithSimilarity(t *testing.T) {
	f := func(a, b string, thRaw uint8) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		th := float64(thRaw%101) / 100
		want := LevenshteinSimilarity(a, b) >= th-1e-12
		// The banded check uses an integer distance cutoff; recompute the
		// exact acceptance rule it implements.
		return LevenshteinAtLeast(a, b, th) == want ||
			boundaryCase(a, b, th) // floating cutoff may differ at exact boundary
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// boundaryCase reports whether the (a,b,threshold) combination sits
// exactly on the integer cutoff boundary where the two formulations may
// legitimately differ by float rounding.
func boundaryCase(a, b string, th float64) bool {
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return false
	}
	cut := float64(longest) * (1 - th)
	return math.Abs(cut-math.Trunc(cut)) < 1e-9 || math.Abs(float64(Levenshtein(a, b))-cut) < 1e-9
}

func TestJaroKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"martha", "marhta", 0.944444},
		{"dixon", "dicksonx", 0.766667},
		{"jellyfish", "smellyfish", 0.896296},
	}
	for _, tc := range tests {
		if got := Jaro(tc.a, tc.b); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("Jaro(%q,%q) = %.6f, want %.6f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.961111},
		{"dwayne", "duane", 0.84},
		{"same", "same", 1},
	}
	for _, tc := range tests {
		if got := JaroWinkler(tc.a, tc.b); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("JaroWinkler(%q,%q) = %.6f, want %.6f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		j := Jaro(a, b)
		jw := JaroWinkler(a, b)
		return j >= 0 && j <= 1 && jw >= j-1e-12 && jw <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("abab", 2)
	if g["ab"] != 2 || g["ba"] != 1 || len(g) != 2 {
		t.Errorf("NGrams(abab,2) = %v", g)
	}
	if g := NGrams("a", 3); g["a"] != 1 || len(g) != 1 {
		t.Errorf("short string grams = %v", g)
	}
	if g := NGrams("", 2); len(g) != 0 {
		t.Errorf("empty string grams = %v", g)
	}
}

func TestNGramsPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NGrams(s, 0) did not panic")
		}
	}()
	NGrams("abc", 0)
}

func TestJaccardNGram(t *testing.T) {
	if got := JaccardNGram("abc", "abc", 2); got != 1 {
		t.Errorf("identical strings = %g, want 1", got)
	}
	if got := JaccardNGram("", "", 2); got != 1 {
		t.Errorf("both empty = %g, want 1", got)
	}
	if got := JaccardNGram("abc", "xyz", 2); got != 0 {
		t.Errorf("disjoint = %g, want 0", got)
	}
	// "abcd" grams {ab,bc,cd}; "abce" grams {ab,bc,ce}: 2/4.
	if got := JaccardNGram("abcd", "abce", 2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("JaccardNGram(abcd,abce,2) = %g, want 0.5", got)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("the quick fox", "THE QUICK FOX"); got != 1 {
		t.Errorf("case-insensitive = %g, want 1", got)
	}
	if got := TokenJaccard("a b", "b c"); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("TokenJaccard(a b, b c) = %g, want 1/3", got)
	}
	if got := TokenJaccard("", ""); got != 1 {
		t.Errorf("empty = %g, want 1", got)
	}
}
