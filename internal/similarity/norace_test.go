//go:build !race

package similarity

// raceEnabled gates allocation-count assertions; see race_test.go.
const raceEnabled = false
