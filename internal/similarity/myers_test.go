package similarity

import (
	"math/rand"
	"strings"
	"testing"
)

// bagBoundRef is the scalar reference the SWAR BagBound must reproduce
// exactly: the branch-light per-bucket loop it replaced.
func bagBoundRef(a, b *Prepared) int {
	var sumAbs, sumD int32
	for i := range a.hist {
		d := int32(a.hist[i]) - int32(b.hist[i])
		sumD += d
		m := d >> 31
		sumAbs += (d ^ m) - m
	}
	if sumD < 0 {
		sumD = -sumD
	}
	return int((sumAbs + sumD) / 2)
}

// mutate applies up to k random single-rune edits to s, staying within
// the given alphabet — producing near-misses whose true distance sits
// close to the thresholds the kernels are tuned for.
func mutate(rng *rand.Rand, s []rune, k int, alphabet []rune) []rune {
	out := append([]rune(nil), s...)
	for e := rng.Intn(k + 1); e > 0; e-- {
		r := alphabet[rng.Intn(len(alphabet))]
		switch op := rng.Intn(3); {
		case op == 0 && len(out) > 0: // substitute
			out[rng.Intn(len(out))] = r
		case op == 1 && len(out) > 0: // delete
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		default: // insert
			i := rng.Intn(len(out) + 1)
			out = append(out[:i], append([]rune{r}, out[i:]...)...)
		}
	}
	return out
}

func randRunes(rng *rand.Rand, n int, alphabet []rune) []rune {
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return out
}

var (
	asciiAlphabet   = []rune("abcde ")
	unicodeAlphabet = []rune("aéüß日本語́̈") // incl. combining acute/diaeresis
)

// TestBlockedMyersWordBoundaries pins the exact word-boundary lengths
// where the multi-word kernel splits, grows, and partially fills its
// last word: 63/64 (single word), 65 (two words, last nearly empty),
// 127/128/129 (two-word boundary), 191/192/193 (three words). Each
// length is tested in ASCII and in a mixed Unicode alphabet with
// combining marks, against the DP reference, over identical strings,
// heavy edits, and disjoint strings.
func TestBlockedMyersWordBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	lengths := []int{1, 2, 63, 64, 65, 127, 128, 129, 191, 192, 193}
	for _, alphabet := range [][]rune{asciiAlphabet, unicodeAlphabet} {
		for _, la := range lengths {
			for _, lb := range lengths {
				a := randRunes(rng, la, alphabet)
				for _, b := range [][]rune{
					append([]rune(nil), a[:min(la, lb)]...), // prefix/identical
					mutate(rng, a, 5, alphabet),             // near miss
					randRunes(rng, lb, alphabet),            // unrelated
				} {
					want := levenshteinRunes(a, b)
					pa, pb := Prepare(string(a)), Prepare(string(b))
					if got := LevenshteinPrepared(pa, pb); got != want {
						t.Fatalf("LevenshteinPrepared(len %d, len %d, ascii=%v) = %d, want %d",
							la, len(b), pa.ascii, got, want)
					}
					for _, maxDist := range []int{0, 1, want - 1, want, want + 1, la + lb} {
						wd, wok := want, want <= maxDist
						if !wok {
							wd = maxDist + 1
						}
						gd, gok := LevenshteinBoundedPrepared(pa, pb, maxDist)
						if gd != wd || gok != wok {
							t.Fatalf("LevenshteinBoundedPrepared(len %d, len %d, max %d) = (%d,%v), want (%d,%v)",
								la, len(b), maxDist, gd, gok, wd, wok)
						}
					}
				}
			}
		}
	}
}

// TestBlockedMyersProperty is the randomized differential: both blocked
// kernels (ASCII multi-word and rune-alphabet) must agree with the DP
// reference on arbitrary lengths straddling several words.
func TestBlockedMyersProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 800; trial++ {
		alphabet := asciiAlphabet
		if trial%2 == 1 {
			alphabet = unicodeAlphabet
		}
		a := randRunes(rng, 1+rng.Intn(200), alphabet)
		var b []rune
		if rng.Intn(2) == 0 {
			b = mutate(rng, a, 8, alphabet)
		} else {
			b = randRunes(rng, rng.Intn(200), alphabet)
		}
		want := levenshteinRunes(a, b)
		pa, pb := Prepare(string(a)), Prepare(string(b))
		if got := LevenshteinPrepared(pa, pb); got != want {
			t.Fatalf("trial %d: LevenshteinPrepared(%q, %q) = %d, want %d", trial, string(a), string(b), got, want)
		}
		if sim := LevenshteinSimilarityPrepared(pa, pb); sim != LevenshteinSimilarity(string(a), string(b)) {
			t.Fatalf("trial %d: similarity mismatch", trial)
		}
	}
}

// TestBlockedMyersCombiningMarks pins the rune-kernel semantics for
// combining marks: the kernels count runes, not grapheme clusters, so
// "e" + U+0301 is two runes and distance("é", "é") is 2 (one
// substitution plus one insertion at rune granularity).
func TestBlockedMyersCombiningMarks(t *testing.T) {
	precomposed := "é" // single rune U+00E9
	combining := "é"  // 'e' + combining acute: two runes
	pa, pb := Prepare(precomposed), Prepare(combining)
	want := levenshteinRunes([]rune(precomposed), []rune(combining))
	if got := LevenshteinPrepared(pa, pb); got != want || got != 2 {
		t.Fatalf("distance(é, e+U+0301) = %d, want %d (rune granularity)", got, want)
	}
	// A long combining-mark string crossing the word boundary.
	long := strings.Repeat("éä", 40) // 160 runes, 3 words
	other := strings.Repeat("éä", 39) + "xx́̈"
	want = levenshteinRunes([]rune(long), []rune(other))
	if got := LevenshteinPrepared(Prepare(long), Prepare(other)); got != want {
		t.Fatalf("long combining-mark distance = %d, want %d", got, want)
	}
}

// TestBagBoundSWAR checks the uint64-blocked BagBound against the
// scalar reference, including saturated buckets (strings longer than
// 127 repetitions of one bucket class).
func TestBagBoundSWAR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct{ a, b string }{
		{"", ""},
		{"", "abc"},
		{strings.Repeat("a", 400), strings.Repeat("a", 3)}, // saturation
		{strings.Repeat("ab", 200), strings.Repeat("ba", 199) + "xy"},
	}
	for _, c := range cases {
		pa, pb := Prepare(c.a), Prepare(c.b)
		if got, want := BagBound(pa, pb), bagBoundRef(pa, pb); got != want {
			t.Fatalf("BagBound(%.8q, %.8q) = %d, want %d", c.a, c.b, got, want)
		}
	}
	for trial := 0; trial < 3000; trial++ {
		alphabet := asciiAlphabet
		if trial%3 == 0 {
			alphabet = unicodeAlphabet
		}
		a := string(randRunes(rng, rng.Intn(300), alphabet))
		b := string(randRunes(rng, rng.Intn(300), alphabet))
		pa, pb := Prepare(a), Prepare(b)
		got, want := BagBound(pa, pb), bagBoundRef(pa, pb)
		if got != want {
			t.Fatalf("trial %d: BagBound = %d, want %d", trial, got, want)
		}
		// Soundness: still a lower bound on the true distance.
		if d := LevenshteinPrepared(pa, pb); got > d {
			t.Fatalf("trial %d: BagBound %d exceeds distance %d", trial, got, d)
		}
	}
}

// TestBlockedMyersNoAllocs asserts the steady-state prepared path stays
// allocation-free across every kernel the dispatch can pick: single-word
// ASCII, blocked ASCII, and the rune-alphabet kernel, plus the bounded
// variants and the SWAR pre-filter.
func TestBlockedMyersNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool items at will; steady-state 0 allocs does not hold")
	}
	shortA, shortB := Prepare(strings.Repeat("ab", 20)), Prepare(strings.Repeat("ba", 20))
	longA, longB := Prepare(strings.Repeat("abc", 60)), Prepare(strings.Repeat("acb", 60))
	uniA, uniB := Prepare(strings.Repeat("éá", 50)), Prepare(strings.Repeat("aé́", 49))
	pairs := [][2]*Prepared{{shortA, shortB}, {longA, longB}, {uniA, uniB}}
	for name, fn := range map[string]func(a, b *Prepared){
		"LevenshteinPrepared":        func(a, b *Prepared) { LevenshteinPrepared(a, b) },
		"LevenshteinBoundedPrepared": func(a, b *Prepared) { LevenshteinBoundedPrepared(a, b, 30) },
		"BagBound":                   func(a, b *Prepared) { BagBound(a, b) },
	} {
		for i, pair := range pairs {
			a, b := pair[0], pair[1]
			fn(a, b) // warm the scratch pools
			if allocs := testing.AllocsPerRun(200, func() { fn(a, b) }); allocs != 0 {
				t.Errorf("%s pair %d: %v allocs/op, want 0", name, i, allocs)
			}
		}
	}
}
