package similarity

import (
	"math/rand"
	"strings"
	"testing"
)

// randTitle builds a random string over a small alphabet (with spaces,
// so tokenization is exercised) to force collisions and near-misses.
func randTitle(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if rng.Intn(6) == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteByte(byte('a' + rng.Intn(5)))
		}
	}
	return b.String()
}

// TestLevenshteinAtLeastMatchesSimilarity is the threshold-boundary
// differential: the banded predicate must agree exactly with the
// unbounded similarity for every (pair, threshold), including pairs
// sitting exactly on the threshold — the case the former
// int(float64(longest)*(1-threshold)) bound got wrong (longest=5,
// t=0.8 yielded maxDist 0 instead of 1).
func TestLevenshteinAtLeastMatchesSimilarity(t *testing.T) {
	// The historical failure first: distance 1 at length 5 is exactly
	// similarity 0.8.
	if !LevenshteinAtLeast("abcde", "abcdX", 0.8) {
		t.Fatal("LevenshteinAtLeast rejects a pair exactly on the threshold")
	}
	rng := rand.New(rand.NewSource(42))
	thresholds := []float64{0, 0.1, 0.25, 1.0 / 3, 0.5, 0.6, 2.0 / 3, 0.75, 0.8, 0.9, 0.95, 1}
	for trial := 0; trial < 2000; trial++ {
		a, b := randTitle(rng, 12), randTitle(rng, 12)
		th := thresholds[rng.Intn(len(thresholds))]
		want := LevenshteinSimilarity(a, b) >= th
		if got := LevenshteinAtLeast(a, b, th); got != want {
			t.Fatalf("LevenshteinAtLeast(%q,%q,%v) = %v, want %v (sim=%v)",
				a, b, th, got, want, LevenshteinSimilarity(a, b))
		}
		// Exact-boundary thresholds: set t to the pair's own similarity.
		sim := LevenshteinSimilarity(a, b)
		if sim > 0 && !LevenshteinAtLeast(a, b, sim) {
			t.Fatalf("LevenshteinAtLeast(%q,%q,sim=%v) = false on its own similarity", a, b, sim)
		}
	}
}

// TestPreparedKernelsEquivalence checks every prepared kernel against
// its plain-string counterpart on random inputs.
func TestPreparedKernelsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1500; trial++ {
		sa, sb := randTitle(rng, 16), randTitle(rng, 16)
		pa, pb := Prepare(sa), Prepare(sb)

		if got, want := LevenshteinPrepared(pa, pb), Levenshtein(sa, sb); got != want {
			t.Fatalf("LevenshteinPrepared(%q,%q) = %d, want %d", sa, sb, got, want)
		}
		if got, want := LevenshteinSimilarityPrepared(pa, pb), LevenshteinSimilarity(sa, sb); got != want {
			t.Fatalf("LevenshteinSimilarityPrepared(%q,%q) = %v, want %v", sa, sb, got, want)
		}
		maxDist := rng.Intn(6)
		gd, gok := LevenshteinBoundedPrepared(pa, pb, maxDist)
		wd, wok := LevenshteinBounded(sa, sb, maxDist)
		if gd != wd || gok != wok {
			t.Fatalf("LevenshteinBoundedPrepared(%q,%q,%d) = (%d,%v), want (%d,%v)",
				sa, sb, maxDist, gd, gok, wd, wok)
		}
		th := float64(rng.Intn(11)) / 10
		if got, want := LevenshteinAtLeastPrepared(pa, pb, th), LevenshteinAtLeast(sa, sb, th); got != want {
			t.Fatalf("LevenshteinAtLeastPrepared(%q,%q,%v) = %v, want %v", sa, sb, th, got, want)
		}
		sim, ok := LevenshteinMatchPrepared(pa, pb, th)
		if ok != (LevenshteinSimilarity(sa, sb) >= th) {
			t.Fatalf("LevenshteinMatchPrepared(%q,%q,%v) ok=%v disagrees with similarity", sa, sb, th, ok)
		}
		if ok && sim != LevenshteinSimilarity(sa, sb) {
			t.Fatalf("LevenshteinMatchPrepared(%q,%q,%v) sim=%v, want %v",
				sa, sb, th, sim, LevenshteinSimilarity(sa, sb))
		}
		tsim, tok := NewThresholder(th).Match(pa, pb)
		if tsim != sim || tok != ok {
			t.Fatalf("Thresholder(%v).Match(%q,%q) = (%v,%v), want (%v,%v)",
				th, sa, sb, tsim, tok, sim, ok)
		}
		if got, want := TokenJaccardPrepared(pa, pb), TokenJaccard(sa, sb); got != want {
			t.Fatalf("TokenJaccardPrepared(%q,%q) = %v, want %v", sa, sb, got, want)
		}
		n := 1 + rng.Intn(3)
		if got, want := JaccardNGramPrepared(pa, pb, n), JaccardNGram(sa, sb, n); got != want {
			t.Fatalf("JaccardNGramPrepared(%q,%q,%d) = %v, want %v", sa, sb, n, got, want)
		}
	}
}

// TestMyersMatchesDP drives the bit-parallel ASCII kernel against the
// reference DP across the word-size boundary (len 1..80, including
// exactly 64), plus mixed ASCII/unicode pairs that must take the rune
// path, at every dispatch point (full, bounded, match).
func TestMyersMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	randASCII := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return string(b)
	}
	for trial := 0; trial < 3000; trial++ {
		la, lb := rng.Intn(81), rng.Intn(81)
		if trial%7 == 0 {
			la = 63 + rng.Intn(3) // hammer the 64-rune boundary
		}
		sa, sb := randASCII(la), randASCII(lb)
		if trial%5 == 0 {
			sa += "日" // force the mixed-pair rune path
		}
		pa, pb := Prepare(sa), Prepare(sb)
		want := Levenshtein(sa, sb)
		if got := LevenshteinPrepared(pa, pb); got != want {
			t.Fatalf("LevenshteinPrepared(len %d, len %d) = %d, want %d", la, lb, got, want)
		}
		maxDist := rng.Intn(12)
		gd, gok := LevenshteinBoundedPrepared(pa, pb, maxDist)
		wd, wok := LevenshteinBounded(sa, sb, maxDist)
		if gd != wd || gok != wok {
			t.Fatalf("LevenshteinBoundedPrepared(len %d, len %d, %d) = (%d,%v), want (%d,%v)",
				la, lb, maxDist, gd, gok, wd, wok)
		}
		th := float64(rng.Intn(21)) / 20
		sim, ok := LevenshteinMatchPrepared(pa, pb, th)
		if ok != (LevenshteinSimilarity(sa, sb) >= th) {
			t.Fatalf("LevenshteinMatchPrepared(len %d, len %d, %v) ok=%v disagrees", la, lb, th, ok)
		}
		if ok && sim != LevenshteinSimilarity(sa, sb) {
			t.Fatalf("LevenshteinMatchPrepared sim=%v, want %v", sim, LevenshteinSimilarity(sa, sb))
		}
	}
}

// TestBagBoundLowerBound pins the pre-filter soundness argument: the
// histogram bag bound never exceeds the edit distance, so rejecting on
// BagBound > maxDist can only reject pairs the DP would reject. Random
// unicode runes are included to exercise histogram-bucket collisions.
func TestBagBoundLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alphabet := []rune("abcd 日本語é中文x")
	randUni := func() string {
		rs := make([]rune, rng.Intn(14))
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	for trial := 0; trial < 4000; trial++ {
		var sa, sb string
		if trial%2 == 0 {
			sa, sb = randTitle(rng, 14), randTitle(rng, 14)
		} else {
			sa, sb = randUni(), randUni()
		}
		pa, pb := Prepare(sa), Prepare(sb)
		bag, lev := BagBound(pa, pb), Levenshtein(sa, sb)
		if bag > lev {
			t.Fatalf("BagBound(%q,%q) = %d > Levenshtein = %d: filter unsound", sa, sb, bag, lev)
		}
	}
	// Symmetry and identity.
	pa, pb := Prepare("abca"), Prepare("cab x")
	if BagBound(pa, pb) != BagBound(pb, pa) {
		t.Fatal("BagBound not symmetric")
	}
	if BagBound(pa, pa) != 0 {
		t.Fatal("BagBound(p,p) != 0")
	}
}

// TestPreparedKernelAllocs asserts the hot path's allocation contract:
// once both sides are prepared, a comparison allocates nothing.
func TestPreparedKernelAllocs(t *testing.T) {
	pa := Prepare("canon eos 5d mark iii digital slr camera body")
	pb := Prepare("canon eos 5d mark iv digital slr camera body only")
	pc := Prepare("nikon d850 45mp full frame dslr with battery grip")
	for _, p := range []*Prepared{pa, pb, pc} {
		p.NGramProfile(3)
		p.Tokens() // materialize the lazy forms outside the measured loop
	}
	kernels := map[string]func(){
		"LevenshteinMatchPrepared/hit":  func() { LevenshteinMatchPrepared(pa, pb, 0.8) },
		"LevenshteinMatchPrepared/miss": func() { LevenshteinMatchPrepared(pa, pc, 0.8) },
		"LevenshteinPrepared":           func() { LevenshteinPrepared(pa, pb) },
		"TokenJaccardPrepared":          func() { TokenJaccardPrepared(pa, pb) },
		"JaccardNGramPrepared":          func() { JaccardNGramPrepared(pa, pb, 3) },
		"BagBound":                      func() { BagBound(pa, pb) },
	}
	for name, fn := range kernels {
		fn() // warm the DP row pool
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestPreparedAccessors covers the small cached-form accessors.
func TestPreparedAccessors(t *testing.T) {
	p := Prepare("Beta alpha beta")
	if p.Raw != "Beta alpha beta" {
		t.Fatalf("Raw = %q", p.Raw)
	}
	if p.RuneLen() != 15 {
		t.Fatalf("RuneLen = %d, want 15", p.RuneLen())
	}
	toks := p.Tokens()
	if len(toks) != 2 || toks[0] != "alpha" || toks[1] != "beta" {
		t.Fatalf("Tokens = %v, want [alpha beta]", toks)
	}
	// Profile caching: same n returns the cached slice, new n replaces it.
	g2 := p.NGramProfile(2)
	if &g2[0] != &p.NGramProfile(2)[0] {
		t.Fatal("NGramProfile(2) not cached")
	}
	if len(p.NGramProfile(20)) != 1 {
		t.Fatal("NGramProfile(20) of a 15-rune string should be the whole string")
	}
}
