//go:build race

package similarity

// raceEnabled gates allocation-count assertions: under the race
// detector sync.Pool deliberately drops items to widen interleavings,
// so steady-state pool hits are not guaranteed and 0-allocs tests
// would flake.
const raceEnabled = true
