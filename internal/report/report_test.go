package report

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Title:   "Example",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("short", 42)
	tbl.AddRow("a-longer-name", 3.5)
	tbl.AddRow("float-as-int", 7.0)
	out := tbl.String()

	if !strings.HasPrefix(out, "Example\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every line has the same position for the gap.
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.Contains(out, "3.50") {
		t.Errorf("float not formatted with 2 decimals:\n%s", out)
	}
	if strings.Contains(out, "7.00") {
		t.Errorf("integral float should print as integer:\n%s", out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing separator: %q", lines[2])
	}
}

func TestFormatFloat(t *testing.T) {
	tests := map[float64]string{
		0:      "0",
		42:     "42",
		-3:     "-3",
		1.25:   "1.25",
		1.2345: "1.23",
	}
	for in, want := range tests {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow(1, 2)
	tbl.AddRow("x", "y")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\nx,y\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tbl := &Table{Headers: []string{"h"}}
	tbl.AddRow("v")
	out := tbl.String()
	if strings.HasPrefix(out, "\n") {
		t.Errorf("untitled table starts with blank line: %q", out)
	}
	if !strings.HasPrefix(out, "h\n") {
		t.Errorf("unexpected first line: %q", out)
	}
}
