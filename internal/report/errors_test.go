package report

import (
	"errors"
	"testing"
)

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestFprintPropagatesWriteErrors(t *testing.T) {
	tbl := &Table{Title: "t", Headers: []string{"a"}}
	tbl.AddRow("x")
	tbl.AddRow("y")
	for n := 0; n < 5; n++ {
		if err := tbl.Fprint(&failWriter{n: n}); err == nil {
			t.Errorf("Fprint with writer failing after %d writes: want error", n)
		}
	}
	if err := tbl.Fprint(&failWriter{n: 100}); err != nil {
		t.Errorf("healthy writer: %v", err)
	}
}

func TestWriteCSVPropagatesWriteErrors(t *testing.T) {
	tbl := &Table{Headers: []string{"a"}}
	tbl.AddRow("x")
	for n := 0; n < 2; n++ {
		if err := tbl.WriteCSV(&failWriter{n: n}); err == nil {
			t.Errorf("WriteCSV with writer failing after %d writes: want error", n)
		}
	}
}
