// Package report formats experiment results as aligned text tables and
// CSV, matching the rows/series the paper's figures plot.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly: integers without decimals,
// otherwise two decimal places.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// WriteCSV writes headers and rows as CSV (cells must not contain commas
// or quotes; experiment output never does).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
