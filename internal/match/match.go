// Package match provides ready-made prepared matchers bridging the
// similarity kernels to the core.PreparedMatcher interface. Each matcher
// derives a similarity.Prepared form of one entity attribute exactly
// once per reduce-group membership; the per-pair hot path then runs on
// cached runes, token sets, and n-gram profiles and allocates nothing in
// steady state.
//
// Every constructor returns a core.PreparedMatcher; paths that only
// accept a plain core.Matcher (serial references, custom strategies)
// can wrap it with core.PlainMatcher for identical decisions at the
// per-pair preparation cost.
//
// All matchers draw their prepared forms from similarity's free list
// and implement core.PreparedReleaser, so the strategy reducers recycle
// every prepared entity once its reduce group is finished — the
// steady-state matching pipeline allocates no prepared forms at all.
package match

import (
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/similarity"
)

// EditDistance matches two entities when the normalized Levenshtein
// similarity of their attr values reaches threshold — the paper's match
// rule (threshold 0.8). The kernel rejects clearly dissimilar pairs with
// length and bag-distance pre-filters before running the banded DP.
func EditDistance(attr string, threshold float64) core.PreparedMatcher {
	return editDistance{attr: attr, th: similarity.NewThresholder(threshold)}
}

type editDistance struct {
	attr string
	th   *similarity.Thresholder
}

func (m editDistance) Prepare(e entity.Entity) core.PreparedEntity {
	return similarity.PreparePooled(e.Attr(m.attr))
}

// ReleasePrepared implements core.PreparedReleaser.
func (editDistance) ReleasePrepared(p core.PreparedEntity) { releasePrepared(p) }

func (m editDistance) MatchPrepared(a, b core.PreparedEntity) (float64, bool) {
	return m.th.Match(a.(*similarity.Prepared), b.(*similarity.Prepared))
}

// TokenJaccard matches two entities when the Jaccard coefficient of the
// lowercase whitespace token sets of their attr values reaches
// threshold.
func TokenJaccard(attr string, threshold float64) core.PreparedMatcher {
	return tokenJaccard{attr: attr, threshold: threshold}
}

type tokenJaccard struct {
	attr      string
	threshold float64
}

func (m tokenJaccard) Prepare(e entity.Entity) core.PreparedEntity {
	p := similarity.PreparePooled(e.Attr(m.attr))
	p.Tokens() // materialize now: comparisons stay read-only
	return p
}

// ReleasePrepared implements core.PreparedReleaser.
func (tokenJaccard) ReleasePrepared(p core.PreparedEntity) { releasePrepared(p) }

func (m tokenJaccard) MatchPrepared(a, b core.PreparedEntity) (float64, bool) {
	sim := similarity.TokenJaccardPrepared(a.(*similarity.Prepared), b.(*similarity.Prepared))
	return sim, sim >= m.threshold
}

// NGramJaccard matches two entities when the multiset Jaccard
// coefficient of the rune n-gram profiles of their attr values reaches
// threshold.
func NGramJaccard(attr string, n int, threshold float64) core.PreparedMatcher {
	if n <= 0 {
		panic("match: NGramJaccard requires n > 0")
	}
	return ngramJaccard{attr: attr, n: n, threshold: threshold}
}

type ngramJaccard struct {
	attr      string
	n         int
	threshold float64
}

func (m ngramJaccard) Prepare(e entity.Entity) core.PreparedEntity {
	p := similarity.PreparePooled(e.Attr(m.attr))
	p.NGramProfile(m.n) // materialize now: comparisons stay read-only
	return p
}

// ReleasePrepared implements core.PreparedReleaser.
func (ngramJaccard) ReleasePrepared(p core.PreparedEntity) { releasePrepared(p) }

func (m ngramJaccard) MatchPrepared(a, b core.PreparedEntity) (float64, bool) {
	sim := similarity.JaccardNGramPrepared(a.(*similarity.Prepared), b.(*similarity.Prepared), m.n)
	return sim, sim >= m.threshold
}

// releasePrepared returns a prepared form to similarity's free list.
func releasePrepared(p core.PreparedEntity) {
	if sp, ok := p.(*similarity.Prepared); ok {
		sp.Release()
	}
}
