package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// This file implements the `go vet -vettool` driver protocol, the same
// contract golang.org/x/tools/go/analysis/unitchecker satisfies:
//
//	erlint -V=full     print a version line for go's build cache
//	erlint -flags      print the tool's flags as JSON
//	erlint foo.cfg     analyze the compilation unit described by the
//	                   JSON config file cmd/go wrote
//
// cmd/go does all package loading: the config carries the unit's Go
// files plus the import map and the compiler-written export-data files
// of every dependency, so type-checking one unit needs no source
// beyond the unit itself (importer.ForCompiler with a lookup into
// cfg.PackageFile). Diagnostics print to stderr (or as JSON to stdout
// with -json) and a non-zero exit tells go vet the gate failed.

// vetConfig mirrors the JSON written by cmd/go for each vet action
// (cmd/go/internal/work.vetConfig). Fields the driver does not need
// are still listed so the decode stays strict about nothing.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full: one "name version id" line whose id
// is a content hash of the running binary, so go's vet result cache
// invalidates whenever erlint is rebuilt with different analyzers.
func PrintVersion(w io.Writer, progname string) error {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:24]
			}
			f.Close()
		}
	}
	_, err := fmt.Fprintf(w, "%s version erlint-%s\n", progname, id)
	return err
}

// jsonFlagDesc is one entry of the -flags output, the shape cmd/go
// parses to learn which command-line flags the tool accepts.
type jsonFlagDesc struct {
	Name  string
	Bool  bool
	Usage string
}

// PrintFlags implements -flags for the given flag descriptions.
func PrintFlags(w io.Writer, flags []jsonFlagDesc) error {
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// VetToolFlags describes the flags cmd/go may pass through to the
// tool. -json and -c are the standard vet driver flags; the rest are
// erlint's standalone modes (never passed by go vet, but the protocol
// wants them declared).
func VetToolFlags() []jsonFlagDesc {
	return []jsonFlagDesc{
		{Name: "json", Bool: true, Usage: "emit JSON output"},
		{Name: "c", Bool: false, Usage: "display offending line with this many lines of context"},
		{Name: "V", Bool: false, Usage: "print version and exit (-V=full)"},
		{Name: "flags", Bool: true, Usage: "print analyzer flags in JSON"},
		{Name: "list", Bool: true, Usage: "list analyzers and current repo finding counts"},
	}
}

// RunUnit analyzes the compilation unit described by the go vet config
// file. It returns the unit result; exit-code policy belongs to main.
// In VetxOnly mode (go vet wants only dependency facts — erlint has
// none) it writes the empty facts file and returns a nil Result.
func RunUnit(configFile string, analyzers []*Analyzer) (*Result, *Unit, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("cannot decode vet config %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, nil, fmt.Errorf("package %s has no files", cfg.ImportPath)
	}

	// erlint exports no facts, but go vet reads the output file after
	// every run; write it before any early exit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil, nil // the compiler will report it
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path; cmd/go wrote the export data
		// of every dependency into PackageFile.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, nil
		}
		return nil, nil, err
	}

	u := &Unit{ID: cfg.ID, Fset: fset, Files: files, Pkg: pkg, Info: info}
	res, err := RunAnalyzers(u, analyzers)
	if err != nil {
		return nil, nil, err
	}
	return res, u, nil
}

// newTypesInfo allocates the full set of type-checker maps the
// analyzers read (Instances in particular, for codecreg).
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PrintPlain writes diagnostics as "file:line:col: analyzer: message"
// lines, sorted by position.
func PrintPlain(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// PrintJSON writes the go-vet-compatible JSON tree for one unit:
// {"unitID": {"analyzer": [{"posn": ..., "message": ...}]}}.
func PrintJSON(w io.Writer, fset *token.FileSet, unitID string, diags []Diagnostic) error {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiag{unitID: byAnalyzer}
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// SortedAnalyzerNames returns the analyzer names in listing order.
func SortedAnalyzerNames(analyzers []*Analyzer) []string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}
