// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis model (Analyzer, Pass, Diagnostic) plus the two drivers
// the repo needs — the `go vet -vettool` unitchecker protocol
// (unitchecker.go) and a from-source module loader (load.go) for
// standalone runs and fixture tests.
//
// The x/tools framework is the production-Go way to enforce invariants
// like ours, but this module is deliberately dependency-free (stdlib
// only), so the subset we rely on is reimplemented here: no facts, no
// analyzer DAG — every analyzer is a pure function of one type-checked
// package. That subset is all the engine's invariants need, because
// each of them is phrased package-locally (see DESIGN.md "Static
// analysis").
//
// # Suppression
//
// A finding that is intentional is silenced in place with
//
//	//erlint:ignore <analyzer> <reason>
//
// either trailing the offending line or on the line directly above it.
// The reason is mandatory; a directive that names an unknown analyzer,
// omits the reason, or no longer suppresses anything is itself a
// diagnostic — so the suppression inventory cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. Unlike x/tools there are
// no required inputs or facts: Run sees one fully type-checked package
// and reports diagnostics through the pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //erlint:ignore
	// directives. Lowercase, no spaces.
	Name string
	// Doc states the enforced invariant. The first line is the summary
	// shown by `erlint -list`.
	Doc string
	// Run analyzes the package. Diagnostics go through pass.Report; the
	// error is for operational failures only (it aborts the whole run).
	Run func(*Pass) error
}

// DocSummary returns the first line of the analyzer's documentation.
func (a *Analyzer) DocSummary() string {
	doc := a.Doc
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		doc = doc[:i]
	}
	return strings.TrimSpace(doc)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Most
// analyzers skip test files: the invariants target production code,
// and tests legitimately construct the patterns the analyzers hunt
// (fault fixtures, deliberate allocations, background contexts).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Unit is one type-checked package: the driver-independent input to
// RunAnalyzers. Both drivers (unitchecker and the source loader)
// produce Units.
type Unit struct {
	ID    string // display identifier (import path, or go vet's unit ID)
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Result is the outcome of running the analyzer suite over one unit:
// the surviving diagnostics (suppressions applied, directive problems
// included under the pseudo-analyzer "erlint") and the per-analyzer
// counts of suppressed findings.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  map[string]int
}

// RunAnalyzers executes every analyzer on the unit, applies the
// //erlint:ignore directives, and reports directive misuse. The
// returned error carries the first analyzer failure (not findings).
func RunAnalyzers(u *Unit, analyzers []*Analyzer) (*Result, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			report:    func(d Diagnostic) { all = append(all, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.ID, err)
		}
	}
	return applyDirectives(u, analyzers, all), nil
}
