// Package a exercises the poolbox analyzer: Put arguments allocated
// at the call site defeat the pool.
package a

import "sync"

var bufPool sync.Pool

// putLocal re-boxes a local on every Put: flagged.
func putLocal() {
	buf := make([]byte, 0, 64)
	bufPool.Put(&buf) // want `heap-allocates a pointer box on every Put`
}

// putComposite allocates both value and box at the Put site: flagged.
func putComposite() {
	bufPool.Put(&[]byte{}) // want `allocates a fresh value and box on every Put`
}

// putBareComposite boxes a fresh composite: flagged.
func putBareComposite() {
	bufPool.Put([]byte{}) // want `boxes a fresh composite into the pool's interface`
}

// putNew and putMake allocate the argument in the call: flagged.
func putNew() {
	bufPool.Put(new([]byte)) // want `allocates its argument at the call site`
}

func putMake() {
	bufPool.Put(make([]byte, 8)) // want `allocates its argument at the call site`
}

// unrelated Put methods are not sync.Pool.Put: not flagged.
type bin struct{}

func (bin) Put(v any) {}

func putOther(b bin) {
	x := 1
	b.Put(&x)
}

// twoPool is the sanctioned pattern from internal/mapreduce/sort.go:
// the pointer box itself is pooled, so steady-state Put allocates
// nothing. Not flagged.
type twoPool struct {
	bufs  sync.Pool // stores *[]byte
	boxes sync.Pool // parks empty boxes while their slice is out
}

func (p *twoPool) get() []byte {
	if bp, ok := p.bufs.Get().(*[]byte); ok {
		b := *bp
		*bp = nil
		p.boxes.Put(bp) // recycled box, no allocation: ok
		return b
	}
	return make([]byte, 0, 64)
}

func (p *twoPool) put(b []byte) {
	bp, ok := p.boxes.Get().(*[]byte)
	if !ok {
		bp = new([]byte) // miss-path allocation outside Put: ok
	}
	*bp = b
	p.bufs.Put(bp) // pointer variable, no allocation: ok
}

// suppressed documents a deliberate exception: the directive with a
// reason silences the finding (no want on the next line).
func suppressed() {
	buf := make([]byte, 0, 8)
	//erlint:ignore poolbox fixture: one-shot pool teardown, not a hot path
	bufPool.Put(&buf)
}
