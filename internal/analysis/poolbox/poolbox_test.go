package poolbox_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolbox"
)

func TestPoolbox(t *testing.T) {
	analysistest.Run(t, poolbox.Analyzer, "a")
}
