// Package poolbox flags sync.Pool.Put calls whose argument is
// allocated at the call site — the exact bug class PR 8's two-pool
// slicePool fixed. A pool stores interface values, so
//
//	pool.Put(&buf)      // &local: a fresh box escapes on every Put
//	pool.Put(&T{...})   // fresh composite: allocates, defeats the pool
//	pool.Put(make(...)) // ditto
//
// each heap-allocate a new pointer "box" per round trip, which is
// precisely the allocation the pool was supposed to amortize. The
// sanctioned pattern parks the box itself in a second pool (or keeps
// the pointer across get/put) so steady-state Put is allocation-free —
// see slicePool in internal/mapreduce/sort.go.
package poolbox

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags sync.Pool.Put arguments that allocate at the call
// site.
var Analyzer = &analysis.Analyzer{
	Name: "poolbox",
	Doc:  "sync.Pool.Put must recycle its box: no address-of-local or fresh allocation at the Put site",
	Run:  run,
}

const hint = "; recycle the pointer box instead (two-pool pattern, internal/mapreduce/sort.go)"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Put" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			checkArg(pass, unparen(call.Args[0]))
			return true
		})
	}
	return nil
}

func checkArg(pass *analysis.Pass, arg ast.Expr) {
	switch arg := arg.(type) {
	case *ast.UnaryExpr:
		if arg.Op.String() != "&" {
			return
		}
		switch inner := unparen(arg.X).(type) {
		case *ast.CompositeLit:
			pass.Reportf(arg.Pos(), "sync.Pool.Put(&T{...}) allocates a fresh value and box on every Put"+hint)
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[inner].(*types.Var)
			if ok && !v.IsField() && v.Parent() != nil && v.Parent() != pass.Pkg.Scope() {
				pass.Reportf(arg.Pos(), "sync.Pool.Put(&%s) of a local heap-allocates a pointer box on every Put"+hint, inner.Name)
			}
		}
	case *ast.CompositeLit:
		pass.Reportf(arg.Pos(), "sync.Pool.Put(T{...}) boxes a fresh composite into the pool's interface on every Put"+hint)
	case *ast.CallExpr:
		if id, ok := unparen(arg.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "new" || b.Name() == "make") {
				pass.Reportf(arg.Pos(), "sync.Pool.Put(%s(...)) allocates its argument at the call site on every Put"+hint, b.Name())
			}
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
