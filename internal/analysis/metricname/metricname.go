// Package metricname enforces the metric naming grammar on every
// constant name handed to the obs registry:
//
//	<area>[.<area>...].<noun>_<suffix>
//
// Areas and nouns are lowercase [a-z][a-z0-9]* words; the final
// segment carries the kind-specific suffix that makes /debug/vars and
// trace tooling self-describing:
//
//	Counter    _total
//	Histogram  _ns, _bytes, or _seconds
//	Gauge      _inflight, _pending, _live, or _waiting
//
// The grammar exists so dashboards can be built from name structure
// alone (PR 9 introduced the registry with engine.* and dist.* trees
// already in this shape); an off-grammar name is invisible to that
// tooling forever, because metric names are append-only once emitted.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer validates constant metric names passed to
// (*obs.Registry).Counter/Gauge/Histogram.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "obs registry metric names must match the <area>.<noun>_<unit|total> grammar",
	Run:  run,
}

var (
	segmentRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)
	leafRE    = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)
)

var kindSuffixes = map[string][]string{
	"Counter":   {"_total"},
	"Histogram": {"_ns", "_bytes", "_seconds"},
	"Gauge":     {"_inflight", "_pending", "_live", "_waiting"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			suffixes, isKind := kindSuffixes[sel.Sel.Name]
			if !isKind || !isObsRegistryMethod(pass, sel.Sel) {
				return true
			}
			tv := pass.TypesInfo.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic names are out of scope
			}
			if msg := checkName(constant.StringVal(tv.Value), sel.Sel.Name, suffixes); msg != "" {
				pass.Reportf(call.Args[0].Pos(), "%s", msg)
			}
			return true
		})
	}
	return nil
}

// isObsRegistryMethod reports whether the selected method's receiver
// is the Registry type of a package named obs.
func isObsRegistryMethod(pass *analysis.Pass, sel *ast.Ident) bool {
	fn, ok := pass.TypesInfo.Uses[sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// checkName validates one metric name; it returns "" when the name
// conforms, otherwise the diagnostic message.
func checkName(name, kind string, suffixes []string) string {
	segs := strings.Split(name, ".")
	if len(segs) < 2 {
		return "metric name " + quoted(name) + " needs at least <area>.<noun>_<suffix> (dotted area prefix required)"
	}
	for _, s := range segs[:len(segs)-1] {
		if !segmentRE.MatchString(s) {
			return "metric area segment " + quoted(s) + " in " + quoted(name) + " must match [a-z][a-z0-9]*"
		}
	}
	leaf := segs[len(segs)-1]
	if !leafRE.MatchString(leaf) {
		return "metric leaf " + quoted(leaf) + " in " + quoted(name) + " must be <noun>_<suffix> with lowercase [a-z0-9_] words"
	}
	for _, want := range suffixes {
		if strings.HasSuffix(leaf, want) {
			return ""
		}
	}
	return kind + " name " + quoted(name) + " must end with " + strings.Join(suffixes, ", ")
}

func quoted(s string) string { return "\"" + s + "\"" }
