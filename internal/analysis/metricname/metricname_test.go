package metricname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, "a")
}
