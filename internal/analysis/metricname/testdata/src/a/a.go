// Package a exercises the metricname analyzer against the obs fixture
// registry.
package a

import "obs"

const leaseAge = "dist.master.lease_age_ns" // constants resolve at the call site

func register(r *obs.Registry) {
	// Conforming names: not flagged.
	r.Counter("engine.attempts_total")
	r.Histogram(leaseAge)
	r.Histogram("runio.spill_bytes")
	r.Gauge("engine.tasks_pending")

	// Grammar violations.
	r.Counter("attempts_total")        // want `needs at least <area>\.<noun>_<suffix>`
	r.Counter("engine.attempts")       // want `must be <noun>_<suffix> with lowercase`
	r.Counter("engine.attempts_count") // want `Counter name .* must end with _total`
	r.Gauge("engine.tasks_total")      // want `Gauge name .* must end with _inflight, _pending, _live, _waiting`
	r.Histogram("engine.map_task_ms")  // want `Histogram name .* must end with _ns, _bytes, _seconds`
	r.Counter("Engine.attempts_total") // want `area segment "Engine" .* must match \[a-z\]\[a-z0-9\]\*`

	// Dynamic names are out of scope for a static grammar check.
	r.Counter("engine." + suffix())

	// A deliberate off-grammar name carries a directive with a reason.
	//erlint:ignore metricname fixture: legacy exported name frozen before the grammar existed
	r.Counter("engine.legacy")
}

func suffix() string { return "x_total" }
