// Package obs is a fixture stand-in for the real registry surface:
// metricname matches the receiver by (package name, type name), so
// this mini Registry exercises it exactly like internal/obs does.
package obs

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name string) *Counter { return new(Counter) }

func (r *Registry) Gauge(name string) *Gauge { return new(Gauge) }

func (r *Registry) Histogram(name string) *Histogram { return new(Histogram) }
