package codecreg_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/codecreg"
)

func TestCodecreg(t *testing.T) {
	analysistest.Run(t, codecreg.Analyzer, "a")
}
