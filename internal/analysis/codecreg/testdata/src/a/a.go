// Package a exercises the codecreg analyzer: package-owned Job K/V
// types must be runio-registered in this package's init.
package a

import (
	"mapreduce"
	"runio"
)

type GoodKey struct{ B string }

type BadKey struct{ B string }

type LateKey struct{ B string }

type Val struct{ N int }

type goodKeyCodec struct{}

func (goodKeyCodec) Append(dst []byte, v GoodKey) []byte { return dst }

func (goodKeyCodec) Decode(src string) (GoodKey, int, error) { return GoodKey{}, 0, nil }

type lateKeyCodec struct{}

func (lateKeyCodec) Append(dst []byte, v LateKey) []byte { return dst }

func (lateKeyCodec) Decode(src string) (LateKey, int, error) { return LateKey{}, 0, nil }

type valCodec struct{}

func (valCodec) Append(dst []byte, v Val) []byte { return dst }

func (valCodec) Decode(src string) (Val, int, error) { return Val{}, 0, nil }

func init() {
	runio.Register[GoodKey](goodKeyCodec{})
	runio.Register[Val](valCodec{})
}

// good uses a registered key and value: not flagged.
func good() *mapreduce.Job[int, GoodKey, Val, int] {
	return &mapreduce.Job[int, GoodKey, Val, int]{Name: "good"}
}

// bad's key has no codec: flagged once per type, at the first use.
func bad() *mapreduce.Job[int, BadKey, Val, int] { // want `Job key type BadKey has no runio codec`
	return &mapreduce.Job[int, BadKey, Val, int]{Name: "bad"}
}

// registerLate is not an init function, so its Register does not
// discharge the obligation: the external dataflow resolves codecs at
// job start, before any ordinary function is guaranteed to have run.
func registerLate() {
	runio.Register[LateKey](lateKeyCodec{})
}

func late() *mapreduce.Job[int, LateKey, Val, int] { // want `Job key type LateKey has no runio codec`
	return &mapreduce.Job[int, LateKey, Val, int]{Name: "late"}
}

// basic K/V ride runio's built-in codecs: not flagged.
func basic() *mapreduce.Job[int, string, int, int] {
	return &mapreduce.Job[int, string, int, int]{Name: "basic"}
}

// foreign types are the owning package's responsibility: not flagged
// here (runio.Codec is owned by the runio fixture).
func foreign() *mapreduce.Job[int, runio.Codec[int], Val, int] {
	return nil
}
