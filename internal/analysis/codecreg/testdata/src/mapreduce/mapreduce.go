// Package mapreduce is a fixture stand-in for the typed engine: only
// the Job type's shape (four type parameters, K and V in the middle)
// matters to codecreg.
package mapreduce

type Job[I, K, V, O any] struct {
	Name string
}
