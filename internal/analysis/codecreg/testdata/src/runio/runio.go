// Package runio is a fixture stand-in for the codec registry: codecreg
// matches Register by (package name, function name, one type arg).
package runio

type Codec[T any] interface {
	Append(dst []byte, v T) []byte
	Decode(src string) (T, int, error)
}

func Register[T any](c Codec[T]) {}
