// Package codecreg ties the typed engine's external dataflow to the
// runio codec registry at build time. DataflowExternal serializes
// every intermediate key and value through a codec looked up by
// reflect.Type at job start; a missing registration is only discovered
// when a job first runs with the external (or remote) dataflow — often
// in a long out-of-core benchmark. The repo's convention is that each
// package registers codecs for its own key/value types in init (see
// internal/core/codec.go), so the check is package-local: any concrete
// type this package owns that appears as the K or V argument of a
// mapreduce.Job instantiation must have a runio.Register call for it
// inside one of this package's init functions.
//
// Types owned by other packages are that package's responsibility
// (they register in their own init), and basic types ride on runio's
// built-in codecs, so both are skipped.
package codecreg

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer checks that package-owned Job key/value types are
// runio-registered in this package's init.
var Analyzer = &analysis.Analyzer{
	Name: "codecreg",
	Doc:  "package-owned Job key/value types must have a runio codec registered in the package's init",
	Run:  run,
}

type jobUse struct {
	pos  token.Pos
	role string // "key" or "value"
	typ  types.Type
}

func run(pass *analysis.Pass) error {
	var registered []types.Type
	var uses []jobUse

	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		inits := initRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			inst, ok := pass.TypesInfo.Instances[id]
			if !ok || inst.TypeArgs == nil {
				return true
			}
			switch obj := pass.TypesInfo.Uses[id].(type) {
			case *types.Func:
				if obj.Name() == "Register" && obj.Pkg() != nil && obj.Pkg().Name() == "runio" &&
					inst.TypeArgs.Len() == 1 && within(inits, id.Pos()) {
					registered = append(registered, inst.TypeArgs.At(0))
				}
			case *types.TypeName:
				if obj.Name() == "Job" && obj.Pkg() != nil && obj.Pkg().Name() == "mapreduce" &&
					inst.TypeArgs.Len() == 4 {
					uses = append(uses,
						jobUse{id.Pos(), "key", inst.TypeArgs.At(1)},
						jobUse{id.Pos(), "value", inst.TypeArgs.At(2)})
				}
			}
			return true
		})
	}

	reported := make(map[string]bool)
	for _, u := range uses {
		named, ok := u.typ.(*types.Named)
		if !ok || hasTypeParam(u.typ) {
			continue // basic/composite types use built-ins; generic uses are checked at their concrete instantiation
		}
		if named.Obj().Pkg() != pass.Pkg {
			continue // the owning package registers it in its own init
		}
		if isRegistered(registered, u.typ) || reported[named.Obj().Name()] {
			continue
		}
		reported[named.Obj().Name()] = true
		pass.Reportf(u.pos,
			"Job %s type %s has no runio codec: add runio.Register[%s](...) to an init in this package (external dataflow resolves codecs by type at job start)",
			u.role, named.Obj().Name(), named.Obj().Name())
	}
	return nil
}

// initRanges collects the source extents of the file's init functions.
func initRanges(f *ast.File) [][2]token.Pos {
	var rs [][2]token.Pos
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Recv == nil && fd.Name.Name == "init" && fd.Body != nil {
			rs = append(rs, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
		}
	}
	return rs
}

func within(rs [][2]token.Pos, pos token.Pos) bool {
	for _, r := range rs {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func isRegistered(registered []types.Type, t types.Type) bool {
	for _, r := range registered {
		if types.Identical(r, t) {
			return true
		}
	}
	return false
}

// hasTypeParam reports whether t mentions an unresolved type
// parameter (the instantiation site is itself generic).
func hasTypeParam(t types.Type) bool {
	switch t := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Named:
		if args := t.TypeArgs(); args != nil {
			for i := 0; i < args.Len(); i++ {
				if hasTypeParam(args.At(i)) {
					return true
				}
			}
		}
	case *types.Pointer:
		return hasTypeParam(t.Elem())
	case *types.Slice:
		return hasTypeParam(t.Elem())
	case *types.Array:
		return hasTypeParam(t.Elem())
	case *types.Map:
		return hasTypeParam(t.Key()) || hasTypeParam(t.Elem())
	case *types.Chan:
		return hasTypeParam(t.Elem())
	}
	return false
}
