package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix is the suppression directive marker. Go directive
// convention: comment text starts exactly with "erlint:ignore" (no
// space after "//").
const ignorePrefix = "erlint:ignore"

// directiveAnalyzer is the pseudo-analyzer name under which directive
// misuse (missing reason, unknown analyzer, stale suppression) is
// reported. It is not suppressible.
const directiveAnalyzer = "erlint"

// directive is one parsed //erlint:ignore comment.
type directive struct {
	pos      token.Pos
	file     string
	line     int    // line the comment ends on; it covers line and line+1
	analyzer string // "" when malformed
	reason   string
	used     bool
}

// applyDirectives filters diagnostics through the //erlint:ignore
// directives found in the unit's files and appends directive-misuse
// diagnostics. Suppressed findings are tallied per analyzer.
func applyDirectives(u *Unit, analyzers []*Analyzer, diags []Diagnostic) *Result {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var directives []*directive
	var misuse []Diagnostic
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				end := u.Fset.Position(c.End())
				d := &directive{pos: c.Pos(), file: end.Filename, line: end.Line}
				switch {
				case len(fields) == 0:
					misuse = append(misuse, Diagnostic{
						Pos: c.Pos(), Analyzer: directiveAnalyzer,
						Message: "erlint:ignore needs an analyzer name and a reason: //erlint:ignore <analyzer> <reason>",
					})
				case len(fields) == 1:
					misuse = append(misuse, Diagnostic{
						Pos: c.Pos(), Analyzer: directiveAnalyzer,
						Message: "erlint:ignore " + fields[0] + " is missing the mandatory reason",
					})
				case !known[fields[0]]:
					misuse = append(misuse, Diagnostic{
						Pos: c.Pos(), Analyzer: directiveAnalyzer,
						Message: "erlint:ignore names unknown analyzer " + fields[0],
					})
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				directives = append(directives, d)
			}
		}
	}

	res := &Result{Suppressed: make(map[string]int)}
	for _, diag := range diags {
		pos := u.Fset.Position(diag.Pos)
		suppressed := false
		for _, d := range directives {
			if d.analyzer == diag.Analyzer && d.file == pos.Filename &&
				(d.line == pos.Line || d.line+1 == pos.Line) {
				d.used = true
				suppressed = true
			}
		}
		if suppressed {
			res.Suppressed[diag.Analyzer]++
		} else {
			res.Diagnostics = append(res.Diagnostics, diag)
		}
	}
	res.Diagnostics = append(res.Diagnostics, misuse...)
	for _, d := range directives {
		if d.analyzer != "" && !d.used {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Pos: d.pos, Analyzer: directiveAnalyzer,
				Message: "stale erlint:ignore " + d.analyzer + ": it suppresses no finding; delete it",
			})
		}
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		return res.Diagnostics[i].Pos < res.Diagnostics[j].Pos
	})
	return res
}
