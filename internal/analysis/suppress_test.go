package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
)

// TestSuppressionDirectives checks directive handling on the suppress
// fixture: one valid suppression, three misuse shapes (bare directive,
// missing reason, unknown analyzer), and one stale directive. Misuse
// diagnostics anchor at the directive comment itself, where a // want
// comment cannot sit, so this test asserts on them directly instead of
// going through analysistest.
func TestSuppressionDirectives(t *testing.T) {
	loader := analysis.NewFixtureLoader(filepath.Join("testdata", "src"))
	u, err := loader.LoadFixture("suppress")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	res, err := analysis.RunAnalyzers(u, []*analysis.Analyzer{ctxflow.Analyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	if got := res.Suppressed["ctxflow"]; got != 1 {
		t.Errorf("suppressed ctxflow findings = %d, want 1 (the valid directive in ok())", got)
	}

	// Expected surviving diagnostics: the malformed directives do not
	// suppress, so their Background() calls report as ctxflow, and each
	// misuse reports under the erlint pseudo-analyzer.
	wantMessages := []string{
		"erlint:ignore ctxflow is missing the mandatory reason",
		"erlint:ignore needs an analyzer name and a reason",
		"erlint:ignore names unknown analyzer nosuchanalyzer",
		"stale erlint:ignore ctxflow: it suppresses no finding",
	}
	byAnalyzer := make(map[string]int)
	for _, d := range res.Diagnostics {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["erlint"] != len(wantMessages) {
		t.Errorf("erlint directive-misuse diagnostics = %d, want %d:\n%s",
			byAnalyzer["erlint"], len(wantMessages), format(u, res.Diagnostics))
	}
	if byAnalyzer["ctxflow"] != 3 {
		t.Errorf("surviving ctxflow diagnostics = %d, want 3 (missing/bare/unknown directives do not suppress):\n%s",
			byAnalyzer["ctxflow"], format(u, res.Diagnostics))
	}
	for _, want := range wantMessages {
		found := false
		for _, d := range res.Diagnostics {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q:\n%s", want, format(u, res.Diagnostics))
		}
	}
}

func format(u *analysis.Unit, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(u.Fset.Position(d.Pos).String())
		b.WriteString(": ")
		b.WriteString(d.Analyzer)
		b.WriteString(": ")
		b.WriteString(d.Message)
		b.WriteString("\n")
	}
	return b.String()
}
