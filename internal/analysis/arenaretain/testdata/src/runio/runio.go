// Package runio is a fixture stand-in for the arena read path:
// arenaretain matches SharedSegmentReader.Next and SharedString by
// (package name, name), so these mini definitions taint like the real
// ones.
package runio

import "errors"

type SharedSegmentReader struct {
	block []byte
	off   int
}

var errDone = errors.New("done")

// Next returns a record aliasing the reader's block buffer.
func (s *SharedSegmentReader) Next() (string, error) {
	if s.off >= len(s.block) {
		return "", errDone
	}
	b := s.block[s.off:]
	s.off = len(s.block)
	return string(b), nil
}

// SharedString decodes a length-prefixed view of src, aliasing it.
func SharedString(src string) (string, int, error) {
	return src, len(src), nil
}
