// Package a exercises the arenaretain analyzer: strings from the
// shared read path alias a refill buffer and must be cloned before
// being retained.
package a

import (
	"runio"
	"strings"
)

type record struct {
	Key   string
	Value string
}

type index struct {
	byKey map[string]string
	last  string
}

var lastSeen string

// retainClone copies before retaining: ok.
func retainClone(r *runio.SharedSegmentReader, ix *index) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	ix.last = strings.Clone(s)
	ix.byKey[strings.Clone(s)] = strings.Clone(s)
	return nil
}

// retainConcat also copies (concatenation allocates): ok.
func retainConcat(r *runio.SharedSegmentReader, ix *index) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	ix.last = s + ""
	return nil
}

// localBuilder fills a frame-local record from aliased strings: ok —
// this is exactly how decoders return records; the caller decides what
// to retain.
func localBuilder(r *runio.SharedSegmentReader) (record, error) {
	s, err := r.Next()
	if err != nil {
		return record{}, err
	}
	var rec record
	rec.Key = s[:1]
	rec.Value = s[1:]
	return rec, nil
}

// retainField stores the aliased string through a pointer: flagged.
func retainField(r *runio.SharedSegmentReader, ix *index) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	ix.last = s // want `stored in field last escapes the read frame`
	return nil
}

// retainMap: the map retains both its keys and values: flagged.
func retainMap(r *runio.SharedSegmentReader, ix *index) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	ix.byKey[s] = "x" // want `used as a map key is retained by the map`
	ix.byKey["k"] = s // want `stored as a map value is retained by the map`
	return nil
}

// retainGlobal: package-level variables outlive every frame: flagged.
func retainGlobal(r *runio.SharedSegmentReader) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	lastSeen = s // want `stored in package-level variable lastSeen`
	return nil
}

// retainChan: the receiver may hold the string past the next refill:
// flagged.
func retainChan(r *runio.SharedSegmentReader, ch chan string) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	ch <- s // want `sent on a channel outlives the read frame`
	return nil
}

// decoders shows taint flowing through slicing, a func-typed decoder
// value, and runio.SharedString.
func decoders(r *runio.SharedSegmentReader, dec func(string) (record, int, error), out *record) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	rec, _, err := dec(s)
	if err != nil {
		return err
	}
	out.Key = rec.Key // want `stored in field Key escapes the read frame`
	v, _, _ := runio.SharedString(s[1:])
	out.Value = v // want `stored in field Value escapes the read frame`
	return nil
}

// recCodec's Decode receives shared bytes by contract (seeded taint).
type recCodec struct{}

var capture index

func (recCodec) Decode(src string) (record, int, error) {
	capture.last = src // want `stored in field last escapes the read frame`
	return record{Key: src}, len(src), nil
}

// transient documents a store the surrounding engine bounds to the
// current block, suppressed with a reason.
func transient(r *runio.SharedSegmentReader, ix *index) error {
	s, err := r.Next()
	if err != nil {
		return err
	}
	//erlint:ignore arenaretain fixture: consumer contract clones before the next refill
	ix.last = s
	return nil
}
