package arenaretain_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/arenaretain"
)

func TestArenaretain(t *testing.T) {
	analysistest.Run(t, arenaretain.Analyzer, "a")
}
