// Package arenaretain enforces the arena copy-what-you-retain rule
// from PR 8's external dataflow: strings handed out by the shared-
// segment read path alias a refill buffer that is overwritten by the
// next block, so they are only valid until the reader advances.
// Retaining one — storing it into a struct field reachable beyond the
// frame, a map, a package-level variable, or sending it on a channel —
// must go through strings.Clone (or concatenation, which also copies).
//
// The analyzer runs a per-function taint pass. Taint sources are the
// values the arena hands out:
//
//   - results of (*runio.SharedSegmentReader).Next
//   - results of runio.SharedString (an aliasing view by definition)
//   - results of calling a func-typed variable or field with the
//     decoder shape func(string) (T, int, error) — how the external
//     dataflow threads shared decoders (recDecoder.kdec/vdec)
//   - the src parameter of codec Decode methods and of the closures
//     NewSharedDecoder returns, which receive shared bytes by contract
//
// Taint follows assignments, slicing, field reads, and append;
// strings.Clone, string<->[]byte conversion, and concatenation clear
// it (each copies). Building up a function-local, non-pointer struct
// from tainted strings is allowed — that is exactly how decoders
// return records — because the aliasing value stays in the frame
// until the caller decides what to retain.
package arenaretain

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags arena-backed strings that escape the frame without a
// copy.
var Analyzer = &analysis.Analyzer{
	Name: "arenaretain",
	Doc:  "arena-backed strings must be strings.Clone'd before being retained (copy-what-you-retain)",
	Run:  run,
}

const hint = "; the bytes alias the shared refill buffer — strings.Clone what you retain"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				analyzeFunc(pass, fd)
			}
		}
	}
	return nil
}

type taintState struct {
	pass      *analysis.Pass
	tainted   map[types.Object]bool
	changed   bool
	reporting bool
}

func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	s := &taintState{pass: pass, tainted: make(map[types.Object]bool)}
	s.seedParams(fd)
	for range 32 { // fixpoint: taint flows through assignment chains and loops
		s.changed = false
		s.walk(fd.Body)
		if !s.changed {
			break
		}
	}
	s.reporting = true
	s.walk(fd.Body)
}

// seedParams taints the shared-source parameters: the src argument of
// codec Decode methods and of the decoder closures NewSharedDecoder
// builds — both receive arena-backed bytes by contract.
func (s *taintState) seedParams(fd *ast.FuncDecl) {
	if fd.Recv == nil {
		return
	}
	switch fd.Name.Name {
	case "Decode":
		if obj, ok := s.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && isDecodeSig(obj.Type()) {
			s.taintParam(fd.Type)
		}
	case "NewSharedDecoder":
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				if tv, ok := s.pass.TypesInfo.Types[fl]; ok && isDecodeSig(tv.Type) {
					s.taintParam(fl.Type)
				}
			}
			return true
		})
	}
}

func (s *taintState) taintParam(ft *ast.FuncType) {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return
	}
	for _, name := range ft.Params.List[0].Names {
		if obj := s.pass.TypesInfo.Defs[name]; obj != nil {
			s.taint(obj)
		}
	}
}

func (s *taintState) taint(obj types.Object) {
	if !s.tainted[obj] {
		s.tainted[obj] = true
		s.changed = true
	}
}

func (s *taintState) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			s.assign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range n.Names {
				lhs = append(lhs, name)
			}
			s.assign(lhs, n.Values)
		case *ast.RangeStmt:
			if s.exprTainted(n.X) {
				s.taintTarget(n.Key)
				s.taintTarget(n.Value)
			}
		case *ast.SendStmt:
			if s.reporting && s.exprTainted(n.Value) {
				s.pass.Reportf(n.Arrow, "arena-backed string sent on a channel outlives the read frame"+hint)
			}
		}
		return true
	})
}

func (s *taintState) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// tuple: only the first result of a decoder-shaped call (or an
		// element of a tainted container) carries arena bytes.
		if s.exprTainted(rhs[0]) {
			s.taintTarget(lhs[0])
			s.sink(lhs[0])
		}
		for _, l := range lhs {
			s.mapKeySink(l)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) && s.exprTainted(rhs[i]) {
			s.taintTarget(l)
			s.sink(l)
		}
		s.mapKeySink(l)
	}
}

// taintTarget marks an assignment destination tainted when it is a
// plain local variable.
func (s *taintState) taintTarget(e ast.Expr) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	if obj := s.objOf(id); obj != nil && isLocalVar(obj, s.pass) {
		s.taint(obj)
	}
}

// sink reports destinations that retain the value beyond the frame.
func (s *taintState) sink(e ast.Expr) {
	if !s.reporting {
		return
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := s.objOf(e).(*types.Var); ok && !v.IsField() && v.Parent() == s.pass.Pkg.Scope() {
			s.pass.Reportf(e.Pos(), "arena-backed string stored in package-level variable %s"+hint, e.Name)
		}
	case *ast.SelectorExpr:
		if !localValueFieldChain(s.pass, e) {
			s.pass.Reportf(e.Pos(), "arena-backed string stored in field %s escapes the read frame"+hint, e.Sel.Name)
		}
	case *ast.IndexExpr:
		if isMap(s.pass, e.X) {
			s.pass.Reportf(e.Pos(), "arena-backed string stored as a map value is retained by the map"+hint)
		}
	case *ast.StarExpr:
		s.pass.Reportf(e.Pos(), "arena-backed string stored through a pointer escapes the read frame"+hint)
	}
}

// mapKeySink reports tainted map keys on store: the map retains its
// keys regardless of what is assigned.
func (s *taintState) mapKeySink(e ast.Expr) {
	if !s.reporting {
		return
	}
	ie, ok := unparen(e).(*ast.IndexExpr)
	if ok && isMap(s.pass, ie.X) && s.exprTainted(ie.Index) {
		s.pass.Reportf(ie.Index.Pos(), "arena-backed string used as a map key is retained by the map"+hint)
	}
}

func (s *taintState) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.objOf(e)
		return obj != nil && s.tainted[obj]
	case *ast.ParenExpr:
		return s.exprTainted(e.X)
	case *ast.SliceExpr:
		return s.exprTainted(e.X)
	case *ast.IndexExpr:
		return s.exprTainted(e.X)
	case *ast.SelectorExpr:
		return s.exprTainted(e.X) // field read of a tainted record
	case *ast.StarExpr:
		return s.exprTainted(e.X)
	case *ast.UnaryExpr:
		return s.exprTainted(e.X)
	case *ast.TypeAssertExpr:
		return s.exprTainted(e.X)
	case *ast.CallExpr:
		return s.callTainted(e)
	}
	return false
}

func (s *taintState) callTainted(call *ast.CallExpr) bool {
	fun := unparen(call.Fun)
	// Conversions: string<->[]byte copies (clean); a conversion between
	// string types aliases (taint follows).
	if tv, ok := s.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isStringish(tv.Type) && isStringish(s.pass.TypesInfo.Types[call.Args[0]].Type) {
			return s.exprTainted(call.Args[0])
		}
		return false
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for _, a := range call.Args {
					if s.exprTainted(a) {
						return true
					}
				}
			}
			return false
		}
	}
	if isStringsClone(s.pass, fun) {
		return false // the sanctioned copy
	}
	return s.isSourceCall(call)
}

// isSourceCall recognizes the calls whose first result aliases the
// shared refill buffer.
func (s *taintState) isSourceCall(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := s.pass.TypesInfo.Selections[fun]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				if fun.Sel.Name == "Next" && isSharedReader(sel.Recv()) {
					return true
				}
				if fun.Sel.Name == "Decode" && isDecodeSig(sel.Type()) {
					return true
				}
			case types.FieldVal:
				return isDecodeSig(sel.Type())
			}
			return false
		}
		switch obj := s.pass.TypesInfo.Uses[fun.Sel].(type) {
		case *types.Var: // package-level func value
			return isDecodeSig(obj.Type())
		case *types.Func: // runio.SharedString returns an aliasing view
			return obj.Name() == "SharedString" && obj.Pkg() != nil && obj.Pkg().Name() == "runio"
		}
	case *ast.Ident:
		if v, ok := s.objOf(fun).(*types.Var); ok {
			return isDecodeSig(v.Type())
		}
	}
	return false
}

func (s *taintState) objOf(id *ast.Ident) types.Object {
	if obj := s.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return s.pass.TypesInfo.Defs[id]
}

// localValueFieldChain reports whether the selector stores into a
// field chain rooted at a function-local, non-pointer variable — the
// allowed builder pattern (var rec Record; rec.Key = k; return rec).
func localValueFieldChain(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	e := sel.X
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[x].(*types.Var)
			if !ok || !isLocalVar(obj, pass) {
				return false
			}
			_, isPtr := obj.Type().Underlying().(*types.Pointer)
			return !isPtr
		default:
			return false
		}
	}
}

func isLocalVar(obj types.Object, pass *analysis.Pass) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Parent() != nil && v.Parent() != pass.Pkg.Scope()
}

func isMap(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isStringsClone(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Clone" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "strings"
}

// isSharedReader matches *runio.SharedSegmentReader (or the value
// form) by name, so fixtures with a mini runio package also match.
func isSharedReader(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SharedSegmentReader" && obj.Pkg() != nil && obj.Pkg().Name() == "runio"
}

// isDecodeSig matches the shared-decoder shape func(string) (T, int,
// error).
func isDecodeSig(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 3 {
		return false
	}
	if !isBasicKind(sig.Params().At(0).Type(), types.IsString) {
		return false
	}
	if !isBasicKind(sig.Results().At(1).Type(), types.IsInteger) {
		return false
	}
	named, ok := sig.Results().At(2).Type().(*types.Named)
	return ok && named.Obj() == types.Universe.Lookup("error")
}

func isBasicKind(t types.Type, info types.BasicInfo) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&info != 0
}

func isStringish(t types.Type) bool {
	return t != nil && isBasicKind(t, types.IsString)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
