package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the second driver: a from-source package loader for the
// standalone modes that run without cmd/go's help — `erlint -list`
// (load the whole module, count findings) and the analysistest harness
// (load one fixture tree under testdata/src). In-module imports are
// type-checked recursively from source; everything else (the standard
// library) comes from the gc toolchain's export data.

// A Loader type-checks packages from source. resolve maps an import
// path to a source directory when the loader owns it; all other
// imports fall back to compiled export data.
type Loader struct {
	fset    *token.FileSet
	resolve func(importPath string) (string, bool)
	std     types.Importer
	units   map[string]*Unit
	loading map[string]bool
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		resolve: resolve,
		std:     importer.ForCompiler(fset, "gc", nil),
		units:   make(map[string]*Unit),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over the loader's two sources.
func (l *Loader) Import(path string) (*types.Package, error) {
	if u, ok := l.units[path]; ok {
		return u.Pkg, nil
	}
	if dir, ok := l.resolve(path); ok {
		u, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir under the given
// import path. Build constraints are honored; test files are excluded,
// matching what a plain `go build` of the package would compile.
func (l *Loader) load(dir, importPath string) (*Unit, error) {
	if u, ok := l.units[importPath]; ok {
		return u, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	tc := &types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := tc.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	u := &Unit{ID: importPath, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.units[importPath] = u
	return u, nil
}

// NewFixtureLoader returns a loader rooted at a GOPATH-style source
// tree (testdata/src): import path "a/b" resolves to srcRoot/a/b.
func NewFixtureLoader(srcRoot string) *Loader {
	return newLoader(func(importPath string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// LoadFixture loads one fixture package by its path under the loader's
// source root.
func (l *Loader) LoadFixture(importPath string) (*Unit, error) {
	dir, ok := l.resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("no fixture package %q", importPath)
	}
	return l.load(dir, importPath)
}

// LoadModule loads every package of the Go module rooted at root
// (identified by its go.mod), skipping testdata, hidden, and bin
// directories. Units come back sorted by import path.
func LoadModule(root string) ([]*Unit, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	loader := newLoader(func(importPath string) (string, bool) {
		if importPath == modPath {
			return root, true
		}
		rest, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return "", false
		}
		dir := filepath.Join(root, filepath.FromSlash(rest))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})

	var units []*Unit
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "bin" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		u, err := loader.load(path, importPath)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil // directory holds no buildable Go files
			}
			return fmt.Errorf("load %s: %w", importPath, err)
		}
		units = append(units, u)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(units, func(i, j int) bool { return units[i].ID < units[j].ID })
	return units, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
