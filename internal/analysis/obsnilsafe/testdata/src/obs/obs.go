// Package obs exercises the obsnilsafe analyzer: every handle type
// reachable from Observer must tolerate a nil receiver, because
// "observability off" is spelled nil.
package obs

// Observer seeds the reachable-handle closure.
type Observer struct {
	Tracer *Tracer
	Reg    *Registry
}

type Registry struct {
	names []string
}

type Tracer struct {
	events []int
	n      int
}

// Record guards the receiver before the field access: ok.
func (t *Tracer) Record(e int) {
	if t == nil {
		return
	}
	t.events = append(t.events, e)
}

// Len uses the compound-guard idiom; the nil check still dominates the
// access: ok.
func (t *Tracer) Len() int {
	if t != nil && t.events != nil {
		return len(t.events)
	}
	return 0
}

// Dropped reads a field with no guard at all: flagged.
func (t *Tracer) Dropped() int { // want `\(\*Tracer\)\.Dropped reads receiver fields without a nil guard`
	return t.n
}

// Names guards only after the first access: flagged.
func (r *Registry) Names() []string { // want `\(\*Registry\)\.Names reads receiver fields without a nil guard`
	n := len(r.names)
	if r == nil {
		return nil
	}
	_ = n
	return r.names
}

// On is field-free: nothing to guard, not flagged.
func (t *Tracer) On() bool {
	return t != nil
}

// Snapshot has a value receiver, which cannot be nil: exempt.
func (t Tracer) Snapshot() int {
	return t.n
}

// Helper never hangs off the Observer seam, so it owes no guard.
type Helper struct {
	n int
}

func (h *Helper) N() int {
	return h.n
}

// checked documents a method that is only ever called through a
// non-nil parent, suppressed with a reason.
//
//erlint:ignore obsnilsafe fixture: only reachable through a guarded Observer method
func (r *Registry) mustNames() []string {
	return r.names
}
