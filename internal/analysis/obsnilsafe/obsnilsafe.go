// Package obsnilsafe enforces the observability seam's zero-cost-
// when-disabled contract: a nil *Observer (and every handle reachable
// from it — Tracer, Registry, EngineMetrics, Counter, Gauge,
// Histogram) must be safe to call, because instrumented code threads
// these pointers unconditionally and "observability off" is spelled
// nil. Any pointer-receiver method on a reachable type must therefore
// guard the receiver against nil before its first field access;
// otherwise an un-instrumented run panics the moment a hot path
// records a metric.
//
// The reachable set is computed structurally: the package's Observer
// struct seeds a closure over same-package struct-typed fields, so a
// helper type that never hangs off the seam (a CLI struct, an HTTP
// handler) is not burdened with guards it does not need.
package obsnilsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer checks that methods on obs handle types nil-guard the
// receiver before touching fields.
var Analyzer = &analysis.Analyzer{
	Name: "obsnilsafe",
	Doc:  "obs handle methods must guard the nil receiver before any field access (nil = observability off)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "obs" {
		return nil
	}
	reachable := reachableHandleTypes(pass.Pkg)
	if len(reachable) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, reachable, fd)
		}
	}
	return nil
}

// reachableHandleTypes closes over the struct fields of Observer:
// every same-package struct type reachable through (possibly pointer)
// fields is an observability handle.
func reachableHandleTypes(pkg *types.Package) map[*types.TypeName]bool {
	seedObj, ok := pkg.Scope().Lookup("Observer").(*types.TypeName)
	if !ok {
		return nil
	}
	reachable := map[*types.TypeName]bool{seedObj: true}
	queue := []*types.TypeName{seedObj}
	for len(queue) > 0 {
		tn := queue[0]
		queue = queue[1:]
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if p, ok := ft.(*types.Pointer); ok {
				ft = p.Elem()
			}
			named, ok := ft.(*types.Named)
			if !ok {
				continue
			}
			obj := named.Obj()
			if obj.Pkg() != pkg || reachable[obj] {
				continue
			}
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				reachable[obj] = true
				queue = append(queue, obj)
			}
		}
	}
	return reachable
}

// checkMethod verifies one method: if the pointer receiver's fields
// are accessed, a nil comparison of the receiver must appear first.
func checkMethod(pass *analysis.Pass, reachable map[*types.TypeName]bool, fd *ast.FuncDecl) {
	recvField := fd.Recv.List[0]
	rt := pass.TypesInfo.Types[recvField.Type].Type
	ptr, ok := rt.(*types.Pointer)
	if !ok {
		return // value receivers cannot be nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || !reachable[named.Obj()] {
		return
	}
	if len(recvField.Names) == 0 {
		return // unnamed receiver: no field access possible
	}
	recvVar := pass.TypesInfo.Defs[recvField.Names[0]]
	if recvVar == nil {
		return
	}

	firstAccess, firstGuard := firstFieldAccessAndGuard(pass, fd.Body, recvVar)
	if !firstAccess.IsValid() {
		return
	}
	if !firstGuard.IsValid() || firstGuard > firstAccess {
		pass.Reportf(fd.Name.Pos(),
			"method (*%s).%s reads receiver fields without a nil guard; a nil %s must be a no-op (zero-cost-when-disabled contract)",
			named.Obj().Name(), fd.Name.Name, recvField.Names[0].Name)
	}
}

// firstFieldAccessAndGuard returns the position of the earliest field
// access on recv and the earliest `recv == nil` / `recv != nil`
// comparison in body (token.NoPos when absent). Positions order
// source, so guard < access means the access is dominated by a check
// in all the guard idioms this package uses (early return, && chain).
func firstFieldAccessAndGuard(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) (access, guard token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isUseOf(pass, n.X, recv) {
				if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					if !access.IsValid() || n.Pos() < access {
						access = n.Pos()
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if (isUseOf(pass, n.X, recv) && isNil(pass, n.Y)) ||
					(isUseOf(pass, n.Y, recv) && isNil(pass, n.X)) {
					if !guard.IsValid() || n.Pos() < guard {
						guard = n.Pos()
					}
				}
			}
		}
		return true
	})
	return access, guard
}

func isUseOf(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
}
