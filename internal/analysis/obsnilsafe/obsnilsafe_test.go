package obsnilsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obsnilsafe"
)

func TestObsnilsafe(t *testing.T) {
	analysistest.Run(t, obsnilsafe.Analyzer, "obs")
}
