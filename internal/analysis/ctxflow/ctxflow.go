// Package ctxflow forbids minting fresh contexts below the entry
// points: engine and dist internals must thread the caller's
// context.Context so cancellation, deadlines, and fault injection
// reach every task attempt. A context.Background() (or TODO()) in
// library code silently detaches everything downstream of it from the
// run's cancellation tree — the distributed runtime then cannot stop
// straggler attempts, and ermatch's SIGINT handling stops working for
// that subtree.
//
// Entry points are exempt structurally (package main is skipped) or
// explicitly: lifecycle roots such as server shutdown timeouts and the
// legacy non-context adapters carry an //erlint:ignore ctxflow with
// the reason.
package ctxflow

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer flags context.Background/context.TODO calls in non-main,
// non-test library code.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "no context.Background()/TODO() below entry points: thread the caller's context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() detaches this call tree from the run's cancellation; thread the incoming context.Context instead",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
