// Package a exercises the ctxflow analyzer: library code must thread
// the caller's context rather than minting fresh roots.
package a

import "context"

// fresh mints a root context in library code: flagged.
func fresh() context.Context {
	return context.Background() // want `context\.Background\(\) detaches this call tree`
}

// todo is the same violation spelled differently.
func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) detaches this call tree`
}

// threaded passes the caller's context on: not flagged.
func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// adapter is the sanctioned escape hatch: a directive with a reason
// suppresses the finding (proven here by the absence of a want).
func adapter() context.Context {
	//erlint:ignore ctxflow fixture: legacy entry-point adapter keeps the context-free signature
	return context.Background()
}

// shadowed is a user-defined context package lookalike: not flagged.
func shadowed() int {
	type contextpkg struct{}
	_ = contextpkg{}
	return background()
}

func background() int { return 0 }
