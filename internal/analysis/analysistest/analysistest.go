// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (stdlib-only, like the
// rest of internal/analysis).
//
// Fixtures live under the calling test's testdata/src/<path> in
// GOPATH-style layout; fixture packages may import each other by that
// path and may import the standard library. A line that should be
// flagged carries a trailing comment of one or more quoted regular
// expressions:
//
//	pool.Put(&buf) // want `heap-allocates a pointer box`
//
// Every diagnostic must be matched by a want on its line and every
// want must match a diagnostic — so negative fixtures are simply
// lines without want comments, and a valid //erlint:ignore directive
// proves itself by making the expected diagnostic disappear.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package and checks the analyzer against its
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewFixtureLoader(filepath.Join("testdata", "src"))
	for _, pkg := range pkgs {
		u, err := loader.LoadFixture(pkg)
		if err != nil {
			t.Fatalf("load fixture %s: %v", pkg, err)
		}
		res, err := analysis.RunAnalyzers(u, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkg, err)
		}
		check(t, u, res.Diagnostics)
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, u *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				key := lineKey(pos.Filename, pos.Line)
				rest := strings.TrimSpace(c.Text[idx+len("// want "):])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want expectation %q: %v", key, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: unquote %q: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}

	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		key := lineKey(pos.Filename, pos.Line)
		matched := false
		for _, e := range wants[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, es := range wants {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, e.re)
			}
		}
	}
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}
