// Package suppress exercises the //erlint:ignore directive contract:
// a valid directive needs a known analyzer name plus a reason, and a
// directive that suppresses nothing is itself an error.
package suppress

import "context"

// ok is suppressed by a well-formed directive.
func ok() context.Context {
	//erlint:ignore ctxflow fixture: legacy adapter keeps the context-free signature
	return context.Background()
}

// missing omits the mandatory reason, so the finding survives and the
// directive is flagged.
func missing() context.Context {
	//erlint:ignore ctxflow
	return context.Background()
}

// bare has neither analyzer nor reason.
func bare() context.Context {
	//erlint:ignore
	return context.Background()
}

// unknown names an analyzer that does not exist.
func unknown() context.Context {
	//erlint:ignore nosuchanalyzer the analyzer name is wrong
	return context.Background()
}

// stale: nothing on the directive's line or the next violates ctxflow.
func stale(ctx context.Context) context.Context {
	//erlint:ignore ctxflow this suppresses nothing
	return ctx
}
