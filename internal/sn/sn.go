// Package sn implements MapReduce-based Sorted Neighborhood (SN)
// blocking, the alternative approach of Kolb et al., "Multi-pass Sorted
// Neighborhood Blocking with MapReduce" (CSRD 2011) that the paper's
// related-work section contrasts with BlockSplit/PairRange: instead of
// comparing everything within equal-key blocks, SN sorts all entities by
// a sorting key and compares each entity with its w−1 predecessors in
// the sorted order. By design SN is far less vulnerable to skew — every
// entity participates in at most 2(w−1) comparisons — at the price of
// missing duplicates that sort far apart.
//
// The MR realization follows the replication ("JobSN") scheme:
//
//  1. A distribution job counts entities per sorting key (reusing the
//     BDM machinery's counting pattern) so the driver can cut the key
//     space into r contiguous ranges of near-equal entity counts,
//     always on key-group boundaries.
//  2. The matching job range-partitions entities by sorting key; each
//     reduce task sorts its range by (key, ID) and slides the window,
//     side-emitting its first and last w−1 entities.
//  3. Boundary stitching compares cross-range pairs whose rank distance
//     is below w, using the side-emitted fringes of adjacent ranges.
//
// The result is exactly the serial SN result over the canonical
// (key, ID) total order; property tests enforce this.
package sn

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
)

// KeyFunc derives the sorting key from an entity attribute value.
type KeyFunc func(attrValue string) string

// Config configures a sorted-neighborhood run.
type Config struct {
	// RunOptions is the execution plumbing (engine, parallelism,
	// out-of-core spilling, match sink) shared with the er pipelines.
	// A configured Sink receives the window and boundary matches as a
	// stream (raw emissions; Result.Matches stays nil).
	er.RunOptions

	// Attr is the attribute the sorting key is derived from.
	Attr string
	// Key derives the sorting key (identity on the attribute is common).
	Key KeyFunc
	// Window is w: each entity is compared with its w−1 predecessors.
	Window int
	// R is the number of reduce tasks of the matching job.
	R int
	// Matcher decides matches; nil counts comparisons only.
	Matcher core.Matcher
	// PreparedMatcher, when non-nil, takes precedence over Matcher and
	// drives the prepare-once comparison kernel: the window reducer
	// prepares each entity exactly once when it enters the sliding
	// buffer (instead of re-deriving both sides on every of its up to
	// 2(w−1) comparisons), and the boundary stitching prepares each
	// fringe entity once. Results are identical to the plain path.
	PreparedMatcher core.PreparedMatcher
}

func (c *Config) validate() error {
	switch {
	case c.Key == nil:
		return fmt.Errorf("sn: Config.Key is required")
	case c.Window < 2:
		return fmt.Errorf("sn: Config.Window must be >= 2, got %d", c.Window)
	case c.R <= 0:
		return fmt.Errorf("sn: Config.R must be > 0, got %d", c.R)
	}
	return nil
}

// Result is the outcome of a sorted-neighborhood run.
type Result struct {
	Matches     []core.MatchPair
	Comparisons int64
	// RangeBounds holds the key-range boundaries the driver derived
	// from the distribution job (len R+1 conceptually; stored as the
	// first key of each range after the initial one).
	RangeBounds []string
	// MatchResult exposes the matching job's per-task metrics.
	MatchResult *mapreduce.Result[entity.Entity, snOut]
	// BoundaryComparisons counts the cross-range stitching comparisons.
	BoundaryComparisons int64
}

// partitionInput converts entity partitions into the typed job input.
func partitionInput(parts entity.Partitions) [][]entity.Entity {
	input := make([][]entity.Entity, len(parts))
	for i, p := range parts {
		input[i] = p
	}
	return input
}

// snKey is the matching job's composite key: range ‖ sort key ‖ ID.
// Partitioning uses Range; sorting uses the entire key (yielding the
// canonical (key, ID) order within a range); grouping uses Range so one
// reduce call sees its whole range in order.
type snKey struct {
	Range int
	Key   string
	ID    string
}

func compareSNKeys(a, b snKey) int {
	if c := mapreduce.CompareInts(a.Range, b.Range); c != 0 {
		return c
	}
	if c := mapreduce.CompareStrings(a.Key, b.Key); c != 0 {
		return c
	}
	return mapreduce.CompareStrings(a.ID, b.ID)
}

func groupSNKeys(a, b snKey) int {
	return mapreduce.CompareInts(a.Range, b.Range)
}

// snKeyCoding packs range ‖ first 12 bytes of the sort key: the range
// occupies the top 32 bits exactly (GroupBits), the 12-byte key prefix
// decides most of the rest, ties fall back to the full comparator.
func snKeyCoding(r int) mapreduce.KeyCoding[snKey] {
	if r > 1<<31 {
		return mapreduce.KeyCoding[snKey]{}
	}
	return mapreduce.KeyCoding[snKey]{
		Encode: func(k snKey) mapreduce.Code {
			p := mapreduce.StringPrefixCode(k.Key)
			return mapreduce.Code{
				Hi: uint64(uint32(k.Range))<<32 | p.Hi>>32,
				Lo: p.Hi<<32 | p.Lo>>32,
			}
		},
		GroupBits: 32,
	}
}

// snOut is one matching-job output record: either a window match (with
// its similarity) or a side-emitted boundary fringe entity.
type snOut struct {
	match  core.MatchPair
	sim    float64
	fringe *fringe
}

// fringe tags a side-emitted boundary entity.
type fringe struct {
	Range int
	// Head is true for the first w−1 entities of the range, false for
	// the last w−1.
	Head bool
	// Pos is the entity's rank from the relevant end (0 = first or
	// last entity of the range, respectively).
	Pos int
	E   entity.Entity
}

// Run executes the full sorted-neighborhood workflow — the pre-context
// adapter over RunPipeline, kept for one release of compatibility.
func Run(parts entity.Partitions, cfg Config) (*Result, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
}

// RunPipeline executes the full sorted-neighborhood workflow over the
// source's partitions. Cancelling ctx stops the run between engine
// tasks; a configured Sink streams the window and boundary matches
// instead of collecting them into Result.Matches.
func RunPipeline(ctx context.Context, src er.Source, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts, err := src.Partitions()
	if err != nil {
		return nil, err
	}

	// ---- Phase 1: key distribution (the SN analogue of the BDM). ----
	counts := make(map[string]int)
	for _, part := range parts {
		for _, e := range part {
			counts[cfg.Key(e.Attr(cfg.Attr))]++
		}
	}
	keys := make([]string, 0, len(counts))
	total := 0
	for k, c := range counts {
		keys = append(keys, k)
		total += c
	}
	sort.Strings(keys)
	bounds := rangeBounds(keys, counts, total, cfg.R)

	// ---- Phase 2: the matching job. ----
	job := &mapreduce.Job[entity.Entity, snKey, entity.Entity, snOut]{
		Name:           "sorted-neighborhood",
		NumReduceTasks: cfg.R,
		NewMapper: func() mapreduce.Mapper[entity.Entity, snKey, entity.Entity] {
			return &snMapper{cfg: &cfg, bounds: bounds}
		},
		NewReducer: func() mapreduce.Reducer[snKey, entity.Entity, snOut] {
			return newSNReducer[snKey](&cfg)
		},
		Partition: func(key snKey, r int) int { return key.Range % r },
		Compare:   compareSNKeys,
		Group:     groupSNKeys,
		Coding:    snKeyCoding(cfg.R),
	}
	out := &Result{RangeBounds: bounds}
	if err := runSNMatching(ctx, job, partitionInput(parts), cfg, out); err != nil {
		return nil, fmt.Errorf("sn: matching job: %w", err)
	}
	return out, nil
}

// runSNMatching executes an SN matching job (key- or rank-partitioned —
// both share the snOut output shape) and assembles the Result: window
// matches are deduplicated into out.Matches, or streamed raw to the
// configured sink; the O(r·w) boundary fringes are always collected
// in-driver and feed phase 3, the boundary stitching, whose matches
// follow the same path.
func runSNMatching(ctx context.Context, job mapreduce.JobRunner[entity.Entity, snOut], input [][]entity.Entity, cfg Config, out *Result) error {
	eng := cfg.ResolveEngine()
	sink := cfg.Sink
	var fringes []fringe

	if sink == nil {
		res, err := job.RunContext(ctx, eng, input)
		if err != nil {
			return err
		}
		out.MatchResult = res
		seen := make(map[core.MatchPair]bool)
		for _, o := range res.Output {
			if o.fringe != nil {
				fringes = append(fringes, *o.fringe)
				continue
			}
			if !seen[o.match] {
				seen[o.match] = true
				out.Matches = append(out.Matches, o.match)
			}
		}
		out.Comparisons = res.Counter(core.ComparisonsCounter)
		stitched, comps := stitchBoundaries(fringes, cfg)
		out.BoundaryComparisons = comps
		out.Comparisons += comps
		for _, sp := range stitched {
			if !seen[sp.pair] {
				seen[sp.pair] = true
				out.Matches = append(out.Matches, sp.pair)
			}
		}
		er.SortMatches(out.Matches)
		return nil
	}

	// Streaming: window matches go straight to the sink (the engine
	// serializes emissions, so appending fringes here is race-free);
	// only the fringes are buffered for the stitching phase.
	res, err := job.RunStream(ctx, eng, input, func(o snOut) error {
		if o.fringe != nil {
			fringes = append(fringes, *o.fringe)
			return nil
		}
		return sink.Consume(o.match, o.sim)
	})
	if err != nil {
		return err
	}
	out.MatchResult = res
	out.Comparisons = res.Counter(core.ComparisonsCounter)
	stitched, comps := stitchBoundaries(fringes, cfg)
	out.BoundaryComparisons = comps
	out.Comparisons += comps
	for _, sp := range stitched {
		if err := sink.Consume(sp.pair, sp.sim); err != nil {
			return err
		}
	}
	return sink.Flush()
}

// rangeBounds cuts the sorted key groups into r contiguous ranges of
// near-equal entity counts. The returned slice holds, for ranges
// 1..r−1, the first key of the range; an entity's range is the number
// of bounds that are <= its key.
func rangeBounds(keys []string, counts map[string]int, total, r int) []string {
	if r <= 1 || len(keys) == 0 {
		return nil
	}
	per := (total + r - 1) / r
	bounds := make([]string, 0, r-1)
	acc := 0
	for _, k := range keys {
		if acc >= per*(len(bounds)+1) && len(bounds) < r-1 {
			bounds = append(bounds, k)
		}
		acc += counts[k]
	}
	return bounds
}

// rangeOf returns the range index of a sorting key given the bounds.
func rangeOf(key string, bounds []string) int {
	// First bound greater than key ends the search.
	return sort.SearchStrings(bounds, key+"\x00")
}

type snMapper struct {
	cfg    *Config
	bounds []string
}

func (m *snMapper) Configure(_, _, _ int) {}

func (m *snMapper) Map(ctx *mapreduce.MapContext[entity.Entity, snKey, entity.Entity], e entity.Entity) {
	k := m.cfg.Key(e.Attr(m.cfg.Attr))
	ctx.Emit(snKey{Range: rangeOf(k, m.bounds), Key: k, ID: e.ID}, e)
}

// snReducer is the window reducer, generic over the composite key so
// the key-based (snKey) and rank-based (rankKey) variants share the
// sliding-window logic; both sort one whole range per reduce call, so
// the logic only depends on the value order.
type snReducer[K any] struct {
	window int
	match  core.Matcher
	pm     core.PreparedMatcher
	rel    core.PreparedReleaser
	task   int
	buffer []entity.Entity
	prep   []core.PreparedEntity
}

func newSNReducer[K any](cfg *Config) *snReducer[K] {
	r := &snReducer[K]{window: cfg.Window, match: cfg.Matcher, pm: cfg.PreparedMatcher}
	if rel, ok := cfg.PreparedMatcher.(core.PreparedReleaser); ok {
		r.rel = rel
	}
	return r
}

func (r *snReducer[K]) Configure(_, _, taskIndex int) { r.task = taskIndex }

func (r *snReducer[K]) release(p core.PreparedEntity) {
	if r.rel != nil {
		r.rel.ReleasePrepared(p)
	}
}

// Reduce receives one whole range in canonical order, slides the
// window, and emits the range's head and tail fringes for the boundary
// phase. Only the last w−1 seen entities are buffered — SN's
// constant-memory advantage over block-based matching. With a prepared
// matcher each entity is prepared exactly once, when it enters the
// window. The range index equals the reduce task index (both the
// key-based and the rank-based variant produce at most r ranges,
// partitioned by range).
func (r *snReducer[K]) Reduce(ctx *mapreduce.ReduceContext[snOut], _ K, values []mapreduce.Rec[K, entity.Entity]) {
	rg := r.task
	r.buffer, r.prep = r.buffer[:0], r.prep[:0]
	n := len(values)
	for i := range values {
		e := values[i].Value
		var pe core.PreparedEntity
		if r.pm != nil {
			pe = r.pm.Prepare(e)
		}
		for j, prev := range r.buffer {
			ctx.Inc(core.ComparisonsCounter, 1)
			switch {
			case r.pm != nil:
				if sim, ok := r.pm.MatchPrepared(r.prep[j], pe); ok {
					ctx.Emit(snOut{match: core.NewMatchPair(prev.ID, e.ID), sim: sim})
				}
			case r.match != nil:
				if sim, ok := r.match(prev, e); ok {
					ctx.Emit(snOut{match: core.NewMatchPair(prev.ID, e.ID), sim: sim})
				}
			}
		}
		if len(r.buffer) == r.window-1 {
			r.buffer = r.buffer[1:]
			if r.pm != nil {
				r.release(r.prep[0]) // evicted from the window: done for good
				r.prep = r.prep[1:]
			}
		}
		r.buffer = append(r.buffer, e)
		if r.pm != nil {
			r.prep = append(r.prep, pe)
		}

		// Fringes for boundary stitching.
		if i < r.window-1 {
			ctx.Emit(snOut{fringe: &fringe{Range: rg, Head: true, Pos: i, E: e}})
		}
		if n-1-i < r.window-1 {
			ctx.Emit(snOut{fringe: &fringe{Range: rg, Head: false, Pos: n - 1 - i, E: e}})
		}
	}
	for _, p := range r.prep {
		r.release(p)
	}
}

// scoredPair is a stitched boundary match with its similarity (streamed
// to the sink when one is installed).
type scoredPair struct {
	pair core.MatchPair
	sim  float64
}

// stitchBoundaries compares cross-range pairs with rank distance < w.
// It reconstructs the global order around each range boundary from the
// fringes: ...tail of range i (positions w−2..0), head of range i+1
// (positions 0..w−2)... and, when ranges are tiny, continues through
// subsequent heads/tails.
func stitchBoundaries(fringes []fringe, cfg Config) ([]scoredPair, int64) {
	// Order fringes into the global sequence: heads and tails of a
	// range interleave (a range shorter than w−1 contributes the same
	// entity to both its head and tail). Build per-range ordered entity
	// lists from the head fringe (which is the range's first min(n,w−1)
	// entities) and the tail fringe (last min(n,w−1)).
	heads := make(map[int][]entity.Entity)
	tails := make(map[int][]entity.Entity)
	maxRange := 0
	for _, f := range fringes {
		if f.Range > maxRange {
			maxRange = f.Range
		}
	}
	headPos := make(map[int]map[int]entity.Entity)
	tailPos := make(map[int]map[int]entity.Entity)
	for _, f := range fringes {
		m := headPos
		if !f.Head {
			m = tailPos
		}
		if m[f.Range] == nil {
			m[f.Range] = make(map[int]entity.Entity)
		}
		m[f.Range][f.Pos] = f.E
	}
	for rg, ps := range headPos {
		heads[rg] = orderedByPos(ps, false)
	}
	for rg, ps := range tailPos {
		tails[rg] = orderedByPos(ps, true) // tail Pos counts from the end
	}

	// With a prepared matcher, derive each fringe entity's comparison
	// form once up front; a fringe entity participates in up to w−1
	// cross-range comparisons.
	var prepHeads, prepTails map[int][]core.PreparedEntity
	if cfg.PreparedMatcher != nil {
		prepHeads = prepareFringes(heads, cfg.PreparedMatcher)
		prepTails = prepareFringes(tails, cfg.PreparedMatcher)
	}

	w := cfg.Window
	var pairs []scoredPair
	var comparisons int64
	seenPair := make(map[[2]string]bool)
	// For each boundary between range b and the ranges after it,
	// compare tail entities of b with head entities of following ranges
	// while the rank distance stays < w. Rank distance across the
	// boundary: (entities after x in range b) + (entities in skipped
	// whole ranges) + (rank of y in its range) + 1.
	for b := 0; b < maxRange; b++ {
		tail := tails[b]
		if len(tail) == 0 {
			continue
		}
		for ti := range tail {
			after := len(tail) - 1 - ti // entities after x within its fringe
			dist := after + 1
			for nb := b + 1; nb <= maxRange && dist < w; nb++ {
				head := heads[nb]
				for hi := 0; hi < len(head) && dist+hi < w; hi++ {
					x, y := tail[ti], head[hi]
					if x.ID == y.ID {
						continue
					}
					pk := [2]string{x.ID, y.ID}
					if seenPair[pk] {
						continue
					}
					seenPair[pk] = true
					comparisons++
					switch {
					case cfg.PreparedMatcher != nil:
						if sim, ok := cfg.PreparedMatcher.MatchPrepared(prepTails[b][ti], prepHeads[nb][hi]); ok {
							pairs = append(pairs, scoredPair{core.NewMatchPair(x.ID, y.ID), sim})
						}
					case cfg.Matcher != nil:
						if sim, ok := cfg.Matcher(x, y); ok {
							pairs = append(pairs, scoredPair{core.NewMatchPair(x.ID, y.ID), sim})
						}
					}
				}
				// Advance past range nb: all of its entities separate x
				// from range nb+1's head. The head fringe length equals
				// min(|range|, w−1); if the whole range is larger than
				// the fringe, the remaining distance certainly exceeds
				// the window, so the fringe length is a safe proxy.
				if len(head) >= w-1 {
					dist = w // terminate: a full window separates them
				} else {
					dist += len(head)
				}
			}
		}
	}
	if rel, ok := cfg.PreparedMatcher.(core.PreparedReleaser); ok {
		for _, ps := range prepHeads {
			for _, p := range ps {
				rel.ReleasePrepared(p)
			}
		}
		for _, ps := range prepTails {
			for _, p := range ps {
				rel.ReleasePrepared(p)
			}
		}
	}
	return pairs, comparisons
}

// prepareFringes derives the prepared form of every fringe entity, in
// the same per-range order as the entity lists.
func prepareFringes(lists map[int][]entity.Entity, pm core.PreparedMatcher) map[int][]core.PreparedEntity {
	out := make(map[int][]core.PreparedEntity, len(lists))
	for rg, es := range lists {
		ps := make([]core.PreparedEntity, len(es))
		for i, e := range es {
			ps[i] = pm.Prepare(e)
		}
		out[rg] = ps
	}
	return out
}

func orderedByPos(ps map[int]entity.Entity, reverse bool) []entity.Entity {
	idx := make([]int, 0, len(ps))
	for p := range ps {
		idx = append(idx, p)
	}
	sort.Ints(idx)
	out := make([]entity.Entity, len(idx))
	for i, p := range idx {
		if reverse {
			out[len(idx)-1-i] = ps[p]
		} else {
			out[i] = ps[p]
		}
	}
	return out
}

// Serial is the reference implementation: sort all entities by
// (key, ID) and compare each with its w−1 predecessors.
func Serial(entities []entity.Entity, attr string, key KeyFunc, window int, match core.Matcher) ([]core.MatchPair, int64) {
	type keyed struct {
		k string
		e entity.Entity
	}
	ks := make([]keyed, len(entities))
	for i, e := range entities {
		ks[i] = keyed{k: key(e.Attr(attr)), e: e}
	}
	slices.SortFunc(ks, func(a, b keyed) int {
		if c := strings.Compare(a.k, b.k); c != 0 {
			return c
		}
		return strings.Compare(a.e.ID, b.e.ID)
	})
	var pairs []core.MatchPair
	var comparisons int64
	for i := range ks {
		lo := i - (window - 1)
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			comparisons++
			if match == nil {
				continue
			}
			if _, ok := match(ks[j].e, ks[i].e); ok {
				pairs = append(pairs, core.NewMatchPair(ks[j].e.ID, ks[i].e.ID))
			}
		}
	}
	er.SortMatches(pairs)
	return pairs, comparisons
}
