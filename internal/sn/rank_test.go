package sn

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
)

// TestRunRankedMatchesSerialFuzz: rank-partitioned SN equals the
// canonical-order serial reference exactly, including comparison counts
// and compare-once semantics.
func TestRunRankedMatchesSerialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(120) + 2
		m := rng.Intn(4) + 1
		parts := make(entity.Partitions, m)
		for i := 0; i < n; i++ {
			p := rng.Intn(m)
			parts[p] = append(parts[p], mk(fmt.Sprintf("e%03d", i), fmt.Sprintf("k%02d", rng.Intn(15))))
		}
		w := rng.Intn(8) + 2
		r := rng.Intn(9) + 1

		var mu sync.Mutex
		got := make(map[core.MatchPair]int)
		res, err := RunRanked(parts, Config{
			Attr: "k", Key: identityKey, Window: w, R: r,
			Matcher: alwaysMatch(&got, &mu),
		})
		if err != nil {
			t.Fatalf("trial %d (w=%d r=%d m=%d): %v", trial, w, r, m, err)
		}
		want, wantComps := SerialRanked(parts, "k", identityKey, w,
			func(entity.Entity, entity.Entity) (float64, bool) { return 1, true })
		if len(res.Matches) != len(want) || (len(want) > 0 && !reflect.DeepEqual(res.Matches, want)) {
			t.Fatalf("trial %d (n=%d w=%d r=%d m=%d): %d matches, want %d",
				trial, n, w, r, m, len(res.Matches), len(want))
		}
		if res.Comparisons != wantComps {
			t.Fatalf("trial %d: comparisons = %d, want %d", trial, res.Comparisons, wantComps)
		}
		for p, c := range got {
			if c != 1 {
				t.Fatalf("trial %d: pair %v compared %d times", trial, p, c)
			}
		}
	}
}

// TestRankedBalancesSkewedKeys is the point of the variant: with one
// dominant key, the key-based partitioner puts nearly all comparisons on
// one reduce task while the rank partitioner spreads them evenly.
func TestRankedBalancesSkewedKeys(t *testing.T) {
	var es []entity.Entity
	for i := 0; i < 400; i++ {
		es = append(es, mk(fmt.Sprintf("e%03d", i), "dominant"))
	}
	for i := 0; i < 40; i++ {
		es = append(es, mk(fmt.Sprintf("x%03d", i), fmt.Sprintf("rare%02d", i)))
	}
	parts := entity.SplitRoundRobin(es, 4)
	const w, r = 8, 8

	loadsOf := func(res *Result) core.LoadStats {
		loads := make([]int64, len(res.MatchResult.ReduceMetrics))
		for i, rm := range res.MatchResult.ReduceMetrics {
			loads[i] = rm.Counter(core.ComparisonsCounter)
		}
		return core.ComputeLoadStats(loads)
	}

	keyed, err := Run(parts, Config{Attr: "k", Key: identityKey, Window: w, R: r})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RunRanked(parts, Config{Attr: "k", Key: identityKey, Window: w, R: r})
	if err != nil {
		t.Fatal(err)
	}

	keyedStats := loadsOf(keyed)
	rankedStats := loadsOf(ranked)
	if keyedStats.MaxOverMean < 3 {
		t.Errorf("key-partitioned SN max/mean = %.2f; expected the dominant key to congest one task", keyedStats.MaxOverMean)
	}
	if rankedStats.MaxOverMean > 1.3 {
		t.Errorf("rank-partitioned SN max/mean = %.2f, want near 1", rankedStats.MaxOverMean)
	}
}

func TestRankedSingleEntityAndValidation(t *testing.T) {
	res, err := RunRanked(entity.Partitions{{mk("only", "x")}}, Config{
		Attr: "k", Key: identityKey, Window: 3, R: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparisons != 0 || len(res.Matches) != 0 {
		t.Errorf("single entity: comparisons=%d matches=%d", res.Comparisons, len(res.Matches))
	}
	if _, err := RunRanked(entity.Partitions{{mk("a", "x")}}, Config{Attr: "k", Window: 3, R: 2}); err == nil {
		t.Error("nil Key: want error")
	}
}

// TestRankDistribution checks the canonical-order rank computation.
func TestRankDistribution(t *testing.T) {
	parts := entity.Partitions{
		{mk("a", "k2"), mk("b", "k1")},
		{mk("c", "k1"), mk("d", "k1")},
	}
	d := buildRankDistribution(parts, "k", identityKey, 2)
	if d.total != 4 {
		t.Fatalf("total = %d", d.total)
	}
	// Canonical order: k1 entities (partition 0 first: b, then c, d),
	// then k2 (a). So keyStart[k1]=0, keyStart[k2]=3.
	if d.keyStart["k1"] != 0 || d.keyStart["k2"] != 3 {
		t.Errorf("keyStart = %v", d.keyStart)
	}
	if got := d.partBase["k1"]; got[0] != 0 || got[1] != 1 {
		t.Errorf("k1 partition bases = %v", got)
	}
	if d.perRange != 2 {
		t.Errorf("perRange = %d, want 2", d.perRange)
	}
}
