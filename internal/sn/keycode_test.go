package sn

import (
	"testing"
)

// Fuzz tests for the sorted-neighborhood key codings, mirroring the
// strategy-coding tests in internal/core: the encoded comparison must
// agree with the struct comparators and the declared group bits must
// decide range membership exactly. Raw fuzz values are clamped into
// each key's documented domain (Range is a reduce-range index in
// [0, r); the global rank is non-negative).

func clampRange(v int64) int {
	if v < 0 {
		v = -v
	}
	return int(v % (1 << 31))
}

func FuzzSNKeyCoding(f *testing.F) {
	f.Add(int64(0), "", "", int64(0), "", "")
	f.Add(int64(1), "smith", "e-1", int64(1), "smith", "e-2")
	f.Add(int64(2), "exactly-twelve-bytes", "x", int64(2), "exactly-twelve-byteZ", "x")
	f.Add(int64(3), "\x00", "a", int64(3), "\x00\x00", "a")
	coding := snKeyCoding(8)
	f.Fuzz(func(t *testing.T, rangeA int64, keyA, idA string, rangeB int64, keyB, idB string) {
		a := snKey{Range: clampRange(rangeA), Key: keyA, ID: idA}
		b := snKey{Range: clampRange(rangeB), Key: keyB, ID: idB}
		if err := coding.Verify(compareSNKeys, groupSNKeys, a, b); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzRankKeyCoding(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), int64(1))
	f.Add(int64(5), int64(1<<40), int64(5), int64(1<<40)+1)
	f.Fuzz(func(t *testing.T, rangeA, rankA, rangeB, rankB int64) {
		abs := func(v int64) int64 {
			if v < 0 {
				if v == -v {
					return 0
				}
				return -v
			}
			return v
		}
		a := rankKey{Range: clampRange(rangeA), Rank: abs(rankA)}
		b := rankKey{Range: clampRange(rangeB), Rank: abs(rankB)}
		if err := rankKeyCoding.Verify(compareRankKeys, groupRankKeys, a, b); err != nil {
			t.Fatal(err)
		}
	})
}
