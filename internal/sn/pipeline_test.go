package sn

// Pipeline-API tests for sorted neighborhood: the legacy adapters
// (Run/RunRanked/RunMultiPass) must match the context-aware pipeline
// entry points byte for byte, and a streaming sink must see exactly the
// window + boundary matches without accumulating them in the Result.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/testleak"
)

// snPipelineFixture builds a skewed keyed dataset whose ranges are
// smaller than the window, so boundary stitching contributes matches.
func snPipelineFixture() (entity.Partitions, Config) {
	var es []entity.Entity
	for i := 0; i < 48; i++ {
		es = append(es, mk(fmt.Sprintf("e%03d", i), fmt.Sprintf("k%02d", i%12)))
	}
	cfg := Config{
		RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 3}},
		Attr:       "k",
		Key:        identityKey,
		Window:     6,
		R:          5,
		Matcher: func(a, b entity.Entity) (float64, bool) {
			return 1, a.Attr("k") == b.Attr("k")
		},
	}
	return entity.SplitRoundRobin(es, 3), cfg
}

// TestSNAdapterMatchesPipeline: sn.Run ≡ sn.RunPipeline and
// sn.RunRanked ≡ sn.RunRankedPipeline on the full Result.
func TestSNAdapterMatchesPipeline(t *testing.T) {
	parts, cfg := snPipelineFixture()
	legacy, err := Run(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.BoundaryComparisons == 0 || len(legacy.Matches) == 0 {
		t.Fatal("fixture does not exercise boundary stitching")
	}
	pipeline, err := RunPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, pipeline) {
		t.Fatal("legacy sn adapter result differs from pipeline")
	}

	legacyRanked, err := RunRanked(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipelineRanked, err := RunRankedPipeline(context.Background(), er.FromPartitions(parts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyRanked, pipelineRanked) {
		t.Fatal("legacy ranked sn adapter result differs from pipeline")
	}

	mcfg := MultiConfig{
		RunOptions: cfg.RunOptions,
		Passes:     []Pass{{Name: "k", Attr: "k", Key: identityKey}},
		Window:     cfg.Window,
		R:          cfg.R,
		Matcher:    cfg.Matcher,
	}
	legacyMulti, err := RunMultiPass(parts, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	pipelineMulti, err := RunMultiPassPipeline(context.Background(), er.FromPartitions(parts), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyMulti, pipelineMulti) {
		t.Fatal("legacy multi-pass sn adapter result differs from pipeline")
	}
}

// TestSNSinkStreamsWindowAndBoundaryMatches: with a sink installed,
// Result.Matches stays nil, MatchResult.Output is empty, and a
// Canonical sink reproduces the collected matches — including the
// stitched boundary pairs, which are streamed after the job.
func TestSNSinkStreamsWindowAndBoundaryMatches(t *testing.T) {
	parts, cfg := snPipelineFixture()
	for _, run := range []struct {
		name string
		fn   func(context.Context, er.Source, Config) (*Result, error)
	}{{"keyed", RunPipeline}, {"ranked", RunRankedPipeline}} {
		collected, err := run.fn(context.Background(), er.FromPartitions(parts), cfg)
		if err != nil {
			t.Fatal(err)
		}
		scfg := cfg
		canon := &er.Canonical{}
		scfg.Sink = canon
		streamed, err := run.fn(context.Background(), er.FromPartitions(parts), scfg)
		if err != nil {
			t.Fatal(err)
		}
		if streamed.Matches != nil {
			t.Fatalf("%s: Matches accumulated despite sink", run.name)
		}
		if n := len(streamed.MatchResult.Output); n != 0 {
			t.Fatalf("%s: MatchResult.Output holds %d records, want 0", run.name, n)
		}
		if streamed.Comparisons != collected.Comparisons || streamed.BoundaryComparisons != collected.BoundaryComparisons {
			t.Fatalf("%s: comparison counts diverge under streaming", run.name)
		}
		if !reflect.DeepEqual(canon.Matches(), collected.Matches) {
			t.Fatalf("%s: Canonical sink = %v, want %v", run.name, canon.Matches(), collected.Matches)
		}
	}
}

// TestSNPipelineCancelled: a cancelled context aborts the SN pipeline.
func TestSNPipelineCancelled(t *testing.T) {
	parts, cfg := snPipelineFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := testleak.Snapshot()
	defer testleak.Check(t, before)
	if _, err := RunPipeline(ctx, er.FromPartitions(parts), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := RunRankedPipeline(ctx, er.FromPartitions(parts), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("ranked: err = %v, want context.Canceled", err)
	}
}
