package sn

import (
	"fmt"

	"repro/internal/runio"
)

// runio codecs for the sorted-neighborhood jobs' intermediate keys, so
// the SN extension (and its rank-based variant) also runs on the
// external dataflow. Values are entities, covered by entity.Codec; the
// snOut output type never touches disk (only intermediate records
// spill).

type snKeyCodec struct{}

func (snKeyCodec) Append(dst []byte, k snKey) []byte {
	dst = runio.AppendVarint(dst, int64(k.Range))
	dst = runio.AppendString(dst, k.Key)
	return runio.AppendString(dst, k.ID)
}

func (snKeyCodec) Decode(src []byte) (snKey, int, error) {
	var k snKey
	r, n, err := runio.Varint(src)
	if err != nil {
		return k, 0, fmt.Errorf("snKey range: %w", err)
	}
	k.Range = int(r)
	s, sn_, err := runio.String(src[n:])
	if err != nil {
		return k, 0, fmt.Errorf("snKey key: %w", err)
	}
	n += sn_
	k.Key = s
	id, idn, err := runio.String(src[n:])
	if err != nil {
		return k, 0, fmt.Errorf("snKey id: %w", err)
	}
	k.ID = id
	return k, n + idn, nil
}

type rankKeyCodec struct{}

func (rankKeyCodec) Append(dst []byte, k rankKey) []byte {
	dst = runio.AppendVarint(dst, int64(k.Range))
	return runio.AppendVarint(dst, k.Rank)
}

func (rankKeyCodec) Decode(src []byte) (rankKey, int, error) {
	var k rankKey
	r, n, err := runio.Varint(src)
	if err != nil {
		return k, 0, fmt.Errorf("rankKey range: %w", err)
	}
	k.Range = int(r)
	rank, rn, err := runio.Varint(src[n:])
	if err != nil {
		return k, 0, fmt.Errorf("rankKey rank: %w", err)
	}
	k.Rank = rank
	return k, n + rn, nil
}

// Shared decoders (runio.SharedDecoder): snKey's strings alias src.

func (snKeyCodec) NewSharedDecoder() func(string) (snKey, int, error) {
	return func(src string) (snKey, int, error) {
		var k snKey
		r, n, err := runio.VarintString(src)
		if err != nil {
			return k, 0, fmt.Errorf("snKey range: %w", err)
		}
		k.Range = int(r)
		s, sn_, err := runio.SharedString(src[n:])
		if err != nil {
			return k, 0, fmt.Errorf("snKey key: %w", err)
		}
		n += sn_
		k.Key = s
		id, idn, err := runio.SharedString(src[n:])
		if err != nil {
			return k, 0, fmt.Errorf("snKey id: %w", err)
		}
		k.ID = id
		return k, n + idn, nil
	}
}

func (rankKeyCodec) NewSharedDecoder() func(string) (rankKey, int, error) {
	return func(src string) (rankKey, int, error) {
		var k rankKey
		r, n, err := runio.VarintString(src)
		if err != nil {
			return k, 0, fmt.Errorf("rankKey range: %w", err)
		}
		k.Range = int(r)
		rank, rn, err := runio.VarintString(src[n:])
		if err != nil {
			return k, 0, fmt.Errorf("rankKey rank: %w", err)
		}
		k.Rank = rank
		return k, n + rn, nil
	}
}

func init() {
	runio.Register[snKey](snKeyCodec{})
	runio.Register[rankKey](rankKeyCodec{})
}
