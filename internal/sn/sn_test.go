package sn

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
)

func identityKey(v string) string { return v }

func mk(id, key string) entity.Entity { return entity.New(id, "k", key) }

func alwaysMatch(pairs *map[core.MatchPair]int, mu *sync.Mutex) core.Matcher {
	return func(a, b entity.Entity) (float64, bool) {
		mu.Lock()
		(*pairs)[core.NewMatchPair(a.ID, b.ID)]++
		mu.Unlock()
		return 1, true
	}
}

func TestSerialWindow(t *testing.T) {
	es := []entity.Entity{mk("a", "1"), mk("b", "2"), mk("c", "3"), mk("d", "4")}
	pairs, comps := Serial(es, "k", identityKey, 2, func(entity.Entity, entity.Entity) (float64, bool) { return 1, true })
	// w=2: adjacent pairs only: (a,b),(b,c),(c,d).
	if comps != 3 || len(pairs) != 3 {
		t.Fatalf("w=2: comps=%d pairs=%d, want 3/3", comps, len(pairs))
	}
	_, comps = Serial(es, "k", identityKey, 3, nil)
	// w=3: 3 + 2 = 5 pairs.
	if comps != 5 {
		t.Fatalf("w=3: comps=%d, want 5", comps)
	}
	_, comps = Serial(es, "k", identityKey, 10, nil)
	// w >= n: complete graph = 6 pairs.
	if comps != 6 {
		t.Fatalf("w=10: comps=%d, want 6", comps)
	}
}

func TestRunMatchesSerialSmall(t *testing.T) {
	es := []entity.Entity{
		mk("e1", "apple"), mk("e2", "apply"), mk("e3", "banana"),
		mk("e4", "band"), mk("e5", "bandit"), mk("e6", "candy"),
		mk("e7", "canon"), mk("e8", "zebra"),
	}
	for _, w := range []int{2, 3, 5} {
		for _, r := range []int{1, 2, 3, 4, 8} {
			want, wantComps := Serial(es, "k", identityKey, w, func(entity.Entity, entity.Entity) (float64, bool) { return 1, true })
			res, err := Run(entity.SplitRoundRobin(es, 2), Config{
				Attr: "k", Key: identityKey, Window: w, R: r,
				Matcher: func(entity.Entity, entity.Entity) (float64, bool) { return 1, true },
			})
			if err != nil {
				t.Fatalf("w=%d r=%d: %v", w, r, err)
			}
			if !reflect.DeepEqual(res.Matches, want) {
				t.Errorf("w=%d r=%d: matches = %v, want %v", w, r, res.Matches, want)
			}
			if res.Comparisons != wantComps {
				t.Errorf("w=%d r=%d: comparisons = %d, want %d", w, r, res.Comparisons, wantComps)
			}
		}
	}
}

// TestRunMatchesSerialFuzz: random keys (with duplicates), windows, and
// task counts — MR SN must equal serial SN exactly, including each pair
// being compared exactly once.
func TestRunMatchesSerialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(120) + 2
		es := make([]entity.Entity, n)
		for i := range es {
			es[i] = mk(fmt.Sprintf("e%03d", i), fmt.Sprintf("k%02d", rng.Intn(20)))
		}
		w := rng.Intn(8) + 2
		r := rng.Intn(9) + 1
		m := rng.Intn(4) + 1

		var mu sync.Mutex
		got := make(map[core.MatchPair]int)
		res, err := Run(entity.SplitRoundRobin(es, m), Config{
			Attr: "k", Key: identityKey, Window: w, R: r,
			Matcher: alwaysMatch(&got, &mu),
		})
		if err != nil {
			t.Fatalf("trial %d (w=%d r=%d): %v", trial, w, r, err)
		}
		want, wantComps := Serial(es, "k", identityKey, w, func(entity.Entity, entity.Entity) (float64, bool) { return 1, true })
		if !reflect.DeepEqual(res.Matches, nonNil(want)) && !reflect.DeepEqual(nonNil(res.Matches), nonNil(want)) {
			t.Fatalf("trial %d (n=%d w=%d r=%d m=%d): %d matches, want %d",
				trial, n, w, r, m, len(res.Matches), len(want))
		}
		if res.Comparisons != wantComps {
			t.Fatalf("trial %d (n=%d w=%d r=%d): comparisons = %d, want %d",
				trial, n, w, r, res.Comparisons, wantComps)
		}
		for p, c := range got {
			if c != 1 {
				t.Fatalf("trial %d: pair %v compared %d times", trial, p, c)
			}
		}
	}
}

func nonNil(ps []core.MatchPair) []core.MatchPair {
	if ps == nil {
		return []core.MatchPair{}
	}
	return ps
}

// TestSkewRobustness: unlike block-based Basic, SN's per-reduce-task
// comparisons stay balanced even when all entities share one key.
func TestSkewRobustness(t *testing.T) {
	es := make([]entity.Entity, 200)
	for i := range es {
		es[i] = mk(fmt.Sprintf("e%03d", i), "same")
	}
	res, err := Run(entity.SplitRoundRobin(es, 4), Config{
		Attr: "k", Key: identityKey, Window: 5, R: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every entity joins at most 4 windows: comparisons ≈ 4n, never n².
	if res.Comparisons >= int64(len(es)*(len(es)-1)/2/4) {
		t.Errorf("SN performed %d comparisons — quadratic blow-up", res.Comparisons)
	}
	want, _ := Serial(es, "k", identityKey, 5, nil)
	_ = want
}

func TestRangeBounds(t *testing.T) {
	counts := map[string]int{"a": 5, "b": 5, "c": 5, "d": 5}
	bounds := rangeBounds([]string{"a", "b", "c", "d"}, counts, 20, 4)
	if !reflect.DeepEqual(bounds, []string{"b", "c", "d"}) {
		t.Errorf("bounds = %v", bounds)
	}
	if got := rangeOf("a", bounds); got != 0 {
		t.Errorf("rangeOf(a) = %d", got)
	}
	if got := rangeOf("b", bounds); got != 1 {
		t.Errorf("rangeOf(b) = %d", got)
	}
	if got := rangeOf("bb", bounds); got != 1 {
		t.Errorf("rangeOf(bb) = %d", got)
	}
	if got := rangeOf("z", bounds); got != 3 {
		t.Errorf("rangeOf(z) = %d", got)
	}
	// r=1: no bounds.
	if b := rangeBounds([]string{"a"}, map[string]int{"a": 1}, 1, 1); b != nil {
		t.Errorf("r=1 bounds = %v", b)
	}
}

func TestRunValidation(t *testing.T) {
	parts := entity.Partitions{{mk("a", "x")}}
	if _, err := Run(parts, Config{Attr: "k", Window: 3, R: 2}); err == nil {
		t.Error("nil Key: want error")
	}
	if _, err := Run(parts, Config{Attr: "k", Key: identityKey, Window: 1, R: 2}); err == nil {
		t.Error("window < 2: want error")
	}
	if _, err := Run(parts, Config{Attr: "k", Key: identityKey, Window: 3, R: 0}); err == nil {
		t.Error("r = 0: want error")
	}
}

func TestRunSingleEntity(t *testing.T) {
	res, err := Run(entity.Partitions{{mk("only", "x")}}, Config{
		Attr: "k", Key: identityKey, Window: 3, R: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparisons != 0 || len(res.Matches) != 0 {
		t.Errorf("single entity: comparisons=%d matches=%d", res.Comparisons, len(res.Matches))
	}
}

func TestRunParallelEngineDeterminism(t *testing.T) {
	es := make([]entity.Entity, 60)
	for i := range es {
		es[i] = mk(fmt.Sprintf("e%03d", i), fmt.Sprintf("k%d", i%7))
	}
	var base *Result
	for trial := 0; trial < 5; trial++ {
		res, err := Run(entity.SplitRoundRobin(es, 3), Config{
			Attr: "k", Key: identityKey, Window: 4, R: 5,
			Matcher:    func(a, b entity.Entity) (float64, bool) { return 1, a.ID[1] == b.ID[1] },
			RunOptions: er.RunOptions{Engine: &mapreduce.Engine{Parallelism: 4}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Matches, base.Matches) || res.Comparisons != base.Comparisons {
			t.Fatal("parallel execution is not deterministic")
		}
	}
}
