package sn

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
)

// Rank-partitioned Sorted Neighborhood.
//
// The plain range partitioner cuts the key space on key-group
// boundaries, so a dominant sorting key (the skewed case) lands entirely
// on one reduce task: total work stays window-bounded but its
// distribution degrades (see the SNRobustness experiment). The fix is
// the paper's BDM idea transplanted to SN: a distribution job counts
// entities per (sorting key, input partition); with those counts every
// map task can compute each entity's *global rank* in the canonical
// total order (key, partition index, arrival index) locally, exactly
// like PairRange computes entity indexes. Ranks are then range-
// partitioned directly — ⌈n/r⌉ consecutive ranks per reduce task —
// giving near-perfect balance regardless of key skew. Windows crossing
// the cut are handled by the same fringe-stitching as the key-based
// variant.

// rankKey is the composite map-output key: range ‖ global rank.
type rankKey struct {
	Range int
	Rank  int64
}

func compareRankKeys(a, b rankKey) int {
	if c := mapreduce.CompareInts(a.Range, b.Range); c != 0 {
		return c
	}
	return mapreduce.CompareInt64s(a.Rank, b.Rank)
}

func groupRankKeys(a, b rankKey) int {
	return mapreduce.CompareInts(a.Range, b.Range)
}

// rankKeyCoding is exact: the range fills the high word (GroupBits 64),
// the non-negative global rank the low word.
var rankKeyCoding = mapreduce.KeyCoding[rankKey]{
	Encode: func(k rankKey) mapreduce.Code {
		return mapreduce.Code{Hi: uint64(k.Range), Lo: uint64(k.Rank)}
	},
	Exact:     true,
	GroupBits: 64,
}

// rankDistribution holds what the distribution job provides to the map
// phase: for every sorting key, the global rank of its first entity and
// the per-partition offsets within the key group.
type rankDistribution struct {
	keyStart  map[string]int64 // key -> global rank of the key group's first entity
	partBase  map[string][]int64
	total     int64
	perRange  int64 // ⌈n/r⌉
	numRanges int
}

// buildRankDistribution computes the canonical-order ranks from per-
// (key, partition) counts — the SN analogue of reading the BDM during
// map initialization.
func buildRankDistribution(parts entity.Partitions, attr string, key KeyFunc, r int) *rankDistribution {
	m := len(parts)
	counts := make(map[string][]int64)
	for p, part := range parts {
		for _, e := range part {
			k := key(e.Attr(attr))
			if counts[k] == nil {
				counts[k] = make([]int64, m)
			}
			counts[k][p]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	d := &rankDistribution{
		keyStart:  make(map[string]int64, len(keys)),
		partBase:  make(map[string][]int64, len(keys)),
		numRanges: r,
	}
	var rank int64
	for _, k := range keys {
		d.keyStart[k] = rank
		bases := make([]int64, m)
		var within int64
		for p := 0; p < m; p++ {
			bases[p] = within
			within += counts[k][p]
		}
		d.partBase[k] = bases
		rank += within
	}
	d.total = rank
	d.perRange = 1
	if d.total > 0 {
		d.perRange = (d.total + int64(r) - 1) / int64(r)
	}
	return d
}

func (d *rankDistribution) rangeOfRank(rank int64) int {
	return int(rank / d.perRange)
}

// RunRanked executes sorted neighborhood with rank partitioning — the
// pre-context adapter over RunRankedPipeline.
func RunRanked(parts entity.Partitions, cfg Config) (*Result, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return RunRankedPipeline(context.Background(), er.FromPartitions(parts), cfg)
}

// RunRankedPipeline executes sorted neighborhood with rank partitioning
// over the source's partitions. The canonical total order is (sorting
// key, partition index, arrival index); SerialRanked is the matching
// reference. Cancellation and sink semantics match RunPipeline.
func RunRankedPipeline(ctx context.Context, src er.Source, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts, err := src.Partitions()
	if err != nil {
		return nil, err
	}
	dist := buildRankDistribution(parts, cfg.Attr, cfg.Key, cfg.R)

	job := &mapreduce.Job[entity.Entity, rankKey, entity.Entity, snOut]{
		Name:           "sorted-neighborhood-ranked",
		NumReduceTasks: cfg.R,
		NewMapper: func() mapreduce.Mapper[entity.Entity, rankKey, entity.Entity] {
			return &rankMapper{cfg: &cfg, dist: dist}
		},
		NewReducer: func() mapreduce.Reducer[rankKey, entity.Entity, snOut] {
			return newSNReducer[rankKey](&cfg)
		},
		Partition: func(key rankKey, r int) int { return key.Range % r },
		Compare:   compareRankKeys,
		Group:     groupRankKeys,
		Coding:    rankKeyCoding,
	}
	out := &Result{}
	if err := runSNMatching(ctx, job, partitionInput(parts), cfg, out); err != nil {
		return nil, fmt.Errorf("sn: ranked matching job: %w", err)
	}
	return out, nil
}

type rankMapper struct {
	cfg       *Config
	dist      *rankDistribution
	partition int
	// seen counts the entities of each key already processed in this
	// partition (arrival order — the third component of the canonical
	// total order).
	seen map[string]int64
}

func (m *rankMapper) Configure(_, _, partitionIndex int) {
	m.partition = partitionIndex
	m.seen = make(map[string]int64)
}

func (m *rankMapper) Map(ctx *mapreduce.MapContext[entity.Entity, rankKey, entity.Entity], e entity.Entity) {
	k := m.cfg.Key(e.Attr(m.cfg.Attr))
	rank := m.dist.keyStart[k] + m.dist.partBase[k][m.partition] + m.seen[k]
	m.seen[k]++
	ctx.Emit(rankKey{Range: m.dist.rangeOfRank(rank), Rank: rank}, e)
}

// SerialRanked is the reference for RunRanked: entities ordered by
// (key, partition index, arrival index), windowed comparison.
func SerialRanked(parts entity.Partitions, attr string, key KeyFunc, window int, match core.Matcher) ([]core.MatchPair, int64) {
	type keyed struct {
		k    string
		part int
		seq  int
		e    entity.Entity
	}
	var ks []keyed
	for p, part := range parts {
		for seq, e := range part {
			ks = append(ks, keyed{k: key(e.Attr(attr)), part: p, seq: seq, e: e})
		}
	}
	slices.SortStableFunc(ks, func(a, b keyed) int {
		if c := strings.Compare(a.k, b.k); c != 0 {
			return c
		}
		if c := a.part - b.part; c != 0 {
			return c
		}
		return a.seq - b.seq
	})
	var pairs []core.MatchPair
	var comparisons int64
	for i := range ks {
		lo := i - (window - 1)
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			comparisons++
			if match == nil {
				continue
			}
			if _, ok := match(ks[j].e, ks[i].e); ok {
				pairs = append(pairs, core.NewMatchPair(ks[j].e.ID, ks[i].e.ID))
			}
		}
	}
	er.SortMatches(pairs)
	return pairs, comparisons
}
