package sn

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
)

// Multi-pass Sorted Neighborhood — the actual subject of the cited CSRD
// 2011 paper — runs several SN passes with different sorting keys and
// unions their match results: a duplicate pair is found if it falls
// within the window of *any* pass. Each pass is an independent MR
// workflow; the driver deduplicates the union.

// Pass is one sorting pass.
type Pass struct {
	// Name identifies the pass in diagnostics.
	Name string
	// Attr is the attribute the sorting key is derived from.
	Attr string
	// Key derives the sorting key.
	Key KeyFunc
}

// MultiConfig configures a multi-pass SN run. Window, R, Matcher,
// PreparedMatcher, and the embedded RunOptions apply to every pass. A
// configured Sink receives each pass's raw match stream (a pair inside
// several passes' windows repeats, mirroring Comparisons counting it
// per pass); without a sink the union is deduplicated into Matches.
type MultiConfig struct {
	er.RunOptions

	Passes  []Pass
	Window  int
	R       int
	Matcher core.Matcher
	// PreparedMatcher, when non-nil, takes precedence over Matcher in
	// every pass; see Config.PreparedMatcher.
	PreparedMatcher core.PreparedMatcher
}

// MultiResult aggregates the passes.
type MultiResult struct {
	// Matches is the deduplicated union over all passes.
	Matches []core.MatchPair
	// Comparisons sums the window comparisons of all passes; a pair in
	// two passes' windows is compared twice (the inherent multi-pass
	// overhead; the paper's related-work section makes the same point
	// about signature-based approaches).
	Comparisons int64
	// PerPass exposes each pass's result in order.
	PerPass []*Result
}

// RunMultiPass executes all passes and unions the matches — the
// pre-context adapter over RunMultiPassPipeline.
func RunMultiPass(parts entity.Partitions, cfg MultiConfig) (*MultiResult, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return RunMultiPassPipeline(context.Background(), er.FromPartitions(parts), cfg)
}

// RunMultiPassPipeline executes all passes over the source's partitions
// and unions the matches (or streams them; see MultiConfig).
func RunMultiPassPipeline(ctx context.Context, src er.Source, cfg MultiConfig) (*MultiResult, error) {
	if len(cfg.Passes) == 0 {
		return nil, fmt.Errorf("sn: RunMultiPass requires at least one pass")
	}
	parts, err := src.Partitions()
	if err != nil {
		return nil, err
	}
	out := &MultiResult{}
	seen := make(map[core.MatchPair]bool)
	for _, pass := range cfg.Passes {
		res, err := RunPipeline(ctx, er.FromPartitions(parts), Config{
			RunOptions:      cfg.RunOptions,
			Attr:            pass.Attr,
			Key:             pass.Key,
			Window:          cfg.Window,
			R:               cfg.R,
			Matcher:         cfg.Matcher,
			PreparedMatcher: cfg.PreparedMatcher,
		})
		if err != nil {
			return nil, fmt.Errorf("sn: pass %q: %w", pass.Name, err)
		}
		out.PerPass = append(out.PerPass, res)
		out.Comparisons += res.Comparisons
		for _, p := range res.Matches {
			if !seen[p] {
				seen[p] = true
				out.Matches = append(out.Matches, p)
			}
		}
	}
	er.SortMatches(out.Matches)
	return out, nil
}

// SerialMultiPass is the reference: the union of the serial SN results
// of every pass.
func SerialMultiPass(entities []entity.Entity, passes []Pass, window int, match core.Matcher) []core.MatchPair {
	seen := make(map[core.MatchPair]bool)
	var out []core.MatchPair
	for _, pass := range passes {
		pairs, _ := Serial(entities, pass.Attr, pass.Key, window, match)
		for _, p := range pairs {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	er.SortMatches(out)
	return out
}
