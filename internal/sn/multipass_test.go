package sn

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/entity"
)

func reverseKey(v string) string {
	r := []rune(v)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return string(r)
}

func multiPasses() []Pass {
	return []Pass{
		{Name: "forward", Attr: "k", Key: identityKey},
		{Name: "reverse", Attr: "k", Key: reverseKey},
	}
}

func TestRunMultiPassAgainstSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	match := func(a, b entity.Entity) (float64, bool) {
		// Match when the keys share a first or last letter.
		ka, kb := a.Attr("k"), b.Attr("k")
		return 1, ka[0] == kb[0] || ka[len(ka)-1] == kb[len(kb)-1]
	}
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(80) + 5
		es := make([]entity.Entity, n)
		for i := range es {
			es[i] = mk(fmt.Sprintf("e%03d", i), randWord(rng))
		}
		w := rng.Intn(5) + 2
		want := SerialMultiPass(es, multiPasses(), w, match)
		res, err := RunMultiPass(entity.SplitRoundRobin(es, rng.Intn(3)+1), MultiConfig{
			Passes:  multiPasses(),
			Window:  w,
			R:       rng.Intn(6) + 1,
			Matcher: match,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Matches) != len(want) || (len(want) > 0 && !reflect.DeepEqual(res.Matches, want)) {
			t.Fatalf("trial %d (n=%d w=%d): %d matches, want %d", trial, n, w, len(res.Matches), len(want))
		}
		if len(res.PerPass) != 2 {
			t.Fatalf("trial %d: %d per-pass results", trial, len(res.PerPass))
		}
		if res.Comparisons != res.PerPass[0].Comparisons+res.PerPass[1].Comparisons {
			t.Fatalf("trial %d: comparison accounting broken", trial)
		}
	}
}

func randWord(rng *rand.Rand) string {
	var b strings.Builder
	l := rng.Intn(6) + 2
	for i := 0; i < l; i++ {
		b.WriteByte(byte('a' + rng.Intn(5)))
	}
	return b.String()
}

func TestRunMultiPassRecoversCrossPassDuplicates(t *testing.T) {
	// "abc*" and "*abc" sort far apart forward but adjacent reversed.
	es := []entity.Entity{
		mk("a", "abcx"), mk("b", "zzzx"), // share suffix 'x' reversed
		mk("c", "mmmm"), mk("d", "nnnn"),
	}
	match := func(x, y entity.Entity) (float64, bool) {
		kx, ky := x.Attr("k"), y.Attr("k")
		return 1, kx[len(kx)-1] == ky[len(ky)-1]
	}
	forwardOnly, err := Run(entity.SplitRoundRobin(es, 1), Config{
		Attr: "k", Key: identityKey, Window: 2, R: 2, Matcher: match,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMultiPass(entity.SplitRoundRobin(es, 1), MultiConfig{
		Passes: multiPasses(), Window: 2, R: 2, Matcher: match,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Matches) <= len(forwardOnly.Matches) {
		t.Errorf("multi-pass found %d matches, single pass %d — expected a gain",
			len(multi.Matches), len(forwardOnly.Matches))
	}
}

func TestRunMultiPassValidation(t *testing.T) {
	if _, err := RunMultiPass(entity.Partitions{{mk("a", "x")}}, MultiConfig{Window: 3, R: 2}); err == nil {
		t.Error("no passes: want error")
	}
}
