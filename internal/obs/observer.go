package obs

import (
	"log/slog"
	"os"
)

// Observer bundles the three observability facilities a run threads
// through the engine and the distributed runtime. A nil *Observer
// means "observability off": every call site guards on one nil check
// and the disabled path records, counts, and logs nothing.
type Observer struct {
	Tracer *Tracer
	Reg    *Registry
	Log    *slog.Logger
	// Engine holds the preallocated engine metric handles so hot paths
	// never consult the registry maps.
	Engine *EngineMetrics
}

// Options configures New.
type Options struct {
	// TraceCapacity is the event-buffer size (DefaultTraceCapacity if
	// zero or negative). Once full, new events are dropped and counted.
	TraceCapacity int
	// Log replaces the default logger (stderr text handler at Warn —
	// quiet by default). Use Quiet() in tests.
	Log *slog.Logger
}

// New builds a fully wired Observer: tracer, registry with the engine
// metrics preallocated, and a quiet-by-default structured logger.
func New(opts Options) *Observer {
	reg := NewRegistry()
	o := &Observer{
		Tracer: NewTracer(opts.TraceCapacity),
		Reg:    reg,
		Log:    opts.Log,
		Engine: newEngineMetrics(reg),
	}
	if o.Log == nil {
		o.Log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	return o
}

// Logger returns the observer's logger, falling back to slog's default
// when the observer (or its logger) is nil — so un-instrumented runs
// keep their warnings.
func (o *Observer) Logger() *slog.Logger {
	if o != nil && o.Log != nil {
		return o.Log
	}
	return slog.Default()
}

// Quiet returns a logger that discards everything (tests, benchmarks).
func Quiet() *slog.Logger { return slog.New(slog.DiscardHandler) }
