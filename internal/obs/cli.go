package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
)

// CLI is the observability command-line surface shared by the er
// commands (ermatch, erbench, erworker, bdmtool): trace capture,
// the live introspection server, and the structured-log threshold.
// Register the flags, then call Start once flags are parsed and Finish
// on the way out.
type CLI struct {
	TracePath   string
	TraceFormat string
	Addr        string
	PProf       bool
	LogLevel    string

	obs    *Observer
	closer func()
}

// RegisterFlags installs the shared flags on fs (typically
// flag.CommandLine).
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.TracePath, "trace", "", "write the run's task timeline to this file on exit (see -trace-format)")
	fs.StringVar(&c.TraceFormat, "trace-format", "chrome", "trace export format: chrome (trace_event JSON, Perfetto-loadable) or ndjson")
	fs.StringVar(&c.Addr, "obs-addr", "", "serve /debug/vars and /status on this address while running (e.g. 127.0.0.1:6060)")
	fs.BoolVar(&c.PProf, "pprof", false, "with -obs-addr: also mount the net/http/pprof handlers")
	fs.StringVar(&c.LogLevel, "log-level", "warn", "structured log threshold: debug, info, warn, or error")
}

// Enabled reports whether any tracing/metrics surface was requested.
// Logging level applies regardless.
func (c *CLI) Enabled() bool { return c.TracePath != "" || c.Addr != "" }

// ParseLevel maps the -log-level strings to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// Start materializes the flags: it installs the leveled stderr logger
// as the process default (the engine and dist runtime resolve to
// slog.Default when not configured explicitly), builds the Observer
// when tracing or the introspection server was requested (nil
// otherwise — hot paths stay on the zero-overhead disabled branch),
// and binds the -obs-addr listener. status feeds /status and may be
// nil.
func (c *CLI) Start(status func() any) (*Observer, error) {
	lvl, err := ParseLevel(c.LogLevel)
	if err != nil {
		return nil, err
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(log)
	if !c.Enabled() {
		return nil, nil
	}
	if c.TraceFormat != "chrome" && c.TraceFormat != "ndjson" {
		return nil, fmt.Errorf("unknown -trace-format %q (want chrome or ndjson)", c.TraceFormat)
	}
	c.obs = New(Options{Log: log})
	if c.Addr != "" {
		url, closer, err := Serve(c.Addr, c.obs, status, c.PProf)
		if err != nil {
			return nil, err
		}
		c.closer = closer
		fmt.Fprintf(os.Stderr, "obs: serving /debug/vars at %s\n", url)
	}
	return c.obs, nil
}

// Finish writes the -trace file (atomically: temp file renamed over
// the target on success) and stops the introspection server. Safe to
// call when Start returned a nil Observer.
func (c *CLI) Finish() error {
	if c.closer != nil {
		c.closer()
		c.closer = nil
	}
	if c.obs == nil || c.TracePath == "" {
		return nil
	}
	f, err := os.CreateTemp(filepath.Dir(c.TracePath), "."+filepath.Base(c.TracePath)+".tmp-*")
	if err != nil {
		return err
	}
	switch c.TraceFormat {
	case "ndjson":
		err = WriteNDJSON(f, c.obs.Tracer)
	default:
		err = WriteChromeTrace(f, c.obs.Tracer)
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), c.TracePath); err != nil {
		os.Remove(f.Name())
		return err
	}
	if n := c.obs.Tracer.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "obs: trace ring overflowed; %d events dropped (raise the capacity)\n", n)
	}
	return nil
}
