package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// LogfLogger adapts a printf-style sink — typically testing.T.Logf —
// into a *slog.Logger, so tests can route the runtime's structured
// logs through the test log (and have them silenced on pass).
func LogfLogger(level slog.Level, f func(format string, args ...any)) *slog.Logger {
	return slog.New(&logfHandler{level: level, f: f})
}

// logfHandler renders records as "LEVEL msg k=v k=v" lines. It exists
// for test plumbing, not production formatting: groups flatten into
// dotted prefixes and values print with %v.
type logfHandler struct {
	level  slog.Level
	f      func(format string, args ...any)
	prefix string
	attrs  []slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.level }

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		writeAttr(&b, h.prefix, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, h.prefix, a)
		return true
	})
	h.f("%s", b.String())
	return nil
}

func writeAttr(b *strings.Builder, prefix string, a slog.Attr) {
	if a.Value.Kind() == slog.KindGroup {
		for _, ga := range a.Value.Group() {
			writeAttr(b, prefix+a.Key+".", ga)
		}
		return
	}
	fmt.Fprintf(b, " %s%s=%v", prefix, a.Key, a.Value.Any())
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := *h
	n.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &n
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	n := *h
	n.prefix = h.prefix + name + "."
	return &n
}
