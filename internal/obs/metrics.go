package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64. The zero value
// is ready to use; all methods are nil-safe so instrumented code can
// carry a nil *Counter when observability is off.
type Counter struct{ v atomic.Int64 }

func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

func (c *Counter) Inc() { c.Add(1) }

func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic int64 that can move both ways (queue depths,
// in-flight attempts). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per bit position: bucket i counts values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Power-of-two
// buckets over the full int64 range mean no configuration and no
// branches beyond one bits.Len64; exact Sum/Count/Min/Max ride
// alongside, so derived views (mean, max/mean imbalance) lose nothing
// to bucketing.
const histBuckets = 65

// Histogram is a lock-free histogram with exact count, sum, min, and
// max. Observe is a handful of atomic adds plus two CAS loops that
// almost always exit on the first load. Nil-safe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 until the first observation
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns a ready histogram (min primed to MaxInt64).
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value. Negative values are clamped to 0 for
// bucketing but kept exact in sum/min/max.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	u := v
	if u < 0 {
		u = 0
	}
	h.buckets[bits.Len64(uint64(u))].Add(1)
}

// HistSnapshot is a consistent-enough point-in-time copy (individual
// fields are atomic; cross-field skew is bounded by in-flight Observes).
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot returns the current totals; an empty histogram reports all
// zeros.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	return s
}

// MaxOverMean is the paper's load-imbalance measure: the slowest
// task's time over the mean task time. 0 for an empty histogram.
func (s HistSnapshot) MaxOverMean() float64 {
	if s.Count == 0 || s.Mean == 0 {
		return 0
	}
	return float64(s.Max) / s.Mean
}

// Registry is a named metric store. Get-or-create happens at engine or
// server setup under a mutex; hot paths hold the returned pointers and
// never touch the maps again.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil registry returns a nil (still usable) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot renders every metric into a JSON-encodable map: counters
// and gauges as int64, histograms as HistSnapshot objects.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the sorted metric names (tests, debug output).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EngineMetrics holds direct pointers to the engine's metrics so the
// supervisor and dataflows never do a map lookup: the registry resolves
// each name exactly once, in newEngineMetrics at Observer construction.
//
// Naming scheme: dot-separated, lowercase, snake-cased leaves;
// "engine." prefix for supervisor/dataflow metrics, "dist.master." /
// "dist.worker." for the distributed runtime, "_total" suffix on
// counters, "_ns" / "_bytes" unit suffixes.
type EngineMetrics struct {
	Attempts     *Counter // engine.attempts_total
	Retries      *Counter // engine.retries_total
	SpecLaunched *Counter // engine.speculative_launched_total
	SpecWon      *Counter // engine.speculative_won_total
	Commits      *Counter // engine.tasks_committed_total
	Degraded     *Counter // engine.remote_degradations_total

	Inflight     *Gauge // engine.attempts_inflight
	TasksPending *Gauge // engine.tasks_pending (queue depth per running phase)

	SpillRuns         *Counter // engine.spill_runs_total
	SpillBytesWritten *Counter // engine.spill_bytes_written_total
	SpillBytesRead    *Counter // engine.spill_bytes_read_total

	MapTaskNS    *Histogram // engine.map_task_ns
	ReduceTaskNS *Histogram // engine.reduce_task_ns
}

func newEngineMetrics(r *Registry) *EngineMetrics {
	return &EngineMetrics{
		Attempts:          r.Counter("engine.attempts_total"),
		Retries:           r.Counter("engine.retries_total"),
		SpecLaunched:      r.Counter("engine.speculative_launched_total"),
		SpecWon:           r.Counter("engine.speculative_won_total"),
		Commits:           r.Counter("engine.tasks_committed_total"),
		Degraded:          r.Counter("engine.remote_degradations_total"),
		Inflight:          r.Gauge("engine.attempts_inflight"),
		TasksPending:      r.Gauge("engine.tasks_pending"),
		SpillRuns:         r.Counter("engine.spill_runs_total"),
		SpillBytesWritten: r.Counter("engine.spill_bytes_written_total"),
		SpillBytesRead:    r.Counter("engine.spill_bytes_read_total"),
		MapTaskNS:         r.Histogram("engine.map_task_ns"),
		ReduceTaskNS:      r.Histogram("engine.reduce_task_ns"),
	}
}
