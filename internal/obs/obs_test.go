package obs

// Unit tests for the observability primitives themselves: ring claim
// and drop-newest overflow, interning, histogram exactness, registry
// identity, both exporters' output validity, and the slog adapters.
// The engine-level invariants (span pairing, nesting, reconciliation
// with Metrics) live in the mapreduce and er test suites.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"testing"
)

func TestTracerRecordsAndDropsNewest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Event{Kind: KTask, Task: int32(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if got := tr.Cap(); got != 4 {
		t.Fatalf("Cap = %d, want 4", got)
	}
	// Drop-newest keeps the contiguous prefix: tasks 0..3, in order.
	for i, ev := range tr.Events() {
		if ev.Task != int32(i) {
			t.Fatalf("event %d: Task = %d, want %d (prefix must be contiguous)", i, ev.Task, i)
		}
	}
	// Timestamps are monotone non-decreasing in claim order.
	events := tr.Events()
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("timestamps not monotone: event %d at %d after %d", i, events[i].TS, events[i-1].TS)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{}) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Cap() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must report an empty buffer")
	}
	if tr.InternJob("x") != 0 || tr.JobName(0) != "" {
		t.Fatal("nil tracer interning must be inert")
	}
}

func TestInternJobStableIDs(t *testing.T) {
	tr := NewTracer(8)
	a := tr.InternJob("bdm")
	b := tr.InternJob("match")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("ids must be distinct and nonzero: %d, %d", a, b)
	}
	if tr.InternJob("bdm") != a {
		t.Fatal("re-interning must return the same id")
	}
	if tr.JobName(a) != "bdm" || tr.JobName(b) != "match" {
		t.Fatal("JobName must round-trip")
	}
	if tr.JobName(99) != "" {
		t.Fatal("unknown id must resolve to empty")
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 160 || s.Min != 10 || s.Max != 100 {
		t.Fatalf("snapshot = %+v, want count=4 sum=160 min=10 max=100", s)
	}
	if s.Mean != 40 {
		t.Fatalf("Mean = %g, want 40", s.Mean)
	}
	if got := s.MaxOverMean(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("MaxOverMean = %g, want 2.5", got)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if s := nilH.Snapshot(); s != (HistSnapshot{}) {
		t.Fatalf("nil histogram snapshot = %+v, want zero", s)
	}
	if s := NewHistogram().Snapshot(); s != (HistSnapshot{}) {
		t.Fatalf("empty histogram snapshot = %+v, want zero (min must not leak MaxInt64)", s)
	}
	if (HistSnapshot{}).MaxOverMean() != 0 {
		t.Fatal("empty MaxOverMean must be 0")
	}
}

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b_total")
	if r.Counter("a.b_total") != c {
		t.Fatal("same name must return the same counter")
	}
	c.Add(3)
	r.Gauge("a.g").Set(-2)
	r.Histogram("a.h_ns").Observe(7)
	snap := r.Snapshot()
	if snap["a.b_total"] != int64(3) {
		t.Fatalf("counter snapshot = %v", snap["a.b_total"])
	}
	if snap["a.g"] != int64(-2) {
		t.Fatalf("gauge snapshot = %v", snap["a.g"])
	}
	if hs, ok := snap["a.h_ns"].(HistSnapshot); !ok || hs.Count != 1 {
		t.Fatalf("hist snapshot = %#v", snap["a.h_ns"])
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a.b_total" || names[1] != "a.g" || names[2] != "a.h_ns" {
		t.Fatalf("Names = %v", names)
	}
}

func TestNilRegistryYieldsUsableNilHandles(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("y"), r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	g.Add(1)
	h.Observe(1) // none may panic
	if len(r.Snapshot()) != 0 || r.Names() != nil {
		t.Fatal("nil registry must snapshot empty")
	}
}

func TestWriteNDJSONIsValidAndComplete(t *testing.T) {
	tr := NewTracer(16)
	job := tr.InternJob("wordcount")
	tr.Record(Event{Type: EvBegin, Kind: KTask, Phase: PhaseMap, Job: job, Task: 2, Attempt: 0})
	tr.Record(Event{Type: EvEnd, Kind: KTask, Phase: PhaseMap, Job: job, Task: 2, Attempt: 0, Arg: 1})
	tr.Record(Event{Type: EvInstant, Kind: KRetry, Phase: PhaseReduce, Job: job, Task: 1, Arg: 55})
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 { // 3 events + meta
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if lines[0]["type"] != "begin" || lines[0]["kind"] != "task" || lines[0]["job"] != "wordcount" || lines[0]["phase"] != "map" {
		t.Fatalf("first line = %v", lines[0])
	}
	if lines[2]["kind"] != "retry" || lines[2]["arg"] != float64(55) {
		t.Fatalf("instant line = %v", lines[2])
	}
	meta := lines[3]
	if meta["meta"] != "trace" || meta["events"] != float64(3) || meta["dropped"] != float64(0) {
		t.Fatalf("meta line = %v", meta)
	}
}

// chromeDoc mirrors the exporter's wrapper for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int32          `json:"pid"`
		Tid  int32          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTracePairsSpans(t *testing.T) {
	tr := NewTracer(16)
	job := tr.InternJob("wc")
	tr.Record(Event{Type: EvBegin, Kind: KTask, Phase: PhaseMap, Job: job, Task: 0})
	tr.Record(Event{Type: EvEnd, Kind: KTask, Phase: PhaseMap, Job: job, Task: 0})
	tr.Record(Event{Type: EvInstant, Kind: KCommit, Phase: PhaseMap, Job: job, Task: 0})
	tr.Record(Event{Type: EvBegin, Kind: KDispatch, Phase: PhaseReduce, Job: job, Task: 1, Worker: 3})
	// Dispatch to worker 3 left unclosed: must surface as an instant.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var xs, is, metas int
	var sawWorkerLane, sawUnclosed bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Dur < 0 {
				t.Fatalf("negative duration: %+v", ev)
			}
		case "i":
			is++
			if strings.Contains(ev.Name, "unclosed") {
				sawUnclosed = true
			}
		case "M":
			metas++
			if ev.Pid == 3 && ev.Args["name"] == "worker 3" {
				sawWorkerLane = true
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xs != 1 {
		t.Fatalf("complete events = %d, want 1", xs)
	}
	if is != 2 { // the commit instant + the unclosed dispatch
		t.Fatalf("instants = %d, want 2", is)
	}
	if metas != 2 { // pid 0 (driver) and pid 3 (worker 3)
		t.Fatalf("process metadata = %d, want 2", metas)
	}
	if !sawUnclosed {
		t.Fatal("unclosed begin must be emitted as a labeled instant")
	}
	if !sawWorkerLane {
		t.Fatal("worker pid must get a 'worker N' process_name")
	}
}

func TestLogfLoggerRendersAttrs(t *testing.T) {
	var got []string
	log := LogfLogger(slog.LevelInfo, func(format string, args ...any) {
		got = append(got, strings.TrimSpace(fmt.Sprintf(format, args...)))
	})
	log.Debug("hidden") // below threshold
	log.Warn("worker died", "worker", 3, "why", "lease expired")
	log.WithGroup("dist").Info("hello", "n", 1)
	if len(got) != 2 {
		t.Fatalf("got %d lines: %v", len(got), got)
	}
	if !strings.Contains(got[0], "WARN") || !strings.Contains(got[0], "worker died") ||
		!strings.Contains(got[0], "worker=3") || !strings.Contains(got[0], "why=lease expired") {
		t.Fatalf("warn line = %q", got[0])
	}
	if !strings.Contains(got[1], "dist.n=1") {
		t.Fatalf("group attrs must flatten to dotted keys: %q", got[1])
	}
}

func TestObserverDefaultsAndQuiet(t *testing.T) {
	o := New(Options{})
	if o.Tracer == nil || o.Reg == nil || o.Engine == nil || o.Log == nil {
		t.Fatal("New must wire every component")
	}
	if o.Tracer.Cap() != DefaultTraceCapacity {
		t.Fatalf("default capacity = %d", o.Tracer.Cap())
	}
	var nilObs *Observer
	if nilObs.Logger() == nil {
		t.Fatal("nil observer must resolve to the default logger")
	}
	q := Quiet()
	if q.Enabled(nil, slog.LevelError) {
		t.Fatal("Quiet logger must discard everything")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level must error")
	}
}
