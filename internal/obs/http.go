package obs

import (
	"encoding/json"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"time"
)

// VarsHandler serves the registry snapshot plus tracer statistics as a
// single JSON object — the /debug/vars-style endpoint. Reading is
// concurrency-safe (atomics plus the registry mutex), so it can be
// polled while a run is live.
func VarsHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"metrics": o.Reg.Snapshot(),
			"trace": map[string]any{
				"events":  o.Tracer.Len(),
				"dropped": o.Tracer.Dropped(),
				"cap":     o.Tracer.Cap(),
			},
		}
		writeJSON(w, body)
	})
}

// StatusHandler serves whatever the status callback assembles (worker
// tables, leases, reassignment history) as JSON.
func StatusHandler(status func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, status())
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Attach mounts the introspection endpoints on an existing mux (the
// dist master and workers share their task mux with these):
// /debug/vars, /status (when a status callback is given), and — only
// when opted in — the net/http/pprof handlers.
func Attach(mux *http.ServeMux, o *Observer, status func() any, pprof bool) {
	mux.Handle("/debug/vars", VarsHandler(o))
	if status != nil {
		mux.Handle("/status", StatusHandler(status))
	}
	if pprof {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
}

// Serve starts a standalone introspection server (the CLIs' -obs-addr)
// and returns its base URL and a closer. The listener is bound before
// returning so scripts can poll immediately.
func Serve(addr string, o *Observer, status func() any, pprof bool) (url string, closer func(), err error) {
	mux := http.NewServeMux()
	Attach(mux, o, status, pprof)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}
