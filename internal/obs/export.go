package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ndjsonEvent is the NDJSON wire form of one Event: symbolic names for
// enums, the interned job id resolved back to its string.
type ndjsonEvent struct {
	TS      int64  `json:"ts"`
	Type    string `json:"type"`
	Kind    string `json:"kind"`
	Job     string `json:"job,omitempty"`
	Phase   string `json:"phase,omitempty"`
	Task    int32  `json:"task"`
	Attempt int32  `json:"attempt"`
	Worker  int32  `json:"worker"`
	Arg     int64  `json:"arg,omitempty"`
}

var typeNames = [...]string{"begin", "end", "instant"}

// WriteNDJSON writes one JSON object per event, in record order, with
// a final meta line carrying buffer statistics. The format is the
// lossless export: every field of every event, nothing paired or
// inferred.
func WriteNDJSON(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		line := ndjsonEvent{
			TS:      ev.TS,
			Type:    typeNames[ev.Type],
			Kind:    ev.Kind.String(),
			Job:     t.JobName(ev.Job),
			Phase:   PhaseName(ev.Phase),
			Task:    ev.Task,
			Attempt: ev.Attempt,
			Worker:  ev.Worker,
			Arg:     ev.Arg,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	meta := struct {
		Meta    string `json:"meta"`
		Events  int    `json:"events"`
		Dropped int64  `json:"dropped"`
		Cap     int    `json:"cap"`
	}{"trace", t.Len(), t.Dropped(), t.Cap()}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event JSON array.
// Timestamps and durations are microseconds (float, so sub-µs spans
// survive). Only the fields Perfetto's importer reads are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // only on span/instant events
}

// spanKey identifies a Begin/End pair. Multiple live spans with the
// same key stack LIFO, which is the right match for re-entered spans
// of one logical scope (e.g. repeated shuffle fetches of one segment).
type spanKey struct {
	kind    Kind
	phase   uint8
	job     uint32
	task    int32
	attempt int32
	worker  int32
}

func keyOf(ev Event) spanKey {
	return spanKey{ev.Kind, ev.Phase, ev.Job, ev.Task, ev.Attempt, ev.Worker}
}

// chromeTid picks the thread lane inside a process (pid = worker).
// Tasks and everything scoped to a task share lane task+1, so a task's
// attempts, spills, merges, and fetches nest under its span; job- and
// phase-level spans (and process-level instants) live on lane 0. Map
// and reduce phases never overlap in time, so sharing lanes across
// phases is safe.
func chromeTid(ev Event) int32 {
	switch ev.Kind {
	case KJob, KPhase, KWorkerDeath, KReassign:
		return 0
	default:
		return ev.Task + 1
	}
}

// chromeName renders a human-readable span name.
func chromeName(t *Tracer, ev Event) string {
	switch ev.Kind {
	case KJob:
		return "job " + t.JobName(ev.Job)
	case KPhase:
		return PhaseName(ev.Phase) + " phase"
	case KTask:
		return fmt.Sprintf("%s task %d", PhaseName(ev.Phase), ev.Task)
	case KAttempt:
		return fmt.Sprintf("%s task %d attempt %d", PhaseName(ev.Phase), ev.Task, ev.Attempt)
	case KDispatch:
		return fmt.Sprintf("dispatch %s %d/%d", PhaseName(ev.Phase), ev.Task, ev.Attempt)
	case KSpill, KMerge, KShuffleFetch:
		return fmt.Sprintf("%s %s %d/%d", ev.Kind, PhaseName(ev.Phase), ev.Task, ev.Attempt)
	default:
		return ev.Kind.String()
	}
}

func chromeArgs(t *Tracer, ev Event) map[string]any {
	args := map[string]any{
		"task":    ev.Task,
		"attempt": ev.Attempt,
	}
	if name := t.JobName(ev.Job); name != "" {
		args["job"] = name
	}
	if ev.Arg != 0 {
		args["arg"] = ev.Arg
	}
	return args
}

// WriteChromeTrace writes the buffer as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in Perfetto and chrome://tracing.
//
// Begin/End pairs are matched offline and emitted as complete ("X")
// events, which tolerate the overlap a speculative backup attempt has
// with its primary — nested "B"/"E" stacks would not. The recording
// process is pid 0 ("driver"); master-side dispatch spans carry the
// target worker id as pid, which renders a distributed run as one
// swimlane per worker. Unclosed spans (crash, buffer truncation) are
// emitted as zero-duration instants so they stay visible.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events)+8)
	pids := map[int32]bool{}
	open := make(map[spanKey][]Event)
	for _, ev := range events {
		pids[ev.Worker] = true
		switch ev.Type {
		case EvBegin:
			k := keyOf(ev)
			open[k] = append(open[k], ev)
		case EvEnd:
			k := keyOf(ev)
			stack := open[k]
			if len(stack) == 0 {
				// End without a recorded Begin (dropped by the ring):
				// keep it visible as an instant.
				out = append(out, chromeEvent{
					Name: chromeName(t, ev) + " (unmatched end)", Ph: "i",
					TS: float64(ev.TS) / 1e3, Pid: ev.Worker, Tid: chromeTid(ev), S: "t",
				})
				continue
			}
			begin := stack[len(stack)-1]
			open[k] = stack[:len(stack)-1]
			out = append(out, chromeEvent{
				Name: chromeName(t, ev), Ph: "X",
				TS:  float64(begin.TS) / 1e3,
				Dur: float64(ev.TS-begin.TS) / 1e3,
				Pid: ev.Worker, Tid: chromeTid(ev),
				Args: chromeArgs(t, ev),
			})
		case EvInstant:
			out = append(out, chromeEvent{
				Name: chromeName(t, ev), Ph: "i",
				TS: float64(ev.TS) / 1e3, Pid: ev.Worker, Tid: chromeTid(ev), S: "t",
				Args: chromeArgs(t, ev),
			})
		}
	}
	for _, stack := range open {
		for _, begin := range stack {
			out = append(out, chromeEvent{
				Name: chromeName(t, begin) + " (unclosed)", Ph: "i",
				TS: float64(begin.TS) / 1e3, Pid: begin.Worker, Tid: chromeTid(begin), S: "t",
			})
		}
	}
	// Name the process lanes so Perfetto shows "driver" / "worker N"
	// instead of bare pids.
	for pid := range pids {
		name := "driver"
		if pid != 0 {
			name = fmt.Sprintf("worker %d", pid)
		}
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	wrapper := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(wrapper); err != nil {
		return err
	}
	return bw.Flush()
}
