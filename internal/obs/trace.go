// Package obs is the engine's observability layer: a fixed-capacity
// task-timeline tracer, an atomic metrics registry, structured logging,
// and HTTP introspection handlers. The whole layer is optional — every
// recording entry point (Tracer.Record, Counter.Add, Histogram.Observe,
// ...) is nil-safe, and engine code guards span construction behind a
// single nil check on the *Observer, so a run without an observer pays
// one pointer comparison per would-be event and allocates nothing.
//
// Design constraints, in order:
//
//  1. Recording must be allocation-free and lock-free: events are
//     fixed-size value structs written into a preallocated ring by an
//     atomic index claim; job names are interned to uint32 ids once per
//     run, outside the hot path.
//  2. Durations live here and only here. Task wall-clock times are
//     nondeterministic, so they must never leak into the engine's
//     TaskMetrics, which the differential tests compare byte-for-byte
//     across dataflows.
//  3. Export is offline: the buffer is read after the run (or from an
//     introspection endpoint) and rendered as NDJSON or Chrome
//     trace_event JSON; the recorder itself never formats anything.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventType distinguishes span boundaries from point events.
type EventType uint8

const (
	EvBegin   EventType = iota // span start
	EvEnd                      // span end
	EvInstant                  // point event
)

// Kind identifies what a span or instant describes. Span kinds (job
// through dispatch) appear as Begin/End pairs; the rest are instants.
type Kind uint8

const (
	KJob          Kind = iota // one engine run of a named job
	KPhase                    // the map or reduce phase of a job
	KTask                     // one task: all attempts plus retry backoff
	KAttempt                  // one attempt of a task
	KSpill                    // external dataflow: one sorted run written to disk
	KMerge                    // k-way merge feeding a reduce (or combine) pass
	KShuffleFetch             // one HTTP range read of remote map output
	KDispatch                 // master-side: one attempt posted to a worker
	KCommit                   // instant: a task's winning attempt committed
	KRetry                    // instant: attempt failed, retrying (Arg = backoff ns)
	KSpecLaunch               // instant: speculative backup attempt launched
	KSpecWin                  // instant: the backup attempt won the task
	KSpecCancel               // instant: losing speculative attempt cancelled
	KWorkerDeath              // instant: master declared a worker dead
	KReassign                 // instant: a dead worker's in-flight task freed for reassignment
	kindCount
)

var kindNames = [kindCount]string{
	"job", "phase", "task", "attempt", "spill", "merge", "shuffle-fetch",
	"dispatch", "commit", "retry", "spec-launch", "spec-win", "spec-cancel",
	"worker-death", "reassign",
}

// String returns the stable lowercase name used by both exporters.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Phase values carried by events. Zero means "not phase-scoped" so the
// Event zero value is safely phase-less; engine code maps its TaskKind
// (map=0, reduce=1) through PhaseOf.
const (
	PhaseNone   uint8 = 0
	PhaseMap    uint8 = 1
	PhaseReduce uint8 = 2
)

var phaseNames = [3]string{"", "map", "reduce"}

// PhaseName returns "", "map", or "reduce".
func PhaseName(p uint8) string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseOf converts the engine's 0-based task kind to an event phase.
func PhaseOf(kind int) uint8 { return uint8(kind) + 1 }

// Event is one fixed-size trace record. No pointers, no strings: the
// job name is an interned id (Tracer.InternJob) and everything else is
// scalar, so recording never allocates and the ring is a flat array.
//
// TS is assigned by Record (nanoseconds since the tracer started).
// Worker 0 is the recording process itself (driver, master, or a
// worker's own view); master-side dispatch events carry the target
// worker's id, which becomes the Perfetto process lane.
type Event struct {
	TS      int64
	Type    EventType
	Kind    Kind
	Phase   uint8
	Job     uint32
	Task    int32
	Attempt int32
	Worker  int32
	Arg     int64
}

// Tracer records events into a preallocated buffer. Writers claim
// slots with one atomic add; there is no wraparound — once the buffer
// fills, further events are dropped and counted (drop-newest). That
// policy keeps a contiguous, well-ordered prefix of the run: every
// recorded End still has its Begin, which the invariant tests and the
// Chrome exporter's span pairing rely on. Overwrite-oldest would be
// friendlier to long-lived servers but tears pairs apart and admits
// torn reads from concurrent writers; a bigger buffer is the answer
// for long runs (Cap/Dropped make truncation visible).
type Tracer struct {
	start   time.Time
	buf     []Event
	next    atomic.Int64
	dropped atomic.Int64

	mu   sync.Mutex
	jobs []string          // id -> name; jobs[0] = "" (unknown)
	ids  map[string]uint32 // name -> id
}

// DefaultTraceCapacity holds ~64k events (≈3 MB); a chaos-heavy
// distributed run of the smoke-test scale records a few thousand.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer with the given event capacity
// (DefaultTraceCapacity if n <= 0).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &Tracer{
		start: time.Now(),
		buf:   make([]Event, n),
		jobs:  []string{""},
		ids:   make(map[string]uint32),
	}
}

// Record stamps ev with the current time and appends it. Nil-safe,
// allocation-free, and wait-free apart from the clock read.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	if i >= int64(len(t.buf)) {
		t.dropped.Add(1)
		return
	}
	ev.TS = int64(time.Since(t.start))
	t.buf[i] = ev
}

// InternJob maps a job name to a stable id for use in Event.Job. Call
// once per run at setup, not per event: it takes a mutex.
func (t *Tracer) InternJob(name string) uint32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := uint32(len(t.jobs))
	t.jobs = append(t.jobs, name)
	t.ids[name] = id
	return id
}

// JobName resolves an interned id; unknown ids return "".
func (t *Tracer) JobName(id uint32) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < len(t.jobs) {
		return t.jobs[id]
	}
	return ""
}

// Events returns the recorded prefix in claim order (≈ chronological).
// Call after the run's goroutines have quiesced: the slice aliases the
// live buffer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	if n > int64(len(t.buf)) {
		n = int64(len(t.buf))
	}
	return t.buf[:n]
}

// Len reports how many events are in the buffer; Dropped how many were
// discarded after it filled; Cap its capacity.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if n := t.next.Load(); n < int64(len(t.buf)) {
		return int(n)
	}
	return len(t.buf)
}

func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}
