package runio

// Corruption and truncation table tests: every malformed run file must
// fail with a *CorruptError naming the file, the byte offset, and what
// the parser expected there — never a bare EOF or a silent short read —
// and must still satisfy errors.Is(err, ErrCorrupt).

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeCorruptibleRun builds a small valid 3-partition run (partition 1
// left empty) and returns its path and index.
func writeCorruptibleRun(t *testing.T) (string, *Info) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.run")
	w, err := Create(path, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range [][]byte{[]byte("alpha"), []byte("bravo-longer-record")} {
		if err := w.Append(0, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(2, []byte("charlie")); err != nil {
		t.Fatal(err)
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return path, info
}

// checkCorrupt asserts the full error contract of a failed read.
func checkCorrupt(t *testing.T, err error, path string) *CorruptError {
	t.Helper()
	if err == nil {
		t.Fatal("corrupted run read succeeded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not match ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not carry a *CorruptError", err)
	}
	if ce.Path != path {
		t.Fatalf("CorruptError.Path = %q, want %q", ce.Path, path)
	}
	if ce.Off < 0 {
		t.Fatalf("CorruptError.Off = %d, want a real offset", ce.Off)
	}
	if ce.What == "" {
		t.Fatal("CorruptError.What empty")
	}
	return ce
}

func TestReadInfoCorruptionTable(t *testing.T) {
	cases := []struct {
		name string
		// mutate damages a pristine copy of the run file's bytes.
		mutate func(b []byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"header magic flipped", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"wrong version", func(b []byte) []byte { b[4] = 99; return b }},
		{"bad code width", func(b []byte) []byte { b[5] = 7; return b }},
		{"implausible partition count", func(b []byte) []byte {
			// 5-byte uvarint claiming ~2^34 partitions in a tiny file.
			head := append([]byte{}, b[:6]...)
			return append(append(head, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), b[7:]...)
		}},
		{"truncated to header", func(b []byte) []byte { return b[:8] }},
		{"truncated mid-records", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated footer", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailer magic flipped", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"trailer offset out of range", func(b []byte) []byte {
			// The fixed64 trailer offset sits just before the magic.
			for i := len(b) - 12; i < len(b)-4; i++ {
				b[i] = 0xEE
			}
			return b
		}},
		{"segment lengths disagree with trailer offset", func(b []byte) []byte {
			// Point the trailer offset one byte early: the entries parse
			// but the length sum no longer lands on the trailer.
			b[len(b)-12]--
			return b
		}},
	}
	pristine, _ := writeCorruptibleRun(t)
	orig, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "corrupt.run")
			if err := os.WriteFile(path, tc.mutate(append([]byte{}, orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadInfo(path)
			checkCorrupt(t, err, path)
		})
	}
	// Sanity: the pristine file still parses and matches the writer's
	// in-memory index.
	info, err := ReadInfo(pristine)
	if err != nil {
		t.Fatalf("pristine run failed to parse: %v", err)
	}
	if info.Records != 3 || len(info.Segments) != 3 {
		t.Fatalf("pristine index = %+v", info)
	}
}

func TestSegmentReaderTruncation(t *testing.T) {
	path, info := writeCorruptibleRun(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seg := info.Segments[0]

	// Truncate inside the second record's body: the first record reads
	// fine, the second fails with file + offset instead of an EOF.
	cut := seg.Off + seg.Len - 4
	sr := NewSegmentReader(bytes.NewReader(orig[:cut]), seg, path)
	if _, err := sr.Next(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	_, err = sr.Next()
	ce := checkCorrupt(t, err, path)
	if ce.Off < seg.Off || ce.Off > seg.Off+seg.Len {
		t.Fatalf("CorruptError.Off = %d, want within segment [%d, %d]", ce.Off, seg.Off, seg.Off+seg.Len)
	}

	// Truncate before the second record's length prefix: the uvarint
	// read itself fails descriptively.
	first := int64(1 + len("alpha")) // 1-byte prefix + body
	sr = NewSegmentReader(bytes.NewReader(orig[:seg.Off+first]), seg, path)
	if _, err := sr.Next(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	_, err = sr.Next()
	ce = checkCorrupt(t, err, path)
	if ce.Off != seg.Off+first {
		t.Fatalf("CorruptError.Off = %d, want %d (start of the missing record)", ce.Off, seg.Off+first)
	}

	// A record length exceeding the segment remainder is rejected before
	// any allocation.
	var crafted []byte
	crafted = AppendUvarint(crafted, 1<<40)
	sr = NewSegmentReader(bytes.NewReader(crafted), Segment{Off: 0, Len: int64(len(crafted)), Records: 1}, path)
	_, err = sr.Next()
	ce = checkCorrupt(t, err, path)
	if ce.Err != nil && errors.Is(ce.Err, io.EOF) {
		t.Fatalf("oversized length reported as EOF: %v", ce)
	}
}
