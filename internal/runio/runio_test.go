package runio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// roundTrip encodes v with c, decodes it back, and checks value and
// consumed-length agreement, plus self-delimitation against trailing
// garbage.
func roundTrip[T comparable](t *testing.T, c Codec[T], v T) {
	t.Helper()
	enc := c.Append(nil, v)
	got, n, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("Decode(%v): %v", v, err)
	}
	if got != v || n != len(enc) {
		t.Fatalf("Decode(Append(%v)) = (%v, %d), want (%v, %d)", v, got, n, v, len(enc))
	}
	// Self-delimitation: trailing bytes of a next record must be left
	// untouched.
	withTail := append(append([]byte(nil), enc...), 0xde, 0xad)
	got, n, err = c.Decode(withTail)
	if err != nil || got != v || n != len(enc) {
		t.Fatalf("Decode with tail = (%v, %d, %v), want (%v, %d, nil)", got, n, err, v, len(enc))
	}
}

func TestBuiltinCodecs(t *testing.T) {
	for _, s := range []string{"", "a", "hello", "tab\tnewline\nquote\"", string([]byte{0xff, 0xfe, 0x00}), "日本語"} {
		roundTrip[string](t, StringCodec{}, s)
	}
	for _, v := range []int{0, 1, -1, 42, -127, math.MaxInt, math.MinInt} {
		roundTrip[int](t, IntCodec{}, v)
	}
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		roundTrip[int64](t, Int64Codec{}, v)
	}
	for _, v := range []float64{0, math.Copysign(0, -1), 1.5, -3.25, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		roundTrip[float64](t, Float64Codec{}, v)
	}
	// NaN != NaN, so check bit-level round trip separately.
	enc := Float64Codec{}.Append(nil, math.NaN())
	got, _, err := Float64Codec{}.Decode(enc)
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("NaN round trip = (%v, %v)", got, err)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup[string](); !ok {
		t.Fatal("built-in string codec not registered")
	}
	type unregistered struct{ X int }
	if _, ok := Lookup[unregistered](); ok {
		t.Fatal("Lookup for unregistered type succeeded")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// A huge claimed string length must error, not allocate.
	bad := AppendUvarint(nil, 1<<40)
	if _, _, err := (StringCodec{}).Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge string length: err = %v, want ErrCorrupt", err)
	}
	if _, _, err := (StringCodec{}).Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("empty input must be corrupt")
	}
	if _, _, err := (Float64Codec{}).Decode([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("short float64 must be corrupt")
	}
}

// writeTestRun writes records ("p<partition>-r<i>" payloads) into a run
// with the given per-partition counts and returns the info.
func writeTestRun(t *testing.T, path string, codeWidth int, counts []int) *Info {
	t.Helper()
	w, err := Create(path, len(counts), codeWidth)
	if err != nil {
		t.Fatal(err)
	}
	var c StringCodec
	for p, n := range counts {
		for i := 0; i < n; i++ {
			rec := make([]byte, codeWidth)
			rec = c.Append(rec, testPayload(p, i))
			if err := w.Append(p, rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func testPayload(p, i int) string {
	return string(rune('A'+p)) + "-" + string(rune('0'+i%10))
}

func TestRunWriteRead(t *testing.T) {
	for _, codeWidth := range []int{0, 16} {
		counts := []int{3, 0, 5, 1, 0}
		path := filepath.Join(t.TempDir(), "test.run")
		info := writeTestRun(t, path, codeWidth, counts)

		if info.Records != 9 {
			t.Fatalf("info.Records = %d, want 9", info.Records)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var c StringCodec
		for p, n := range counts {
			sr := NewSegmentReader(f, info.Segments[p], info.Path)
			for i := 0; i < n; i++ {
				rec, err := sr.Next()
				if err != nil {
					t.Fatalf("codeWidth=%d partition %d record %d: %v", codeWidth, p, i, err)
				}
				got, used, err := c.Decode(rec[codeWidth:])
				if err != nil || got != testPayload(p, i) {
					t.Fatalf("partition %d record %d: got %q err %v", p, i, got, err)
				}
				if codeWidth+used != len(rec) {
					t.Fatalf("partition %d record %d: %d trailing bytes", p, i, len(rec)-codeWidth-used)
				}
			}
			if _, err := sr.Next(); err != io.EOF {
				t.Fatalf("partition %d: want EOF after %d records, got %v", p, n, err)
			}
		}
	}
}

func TestRunInfoSelfDescribing(t *testing.T) {
	counts := []int{2, 0, 4}
	path := filepath.Join(t.TempDir(), "self.run")
	want := writeTestRun(t, path, 16, counts)
	got, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CodeWidth != want.CodeWidth || got.Records != want.Records || got.Bytes != want.Bytes || got.FileBytes != want.FileBytes {
		t.Fatalf("ReadInfo totals = %+v, want %+v", got, want)
	}
	for p := range want.Segments {
		if got.Segments[p] != want.Segments[p] {
			t.Fatalf("segment %d = %+v, want %+v", p, got.Segments[p], want.Segments[p])
		}
	}
}

func TestRunInfoCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.run")
	writeTestRun(t, path, 0, []int{1, 1})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A header claiming a huge partition count must be rejected before
	// any allocation is sized by it.
	hugeParts := append([]byte(runMagic), runVersion, 0)
	hugeParts = AppendUvarint(hugeParts, 1<<57)
	hugeParts = append(hugeParts, make([]byte, 16)...)
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("NOPE"), data[4:]...),
		"truncated":       data[:len(data)-3],
		"no trailer":      data[:7],
		"huge partitions": hugeParts,
	}
	for name, corrupt := range cases {
		p := filepath.Join(dir, name+".run")
		if err := os.WriteFile(p, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadInfo(p); err == nil {
			t.Errorf("%s: ReadInfo succeeded on corrupt file", name)
		}
	}
}

func TestWriterRejectsDescendingPartitions(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "desc.run"), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Append(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("y")); err == nil {
		t.Fatal("descending partition accepted")
	}
}

func TestSegmentReaderCorruptLength(t *testing.T) {
	// A record whose length prefix claims more bytes than the segment
	// holds must error, not hang or over-allocate.
	var buf bytes.Buffer
	buf.Write(AppendUvarint(nil, 1<<50))
	sr := NewSegmentReader(bytes.NewReader(buf.Bytes()), Segment{Off: 0, Len: int64(buf.Len()), Records: 1}, "")
	if _, err := sr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "123": 123, "64k": 64 << 10, "64K": 64 << 10, "16m": 16 << 20,
		"16MB": 16 << 20, "1g": 1 << 30, " 8 kb ": 8 << 10,
	}
	for in, want := range cases {
		got, err := ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = (%d, %v), want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "x", "12q", "9223372036854775807g"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) succeeded", bad)
		}
	}
}
