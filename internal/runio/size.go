package runio

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-friendly byte count for the CLI spill
// budget flags: a non-negative integer with an optional (case-
// insensitive) binary suffix k/kb, m/mb, or g/gb. "0" disables the
// feature the flag controls.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "kb"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(t, "k"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "mb"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(t, "m"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "gb"):
		mult, t = 1<<30, t[:len(t)-2]
	case strings.HasSuffix(t, "g"):
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("runio: invalid byte size %q (want e.g. 8388608, 64k, 16m, 1g)", s)
	}
	if n > (1<<62)/mult {
		return 0, fmt.Errorf("runio: byte size %q overflows", s)
	}
	return n * mult, nil
}
