package runio

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"sync"
)

// This file implements the arena read path of the run format: a segment
// reader that surfaces records as substrings of immutable block
// strings, so shared decoders (see SharedDecoder) can alias decoded
// string fields straight out of the read buffer instead of copying
// every field. One ~32KB block costs one allocation and serves hundreds
// of records; the byte-path SegmentReader costs one string copy per
// decoded string field.
//
// Aliasing makes the block's lifetime the maximum lifetime of any
// string decoded from it: a caller that retains one decoded string
// keeps the whole block reachable. The block size is kept small so that
// bound is a few tens of KB per retained string, and the engine's
// reducer contract (copy values you retain beyond the call) keeps
// well-behaved jobs from retaining blocks at all.

// sharedBlockSize is the target block size. Records larger than a block
// get a dedicated exact-size block.
const sharedBlockSize = 32 << 10

// blockScratch pools the transient []byte buffers blocks are read into
// before being sealed as strings.
var blockScratch = sync.Pool{
	New: func() any {
		b := make([]byte, sharedBlockSize)
		return &b
	},
}

// SharedSegmentReader streams the records of one segment of a run file
// like SegmentReader, but returns each record as a string aliasing an
// immutable block. Zero value is not usable; call Init. Readers read
// via ReadAt, so concurrent readers can share one open *os.File.
type SharedSegmentReader struct {
	ra      io.ReaderAt
	off     int64 // file offset of the first byte not yet read into block
	unread  int64 // segment payload bytes at off not yet read into block
	records int64
	block   string
	pos     int // next unconsumed byte within block
	path    string
}

// Init points the reader at seg of ra; path names the file in
// corruption errors ("" is allowed). Init (rather than a constructor)
// lets callers embed the reader by value and pay no allocation per
// segment.
func (s *SharedSegmentReader) Init(ra io.ReaderAt, seg Segment, path string) {
	*s = SharedSegmentReader{ra: ra, off: seg.Off, unread: seg.Len, records: seg.Records, path: path}
}

// fileOff is the absolute file offset of block[pos] (for error reports).
func (s *SharedSegmentReader) fileOff() int64 {
	return s.off - int64(len(s.block)-s.pos)
}

// refill carries the unconsumed tail of the current block into a fresh
// block and reads at least need more payload bytes into it (a full
// block when possible). The old block string is released; records
// already returned keep their own backing block alive independently.
func (s *SharedSegmentReader) refill(need int) error {
	tail := s.block[s.pos:]
	want := sharedBlockSize
	if need > want {
		want = need
	}
	readN := int64(want - len(tail))
	if readN > s.unread {
		readN = s.unread
	}
	if len(tail)+int(readN) < need {
		return corruptAt(s.path, s.fileOff(),
			fmt.Sprintf("%d-byte record body, segment has %d bytes left (truncated)", need, len(tail)+int(readN)), nil)
	}
	var b strings.Builder
	b.Grow(len(tail) + int(readN))
	b.WriteString(tail)
	if readN > 0 {
		bufp := blockScratch.Get().(*[]byte)
		buf := *bufp
		if int64(cap(buf)) < readN {
			buf = make([]byte, readN)
		}
		buf = buf[:readN]
		if _, err := s.ra.ReadAt(buf, s.off); err != nil {
			blockScratch.Put(bufp)
			return corruptAt(s.path, s.off, fmt.Sprintf("a readable %d-byte block", readN), err)
		}
		b.Write(buf)
		*bufp = buf[:cap(buf)]
		blockScratch.Put(bufp)
		s.off += readN
		s.unread -= readN
	}
	s.block = b.String()
	s.pos = 0
	return nil
}

// Next returns the next record (code ‖ key ‖ value, without the length
// prefix) as a substring of an immutable block, or io.EOF after the
// last record. Unlike SegmentReader.Next, the returned string stays
// valid indefinitely — it pins its backing block while reachable.
func (s *SharedSegmentReader) Next() (string, error) {
	if s.records <= 0 {
		return "", io.EOF
	}
	if len(s.block)-s.pos < binary.MaxVarintLen64 && s.unread > 0 {
		if err := s.refill(0); err != nil {
			return "", err
		}
	}
	l, n, err := UvarintString(s.block[s.pos:])
	if err != nil {
		return "", corruptAt(s.path, s.fileOff(), fmt.Sprintf("record length uvarint (%d records remain)", s.records), err)
	}
	s.pos += n
	if l > uint64(int64(len(s.block)-s.pos)+s.unread) {
		return "", corruptAt(s.path, s.fileOff(),
			fmt.Sprintf("record of at most %d bytes (segment remainder), got length %d",
				int64(len(s.block)-s.pos)+s.unread, l), nil)
	}
	if len(s.block)-s.pos < int(l) {
		if err := s.refill(int(l)); err != nil {
			return "", err
		}
	}
	rec := s.block[s.pos : s.pos+int(l)]
	s.pos += int(l)
	s.records--
	return rec, nil
}
