package runio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file implements the spill-run file format. One run is the sorted
// on-disk image of part of a map task's output: records sorted by
// (reduce partition, key) and laid out as contiguous per-partition
// segments, so a reduce task can stream exactly its segment of every
// run without touching the rest of the file.
//
// Layout:
//
//	header:  magic "ERN1" | version (1 byte) | code width (1 byte)
//	         | uvarint numPartitions
//	records: per partition, ascending: uvarint recordLen | record bytes
//	         (record bytes = key code [code width] ‖ key ‖ value)
//	trailer: per partition: uvarint records | uvarint byteLen
//	         | uvarint numPartitions | fixed64 trailerOffset | magic
//
// The writer returns the segment index (Info) in memory — the engine
// that wrote a run in this process reads it back without reparsing —
// and also persists it in the trailer so a run file is self-describing
// (ReadInfo recovers the index from the file alone).

const (
	runMagic   = "ERN1"
	runVersion = 1
)

// Segment locates one reduce partition's records inside a run file.
type Segment struct {
	// Off is the file offset of the segment's first record; Len the
	// byte length of the segment including per-record length prefixes.
	Off, Len int64
	// Records is the number of records in the segment.
	Records int64
}

// Info describes a finished run file.
type Info struct {
	Path string
	// CodeWidth is the fixed byte width of the binary key code prefix
	// of every record (0 when the job has no key coding, 16 otherwise).
	CodeWidth int
	// Segments is indexed by reduce partition.
	Segments []Segment
	// Records and Bytes total the segments; FileBytes is the full file
	// size including header and trailer.
	Records   int64
	Bytes     int64
	FileBytes int64
}

// Writer writes one run file. Records must be appended in ascending
// partition order (within a partition, the caller's sort order is
// preserved). Writers are single-goroutine, like the map task that owns
// them.
type Writer struct {
	f    *os.File
	bw   *bufio.Writer
	info Info
	off  int64
	base int64 // file offset where this run's section starts
	cur  int
	err  error
	// owned reports whether the writer opened f itself (Create) and so
	// closes it on Finish/Abort; section writers (NewRunWriter) share a
	// caller-owned fd and leave it open.
	owned bool
	// lenBuf is the varint scratch for Append's record-length prefix. As
	// a struct field it is heap-allocated once per run; as an Append
	// local it escapes into a fresh heap allocation per record (the
	// bufio.Writer.Write call keeps the compiler from stack-allocating
	// it), which profiling showed at ~26k allocations per external job.
	lenBuf [binary.MaxVarintLen64]byte
}

// bwPool recycles the 64KB bufio.Writer buffers across run files: a
// spill-heavy job creates many short-lived runs, and the write buffer is
// by far the largest per-run allocation.
var bwPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, 64<<10) },
}

// Create opens a new run file for writing. numPartitions is the job's
// reduce task count r; codeWidth must be 0 or 16. The writer owns the
// file and closes it on Finish/Abort.
func Create(path string, numPartitions, codeWidth int) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runio: create run: %w", err)
	}
	w, err := NewRunWriter(f, 0, numPartitions, codeWidth)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.owned = true
	return w, nil
}

// NewRunWriter starts a new run section in f at offset base, which must
// be f's current write position (sections are appended sequentially).
// The section is a complete, self-delimiting run image — header,
// records, trailer — whose Segment offsets are absolute file offsets,
// so any number of sections can share one file and one fd. The caller
// retains ownership of f: Finish flushes the section but leaves the
// file open, and nothing may write to f between NewRunWriter and
// Finish except this writer.
func NewRunWriter(f *os.File, base int64, numPartitions, codeWidth int) (*Writer, error) {
	path := f.Name()
	if numPartitions <= 0 {
		return nil, fmt.Errorf("runio: Create %s: numPartitions must be > 0, got %d", path, numPartitions)
	}
	if codeWidth != 0 && codeWidth != 16 {
		return nil, fmt.Errorf("runio: Create %s: code width must be 0 or 16, got %d", path, codeWidth)
	}
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(f)
	w := &Writer{
		f:    f,
		bw:   bw,
		base: base,
		info: Info{
			Path:      path,
			CodeWidth: codeWidth,
			Segments:  make([]Segment, numPartitions),
		},
	}
	var hdr []byte
	hdr = append(hdr, runMagic...)
	hdr = append(hdr, runVersion, byte(codeWidth))
	hdr = binary.AppendUvarint(hdr, uint64(numPartitions))
	if _, err := w.bw.Write(hdr); err != nil {
		w.releaseBW()
		return nil, fmt.Errorf("runio: write run header: %w", err)
	}
	w.off = base + int64(len(hdr))
	for i := range w.info.Segments {
		w.info.Segments[i].Off = w.off
	}
	return w, nil
}

// Append writes one encoded record (code ‖ key ‖ value bytes) into the
// given partition's segment. Partitions must be non-decreasing.
func (w *Writer) Append(partition int, rec []byte) error {
	if w.err != nil {
		return w.err
	}
	if partition < w.cur || partition >= len(w.info.Segments) {
		w.err = fmt.Errorf("runio: %s: record for partition %d after partition %d (of %d)",
			w.info.Path, partition, w.cur, len(w.info.Segments))
		return w.err
	}
	if partition > w.cur {
		for p := w.cur + 1; p <= partition; p++ {
			w.info.Segments[p].Off = w.off
		}
		w.cur = partition
	}
	n := binary.PutUvarint(w.lenBuf[:], uint64(len(rec)))
	if _, err := w.bw.Write(w.lenBuf[:n]); err != nil {
		w.err = fmt.Errorf("runio: write record: %w", err)
		return w.err
	}
	if _, err := w.bw.Write(rec); err != nil {
		w.err = fmt.Errorf("runio: write record: %w", err)
		return w.err
	}
	written := int64(n + len(rec))
	w.off += written
	seg := &w.info.Segments[partition]
	seg.Len += written
	seg.Records++
	w.info.Records++
	w.info.Bytes += written
	return nil
}

// Finish writes the trailer, flushes, and returns the run's segment
// index. Owned files (Create) are closed; shared files (NewRunWriter)
// stay open for the caller. The writer is unusable afterwards.
func (w *Writer) Finish() (*Info, error) {
	defer w.releaseBW()
	if w.err != nil {
		w.closeOwned()
		return nil, w.err
	}
	for p := w.cur + 1; p < len(w.info.Segments); p++ {
		w.info.Segments[p].Off = w.off
	}
	trailerOff := w.off
	var tr []byte
	for _, seg := range w.info.Segments {
		tr = binary.AppendUvarint(tr, uint64(seg.Records))
		tr = binary.AppendUvarint(tr, uint64(seg.Len))
	}
	// The trailer offset is absolute, like the segment offsets, so
	// ReadInfo on a single-section file (base 0) sees the same numbers
	// the writer recorded.
	tr = binary.AppendUvarint(tr, uint64(len(w.info.Segments)))
	tr = binary.LittleEndian.AppendUint64(tr, uint64(trailerOff))
	tr = append(tr, runMagic...)
	if _, err := w.bw.Write(tr); err != nil {
		w.closeOwned()
		return nil, fmt.Errorf("runio: write run trailer: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		w.closeOwned()
		return nil, fmt.Errorf("runio: flush run: %w", err)
	}
	if w.owned {
		if err := w.f.Close(); err != nil {
			return nil, fmt.Errorf("runio: close run: %w", err)
		}
	}
	// FileBytes is the section's byte length (equal to the file size for
	// owned single-section files).
	w.info.FileBytes = trailerOff + int64(len(tr)) - w.base
	info := w.info
	return &info, nil
}

// Abort abandons the run without finalizing it: owned files are closed,
// shared files are left to the caller (an aborted section leaves
// partial bytes in the shared file, so the owning spiller must not
// start another section in it). The caller is expected to remove the
// temp directory the file lives in.
func (w *Writer) Abort() {
	w.releaseBW()
	w.closeOwned()
}

func (w *Writer) closeOwned() {
	if w.owned && w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// releaseBW detaches the pooled write buffer from this writer and
// returns it (idempotent; safe after Finish or Abort).
func (w *Writer) releaseBW() {
	if w.bw == nil {
		return
	}
	// Reset drops any unflushed bytes and the file reference so the
	// pooled buffer cannot write to a closed fd or pin the file.
	w.bw.Reset(io.Discard)
	bwPool.Put(w.bw)
	w.bw = nil
}

// ReadInfo recovers a run's segment index from its trailer, proving the
// format is self-describing. The in-process engine uses the Info
// returned by Finish instead; this path exists for tooling and tests.
func ReadInfo(path string) (*Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runio: open run: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("runio: stat run: %w", err)
	}
	hdr := make([]byte, 6+binary.MaxVarintLen64)
	n, err := io.ReadFull(f, hdr)
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil, corruptAt(path, 0, "a readable run header", err)
	}
	hdr = hdr[:n]
	if len(hdr) < 7 || string(hdr[:4]) != runMagic || hdr[4] != runVersion {
		return nil, corruptAt(path, 0, fmt.Sprintf("run magic %q version %d, got %q", runMagic, runVersion, hdr), nil)
	}
	codeWidth := int(hdr[5])
	if codeWidth != 0 && codeWidth != 16 {
		return nil, corruptAt(path, 5, fmt.Sprintf("code width 0 or 16, got %d", codeWidth), nil)
	}
	numPartitions, pn, err := Uvarint(hdr[6:])
	if err != nil {
		return nil, corruptAt(path, 6, "partition count uvarint", err)
	}
	hdrLen := int64(6 + pn)
	// Every partition occupies at least two trailer bytes (two
	// uvarints), so a claimed count the file cannot hold is corrupt —
	// reject it before sizing any allocation by it.
	if numPartitions == 0 || numPartitions > uint64(st.Size())/2 {
		return nil, corruptAt(path, 6, fmt.Sprintf("plausible partition count for a %d-byte file, got %d", st.Size(), numPartitions), nil)
	}

	// Fixed-size footer: 8-byte trailer offset + 4-byte magic.
	if st.Size() < hdrLen+12 {
		return nil, corruptAt(path, st.Size(), fmt.Sprintf("at least %d bytes of header and footer, file has %d (truncated)", hdrLen+12, st.Size()), nil)
	}
	var foot [12]byte
	if _, err := f.ReadAt(foot[:], st.Size()-12); err != nil {
		return nil, corruptAt(path, st.Size()-12, "a readable 12-byte footer", err)
	}
	if string(foot[8:]) != runMagic {
		return nil, corruptAt(path, st.Size()-4, fmt.Sprintf("trailer magic %q, got %q", runMagic, foot[8:]), nil)
	}
	trailerOff := int64(binary.LittleEndian.Uint64(foot[:8]))
	if trailerOff < hdrLen || trailerOff > st.Size()-12 {
		return nil, corruptAt(path, st.Size()-12, fmt.Sprintf("trailer offset in [%d,%d], got %d", hdrLen, st.Size()-12, trailerOff), nil)
	}
	tr := make([]byte, st.Size()-12-trailerOff)
	if _, err := f.ReadAt(tr, trailerOff); err != nil {
		return nil, corruptAt(path, trailerOff, "a readable run trailer", err)
	}
	// The trailer holds one (records, length) pair per partition, then
	// repeats the partition count as a cross-check.
	info := &Info{Path: path, CodeWidth: codeWidth, FileBytes: st.Size()}
	rest := tr
	entries := make([]Segment, 0, numPartitions)
	for i := uint64(0); i < numPartitions; i++ {
		recs, n1, err := Uvarint(rest)
		if err != nil {
			return nil, corruptAt(path, trailerOff+int64(len(tr)-len(rest)), fmt.Sprintf("record count of trailer entry %d", i), err)
		}
		rest = rest[n1:]
		l, n2, err := Uvarint(rest)
		if err != nil {
			return nil, corruptAt(path, trailerOff+int64(len(tr)-len(rest)), fmt.Sprintf("byte length of trailer entry %d", i), err)
		}
		rest = rest[n2:]
		entries = append(entries, Segment{Records: int64(recs), Len: l2i(l)})
	}
	count, n3, err := Uvarint(rest)
	if err != nil || count != numPartitions || len(rest) != n3 {
		return nil, corruptAt(path, trailerOff+int64(len(tr)-len(rest)), fmt.Sprintf("trailer cross-check count %d", numPartitions), err)
	}
	off := hdrLen
	for i := range entries {
		entries[i].Off = off
		off += entries[i].Len
		info.Records += entries[i].Records
		info.Bytes += entries[i].Len
	}
	if off != trailerOff {
		return nil, corruptAt(path, trailerOff, fmt.Sprintf("segment lengths summing to the trailer offset, got %d", off), nil)
	}
	info.Segments = entries
	return info, nil
}

// uvarintLen returns the encoded byte length of x in LEB128 form.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func l2i(x uint64) int64 {
	if x > 1<<62 {
		return 1 << 62
	}
	return int64(x)
}

// SegmentReader streams the records of one segment of a run file. It
// reads through its own buffer via ReadAt, so any number of concurrent
// readers (one per reduce task) can share a single open *os.File.
type SegmentReader struct {
	r         *bufio.Reader
	remaining int64
	records   int64
	buf       []byte
	path      string
	off       int64 // absolute file offset of the next read
}

// segReaderBufSize is the read-ahead buffer per open segment: large
// enough to amortize syscalls, small enough that a reduce task merging
// dozens of runs stays within a few MB of buffer memory.
const segReaderBufSize = 64 << 10

// NewSegmentReader streams seg from ra (typically the run's *os.File);
// path names the file in corruption errors ("" is allowed). The
// read-ahead buffer never exceeds the segment itself, so a reduce task
// merging many small segments (tiny budgets fragment runs) pays buffer
// memory proportional to its actual input, not to the run count.
func NewSegmentReader(ra io.ReaderAt, seg Segment, path string) *SegmentReader {
	bufSize := segReaderBufSize
	if seg.Len < int64(bufSize) {
		bufSize = int(seg.Len)
	}
	if bufSize < 16 {
		bufSize = 16
	}
	return &SegmentReader{
		r:         bufio.NewReaderSize(io.NewSectionReader(ra, seg.Off, seg.Len), bufSize),
		remaining: seg.Len,
		records:   seg.Records,
		path:      path,
		off:       seg.Off,
	}
}

// Next returns the next record's bytes (code ‖ key ‖ value, without the
// length prefix), or io.EOF after the last record. The returned slice
// is only valid until the following Next call. A truncated or corrupted
// segment fails with a *CorruptError carrying the file, the offset, and
// what was expected there — never a bare EOF mid-record.
func (s *SegmentReader) Next() ([]byte, error) {
	if s.records <= 0 {
		return nil, io.EOF
	}
	l, err := binary.ReadUvarint(s.r)
	if err != nil {
		return nil, corruptAt(s.path, s.off, fmt.Sprintf("record length uvarint (%d records remain)", s.records), err)
	}
	pfx := int64(uvarintLen(l))
	s.remaining -= pfx
	if l > uint64(s.remaining) {
		return nil, corruptAt(s.path, s.off, fmt.Sprintf("record of at most %d bytes (segment remainder), got length %d", s.remaining, l), nil)
	}
	s.off += pfx
	if uint64(cap(s.buf)) < l {
		s.buf = make([]byte, l)
	}
	s.buf = s.buf[:l]
	if _, err := io.ReadFull(s.r, s.buf); err != nil {
		return nil, corruptAt(s.path, s.off, fmt.Sprintf("%d-byte record body", l), err)
	}
	s.off += int64(l)
	s.remaining -= int64(l)
	s.records--
	return s.buf, nil
}
