// Package runio provides the on-disk record representation of the
// out-of-core dataflow: self-delimiting binary codecs for the concrete
// key and value types flowing through a typed MapReduce job, a
// process-wide codec registry mirroring the engine's record-pool
// registry, and the spill-run file format (a header followed by
// length-prefixed records, grouped into per-reduce-task segments) that
// the external shuffle writes at map time and streams back at reduce
// time.
//
// The package is deliberately independent of the engine: it knows
// nothing about jobs, keys codes, or merge order. The engine passes the
// 128-bit binary key code through as an opaque fixed-width prefix of
// each record (see Writer), so on-disk records sort and group exactly
// like their in-memory counterparts.
//
// # The codec contract
//
// A Codec[T] serializes values of one concrete type as self-delimiting
// byte strings:
//
//  1. Round trip: Decode(Append(nil, v)) must return a value
//     semantically equal to v, consuming exactly the appended bytes.
//  2. Self-delimitation: Decode must determine the encoding's length
//     from the bytes themselves (length prefixes, fixed widths); it is
//     handed a buffer that may contain trailing bytes of the next
//     record.
//  3. No aliasing: the decoded value must not retain the input buffer
//     (readers reuse it between records) — string(b) copies, so
//     string-building decoders are naturally safe.
//  4. No panics on corrupt input: Decode returns an error for any byte
//     string it cannot parse, and must not allocate proportionally to a
//     length claimed by corrupt data (validate claimed lengths against
//     len(src) first).
//
// Codecs are looked up once per job Run, never on a per-record path,
// and must be safe for concurrent use (stateless codecs trivially are).
package runio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// ErrCorrupt is wrapped by all decode errors caused by malformed bytes.
var ErrCorrupt = errors.New("runio: corrupt data")

// CorruptError is the typed corruption report of the run-file readers
// (ReadInfo, SegmentReader.Next): which file, at what byte offset, and
// what the parser expected there — so a truncated or corrupted spill
// run fails with an actionable message instead of a bare EOF. It
// satisfies both errors.Is(err, ErrCorrupt) and errors.As with
// *CorruptError. The per-record codec errors keep wrapping plain
// ErrCorrupt: they have no file position to report.
type CorruptError struct {
	// Path is the run file ("" when reading an anonymous source).
	Path string
	// Off is the byte offset of the failed read; -1 when unknown.
	Off int64
	// What describes what the parser expected at that point.
	What string
	// Err is the underlying cause (an I/O error, a bad value); may be
	// nil when the expectation itself failed.
	Err error
}

func (e *CorruptError) Error() string {
	msg := "runio: corrupt run"
	if e.Path != "" {
		msg += " " + e.Path
	}
	if e.Off >= 0 {
		msg += fmt.Sprintf(" at offset %d", e.Off)
	}
	msg += ": expected " + e.What
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap makes the error match ErrCorrupt (always) and its underlying
// cause (when present) under errors.Is/As.
func (e *CorruptError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

// corruptAt builds the readers' standard corruption error.
func corruptAt(path string, off int64, what string, cause error) error {
	return &CorruptError{Path: path, Off: off, What: what, Err: cause}
}

// Codec serializes one concrete type T as a self-delimiting byte
// string. See the package comment for the full contract.
type Codec[T any] interface {
	// Append appends the encoding of v to dst and returns the extended
	// buffer (append-style).
	Append(dst []byte, v T) []byte
	// Decode reads one value from the front of src, returning the value
	// and the number of bytes consumed.
	Decode(src []byte) (T, int, error)
}

// SharedDecoder is the optional arena extension of Codec: codecs whose
// decoded values can alias an immutable string source implement it so
// the external dataflow's read path decodes records with zero per-field
// string copies (see SharedSegmentReader). The contract relaxes exactly
// one clause of the Codec contract — aliasing:
//
//  1. The returned decode function parses one value from the front of
//     src (same self-delimiting framing as Decode, same consumed-byte
//     count, same errors on the same corrupt inputs).
//  2. Decoded values MAY alias src: src is an immutable Go string, so
//     substrings of it are safe to hand out without copying. Readers
//     guarantee src stays reachable as long as any substring of it is.
//  3. The decode function may carry state (arenas, scratch) and is for
//     a single goroutine; callers obtain one per task attempt. It must
//     still never panic on corrupt input or allocate proportionally to
//     a corrupt length claim.
//
// Values decoded this way keep block-sized backing arrays alive while
// they are reachable, which is why the engine hands them to user code
// under the existing "copy what you retain beyond the call" rule.
type SharedDecoder[T any] interface {
	NewSharedDecoder() func(src string) (T, int, error)
}

// LookupShared returns a fresh shared-decode function for T when the
// registered codec implements SharedDecoder, or nil.
func LookupShared[T any]() func(src string) (T, int, error) {
	c, ok := registry.Load(typeOf[T]())
	if !ok {
		return nil
	}
	sd, ok := c.(SharedDecoder[T])
	if !ok {
		return nil
	}
	return sd.NewSharedDecoder()
}

// registry maps a reflect.Type to its Codec[T]. Like the engine's
// record-pool registry, it exists because generic package-level
// variables do not: each package registers codecs for the key and value
// types it defines (init time), and the engine looks them up by type
// when a job runs on the external dataflow.
var registry sync.Map // reflect.Type -> Codec[T]

func typeOf[T any]() reflect.Type { return reflect.TypeOf((*T)(nil)).Elem() }

// Register installs the codec for type T. Registering a type twice
// panics: two packages disagreeing on a type's on-disk format is a bug,
// not a configuration.
func Register[T any](c Codec[T]) {
	if c == nil {
		panic("runio: Register called with nil codec")
	}
	if _, dup := registry.LoadOrStore(typeOf[T](), c); dup {
		panic(fmt.Sprintf("runio: codec for %v registered twice", typeOf[T]()))
	}
}

// Lookup returns the registered codec for T, or false when no package
// has registered one (the engine turns that into a descriptive error at
// job start, not a per-record failure).
func Lookup[T any]() (Codec[T], bool) {
	c, ok := registry.Load(typeOf[T]())
	if !ok {
		return nil, false
	}
	return c.(Codec[T]), true
}

// ---- encoding primitives ----

// AppendUvarint appends x in unsigned LEB128 form.
func AppendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

// Uvarint decodes an unsigned LEB128 value from the front of src.
func Uvarint(src []byte) (uint64, int, error) {
	x, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return x, n, nil
}

// AppendVarint appends x in zig-zag LEB128 form.
func AppendVarint(dst []byte, x int64) []byte { return binary.AppendVarint(dst, x) }

// Varint decodes a zig-zag LEB128 value from the front of src.
func Varint(src []byte) (int64, int, error) {
	x, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return x, n, nil
}

// AppendString appends s as uvarint length + raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// String decodes a length-prefixed string from the front of src. The
// returned string is a copy and does not alias src.
func String(src []byte) (string, int, error) {
	l, n, err := Uvarint(src)
	if err != nil {
		return "", 0, fmt.Errorf("%w: string length", ErrCorrupt)
	}
	if l > uint64(len(src)-n) {
		return "", 0, fmt.Errorf("%w: string length %d exceeds remaining %d bytes", ErrCorrupt, l, len(src)-n)
	}
	return string(src[n : n+int(l)]), n + int(l), nil
}

// ---- string-source decode primitives ----
//
// Mirrors of the []byte decode primitives that parse from a string
// source instead. encoding/binary's varint readers only accept []byte,
// and converting string→[]byte copies, so shared decoders use these
// hand-rolled equivalents. Same error behavior as the byte versions.

// UvarintString decodes an unsigned LEB128 value from the front of src.
func UvarintString(src string) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < len(src); i++ {
		if i == binary.MaxVarintLen64 {
			break
		}
		b := src[i]
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				break // overflows uint64
			}
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
}

// VarintString decodes a zig-zag LEB128 value from the front of src.
func VarintString(src string) (int64, int, error) {
	ux, n, err := UvarintString(src)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, n, nil
}

// SharedString decodes a length-prefixed string from the front of src.
// The returned string ALIASES src (it is a substring) — callers must
// only pass immutable sources, per the SharedDecoder contract.
func SharedString(src string) (string, int, error) {
	l, n, err := UvarintString(src)
	if err != nil {
		return "", 0, fmt.Errorf("%w: string length", ErrCorrupt)
	}
	if l > uint64(len(src)-n) {
		return "", 0, fmt.Errorf("%w: string length %d exceeds remaining %d bytes", ErrCorrupt, l, len(src)-n)
	}
	return src[n : n+int(l)], n + int(l), nil
}

// Uint64LEString reads a fixed 8-byte little-endian uint64 from the
// front of src (the string-source twin of binary.LittleEndian.Uint64).
func Uint64LEString(src string) (uint64, error) {
	if len(src) < 8 {
		return 0, fmt.Errorf("%w: fixed64 needs 8 bytes, have %d", ErrCorrupt, len(src))
	}
	return uint64(src[0]) | uint64(src[1])<<8 | uint64(src[2])<<16 | uint64(src[3])<<24 |
		uint64(src[4])<<32 | uint64(src[5])<<40 | uint64(src[6])<<48 | uint64(src[7])<<56, nil
}

// ---- built-in codecs ----

// StringCodec encodes strings as uvarint length + raw bytes. Arbitrary
// byte content — tabs, newlines, invalid UTF-8 — survives unchanged.
type StringCodec struct{}

func (StringCodec) Append(dst []byte, v string) []byte     { return AppendString(dst, v) }
func (StringCodec) Decode(src []byte) (string, int, error) { return String(src) }

// NewSharedDecoder implements SharedDecoder: decoded strings alias src.
func (StringCodec) NewSharedDecoder() func(string) (string, int, error) { return SharedString }

// IntCodec encodes ints as zig-zag varints (platform-width safe: the
// value range of int always fits int64).
type IntCodec struct{}

func (IntCodec) Append(dst []byte, v int) []byte { return AppendVarint(dst, int64(v)) }
func (IntCodec) Decode(src []byte) (int, int, error) {
	x, n, err := Varint(src)
	if err != nil {
		return 0, 0, err
	}
	if x < math.MinInt || x > math.MaxInt {
		return 0, 0, fmt.Errorf("%w: int value %d out of range", ErrCorrupt, x)
	}
	return int(x), n, nil
}

// NewSharedDecoder implements SharedDecoder (ints never alias).
func (IntCodec) NewSharedDecoder() func(string) (int, int, error) {
	return func(src string) (int, int, error) {
		x, n, err := VarintString(src)
		if err != nil {
			return 0, 0, err
		}
		if x < math.MinInt || x > math.MaxInt {
			return 0, 0, fmt.Errorf("%w: int value %d out of range", ErrCorrupt, x)
		}
		return int(x), n, nil
	}
}

// Int64Codec encodes int64s as zig-zag varints.
type Int64Codec struct{}

func (Int64Codec) Append(dst []byte, v int64) []byte { return AppendVarint(dst, v) }
func (Int64Codec) Decode(src []byte) (int64, int, error) {
	return Varint(src)
}

// NewSharedDecoder implements SharedDecoder.
func (Int64Codec) NewSharedDecoder() func(string) (int64, int, error) { return VarintString }

// Float64Codec encodes float64s as fixed 8-byte little-endian IEEE 754
// bits (exact round trip, including NaN payloads and signed zeros).
type Float64Codec struct{}

func (Float64Codec) Append(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func (Float64Codec) Decode(src []byte) (float64, int, error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("%w: float64 needs 8 bytes, have %d", ErrCorrupt, len(src))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src)), 8, nil
}

// NewSharedDecoder implements SharedDecoder.
func (Float64Codec) NewSharedDecoder() func(string) (float64, int, error) {
	return func(src string) (float64, int, error) {
		bits, err := Uint64LEString(src)
		if err != nil {
			return 0, 0, err
		}
		return math.Float64frombits(bits), 8, nil
	}
}

func init() {
	Register[string](StringCodec{})
	Register[int](IntCodec{})
	Register[int64](Int64Codec{})
	Register[float64](Float64Codec{})
}
