// Package runio provides the on-disk record representation of the
// out-of-core dataflow: self-delimiting binary codecs for the concrete
// key and value types flowing through a typed MapReduce job, a
// process-wide codec registry mirroring the engine's record-pool
// registry, and the spill-run file format (a header followed by
// length-prefixed records, grouped into per-reduce-task segments) that
// the external shuffle writes at map time and streams back at reduce
// time.
//
// The package is deliberately independent of the engine: it knows
// nothing about jobs, keys codes, or merge order. The engine passes the
// 128-bit binary key code through as an opaque fixed-width prefix of
// each record (see Writer), so on-disk records sort and group exactly
// like their in-memory counterparts.
//
// # The codec contract
//
// A Codec[T] serializes values of one concrete type as self-delimiting
// byte strings:
//
//  1. Round trip: Decode(Append(nil, v)) must return a value
//     semantically equal to v, consuming exactly the appended bytes.
//  2. Self-delimitation: Decode must determine the encoding's length
//     from the bytes themselves (length prefixes, fixed widths); it is
//     handed a buffer that may contain trailing bytes of the next
//     record.
//  3. No aliasing: the decoded value must not retain the input buffer
//     (readers reuse it between records) — string(b) copies, so
//     string-building decoders are naturally safe.
//  4. No panics on corrupt input: Decode returns an error for any byte
//     string it cannot parse, and must not allocate proportionally to a
//     length claimed by corrupt data (validate claimed lengths against
//     len(src) first).
//
// Codecs are looked up once per job Run, never on a per-record path,
// and must be safe for concurrent use (stateless codecs trivially are).
package runio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// ErrCorrupt is wrapped by all decode errors caused by malformed bytes.
var ErrCorrupt = errors.New("runio: corrupt data")

// CorruptError is the typed corruption report of the run-file readers
// (ReadInfo, SegmentReader.Next): which file, at what byte offset, and
// what the parser expected there — so a truncated or corrupted spill
// run fails with an actionable message instead of a bare EOF. It
// satisfies both errors.Is(err, ErrCorrupt) and errors.As with
// *CorruptError. The per-record codec errors keep wrapping plain
// ErrCorrupt: they have no file position to report.
type CorruptError struct {
	// Path is the run file ("" when reading an anonymous source).
	Path string
	// Off is the byte offset of the failed read; -1 when unknown.
	Off int64
	// What describes what the parser expected at that point.
	What string
	// Err is the underlying cause (an I/O error, a bad value); may be
	// nil when the expectation itself failed.
	Err error
}

func (e *CorruptError) Error() string {
	msg := "runio: corrupt run"
	if e.Path != "" {
		msg += " " + e.Path
	}
	if e.Off >= 0 {
		msg += fmt.Sprintf(" at offset %d", e.Off)
	}
	msg += ": expected " + e.What
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap makes the error match ErrCorrupt (always) and its underlying
// cause (when present) under errors.Is/As.
func (e *CorruptError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

// corruptAt builds the readers' standard corruption error.
func corruptAt(path string, off int64, what string, cause error) error {
	return &CorruptError{Path: path, Off: off, What: what, Err: cause}
}

// Codec serializes one concrete type T as a self-delimiting byte
// string. See the package comment for the full contract.
type Codec[T any] interface {
	// Append appends the encoding of v to dst and returns the extended
	// buffer (append-style).
	Append(dst []byte, v T) []byte
	// Decode reads one value from the front of src, returning the value
	// and the number of bytes consumed.
	Decode(src []byte) (T, int, error)
}

// registry maps a reflect.Type to its Codec[T]. Like the engine's
// record-pool registry, it exists because generic package-level
// variables do not: each package registers codecs for the key and value
// types it defines (init time), and the engine looks them up by type
// when a job runs on the external dataflow.
var registry sync.Map // reflect.Type -> Codec[T]

func typeOf[T any]() reflect.Type { return reflect.TypeOf((*T)(nil)).Elem() }

// Register installs the codec for type T. Registering a type twice
// panics: two packages disagreeing on a type's on-disk format is a bug,
// not a configuration.
func Register[T any](c Codec[T]) {
	if c == nil {
		panic("runio: Register called with nil codec")
	}
	if _, dup := registry.LoadOrStore(typeOf[T](), c); dup {
		panic(fmt.Sprintf("runio: codec for %v registered twice", typeOf[T]()))
	}
}

// Lookup returns the registered codec for T, or false when no package
// has registered one (the engine turns that into a descriptive error at
// job start, not a per-record failure).
func Lookup[T any]() (Codec[T], bool) {
	c, ok := registry.Load(typeOf[T]())
	if !ok {
		return nil, false
	}
	return c.(Codec[T]), true
}

// ---- encoding primitives ----

// AppendUvarint appends x in unsigned LEB128 form.
func AppendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

// Uvarint decodes an unsigned LEB128 value from the front of src.
func Uvarint(src []byte) (uint64, int, error) {
	x, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return x, n, nil
}

// AppendVarint appends x in zig-zag LEB128 form.
func AppendVarint(dst []byte, x int64) []byte { return binary.AppendVarint(dst, x) }

// Varint decodes a zig-zag LEB128 value from the front of src.
func Varint(src []byte) (int64, int, error) {
	x, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return x, n, nil
}

// AppendString appends s as uvarint length + raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// String decodes a length-prefixed string from the front of src. The
// returned string is a copy and does not alias src.
func String(src []byte) (string, int, error) {
	l, n, err := Uvarint(src)
	if err != nil {
		return "", 0, fmt.Errorf("%w: string length", ErrCorrupt)
	}
	if l > uint64(len(src)-n) {
		return "", 0, fmt.Errorf("%w: string length %d exceeds remaining %d bytes", ErrCorrupt, l, len(src)-n)
	}
	return string(src[n : n+int(l)]), n + int(l), nil
}

// ---- built-in codecs ----

// StringCodec encodes strings as uvarint length + raw bytes. Arbitrary
// byte content — tabs, newlines, invalid UTF-8 — survives unchanged.
type StringCodec struct{}

func (StringCodec) Append(dst []byte, v string) []byte     { return AppendString(dst, v) }
func (StringCodec) Decode(src []byte) (string, int, error) { return String(src) }

// IntCodec encodes ints as zig-zag varints (platform-width safe: the
// value range of int always fits int64).
type IntCodec struct{}

func (IntCodec) Append(dst []byte, v int) []byte { return AppendVarint(dst, int64(v)) }
func (IntCodec) Decode(src []byte) (int, int, error) {
	x, n, err := Varint(src)
	if err != nil {
		return 0, 0, err
	}
	if x < math.MinInt || x > math.MaxInt {
		return 0, 0, fmt.Errorf("%w: int value %d out of range", ErrCorrupt, x)
	}
	return int(x), n, nil
}

// Int64Codec encodes int64s as zig-zag varints.
type Int64Codec struct{}

func (Int64Codec) Append(dst []byte, v int64) []byte { return AppendVarint(dst, v) }
func (Int64Codec) Decode(src []byte) (int64, int, error) {
	return Varint(src)
}

// Float64Codec encodes float64s as fixed 8-byte little-endian IEEE 754
// bits (exact round trip, including NaN payloads and signed zeros).
type Float64Codec struct{}

func (Float64Codec) Append(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func (Float64Codec) Decode(src []byte) (float64, int, error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("%w: float64 needs 8 bytes, have %d", ErrCorrupt, len(src))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src)), 8, nil
}

func init() {
	Register[string](StringCodec{})
	Register[int](IntCodec{})
	Register[int64](Int64Codec{})
	Register[float64](Float64Codec{})
}
