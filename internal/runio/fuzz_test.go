package runio

import (
	"bytes"
	"testing"
)

// FuzzStringCodec proves arbitrary byte content — tabs, newlines,
// invalid UTF-8, NULs — survives the length-prefixed encoding.
func FuzzStringCodec(f *testing.F) {
	f.Add("")
	f.Add("plain")
	f.Add("tab\there\nand\r\nnewlines")
	f.Add(string([]byte{0xff, 0xfe, 0xc0, 0x00}))
	f.Fuzz(func(t *testing.T, s string) {
		var c StringCodec
		enc := c.Append(nil, s)
		got, n, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got != s || n != len(enc) {
			t.Fatalf("round trip: got (%q, %d), want (%q, %d)", got, n, s, len(enc))
		}
	})
}

// FuzzIntCodecs round-trips signed values through the varint codecs.
func FuzzIntCodecs(f *testing.F) {
	f.Add(int64(0), 0)
	f.Add(int64(-1), -1)
	f.Add(int64(1)<<62, 1<<31)
	f.Fuzz(func(t *testing.T, v64 int64, v int) {
		enc := Int64Codec{}.Append(nil, v64)
		got64, n, err := Int64Codec{}.Decode(enc)
		if err != nil || got64 != v64 || n != len(enc) {
			t.Fatalf("int64 %d: got (%d, %d, %v)", v64, got64, n, err)
		}
		enc = IntCodec{}.Append(nil, v)
		got, n, err := IntCodec{}.Decode(enc)
		if err != nil || got != v || n != len(enc) {
			t.Fatalf("int %d: got (%d, %d, %v)", v, got, n, err)
		}
	})
}

// FuzzStringDecodeArbitrary feeds arbitrary bytes to the decoder: it
// must either error or consume a prefix, never panic or over-allocate.
func FuzzStringDecodeArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 'a', 'b'})
	f.Add(AppendUvarint(nil, 1<<40))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := (StringCodec{}).Decode(data)
		if err == nil {
			if n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			// The decoded string's bytes are the tail of the consumed
			// prefix (the length prefix itself may be a non-minimal
			// varint on corrupt input, which Decode tolerates).
			if !bytes.HasSuffix(data[:n], []byte(s)) {
				t.Fatalf("decoded %q not a suffix of consumed prefix", s)
			}
			// Re-encoding must round-trip to the same value.
			got, _, err := (StringCodec{}).Decode(AppendString(nil, s))
			if err != nil || got != s {
				t.Fatalf("re-encode round trip: (%q, %v)", got, err)
			}
		}
	})
}
