package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/blocking"
	"repro/internal/entity"
)

// Spec describes a synthetic dataset with a Zipf-like block distribution
// over 3-letter title prefixes.
type Spec struct {
	// N is the number of base entities to generate (before duplicates).
	N int
	// Blocks is the number of distinct blocking keys (title prefixes).
	Blocks int
	// Alpha is the Zipf exponent of the tail block-size distribution.
	Alpha float64
	// HeadFrac pins the largest block to this fraction of the entities.
	// ~4-5% with a flat tail (Alpha ≈ 0.5) reproduces DS1's documented
	// profile: the largest block holds only a few percent of the
	// entities but >70% of all pairs — small enough that sorting the
	// input concentrates it into one or two partitions (the Figure 11
	// effect), big enough to dominate Basic's runtime.
	HeadFrac float64
	// DupRate is the fraction of additional near-duplicate entities to
	// inject (0.05 = 5% duplicates, each a typo-perturbed copy of a base
	// entity, sharing its title prefix so blocking keeps them together).
	DupRate float64
	// Seed makes the dataset a deterministic function of the spec.
	Seed int64
}

// DS1Spec returns the generator spec standing in for the paper's DS1
// (~114,000 product descriptions). scale in (0,1] shrinks the dataset
// proportionally for laptop-sized runs; scale=1 is full size.
func DS1Spec(scale float64) Spec {
	n := scaled(114000, scale)
	// The block count does not shrink with the dataset: the largest
	// block's share of all pairs depends on the tail's block count, so
	// keeping it fixed preserves the paper's ">70% of pairs in the
	// largest block" profile at every scale.
	return Spec{
		N:        n,
		Blocks:   minInt(2375, maxInt(20, n/3)),
		Alpha:    0.5,
		HeadFrac: 0.045,
		DupRate:  0.04,
		Seed:     1108,
	}
}

// DS2Spec returns the spec standing in for DS2 (~1.4M publication
// records, an order of magnitude larger than DS1).
func DS2Spec(scale float64) Spec {
	n := scaled(1400000, scale)
	return Spec{
		N:        n,
		Blocks:   minInt(4242, maxInt(40, n/3)),
		Alpha:    0.5,
		HeadFrac: 0.04,
		DupRate:  0.03,
		Seed:     1631,
	}
}

func scaled(n int, scale float64) int {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("datagen: scale must be in (0,1], got %g", scale))
	}
	s := int(float64(n) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Generate produces the dataset: base entities with Zipf block sizes,
// then injected near-duplicates. The returned truth slice lists the
// (base, duplicate) ID pairs a perfect matcher should find.
func Generate(spec Spec) (entities []entity.Entity, truth [][2]string) {
	if spec.N <= 0 || spec.Blocks <= 0 {
		panic(fmt.Sprintf("datagen: Generate requires N > 0 and Blocks > 0, got N=%d Blocks=%d", spec.N, spec.Blocks))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	prefixes := blockPrefixes(spec.Blocks, rng)
	var sizes []int
	if spec.HeadFrac > 0 {
		sizes = headTailSizes(spec.N, spec.Blocks, spec.HeadFrac, spec.Alpha)
	} else {
		sizes = zipfSizes(spec.N, spec.Blocks, spec.Alpha)
	}

	entities = make([]entity.Entity, 0, spec.N)
	id := 0
	for k, size := range sizes {
		for i := 0; i < size; i++ {
			title := prefixes[k] + titleTail(rng)
			entities = append(entities, entity.New(fmt.Sprintf("e%08d", id), AttrTitle, title))
			id++
		}
	}

	dups := int(float64(len(entities)) * spec.DupRate)
	for d := 0; d < dups; d++ {
		base := entities[rng.Intn(spec.N)]
		dup := entity.New(fmt.Sprintf("d%08d", d), AttrTitle, perturb(rng, base.Attr(AttrTitle)))
		entities = append(entities, dup)
		truth = append(truth, [2]string{base.ID, dup.ID})
	}

	// Shuffle so the on-disk (and partition) order is independent of the
	// blocking key — the "unsorted" input of Figure 11.
	rng.Shuffle(len(entities), func(i, j int) {
		entities[i], entities[j] = entities[j], entities[i]
	})
	return entities, truth
}

// BlockKey returns the blocking function matching the generated titles:
// the first three letters (the paper's default blocking for DS1/DS2).
func BlockKey() blocking.KeyFunc { return blocking.Prefix(3) }

// blockPrefixes returns n distinct 3-letter prefixes in a seeded-random
// order so that block sizes are not correlated with lexicographic order.
func blockPrefixes(n int, rng *rand.Rand) []string {
	if n > 26*26*26 {
		panic(fmt.Sprintf("datagen: at most %d distinct 3-letter prefixes exist, requested %d", 26*26*26, n))
	}
	all := make([]string, 0, 26*26*26)
	for a := 0; a < 26; a++ {
		for b := 0; b < 26; b++ {
			for c := 0; c < 26; c++ {
				all = append(all, string([]byte{lowercase[a], lowercase[b], lowercase[c]}))
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:n]
}

// titleTail generates the rest of a title after its 3-letter prefix.
func titleTail(rng *rand.Rand) string {
	var b strings.Builder
	// Complete the first word, then add 2-5 more words.
	for i, l := 0, rng.Intn(5); i < l; i++ {
		b.WriteByte(lowercase[rng.Intn(26)])
	}
	words := 2 + rng.Intn(4)
	for w := 0; w < words; w++ {
		b.WriteByte(' ')
		l := 2 + rng.Intn(7)
		for i := 0; i < l; i++ {
			b.WriteByte(lowercase[rng.Intn(26)])
		}
	}
	return b.String()
}

// perturb applies 1-2 random single-character edits to s, never touching
// the first three characters (so the duplicate stays in the same block,
// as real-world typos in the title tail would).
func perturb(rng *rand.Rand, s string) string {
	b := []byte(s)
	edits := 1 + rng.Intn(2)
	for e := 0; e < edits && len(b) > 4; e++ {
		pos := 3 + rng.Intn(len(b)-3)
		switch rng.Intn(3) {
		case 0: // substitute
			b[pos] = lowercase[rng.Intn(26)]
		case 1: // delete
			b = append(b[:pos], b[pos+1:]...)
		default: // insert
			b = append(b[:pos], append([]byte{lowercase[rng.Intn(26)]}, b[pos:]...)...)
		}
	}
	return string(b)
}

// TwoSources splits a generated dataset into two sources R and S with
// the given fraction of entities going to R (deterministic under seed).
func TwoSources(entities []entity.Entity, fracR float64, seed int64) (r, s []entity.Entity) {
	rng := rand.New(rand.NewSource(seed))
	for _, e := range entities {
		if rng.Float64() < fracR {
			r = append(r, e)
		} else {
			s = append(s, e)
		}
	}
	return r, s
}

// Stats summarizes a dataset's block distribution (the contents of the
// paper's Figure 8 table).
type Stats struct {
	Entities         int
	Blocks           int
	LargestBlock     int
	LargestBlockFrac float64 // share of entities
	Pairs            int64
	LargestPairsFrac float64 // share of pairs in the largest block
}

// ComputeStats derives Figure 8-style statistics for a dataset under the
// given blocking.
func ComputeStats(entities []entity.Entity, attr string, key blocking.KeyFunc) Stats {
	counts := make(map[string]int)
	for _, e := range entities {
		counts[key(e.Attr(attr))]++
	}
	st := Stats{Entities: len(entities), Blocks: len(counts)}
	var largestPairs int64
	for _, c := range counts {
		p := int64(c) * int64(c-1) / 2
		st.Pairs += p
		if c > st.LargestBlock {
			st.LargestBlock = c
			largestPairs = p
		}
	}
	if st.Entities > 0 {
		st.LargestBlockFrac = float64(st.LargestBlock) / float64(st.Entities)
	}
	if st.Pairs > 0 {
		st.LargestPairsFrac = float64(largestPairs) / float64(st.Pairs)
	}
	return st
}
