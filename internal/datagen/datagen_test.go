package datagen

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/entity"
)

func blockCounts(es []entity.Entity, attr string) map[string]int {
	counts := make(map[string]int)
	for _, e := range es {
		counts[e.Attr(attr)]++
	}
	return counts
}

func TestExponentialUniform(t *testing.T) {
	es := Exponential(1000, 10, 0, 1)
	if len(es) != 1000 {
		t.Fatalf("n = %d", len(es))
	}
	counts := blockCounts(es, AttrBlock)
	if len(counts) != 10 {
		t.Fatalf("blocks = %d, want 10", len(counts))
	}
	for k, c := range counts {
		if c != 100 {
			t.Errorf("s=0 block %q has %d entities, want 100", k, c)
		}
	}
}

func TestExponentialSkewShape(t *testing.T) {
	es := Exponential(10000, 100, 1.0, 1)
	counts := blockCounts(es, AttrBlock)
	// |Φk| ∝ e^(−k): block 0 ≈ (1−e^(−1)) ≈ 63.2% of entities.
	b0 := counts["b0000"]
	if frac := float64(b0) / 10000; math.Abs(frac-0.632) > 0.01 {
		t.Errorf("block 0 fraction = %.3f, want ≈ 0.632", frac)
	}
	prev := b0
	for k := 1; k < 100; k++ {
		c := counts[fmt.Sprintf("b%04d", k)]
		if c > prev {
			t.Errorf("block %d larger than block %d (%d > %d)", k, k-1, c, prev)
		}
		prev = c
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10000 {
		t.Errorf("sizes sum to %d, want 10000", total)
	}
}

func TestExponentialDeterministic(t *testing.T) {
	a := Exponential(500, 20, 0.7, 42)
	b := Exponential(500, 20, 0.7, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different datasets")
	}
	c := Exponential(500, 20, 0.7, 43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestExponentialPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { Exponential(0, 10, 0, 1) },
		func() { Exponential(10, 0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestApportionExact(t *testing.T) {
	for _, tc := range []struct {
		n       int
		weights []float64
	}{
		{10, []float64{1, 1, 1}},
		{7, []float64{5, 3, 2}},
		{1, []float64{0.1, 0.9}},
		{100, []float64{1e-9, 1}},
	} {
		sum := 0.0
		for _, w := range tc.weights {
			sum += w
		}
		sizes := apportion(tc.n, tc.weights, sum)
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total != tc.n {
			t.Errorf("apportion(%d, %v) sums to %d", tc.n, tc.weights, total)
		}
	}
}

func TestGenerateProfile(t *testing.T) {
	spec := DS1Spec(0.05)
	es, truth := Generate(spec)
	wantLen := spec.N + int(float64(spec.N)*spec.DupRate)
	if len(es) != wantLen {
		t.Fatalf("generated %d entities, want %d", len(es), wantLen)
	}
	if len(truth) != int(float64(spec.N)*spec.DupRate) {
		t.Fatalf("truth has %d pairs", len(truth))
	}
	st := ComputeStats(es, AttrTitle, BlockKey())
	if st.LargestBlockFrac > 0.10 {
		t.Errorf("largest block holds %.1f%% of entities, want a few percent", 100*st.LargestBlockFrac)
	}
	if st.LargestPairsFrac < 0.60 {
		t.Errorf("largest block holds %.1f%% of pairs, want > 60%% (paper: >70%%)", 100*st.LargestPairsFrac)
	}
	// Duplicates share their base's block (prefix preserved).
	byID := make(map[string]string, len(es))
	for _, e := range es {
		byID[e.ID] = e.Attr(AttrTitle)
	}
	key := BlockKey()
	for _, tp := range truth {
		if key(byID[tp[0]]) != key(byID[tp[1]]) {
			t.Fatalf("duplicate %s left its base's block (%q vs %q)", tp[1], byID[tp[0]], byID[tp[1]])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, ta := Generate(DS1Spec(0.01))
	b, tb := Generate(DS1Spec(0.01))
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(ta, tb) {
		t.Error("DS1 generation not deterministic")
	}
}

func TestSpecScaleValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %g did not panic", bad)
				}
			}()
			DS1Spec(bad)
		}()
	}
}

func TestHeadTailSizes(t *testing.T) {
	sizes := headTailSizes(1000, 10, 0.05, 0.5)
	if len(sizes) != 10 {
		t.Fatalf("len = %d", len(sizes))
	}
	if sizes[0] != 50 {
		t.Errorf("head = %d, want 50", sizes[0])
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 1000 {
		t.Errorf("total = %d", total)
	}
	if got := headTailSizes(100, 1, 0.05, 0.5); len(got) != 1 || got[0] != 100 {
		t.Errorf("single block: %v", got)
	}
}

func TestTwoSourcesPartition(t *testing.T) {
	es, _ := Generate(DS1Spec(0.01))
	r, s := TwoSources(es, 0.5, 1)
	if len(r)+len(s) != len(es) {
		t.Fatalf("split lost entities: %d + %d != %d", len(r), len(s), len(es))
	}
	frac := float64(len(r)) / float64(len(es))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("R fraction = %.2f, want ≈ 0.5", frac)
	}
	r2, s2 := TwoSources(es, 0.5, 1)
	if !reflect.DeepEqual(r, r2) || !reflect.DeepEqual(s, s2) {
		t.Error("TwoSources not deterministic")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(nil, AttrTitle, BlockKey())
	if st.Entities != 0 || st.Pairs != 0 || st.LargestBlockFrac != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestPerturbKeepsPrefix(t *testing.T) {
	es, truth := Generate(DS1Spec(0.02))
	if len(truth) == 0 {
		t.Fatal("no duplicates generated")
	}
	byID := make(map[string]string)
	for _, e := range es {
		byID[e.ID] = e.Attr(AttrTitle)
	}
	for _, tp := range truth {
		base, dup := byID[tp[0]], byID[tp[1]]
		if len(dup) < 3 || base[:3] != dup[:3] {
			t.Fatalf("perturbation broke the prefix: %q -> %q", base, dup)
		}
	}
}

func TestBlockPrefixesDistinct(t *testing.T) {
	es, _ := Generate(Spec{N: 100, Blocks: 26 * 26 * 26, Alpha: 0.5, Seed: 1})
	_ = es // generation with the max block count must not panic
	defer func() {
		if recover() == nil {
			t.Error("too many blocks did not panic")
		}
	}()
	Generate(Spec{N: 10, Blocks: 26*26*26 + 1, Alpha: 0.5, Seed: 1})
}

func TestZipfSizesMonotone(t *testing.T) {
	sizes := zipfSizes(10000, 50, 1.0)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("zipf sizes not monotone at %d: %d > %d", i, sizes[i], sizes[i-1])
		}
	}
}

func TestBlockKeyIsThreeLetterPrefix(t *testing.T) {
	key := BlockKey()
	if key("abcdef") != "abc" || key("ab") != "ab" {
		t.Error("BlockKey is not the 3-letter prefix")
	}
	// Matches blocking.Prefix(3) behaviour exactly.
	p := blocking.Prefix(3)
	for _, s := range []string{"", "a", "abcd", "xyz trailing"} {
		if key(s) != p(s) {
			t.Errorf("BlockKey(%q) != Prefix(3)", s)
		}
	}
}
