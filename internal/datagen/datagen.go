// Package datagen produces the synthetic evaluation datasets. The paper
// evaluates on two real-world datasets that are not redistributable here
// (DS1: ~114,000 product descriptions; DS2: ~1.4M CiteSeerX publication
// records). Only the block-size distribution induced by the blocking key
// matters to the load-balancing algorithms, so the generators reproduce
// the documented distribution shapes with deterministic pseudo-random
// content:
//
//   - Exponential: the controlled-skew distribution of the robustness
//     experiment (Figure 9) — b blocks with |Φk| ∝ e^(−s·k);
//   - Products / Publications: DS1/DS2 stand-ins whose 3-letter title
//     prefix blocking yields a Zipf-like block distribution with a
//     dominant largest block (>70% of all pairs, as Figure 10 reports
//     for DS1).
//
// All generators are deterministic functions of their seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/entity"
)

// AttrTitle is the attribute name generators store the match-relevant
// text under; blocking and matching both read it.
const AttrTitle = "title"

// AttrBlock is the attribute carrying a pre-assigned block key (used by
// the exponential-skew generator, where blocking is controlled directly).
const AttrBlock = "block"

// Exponential generates n entities over b blocks whose sizes follow the
// paper's skew model: the number of entities in the kth block is
// proportional to e^(−s·k). Skew s=0 yields uniform blocks; larger s
// concentrates entities in the first blocks. Block membership is stored
// in AttrBlock; AttrTitle carries pseudo-random text for matchers.
func Exponential(n, b int, s float64, seed int64) []entity.Entity {
	if n <= 0 || b <= 0 {
		panic(fmt.Sprintf("datagen: Exponential requires n > 0 and b > 0, got n=%d b=%d", n, b))
	}
	weights := make([]float64, b)
	var sum float64
	for k := 0; k < b; k++ {
		weights[k] = math.Exp(-s * float64(k))
		sum += weights[k]
	}
	// Largest-remainder apportionment of n entities over the blocks.
	sizes := apportion(n, weights, sum)

	rng := rand.New(rand.NewSource(seed))
	out := make([]entity.Entity, 0, n)
	id := 0
	for k, size := range sizes {
		blockKey := fmt.Sprintf("b%04d", k)
		for i := 0; i < size; i++ {
			// Attrs stay sorted by name ("block" < "title").
			e := entity.Entity{
				ID: fmt.Sprintf("e%07d", id),
				Attrs: []entity.Attr{
					{Name: AttrBlock, Value: blockKey},
					{Name: AttrTitle, Value: randomTitle(rng, 3)},
				},
			}
			out = append(out, e)
			id++
		}
	}
	return out
}

// apportion distributes n items proportionally to weights using the
// largest-remainder method, guaranteeing Σ sizes == n.
func apportion(n int, weights []float64, sum float64) []int {
	type rem struct {
		idx  int
		frac float64
	}
	sizes := make([]int, len(weights))
	rems := make([]rem, len(weights))
	assigned := 0
	for k, w := range weights {
		exact := float64(n) * w / sum
		sizes[k] = int(exact)
		assigned += sizes[k]
		rems[k] = rem{idx: k, frac: exact - float64(sizes[k])}
	}
	// Hand out the remaining items to the largest fractional parts
	// (ties by index for determinism).
	for left := n - assigned; left > 0; {
		best := -1
		for i := range rems {
			if rems[i].frac < 0 {
				continue
			}
			if best < 0 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		sizes[rems[best].idx]++
		rems[best].frac = -1
		left--
	}
	return sizes
}

// zipfSizes returns block sizes for n entities over b blocks with
// |Φk| ∝ (k+1)^(−alpha).
func zipfSizes(n, b int, alpha float64) []int {
	weights := make([]float64, b)
	var sum float64
	for k := 0; k < b; k++ {
		weights[k] = math.Pow(float64(k+1), -alpha)
		sum += weights[k]
	}
	return apportion(n, weights, sum)
}

// headTailSizes pins the largest block to headFrac of the n entities and
// distributes the rest over the remaining b−1 blocks with a Zipf(alpha)
// tail. This is the profile of the paper's evaluation datasets: the
// largest block holds only a few percent of the entities yet dominates
// the pair count quadratically.
func headTailSizes(n, b int, headFrac, alpha float64) []int {
	if b == 1 || headFrac >= 1 {
		return []int{n}
	}
	head := int(float64(n) * headFrac)
	if head < 1 {
		head = 1
	}
	tail := zipfSizes(n-head, b-1, alpha)
	return append([]int{head}, tail...)
}

const lowercase = "abcdefghijklmnopqrstuvwxyz"

// randomTitle produces a pseudo-random multi-word string whose first
// word has at least prefixLen letters.
func randomTitle(rng *rand.Rand, prefixLen int) string {
	word := func(minLen, maxLen int) string {
		l := minLen + rng.Intn(maxLen-minLen+1)
		buf := make([]byte, l)
		for i := range buf {
			buf[i] = lowercase[rng.Intn(len(lowercase))]
		}
		return string(buf)
	}
	s := word(prefixLen, prefixLen+5)
	words := 1 + rng.Intn(4)
	for w := 0; w < words; w++ {
		s += " " + word(2, 8)
	}
	return s
}
