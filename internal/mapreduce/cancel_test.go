package mapreduce_test

// Cancellation tests: cancelling the context mid-map or mid-reduce must
// abort the run between tasks with an error wrapping ctx.Err(), leak no
// worker goroutines, and — on the external dataflow — remove the spill
// directory. The CI pipeline additionally runs these under -race (the
// cancel fires from inside concurrently executing tasks).

import (
	"context"
	"errors"
	"os"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/testleak"
)

// cancelJob is wordJob with a hook that cancels the run's context from
// inside the phase under test, so the cancel always lands mid-phase.
func cancelJob(r int, phase mapreduce.TaskKind, cancel context.CancelFunc) *mapreduce.Job[string, string, int, mapreduce.Pair[string, int]] {
	j := wordJob(r, false)
	if phase == mapreduce.MapTask {
		inner := j.NewMapper
		j.NewMapper = func() mapreduce.Mapper[string, string, int] {
			m := inner()
			return &mapreduce.MapperFunc[string, string, int]{
				OnMap: func(ctx *mapreduce.MapContext[string, string, int], line string) {
					cancel()
					m.Map(ctx, line)
				},
			}
		}
		return j
	}
	inner := j.NewReducer
	j.NewReducer = func() mapreduce.Reducer[string, int, mapreduce.Pair[string, int]] {
		red := inner()
		return &mapreduce.ReducerFunc[string, int, mapreduce.Pair[string, int]]{
			OnReduce: func(ctx *mapreduce.ReduceContext[mapreduce.Pair[string, int]], key string, values []mapreduce.Rec[string, int]) {
				cancel()
				red.Reduce(ctx, key, values)
			},
		}
	}
	return j
}

// engineFor builds the engine for one dataflow; external engines get a
// tiny budget (forcing spills before the cancel) rooted in a fresh
// directory whose emptiness the caller asserts afterwards.
func engineFor(t *testing.T, dataflow mapreduce.DataflowMode) (*mapreduce.Engine, string) {
	t.Helper()
	e := &mapreduce.Engine{Parallelism: 2, Dataflow: dataflow}
	var tmp string
	if dataflow == mapreduce.DataflowExternal {
		tmp = t.TempDir()
		e.SpillBudget = 64
		e.TmpDir = tmp
	}
	return e, tmp
}

// checkCancelled asserts the error shape, the goroutine high-water
// mark returning to the baseline (no leaked workers), and — for the
// external dataflow — the spill root being empty again.
func checkCancelled(t *testing.T, err error, before int, tmp string) {
	t.Helper()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	testleak.Check(t, before)
	if tmp != "" {
		ents, err := os.ReadDir(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("spill root not cleaned after cancel: %v", ents)
		}
	}
}

func TestCancelMidPhase(t *testing.T) {
	dataflows := map[string]mapreduce.DataflowMode{
		"typed":    mapreduce.DataflowTyped,
		"boxed":    mapreduce.DataflowBoxed,
		"external": mapreduce.DataflowExternal,
	}
	phases := map[string]mapreduce.TaskKind{
		"map":    mapreduce.MapTask,
		"reduce": mapreduce.ReduceTask,
	}
	for dname, dataflow := range dataflows {
		for pname, phase := range phases {
			t.Run(dname+"/"+pname, func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				e, tmp := engineFor(t, dataflow)
				before := testleak.Snapshot()
				res, err := cancelJob(4, phase, cancel).RunContext(ctx, e, wordInput(4))
				if res != nil {
					t.Fatal("cancelled run returned a result")
				}
				checkCancelled(t, err, before, tmp)
			})
		}
	}
}

// TestCancelBeforeRun: an already-cancelled context fails fast without
// running any task.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, dataflow := range []mapreduce.DataflowMode{
		mapreduce.DataflowTyped, mapreduce.DataflowBoxed, mapreduce.DataflowExternal,
	} {
		e, _ := engineFor(t, dataflow)
		ran := false
		j := wordJob(2, false)
		innerNew := j.NewMapper
		j.NewMapper = func() mapreduce.Mapper[string, string, int] {
			ran = true
			return innerNew()
		}
		if _, err := j.RunContext(ctx, e, wordInput(2)); !errors.Is(err, context.Canceled) {
			t.Fatalf("dataflow %v: err = %v, want context.Canceled", e.Dataflow, err)
		}
		if ran {
			t.Fatalf("dataflow %v: map task ran despite pre-cancelled context", e.Dataflow)
		}
	}
}

// TestCancelBoxedEngine covers the boxed engine's own RunContext (the
// legacy any-keyed entry point, not routed through a typed job).
func TestCancelBoxedEngine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := &mapreduce.BoxedJob{
		Name:           "boxed-cancel",
		NumReduceTasks: 2,
		NewMapper: func() mapreduce.BoxedMapper {
			return &mapreduce.FuncMapper{OnMap: func(c *mapreduce.BoxedContext, kv mapreduce.KeyValue) {
				cancel()
				c.Emit(kv.Key, 1)
			}}
		},
		NewReducer: func() mapreduce.BoxedReducer {
			return &mapreduce.FuncReducer{OnReduce: func(c *mapreduce.BoxedContext, key any, vs []mapreduce.KeyValue) {}}
		},
		Partition: func(key any, r int) int { return mapreduce.HashPartition(key.(string), r) },
		Compare:   mapreduce.CompareStrings,
	}
	input := [][]mapreduce.KeyValue{{{Key: "a"}, {Key: "b"}}, {{Key: "c"}}}
	e := &mapreduce.Engine{Parallelism: 2}
	before := testleak.Snapshot()
	res, err := e.RunContext(ctx, job, input)
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	checkCancelled(t, err, before, "")
}
