package mapreduce_test

// Dataflow differential test: every strategy of the paper must produce
// byte-identical Results on the typed engine (concrete record types +
// binary key codes) and on the boxed any-based oracle it replaced. The
// comparison covers the complete Result — match pairs, comparison
// counts, raw job outputs, side outputs, and every TaskMetrics field —
// across Basic/BlockSplit/PairRange × 1..4 map partitions × 1..8 reduce
// tasks and both dual-source strategies, each with sequential
// (Parallelism 1) and concurrent (Parallelism 4) execution. This is the
// proof that killing interface boxing changed the representation of the
// dataflow and nothing else.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/similarity"
)

func titleMatcher(threshold float64) core.Matcher {
	return func(a, b entity.Entity) (float64, bool) {
		s := similarity.LevenshteinSimilarity(a.Attr("title"), b.Attr("title"))
		return s, s >= threshold
	}
}

func TestDataflowDifferentialStrategies(t *testing.T) {
	es := skewedEntities()
	strategies := []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}}
	for m := 1; m <= 4; m++ {
		parts := entity.SplitRoundRobin(es, m)
		for r := 1; r <= 8; r++ {
			for _, strat := range strategies {
				for _, par := range []int{1, 4} {
					name := fmt.Sprintf("%s/m=%d/r=%d/par=%d", strat.Name(), m, r, par)
					cfg := er.Config{
						Strategy:    strat,
						Attr:        "title",
						BlockKey:    blocking.NormalizedPrefix(3),
						Matcher:     titleMatcher(0.85),
						R:           r,
						UseCombiner: true,
					}

					cfg.Engine = &mapreduce.Engine{Parallelism: par}
					typed, err := er.Run(parts, cfg)
					if err != nil {
						t.Fatalf("%s: typed run: %v", name, err)
					}

					cfg.Engine = &mapreduce.Engine{Parallelism: par, Dataflow: mapreduce.DataflowBoxed}
					boxed, err := er.Run(parts, cfg)
					if err != nil {
						t.Fatalf("%s: boxed oracle run: %v", name, err)
					}

					if !reflect.DeepEqual(typed.Matches, boxed.Matches) {
						t.Errorf("%s: match pairs diverge between dataflows", name)
					}
					if typed.Comparisons != boxed.Comparisons {
						t.Errorf("%s: comparisons %d (typed) != %d (boxed)", name, typed.Comparisons, boxed.Comparisons)
					}
					if !reflect.DeepEqual(typed.BDMResult, boxed.BDMResult) {
						t.Errorf("%s: BDM job Result (incl. TaskMetrics) diverges between dataflows", name)
					}
					if !reflect.DeepEqual(typed.MatchResult, boxed.MatchResult) {
						t.Errorf("%s: match job Result (incl. TaskMetrics) diverges between dataflows", name)
					}
				}
			}
		}
	}
}

// dualCatalog builds a skewed two-source catalog: a dominant shared
// block, mid-size blocks, and blocks existing in only one source (which
// the dual strategies must skip entirely).
func dualCatalog() (partsR, partsS []entity.Entity) {
	add := func(dst *[]entity.Entity, n int, stem string) {
		for i := 0; i < n; i++ {
			*dst = append(*dst, entity.New(
				fmt.Sprintf("%s-%03d", stem, i),
				"title",
				fmt.Sprintf("%s model %d edition", stem, i%5),
			))
		}
	}
	add(&partsR, 18, "canon eos") // dominant block, both sources
	add(&partsS, 12, "canon eos")
	add(&partsR, 7, "nikon d850") // mid block, both sources
	add(&partsS, 5, "nikon d850")
	add(&partsR, 4, "sony alpha") // R-only block: no pairs
	add(&partsS, 3, "fuji xt")    // S-only block: no pairs
	add(&partsR, 1, "leica m11")  // cross-source singleton pair
	add(&partsS, 1, "leica m11")
	return partsR, partsS
}

func TestDataflowDifferentialDualStrategies(t *testing.T) {
	esR, esS := dualCatalog()
	strategies := []core.DualStrategy{core.BlockSplitDual{}, core.PairRangeDual{}}
	for mR := 1; mR <= 2; mR++ {
		partsR := entity.SplitRoundRobin(esR, mR)
		for mS := 1; mS <= 2; mS++ {
			partsS := entity.SplitRoundRobin(esS, mS)
			for r := 1; r <= 8; r++ {
				for _, strat := range strategies {
					for _, par := range []int{1, 4} {
						name := fmt.Sprintf("%s/mR=%d/mS=%d/r=%d/par=%d", strat.Name(), mR, mS, r, par)
						cfg := er.DualConfig{
							Strategy: strat,
							Attr:     "title",
							BlockKey: blocking.NormalizedPrefix(3),
							Matcher:  titleMatcher(0.85),
							R:        r,
						}

						cfg.Engine = &mapreduce.Engine{Parallelism: par}
						typed, err := er.RunDual(partsR, partsS, cfg)
						if err != nil {
							t.Fatalf("%s: typed run: %v", name, err)
						}

						cfg.Engine = &mapreduce.Engine{Parallelism: par, Dataflow: mapreduce.DataflowBoxed}
						boxed, err := er.RunDual(partsR, partsS, cfg)
						if err != nil {
							t.Fatalf("%s: boxed oracle run: %v", name, err)
						}

						if !reflect.DeepEqual(typed.Matches, boxed.Matches) {
							t.Errorf("%s: match pairs diverge between dataflows", name)
						}
						if typed.Comparisons != boxed.Comparisons {
							t.Errorf("%s: comparisons %d (typed) != %d (boxed)", name, typed.Comparisons, boxed.Comparisons)
						}
						if !reflect.DeepEqual(typed.MatchResult, boxed.MatchResult) {
							t.Errorf("%s: match job Result (incl. TaskMetrics) diverges between dataflows", name)
						}
					}
				}
			}
		}
	}
}

// TestDataflowDifferentialSideOutput pins the side-output path (the BDM
// job's annotated entities) to byte equality between the dataflows,
// including the per-map-task partitioning the matching job depends on.
func TestDataflowDifferentialSideOutput(t *testing.T) {
	parts := entity.SplitRoundRobin(skewedEntities(), 3)
	job := bdm.Job(bdm.JobOptions{
		Attr:           "title",
		KeyFunc:        blocking.NormalizedPrefix(3),
		NumReduceTasks: 4,
	})
	input := make([][]bdm.Annotated, len(parts))
	for i, p := range parts {
		input[i] = make([]bdm.Annotated, len(p))
		for k, e := range p {
			input[i][k] = bdm.Annotated{Value: e}
		}
	}
	typed, err := job.Run(&mapreduce.Engine{Parallelism: 2}, input)
	if err != nil {
		t.Fatalf("typed run: %v", err)
	}
	boxed, err := job.Run(&mapreduce.Engine{Parallelism: 2, Dataflow: mapreduce.DataflowBoxed}, input)
	if err != nil {
		t.Fatalf("boxed oracle run: %v", err)
	}
	if !reflect.DeepEqual(typed, boxed) {
		t.Errorf("BDM job Result (incl. SideOutput) diverges between dataflows\ntyped: %+v\nboxed: %+v", typed, boxed)
	}
}
