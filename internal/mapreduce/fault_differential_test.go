package mapreduce_test

// Fault-schedule differential suite: under any deterministic fault
// schedule that lets every task eventually succeed, a run must produce
// a Result byte-identical to the fault-free run — attempt counters
// excluded (they record how the run executed). The chaos seed is a flag
// so the CI chaos-smoke job can randomize it and a failure reproduces
// from the printed seed alone:
//
//	go test -run TestFaultScheduleDifferential -chaos-seed=12345 ./internal/mapreduce/

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/testleak"
)

var chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the chaos-hook fault-schedule differential tests")

func TestFaultScheduleDifferential(t *testing.T) {
	const m, r = 3, 4
	input := wordInput(m)
	for _, combine := range []bool{false, true} {
		baseline, err := wordJob(r, combine).Run(&mapreduce.Engine{}, input)
		if err != nil {
			t.Fatal(err)
		}
		normalize(baseline)
		for dname, dataflow := range allDataflows {
			for _, rate := range []float64{0.2, 0.6} {
				t.Run(fmt.Sprintf("combine=%v/%s/rate=%v", combine, dname, rate), func(t *testing.T) {
					before := testleak.Snapshot()
					e, _ := engineFor(t, dataflow)
					e.Retry.BaseBackoff = 1
					e.FaultHook = mapreduce.ChaosHook(*chaosSeed, rate, e.Retry.MaxAttempts)
					res, err := wordJob(r, combine).Run(e, input)
					if err != nil {
						t.Fatalf("chaos-seed=%d: %v", *chaosSeed, err)
					}
					testleak.Check(t, before)
					// Without speculation every attempt is either a task's
					// single success or a counted retry.
					if res.SpeculativeLaunched != 0 || res.SpeculativeWon != 0 {
						t.Fatalf("chaos-seed=%d: unexpected speculation %d/%d", *chaosSeed, res.SpeculativeLaunched, res.SpeculativeWon)
					}
					if res.Attempts != int64(m+r)+res.Retries {
						t.Fatalf("chaos-seed=%d: Attempts = %d, want %d tasks + %d retries", *chaosSeed, res.Attempts, m+r, res.Retries)
					}
					normalize(res)
					if !reflect.DeepEqual(res, baseline) {
						t.Fatalf("chaos-seed=%d: chaotic run diverges from fault-free run", *chaosSeed)
					}
				})
			}
		}
	}
}

// TestSpillFaultDifferential targets the external dataflow's disk
// points specifically: transient faults at spill and merge sites leave
// attempt-scoped run files behind, which the retry must supersede
// without the dead files leaking into the merge or the directory tree.
func TestSpillFaultDifferential(t *testing.T) {
	const m, r = 3, 4
	input := wordInput(m)
	baseline, err := wordJob(r, false).Run(&mapreduce.Engine{}, input)
	if err != nil {
		t.Fatal(err)
	}
	normalize(baseline)
	for _, at := range []mapreduce.FaultPoint{mapreduce.FaultSpill, mapreduce.FaultMerge} {
		t.Run(at.String(), func(t *testing.T) {
			before := testleak.Snapshot()
			e, tmp := engineFor(t, mapreduce.DataflowExternal)
			e.Retry.BaseBackoff = 1
			var fired atomic.Int64
			e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
				if point == at && attempt == 1 {
					fired.Add(1)
					return fmt.Errorf("injected transient %s fault", point)
				}
				return nil
			}
			res, err := wordJob(r, false).Run(e, input)
			if err != nil {
				t.Fatal(err)
			}
			testleak.Check(t, before)
			if fired.Load() == 0 {
				t.Fatalf("%s hook never fired; budget too large to spill?", at)
			}
			if res.Retries == 0 {
				t.Fatal("injected disk faults caused no retries")
			}
			normalize(res)
			if !reflect.DeepEqual(res, baseline) {
				t.Fatal("disk-faulted run diverges from fault-free run")
			}
			if ents, _ := os.ReadDir(tmp); len(ents) != 0 {
				t.Fatalf("spill root not empty after run: %v", ents)
			}
		})
	}
}
