package mapreduce

// White-box tests of the retry-policy mechanics: backoff growth, cap,
// and jitter determinism; the fatal-error classifier; TaskError
// formatting (the "map task 0" substring is load-bearing for callers
// grepping job errors); and the chaos hook's two safety properties
// (determinism, never injecting into a task's final attempt).

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBackoffForDeterministicAndBounded(t *testing.T) {
	p := &RetryPolicy{BaseBackoff: 4 * time.Millisecond, MaxBackoff: 32 * time.Millisecond, Seed: 7}
	for task := 0; task < 4; task++ {
		for failed := 1; failed <= 8; failed++ {
			d := p.backoffFor(MapTask, task, failed)
			if d2 := p.backoffFor(MapTask, task, failed); d2 != d {
				t.Fatalf("backoffFor not deterministic: %v then %v", d, d2)
			}
			// Nominal delay: base·2^(failed-1), capped; jitter keeps the
			// result in (nominal/2, nominal].
			nominal := 4 * time.Millisecond
			for i := 1; i < failed && nominal < 32*time.Millisecond; i++ {
				nominal *= 2
			}
			if nominal > 32*time.Millisecond {
				nominal = 32 * time.Millisecond
			}
			if d <= nominal/2 || d > nominal {
				t.Fatalf("task %d failed %d: backoff %v outside (%v, %v]", task, failed, d, nominal/2, nominal)
			}
		}
	}
	// Different tasks must decohere (that is the jitter's purpose). With
	// a 2ms jitter window, 4 tasks colliding on the same nanosecond
	// value would imply a broken hash.
	a := p.backoffFor(MapTask, 0, 1)
	distinct := false
	for task := 1; task < 4; task++ {
		if p.backoffFor(MapTask, task, 1) != a {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("backoff jitter identical across tasks; hash not mixing task index")
	}
}

func TestBackoffSeedChangesJitter(t *testing.T) {
	p1 := &RetryPolicy{Seed: 1}
	p2 := &RetryPolicy{Seed: 2}
	same := true
	for task := 0; task < 8; task++ {
		if p1.backoffFor(ReduceTask, task, 1) != p2.backoffFor(ReduceTask, task, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("jitter identical under different seeds for 8 tasks")
	}
}

func TestRetryableClassification(t *testing.T) {
	base := errors.New("transient")
	var p RetryPolicy
	if !p.retryable(base) {
		t.Fatal("nil classifier must retry plain errors")
	}
	if p.retryable(Fatal(base)) {
		t.Fatal("Fatal-wrapped error classified retryable")
	}
	if p.retryable(fmt.Errorf("wrapped: %w", Fatal(base))) {
		t.Fatal("Fatal must be detected through wrapping")
	}
	p.Retryable = func(error) bool { return false }
	if p.retryable(base) {
		t.Fatal("custom classifier ignored")
	}
	if p.retryable(Fatal(base)) {
		t.Fatal("Fatal must override even a true-returning classifier")
	}
	if Fatal(nil) != nil {
		t.Fatal("Fatal(nil) must be nil")
	}
}

func TestTaskErrorFormatAndUnwrap(t *testing.T) {
	cause := errors.New("boom in map")
	te := &TaskError{Phase: MapTask, Task: 0, Attempt: 3, Cause: cause}
	if got, want := te.Error(), "map task 0 (attempt 3): boom in map"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	if !errors.Is(te, cause) {
		t.Fatal("TaskError does not unwrap to its cause")
	}
	var out *TaskError
	if wrapped := fmt.Errorf("mapreduce: job %q: %w", "j", te); !errors.As(wrapped, &out) || out.Task != 0 {
		t.Fatal("TaskError not recoverable from job-level wrap")
	}
}

func TestFaultPointStrings(t *testing.T) {
	want := map[FaultPoint]string{
		FaultTaskStart: "task-start",
		FaultEmit:      "emit",
		FaultSpill:     "spill",
		FaultMerge:     "merge",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("FaultPoint(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestChaosHookDeterministicAndFinalAttemptSafe(t *testing.T) {
	h := ChaosHook(42, 0.5, 3)
	ctx := context.Background()
	injected := 0
	for task := 0; task < 16; task++ {
		for attempt := 1; attempt <= 3; attempt++ {
			for _, pt := range []FaultPoint{FaultTaskStart, FaultEmit, FaultSpill, FaultMerge} {
				e1 := h(ctx, MapTask, task, attempt, pt)
				e2 := h(ctx, MapTask, task, attempt, pt)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("chaos decision not deterministic at task %d attempt %d %s", task, attempt, pt)
				}
				if attempt >= 3 && e1 != nil {
					t.Fatalf("chaos injected into final attempt (task %d, %s): %v", task, pt, e1)
				}
				if e1 != nil {
					injected++
				}
			}
		}
	}
	if injected == 0 {
		t.Fatal("rate-0.5 chaos hook injected nothing over 128 sites")
	}
}

func TestParseChaos(t *testing.T) {
	if h, err := ParseChaos("", 0); h != nil || err != nil {
		t.Fatalf("empty spec: hook=%v err=%v, want nil/nil", h, err)
	}
	if h, err := ParseChaos("0.3", 0); h == nil || err != nil {
		t.Fatalf("plain rate: hook=%v err=%v", h, err)
	}
	if h, err := ParseChaos("0.3:99", 0); h == nil || err != nil {
		t.Fatalf("rate:seed: hook=%v err=%v", h, err)
	}
	for _, bad := range []string{"x", "-0.1", "1.5", "0.2:", "0.2:abc"} {
		if _, err := ParseChaos(bad, 0); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	// Same spec, same decisions — the reproducibility contract of the
	// -faults flag and the chaos-smoke CI job.
	h1, _ := ParseChaos("0.4:7", 2)
	h2, _ := ParseChaos("0.4:7", 2)
	ctx := context.Background()
	for task := 0; task < 8; task++ {
		e1 := h1(ctx, ReduceTask, task, 1, FaultEmit)
		e2 := h2(ctx, ReduceTask, task, 1, FaultEmit)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("identical specs disagree at task %d", task)
		}
	}
}
