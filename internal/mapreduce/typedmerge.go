package mapreduce

// recMerger is the typed counterpart of kvMerger (merge.go): it streams
// the k-way merge of pre-sorted spill buckets that forms a reduce task's
// input. It is a binary min-heap of run indexes keyed by (cmpRec(head),
// run index); the run-index tie-break pops equal keys in map-task order,
// which makes the merged stream identical to concatenating the runs in
// map-task order and stable-sorting — the Hadoop merge semantics
// BlockSplit's reduce function depends on (see DESIGN.md). With a binary
// key coding, every heap comparison is one or two uint64 compares.
//
// Each next() costs O(log k) comparator calls for k live runs, so a full
// merge is O(N log k) versus the O(N log N) of re-sorting the
// concatenated input, and it needs no N-sized materialization at all.
type recMerger[I, K, V, O any] struct {
	st   *runState[I, K, V, O]
	runs [][]Rec[K, V] // advanced in place as records are popped
	heap []int32       // indexes into runs; min-heap by (head, index)
}

// newRecMerger builds a merger over the given non-empty sorted runs,
// which must be listed in map-task order. The merger is a per-task
// stack-ish allocation; the heap backing array is what matters and is
// sized once.
func newRecMerger[I, K, V, O any](st *runState[I, K, V, O], runs [][]Rec[K, V]) *recMerger[I, K, V, O] {
	m := &recMerger[I, K, V, O]{st: st, runs: runs, heap: make([]int32, len(runs))}
	for i := range m.heap {
		m.heap[i] = int32(i)
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}

// less orders run x before run y by head record, breaking ties by run
// index (= map-task order): the stability guarantee.
func (m *recMerger[I, K, V, O]) less(x, y int32) bool {
	if c := m.st.cmpRec(&m.runs[x][0], &m.runs[y][0]); c != 0 {
		return c < 0
	}
	return x < y
}

func (m *recMerger[I, K, V, O]) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		s := l
		if r := l + 1; r < n && m.less(h[r], h[l]) {
			s = r
		}
		if !m.less(h[s], h[i]) {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// next pops the globally smallest remaining record. The second return is
// false once all runs are drained.
func (m *recMerger[I, K, V, O]) next() (Rec[K, V], bool) {
	if len(m.heap) == 0 {
		var zero Rec[K, V]
		return zero, false
	}
	r := m.heap[0]
	run := m.runs[r]
	rec := run[0]
	if len(run) > 1 {
		m.runs[r] = run[1:]
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	if len(m.heap) > 1 {
		m.siftDown(0)
	}
	return rec, true
}
