package mapreduce

import "hash/fnv"

// FuncMapper adapts plain functions to the BoxedMapper interface.
type FuncMapper struct {
	OnConfigure func(m, r, partitionIndex int)
	OnMap       func(ctx *BoxedContext, kv KeyValue)
}

// Configure implements BoxedMapper.
func (f *FuncMapper) Configure(m, r, partitionIndex int) {
	if f.OnConfigure != nil {
		f.OnConfigure(m, r, partitionIndex)
	}
}

// Map implements BoxedMapper.
func (f *FuncMapper) Map(ctx *BoxedContext, kv KeyValue) { f.OnMap(ctx, kv) }

// FuncReducer adapts plain functions to the BoxedReducer interface.
type FuncReducer struct {
	OnConfigure func(m, r, taskIndex int)
	OnReduce    func(ctx *BoxedContext, key any, values []KeyValue)
}

// Configure implements BoxedReducer.
func (f *FuncReducer) Configure(m, r, taskIndex int) {
	if f.OnConfigure != nil {
		f.OnConfigure(m, r, taskIndex)
	}
}

// Reduce implements BoxedReducer.
func (f *FuncReducer) Reduce(ctx *BoxedContext, key any, values []KeyValue) {
	f.OnReduce(ctx, key, values)
}

// HashPartition is the default Hadoop-style partitioner: a stable hash of
// the key's string form modulo the number of reduce tasks. It is what the
// Basic strategy uses on the blocking key, and its collisions of large
// blocks onto one reduce task produce the peaks in Figure 10.
func HashPartition(s string, numReduceTasks int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32() % uint32(numReduceTasks))
}

// CompareStrings is a Compare function for plain string keys.
func CompareStrings(a, b any) int {
	sa, sb := a.(string), b.(string)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	default:
		return 0
	}
}

// CompareInts orders two ints.
func CompareInts(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// CompareInt64s orders two int64s.
func CompareInt64s(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
