package mapreduce

import (
	"runtime"
	"sync"
)

// Parallel stable sorting. The task hot paths (map-side bucket sort,
// combiner pre-sort, external spill-run sort) all funnel into the
// generic machinery below: a bottom-up stable merge sort that can split
// the input into contiguous chunks, sort the chunks on worker
// goroutines, and merge adjacent chunks pairwise — also in parallel,
// since the merges of one level touch disjoint regions of the array and
// of the shared scratch buffer.
//
// Correctness does not depend on the split: a stable sort's output is
// the unique permutation ordered by (comparator, original index), and
// chunked merging preserves stability because chunks are contiguous
// (every element of the left chunk precedes every element of the right
// chunk in the original order) and mergeRunsG takes from the left run
// on ties. So the parallel sort is bitwise-identical to the serial one
// for any chunk count, including the degenerate count of 1 — which is
// exactly the serial sort. See DESIGN.md ("Parallel sort").
//
// Concurrency is bounded per run, not per sort call: a run owns one
// sortLimiter sized by Engine.Parallelism, and every concurrent sort —
// across tasks and within one task — competes for the same helper
// tokens. A sort that finds no free token degrades to serial inline
// work instead of queueing, so total sort goroutines never exceed the
// engine's worker bound and small inputs never pay synchronization.

// parallelSortMin is the slice length below which chunking is not
// attempted: goroutine handoff costs more than sorting this many
// records inline.
const parallelSortMin = 2048

// sortLimiter is a token semaphore bounding the *extra* goroutines all
// sorts of one run may spawn (the calling goroutine is free). A nil
// limiter means serial sorting everywhere.
type sortLimiter struct {
	tokens chan struct{}
}

// newSortLimiter sizes the limiter from the engine's parallelism:
// workers-1 helper tokens, so sorting can use at most the same number
// of goroutines the task supervisor would. Parallelism 0 follows the
// supervisor's convention of "no fixed bound" and sizes by GOMAXPROCS;
// a single-worker engine gets a nil limiter (pure serial sorts).
func newSortLimiter(parallelism int) *sortLimiter {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	extra := workers - 1
	if extra <= 0 {
		return nil
	}
	l := &sortLimiter{tokens: make(chan struct{}, extra)}
	for i := 0; i < extra; i++ {
		l.tokens <- struct{}{}
	}
	return l
}

// tryAcquire grabs a helper token if one is free. Never blocks: callers
// that lose the race do the work inline.
func (l *sortLimiter) tryAcquire() bool {
	if l == nil {
		return false
	}
	select {
	case <-l.tokens:
		return true
	default:
		return false
	}
}

func (l *sortLimiter) release() {
	l.tokens <- struct{}{}
}

// insertionSortG is a stable insertion sort (equal keys never swap).
func insertionSortG[T any](a []T, cmp func(x, y *T) int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && cmp(&a[j], &a[j-1]) < 0; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// mergeRunsG merges the two adjacent sorted runs a[:mid] and a[mid:] in
// place, taking from the left run on ties (stability). The left run is
// staged in scratch (which must hold at least mid elements); the merged
// output is written from the front of a, which can never overtake the
// unread part of the right run.
func mergeRunsG[T any](a []T, mid int, scratch []T, cmp func(x, y *T) int) {
	if cmp(&a[mid-1], &a[mid]) <= 0 {
		return // already in order
	}
	left := scratch[:mid]
	copy(left, a[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if cmp(&a[j], &left[i]) < 0 {
			a[k] = a[j]
			j++
		} else {
			a[k] = left[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = left[i]
		i++
		k++
	}
}

// stableSortSerialG sorts a with the classic insertion-run + bottom-up
// merge scheme. scratch must hold at least len(a) elements.
func stableSortSerialG[T any](a, scratch []T, cmp func(x, y *T) int) {
	n := len(a)
	if n < 2 {
		return
	}
	if n <= insertionRun {
		insertionSortG(a, cmp)
		return
	}
	for lo := 0; lo < n; lo += insertionRun {
		hi := min(lo+insertionRun, n)
		insertionSortG(a[lo:hi], cmp)
	}
	for width := insertionRun; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			hi := min(lo+2*width, n)
			mergeRunsG(a[lo:hi], width, scratch[lo:lo+width], cmp)
		}
	}
}

// stableSortParallelG sorts a, splitting across helper goroutines when
// the limiter has free tokens. scratch must hold at least len(a)
// elements; chunk sorts and level merges slice disjoint regions out of
// it, so one buffer serves every worker. Output is bitwise-identical to
// stableSortSerialG (see the file comment for the argument).
func stableSortParallelG[T any](a, scratch []T, lim *sortLimiter, cmp func(x, y *T) int) {
	n := len(a)
	if n < parallelSortMin || lim == nil {
		stableSortSerialG(a, scratch, cmp)
		return
	}
	// Grab helper tokens greedily, but never cut chunks below the
	// serial threshold: each extra worker must have a full chunk's
	// worth of records to be worth its handoff.
	helpers := 0
	maxHelpers := n/parallelSortMin - 1
	for helpers < maxHelpers && lim.tryAcquire() {
		helpers++
	}
	if helpers == 0 {
		stableSortSerialG(a, scratch, cmp)
		return
	}
	defer func() {
		for i := 0; i < helpers; i++ {
			lim.release()
		}
	}()

	chunks := helpers + 1
	width := (n + chunks - 1) / chunks
	// Sort the chunks concurrently: helpers take one chunk each, the
	// calling goroutine keeps the last.
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += width {
		hi := min(lo+width, n)
		if hi-lo < 2 {
			continue
		}
		if lo+width < n { // not the last chunk: hand to a helper
			wg.Add(1)
			go func(c, s []T) {
				defer wg.Done()
				stableSortSerialG(c, s, cmp)
			}(a[lo:hi], scratch[lo:hi])
		} else {
			stableSortSerialG(a[lo:hi], scratch[lo:hi], cmp)
		}
	}
	wg.Wait()
	// Merge adjacent chunks pairwise, doubling the width per level.
	// Merges within a level write disjoint [lo, hi) regions of a and
	// stage their left runs in disjoint scratch[lo:lo+w] regions, so
	// they run concurrently; the last merge of each level stays on the
	// calling goroutine.
	for w := width; w < n; w *= 2 {
		last := -1
		for lo := 0; lo+w < n; lo += 2 * w {
			last = lo
		}
		for lo := 0; lo+w < n; lo += 2 * w {
			hi := min(lo+2*w, n)
			if lo != last {
				wg.Add(1)
				go func(region, s []T) {
					defer wg.Done()
					mergeRunsG(region, w, s, cmp)
				}(a[lo:hi], scratch[lo:lo+w])
			} else {
				mergeRunsG(a[lo:hi], w, scratch[lo:lo+w], cmp)
			}
		}
		wg.Wait()
	}
}
