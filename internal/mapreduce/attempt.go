package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file is the task-attempt supervision layer shared by all three
// dataflows (typed, boxed, external). Every map and reduce task executes
// as a sequence of *attempts*: a panic or error inside one attempt fails
// only that attempt, the RetryPolicy decides whether and when the task
// re-runs, and straggling tasks can be speculatively duplicated — the
// first attempt to finish commits, the loser is cancelled. Correctness
// under retries and duplicate attempts rests on a task-commit protocol:
// an attempt accumulates all of its observable output (records, side
// output, metrics) privately and the supervisor publishes it atomically
// on commit, so a failed, retried, or superseded attempt leaves no trace
// in the Result. See DESIGN.md ("Fault tolerance").

// Defaults of the zero-value RetryPolicy. They are deliberately small:
// the engine runs in-process, so "rack-local re-fetch" style backoffs
// would only slow tests down.
const (
	// DefaultMaxAttempts is the per-task attempt budget when
	// RetryPolicy.MaxAttempts is zero.
	DefaultMaxAttempts = 3
	// DefaultBaseBackoff/DefaultMaxBackoff bound the capped exponential
	// backoff between attempts.
	DefaultBaseBackoff = 2 * time.Millisecond
	DefaultMaxBackoff  = 250 * time.Millisecond
	// DefaultSpeculativeInterval is how often the straggler monitor
	// re-inspects running tasks; DefaultSpeculativeMinAge is the minimum
	// task age before a backup may launch (guards against duplicating
	// sub-millisecond tasks whose median is noise).
	DefaultSpeculativeInterval = 5 * time.Millisecond
	DefaultSpeculativeMinAge   = 100 * time.Millisecond
)

// RetryPolicy governs task re-execution. The zero value enables retries
// with the defaults above and disables per-attempt timeouts and
// speculative execution.
type RetryPolicy struct {
	// MaxAttempts is the attempt budget per task (0 = DefaultMaxAttempts,
	// 1 = fail on the first error, Hadoop's mapred.map.max.attempts).
	// A speculative backup gets one attempt of its own on top.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// before attempt n+1: base·2^(n-1) capped at MaxBackoff, then
	// jittered into [d/2, d] with a deterministic hash of
	// (Seed, phase, task, attempt) — retries of different tasks decohere
	// without a global randomness source.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the backoff jitter (and nothing else); runs with equal
	// seeds back off identically.
	Seed uint64
	// TaskTimeout, when > 0, bounds each attempt's wall-clock time. A
	// timed-out attempt fails with context.DeadlineExceeded, which is
	// retryable; task loops observe the deadline between input records.
	TaskTimeout time.Duration
	// Retryable classifies attempt errors: false means the error is
	// terminal and fails the run immediately. nil retries everything
	// except errors marked with Fatal and run-context cancellation.
	Retryable func(error) bool
	// SpeculativeSlowdown enables speculative execution when > 0: a task
	// running longer than SpeculativeSlowdown × the median duration of
	// completed same-phase tasks gets one backup attempt; the first
	// finisher commits and the loser is cancelled via its context
	// (Hadoop's single-backup policy; this is the one implementation —
	// the cluster simulator no longer carries its own copy).
	SpeculativeSlowdown float64
	// SpeculativeInterval is the monitor's polling period
	// (0 = DefaultSpeculativeInterval).
	SpeculativeInterval time.Duration
	// SpeculativeMinAge is the minimum age before a task can be backed
	// up (0 = DefaultSpeculativeMinAge).
	SpeculativeMinAge time.Duration
}

func (p *RetryPolicy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (p *RetryPolicy) baseBackoff() time.Duration {
	if p.BaseBackoff > 0 {
		return p.BaseBackoff
	}
	return DefaultBaseBackoff
}

func (p *RetryPolicy) maxBackoff() time.Duration {
	if p.MaxBackoff > 0 {
		return p.MaxBackoff
	}
	return DefaultMaxBackoff
}

func (p *RetryPolicy) specInterval() time.Duration {
	if p.SpeculativeInterval > 0 {
		return p.SpeculativeInterval
	}
	return DefaultSpeculativeInterval
}

func (p *RetryPolicy) specMinAge() time.Duration {
	if p.SpeculativeMinAge > 0 {
		return p.SpeculativeMinAge
	}
	return DefaultSpeculativeMinAge
}

func (p *RetryPolicy) retryable(err error) bool {
	if isFatal(err) {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return true
}

// backoffFor returns the sleep before re-running a task after `failed`
// failed attempts: capped exponential growth with deterministic
// half-interval jitter (always in [d/2, d]).
func (p *RetryPolicy) backoffFor(phase TaskKind, task, failed int) time.Duration {
	d, cap := p.baseBackoff(), p.maxBackoff()
	for i := 1; i < failed && d < cap; i++ {
		d *= 2
	}
	if d > cap || d <= 0 {
		d = cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	h := splitmix64(p.Seed ^ uint64(phase)<<62 ^ uint64(task)<<20 ^ uint64(failed))
	return half + time.Duration(h%uint64(half)+1)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed integer hash used for backoff jitter and the chaos
// hook's per-site fault decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TaskError is the terminal failure of one task: the phase and index it
// belongs to, the attempt that failed last, and the underlying cause.
// Both retry exhaustion and fatal (non-retryable) errors surface as a
// *TaskError inside the job-level error, so callers can errors.As it
// out and inspect where the run died.
type TaskError struct {
	Phase   TaskKind
	Task    int
	Attempt int
	Cause   error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("%s task %d (attempt %d): %v", e.Phase, e.Task, e.Attempt, e.Cause)
}

func (e *TaskError) Unwrap() error { return e.Cause }

// fatalError marks an error as non-retryable regardless of the policy's
// Retryable classifier.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// Fatal marks err as non-retryable: an attempt failing with a
// Fatal-wrapped error fails its task on the spot, retry budget
// notwithstanding. The engine uses it for deterministic user-logic bugs
// (an out-of-range Partition function) that re-running cannot fix.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &fatalError{err: err}
}

func isFatal(err error) bool {
	var f *fatalError
	return errors.As(err, &f)
}

// FaultPoint identifies where in an attempt's lifecycle a FaultHook
// fires.
type FaultPoint int

const (
	// FaultTaskStart fires once when an attempt starts, before any user
	// code runs.
	FaultTaskStart FaultPoint = iota
	// FaultEmit fires on every Emit of the attempt's map/combine/reduce
	// context.
	FaultEmit
	// FaultSpill fires before the external dataflow writes a sorted run
	// to disk.
	FaultSpill
	// FaultMerge fires before a reduce (or map-side combine) merge
	// starts consuming its sources.
	FaultMerge
)

func (p FaultPoint) String() string {
	switch p {
	case FaultTaskStart:
		return "task-start"
	case FaultEmit:
		return "emit"
	case FaultSpill:
		return "spill"
	case FaultMerge:
		return "merge"
	}
	return fmt.Sprintf("FaultPoint(%d)", int(p))
}

// FaultHook injects deterministic faults for testing. It is called at
// the instrumented points of every attempt with the attempt's identity;
// a non-nil return value fails the attempt with that error (wrap with
// Fatal to make the failure terminal). ctx is the attempt's context —
// hooks that sleep (straggler injection) must select on ctx.Done() so a
// losing attempt cancels promptly. Hooks run on task goroutines and
// must be safe for concurrent use.
type FaultHook func(ctx context.Context, phase TaskKind, task, attempt int, point FaultPoint) error

// taskHook binds the engine's FaultHook to one attempt's identity.
// Contexts carry a *taskHook (nil when no hook is installed), so fault
// injection costs one nil check per emit when disabled.
type taskHook struct {
	hook    FaultHook
	ctx     context.Context
	phase   TaskKind
	task    int
	attempt int
}

// fire invokes the hook at an error-returning point; nil receiver means
// no hook installed.
func (h *taskHook) fire(point FaultPoint) error {
	if h == nil {
		return nil
	}
	return h.hook(h.ctx, h.phase, h.task, h.attempt, point)
}

// fireEmit invokes the hook at an emit site. Emit has no error channel,
// so an injected error travels as an injectedFault panic, which
// recoverAttempt translates back into the attempt's error — exercising
// the same recovery path a panic in user code takes.
func (h *taskHook) fireEmit() {
	if h == nil {
		return
	}
	if err := h.hook(h.ctx, h.phase, h.task, h.attempt, FaultEmit); err != nil {
		panic(injectedFault{err: err})
	}
}

// injectedFault carries a hook-injected error through user stack frames.
type injectedFault struct{ err error }

// recoverAttempt is deferred at the top of every attempt runner: a panic
// in user Map/Reduce/Combine code (or an injected fault) becomes the
// attempt's error instead of killing the process.
func recoverAttempt(err *error) {
	if p := recover(); p != nil {
		if f, ok := p.(injectedFault); ok {
			*err = f.err
			return
		}
		*err = fmt.Errorf("panic: %v", p)
	}
}

// cancelCheckMask gates the in-attempt cancellation/deadline polls: task
// loops check their context every (mask+1) records, and only when the
// context is cancellable at all.
const cancelCheckMask = 63

// attemptStats is one phase's attempt accounting, merged into
// Metrics after the phase completes.
type attemptStats struct {
	attempts     int64
	retries      int64
	specLaunched int64
	specWon      int64
}

// taskOps is the phase-specific half of the supervisor: how to run one
// attempt, publish a winner, and release a loser. Implementations are
// passed by pointer, so the interface conversion never allocates — the
// typed fast path embeds both its ops and its supervisor in runState
// and pays zero allocations for supervision.
type taskOps[T any] interface {
	// runTaskAttempt executes one attempt. It must keep all observable
	// output private to the attempt and clean up its own resources on
	// error.
	runTaskAttempt(ctx context.Context, hook *taskHook, task, attempt int) (T, error)
	// commitTask publishes a winning attempt's output; it is called at
	// most once per task. A commit error is terminal for the task.
	commitTask(task int, out T) error
	// discardOut releases the output of a completed attempt that lost a
	// speculation race and will never be committed.
	discardOut(out T)
}

// taskSupervisor executes one phase's tasks as supervised attempt
// sequences. T is the attempt-private output type a successful attempt
// hands to commit. A supervisor is single-use: init it, run one phase
// through supervise, read stats.
type taskSupervisor[T any] struct {
	e           *Engine
	pol         *RetryPolicy
	phase       TaskKind
	maxAttempts int
	ops         taskOps[T]

	// obs mirrors e.Obs; nil disables every trace/metric site below at
	// the cost of one nil check. jobID is the interned trace id of the
	// running job; started counts tasks handed to runOne, reconciling
	// the tasks-pending gauge when a phase aborts early.
	obs     *obs.Observer
	jobID   uint32
	started atomic.Int64

	stats attemptStats
	board *specBoard

	// First failed task in task order — the phase's reported error.
	// (Tracking the minimum beats an n-sized error slice: supervision
	// stays allocation-free on the fault-free path.)
	errMu     sync.Mutex
	firstErr  error
	firstTask int
}

// init prepares the supervisor for one phase. Kept separate from
// supervise so callers on the hot path can embed the supervisor in an
// existing allocation instead of constructing one per phase.
func (sv *taskSupervisor[T]) init(e *Engine, phase TaskKind, jobID uint32, ops taskOps[T]) {
	sv.e = e
	sv.pol = &e.Retry
	sv.phase = phase
	sv.maxAttempts = e.Retry.maxAttempts()
	sv.ops = ops
	sv.obs = e.Obs
	sv.jobID = jobID
	sv.firstTask = -1
	sv.firstErr = nil
}

// record emits one trace event stamped with the supervisor's job and
// phase identity. Callers guard on sv.obs themselves when they bundle
// metric updates; record alone is safe to call either way.
func (sv *taskSupervisor[T]) record(typ obs.EventType, kind obs.Kind, task, attempt int32, arg int64) {
	if sv.obs == nil {
		return
	}
	sv.obs.Tracer.Record(obs.Event{
		Type: typ, Kind: kind,
		Phase: obs.PhaseOf(int(sv.phase)), Job: sv.jobID,
		Task: task, Attempt: attempt, Arg: arg,
	})
}

// supervise runs n tasks of the phase under the engine's RetryPolicy,
// with the same bounded parallelism as forEachTask. It returns the
// phase's attempt statistics and the first failed task's error in task
// order (a *TaskError, or the context error when the run was
// cancelled).
func (sv *taskSupervisor[T]) supervise(ctx context.Context, n int) (attemptStats, error) {
	if o := sv.obs; o != nil {
		sv.record(obs.EvBegin, obs.KPhase, -1, 0, int64(n))
		o.Engine.TasksPending.Add(int64(n))
		defer func() {
			// Tasks never started (early abort) leave the pending gauge;
			// started ones already decremented themselves in runOne.
			o.Engine.TasksPending.Add(sv.started.Load() - int64(n))
			sv.record(obs.EvEnd, obs.KPhase, -1, 0, int64(n))
		}()
	}
	if sv.pol.SpeculativeSlowdown > 0 {
		sv.board = &specBoard{running: make(map[int]*specTask, n)}
		stop := make(chan struct{})
		var mwg sync.WaitGroup
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			sv.monitor(ctx, stop)
		}()
		sv.e.forEachTask(ctx, n, sv)
		close(stop)
		mwg.Wait()
	} else {
		sv.e.forEachTask(ctx, n, sv)
	}
	return sv.stats, sv.firstErr
}

// runOne is the taskRunner hook forEachTask drives: it dispatches to
// the plain or speculative retry loop and records the failure of the
// lowest-numbered failed task.
func (sv *taskSupervisor[T]) runOne(ctx context.Context, task int) {
	var begun time.Time
	if o := sv.obs; o != nil {
		sv.started.Add(1)
		o.Engine.TasksPending.Add(-1)
		sv.record(obs.EvBegin, obs.KTask, int32(task), 0, 0)
		begun = time.Now()
	}
	var err error
	if sv.board != nil {
		err = sv.runSpecTask(ctx, task)
	} else {
		err = sv.runPlainTask(ctx, task)
	}
	if o := sv.obs; o != nil {
		var failed int64
		if err != nil {
			failed = 1
		}
		sv.record(obs.EvEnd, obs.KTask, int32(task), 0, failed)
		if err == nil {
			// The per-task duration histograms feed the load-imbalance
			// view (max/mean task time); failed tasks would skew it.
			d := int64(time.Since(begun))
			if sv.phase == MapTask {
				o.Engine.MapTaskNS.Observe(d)
			} else {
				o.Engine.ReduceTaskNS.Observe(d)
			}
		}
	}
	if err != nil {
		sv.errMu.Lock()
		if sv.firstTask == -1 || task < sv.firstTask {
			sv.firstTask, sv.firstErr = task, err
		}
		sv.errMu.Unlock()
	}
}

// funcTaskOps adapts free functions to taskOps for the call sites that
// build their phases from closures (boxed and external dataflows).
type funcTaskOps[T any] struct {
	run     func(ctx context.Context, hook *taskHook, task, attempt int) (T, error)
	commit  func(task int, out T) error
	discard func(out T)
}

func (o *funcTaskOps[T]) runTaskAttempt(ctx context.Context, hook *taskHook, task, attempt int) (T, error) {
	return o.run(ctx, hook, task, attempt)
}
func (o *funcTaskOps[T]) commitTask(task int, out T) error { return o.commit(task, out) }
func (o *funcTaskOps[T]) discardOut(out T)                 { o.discard(out) }

// superviseTasks is the closure-based entry point over
// taskSupervisor.supervise, used by the boxed and external dataflows.
func superviseTasks[T any](
	ctx context.Context,
	e *Engine,
	phase TaskKind,
	jobID uint32,
	n int,
	run func(ctx context.Context, hook *taskHook, task, attempt int) (T, error),
	commit func(task int, out T) error,
	discard func(out T),
) (attemptStats, error) {
	sv := &taskSupervisor[T]{}
	sv.init(e, phase, jobID, &funcTaskOps[T]{run: run, commit: commit, discard: discard})
	return sv.supervise(ctx, n)
}

// runAttempt executes one attempt: per-attempt deadline, fault-hook
// binding, and attempt accounting.
func (sv *taskSupervisor[T]) runAttempt(ctx context.Context, task, attempt int) (T, error) {
	atomic.AddInt64(&sv.stats.attempts, 1)
	if o := sv.obs; o != nil {
		// The attempt-span count reconciles exactly with Metrics.Attempts:
		// both increments sit on this one code path.
		o.Engine.Attempts.Inc()
		o.Engine.Inflight.Add(1)
		sv.record(obs.EvBegin, obs.KAttempt, int32(task), int32(attempt), 0)
	}
	actx := ctx
	var cancel context.CancelFunc
	if sv.pol.TaskTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, sv.pol.TaskTimeout)
	}
	var hook *taskHook
	if sv.e.FaultHook != nil {
		hook = &taskHook{hook: sv.e.FaultHook, ctx: actx, phase: sv.phase, task: task, attempt: attempt}
	}
	out, err := sv.ops.runTaskAttempt(actx, hook, task, attempt)
	if cancel != nil {
		cancel()
	}
	if o := sv.obs; o != nil {
		o.Engine.Inflight.Add(-1)
		var failed int64
		if err != nil {
			failed = 1
		}
		sv.record(obs.EvEnd, obs.KAttempt, int32(task), int32(attempt), failed)
	}
	return out, err
}

// runPlainTask is the non-speculative retry loop: attempts run
// back-to-back with backoff until one commits, the budget is exhausted,
// the error is classified non-retryable, or the run is cancelled.
func (sv *taskSupervisor[T]) runPlainTask(ctx context.Context, task int) error {
	for failed := 0; ; {
		attempt := failed + 1
		out, err := sv.runAttempt(ctx, task, attempt)
		if err == nil {
			if cerr := sv.ops.commitTask(task, out); cerr != nil {
				return &TaskError{Phase: sv.phase, Task: task, Attempt: attempt, Cause: cerr}
			}
			if o := sv.obs; o != nil {
				o.Engine.Commits.Inc()
				sv.record(obs.EvInstant, obs.KCommit, int32(task), int32(attempt), 0)
			}
			return nil
		}
		if ctx.Err() != nil {
			// Run cancelled: the attempt's failure is a consequence, not
			// a task fault — surface the cancellation unclassified.
			return ctx.Err()
		}
		failed++
		if failed >= sv.maxAttempts || !sv.pol.retryable(err) {
			return &TaskError{Phase: sv.phase, Task: task, Attempt: attempt, Cause: err}
		}
		atomic.AddInt64(&sv.stats.retries, 1)
		backoff := sv.pol.backoffFor(sv.phase, task, failed)
		if o := sv.obs; o != nil {
			o.Engine.Retries.Inc()
			sv.record(obs.EvInstant, obs.KRetry, int32(task), int32(attempt), int64(backoff))
		}
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
	}
}

// sleepCtx sleeps for d, returning false if ctx is done first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ---- speculative execution ----

// specBoard is the straggler monitor's shared view of one phase:
// durations of committed tasks (median source) and the currently
// running primaries.
type specBoard struct {
	mu        sync.Mutex
	durations []time.Duration
	running   map[int]*specTask
}

// specTask coordinates one task's primary attempt line with its (at
// most one) speculative backup.
type specTask struct {
	task  int
	start time.Time
	// primaryCancel aborts the primary's in-flight attempt when the
	// backup wins; immutable after registration.
	primaryCancel context.CancelFunc
	// backupCancel (guarded by the board mutex) aborts the backup when
	// the primary wins; backupLaunched flips once, under the same lock.
	backupCancel   context.CancelFunc
	backupLaunched bool
	backupWG       sync.WaitGroup
	// won flips once, by the attempt that commits.
	won atomic.Bool
	// seq hands out attempt numbers shared between the lines.
	seq atomic.Int64
	// commitErr records a failed commit (terminal), guarded by won:
	// only the winning attempt writes it, before the loser can observe
	// won via join.
	commitErr error
}

// runSpecTask is runPlainTask's speculative counterpart: the primary
// retry loop runs under a cancellable context registered on the board,
// and the task only settles after any backup attempt has been joined.
func (sv *taskSupervisor[T]) runSpecTask(ctx context.Context, task int) error {
	st := &specTask{task: task, start: time.Now()}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	st.primaryCancel = pcancel
	b := sv.board
	b.mu.Lock()
	b.running[task] = st
	b.mu.Unlock()

	perr := sv.primaryLoop(pctx, ctx, st)

	b.mu.Lock()
	delete(b.running, task)
	b.mu.Unlock()
	// A backup launched before deregistration must finish before the
	// task settles (and before the phase returns — no goroutine leaks).
	st.backupWG.Wait()
	if st.won.Load() {
		if st.commitErr != nil {
			return &TaskError{Phase: sv.phase, Task: task, Attempt: int(st.seq.Load()), Cause: st.commitErr}
		}
		return nil
	}
	return perr
}

// primaryLoop is the retry loop of the task's original execution line.
// actx is the cancellable primary context (cancelled by a winning
// backup); rctx the run context (cancellation of the whole run).
func (sv *taskSupervisor[T]) primaryLoop(actx, rctx context.Context, st *specTask) error {
	for failed := 0; ; {
		attempt := int(st.seq.Add(1))
		out, err := sv.runAttempt(actx, st.task, attempt)
		if err == nil {
			sv.finish(st, st.task, attempt, out, false)
			return nil
		}
		if st.won.Load() {
			return nil // superseded by the backup; our failure is moot
		}
		if rctx.Err() != nil {
			return rctx.Err()
		}
		if actx.Err() != nil {
			return nil // cancelled as the loser mid-race
		}
		failed++
		if failed >= sv.maxAttempts || !sv.pol.retryable(err) {
			return &TaskError{Phase: sv.phase, Task: st.task, Attempt: attempt, Cause: err}
		}
		atomic.AddInt64(&sv.stats.retries, 1)
		backoff := sv.pol.backoffFor(sv.phase, st.task, failed)
		if o := sv.obs; o != nil {
			o.Engine.Retries.Inc()
			sv.record(obs.EvInstant, obs.KRetry, int32(st.task), int32(attempt), int64(backoff))
		}
		if !sleepCtx(actx, backoff) {
			if rctx.Err() != nil {
				return rctx.Err()
			}
			return nil
		}
	}
}

// finish settles a successful attempt: the first finisher commits its
// output, records the task's duration for the straggler median, and
// cancels the competing attempt; any later finisher discards. Returns
// whether this attempt won.
func (sv *taskSupervisor[T]) finish(st *specTask, task, attempt int, out T, backup bool) bool {
	if !st.won.CompareAndSwap(false, true) {
		sv.ops.discardOut(out)
		return false
	}
	b := sv.board
	b.mu.Lock()
	other := st.backupCancel
	if backup {
		other = st.primaryCancel
	}
	launched := st.backupLaunched
	b.mu.Unlock()
	if other != nil {
		other()
	}
	if launched && sv.obs != nil {
		// A backup exists, so whichever line lost is being cancelled.
		sv.record(obs.EvInstant, obs.KSpecCancel, int32(task), int32(attempt), 0)
	}
	if err := sv.ops.commitTask(task, out); err != nil {
		st.commitErr = err
		return true
	}
	if o := sv.obs; o != nil {
		o.Engine.Commits.Inc()
		sv.record(obs.EvInstant, obs.KCommit, int32(task), int32(attempt), 0)
	}
	d := time.Since(st.start)
	b.mu.Lock()
	b.durations = append(b.durations, d)
	b.mu.Unlock()
	return true
}

// monitor wakes every SpeculativeInterval and launches backups for
// stragglers until the phase ends.
func (sv *taskSupervisor[T]) monitor(ctx context.Context, stop <-chan struct{}) {
	t := time.NewTicker(sv.pol.specInterval())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			sv.scanStragglers(ctx)
		}
	}
}

// scanStragglers launches one backup attempt for every running task
// older than max(SpeculativeSlowdown × median completed duration,
// SpeculativeMinAge). The backup gets a single attempt: if it fails,
// the primary's retry loop is still the task's execution of record.
func (sv *taskSupervisor[T]) scanStragglers(ctx context.Context) {
	b := sv.board
	now := time.Now()
	var launch []*specTask
	b.mu.Lock()
	if len(b.durations) > 0 {
		threshold := time.Duration(float64(medianDuration(b.durations)) * sv.pol.SpeculativeSlowdown)
		if minAge := sv.pol.specMinAge(); threshold < minAge {
			threshold = minAge
		}
		for _, st := range b.running {
			if !st.backupLaunched && !st.won.Load() && now.Sub(st.start) > threshold {
				st.backupLaunched = true
				st.backupWG.Add(1)
				launch = append(launch, st)
			}
		}
	}
	b.mu.Unlock()
	for _, st := range launch {
		bctx, bcancel := context.WithCancel(ctx)
		b.mu.Lock()
		st.backupCancel = bcancel
		b.mu.Unlock()
		atomic.AddInt64(&sv.stats.specLaunched, 1)
		if o := sv.obs; o != nil {
			// Reconciles with Metrics.SpeculativeLaunched (same path).
			o.Engine.SpecLaunched.Inc()
			sv.record(obs.EvInstant, obs.KSpecLaunch, int32(st.task), 0, 0)
		}
		go func(st *specTask, bctx context.Context, bcancel context.CancelFunc) {
			defer st.backupWG.Done()
			defer bcancel()
			attempt := int(st.seq.Add(1))
			out, err := sv.runAttempt(bctx, st.task, attempt)
			if err != nil {
				return
			}
			if sv.finish(st, st.task, attempt, out, true) {
				atomic.AddInt64(&sv.stats.specWon, 1)
				if o := sv.obs; o != nil {
					o.Engine.SpecWon.Inc()
					sv.record(obs.EvInstant, obs.KSpecWin, int32(st.task), int32(attempt), 0)
				}
			}
		}(st, bctx, bcancel)
	}
}

// medianDuration returns the median of ds (callers hold the board lock;
// ds is non-empty).
func medianDuration(ds []time.Duration) time.Duration {
	s := make([]time.Duration, len(ds))
	copy(s, ds)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// addStats merges one phase's attempt accounting into the run metrics.
func (m *Metrics) addStats(s attemptStats) {
	m.Attempts += s.attempts
	m.Retries += s.retries
	m.SpeculativeLaunched += s.specLaunched
	m.SpeculativeWon += s.specWon
}
