package mapreduce_test

// Differential tests of the remote-dispatch seam (Engine.Remote)
// against an in-process dispatcher: a distributed run must produce the
// same Result as the plain typed dataflow, a transient dispatch failure
// (a lost worker) must be retried through the normal attempt machinery,
// and ErrNoWorkers must degrade to local execution with a logged
// warning — in every case with a byte-identical Result.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/testleak"
)

func init() {
	// The word-count job's output type, shipped over the dispatcher
	// boundary as codec bytes.
	mapreduce.RegisterPairCodec[string, int]()
}

// localDispatcher executes dispatched attempts in-process through the
// same RemoteRunnable a worker would build, with the run files written
// directly at the master's replica paths. failMaps/failReduces inject
// transient dispatch errors (the "worker died mid-task" shape); down
// simulates an empty worker pool.
type localDispatcher struct {
	rr          mapreduce.RemoteRunnable
	down        bool
	failMaps    atomic.Int64
	failReduces atomic.Int64
}

func (d *localDispatcher) RunMapAttempt(ctx context.Context, m, task, attempt int, input []byte, inputCount int, replicaPath string) (*mapreduce.RemoteMapResult, error) {
	if d.down {
		return nil, mapreduce.ErrNoWorkers
	}
	if d.failMaps.Add(-1) >= 0 {
		return nil, fmt.Errorf("map task %d: worker lost", task)
	}
	return d.rr.ExecRemoteMap(ctx, m, task, attempt, input, inputCount, replicaPath)
}

func (d *localDispatcher) RunReduceAttempt(ctx context.Context, m, task, attempt int, runs []mapreduce.RemoteRun) (*mapreduce.RemoteReduceResult, error) {
	if d.down {
		return nil, mapreduce.ErrNoWorkers
	}
	if d.failReduces.Add(-1) >= 0 {
		return nil, fmt.Errorf("reduce task %d: worker lost", task)
	}
	var srcs []mapreduce.SegmentSource
	for _, run := range runs {
		if run.Info == nil || run.Info.Segments[task].Records == 0 {
			continue
		}
		f, err := os.Open(run.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		srcs = append(srcs, mapreduce.SegmentSource{R: f, Seg: run.Info.Segments[task], Path: run.Path})
	}
	return d.rr.ExecRemoteReduce(ctx, m, task, attempt, srcs)
}

func TestRemoteDispatchMatchesLocal(t *testing.T) {
	const m, r = 3, 4
	input := wordInput(m)
	for _, combine := range []bool{false, true} {
		t.Run(fmt.Sprintf("combine=%v", combine), func(t *testing.T) {
			baseline, err := wordJob(r, combine).Run(&mapreduce.Engine{}, input)
			if err != nil {
				t.Fatal(err)
			}
			normalize(baseline)
			before := testleak.Snapshot()
			rr, err := mapreduce.NewRemoteRunnable(wordJob(r, combine))
			if err != nil {
				t.Fatal(err)
			}
			e := &mapreduce.Engine{Parallelism: 2, TmpDir: t.TempDir(), Remote: &localDispatcher{rr: rr}}
			res, err := wordJob(r, combine).Run(e, input)
			if err != nil {
				t.Fatal(err)
			}
			testleak.Check(t, before)
			normalize(res)
			if !reflect.DeepEqual(res, baseline) {
				t.Fatal("remote-dispatched run diverges from local typed run")
			}
			if ents, _ := os.ReadDir(e.TmpDir); len(ents) != 0 {
				t.Fatalf("replica dir not cleaned: %v", ents)
			}
		})
	}
}

func TestRemoteDispatchErrorRetried(t *testing.T) {
	const m, r = 3, 4
	input := wordInput(m)
	baseline, err := wordJob(r, false).Run(&mapreduce.Engine{}, input)
	if err != nil {
		t.Fatal(err)
	}
	normalize(baseline)
	before := testleak.Snapshot()
	rr, err := mapreduce.NewRemoteRunnable(wordJob(r, false))
	if err != nil {
		t.Fatal(err)
	}
	d := &localDispatcher{rr: rr}
	d.failMaps.Store(1)    // first map dispatch dies
	d.failReduces.Store(1) // first reduce dispatch dies
	e := &mapreduce.Engine{Parallelism: 2, TmpDir: t.TempDir(), Remote: d}
	e.Retry.BaseBackoff = 1
	res, err := wordJob(r, false).Run(e, input)
	if err != nil {
		t.Fatal(err)
	}
	testleak.Check(t, before)
	if res.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (one lost map, one lost reduce)", res.Retries)
	}
	normalize(res)
	if !reflect.DeepEqual(res, baseline) {
		t.Fatal("run with lost-worker retries diverges from local typed run")
	}
}

func TestRemoteNoWorkersDegradesToLocal(t *testing.T) {
	const m, r = 3, 4
	input := wordInput(m)
	baseline, err := wordJob(r, false).Run(&mapreduce.Engine{}, input)
	if err != nil {
		t.Fatal(err)
	}
	normalize(baseline)
	before := testleak.Snapshot()
	var logs atomic.Int64
	var lastLog atomic.Value
	e := &mapreduce.Engine{
		Parallelism: 2,
		TmpDir:      t.TempDir(),
		Remote:      &localDispatcher{down: true},
		Log: obs.LogfLogger(slog.LevelDebug, func(format string, args ...any) {
			logs.Add(1)
			lastLog.Store(fmt.Sprintf(format, args...))
		}),
	}
	res, err := wordJob(r, false).Run(e, input)
	if err != nil {
		t.Fatal(err)
	}
	testleak.Check(t, before)
	if logs.Load() == 0 {
		t.Fatal("degrading to local execution logged no warning")
	}
	if msg, _ := lastLog.Load().(string); !strings.Contains(msg, "local") {
		t.Fatalf("degradation warning %q does not mention local execution", msg)
	}
	// Degraded execution must not surface the pool emptiness as an error.
	if errors.Is(err, mapreduce.ErrNoWorkers) {
		t.Fatal("ErrNoWorkers leaked out of a degraded run")
	}
	normalize(res)
	if !reflect.DeepEqual(res, baseline) {
		t.Fatal("degraded-to-local run diverges from local typed run")
	}
}
