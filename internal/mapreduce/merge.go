package mapreduce

import "sync"

// kvMerger streams the k-way merge of pre-sorted spill buckets that
// forms a reduce task's input. It is a binary min-heap of run indexes
// keyed by (Compare(head key), run index); the run-index tie-break pops
// equal keys in map-task order, which makes the merged stream identical
// to concatenating the runs in map-task order and stable-sorting — the
// Hadoop merge semantics BlockSplit's reduce function depends on (see
// DESIGN.md).
//
// Each next() costs O(log k) comparator calls for k live runs, so a full
// merge is O(N log k) versus the O(N log N) of re-sorting the
// concatenated input, and it needs no N-sized materialization at all.
type kvMerger struct {
	cmp  func(a, b any) int
	runs [][]KeyValue // advanced in place as records are popped
	heap []int32      // indexes into runs; min-heap by (head key, index)
}

var kvMergerPool = sync.Pool{New: func() any { return new(kvMerger) }}

// newKVMerger builds a merger over the given non-empty sorted runs,
// which must be listed in map-task order.
func newKVMerger(runs [][]KeyValue, cmp func(a, b any) int) *kvMerger {
	m := kvMergerPool.Get().(*kvMerger)
	m.cmp = cmp
	m.runs = runs
	if cap(m.heap) < len(runs) {
		m.heap = make([]int32, len(runs))
	}
	m.heap = m.heap[:len(runs)]
	for i := range m.heap {
		m.heap[i] = int32(i)
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}

// release returns the merger to the pool once the merge is drained.
func (m *kvMerger) release() {
	m.cmp = nil
	m.runs = nil
	m.heap = m.heap[:0]
	kvMergerPool.Put(m)
}

// less orders run x before run y by head key, breaking ties by run index
// (= map-task order): the stability guarantee.
func (m *kvMerger) less(x, y int32) bool {
	if c := m.cmp(m.runs[x][0].Key, m.runs[y][0].Key); c != 0 {
		return c < 0
	}
	return x < y
}

func (m *kvMerger) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		s := l
		if r := l + 1; r < n && m.less(h[r], h[l]) {
			s = r
		}
		if !m.less(h[s], h[i]) {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// next pops the globally smallest remaining record. The second return is
// false once all runs are drained.
func (m *kvMerger) next() (KeyValue, bool) {
	if len(m.heap) == 0 {
		return KeyValue{}, false
	}
	r := m.heap[0]
	run := m.runs[r]
	kv := run[0]
	if len(run) > 1 {
		m.runs[r] = run[1:]
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	if len(m.heap) > 1 {
		m.siftDown(0)
	}
	return kv, true
}
