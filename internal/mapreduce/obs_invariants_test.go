package mapreduce_test

// Trace-invariant suite: structural properties every recorded timeline
// must satisfy, checked on chaos runs across all three dataflows and on
// a speculative run. The invariants are the contract DESIGN.md's
// "Observability" section states:
//
//  1. Pairing — every End event has a matching Begin with the same
//     (kind, phase, job, task, attempt, worker) identity, and no span
//     is left open when the run returns.
//  2. Nesting — attempt spans lie inside their task span, task spans
//     inside their phase span, phase spans inside the job span (by
//     timestamp containment).
//  3. Reconciliation — span/instant counts equal the engine's metric
//     counters AND the Result's execution-history fields byte-exactly:
//     the trace, the registry, and the Result are three views of the
//     same ledger.
import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/testleak"
)

// traceStats is everything the invariant checks need from one pass over
// the event buffer.
type traceStats struct {
	begins   map[obs.Kind]int64
	instants map[obs.Kind]int64
	// intervals by span identity, for the nesting checks
	jobs     map[uint32][2]int64
	phases   map[[2]uint32][2]int64 // {job, phase}
	tasks    map[[3]int64][2]int64  // {job, phase, task}
	attempts map[[4]int64][2]int64  // {job, phase, task, attempt}
}

type openKey struct {
	kind    obs.Kind
	phase   uint8
	job     uint32
	task    int32
	attempt int32
	worker  int32
}

// checkPairing walks the buffer once: every End must pop a matching
// Begin (LIFO per identity), and at the end of the walk every stack
// must be empty. It returns the counters and intervals the other
// invariants consume.
func checkPairing(t *testing.T, events []obs.Event) traceStats {
	t.Helper()
	st := traceStats{
		begins:   map[obs.Kind]int64{},
		instants: map[obs.Kind]int64{},
		jobs:     map[uint32][2]int64{},
		phases:   map[[2]uint32][2]int64{},
		tasks:    map[[3]int64][2]int64{},
		attempts: map[[4]int64][2]int64{},
	}
	open := map[openKey][]obs.Event{}
	for i, ev := range events {
		k := openKey{ev.Kind, ev.Phase, ev.Job, ev.Task, ev.Attempt, ev.Worker}
		switch ev.Type {
		case obs.EvBegin:
			st.begins[ev.Kind]++
			open[k] = append(open[k], ev)
		case obs.EvEnd:
			stack := open[k]
			if len(stack) == 0 {
				t.Fatalf("event %d: %s end with no open begin (%+v)", i, ev.Kind, ev)
			}
			begin := stack[len(stack)-1]
			open[k] = stack[:len(stack)-1]
			if ev.TS < begin.TS {
				t.Fatalf("event %d: %s span ends at %d before it begins at %d", i, ev.Kind, ev.TS, begin.TS)
			}
			iv := [2]int64{begin.TS, ev.TS}
			switch ev.Kind {
			case obs.KJob:
				st.jobs[ev.Job] = iv
			case obs.KPhase:
				st.phases[[2]uint32{ev.Job, uint32(ev.Phase)}] = iv
			case obs.KTask:
				st.tasks[[3]int64{int64(ev.Job), int64(ev.Phase), int64(ev.Task)}] = iv
			case obs.KAttempt:
				st.attempts[[4]int64{int64(ev.Job), int64(ev.Phase), int64(ev.Task), int64(ev.Attempt)}] = iv
			}
		case obs.EvInstant:
			st.instants[ev.Kind]++
		}
	}
	for k, stack := range open {
		if len(stack) != 0 {
			t.Fatalf("%d %s span(s) left open at end of run (task %d attempt %d)",
				len(stack), k.kind, k.task, k.attempt)
		}
	}
	return st
}

// contains reports whether inner ⊆ outer.
func contains(outer, inner [2]int64) bool {
	return inner[0] >= outer[0] && inner[1] <= outer[1]
}

// checkNesting asserts attempt ⊂ task ⊂ phase ⊂ job by timestamp
// containment, and that every level's parent interval exists.
func checkNesting(t *testing.T, st traceStats) {
	t.Helper()
	for pk, piv := range st.phases {
		jiv, ok := st.jobs[pk[0]]
		if !ok {
			t.Fatalf("phase %d has no job span (job id %d)", pk[1], pk[0])
		}
		if !contains(jiv, piv) {
			t.Fatalf("phase %d span %v escapes job span %v", pk[1], piv, jiv)
		}
	}
	for tk, tiv := range st.tasks {
		piv, ok := st.phases[[2]uint32{uint32(tk[0]), uint32(tk[1])}]
		if !ok {
			t.Fatalf("task %d has no phase span (phase %d)", tk[2], tk[1])
		}
		if !contains(piv, tiv) {
			t.Fatalf("task %d span %v escapes phase %d span %v", tk[2], tiv, tk[1], piv)
		}
	}
	for ak, aiv := range st.attempts {
		tiv, ok := st.tasks[[3]int64{ak[0], ak[1], ak[2]}]
		if !ok {
			t.Fatalf("attempt %d of task %d has no task span", ak[3], ak[2])
		}
		if !contains(tiv, aiv) {
			t.Fatalf("attempt %d span %v escapes task %d span %v", ak[3], aiv, ak[2], tiv)
		}
	}
}

// checkReconciliation asserts the three ledgers agree byte-exactly:
// trace counts == registry counters == Result execution history.
func checkReconciliation(t *testing.T, st traceStats, o *obs.Observer,
	res *mapreduce.Result[string, mapreduce.Pair[string, int]], m, r int) {
	t.Helper()
	eq := func(what string, trace, metric, result int64) {
		t.Helper()
		if trace != metric || trace != result {
			t.Fatalf("%s: trace=%d metric=%d result=%d — the three ledgers must agree",
				what, trace, metric, result)
		}
	}
	eq("attempts", st.begins[obs.KAttempt], o.Engine.Attempts.Value(), res.Attempts)
	eq("retries", st.instants[obs.KRetry], o.Engine.Retries.Value(), res.Retries)
	eq("speculative launches", st.instants[obs.KSpecLaunch], o.Engine.SpecLaunched.Value(), res.SpeculativeLaunched)
	eq("speculative wins", st.instants[obs.KSpecWin], o.Engine.SpecWon.Value(), res.SpeculativeWon)

	total := int64(m + r)
	if got := st.begins[obs.KTask]; got != total {
		t.Fatalf("task spans = %d, want %d (every task exactly one span, however many attempts)", got, total)
	}
	if got := st.instants[obs.KCommit]; got != total || o.Engine.Commits.Value() != total {
		t.Fatalf("commits: trace=%d metric=%d, want %d (exactly-once)", got, o.Engine.Commits.Value(), total)
	}
	if got := st.begins[obs.KJob]; got != 1 {
		t.Fatalf("job spans = %d, want 1", got)
	}
	if got := st.begins[obs.KPhase]; got != 2 {
		t.Fatalf("phase spans = %d, want 2 (map + reduce)", got)
	}
	// Liveness gauges must return to zero once the run is over.
	if v := o.Engine.Inflight.Value(); v != 0 {
		t.Fatalf("attempts_inflight = %d after run, want 0", v)
	}
	if v := o.Engine.TasksPending.Value(); v != 0 {
		t.Fatalf("tasks_pending = %d after run, want 0", v)
	}
	// Each committed task contributes exactly one duration observation.
	if c := o.Engine.MapTaskNS.Snapshot().Count; c != int64(m) {
		t.Fatalf("map_task_ns count = %d, want %d", c, m)
	}
	if c := o.Engine.ReduceTaskNS.Snapshot().Count; c != int64(r) {
		t.Fatalf("reduce_task_ns count = %d, want %d", c, r)
	}
}

func TestTraceInvariantsUnderChaos(t *testing.T) {
	const m, r = 4, 5
	input := wordInput(m)
	for dname, dataflow := range allDataflows {
		for _, seed := range []uint64{1, 7, 99} {
			t.Run(fmt.Sprintf("%s/seed=%d", dname, seed), func(t *testing.T) {
				before := testleak.Snapshot()
				e, _ := engineFor(t, dataflow)
				e.Obs = obs.New(obs.Options{Log: obs.Quiet()})
				e.Retry.BaseBackoff = time.Microsecond
				e.FaultHook = mapreduce.ChaosHook(seed, 0.3, 0)
				res, err := wordJob(r, dataflow == mapreduce.DataflowExternal).Run(e, input)
				if err != nil {
					t.Fatal(err)
				}
				testleak.Check(t, before)
				if res.Attempts == int64(m+r) {
					t.Logf("seed %d injected no faults; invariants still checked", seed)
				}
				if d := e.Obs.Tracer.Dropped(); d != 0 {
					t.Fatalf("tracer dropped %d events; invariants need the full timeline", d)
				}
				st := checkPairing(t, e.Obs.Tracer.Events())
				checkNesting(t, st)
				checkReconciliation(t, st, e.Obs, res, m, r)
			})
		}
	}
}

func TestTraceInvariantsUnderSpeculation(t *testing.T) {
	const m, r = 4, 4
	input := wordInput(m)
	for _, dname := range []string{"typed", "external"} {
		t.Run(dname, func(t *testing.T) {
			before := testleak.Snapshot()
			e, _ := engineFor(t, allDataflows[dname])
			e.Obs = obs.New(obs.Options{Log: obs.Quiet()})
			e.Retry = specPolicy()
			// Attempt 1 of map task 0 straggles until cancelled; only its
			// speculative backup can commit the task.
			e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
				if phase == mapreduce.MapTask && task == 0 && attempt == 1 && point == mapreduce.FaultTaskStart {
					<-ctx.Done()
					return ctx.Err()
				}
				return nil
			}
			res, err := wordJob(r, false).Run(e, input)
			if err != nil {
				t.Fatal(err)
			}
			testleak.Check(t, before)
			if res.SpeculativeLaunched < 1 || res.SpeculativeWon < 1 {
				t.Fatalf("speculation did not trigger (launched=%d won=%d)",
					res.SpeculativeLaunched, res.SpeculativeWon)
			}
			st := checkPairing(t, e.Obs.Tracer.Events())
			checkNesting(t, st)
			checkReconciliation(t, st, e.Obs, res, m, r)
			// The loser of the race must be visibly cancelled: one
			// spec-cancel instant per resolved race.
			if st.instants[obs.KSpecCancel] < 1 {
				t.Fatal("no spec-cancel instant recorded for the losing attempt")
			}
		})
	}
}

// TestTracerOverflowKeepsInvariants runs with a tracer far too small
// for the timeline and asserts the drop-newest policy's promise: the
// kept prefix still pairs cleanly (no End without its Begin), even
// though later spans are missing entirely.
func TestTracerOverflowKeepsPrefix(t *testing.T) {
	const m, r = 4, 5
	e := &mapreduce.Engine{Parallelism: 2}
	e.Obs = obs.New(obs.Options{TraceCapacity: 8, Log: obs.Quiet()})
	if _, err := wordJob(r, false).Run(e, wordInput(m)); err != nil {
		t.Fatal(err)
	}
	if e.Obs.Tracer.Dropped() == 0 {
		t.Fatal("capacity 8 must overflow on a real run")
	}
	if got := e.Obs.Tracer.Len(); got != 8 {
		t.Fatalf("Len = %d, want the full capacity 8", got)
	}
	// Walk the prefix: every End present must still find its Begin.
	open := map[openKey]int{}
	for i, ev := range e.Obs.Tracer.Events() {
		k := openKey{ev.Kind, ev.Phase, ev.Job, ev.Task, ev.Attempt, ev.Worker}
		switch ev.Type {
		case obs.EvBegin:
			open[k]++
		case obs.EvEnd:
			if open[k] == 0 {
				t.Fatalf("event %d: end without begin in kept prefix (%+v)", i, ev)
			}
			open[k]--
		}
	}
	// Counters keep the truth even when the trace is truncated.
	if e.Obs.Engine.Commits.Value() != m+r {
		t.Fatalf("commits metric = %d, want %d (metrics must not be ring-bounded)",
			e.Obs.Engine.Commits.Value(), m+r)
	}
}
