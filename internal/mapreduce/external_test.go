package mapreduce_test

// Engine-level tests of the external (out-of-core) dataflow: a plain
// word-count-shaped job with string keys and int values (built-in runio
// codecs) run with budgets tiny enough that every map task spills many
// runs, compared byte-for-byte against the typed in-memory engine. The
// strategy-level differential matrix lives in
// external_differential_test.go.

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mapreduce"
)

// wordJob builds a typed job over (doc line → word counts): map emits
// (word, 1) per occurrence, an optional combiner pre-aggregates, reduce
// sums. Keys get the engine's string-prefix coding, exercising the
// coded-key disk layout with inexact codes.
func wordJob(r int, combine bool) *mapreduce.Job[string, string, int, mapreduce.Pair[string, int]] {
	j := &mapreduce.Job[string, string, int, mapreduce.Pair[string, int]]{
		Name:           "wordcount",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[string, string, int] {
			return &mapreduce.MapperFunc[string, string, int]{
				OnMap: func(ctx *mapreduce.MapContext[string, string, int], line string) {
					for _, w := range strings.Fields(line) {
						ctx.Emit(w, 1)
					}
				},
			}
		},
		NewReducer: func() mapreduce.Reducer[string, int, mapreduce.Pair[string, int]] {
			return &mapreduce.ReducerFunc[string, int, mapreduce.Pair[string, int]]{
				OnReduce: func(ctx *mapreduce.ReduceContext[mapreduce.Pair[string, int]], key string, values []mapreduce.Rec[string, int]) {
					sum := 0
					for _, v := range values {
						sum += v.Value
					}
					ctx.Emit(mapreduce.Pair[string, int]{Key: key, Value: sum})
					ctx.Inc("groups-seen", 1)
				},
			}
		},
		Partition: mapreduce.HashPartition,
		Compare:   strings.Compare,
		Coding:    mapreduce.KeyCoding[string]{Encode: mapreduce.StringPrefixCode},
	}
	if combine {
		j.NewCombiner = func() mapreduce.Combiner[string, string, int] {
			return &combinerFunc{}
		}
	}
	return j
}

type combinerFunc struct{}

func (combinerFunc) Configure(m, r, taskIndex int) {}
func (combinerFunc) Combine(ctx *mapreduce.MapContext[string, string, int], key string, values []mapreduce.Rec[string, int]) {
	sum := 0
	for _, v := range values {
		sum += v.Value
	}
	ctx.Emit(key, sum)
}

// wordInput builds m partitions of synthetic text with heavy key skew
// and adversarial words (tabs cannot appear in Fields output, but
// non-ASCII and long words can).
func wordInput(m int) [][]string {
	input := make([][]string, m)
	words := []string{"the", "quick", "brown", "fox", "日本語", "a",
		"longwordthatexceedsthesixteenbyteprefixcode-α", "longwordthatexceedsthesixteenbyteprefixcode-β"}
	for i := 0; i < m; i++ {
		for l := 0; l < 30; l++ {
			var b strings.Builder
			for w := 0; w < 8; w++ {
				b.WriteString(words[(i+l+w*w)%len(words)])
				b.WriteByte(' ')
			}
			input[i] = append(input[i], b.String())
		}
	}
	return input
}

// clearSpillCounters zeroes the external-only metrics fields so the
// rest of the Result can be compared byte-for-byte across dataflows.
func clearSpillCounters(ms []mapreduce.TaskMetrics) {
	for i := range ms {
		ms[i].SpillRuns = 0
		ms[i].SpillBytesWritten = 0
		ms[i].SpillBytesRead = 0
	}
}

func TestExternalWordCountDifferential(t *testing.T) {
	for _, combine := range []bool{false, true} {
		for _, budget := range []int64{1, 64, 200, 1 << 20} {
			for m := 1; m <= 3; m++ {
				name := fmt.Sprintf("combine=%v/budget=%d/m=%d", combine, budget, m)
				input := wordInput(m)
				job := wordJob(4, combine)

				typed, err := job.Run(&mapreduce.Engine{}, input)
				if err != nil {
					t.Fatalf("%s: typed: %v", name, err)
				}
				tmp := t.TempDir()
				ext, err := job.Run(&mapreduce.Engine{
					Dataflow:    mapreduce.DataflowExternal,
					SpillBudget: budget,
					TmpDir:      tmp,
				}, input)
				if err != nil {
					t.Fatalf("%s: external: %v", name, err)
				}

				if budget == 1 {
					// Every record triggers a spill: each map task must
					// have flushed at least 4 runs.
					for i := range ext.MapMetrics {
						if ext.MapMetrics[i].SpillRuns < 4 {
							t.Errorf("%s: map task %d spilled %d runs, want >= 4",
								name, i, ext.MapMetrics[i].SpillRuns)
						}
					}
				}
				if budget >= 1<<20 {
					for i := range ext.MapMetrics {
						if ext.MapMetrics[i].SpillRuns != 0 {
							t.Errorf("%s: map task %d spilled despite huge budget", name, i)
						}
					}
				}
				clearSpillCounters(ext.MapMetrics)
				clearSpillCounters(ext.ReduceMetrics)
				if !reflect.DeepEqual(typed, ext) {
					t.Fatalf("%s: external Result diverges from typed\ntyped: %+v\nexternal: %+v", name, typed, ext)
				}

				// The per-Run spill directory must be gone.
				ents, err := os.ReadDir(tmp)
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) != 0 {
					t.Fatalf("%s: temp dir not empty after Run: %v", name, ents)
				}
			}
		}
	}
}

// TestExternalNoCoding runs the external dataflow without a KeyCoding
// (codeWidth 0 on disk, comparator-only merge).
func TestExternalNoCoding(t *testing.T) {
	input := wordInput(3)
	job := wordJob(4, true)
	job.Coding = mapreduce.KeyCoding[string]{}
	typed, err := job.Run(&mapreduce.Engine{}, input)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := job.Run(&mapreduce.Engine{
		Dataflow:    mapreduce.DataflowExternal,
		SpillBudget: 64,
		TmpDir:      t.TempDir(),
	}, input)
	if err != nil {
		t.Fatal(err)
	}
	clearSpillCounters(ext.MapMetrics)
	clearSpillCounters(ext.ReduceMetrics)
	if !reflect.DeepEqual(typed, ext) {
		t.Fatal("external (no coding) Result diverges from typed")
	}
}

// TestExternalTempCleanupOnError proves the spill directory is removed
// even when a reduce task fails mid-merge (with runs on disk).
func TestExternalTempCleanupOnError(t *testing.T) {
	input := wordInput(3)
	job := wordJob(4, false)
	job.NewReducer = func() mapreduce.Reducer[string, int, mapreduce.Pair[string, int]] {
		return &mapreduce.ReducerFunc[string, int, mapreduce.Pair[string, int]]{
			OnReduce: func(ctx *mapreduce.ReduceContext[mapreduce.Pair[string, int]], key string, values []mapreduce.Rec[string, int]) {
				panic("injected reducer failure")
			},
		}
	}
	tmp := t.TempDir()
	_, err := job.Run(&mapreduce.Engine{
		Dataflow:    mapreduce.DataflowExternal,
		SpillBudget: 1,
		TmpDir:      tmp,
	}, input)
	if err == nil || !strings.Contains(err.Error(), "injected reducer failure") {
		t.Fatalf("err = %v, want injected reducer failure", err)
	}
	ents, rerr := os.ReadDir(tmp)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(ents) != 0 {
		t.Fatalf("temp dir not cleaned up after reducer error: %v", ents)
	}

	// Same for a map-side failure.
	job2 := wordJob(4, false)
	job2.NewMapper = func() mapreduce.Mapper[string, string, int] {
		return &mapreduce.MapperFunc[string, string, int]{
			OnMap: func(ctx *mapreduce.MapContext[string, string, int], line string) {
				ctx.Emit("w", 1)
				panic("injected mapper failure")
			},
		}
	}
	if _, err := job2.Run(&mapreduce.Engine{Dataflow: mapreduce.DataflowExternal, SpillBudget: 1, TmpDir: tmp}, input); err == nil {
		t.Fatal("map-side failure not reported")
	}
	if ents, _ := os.ReadDir(tmp); len(ents) != 0 {
		t.Fatalf("temp dir not cleaned up after mapper error: %v", ents)
	}
}

// TestExternalMissingCodec: a key type nobody registered a codec for
// must fail up front with a descriptive error, not per record.
func TestExternalMissingCodec(t *testing.T) {
	type unregisteredKey struct{ X int }
	job := &mapreduce.Job[string, unregisteredKey, int, string]{
		Name:           "nocodec",
		NumReduceTasks: 1,
		NewMapper: func() mapreduce.Mapper[string, unregisteredKey, int] {
			return &mapreduce.MapperFunc[string, unregisteredKey, int]{
				OnMap: func(ctx *mapreduce.MapContext[string, unregisteredKey, int], s string) {},
			}
		},
		NewReducer: func() mapreduce.Reducer[unregisteredKey, int, string] {
			return &mapreduce.ReducerFunc[unregisteredKey, int, string]{
				OnReduce: func(ctx *mapreduce.ReduceContext[string], k unregisteredKey, vs []mapreduce.Rec[unregisteredKey, int]) {
				},
			}
		},
		Partition: func(k unregisteredKey, r int) int { return 0 },
		Compare:   func(a, b unregisteredKey) int { return a.X - b.X },
	}
	_, err := job.Run(&mapreduce.Engine{Dataflow: mapreduce.DataflowExternal}, [][]string{{"x"}})
	if err == nil || !strings.Contains(err.Error(), "no runio codec") {
		t.Fatalf("err = %v, want missing-codec error", err)
	}
}
