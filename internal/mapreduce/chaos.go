package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// ChaosHook builds a deterministic FaultHook for chaos testing: at every
// instrumented point it hashes (seed, phase, task, attempt, point) and
// injects a transient error when the hash falls under rate. Determinism
// is the point — a failing chaos run reproduces from its seed alone, and
// the differential suite can re-run the exact fault schedule across
// dataflows.
//
// Two properties make every schedule eventually succeed:
//
//   - The decision depends on the attempt number, so a retried attempt
//     rolls a fresh hash rather than replaying its predecessor's fault.
//   - Nothing is ever injected once attempt reaches maxAttempts (the
//     policy's per-task budget, pass Engine.Retry.MaxAttempts or 0 for
//     the default): the final attempt of any task is fault-free.
//
// An attempt marked to fail at FaultEmit fails on its first emit (the
// hash does not vary within one attempt's point), which is enough to
// exercise mid-task abandonment: output is half-buffered, spills may
// already be on disk.
func ChaosHook(seed uint64, rate float64, maxAttempts int) FaultHook {
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	threshold := uint64(rate * float64(^uint64(0)>>1))
	return func(ctx context.Context, phase TaskKind, task, attempt int, point FaultPoint) error {
		if attempt >= maxAttempts {
			return nil
		}
		h := splitmix64(seed ^ uint64(phase)<<60 ^ uint64(task)<<32 ^ uint64(attempt)<<8 ^ uint64(point))
		if h>>1 < threshold {
			return fmt.Errorf("chaos: injected fault at %s (%s task %d attempt %d)", point, phase, task, attempt)
		}
		return nil
	}
}

// ParseChaos parses the CLI chaos flag "rate[:seed]" (e.g. "0.2" or
// "0.2:12345") into a ChaosHook. An empty spec returns nil (no
// injection); rate must be in [0,1].
func ParseChaos(spec string, maxAttempts int) (FaultHook, error) {
	if spec == "" {
		return nil, nil
	}
	rateStr, seedStr, hasSeed := strings.Cut(spec, ":")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 || rate > 1 {
		return nil, fmt.Errorf("chaos spec %q: rate must be a number in [0,1]", spec)
	}
	var seed uint64 = 1
	if hasSeed {
		seed, err = strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos spec %q: seed must be an unsigned integer", spec)
		}
	}
	return ChaosHook(seed, rate, maxAttempts), nil
}
